module cnnperf

go 1.22
