// Package cnnperf predicts the performance (IPC) of convolutional neural
// networks on GPGPUs without executing them on hardware, reproducing
// "Fast and Accurate: Machine Learning Techniques for Performance
// Estimation of CNNs for GPGPUs" (Metz, Goli, Drechsler, 2023).
//
// The pipeline has two phases (paper Fig. 3):
//
//  1. Dataset creation — the Static Analyzer extracts trainable
//     parameters from the network topology, the Dynamic Code Analysis
//     slices and abstractly executes the generated PTX to count executed
//     instructions, and the profiler measures IPC on the training GPUs.
//  2. Model generation — five regressors (Linear Regression, K-NN,
//     Random Forest, Decision Tree, XGBoost) are trained on a 70/30
//     split; the Decision Tree becomes the final estimator.
//
// Quick start:
//
//	cfg := cnnperf.DefaultConfig()
//	ds, analyses, _ := cnnperf.BuildDataset(cnnperf.TableIModels(), cnnperf.TrainingGPUs(), cfg)
//	train, _, _ := ds.Split(0.7, cfg.SplitSeed)
//	est, _ := cnnperf.TrainEstimator(train, cnnperf.NewDecisionTree())
//	ipc, _ := est.Predict(analyses["vgg16"], cnnperf.MustGPU("gtx1080ti"))
//
// Everything — the CNN graph IR and model zoo, the PTX ISA with parser
// and code generator, the slicing interpreter, the GPU timing simulator
// standing in for real hardware, and the ML library — is implemented in
// this module with the standard library only.
package cnnperf

import (
	"context"
	"io"

	"cnnperf/internal/analysiscache"
	"cnnperf/internal/cnn"
	"cnnperf/internal/core"
	"cnnperf/internal/dca"
	"cnnperf/internal/dse"
	"cnnperf/internal/gpu"
	"cnnperf/internal/gpusim"
	"cnnperf/internal/mlearn"
	"cnnperf/internal/mlearn/dataset"
	"cnnperf/internal/profiler"
	"cnnperf/internal/ptx"
	"cnnperf/internal/ptxanalysis"
	"cnnperf/internal/ptxgen"
	"cnnperf/internal/zoo"
)

// Re-exported pipeline types. See the internal/core documentation for
// details on each.
type (
	// Config collects the pipeline knobs; start from DefaultConfig.
	Config = core.Config
	// ModelAnalysis is the cached static + dynamic analysis of one CNN.
	ModelAnalysis = core.ModelAnalysis
	// Estimator is the trained predictive model.
	Estimator = core.Estimator
	// Evaluation is one Table II row (regressor, MAPE, R², adj. R²).
	Evaluation = core.Evaluation
	// FeatureImportance pairs a predictor with its importance weight.
	FeatureImportance = core.FeatureImportance
	// DSETime models the Section V timing comparison.
	DSETime = core.DSETime

	// Dataset is the (CNN, GPU) observation table.
	Dataset = dataset.Dataset
	// Regressor is a trainable scalar regression model.
	Regressor = mlearn.Regressor

	// GPUSpec is a GPGPU's architectural datasheet.
	GPUSpec = gpu.Spec
	// Profile is an nvprof-style profiling result.
	Profile = profiler.Profile

	// Model is a CNN computation graph.
	Model = cnn.Model
	// Shape is a feature-map shape.
	Shape = cnn.Shape
	// GraphBuilder constructs custom CNN graphs.
	GraphBuilder = cnn.Builder
)

// FeatureNames is the dataset schema: executed instructions and
// trainable parameters followed by the GPU architectural features.
var FeatureNames = core.FeatureNames

// DefaultConfig returns the configuration used by the reproduced
// experiments (batch-16 profiling, 5 % measurement noise, frozen split).
func DefaultConfig() Config { return core.DefaultConfig() }

// AnalyzeCNN runs the static analyzer and the dynamic code analysis for
// one zoo model (phase 1 per-CNN work).
func AnalyzeCNN(name string, cfg Config) (*ModelAnalysis, error) {
	return core.AnalyzeCNN(name, cfg)
}

// AnalyzeModel is AnalyzeCNN over a custom graph built with NewModel.
func AnalyzeModel(m *Model, cfg Config) (*ModelAnalysis, error) {
	return core.AnalyzeModel(m, cfg)
}

// BuildDataset runs phase 1 over the given CNNs and GPUs and returns the
// observation table plus the per-CNN analyses for reuse. Set Config.Workers
// to fan the per-model analyses over a worker pool and Config.Cache to
// memoize per-kernel analysis work; the rows are identical either way.
func BuildDataset(models, gpus []string, cfg Config) (*Dataset, map[string]*ModelAnalysis, error) {
	return core.BuildDataset(models, gpus, cfg)
}

// BuildDatasetContext is BuildDataset with cancellation: ctx aborts the
// worker pool promptly and the first error encountered is returned.
func BuildDatasetContext(ctx context.Context, models, gpus []string, cfg Config) (*Dataset, map[string]*ModelAnalysis, error) {
	return core.BuildDatasetContext(ctx, models, gpus, cfg)
}

// AnalysisCache is the concurrency-safe content-addressed memo store of
// per-kernel analysis results; plug one into Config.Cache to share work
// across models and repeated builds.
type AnalysisCache = analysiscache.Cache

// AnalysisCacheStats is a snapshot of the cache counters.
type AnalysisCacheStats = analysiscache.Stats

// NewAnalysisCache creates an analysis cache bounded to capacity entries
// (<= 0 means unbounded).
func NewAnalysisCache(capacity int) *AnalysisCache { return analysiscache.New(capacity) }

// EvaluateRegressors trains and scores candidates on a split (Table II).
func EvaluateRegressors(train, eval *Dataset, candidates []Regressor) ([]Evaluation, error) {
	return core.EvaluateRegressors(train, eval, candidates)
}

// DefaultRegressors returns the paper's five candidates.
func DefaultRegressors(seed int64) []Regressor { return core.DefaultRegressors(seed) }

// BestByMAPE picks the winning evaluation row.
func BestByMAPE(evals []Evaluation) (Evaluation, error) { return core.BestByMAPE(evals) }

// TrainEstimator fits a regressor on the training split.
func TrainEstimator(train *Dataset, reg Regressor) (*Estimator, error) {
	return core.TrainEstimator(train, reg)
}

// Prediction is one per-GPU IPC estimate of a single-model prediction.
type Prediction = core.Prediction

// PTXOptions configures PredictPTX / core.AnalyzePTXContext for raw
// PTX payloads (launch geometry and the trainable-params predictor).
type PTXOptions = core.PTXOptions

// LeaveOneOutEstimator trains the paper's Decision Tree on every
// Table I model except exclude, on the two training GPUs — the exact
// training path of `cnnperf predict` and the cnnperfd daemon.
func LeaveOneOutEstimator(ctx context.Context, exclude string, cfg Config) (*Estimator, error) {
	return core.LeaveOneOutEstimatorContext(ctx, exclude, cfg)
}

// PredictCNN estimates the IPC of one zoo model on each named GPU
// without executing it: leave-one-out training, analysis and per-GPU
// prediction in one call.
func PredictCNN(ctx context.Context, model string, gpus []string, cfg Config) ([]Prediction, *ModelAnalysis, error) {
	return core.PredictCNNContext(ctx, model, gpus, cfg)
}

// AnalyzePTX parses raw PTX assembly and runs the dynamic and static
// analyses over it, returning a ModelAnalysis usable with
// Estimator.Predict — prediction for kernels that never came from the
// CNN zoo.
func AnalyzePTX(ctx context.Context, src string, opt PTXOptions, cfg Config) (*ModelAnalysis, error) {
	return core.AnalyzePTXContext(ctx, src, opt, cfg)
}

// NewDecisionTree returns the paper's winning regressor.
func NewDecisionTree() Regressor { return mlearn.NewDecisionTree() }

// NewLinearRegression returns the linear baseline.
func NewLinearRegression() Regressor { return mlearn.NewLinearRegression() }

// NewKNN returns a k-nearest-neighbour regressor.
func NewKNN(k int) Regressor { return mlearn.NewKNN(k) }

// NewRandomForest returns a bagged-tree ensemble.
func NewRandomForest(trees int, seed int64) Regressor { return mlearn.NewRandomForest(trees, seed) }

// NewXGBoost returns a gradient-boosted tree ensemble.
func NewXGBoost(seed int64) Regressor { return mlearn.NewXGBoost(seed) }

// TableIModels lists the 31 CNNs of the paper's Table I in row order.
func TableIModels() []string { return append([]string(nil), zoo.TableIOrder...) }

// ModelNames lists every CNN in the zoo (Table I plus extras), sorted.
func ModelNames() []string { return zoo.Names() }

// BuildCNN constructs a zoo model by name.
func BuildCNN(name string) (*Model, error) { return zoo.Build(name) }

// NewModel starts a custom CNN graph; see the cnn ops (re-exported in
// ops.go) for the available layers.
func NewModel(name string, input Shape) (*GraphBuilder, *cnn.Node) {
	return cnn.NewBuilder(name, input)
}

// TrainingGPUs returns the two devices the paper trains on.
func TrainingGPUs() []string { return append([]string(nil), gpu.TrainingGPUs...) }

// DSEGPUs returns the seven devices of the paper's Table IV experiment.
func DSEGPUs() []string { return append([]string(nil), gpu.TableIVGPUs...) }

// GPUNames lists every device in the catalogue.
func GPUNames() []string { return gpu.IDs() }

// GPU looks up a device spec by id (e.g. "gtx1080ti").
func GPU(id string) (GPUSpec, error) { return gpu.Lookup(id) }

// MustGPU is GPU but panics on unknown ids.
func MustGPU(id string) GPUSpec { return gpu.MustLookup(id) }

// ProfileCNN profiles one zoo model on one GPU with the nvprof-style
// harness over the timing simulator (the paper's "naive approach").
func ProfileCNN(name, gpuID string, cfg Config) (*Profile, error) {
	m, err := zoo.Build(name)
	if err != nil {
		return nil, err
	}
	return ProfileModel(m, gpuID, cfg)
}

// ProfileModel profiles a custom model on one GPU.
func ProfileModel(m *Model, gpuID string, cfg Config) (*Profile, error) {
	spec, err := gpu.Lookup(gpuID)
	if err != nil {
		return nil, err
	}
	prog, err := ptxgen.Compile(m, cfg.PTX)
	if err != nil {
		return nil, err
	}
	pcfg := cfg.Prof
	pcfg.Sim = cfg.Sim
	return profiler.Run(prog, spec, pcfg)
}

// GeneratePTX compiles a zoo model and renders its PTX assembly, as the
// nvcc step of the paper's flow would.
func GeneratePTX(name string, cfg Config) (string, error) {
	m, err := zoo.Build(name)
	if err != nil {
		return "", err
	}
	prog, err := ptxgen.Compile(m, cfg.PTX)
	if err != nil {
		return "", err
	}
	return ptx.Print(prog.Module), nil
}

// ExecutedInstructions returns the dynamic code analysis total for a zoo
// model: the paper's p predictor.
func ExecutedInstructions(name string, cfg Config) (int64, error) {
	a, err := core.AnalyzeCNN(name, cfg)
	if err != nil {
		return 0, err
	}
	return a.Report.Executed, nil
}

// SimulateCNN runs a zoo model through the GPU timing simulator and
// returns the ground-truth execution result.
func SimulateCNN(name, gpuID string, cfg Config) (*gpusim.Result, error) {
	spec, err := gpu.Lookup(gpuID)
	if err != nil {
		return nil, err
	}
	a, err := core.AnalyzeCNN(name, cfg)
	if err != nil {
		return nil, err
	}
	return gpusim.Simulate(a.Report, spec, cfg.Sim)
}

// SimResult is the timing simulator output.
type SimResult = gpusim.Result

// SimulateCNNDetailed runs the cycle-approximate warp-level simulator —
// the slow "GPGPU simulator" comparison point of the paper's
// introduction — on a zoo model.
func SimulateCNNDetailed(name, gpuID string, cfg Config) (*SimResult, error) {
	spec, err := gpu.Lookup(gpuID)
	if err != nil {
		return nil, err
	}
	m, err := zoo.Build(name)
	if err != nil {
		return nil, err
	}
	prog, err := ptxgen.Compile(m, cfg.PTX)
	if err != nil {
		return nil, err
	}
	rep, err := dca.AnalyzeProgram(prog, dca.Options{})
	if err != nil {
		return nil, err
	}
	return gpusim.SimulateDetailed(prog, rep, spec, cfg.Sim)
}

// DCAReport is the dynamic code analysis result.
type DCAReport = dca.Report

// CVResult summarises a k-fold cross-validation run.
type CVResult = mlearn.CVResult

// CrossValidate scores a regressor with deterministic k-fold
// cross-validation over a dataset — a variance estimate complementing
// the paper's single 70/30 split.
func CrossValidate(factory func() Regressor, ds *Dataset, k int, seed int64) (CVResult, error) {
	X, y := ds.XY()
	return mlearn.CrossValidate(factory, X, y, k, seed)
}

// SweepPoint is one operating point of a DVFS frequency sweep.
type SweepPoint = gpusim.SweepPoint

// FrequencySweep simulates a zoo model on one GPU across several core
// clocks — the dynamic-frequency-scaling study of the paper's future
// work.
func FrequencySweep(name, gpuID string, clocksMHz []float64, cfg Config) ([]SweepPoint, error) {
	spec, err := gpu.Lookup(gpuID)
	if err != nil {
		return nil, err
	}
	a, err := core.AnalyzeCNN(name, cfg)
	if err != nil {
		return nil, err
	}
	return gpusim.FrequencySweep(a.Report, spec, clocksMHz, cfg.Sim)
}

// ExtendedFeatureNames is the future-work schema including FLOPs and
// MACs predictors (enable with Config.ExtendedFeatures).
var ExtendedFeatureNames = core.ExtendedFeatureNames

// StaticFeatureNames is the schema with the static-analysis predictors
// of internal/ptxanalysis appended — register pressure, loop nesting,
// branch density, instruction-mix and coalescing fractions (enable with
// Config.StaticFeatures).
var StaticFeatureNames = core.StaticFeatureNames

// BBFeatureNames are the per-basic-block predictors — abstract-
// interpretation block features (divergence, coalescing, stride, live
// registers) weighted by the DCA's per-block execution counts — that
// Config.BBFeatures appends to whichever base schema is selected.
var BBFeatureNames = core.BBFeatureNames

// Diag is one static-analysis lint finding (code PTXA001-PTXA014).
type Diag = ptxanalysis.Diag

// Severity grades a lint diagnostic.
type Severity = ptxanalysis.Severity

// Severity levels of lint diagnostics.
const (
	SevInfo    = ptxanalysis.SevInfo
	SevWarning = ptxanalysis.SevWarning
	SevError   = ptxanalysis.SevError
)

// StaticAnalysis is the per-module static-analysis summary attached to
// every ModelAnalysis.
type StaticAnalysis = ptxanalysis.ModuleAnalysis

// LintCNN compiles a zoo model to PTX and runs the static-analysis lint
// over every generated kernel, returning the diagnostics errors-first
// per kernel.
func LintCNN(name string, cfg Config) ([]Diag, error) {
	m, err := zoo.Build(name)
	if err != nil {
		return nil, err
	}
	prog, err := ptxgen.Compile(m, cfg.PTX)
	if err != nil {
		return nil, err
	}
	return ptxanalysis.Lint(prog.Module), nil
}

// LintPTX parses PTX assembly text and lints every kernel in it.
func LintPTX(src string) ([]Diag, error) {
	m, err := ptx.Parse(src)
	if err != nil {
		return nil, err
	}
	return ptxanalysis.Lint(m), nil
}

// HasLintErrors reports whether any diagnostic is error-severity — the
// condition under which the dynamic code analysis rejects a kernel.
func HasLintErrors(diags []Diag) bool { return ptxanalysis.HasErrors(diags) }

// Design-space exploration types (see internal/dse).
type (
	// DSEConstraints bound the acceptable design points.
	DSEConstraints = dse.Constraints
	// DSECandidate is one scored device.
	DSECandidate = dse.Candidate
	// DSEResult is a ranked exploration outcome.
	DSEResult = dse.Result
	// DSEObjective selects the ranking criterion.
	DSEObjective = dse.Objective
)

// DSE objectives.
const (
	// MinLatency ranks devices by predicted inference latency.
	MinLatency = dse.MinLatency
	// MaxEfficiency ranks devices by performance per watt.
	MaxEfficiency = dse.MaxEfficiency
)

// ExploreDesignSpace ranks candidate GPUs for an analysed CNN under
// design constraints using the trained estimator — the accelerator
// selection problem the paper's introduction motivates.
func ExploreDesignSpace(est *Estimator, a *ModelAnalysis, candidateIDs []string, cons DSEConstraints, obj DSEObjective) (*DSEResult, error) {
	return dse.Explore(est, a, candidateIDs, cons, obj)
}

// LoadEstimator deserialises an estimator saved with Estimator.Save.
func LoadEstimator(r io.Reader) (*Estimator, error) { return core.LoadEstimator(r) }

// LoadGPUSpecs parses a JSON device catalogue (see gpu.ParseSpecs) and
// registers every entry, extending the design space with user hardware.
func LoadGPUSpecs(r io.Reader) error {
	specs, err := gpu.ParseSpecs(r)
	if err != nil {
		return err
	}
	for id, s := range specs {
		if err := gpu.Register(id, s); err != nil {
			return err
		}
	}
	return nil
}

// RegisterGPU adds one device spec to the catalogue.
func RegisterGPU(id string, s GPUSpec) error { return gpu.Register(id, s) }
