package cnnperf

import "cnnperf/internal/cnn"

// Re-exported graph operations for building custom CNNs with NewModel.
// Each value is documented in internal/cnn.
type (
	// Op is a network operation.
	Op = cnn.Op
	// Node is one operation instance in a graph.
	Node = cnn.Node
	// Conv2D is a standard (optionally grouped) convolution.
	Conv2D = cnn.Conv2D
	// DepthwiseConv2D convolves each channel independently.
	DepthwiseConv2D = cnn.DepthwiseConv2D
	// Dense is a fully connected layer.
	Dense = cnn.Dense
	// Pool2D is spatial max/average pooling.
	Pool2D = cnn.Pool2D
	// GlobalPool2D reduces the spatial extent to 1x1.
	GlobalPool2D = cnn.GlobalPool2D
	// BatchNorm is channel-wise batch normalisation.
	BatchNorm = cnn.BatchNorm
	// GroupNorm is group normalisation.
	GroupNorm = cnn.GroupNorm
	// Activation is an elementwise non-linearity.
	Activation = cnn.Activation
	// Flatten collapses a feature map to a vector.
	Flatten = cnn.Flatten
	// Dropout is an inference no-op.
	Dropout = cnn.Dropout
	// ZeroPad2D adds explicit spatial padding.
	ZeroPad2D = cnn.ZeroPad2D
	// Add sums feature maps (residual connections).
	Add = cnn.Add
	// Multiply gates feature maps (squeeze-excite).
	Multiply = cnn.Multiply
	// Concat joins feature maps along channels.
	Concat = cnn.Concat
	// Padding selects Same or Valid boundary handling.
	Padding = cnn.Padding
	// Summary is the Static Analyzer report.
	Summary = cnn.Summary
)

// Padding modes.
const (
	// Valid performs no padding.
	Valid = cnn.Valid
	// Same pads to preserve ceil(in/stride).
	Same = cnn.Same
)

// Convenience constructors, mirroring internal/cnn.
var (
	// Conv builds a square-kernel convolution with bias.
	Conv = cnn.Conv
	// ConvNoBias builds a bias-free convolution.
	ConvNoBias = cnn.ConvNoBias
	// DepthwiseConv builds a square depthwise convolution.
	DepthwiseConv = cnn.DepthwiseConv
	// FC builds a dense layer with bias.
	FC = cnn.FC
	// MaxPool2D builds square max pooling.
	MaxPool2D = cnn.MaxPool2D
	// AvgPool2D builds square average pooling.
	AvgPool2D = cnn.AvgPool2D
	// GlobalAvgPool builds global average pooling.
	GlobalAvgPool = cnn.GlobalAvgPool
	// GlobalMaxPool builds global max pooling.
	GlobalMaxPool = cnn.GlobalMaxPool
	// BN builds standard batch normalisation.
	BN = cnn.BN
	// ReLU builds a rectified-linear activation.
	ReLU = cnn.ReLU
	// Swish builds a swish activation.
	Swish = cnn.Swish
	// Sigmoid builds a sigmoid activation.
	Sigmoid = cnn.Sigmoid
	// Softmax builds a softmax activation.
	Softmax = cnn.Softmax
	// Pad2D pads symmetrically on all sides.
	Pad2D = cnn.Pad2D
	// Analyze runs the Static Analyzer over a model.
	Analyze = cnn.Analyze
)
