// Custom model: the estimator is not limited to the 31 published CNNs.
// This example defines a new network with the graph-builder API (a small
// residual SE-net), runs the Static Analyzer and the Dynamic Code
// Analysis on it, inspects a slice of its generated PTX, and predicts
// its IPC on three GPUs.
package main

import (
	"fmt"
	"log"
	"strings"

	"cnnperf"
)

// buildTinySENet defines a custom CNN: a strided stem, two residual
// blocks with squeeze-excitation gates, and a 100-class head.
func buildTinySENet() (*cnnperf.Model, error) {
	b, x := cnnperf.NewModel("tiny-senet", cnnperf.Shape{H: 64, W: 64, C: 3})
	x = b.Add(cnnperf.ConvNoBias(32, 3, 2, cnnperf.Same), x)
	x = b.Add(cnnperf.BN(), x)
	x = b.Add(cnnperf.ReLU(), x)
	for i, filters := range []int{32, 64} {
		stride := 1
		shortcut := x
		if i > 0 {
			stride = 2
			shortcut = b.Add(cnnperf.ConvNoBias(filters, 1, stride, cnnperf.Same), x)
		}
		y := b.Add(cnnperf.ConvNoBias(filters, 3, stride, cnnperf.Same), x)
		y = b.Add(cnnperf.BN(), y)
		y = b.Add(cnnperf.ReLU(), y)
		y = b.Add(cnnperf.ConvNoBias(filters, 3, 1, cnnperf.Same), y)
		y = b.Add(cnnperf.BN(), y)
		// Squeeze-and-excite gate.
		se := b.Add(cnnperf.GlobalAvgPool(), y)
		se = b.Add(cnnperf.Conv(filters/4, 1, 1, cnnperf.Same), se)
		se = b.Add(cnnperf.ReLU(), se)
		se = b.Add(cnnperf.Conv(filters, 1, 1, cnnperf.Same), se)
		se = b.Add(cnnperf.Sigmoid(), se)
		y = b.Add(cnnperf.Multiply{}, y, se)
		x = b.Add(cnnperf.Add{}, shortcut, y)
		x = b.Add(cnnperf.ReLU(), x)
	}
	x = b.Add(cnnperf.GlobalAvgPool(), x)
	x = b.Add(cnnperf.FC(100), x)
	x = b.Add(cnnperf.Softmax(), x)
	return b.Build(x)
}

func main() {
	log.SetFlags(0)
	cfg := cnnperf.DefaultConfig()

	m, err := buildTinySENet()
	if err != nil {
		log.Fatal(err)
	}
	sum, err := cnnperf.Analyze(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static analysis of %s:\n  layers=%d  params=%d  neurons=%d  flops=%d\n",
		sum.Name, sum.Layers, sum.TrainableParams, sum.Neurons, sum.FLOPs)

	a, err := cnnperf.AnalyzeModel(m, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic code analysis:\n  kernels=%d  executed=%d  slice=%.1f%%  t_dca=%s\n",
		len(a.Report.Kernels), a.Report.Executed,
		100*a.Report.MeanSliceFraction, a.DCATime.Round(1e5))

	// Peek at the generated PTX for one of the paper's Table I nets to
	// show the nvcc-style output the analysis consumes.
	asm, err := cnnperf.GeneratePTX("alexnet", cfg)
	if err != nil {
		log.Fatal(err)
	}
	lines := strings.SplitN(asm, "\n", 25)
	fmt.Println("\nfirst lines of alexnet PTX:")
	for _, l := range lines[:24] {
		fmt.Println("  " + l)
	}

	// Train on the zoo, predict the custom net on three GPUs.
	ds, _, err := cnnperf.BuildDataset(cnnperf.TableIModels(), cnnperf.TrainingGPUs(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	est, err := cnnperf.TrainEstimator(ds, cnnperf.NewDecisionTree())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npredicted IPC of the custom network:")
	for _, gid := range []string{"gtx1080ti", "v100s", "t4"} {
		spec, err := cnnperf.GPU(gid)
		if err != nil {
			log.Fatal(err)
		}
		ipc, err := est.Predict(a, spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %8.1f\n", gid, ipc)
	}
}
