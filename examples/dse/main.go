// Design-space exploration (the paper's motivating scenario): pick the
// right GPGPU for a CNN under design constraints — a latency target and
// a power budget — without prototyping on any device. The naive
// alternative profiles the network on every candidate (minutes per
// device, Table IV); the estimator answers in microseconds per device
// after one dynamic code analysis.
package main

import (
	"fmt"
	"log"

	"cnnperf"
)

func main() {
	log.SetFlags(0)
	cfg := cnnperf.DefaultConfig()
	target := "efficientnetb4"

	// Train the estimator on the full Table I dataset minus the target.
	var trainModels []string
	for _, n := range cnnperf.TableIModels() {
		if n != target {
			trainModels = append(trainModels, n)
		}
	}
	fmt.Println("phase 1: building the training dataset ...")
	ds, _, err := cnnperf.BuildDataset(trainModels, cnnperf.TrainingGPUs(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	est, err := cnnperf.TrainEstimator(ds, cnnperf.NewDecisionTree())
	if err != nil {
		log.Fatal(err)
	}

	// One dynamic code analysis for the target CNN (t_dca) ...
	a, err := cnnperf.AnalyzeCNN(target, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t_dca for %s: %s\n\n", target, a.DCATime.Round(1e6))

	// Scenario 1: a data-centre deployment chasing raw latency.
	res, err := cnnperf.ExploreDesignSpace(est, a, cnnperf.DSEGPUs(),
		cnnperf.DSEConstraints{}, cnnperf.MinLatency)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format())

	// Scenario 2: an edge box with a 75 W budget, ranked by efficiency.
	res, err = cnnperf.ExploreDesignSpace(est, a, cnnperf.DSEGPUs(),
		cnnperf.DSEConstraints{MaxPowerW: 75}, cnnperf.MaxEfficiency)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Format())
	best, err := res.Best()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nedge pick: %s (%s, %d W) at predicted %.1f ms\n",
		best.ID, best.Spec.Name, best.Spec.TDPWatts, 1000*best.PredictedLatencySec)

	// Cost comparison against the naive profile-everything approach.
	prof, err := cnnperf.ProfileCNN(target, "gtx1080ti", cfg)
	if err != nil {
		log.Fatal(err)
	}
	n := len(cnnperf.DSEGPUs())
	d := cnnperf.DSETime{
		N:       n,
		TDCASec: a.DCATime.Seconds(),
		TPMSec:  est.LastPredictTime().Seconds(),
		TPSec:   prof.ProfilingCostSec,
	}
	fmt.Printf("\nnaive approach (profile on each GPU): %8.1f s\n", d.Naive())
	fmt.Printf("proposed approach (t_dca + n*t_pm):   %8.4f s\n", d.Estimated())
	fmt.Printf("speed-up: %.0fx\n", d.Speedup())
}
