// Cross-platform prediction: the paper's key advantage over prior work
// is that hardware features are part of the predictors, so one trained
// model generalises to GPUs it never saw. This example trains on the
// GTX 1080 Ti and V100S only, then predicts IPC on five unseen devices
// and compares against the simulator's ground truth.
package main

import (
	"fmt"
	"log"

	"cnnperf"
)

func main() {
	log.SetFlags(0)
	cfg := cnnperf.DefaultConfig()

	fmt.Println("training on gtx1080ti + v100s over the Table I CNNs ...")
	ds, analyses, err := cnnperf.BuildDataset(cnnperf.TableIModels(), cnnperf.TrainingGPUs(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	est, err := cnnperf.TrainEstimator(ds, cnnperf.NewDecisionTree())
	if err != nil {
		log.Fatal(err)
	}

	unseen := []string{"p100", "t4", "rtx2080ti", "quadrop1000", "gtx1060"}
	probes := []string{"resnet50v2", "efficientnetb2", "mobilenetv2"}

	fmt.Printf("\n%-14s %-16s %10s %10s %8s\n", "CNN", "unseen GPU", "predicted", "measured", "error")
	for _, model := range probes {
		for _, gid := range unseen {
			spec, err := cnnperf.GPU(gid)
			if err != nil {
				log.Fatal(err)
			}
			ipc, err := est.Predict(analyses[model], spec)
			if err != nil {
				log.Fatal(err)
			}
			sim, err := cnnperf.SimulateCNN(model, gid, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s %-16s %10.1f %10.1f %+7.1f%%\n",
				model, gid, ipc, sim.IPC, 100*(ipc-sim.IPC)/sim.IPC)
		}
	}
	fmt.Println("\nNo retraining was needed for any of these devices — the same")
	fmt.Println("model covers the whole design space (paper, Section V).")
}
