// DVFS study (the paper's future work, and the scenario of its
// reference [9]): sweep a CNN across core clocks on one GPU and observe
// how runtime, per-cycle IPC, power and energy respond. These batch-16
// workloads are memory-bound, so a 2.5x clock range buys only a few
// percent of runtime while per-cycle IPC collapses — and with static
// power dominating, finishing sooner ("race to idle") is also the
// energy-optimal policy.
package main

import (
	"fmt"
	"log"

	"cnnperf"
)

func main() {
	log.SetFlags(0)
	cfg := cnnperf.DefaultConfig()
	cfg.Sim.NoisePct = -1 // deterministic sweep

	gpuID := "gtx1080ti"
	spec, err := cnnperf.GPU(gpuID)
	if err != nil {
		log.Fatal(err)
	}
	base := spec.BoostClockMHz
	clocks := []float64{0.5 * base, 0.625 * base, 0.75 * base, 0.875 * base, base, 1.125 * base, 1.25 * base}

	for _, model := range []string{"vgg16", "mobilenetv2"} {
		points, err := cnnperf.FrequencySweep(model, gpuID, clocks, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s on %s:\n", model, spec.Name)
		fmt.Printf("%10s %12s %10s %10s %10s\n", "clock MHz", "runtime ms", "IPC", "power W", "energy J")
		bestEnergy := points[0]
		for _, pt := range points {
			fmt.Printf("%10.0f %12.2f %10.1f %10.1f %10.3f\n",
				pt.ClockMHz, 1000*pt.Result.RuntimeSec, pt.Result.IPC,
				pt.Result.AvgPowerW, pt.Result.EnergyJ)
			if pt.Result.EnergyJ < bestEnergy.Result.EnergyJ {
				bestEnergy = pt
			}
		}
		speedup := points[0].Result.RuntimeSec / points[len(points)-1].Result.RuntimeSec
		fmt.Printf("-> 2.5x clock range buys only %.2fx runtime; energy-optimal (race-to-idle) point: %.0f MHz\n\n",
			speedup, bestEnergy.ClockMHz)
	}
}
