// Quickstart: build the paper's training dataset over a handful of CNNs,
// train the Decision Tree estimator, and predict the IPC of a held-out
// network on both training GPUs — without ever "running" it.
package main

import (
	"fmt"
	"log"

	"cnnperf"
)

func main() {
	log.SetFlags(0)
	cfg := cnnperf.DefaultConfig()

	// Phase 1: dataset creation over a training subset of the zoo.
	// The target network (ResNet-50 v2) is deliberately excluded.
	trainModels := []string{
		"alexnet", "vgg16", "mobilenet", "mobilenetv2", "densenet121",
		"inceptionv3", "xception", "efficientnetb0", "efficientnetb3",
		"resnet101", "resnet152v2", "nasnetmobile",
	}
	fmt.Printf("building dataset over %d CNNs x %d GPUs ...\n",
		len(trainModels), len(cnnperf.TrainingGPUs()))
	ds, _, err := cnnperf.BuildDataset(trainModels, cnnperf.TrainingGPUs(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d observations, %d features each\n", ds.Len(), len(cnnperf.FeatureNames))

	// Phase 2: train the winning regressor on everything we have.
	est, err := cnnperf.TrainEstimator(ds, cnnperf.NewDecisionTree())
	if err != nil {
		log.Fatal(err)
	}

	// Analyse the unseen CNN: static analyzer + dynamic code analysis.
	target := "resnet50v2"
	a, err := cnnperf.AnalyzeCNN(target, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s: %d trainable parameters, %d executed PTX instructions (t_dca %s)\n",
		target, a.Summary.TrainableParams, a.Report.Executed, a.DCATime.Round(1e6))

	// Predict on both GPUs and compare with the simulated measurement.
	for _, gid := range cnnperf.TrainingGPUs() {
		spec, err := cnnperf.GPU(gid)
		if err != nil {
			log.Fatal(err)
		}
		ipc, err := est.Predict(a, spec)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := cnnperf.SimulateCNN(target, gid, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s predicted IPC %7.1f | measured %7.1f | error %+5.1f%% | t_pm %s\n",
			gid, ipc, sim.IPC, 100*(ipc-sim.IPC)/sim.IPC, est.LastPredictTime())
	}
}
