// Command ptxdump compiles a CNN from the zoo into PTX and prints the
// assembly, per-kernel statistics, or dynamic-analysis details.
//
// Usage:
//
//	ptxdump [-stats] [-kernel name] [-batch n] <model>
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"cnnperf/internal/dca"
	"cnnperf/internal/ptx"
	"cnnperf/internal/ptxgen"
	"cnnperf/internal/zoo"
)

func main() {
	log.SetFlags(0)
	stats := flag.Bool("stats", false, "print per-kernel statistics instead of assembly")
	kernel := flag.String("kernel", "", "restrict output to kernels whose name contains this substring")
	batch := flag.Int("batch", 1, "inference batch size")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ptxdump [-stats] [-kernel substr] [-batch n] <model>")
		os.Exit(2)
	}
	m, err := zoo.Build(flag.Arg(0))
	if err != nil {
		log.Fatalf("ptxdump: %v", err)
	}
	prog, err := ptxgen.Compile(m, ptxgen.Options{Batch: *batch})
	if err != nil {
		log.Fatalf("ptxdump: %v", err)
	}
	if *stats {
		printStats(prog, *kernel)
		return
	}
	if *kernel == "" {
		fmt.Print(ptx.Print(prog.Module))
		return
	}
	sub := &ptx.Module{
		Version:     prog.Module.Version,
		Target:      prog.Module.Target,
		AddressSize: prog.Module.AddressSize,
	}
	for _, k := range prog.Module.Kernels {
		if strings.Contains(k.Name, *kernel) {
			sub.Kernels = append(sub.Kernels, k)
		}
	}
	if len(sub.Kernels) == 0 {
		log.Fatalf("ptxdump: no kernel matches %q", *kernel)
	}
	fmt.Print(ptx.Print(sub))
}

func printStats(prog *ptxgen.Program, filter string) {
	rep, err := dca.AnalyzeProgram(prog, dca.Options{})
	if err != nil {
		log.Fatalf("ptxdump: %v", err)
	}
	fmt.Printf("model %s: %d kernels, %d static instructions, %d executed\n",
		prog.Model, len(prog.Module.Kernels), prog.Module.StaticInstructions(), rep.Executed)
	fmt.Printf("%-36s %8s %8s %8s %14s %16s\n",
		"kernel", "static", "slice", "thread", "threads", "executed")
	for _, kr := range rep.Kernels {
		if filter != "" && !strings.Contains(kr.Kernel, filter) {
			continue
		}
		fmt.Printf("%-36s %8d %8d %8d %14d %16d\n",
			kr.Kernel, kr.Static, kr.SliceSize, kr.PerThread, kr.Threads, kr.Executed)
	}
}
