// Command experiments regenerates the paper's tables and figures from
// the reproduction pipeline.
//
// Usage:
//
//	experiments [-table 1|2|3|4] [-figure 4] [-all] [-cpuprofile file] [-memprofile file]
//
// With no flags it runs everything. Table II/III/Fig4/Table IV share one
// phase-1 dataset build over the 31 Table I CNNs and both training GPUs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cnnperf/internal/core"
	"cnnperf/internal/experiments"
	"cnnperf/internal/profiler"
)

// fatalf aborts like log.Fatalf after flushing any active pprof
// profiles, so a failed run still leaves usable profile data.
var fatalf = log.Fatalf

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-4)")
	figure := flag.Int("figure", 0, "regenerate one figure (4)")
	all := flag.Bool("all", false, "regenerate everything")
	ext := flag.Bool("ext", false, "also run the extension studies (cross-validation, DVFS, feature sets)")
	simcomp := flag.Bool("simcomp", false, "run the cycle-level-simulator comparison (slow)")
	workers := flag.Int("workers", 0, "worker pool size for the analysis pipeline (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof allocation profile of the run to this file")
	flag.Parse()

	if *table == 0 && *figure == 0 && !*ext && !*simcomp {
		*all = true
	}
	log.SetFlags(0)

	stopProfiles, err := profiler.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatalf("experiments: %v", err)
	}
	fatalf = func(format string, args ...any) {
		stopProfiles()
		log.Fatalf(format, args...)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Fatalf("experiments: %v", err)
		}
	}()

	cfg := core.DefaultConfig()
	cfg.Workers = *workers
	var suite *experiments.Suite
	needSuite := *all || *table >= 2 || *figure == 4 || *ext || *simcomp
	if needSuite {
		var err error
		suite, err = experiments.NewSuite(cfg)
		if err != nil {
			fatalf("building dataset: %v", err)
		}
		fmt.Fprintf(os.Stderr, "dataset: %d rows (train %d / eval %d) built in %s\n",
			suite.Data.Len(), suite.Train.Len(), suite.Eval.Len(), suite.BuildTime.Round(1e6))
	}

	if *all || *table == 1 {
		if suite == nil {
			var err error
			suite, err = experiments.NewSuite(cfg)
			if err != nil {
				fatalf("building dataset: %v", err)
			}
		}
		fmt.Println(suite.TableI())
	}
	if *all || *table == 2 {
		_, text, err := suite.TableII()
		if err != nil {
			fatalf("table II: %v", err)
		}
		fmt.Println(text)
	}
	if *all || *table == 3 {
		_, text, err := suite.TableIII()
		if err != nil {
			fatalf("table III: %v", err)
		}
		fmt.Println(text)
	}
	if *all || *figure == 4 {
		_, text, err := suite.Fig4()
		if err != nil {
			fatalf("figure 4: %v", err)
		}
		fmt.Println(text)
	}
	if *all || *table == 4 {
		_, text, err := suite.TableIV()
		if err != nil {
			fatalf("table IV: %v", err)
		}
		fmt.Println(text)
	}
	if *ext {
		_, text, err := suite.CrossValidation(5)
		if err != nil {
			fatalf("cross-validation: %v", err)
		}
		fmt.Println(text)
		_, text, err = suite.FrequencyScaling("resnet50v2", "gtx1080ti",
			[]float64{800, 1000, 1200, 1400, 1582, 1800, 2000})
		if err != nil {
			fatalf("frequency scaling: %v", err)
		}
		fmt.Println(text)
		text, err = suite.ExtendedFeatureStudy()
		if err != nil {
			fatalf("feature study: %v", err)
		}
		fmt.Println(text)
		_, _, text, err = suite.StaticFeatureStudy()
		if err != nil {
			fatalf("static feature study: %v", err)
		}
		fmt.Println(text)
		_, _, text, err = suite.BBFeatureStudy()
		if err != nil {
			fatalf("bb feature study: %v", err)
		}
		fmt.Println(text)
		_, _, text, err = suite.DatasetSizeStudy()
		if err != nil {
			fatalf("dataset-size study: %v", err)
		}
		fmt.Println(text)
	}
	if *simcomp {
		text, err := suite.SimulatorComparison(
			[]string{"alexnet", "mobilenetv2", "squeezenet", "resnet18"}, "gtx1080ti")
		if err != nil {
			fatalf("simulator comparison: %v", err)
		}
		fmt.Println(text)
	}
}
