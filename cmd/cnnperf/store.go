package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"cnnperf"
	"cnnperf/internal/artifactstore"
	"cnnperf/internal/core"
)

// runStore dispatches the artifact-store subcommand family:
//
//	cnnperf store warm   -dir DIR [-models a,b,...]  precompute artifacts into a store
//	cnnperf store export -dir DIR -out FILE          pack a store into one snapshot file
//	cnnperf store import -dir DIR -in FILE           unpack a snapshot into a store
//	cnnperf store verify [-dir DIR] [-in FILE]       check every record's integrity
//	cnnperf store gc     -dir DIR                    remove quarantined and stale temp files
//
// A warmed store (or its exported snapshot) is what lets cnnperfd boot
// warm: `cnnperfd -store DIR` or `cnnperfd -snapshot FILE` serves its
// first prediction from persisted artifacts instead of recomputing the
// training pipeline.
func runStore(ctx context.Context, args []string, cfg cnnperf.Config) error {
	if len(args) < 1 {
		return fmt.Errorf("store needs a subcommand: warm, export, import, verify or gc")
	}
	switch args[0] {
	case "warm":
		return runStoreWarm(ctx, args[1:], cfg)
	case "export":
		return runStoreExport(ctx, args[1:])
	case "import":
		return runStoreImport(ctx, args[1:])
	case "verify":
		return runStoreVerify(ctx, args[1:])
	case "gc":
		return runStoreGC(ctx, args[1:])
	default:
		return fmt.Errorf("store: unknown subcommand %q (want warm, export, import, verify or gc)", args[0])
	}
}

// openTier opens the store at dir and wraps it in the full codec tier.
func openTier(dir string) (*artifactstore.Store, *artifactstore.Tier, error) {
	store, err := artifactstore.Open(dir)
	if err != nil {
		return nil, nil, err
	}
	tier, err := core.NewArtifactTier(store)
	if err != nil {
		return nil, nil, err
	}
	return store, tier, nil
}

// runStoreWarm computes the artifacts cnnperfd needs at boot — the
// leave-one-out estimators and per-model analyses — with the disk tier
// attached, so everything writes through into the store.
func runStoreWarm(ctx context.Context, args []string, cfg cnnperf.Config) error {
	fs := flag.NewFlagSet("store warm", flag.ContinueOnError)
	dir := fs.String("dir", "", "artifact store directory (required)")
	models := fs.String("models", "", "comma-separated zoo models to warm (default: full-zoo estimator only)")
	workers := fs.Int("workers", 0, "worker pool size for the analyses (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("store warm: -dir is required")
	}
	store, tier, err := openTier(*dir)
	if err != nil {
		return err
	}
	tier.SetBaseContext(ctx)
	cache := cnnperf.NewAnalysisCache(0)
	cache.SetSecondTier(tier)
	cfg.Cache = cache
	cfg.Workers = *workers

	// The full-zoo estimator backs every raw-PTX prediction; the
	// per-model leave-one-out estimators back zoo-model predictions.
	// Keying through the cache (with the tier attached) is what writes
	// each trained model and every intermediate analysis artifact to disk.
	warm := func(exclude string) error {
		key := core.EstimatorKey(exclude, cfg)
		_, _, err := cache.GetOrCompute(key, func() (any, error) {
			return core.LeaveOneOutEstimatorContext(ctx, exclude, cfg)
		})
		return err
	}
	if err := warm(""); err != nil {
		return err
	}
	fmt.Println("warmed full-zoo estimator")
	var names []string
	if *models != "" {
		for _, m := range strings.Split(*models, ",") {
			if m = strings.TrimSpace(m); m != "" {
				names = append(names, m)
			}
		}
	}
	for _, m := range names {
		if err := warm(m); err != nil {
			return fmt.Errorf("store warm: model %q: %w", m, err)
		}
		if _, err := core.AnalyzeCNNContext(ctx, m, cfg); err != nil {
			return fmt.Errorf("store warm: model %q: %w", m, err)
		}
		fmt.Printf("warmed %s\n", m)
	}
	st := store.Stats()
	fmt.Printf("store %s: %d records written, %d disk hits\n", *dir, st.Puts, st.Hits)
	return nil
}

func runStoreExport(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("store export", flag.ContinueOnError)
	dir := fs.String("dir", "", "artifact store directory (required)")
	out := fs.String("out", "store.snap", "output snapshot file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("store export: -dir is required")
	}
	store, err := artifactstore.Open(*dir)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	n, err := store.Export(ctx, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(*out)
		return err
	}
	fmt.Printf("exported %d records to %s\n", n, *out)
	return nil
}

func runStoreImport(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("store import", flag.ContinueOnError)
	dir := fs.String("dir", "", "artifact store directory (required)")
	in := fs.String("in", "", "snapshot file to import (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *in == "" {
		return fmt.Errorf("store import: -dir and -in are required")
	}
	store, err := artifactstore.Open(*dir)
	if err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := store.Import(ctx, f)
	if err != nil {
		return err
	}
	fmt.Printf("imported %d records into %s\n", n, *dir)
	return nil
}

func runStoreVerify(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("store verify", flag.ContinueOnError)
	dir := fs.String("dir", "", "artifact store directory to verify")
	in := fs.String("in", "", "snapshot file to verify")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" && *in == "" {
		return fmt.Errorf("store verify: need -dir and/or -in")
	}
	if *dir != "" {
		store, err := artifactstore.Open(*dir)
		if err != nil {
			return err
		}
		res, err := store.Verify(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("store %s: %d records, %d bytes, %d corrupt (quarantined)\n",
			*dir, res.Records, res.Bytes, res.Corrupt)
		if res.Corrupt > 0 {
			return fmt.Errorf("store verify: %d corrupt records", res.Corrupt)
		}
	}
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := artifactstore.ReadSnapshot(f, func(ns, key string, payload []byte) error { return nil })
		if err != nil {
			return fmt.Errorf("store verify: snapshot %s: %w", *in, err)
		}
		fmt.Printf("snapshot %s: %d records, all checksums valid\n", *in, n)
	}
	return nil
}

func runStoreGC(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("store gc", flag.ContinueOnError)
	dir := fs.String("dir", "", "artifact store directory (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("store gc: -dir is required")
	}
	store, err := artifactstore.Open(*dir)
	if err != nil {
		return err
	}
	res, err := store.GC(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("store %s: removed %d quarantined/temp files\n", *dir, res.Removed)
	return nil
}
