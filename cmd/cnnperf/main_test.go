package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"cnnperf"
)

// writePTX drops a one-kernel module into a temp file for runLint.
func writePTX(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "k.ptx")
	src := ".version 6.0\n.target sm_61\n.address_size 64\n" + body
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunLintVerdicts exercises the documented lint exit-code contract:
// nil for clean or info-only modules, errLintWarnings for warnings,
// errLintErrors for error-severity findings.
func TestRunLintVerdicts(t *testing.T) {
	cfg := cnnperf.DefaultConfig()
	cases := []struct {
		name string
		body string
		want error
	}{
		{
			name: "clean",
			body: `
.visible .entry clean()
{
	mov.u32 %r1, %tid.x;
	st.global.u32 [%r1], %r1;
	ret;
}
`,
			want: nil,
		},
		{
			// A hoistable loop-invariant load is PTXA012, info-severity:
			// still a clean exit.
			name: "info only",
			body: `
.visible .entry infoonly(
.param .u64 p0
)
{
	ld.param.u64 %rd1, [p0];
	mov.u32 %r1, 0;
L:
	ld.global.f32 %f1, [%rd1];
	st.global.f32 [%rd1], %f1;
	add.s32 %r1, %r1, 1;
	setp.lt.s32 %p1, %r1, 16;
	@%p1 bra L;
	ret;
}
`,
			want: nil,
		},
		{
			// A provably uncoalesced global stride is PTXA010,
			// warning-severity.
			name: "warnings",
			body: `
.visible .entry warn(
.param .u64 p0
)
{
	ld.param.u64 %rd1, [p0];
	mov.u32 %r1, %tid.x;
	mul.wide.s32 %rd2, %r1, 64;
	add.s64 %rd3, %rd1, %rd2;
	ld.global.f32 %f1, [%rd3];
	st.global.f32 [%rd3], %f1;
	ret;
}
`,
			want: errLintWarnings,
		},
		{
			// Use-before-def is PTXA001, error-severity.
			name: "errors",
			body: `
.visible .entry bad()
{
	add.s32 %r1, %r2, 1;
	ret;
}
`,
			want: errLintErrors,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := runLint([]string{writePTX(t, tc.body)}, cfg)
			if !errors.Is(err, tc.want) {
				t.Errorf("runLint verdict = %v, want %v", err, tc.want)
			}
		})
	}
}
