// Command cnnperf is the command-line front end of the performance
// estimation pipeline.
//
// Usage:
//
//	cnnperf models                      list the CNN zoo
//	cnnperf gpus                        list the GPU catalogue
//	cnnperf analyze <model>             static + dynamic analysis of one CNN
//	cnnperf lint [-json] <model|file>   static-analysis diagnostics of generated or on-disk PTX
//	                                    (exit 0 clean/info, 1 warnings, 2 errors; output is
//	                                    sorted by kernel, line, code)
//	cnnperf dataset [-out file.csv] [-workers n] [-cachestats]
//	                                    build the phase-1 training dataset
//	cnnperf evaluate                    compare the five regressors (Table II)
//	cnnperf predict <model> <gpu>       estimate IPC without execution
//	cnnperf profile <model> <gpu>       nvprof-style simulated profile
//	cnnperf sweep <model> <gpu>         DVFS frequency sweep
//	cnnperf crossval [-k n]             k-fold cross-validation of all regressors
//	cnnperf train [-out est.json]       train and persist the Decision Tree estimator
//	cnnperf dot <model>                 Graphviz dot of the CNN graph
//	cnnperf dse <model> [-power W] [-latency s] [-eff]
//	                                    rank candidate GPUs under constraints
//	cnnperf stats                       dataset feature statistics
//	cnnperf store <warm|export|import|verify|gc>
//	                                    manage the persistent artifact store
//	                                    (see store.go; feeds cnnperfd warm boots)
//
// The global -cpuprofile and -memprofile flags (before the subcommand)
// write pprof profiles of the pipeline itself; -trace writes a Chrome
// trace_event JSON of the pipeline spans (open in chrome://tracing or
// Perfetto), and -trace-tree prints the span tree to stderr.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"cnnperf"
	"cnnperf/internal/core"
	"cnnperf/internal/mlearn/dataset"
	"cnnperf/internal/obs"
	"cnnperf/internal/profiler"
)

// traceSpanLimit caps recorded spans so a zoo-wide dataset build cannot
// balloon the trace without bound; dropped spans are reported.
const traceSpanLimit = 200_000

func main() {
	log.SetFlags(0)
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof allocation profile of the run to this file")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of the pipeline spans to this file")
	traceTree := flag.Bool("trace-tree", false, "print the recorded span tree to stderr after the run")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	stopProfiles, err := profiler.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatalf("cnnperf: %v", err)
	}
	ctx := context.Background()
	var tracer *obs.Tracer
	if *traceOut != "" || *traceTree {
		tracer = obs.NewTracer()
		tracer.SetLimit(traceSpanLimit)
		ctx = obs.WithTracer(ctx, tracer)
	}
	err = dispatch(ctx, args)
	if perr := stopProfiles(); err == nil {
		err = perr
	}
	// The trace is written even when the run failed: a trace of the
	// spans reached before the failure is exactly what debugging wants.
	if terr := writeTrace(tracer, *traceOut, *traceTree); err == nil {
		err = terr
	}
	if err != nil {
		// The lint sentinels carry the documented exit-code contract:
		// 2 for error-severity findings, 1 for warning-severity ones
		// (matching every other failure).
		log.Printf("cnnperf: %v", err)
		if errors.Is(err, errLintErrors) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// writeTrace exports the recorded spans (no-op without a tracer).
func writeTrace(tracer *obs.Tracer, out string, tree bool) error {
	if tracer == nil {
		return nil
	}
	if tree {
		fmt.Fprint(os.Stderr, tracer.Tree())
	}
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d spans to %s\n", tracer.SpanCount(), out)
	return nil
}

func dispatch(ctx context.Context, args []string) error {
	cfg := cnnperf.DefaultConfig()
	ctx, span := obs.Start(ctx, "cnnperf."+args[0])
	defer span.End()
	switch args[0] {
	case "models":
		for _, n := range cnnperf.ModelNames() {
			fmt.Println(n)
		}
		return nil
	case "gpus":
		for _, id := range cnnperf.GPUNames() {
			spec := cnnperf.MustGPU(id)
			fmt.Printf("%-12s %-22s %5d cores %4d SMs %7.0f GB/s %6d KiB L2\n",
				id, spec.Name, spec.CUDACores, spec.SMs, spec.MemBandwidthGBs, spec.L2CacheKB)
		}
		return nil
	case "analyze":
		return runAnalyze(ctx, args[1:], cfg)
	case "lint":
		return runLint(args[1:], cfg)
	case "dataset":
		return runDataset(ctx, args[1:], cfg)
	case "evaluate":
		return runEvaluate(ctx, cfg)
	case "predict":
		return runPredict(ctx, args[1:], cfg)
	case "profile":
		return runProfile(args[1:], cfg)
	case "sweep":
		return runSweep(args[1:], cfg)
	case "crossval":
		return runCrossval(ctx, args[1:], cfg)
	case "train":
		return runTrain(ctx, args[1:], cfg)
	case "dot":
		return runDot(args[1:])
	case "dse":
		return runDSE(ctx, args[1:], cfg)
	case "stats":
		return runStats(ctx, cfg)
	case "store":
		return runStore(ctx, args[1:], cfg)
	default:
		usage()
		os.Exit(2)
		return nil
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cnnperf [-cpuprofile file] [-memprofile file] <models|gpus|analyze|lint|dataset|evaluate|predict|profile|sweep|crossval|train|dot|dse|stats|store> [args]")
}

func runAnalyze(ctx context.Context, args []string, cfg cnnperf.Config) error {
	if len(args) != 1 {
		return fmt.Errorf("analyze needs exactly one model name")
	}
	a, err := core.AnalyzeCNNContext(ctx, args[0], cfg)
	if err != nil {
		return err
	}
	fmt.Printf("model:                  %s\n", a.Name)
	fmt.Printf("input:                  %s\n", a.Summary.Input)
	fmt.Printf("weighted layers:        %d\n", a.Summary.Layers)
	fmt.Printf("graph nodes:            %d\n", a.Summary.TotalNodes)
	fmt.Printf("trainable parameters:   %d\n", a.Summary.TrainableParams)
	fmt.Printf("neurons:                %d\n", a.Summary.Neurons)
	fmt.Printf("forward FLOPs:          %d\n", a.Summary.FLOPs)
	fmt.Printf("kernels:                %d\n", len(a.Report.Kernels))
	fmt.Printf("executed instructions:  %d\n", a.Report.Executed)
	fmt.Printf("mean control slice:     %.1f%% of static code\n", 100*a.Report.MeanSliceFraction)
	fmt.Printf("analysis time (t_dca):  %s\n", a.DCATime.Round(1e5))
	return nil
}

func runLint(args []string, cfg cnnperf.Config) error {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("lint needs one <model|ptx-file> argument")
	}
	target := fs.Arg(0)
	var diags []cnnperf.Diag
	if data, rerr := os.ReadFile(target); rerr == nil {
		var err error
		if diags, err = cnnperf.LintPTX(string(data)); err != nil {
			return err
		}
	} else {
		var err error
		if diags, err = cnnperf.LintCNN(target, cfg); err != nil {
			return err
		}
	}
	if *jsonOut {
		if diags == nil {
			diags = []cnnperf.Diag{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		fmt.Printf("%d diagnostics\n", len(diags))
	}
	// Exit-code contract: 2 on error-severity findings, 1 on warnings,
	// 0 when clean (info-only diagnostics count as clean).
	if cnnperf.HasLintErrors(diags) {
		return errLintErrors
	}
	for _, d := range diags {
		if d.Severity == cnnperf.SevWarning {
			return errLintWarnings
		}
	}
	return nil
}

// errLintErrors and errLintWarnings are the lint verdict sentinels main
// maps onto the documented exit codes (2 and 1 respectively).
var (
	errLintErrors   = errors.New("lint found error-severity diagnostics")
	errLintWarnings = errors.New("lint found warning-severity diagnostics")
)

func runDataset(ctx context.Context, args []string, cfg cnnperf.Config) error {
	fs := flag.NewFlagSet("dataset", flag.ContinueOnError)
	out := fs.String("out", "dataset.csv", "output CSV path")
	workers := fs.Int("workers", 0, "worker pool size for the per-model analyses (0 = GOMAXPROCS)")
	cachestats := fs.Bool("cachestats", false, "print the analysis-cache hit/miss counters")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg.Workers = *workers
	cache := cnnperf.NewAnalysisCache(0)
	cfg.Cache = cache
	ds, _, err := cnnperf.BuildDatasetContext(ctx, cnnperf.TableIModels(), cnnperf.TrainingGPUs(), cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ds.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("wrote %d observations to %s\n", ds.Len(), *out)
	if *cachestats {
		fmt.Printf("analysis cache: %s\n", cache.Stats())
	}
	return nil
}

func runEvaluate(ctx context.Context, cfg cnnperf.Config) error {
	ds, _, err := cnnperf.BuildDatasetContext(ctx, cnnperf.TableIModels(), cnnperf.TrainingGPUs(), cfg)
	if err != nil {
		return err
	}
	train, eval, err := ds.Split(0.7, cfg.SplitSeed)
	if err != nil {
		return err
	}
	evals, err := core.EvaluateRegressorsContext(ctx, train, eval, cnnperf.DefaultRegressors(cfg.SplitSeed), 0)
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %10s %8s %9s\n", "Regression Model", "MAPE", "R2", "adj.R2")
	for _, e := range evals {
		fmt.Printf("%-20s %9.2f%% %8.3f %9.3f\n", e.Name, e.MAPE, e.R2, e.AdjR2)
	}
	best, err := cnnperf.BestByMAPE(evals)
	if err != nil {
		return err
	}
	fmt.Printf("winner: %s\n", best.Name)
	return nil
}

func runPredict(ctx context.Context, args []string, cfg cnnperf.Config) error {
	if len(args) != 2 {
		return fmt.Errorf("predict needs <model> <gpu>")
	}
	model, gpuID := args[0], args[1]
	spec, err := cnnperf.GPU(gpuID)
	if err != nil {
		return err
	}
	// Shared with cnnperfd's /v1/predict: leave-one-out training (so
	// the prediction is honest even for zoo models), analysis, and
	// per-GPU scoring all go through the same core entry points, which
	// is what keeps the CLI and the daemon byte-identical.
	est, err := core.LeaveOneOutEstimatorContext(ctx, model, cfg)
	if err != nil {
		return err
	}
	a, err := core.AnalyzeCNNContext(ctx, model, cfg)
	if err != nil {
		return err
	}
	preds, err := core.PredictAnalyzedContext(ctx, est, a, []string{gpuID})
	if err != nil {
		return err
	}
	ipc := preds[0].IPC
	fmt.Printf("predicted IPC of %s on %s: %.1f (in %s)\n", model, spec.Name, ipc, est.LastPredictTime())
	// Ground truth from the simulator for comparison.
	sim, err := cnnperf.SimulateCNN(model, gpuID, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("simulated (measured) IPC:          %.1f  (error %+.1f%%)\n",
		sim.IPC, 100*(ipc-sim.IPC)/sim.IPC)
	return nil
}

func runProfile(args []string, cfg cnnperf.Config) error {
	if len(args) != 2 {
		return fmt.Errorf("profile needs <model> <gpu>")
	}
	p, err := cnnperf.ProfileCNN(args[0], args[1], cfg)
	if err != nil {
		return err
	}
	fmt.Print(p.Format(15))
	return nil
}

func runSweep(args []string, cfg cnnperf.Config) error {
	if len(args) != 2 {
		return fmt.Errorf("sweep needs <model> <gpu>")
	}
	spec, err := cnnperf.GPU(args[1])
	if err != nil {
		return err
	}
	base := spec.BoostClockMHz
	clocks := []float64{0.5 * base, 0.65 * base, 0.8 * base, 0.9 * base, base, 1.15 * base, 1.3 * base}
	points, err := cnnperf.FrequencySweep(args[0], args[1], clocks, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("DVFS sweep of %s on %s:\n", args[0], spec.Name)
	fmt.Printf("%10s %12s %12s %10s %10s\n", "clock MHz", "runtime s", "IPC", "power W", "energy J")
	for _, pt := range points {
		fmt.Printf("%10.0f %12.5f %12.1f %10.1f %10.2f\n",
			pt.ClockMHz, pt.Result.RuntimeSec, pt.Result.IPC, pt.Result.AvgPowerW, pt.Result.EnergyJ)
	}
	return nil
}

func runCrossval(ctx context.Context, args []string, cfg cnnperf.Config) error {
	fs := flag.NewFlagSet("crossval", flag.ContinueOnError)
	k := fs.Int("k", 5, "number of folds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, _, err := cnnperf.BuildDatasetContext(ctx, cnnperf.TableIModels(), cnnperf.TrainingGPUs(), cfg)
	if err != nil {
		return err
	}
	factories := map[string]func() cnnperf.Regressor{
		"linear_regression": func() cnnperf.Regressor { return cnnperf.NewLinearRegression() },
		"knn":               func() cnnperf.Regressor { return cnnperf.NewKNN(3) },
		"random_forest":     func() cnnperf.Regressor { return cnnperf.NewRandomForest(100, cfg.SplitSeed) },
		"decision_tree":     func() cnnperf.Regressor { return cnnperf.NewDecisionTree() },
		"xgboost":           func() cnnperf.Regressor { return cnnperf.NewXGBoost(cfg.SplitSeed) },
	}
	fmt.Printf("%-20s %12s %12s %10s\n", "Regression Model", "mean MAPE", "std MAPE", "mean R2")
	for _, name := range []string{"linear_regression", "knn", "random_forest", "decision_tree", "xgboost"} {
		res, err := cnnperf.CrossValidate(factories[name], ds, *k, cfg.SplitSeed)
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %11.2f%% %11.2f%% %10.3f\n", name, res.MeanMAPE, res.StdMAPE, res.MeanR2)
	}
	return nil
}

func runTrain(ctx context.Context, args []string, cfg cnnperf.Config) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	out := fs.String("out", "estimator.json", "output path for the trained estimator")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, _, err := cnnperf.BuildDatasetContext(ctx, cnnperf.TableIModels(), cnnperf.TrainingGPUs(), cfg)
	if err != nil {
		return err
	}
	est, err := core.TrainEstimatorContext(ctx, ds, cnnperf.NewDecisionTree())
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := est.Save(f); err != nil {
		return err
	}
	fmt.Printf("trained decision-tree estimator on %d observations, saved to %s\n", ds.Len(), *out)
	return nil
}

func runDot(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("dot needs exactly one model name")
	}
	m, err := cnnperf.BuildCNN(args[0])
	if err != nil {
		return err
	}
	fmt.Print(m.DOT())
	return nil
}

func runDSE(ctx context.Context, args []string, cfg cnnperf.Config) error {
	if len(args) < 1 {
		return fmt.Errorf("dse needs a model name")
	}
	model := args[0]
	fs := flag.NewFlagSet("dse", flag.ContinueOnError)
	power := fs.Float64("power", 0, "power budget in watts (0 = unconstrained)")
	latency := fs.Float64("latency", 0, "latency bound in seconds (0 = unconstrained)")
	eff := fs.Bool("eff", false, "rank by performance per watt instead of latency")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	est, err := core.LeaveOneOutEstimatorContext(ctx, model, cfg)
	if err != nil {
		return err
	}
	a, err := core.AnalyzeCNNContext(ctx, model, cfg)
	if err != nil {
		return err
	}
	obj := cnnperf.MinLatency
	if *eff {
		obj = cnnperf.MaxEfficiency
	}
	res, err := cnnperf.ExploreDesignSpace(est, a, cnnperf.GPUNames(),
		cnnperf.DSEConstraints{MaxPowerW: *power, MaxLatencySec: *latency}, obj)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func runStats(ctx context.Context, cfg cnnperf.Config) error {
	ds, _, err := cnnperf.BuildDatasetContext(ctx, cnnperf.TableIModels(), cnnperf.TrainingGPUs(), cfg)
	if err != nil {
		return err
	}
	stats, err := ds.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %d observations\n", ds.Len())
	fmt.Print(dataset.FormatStats(stats))
	return nil
}
