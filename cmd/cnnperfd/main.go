// Command cnnperfd is the prediction serving daemon: a long-lived
// HTTP/JSON front end over the performance-estimation pipeline that
// amortizes analysis-cache and compiled-DCA work across requests.
//
// Endpoints:
//
//	POST /v1/predict  {"model":"vgg16","gpus":["gtx1080ti","v100s"]}
//	                  or {"ptx":"...","trainable_params":N,"gpus":[...]}
//	POST /v1/lint     {"model":"vgg16"} or {"ptx":"..."}
//	GET  /healthz     liveness probe
//	GET  /metrics     expvar-style JSON counters
//
// SIGINT/SIGTERM triggers a graceful shutdown: in-flight requests
// complete, late arrivals get 503.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cnnperf/internal/profiler"
	"cnnperf/internal/server"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", ":8077", "listen address")
	workers := flag.Int("workers", 0, "analysis worker pool size (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache-size", 0, "analysis cache capacity in entries (0 = unbounded)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request deadline")
	maxBody := flag.Int64("max-body", 1<<20, "request body size limit in bytes")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "how long to coalesce concurrent predictions into one batch")
	maxBatch := flag.Int("max-batch", 16, "maximum requests coalesced into one analysis batch")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the daemon to this file")
	memprofile := flag.String("memprofile", "", "write a pprof allocation profile of the daemon to this file")
	flag.Parse()

	stopProfiles, err := profiler.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatalf("cnnperfd: %v", err)
	}

	srv := server.New(server.Config{
		Addr:         *addr,
		Workers:      *workers,
		CacheSize:    *cacheSize,
		Timeout:      *timeout,
		MaxBodyBytes: *maxBody,
		BatchWindow:  *batchWindow,
		MaxBatch:     *maxBatch,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("cnnperfd: listening on %s (workers=%d cache-size=%d timeout=%s)",
		*addr, *workers, *cacheSize, *timeout)
	err = srv.ListenAndServe(ctx)
	if perr := stopProfiles(); err == nil {
		err = perr
	}
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("cnnperfd: %v", err)
	}
	log.Printf("cnnperfd: drained and stopped; final cache stats: %s", srv.CacheStats())
}
