// Command cnnperfd is the prediction serving daemon: a long-lived
// HTTP/JSON front end over the performance-estimation pipeline that
// amortizes analysis-cache and compiled-DCA work across requests.
//
// Endpoints:
//
//	POST /v1/predict  {"model":"vgg16","gpus":["gtx1080ti","v100s"]}
//	                  or {"ptx":"...","trainable_params":N,"gpus":[...]}
//	POST /v1/lint     {"model":"vgg16"} or {"ptx":"..."}
//	GET  /healthz     liveness probe
//	GET  /metrics     JSON counters, or Prometheus text with
//	                  Accept: text/plain (or ?format=prometheus)
//	GET  /debug/pprof/*  live profiling (only with -pprof)
//	GET  /debug/flightrecorder  retained traces as Chrome trace JSON
//	                  (always on; disable with -no-flight-recorder)
//
// Logs are structured JSON lines on stderr, one per request, carrying
// the request id echoed on X-Request-ID. SIGINT/SIGTERM triggers a
// graceful shutdown: in-flight requests complete, late arrivals get
// 503.
//
// Gateway mode (-gateway "http://host:port,...") turns the process
// into the sharded router instead of a replica: /v1/predict and
// /v1/lint are consistent-hashed by content key across the listed
// backend replicas, with /healthz probing (ejection + re-admission),
// bounded retries on connection failure, and cnnperfd_gw_* Prometheus
// metrics on /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cnnperf/internal/gateway"
	"cnnperf/internal/obs"
	"cnnperf/internal/profiler"
	"cnnperf/internal/server"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	workers := flag.Int("workers", 0, "analysis worker pool size (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache-size", 0, "analysis cache capacity in entries (0 = unbounded)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request deadline")
	maxBody := flag.Int64("max-body", 1<<20, "request body size limit in bytes")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "how long to coalesce concurrent predictions into one batch")
	maxBatch := flag.Int("max-batch", 16, "maximum requests coalesced into one analysis batch")
	logLevel := flag.String("log-level", "info", "log threshold: debug, info, warn or error")
	slowReq := flag.Duration("slow-request", 10*time.Second, "log completed requests slower than this at warn level (0 disables)")
	enablePprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (timeout-exempt)")
	storeDir := flag.String("store", "", "persistent artifact store directory (write-through disk tier under the cache)")
	snapshot := flag.String("snapshot", "", "warm-boot from a `cnnperf store export` snapshot file")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the daemon to this file")
	memprofile := flag.String("memprofile", "", "write a pprof allocation profile of the daemon to this file")
	gatewayBackends := flag.String("gateway", "", "run as the sharded gateway over these comma-separated backend URLs instead of a replica")
	gwProbeInterval := flag.Duration("gw-probe-interval", time.Second, "gateway health-check period")
	gwFailThreshold := flag.Int("gw-fail-threshold", 3, "consecutive probe failures that eject a backend")
	gwReviveThreshold := flag.Int("gw-revive-threshold", 2, "consecutive probe successes that re-admit a backend")
	gwRetries := flag.Int("gw-retries", 3, "maximum proxy attempts per request (including the first)")
	gwRetryBackoff := flag.Duration("gw-retry-backoff", 10*time.Millisecond, "backoff before the first retry (doubles per retry)")
	gwVNodes := flag.Int("gw-vnodes", 0, "virtual nodes per backend on the hash ring (0 = default 128)")
	noFlightRec := flag.Bool("no-flight-recorder", false, "disable the always-on flight recorder (and GET /debug/flightrecorder)")
	frCapacity := flag.Int("fr-capacity", 64, "flight recorder: retained slow/error traces")
	frSample := flag.Int("fr-sample", 64, "flight recorder: reservoir-sampled ordinary traces (negative disables sampling)")
	frSlow := flag.Duration("fr-slow", 250*time.Millisecond, "flight recorder: requests at least this slow are always retained")
	traceDir := flag.String("trace-dir", "", "write one Chrome trace file per retained flight-recorder trace to this directory on shutdown")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cnnperfd: %v\n", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)

	frCfg := obs.FlightRecorderConfig{
		Capacity:       *frCapacity,
		SampleCapacity: *frSample,
		SlowThreshold:  *frSlow,
	}

	if *gatewayBackends != "" {
		runGateway(logger, gateway.Config{
			Addr:                  *addr,
			Backends:              splitBackends(*gatewayBackends),
			VNodes:                *gwVNodes,
			ProbeInterval:         *gwProbeInterval,
			FailThreshold:         *gwFailThreshold,
			ReviveThreshold:       *gwReviveThreshold,
			RetryBudget:           *gwRetries,
			RetryBackoff:          *gwRetryBackoff,
			Timeout:               *timeout,
			MaxBodyBytes:          *maxBody,
			SlowRequest:           *slowReq,
			Logger:                logger,
			DisableFlightRecorder: *noFlightRec,
			FlightRecorder:        frCfg,
		}, *traceDir)
		return
	}

	stopProfiles, err := profiler.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		logger.Error("startup failed", obs.String("err", err.Error()))
		os.Exit(1)
	}

	srv, err := server.NewWithStore(server.Config{
		Addr:         *addr,
		Workers:      *workers,
		CacheSize:    *cacheSize,
		Timeout:      *timeout,
		MaxBodyBytes: *maxBody,
		BatchWindow:  *batchWindow,
		MaxBatch:     *maxBatch,
		Logger:       logger,
		SlowRequest:  *slowReq,
		EnablePprof:  *enablePprof,
		StoreDir:     *storeDir,
		SnapshotFile: *snapshot,

		DisableFlightRecorder: *noFlightRec,
		FlightRecorder:        frCfg,
	})
	if err != nil {
		logger.Error("startup failed", obs.String("err", err.Error()))
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logger.Info("listening",
		obs.String("addr", *addr), obs.Int("workers", *workers),
		obs.Int("cache_size", *cacheSize), obs.Duration("timeout", *timeout),
		obs.String("log_level", level.String()), obs.Bool("pprof", *enablePprof),
		obs.String("store", *storeDir), obs.String("snapshot", *snapshot))
	err = srv.ListenAndServe(ctx)
	if perr := stopProfiles(); err == nil {
		err = perr
	}
	dumpTraces(logger, srv.FlightRecorder(), *traceDir)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("server failed", obs.String("err", err.Error()))
		os.Exit(1)
	}
	logger.Info("drained and stopped", obs.String("cache_stats", srv.CacheStats().String()))
}

// dumpTraces writes the flight recorder's retained traces as Chrome
// trace files, one per trace, when -trace-dir is set.
func dumpTraces(logger *obs.Logger, fr *obs.FlightRecorder, dir string) {
	if dir == "" || fr == nil {
		return
	}
	n, err := fr.WriteDir(dir)
	if err != nil {
		logger.Error("trace dump failed", obs.String("dir", dir), obs.String("err", err.Error()))
		return
	}
	logger.Info("traces written", obs.String("dir", dir), obs.Int("traces", n))
}

// runGateway boots the sharded router mode and serves until
// SIGINT/SIGTERM, then drains (in-flight proxies finish, late
// arrivals get 503).
func runGateway(logger *obs.Logger, cfg gateway.Config, traceDir string) {
	gw, err := gateway.New(cfg)
	if err != nil {
		logger.Error("gateway startup failed", obs.String("err", err.Error()))
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Info("gateway listening",
		obs.String("addr", cfg.Addr),
		obs.String("backends", strings.Join(cfg.Backends, ",")),
		obs.Int("retries", cfg.RetryBudget))
	err = gw.ListenAndServe(ctx)
	dumpTraces(logger, gw.FlightRecorder(), traceDir)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("gateway failed", obs.String("err", err.Error()))
		os.Exit(1)
	}
	logger.Info("gateway drained and stopped")
}

func splitBackends(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
