// Command loadgen replays a deterministic zoo-model + raw-PTX request
// mix against a cnnperfd replica or gateway and reports throughput and
// latency percentiles. It is the capacity-measurement harness behind
// BENCH_9.json and the integration driver of the gateway CI smoke.
//
// Closed loop (default): -concurrency workers each issue their next
// request when the previous completes — measures saturated capacity.
// Open loop: -rate issues requests on a fixed schedule regardless of
// latency — measures behaviour at a target arrival rate.
//
//	loadgen -target http://127.0.0.1:8076 -duration 10s -warmup 3s \
//	  -models alexnet,mobilenet -gpus gtx1080ti,v100s -ptx-every 2 \
//	  -name 2-replica-gateway -out BENCH_9.json
//
// With -baseline and -baseline-config the run additionally acts as a
// regression gate: it fails (exit 1) when the measured p99 exceeds
// slack x the recorded baseline p99.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cnnperf/internal/loadgen"
)

func main() {
	target := flag.String("target", "http://127.0.0.1:8077", "base URL of the replica or gateway under load")
	duration := flag.Duration("duration", 10*time.Second, "measured window")
	warmup := flag.Duration("warmup", 0, "unmeasured warmup window before the run (absorbs cold-start costs)")
	concurrency := flag.Int("concurrency", 8, "closed-loop workers (or in-flight bound in open loop)")
	rate := flag.Float64("rate", 0, "open-loop request rate per second (0 = closed loop)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	models := flag.String("models", "alexnet", "comma-separated zoo models in the mix")
	gpus := flag.String("gpus", "gtx1080ti,v100s", "comma-separated prediction GPUs")
	ptxEvery := flag.Int("ptx-every", 0, "insert one raw-PTX predict after every n model requests (0 = none)")
	lintEvery := flag.Int("lint-every", 0, "insert one model lint after every n requests (0 = none)")
	name := flag.String("name", "", "config name recorded in -out and shown in the report")
	out := flag.String("out", "", "merge the result into this BENCH_*.json file")
	benchName := flag.String("bench", "gateway_capacity", "benchmark name written to -out")
	jsonOut := flag.Bool("json", false, "print the result as JSON instead of the table")
	require2xx := flag.Bool("require-2xx", false, "exit 1 if any request failed or returned non-2xx")
	baseline := flag.String("baseline", "", "BENCH_*.json file to check the measured p99 against")
	baselineConfig := flag.String("baseline-config", "", "config name inside -baseline to compare with (defaults to -name)")
	slack := flag.Float64("p99-slack", 10, "allowed measured/baseline p99 ratio before the check fails")
	flag.Parse()

	mix := loadgen.MixSpec{
		Models:    splitList(*models),
		GPUs:      splitList(*gpus),
		PTXEvery:  *ptxEvery,
		LintEvery: *lintEvery,
	}
	requests, err := mix.Build()
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := loadgen.Run(ctx, loadgen.Options{
		Target:      *target,
		Requests:    requests,
		Duration:    *duration,
		Warmup:      *warmup,
		Concurrency: *concurrency,
		RatePerSec:  *rate,
		Timeout:     *timeout,
	})
	if err != nil && res.Requests == 0 {
		fatal(err)
	}
	res.Name = *name

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(res)
	} else {
		printTable(res)
	}

	if *out != "" {
		if res.Name == "" {
			fatal(fmt.Errorf("-out requires -name"))
		}
		if err := loadgen.MergeResult(*out, *benchName, res); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: merged config %q into %s\n", res.Name, *out)
	}

	exit := 0
	if *require2xx && res.Errors() > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: %d transport errors, %d non-2xx responses\n",
			res.TransportErrors, res.Non2xx)
		exit = 1
	}
	if *baseline != "" {
		cfg := *baselineConfig
		if cfg == "" {
			cfg = *name
		}
		if err := loadgen.CheckP99(*baseline, cfg, res.Latency.P99, *slack); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: FAIL: %v\n", err)
			exit = 1
		} else {
			fmt.Fprintf(os.Stderr, "loadgen: p99 %.2fms within %.1fx of baseline %q\n",
				res.Latency.P99, *slack, cfg)
		}
	}
	os.Exit(exit)
}

func printTable(r loadgen.Result) {
	fmt.Printf("target       %s\n", r.Target)
	if r.Name != "" {
		fmt.Printf("config       %s\n", r.Name)
	}
	fmt.Printf("mode         %s (concurrency %d", r.Mode, r.Concurrency)
	if r.RatePerSec > 0 {
		fmt.Printf(", rate %.1f/s", r.RatePerSec)
	}
	fmt.Printf(")\n")
	fmt.Printf("duration     %.2fs\n", r.DurationSeconds)
	fmt.Printf("requests     %d (%.1f rps)\n", r.Requests, r.ThroughputRPS)
	fmt.Printf("errors       %d transport, %d non-2xx\n", r.TransportErrors, r.Non2xx)
	for status, n := range r.StatusCounts {
		fmt.Printf("  status %s   %d\n", status, n)
	}
	fmt.Printf("latency ms   p50 %.2f  p90 %.2f  p95 %.2f  p99 %.2f  max %.2f  mean %.2f\n",
		r.Latency.P50, r.Latency.P90, r.Latency.P95, r.Latency.P99, r.Latency.Max, r.Latency.Mean)
	if len(r.SlowTraces) > 0 {
		fmt.Printf("slowest traces (pull from the target's /debug/flightrecorder):\n")
		for _, st := range r.SlowTraces {
			fmt.Printf("  %8.2fms  status %d  %-16s trace %s\n",
				st.LatencyMs, st.Status, st.Name, st.TraceID)
		}
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
	os.Exit(2)
}
