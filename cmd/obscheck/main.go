// Command obscheck validates observability artifacts, so CI can assert
// the daemon's Prometheus exposition and the CLI's Chrome traces are
// well-formed without external tooling (promtool, Perfetto).
//
// Usage:
//
//	obscheck prom [file]                  validate Prometheus text exposition
//	                                      (stdin when no file is given)
//	obscheck trace file [span ...]        validate Chrome trace_event JSON and
//	                                      require each named span to be present
//	obscheck stitch [-o out] [-trace id]  merge per-process Chrome trace files
//	        [-require-procs n] file...    (flight-recorder dumps) into one
//	                                      cross-process timeline keyed by
//	                                      W3C trace id
//
// Exit status is non-zero when validation fails, a required span is
// missing, or a stitched trace spans fewer processes than required.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"cnnperf/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "prom":
		err = runProm(os.Args[2:])
	case "trace":
		err = runTrace(os.Args[2:])
	case "stitch":
		err = runStitch(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: obscheck prom [file] | obscheck trace file [required-span ...] | obscheck stitch [-o out] [-trace id] [-require-procs n] file...")
}

func runProm(args []string) error {
	var (
		r    io.Reader = os.Stdin
		name           = "<stdin>"
	)
	if len(args) > 1 {
		return fmt.Errorf("prom takes at most one file argument")
	}
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		r, name = f, args[0]
	}
	n, err := obs.ValidatePrometheusText(r)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	fmt.Printf("%s: valid Prometheus exposition, %d samples\n", name, n)
	return nil
}

func runTrace(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("trace needs a file argument")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	names, err := obs.ValidateChromeTrace(data)
	if err != nil {
		return fmt.Errorf("%s: %w", args[0], err)
	}
	seen := make(map[string]int, len(names))
	for _, n := range names {
		seen[n]++
	}
	missing := 0
	for _, want := range args[1:] {
		if seen[want] == 0 {
			fmt.Fprintf(os.Stderr, "obscheck: %s: required span %q not found\n", args[0], want)
			missing++
		}
	}
	if missing > 0 {
		return fmt.Errorf("%d required spans missing (trace has %d spans)", missing, len(names))
	}
	fmt.Printf("%s: valid Chrome trace, %d spans, %d distinct names\n", args[0], len(names), len(seen))
	return nil
}

// runStitch merges per-process flight-recorder dumps into one Chrome
// trace timeline, validates the result, and reports which distributed
// traces crossed how many processes.
func runStitch(args []string) error {
	fs := flag.NewFlagSet("stitch", flag.ContinueOnError)
	out := fs.String("o", "", "write the stitched Chrome trace to this file (default stdout)")
	traceID := fs.String("trace", "", "keep only span events of this W3C trace id")
	requireProcs := fs.Int("require-procs", 0, "fail unless some trace spans at least this many processes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("stitch needs at least one trace file")
	}
	files := make([]obs.StitchFile, 0, fs.NArg())
	for _, name := range fs.Args() {
		data, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		files = append(files, obs.StitchFile{Name: name, Data: data})
	}
	res, err := obs.StitchChromeTraces(files, *traceID)
	if err != nil {
		return err
	}
	names, err := obs.ValidateChromeTrace(res.Doc)
	if err != nil {
		return fmt.Errorf("stitched trace invalid: %w", err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, res.Doc, 0o644); err != nil {
			return err
		}
	} else {
		_, _ = os.Stdout.Write(res.Doc)
		fmt.Println()
	}
	for _, p := range res.Processes {
		fmt.Fprintf(os.Stderr, "obscheck: pid %d %s: %d events\n", p.PID, p.Name, p.Events)
	}
	ids := make([]string, 0, len(res.TraceProcs))
	for id := range res.TraceProcs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	maxProcs := 0
	for _, id := range ids {
		n := res.TraceProcs[id]
		if n > maxProcs {
			maxProcs = n
		}
		fmt.Fprintf(os.Stderr, "obscheck: trace %s spans %d process(es)\n", id, n)
	}
	fmt.Fprintf(os.Stderr, "obscheck: stitched %d files, %d spans, %d distinct traces\n",
		len(files), len(names), len(res.TraceProcs))
	if *requireProcs > 0 && maxProcs < *requireProcs {
		return fmt.Errorf("no trace spans %d processes (max seen: %d)", *requireProcs, maxProcs)
	}
	return nil
}
