// Command obscheck validates observability artifacts, so CI can assert
// the daemon's Prometheus exposition and the CLI's Chrome traces are
// well-formed without external tooling (promtool, Perfetto).
//
// Usage:
//
//	obscheck prom [file]                  validate Prometheus text exposition
//	                                      (stdin when no file is given)
//	obscheck trace file [span ...]        validate Chrome trace_event JSON and
//	                                      require each named span to be present
//
// Exit status is non-zero when validation fails or a required span is
// missing.
package main

import (
	"fmt"
	"io"
	"os"

	"cnnperf/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "prom":
		err = runProm(os.Args[2:])
	case "trace":
		err = runTrace(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: obscheck prom [file] | obscheck trace file [required-span ...]")
}

func runProm(args []string) error {
	var (
		r    io.Reader = os.Stdin
		name           = "<stdin>"
	)
	if len(args) > 1 {
		return fmt.Errorf("prom takes at most one file argument")
	}
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		r, name = f, args[0]
	}
	n, err := obs.ValidatePrometheusText(r)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	fmt.Printf("%s: valid Prometheus exposition, %d samples\n", name, n)
	return nil
}

func runTrace(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("trace needs a file argument")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	names, err := obs.ValidateChromeTrace(data)
	if err != nil {
		return fmt.Errorf("%s: %w", args[0], err)
	}
	seen := make(map[string]int, len(names))
	for _, n := range names {
		seen[n]++
	}
	missing := 0
	for _, want := range args[1:] {
		if seen[want] == 0 {
			fmt.Fprintf(os.Stderr, "obscheck: %s: required span %q not found\n", args[0], want)
			missing++
		}
	}
	if missing > 0 {
		return fmt.Errorf("%d required spans missing (trace has %d spans)", missing, len(names))
	}
	fmt.Printf("%s: valid Chrome trace, %d spans, %d distinct names\n", args[0], len(names), len(seen))
	return nil
}
