package cnnperf_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"

	"cnnperf"
)

// TestZooLintRatchet is the zoo-wide lint ratchet: every model's
// diagnostic counts per code are pinned in testdata/lint_baseline.json.
// Error-severity findings fail outright (the zoo must stay executable),
// and any count above the baseline fails — a change may only introduce
// new warnings deliberately, by regenerating the baseline with
//
//	UPDATE_LINT_BASELINE=1 go test -run TestZooLintRatchet .
//
// Counts below the baseline only log, so fixes land without churn.
func TestZooLintRatchet(t *testing.T) {
	cfg := cnnperf.DefaultConfig()
	cfg.Cache = cnnperf.NewAnalysisCache(0)
	models := cnnperf.ModelNames()

	counts := make(map[string]map[string]int, len(models))
	var mu sync.Mutex
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, name := range models {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			diags, err := cnnperf.LintCNN(name, cfg)
			if err != nil {
				t.Errorf("lint %s: %v", name, err)
				return
			}
			byCode := make(map[string]int)
			for _, d := range diags {
				if d.Severity == cnnperf.SevError {
					t.Errorf("zoo model %s has an error-severity finding: %s", name, d)
				}
				byCode[d.Code]++
			}
			mu.Lock()
			counts[name] = byCode
			mu.Unlock()
		}(name)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	baselinePath := filepath.Join("testdata", "lint_baseline.json")
	if os.Getenv("UPDATE_LINT_BASELINE") != "" {
		buf, err := json.MarshalIndent(counts, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(baselinePath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		t.Fatalf("read baseline (regenerate with UPDATE_LINT_BASELINE=1): %v", err)
	}
	baseline := make(map[string]map[string]int)
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatalf("parse baseline: %v", err)
	}

	for _, name := range models {
		base := baseline[name] // missing model: all-zero, any finding ratchets
		codes := make([]string, 0, len(counts[name])+len(base))
		seen := make(map[string]bool)
		for c := range counts[name] {
			codes = append(codes, c)
			seen[c] = true
		}
		for c := range base {
			if !seen[c] {
				codes = append(codes, c)
			}
		}
		sort.Strings(codes)
		for _, code := range codes {
			got, want := counts[name][code], base[code]
			switch {
			case got > want:
				t.Errorf("ratchet: %s %s count %d > baseline %d — fix the regression or regenerate the baseline deliberately",
					name, code, got, want)
			case got < want:
				t.Logf("ratchet improvement: %s %s count %d < baseline %d (baseline can be tightened)",
					name, code, got, want)
			}
		}
	}
}
