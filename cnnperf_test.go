package cnnperf_test

import (
	"bytes"
	"strings"
	"testing"

	"cnnperf"
)

func TestPublicCatalogues(t *testing.T) {
	if got := len(cnnperf.TableIModels()); got != 31 {
		t.Errorf("TableIModels = %d, want 31", got)
	}
	if got := len(cnnperf.TrainingGPUs()); got != 2 {
		t.Errorf("TrainingGPUs = %d, want 2", got)
	}
	if got := len(cnnperf.DSEGPUs()); got != 7 {
		t.Errorf("DSEGPUs = %d, want 7", got)
	}
	if len(cnnperf.ModelNames()) < 31 {
		t.Error("zoo must expose at least the Table I models")
	}
	if len(cnnperf.GPUNames()) < 10 {
		t.Error("GPU catalogue too small")
	}
	if cnnperf.FeatureNames[0] != "executed_instructions" {
		t.Errorf("schema head = %s", cnnperf.FeatureNames[0])
	}
}

func TestPublicBuildAndAnalyze(t *testing.T) {
	m, err := cnnperf.BuildCNN("mobilenet")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := cnnperf.Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TrainableParams != 4231976 {
		t.Errorf("mobilenet params = %d", sum.TrainableParams)
	}
	if _, err := cnnperf.BuildCNN("nope"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestPublicCustomModelPipeline(t *testing.T) {
	b, x := cnnperf.NewModel("pub-test", cnnperf.Shape{H: 8, W: 8, C: 3})
	x = b.Add(cnnperf.Conv(4, 3, 1, cnnperf.Same), x)
	x = b.Add(cnnperf.ReLU(), x)
	x = b.Add(cnnperf.GlobalAvgPool(), x)
	x = b.Add(cnnperf.FC(2), x)
	m, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cnnperf.Config{}
	a, err := cnnperf.AnalyzeModel(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.Executed <= 0 {
		t.Error("no executed instructions")
	}
	p, err := cnnperf.ProfileModel(m, "t4", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.IPC <= 0 {
		t.Error("profile IPC non-positive")
	}
}

func TestPublicGeneratePTX(t *testing.T) {
	asm, err := cnnperf.GeneratePTX("alexnet", cnnperf.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{".version", ".visible .entry", "fma.rn.f32", "bra"} {
		if !strings.Contains(asm, want) {
			t.Errorf("PTX missing %q", want)
		}
	}
	if _, err := cnnperf.GeneratePTX("nope", cnnperf.Config{}); err == nil {
		t.Error("unknown model should error")
	}
}

func TestPublicExecutedInstructionsAndSimulate(t *testing.T) {
	cfg := cnnperf.Config{}
	n, err := cnnperf.ExecutedInstructions("alexnet", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Errorf("executed = %d", n)
	}
	sim, err := cnnperf.SimulateCNN("alexnet", "gtx1080ti", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Instructions != n {
		t.Errorf("simulator instructions %d != DCA %d", sim.Instructions, n)
	}
	if _, err := cnnperf.SimulateCNN("alexnet", "voodoo", cfg); err == nil {
		t.Error("unknown GPU should error")
	}
	if _, err := cnnperf.ProfileCNN("nope", "t4", cfg); err == nil {
		t.Error("unknown model should error")
	}
	if _, err := cnnperf.ProfileCNN("alexnet", "voodoo", cfg); err == nil {
		t.Error("unknown GPU should error")
	}
}

func TestPublicRegressorConstructors(t *testing.T) {
	regs := []cnnperf.Regressor{
		cnnperf.NewDecisionTree(),
		cnnperf.NewLinearRegression(),
		cnnperf.NewKNN(3),
		cnnperf.NewRandomForest(5, 1),
		cnnperf.NewXGBoost(1),
	}
	X := [][]float64{{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}}
	y := []float64{1, 2, 3, 4, 5, 6}
	for _, r := range regs {
		if err := r.Fit(X, y); err != nil {
			t.Errorf("%s: %v", r.Name(), err)
		}
		if p := r.Predict([]float64{3, 4}); p <= 0 {
			t.Errorf("%s: predict %f", r.Name(), p)
		}
	}
	if len(cnnperf.DefaultRegressors(1)) != 5 {
		t.Error("DefaultRegressors must return the paper's five candidates")
	}
}

func TestPublicEndToEndSmall(t *testing.T) {
	cfg := cnnperf.DefaultConfig()
	cfg.PTX.Batch = 1 // keep the smoke test fast
	models := []string{"alexnet", "mobilenet", "mobilenetv2", "densenet121"}
	ds, analyses, err := cnnperf.BuildDataset(models, cnnperf.TrainingGPUs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	train, eval, err := ds.Split(0.7, 3)
	if err != nil {
		t.Fatal(err)
	}
	evals, err := cnnperf.EvaluateRegressors(train, eval, cnnperf.DefaultRegressors(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cnnperf.BestByMAPE(evals); err != nil {
		t.Fatal(err)
	}
	est, err := cnnperf.TrainEstimator(ds, cnnperf.NewDecisionTree())
	if err != nil {
		t.Fatal(err)
	}
	ipc, err := est.Predict(analyses["alexnet"], cnnperf.MustGPU("p100"))
	if err != nil {
		t.Fatal(err)
	}
	if ipc <= 0 {
		t.Errorf("IPC = %f", ipc)
	}
}

func TestPublicCrossValidate(t *testing.T) {
	cfg := cnnperf.Config{}
	models := []string{"alexnet", "mobilenet", "mobilenetv2", "densenet121", "squeezenet", "resnet18"}
	ds, _, err := cnnperf.BuildDataset(models, cnnperf.TrainingGPUs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cnnperf.CrossValidate(func() cnnperf.Regressor { return cnnperf.NewDecisionTree() }, ds, 4, 1)
	if err != nil {
		t.Fatalf("cv: %v", err)
	}
	if res.Folds != 4 || res.MeanMAPE <= 0 {
		t.Errorf("cv result = %+v", res)
	}
}

func TestPublicFrequencySweep(t *testing.T) {
	points, err := cnnperf.FrequencySweep("alexnet", "gtx1080ti", []float64{1000, 1582}, cnnperf.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if points[1].Result.RuntimeSec > points[0].Result.RuntimeSec {
		t.Error("higher clock should not be slower")
	}
	if _, err := cnnperf.FrequencySweep("nope", "t4", []float64{1000}, cnnperf.Config{}); err == nil {
		t.Error("unknown model should error")
	}
	if _, err := cnnperf.FrequencySweep("alexnet", "voodoo", []float64{1000}, cnnperf.Config{}); err == nil {
		t.Error("unknown GPU should error")
	}
}

func TestPublicExtendedFeatures(t *testing.T) {
	if len(cnnperf.ExtendedFeatureNames) != len(cnnperf.FeatureNames)+2 {
		t.Error("extended schema must add flops and macs")
	}
	cfg := cnnperf.Config{ExtendedFeatures: true}
	ds, _, err := cnnperf.BuildDataset([]string{"alexnet", "mobilenet"}, cnnperf.TrainingGPUs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.FeatureNames) != len(cnnperf.ExtendedFeatureNames) {
		t.Errorf("dataset schema = %d", len(ds.FeatureNames))
	}
}

func TestPublicLint(t *testing.T) {
	if len(cnnperf.StaticFeatureNames) <= len(cnnperf.FeatureNames) {
		t.Error("static schema must extend the base schema")
	}
	diags, err := cnnperf.LintCNN("squeezenet", cnnperf.Config{})
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	if cnnperf.HasLintErrors(diags) {
		t.Errorf("generated PTX must lint clean of errors, got %v", diags)
	}
	bad := ".version 6.0\n.target sm_61\n.address_size 64\n" +
		".visible .entry bad()\n{\n\tadd.s32 %r2, %r5, 1;\n\tret;\n}\n"
	diags, err = cnnperf.LintPTX(bad)
	if err != nil {
		t.Fatalf("lint ptx: %v", err)
	}
	if !cnnperf.HasLintErrors(diags) {
		t.Errorf("use-before-def must be an error, got %v", diags)
	}
	if _, err := cnnperf.LintCNN("nope", cnnperf.Config{}); err == nil {
		t.Error("unknown model should error")
	}
	if _, err := cnnperf.LintPTX("not ptx at all"); err == nil {
		t.Error("unparsable PTX should error")
	}
}

func TestPublicDetailedSimulator(t *testing.T) {
	cfg := cnnperf.Config{}
	res, err := cnnperf.SimulateCNNDetailed("squeezenet", "gtx1080ti", cfg)
	if err != nil {
		t.Fatalf("detailed: %v", err)
	}
	truth, err := cnnperf.SimulateCNN("squeezenet", "gtx1080ti", cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := (res.IPC - truth.IPC) / truth.IPC
	if dev < -0.30 || dev > 0.30 {
		t.Errorf("detailed IPC %f deviates %+.0f%% from analytic %f", res.IPC, 100*dev, truth.IPC)
	}
	if _, err := cnnperf.SimulateCNNDetailed("nope", "t4", cfg); err == nil {
		t.Error("unknown model should error")
	}
	if _, err := cnnperf.SimulateCNNDetailed("squeezenet", "voodoo", cfg); err == nil {
		t.Error("unknown GPU should error")
	}
}

func TestPublicDSE(t *testing.T) {
	cfg := cnnperf.Config{}
	models := []string{"alexnet", "mobilenet", "mobilenetv2", "squeezenet"}
	ds, analyses, err := cnnperf.BuildDataset(models, cnnperf.TrainingGPUs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := cnnperf.TrainEstimator(ds, cnnperf.NewDecisionTree())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cnnperf.ExploreDesignSpace(est, analyses["mobilenetv2"], cnnperf.DSEGPUs(),
		cnnperf.DSEConstraints{MaxPowerW: 100}, cnnperf.MaxEfficiency)
	if err != nil {
		t.Fatal(err)
	}
	best, err := res.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Spec.TDPWatts > 100 {
		t.Errorf("best pick %s violates the power budget", best.ID)
	}
}

func TestPublicEstimatorSaveLoad(t *testing.T) {
	cfg := cnnperf.Config{}
	ds, analyses, err := cnnperf.BuildDataset([]string{"alexnet", "mobilenet"}, cnnperf.TrainingGPUs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := cnnperf.TrainEstimator(ds, cnnperf.NewDecisionTree())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := est.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := cnnperf.LoadEstimator(&buf)
	if err != nil {
		t.Fatal(err)
	}
	spec := cnnperf.MustGPU("t4")
	a, _ := est.Predict(analyses["alexnet"], spec)
	b, _ := back.Predict(analyses["alexnet"], spec)
	if a != b {
		t.Error("loaded estimator predicts differently")
	}
}
