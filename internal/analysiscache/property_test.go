package analysiscache_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cnnperf/internal/analysiscache"
	"cnnperf/internal/cnn"
	"cnnperf/internal/ptx"
	"cnnperf/internal/ptxgen"
)

// randomModels builds a corpus of small CNNs with randomized layer
// shapes (seeded, so the corpus is stable across runs) and compiles each
// to PTX. The generated kernels drive the cache-key property tests.
func randomModels(t *testing.T, seed int64, n int) []*ptxgen.Program {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var progs []*ptxgen.Program
	for i := 0; i < n; i++ {
		size := 16 + 8*rng.Intn(4)
		filters := 4 + 4*rng.Intn(8)
		kern := []int{1, 3, 5}[rng.Intn(3)]
		units := 8 + 8*rng.Intn(8)
		b, x := cnn.NewBuilder(fmt.Sprintf("prop_%d_%d", seed, i), cnn.Shape{H: size, W: size, C: 3})
		x = b.Add(cnn.Conv(filters, kern, 1, cnn.Same), x)
		x = b.Add(cnn.ReLU(), x)
		if rng.Intn(2) == 0 {
			x = b.Add(cnn.MaxPool2D(2, 2, cnn.Valid), x)
		}
		x = b.Add(cnn.Flatten{}, x)
		x = b.Add(cnn.FC(units), x)
		m, err := b.Build(x)
		if err != nil {
			t.Fatalf("building model %d: %v", i, err)
		}
		prog, err := ptxgen.Compile(m, ptxgen.Options{})
		if err != nil {
			t.Fatalf("compiling model %d: %v", i, err)
		}
		progs = append(progs, prog)
	}
	return progs
}

// TestFingerprintCollisionFreedom checks over the randomized corpus that
// a fingerprint never maps to two distinct canonical texts, and that a
// shared fingerprint always means identical canonical text.
func TestFingerprintCollisionFreedom(t *testing.T) {
	byFP := make(map[string]string)
	kernels := 0
	for _, prog := range randomModels(t, 1, 12) {
		for _, k := range prog.Module.Kernels {
			kernels++
			fp := analysiscache.Fingerprint(k)
			canon := analysiscache.CanonicalKernelText(k)
			if prev, ok := byFP[fp]; ok {
				if prev != canon {
					t.Fatalf("fingerprint %s maps to two distinct canonical texts:\n%s\nvs\n%s", fp, prev, canon)
				}
			} else {
				byFP[fp] = canon
			}
		}
	}
	if kernels == 0 {
		t.Fatal("corpus generated no kernels")
	}
	if len(byFP) < 2 {
		t.Fatalf("corpus degenerate: only %d distinct kernels", len(byFP))
	}
}

// TestIdenticalKernelsAlwaysHit checks that recompiling the same model
// yields kernels whose keys hit the entries of the first compilation.
func TestIdenticalKernelsAlwaysHit(t *testing.T) {
	first := randomModels(t, 2, 4)
	second := randomModels(t, 2, 4)
	c := analysiscache.New(0)
	for _, prog := range first {
		for _, k := range prog.Module.Kernels {
			c.Put(analysiscache.KernelKey("t", k), k.Name)
		}
	}
	for i, prog := range second {
		for j, k := range prog.Module.Kernels {
			if _, ok := c.Get(analysiscache.KernelKey("t", k)); !ok {
				t.Fatalf("identical kernel %d of model %d missed the cache", j, i)
			}
		}
	}
}

// TestRenamedKernelSameFingerprint checks name-independence: the same
// kernel body under a different entry and parameter naming scheme — the
// per-model fusion counter baked into generated kernel names — shares a
// fingerprint, while a single-instruction or single-operand difference
// does not.
func TestRenamedKernelSameFingerprint(t *testing.T) {
	const a = `.version 6.0
.target sm_61
.address_size 64
.visible .entry fusion_0_gemm(
.param .u64 fusion_0_gemm_param_0
)
{
mov.u32 %r1, %tid.x;
setp.lt.u32 %p1, %r1, 718296;
@%p1 bra BODY;
ret;
BODY:
ld.param.u64 %rd1, [fusion_0_gemm_param_0];
ret;
}
`
	// Same body, different fusion counter in kernel and parameter names.
	b := strings.ReplaceAll(a, "fusion_0_gemm", "fusion_13_gemm")
	// One operand difference (the bounds immediate).
	cSrc := strings.ReplaceAll(a, "718296", "718297")
	// One instruction difference (an extra move).
	d := strings.ReplaceAll(a, "BODY:\n", "BODY:\nmov.u32 %r2, %r1;\n")

	fp := func(src string) string {
		t.Helper()
		m, err := ptx.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if len(m.Kernels) != 1 {
			t.Fatalf("want 1 kernel, got %d", len(m.Kernels))
		}
		return analysiscache.Fingerprint(m.Kernels[0])
	}
	fpA, fpB, fpC, fpD := fp(a), fp(b), fp(cSrc), fp(d)
	if fpA != fpB {
		t.Fatalf("renamed kernel changed fingerprint: %s vs %s", fpA, fpB)
	}
	if fpA == fpC {
		t.Fatal("operand mutation kept the fingerprint")
	}
	if fpA == fpD {
		t.Fatal("instruction insertion kept the fingerprint")
	}
}

// TestKernelKeyDiscriminators checks that the namespace and every extra
// (launch geometry, parameter values, executor options) separate keys,
// and that the length framing prevents concatenation collisions.
func TestKernelKeyDiscriminators(t *testing.T) {
	prog := randomModels(t, 3, 1)[0]
	k := prog.Module.Kernels[0]
	base := analysiscache.KernelKey("dca", k, "grid=2;block=32", "0=7;")
	cases := map[string]string{
		"namespace":     analysiscache.KernelKey("ptxa", k, "grid=2;block=32", "0=7;"),
		"launch config": analysiscache.KernelKey("dca", k, "grid=4;block=32", "0=7;"),
		"param values":  analysiscache.KernelKey("dca", k, "grid=2;block=32", "0=8;"),
		"extra split":   analysiscache.KernelKey("dca", k, "grid=2;block=320=7;"),
		"no extras":     analysiscache.KernelKey("dca", k),
	}
	for name, key := range cases {
		if key == base {
			t.Fatalf("%s difference did not change the key", name)
		}
	}
	if again := analysiscache.KernelKey("dca", k, "grid=2;block=32", "0=7;"); again != base {
		t.Fatalf("key not stable: %s vs %s", base, again)
	}
}
