package analysiscache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetPutCounters(t *testing.T) {
	c := New(0)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %t; want 1, true", v, ok)
	}
	c.Put("a", 2) // overwrite in place
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("overwrite lost: got %v", v)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Evictions != 0 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if got := s.HitRate(); got != 2.0/3.0 {
		t.Fatalf("hit rate = %f", got)
	}
	want := "hits=2 misses=1 evictions=0 entries=1 hit_rate=66.7%"
	if s.String() != want {
		t.Fatalf("String() = %q, want %q", s.String(), want)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a") // a is now most recently used
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("least-recently-used entry b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently-used entry a was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("fresh entry c was evicted")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestGetOrComputeSingleflight(t *testing.T) {
	c := New(0)
	const goroutines = 16
	var computed atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.GetOrCompute("k", func() (any, error) {
				computed.Add(1)
				<-release // hold every concurrent caller in the miss window
				return "value", nil
			})
			if err != nil {
				t.Errorf("GetOrCompute: %v", err)
			}
			results[i] = v
		}(i)
	}
	close(release)
	wg.Wait()
	if n := computed.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != "value" {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != goroutines-1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestGetOrComputeErrorNotCached(t *testing.T) {
	c := New(0)
	calls := 0
	fail := func() (any, error) { calls++; return nil, fmt.Errorf("boom") }
	if _, _, err := c.GetOrCompute("k", fail); err == nil {
		t.Fatal("error swallowed")
	}
	if _, _, err := c.GetOrCompute("k", fail); err == nil {
		t.Fatal("error cached as success")
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (errors must not cache)", calls)
	}
	if _, _, err := c.GetOrCompute("k", func() (any, error) { return 7, nil }); err != nil {
		t.Fatalf("recovery compute failed: %v", err)
	}
	if v, ok := c.Get("k"); !ok || v.(int) != 7 {
		t.Fatalf("recovered value not cached: %v, %t", v, ok)
	}
}

func TestReset(t *testing.T) {
	c := New(0)
	c.Put("a", 1)
	c.Get("a")
	c.Reset()
	s := c.Stats()
	if s.Hits != 0 || s.Misses != 0 || s.Entries != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry survived reset")
	}
}

func TestResetDuringInflight(t *testing.T) {
	c := New(0)
	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, err := c.GetOrCompute("k", func() (any, error) {
			close(entered)
			<-release
			return "stale", nil
		})
		if err != nil {
			t.Errorf("GetOrCompute: %v", err)
		}
	}()
	<-entered
	c.Reset()
	close(release)
	<-done
	// The pre-reset computation must not repopulate the emptied cache.
	if _, ok := c.Get("k"); ok {
		t.Fatal("stale in-flight result cached across Reset")
	}
}
