// Package analysiscache is the content-addressed memo store underneath
// the analysis pipeline: per-kernel dynamic-code-analysis reports and
// static-analysis results are keyed by a hash of the kernel's canonical
// text (plus launch discriminators), so the many zoo models sharing
// identical conv/GEMM kernel shapes pay for each slice exactly once.
// The cache is safe for concurrent use by the worker pool: concurrent
// misses on one key are deduplicated so a value is computed at most
// once, and a bounded capacity evicts least-recently-used entries.
// Hit/miss/eviction counters are exposed for tests and the CLI.
package analysiscache

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits counts lookups answered from the cache, including lookups
	// that waited on an in-flight computation of the same key.
	Hits uint64
	// Misses counts lookups that had to compute the value.
	Misses uint64
	// Waits counts the subset of Hits that blocked on an in-flight
	// computation of the same key (singleflight sharing) rather than
	// reading a resident entry.
	Waits uint64
	// Evictions counts entries dropped by the capacity bound.
	Evictions uint64
	// Entries is the current resident entry count.
	Entries int
	// DiskHits counts the subset of Misses answered by the second tier
	// instead of running the compute function.
	DiskHits uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// String renders the counters in a CLI-friendly single line.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d evictions=%d entries=%d hit_rate=%.1f%%",
		s.Hits, s.Misses, s.Evictions, s.Entries, 100*s.HitRate())
}

type entry struct {
	key string
	val any
}

type call struct {
	done chan struct{}
	val  any
	err  error
}

// SecondTier is a persistent layer probed between a memory miss and the
// compute function, and written through on computed values. Get returns
// the decoded value, or ok=false for any miss (absent, corrupt, or
// undecodable — the tier decides; the cache just recomputes). Both
// methods must be safe for concurrent use; the cache calls them outside
// its lock, at most once per key per singleflight.
type SecondTier interface {
	Get(key string) (any, bool)
	Put(key string, v any)
}

// Cache is a concurrency-safe, content-addressed memo store with LRU
// eviction. The zero value is not usable; construct with New.
type Cache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used
	inflight map[string]*call

	// The counters are atomics, not mu-guarded fields, so Stats() is a
	// lock-free snapshot: a metrics endpoint polling a busy cache never
	// contends with the lookup hot path.
	hits, misses, evictions atomic.Uint64
	waits, diskHits         atomic.Uint64
	resident                atomic.Int64

	// second is the optional persistent tier, swappable at runtime.
	second atomic.Pointer[SecondTier]
}

// New creates a cache bounded to capacity entries; capacity <= 0 means
// unbounded (the per-kernel results of even the full CNN zoo are small).
func New(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		inflight: make(map[string]*call),
	}
}

// SetSecondTier installs (or, with nil, removes) the persistent tier.
// Only GetOrCompute consults it: Get stays a memory-only probe.
func (c *Cache) SetSecondTier(t SecondTier) {
	if t == nil {
		c.second.Store(nil)
		return
	}
	c.second.Store(&t)
}

// Get returns the cached value for key, counting a hit or miss.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.hits.Add(1)
		c.lru.MoveToFront(el)
		return el.Value.(*entry).val, true
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores a value under key, evicting the least-recently-used entry
// when over capacity.
func (c *Cache) Put(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(key, v)
}

// put stores a value; the caller holds c.mu.
func (c *Cache) put(key string, v any) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).val = v
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&entry{key: key, val: v})
	c.resident.Add(1)
	for c.capacity > 0 && c.lru.Len() > c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
		c.evictions.Add(1)
		c.resident.Add(-1)
	}
}

// GetOrCompute returns the cached value for key, computing and caching
// it on a miss. Concurrent callers for the same key share one
// computation: the first runs compute, the rest wait and count as hits.
// Errors are propagated to every sharing caller and never cached.
//
// With a second tier installed, a memory miss probes the tier before
// computing and writes freshly computed values through to it. Both the
// probe and the write-through happen inside the singleflight, so a slow
// disk never runs more than one I/O per key and concurrent callers
// still coalesce.
func (c *Cache) GetOrCompute(key string, compute func() (any, error)) (v any, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.hits.Add(1)
		c.lru.MoveToFront(el)
		v = el.Value.(*entry).val
		c.mu.Unlock()
		return v, true, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.hits.Add(1)
		c.waits.Add(1)
		c.mu.Unlock()
		<-cl.done
		return cl.val, true, cl.err
	}
	c.misses.Add(1)
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.mu.Unlock()

	cl.val, cl.err = c.computeThrough(key, compute)
	close(cl.done)

	c.mu.Lock()
	// A Reset during the computation replaces the inflight table; only
	// cache the result if this call is still the registered one.
	if c.inflight[key] == cl {
		delete(c.inflight, key)
		if cl.err == nil {
			c.put(key, cl.val)
		}
	}
	c.mu.Unlock()
	return cl.val, false, cl.err
}

// computeThrough runs the miss path under an active singleflight slot:
// probe the second tier, fall back to compute, write computed values
// through. Runs outside c.mu.
func (c *Cache) computeThrough(key string, compute func() (any, error)) (any, error) {
	tier := c.second.Load()
	if tier != nil {
		if v, ok := (*tier).Get(key); ok {
			c.diskHits.Add(1)
			return v, nil
		}
	}
	v, err := compute()
	if err == nil && tier != nil {
		(*tier).Put(key, v)
	}
	return v, err
}

// Stats returns a snapshot of the counters. The read is lock-free (each
// counter is atomic), so stats polling never blocks behind — or slows
// down — concurrent lookups; the counters in one snapshot may be
// mutually skewed by in-flight operations.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Waits:     c.waits.Load(),
		Evictions: c.evictions.Load(),
		Entries:   int(c.resident.Load()),
		DiskHits:  c.diskHits.Load(),
	}
}

// Reset drops every entry and zeroes the counters. In-flight
// computations complete but their results are discarded.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element)
	c.lru = list.New()
	c.inflight = make(map[string]*call)
	c.hits.Store(0)
	c.misses.Store(0)
	c.waits.Store(0)
	c.evictions.Store(0)
	c.resident.Store(0)
	c.diskHits.Store(0)
}
