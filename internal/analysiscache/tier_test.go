package analysiscache

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeTier is an in-memory SecondTier with observable call counts and
// an optional gate that blocks Get until released, simulating slow disk.
type fakeTier struct {
	mu   sync.Mutex
	data map[string]any

	gets atomic.Int64
	puts atomic.Int64
	gate chan struct{} // when non-nil, Get blocks until closed
}

func newFakeTier() *fakeTier {
	return &fakeTier{data: map[string]any{}}
}

func (t *fakeTier) Get(key string) (any, bool) {
	t.gets.Add(1)
	if t.gate != nil {
		<-t.gate
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	v, ok := t.data[key]
	return v, ok
}

func (t *fakeTier) Put(key string, v any) {
	t.puts.Add(1)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.data[key] = v
}

// checkNoGoroutineLeak fails the test if the goroutine count has not
// returned to its start-of-test level (modulo runtime noise) by the end.
func checkNoGoroutineLeak(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d at start, %d after", before, runtime.NumGoroutine())
	})
}

func TestSecondTierDiskHit(t *testing.T) {
	c := New(0)
	tier := newFakeTier()
	tier.data["k1"] = "from disk"
	c.SetSecondTier(tier)

	computed := 0
	v, hit, err := c.GetOrCompute("k1", func() (any, error) {
		computed++
		return "computed", nil
	})
	if err != nil || hit {
		t.Fatalf("first lookup: hit=%v err=%v", hit, err)
	}
	if v != "from disk" {
		t.Fatalf("got %v, want the disk value", v)
	}
	if computed != 0 {
		t.Fatal("compute ran despite a disk hit")
	}
	st := c.Stats()
	if st.DiskHits != 1 || st.Misses != 1 || st.Hits != 0 {
		t.Errorf("stats after disk hit = %+v", st)
	}
	// Now resident in memory: the tier is not probed again.
	if _, hit, _ := c.GetOrCompute("k1", nil); !hit {
		t.Fatal("second lookup missed memory")
	}
	if n := tier.gets.Load(); n != 1 {
		t.Errorf("tier probed %d times, want 1", n)
	}
}

func TestSecondTierWriteThroughAndEvictionReload(t *testing.T) {
	c := New(1) // capacity 1 forces eviction
	tier := newFakeTier()
	c.SetSecondTier(tier)

	if _, _, err := c.GetOrCompute("k1", func() (any, error) { return 111, nil }); err != nil {
		t.Fatal(err)
	}
	if n := tier.puts.Load(); n != 1 {
		t.Fatalf("write-through puts = %d, want 1", n)
	}
	// Evict k1 by inserting k2.
	if _, _, err := c.GetOrCompute("k2", func() (any, error) { return 222, nil }); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// k1 comes back from the tier, not from compute.
	v, _, err := c.GetOrCompute("k1", func() (any, error) {
		t.Error("compute ran for a value the tier holds")
		return nil, nil
	})
	if err != nil || v != 111 {
		t.Fatalf("reload after eviction: v=%v err=%v", v, err)
	}
	if st := c.Stats(); st.DiskHits != 1 {
		t.Errorf("disk hits = %d, want 1", st.DiskHits)
	}
	// Errors are never written through.
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute("k3", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := tier.data["k3"]; ok {
		t.Error("failed computation written to the tier")
	}
}

// TestSecondTierSlowDiskSingleflight proves the singleflight still
// coalesces when the disk tier is slow: many concurrent callers of one
// key produce exactly one tier probe and zero computes, and nobody
// leaks.
func TestSecondTierSlowDiskSingleflight(t *testing.T) {
	checkNoGoroutineLeak(t)
	c := New(0)
	tier := newFakeTier()
	tier.data["k1"] = "slow disk value"
	tier.gate = make(chan struct{})
	c.SetSecondTier(tier)

	const callers = 32
	var computes atomic.Int64
	var wg sync.WaitGroup
	results := make([]any, callers)
	errs := make([]error, callers)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], _, errs[i] = c.GetOrCompute("k1", func() (any, error) {
				computes.Add(1)
				return "computed", nil
			})
		}(i)
	}
	close(start)
	// Let the callers pile up behind the gated disk read, then open it.
	time.Sleep(50 * time.Millisecond)
	close(tier.gate)
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != "slow disk value" {
			t.Fatalf("caller %d got %v", i, results[i])
		}
	}
	if n := tier.gets.Load(); n != 1 {
		t.Errorf("slow disk probed %d times, want 1 (singleflight broken)", n)
	}
	if n := computes.Load(); n != 0 {
		t.Errorf("compute ran %d times despite the tier holding the value", n)
	}
	st := c.Stats()
	if st.Misses != 1 || st.DiskHits != 1 {
		t.Errorf("stats = %+v, want 1 miss and 1 disk hit", st)
	}
	if st.Hits != callers-1 || st.Waits != callers-1 {
		t.Errorf("stats = %+v, want %d waiting hits", st, callers-1)
	}
}

// TestSecondTierCancellationDoesNotPoison cancels a caller while its
// singleflight is stuck in a slow disk read and checks the cache is not
// poisoned: the cancelled computation's error is not cached, and the
// next caller gets a fresh, successful computation.
func TestSecondTierCancellationDoesNotPoison(t *testing.T) {
	checkNoGoroutineLeak(t)
	c := New(0)
	tier := newFakeTier()
	tier.gate = make(chan struct{})
	c.SetSecondTier(tier)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// The compute function observes its context the way pipeline
		// computations do: a cancelled ctx fails this computation.
		_, _, err := c.GetOrCompute("k1", func() (any, error) {
			return nil, ctx.Err()
		})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the goroutine block on the gated disk read
	cancel()
	close(tier.gate) // disk read "completes" after the cancellation, as a miss
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled caller got %v, want context.Canceled", err)
	}
	// The error must not have been cached or written through.
	if _, ok := tier.data["k1"]; ok {
		t.Fatal("cancelled computation written to the tier")
	}
	v, hit, err := c.GetOrCompute("k1", func() (any, error) { return "fresh", nil })
	if err != nil || hit {
		t.Fatalf("post-cancel lookup: hit=%v err=%v", hit, err)
	}
	if v != "fresh" {
		t.Fatalf("post-cancel lookup got %v", v)
	}
	// And the fresh value was written through.
	if got := tier.data["k1"]; got != "fresh" {
		t.Fatalf("tier holds %v after recompute", got)
	}
}

func TestSecondTierResetAndRemoval(t *testing.T) {
	c := New(0)
	tier := newFakeTier()
	tier.data["k1"] = 1
	c.SetSecondTier(tier)
	if _, _, err := c.GetOrCompute("k1", nil); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.DiskHits != 1 {
		t.Fatalf("disk hits = %d", st.DiskHits)
	}
	c.Reset()
	if st := c.Stats(); st.DiskHits != 0 || st.Entries != 0 {
		t.Errorf("stats after Reset = %+v", st)
	}
	// Removing the tier makes the cache memory-only again.
	c.SetSecondTier(nil)
	if _, _, err := c.GetOrCompute("k2", func() (any, error) { return 2, nil }); err != nil {
		t.Fatal(err)
	}
	if n := tier.puts.Load(); n != 0 {
		t.Errorf("removed tier still received %d puts", n)
	}
}

// TestSecondTierHammer exercises the two-tier path under contention:
// many goroutines, overlapping keys, a tier that serves half the keys,
// and a capacity small enough to force constant eviction. Run with
// -race; correctness here is "right value for every key, no deadlock,
// no leak".
func TestSecondTierHammer(t *testing.T) {
	checkNoGoroutineLeak(t)
	c := New(8)
	tier := newFakeTier()
	for i := 0; i < 16; i += 2 {
		tier.data[key(i)] = i * 100
	}
	c.SetSecondTier(tier)

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				i := (g + iter) % 16
				want := i * 100
				v, _, err := c.GetOrCompute(key(i), func() (any, error) { return i * 100, nil })
				if err != nil {
					t.Errorf("key %d: %v", i, err)
					return
				}
				if v != want {
					t.Errorf("key %d: got %v, want %d", i, v, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > 8 {
		t.Errorf("capacity exceeded: %d entries resident", st.Entries)
	}
	if st.Hits+st.Misses != 16*200 {
		t.Errorf("lookups lost: hits+misses = %d, want %d", st.Hits+st.Misses, 16*200)
	}
}

func key(i int) string {
	return string(rune('a'+i)) + "-key"
}
