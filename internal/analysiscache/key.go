package analysiscache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"cnnperf/internal/ptx"
)

// CanonicalKernelText renders a kernel in a name-independent normal
// form: the entry name is replaced by a placeholder and every parameter
// is renamed positionally (with its uses in the body rewritten), so two
// kernels that differ only in the fusion counter baked into their names
// — the common case across CNN zoo models sharing layer shapes —
// canonicalise to the same text. Everything that can change the analysis
// result (register banks, labels, predicates, opcodes, operands) is
// preserved verbatim.
func CanonicalKernelText(k *ptx.Kernel) string {
	var repl *strings.Replacer
	if len(k.Params) > 0 {
		// Longest name first, so a parameter whose name prefixes another
		// ("p_1" vs "p_10") can never steal the rewrite.
		ordered := make([]int, len(k.Params))
		for i := range ordered {
			ordered[i] = i
		}
		sort.Slice(ordered, func(a, b int) bool {
			return len(k.Params[ordered[a]].Name) > len(k.Params[ordered[b]].Name)
		})
		pairs := make([]string, 0, 2*len(k.Params))
		for _, i := range ordered {
			pairs = append(pairs, k.Params[i].Name, fmt.Sprintf("$arg%d", i))
		}
		repl = strings.NewReplacer(pairs...)
	}

	var b strings.Builder
	b.WriteString(".entry $kernel(\n")
	for i, p := range k.Params {
		fmt.Fprintf(&b, ".param %s $arg%d\n", p.Type, i)
	}
	b.WriteString(")\n")
	for _, r := range k.Regs {
		fmt.Fprintf(&b, ".reg %s %s<%d>;\n", r.Type, r.Prefix, r.Count)
	}
	for i, in := range k.Body {
		for _, lbl := range sortedLabels(k.LabelsAt(i)) {
			b.WriteString(lbl)
			b.WriteString(":\n")
		}
		line := in.String()
		if repl != nil {
			line = repl.Replace(line)
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	for _, lbl := range sortedLabels(k.LabelsAt(len(k.Body))) {
		b.WriteString(lbl)
		b.WriteString(":\n")
	}
	return b.String()
}

func sortedLabels(ls []string) []string {
	out := append([]string(nil), ls...)
	sort.Strings(out)
	return out
}

// Fingerprint is the content address of a kernel: the SHA-256 of its
// canonical text. Identical kernels (regardless of name) share a
// fingerprint; kernels differing in any instruction, operand, label or
// register bank do not.
func Fingerprint(k *ptx.Kernel) string {
	sum := sha256.Sum256([]byte(CanonicalKernelText(k)))
	return hex.EncodeToString(sum[:])
}

// KernelKey derives a cache key in the given namespace from a kernel's
// canonical text plus any extra discriminators (launch geometry,
// parameter values, executor options). Extras are length-framed before
// hashing so no two distinct extra lists can collide by concatenation.
func KernelKey(ns string, k *ptx.Kernel, extras ...string) string {
	h := sha256.New()
	text := CanonicalKernelText(k)
	fmt.Fprintf(h, "%d\x00%s", len(text), text)
	for _, e := range extras {
		fmt.Fprintf(h, "%d\x00%s", len(e), e)
	}
	return ns + ":" + hex.EncodeToString(h.Sum(nil))
}
