package artifactstore

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"cnnperf/internal/obs"
)

// Store is a content-addressed artifact store on the local filesystem.
// Artifacts live under <dir>/<ns>/<hash[:2]>/<hash> where hash is the
// SHA-256 of the full cache key; the two-character shard keeps any one
// directory small. Writes go to a temp file in the target directory and
// are renamed into place, so readers never observe a partial record.
//
// Each namespace carries a VERSION file. Opening a namespace whose
// recorded version differs from the code's wipes that namespace: a
// format bump invalidates exactly the artifacts it affects and nothing
// else.
type Store struct {
	dir string

	hits    atomic.Uint64
	misses  atomic.Uint64
	puts    atomic.Uint64
	corrupt atomic.Uint64
}

// Stats are cumulative since Open.
type Stats struct {
	Hits    uint64 // records found, verified and returned
	Misses  uint64 // lookups with no record on disk
	Puts    uint64 // records written
	Corrupt uint64 // records that failed verification and were quarantined
}

// Open opens (creating if necessary) a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("artifactstore: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifactstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

// Stats returns cumulative counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Puts:    s.puts.Load(),
		Corrupt: s.corrupt.Load(),
	}
}

// validNamespace reports whether ns is safe to use as a directory name.
func validNamespace(ns string) bool {
	if ns == "" || len(ns) > maxNamespaceLen {
		return false
	}
	for _, c := range ns {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// EnsureNamespace prepares a namespace for use at the given format
// version. If the namespace exists at a different version its contents
// are wiped — persisted artifacts of a stale format are worthless and
// must be recomputed, never reinterpreted.
func (s *Store) EnsureNamespace(ns string, version int) error {
	if !validNamespace(ns) {
		return fmt.Errorf("artifactstore: invalid namespace %q", ns)
	}
	if version <= 0 {
		return fmt.Errorf("artifactstore: namespace %q: version must be positive, got %d", ns, version)
	}
	nsDir := filepath.Join(s.dir, ns)
	verFile := filepath.Join(nsDir, "VERSION")
	if b, err := os.ReadFile(verFile); err == nil {
		got, perr := strconv.Atoi(strings.TrimSpace(string(b)))
		if perr == nil && got == version {
			return nil
		}
		// Version skew (or an unreadable VERSION file): wipe and rebuild.
		if err := os.RemoveAll(nsDir); err != nil {
			return fmt.Errorf("artifactstore: wiping stale namespace %q: %w", ns, err)
		}
	}
	if err := os.MkdirAll(nsDir, 0o755); err != nil {
		return fmt.Errorf("artifactstore: %w", err)
	}
	if err := atomicWriteFile(verFile, []byte(strconv.Itoa(version)+"\n")); err != nil {
		return fmt.Errorf("artifactstore: writing %s: %w", verFile, err)
	}
	return nil
}

// recordPath maps a namespace and key to the sharded file path.
func (s *Store) recordPath(ns, key string) string {
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, ns, h[:2], h)
}

// Get returns the payload stored for (ns, key), or ok=false on a miss.
// A record that fails verification — bad CRC, truncated, or recorded
// under a different key (hash collision, tampering) — is quarantined by
// renaming it aside, counted, and reported as a miss so the caller
// recomputes and overwrites it.
func (s *Store) Get(ctx context.Context, ns, key string) (payload []byte, ok bool, err error) {
	_, span := obs.Start(ctx, "store.get", obs.String("ns", ns))
	defer span.End()
	path := s.recordPath(ns, key)
	b, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		s.misses.Add(1)
		span.SetAttr(obs.Bool("hit", false))
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("artifactstore: %w", err)
	}
	gotNS, gotKey, payload, derr := decodeRecord(b)
	if derr == nil && (gotNS != ns || gotKey != key) {
		derr = fmt.Errorf("artifactstore: record identity mismatch: stored (%q, %q), wanted (%q, …)", gotNS, gotKey, ns)
	}
	if derr != nil {
		s.quarantine(path)
		s.corrupt.Add(1)
		s.misses.Add(1)
		span.SetAttr(obs.Bool("hit", false), obs.Bool("corrupt", true))
		return nil, false, nil
	}
	s.hits.Add(1)
	span.SetAttr(obs.Bool("hit", true), obs.Int("bytes", len(b)))
	return payload, true, nil
}

// Put stores payload under (ns, key), overwriting any existing record.
func (s *Store) Put(ctx context.Context, ns, key string, payload []byte) error {
	_, span := obs.Start(ctx, "store.put", obs.String("ns", ns), obs.Int("bytes", len(payload)))
	defer span.End()
	rec, err := encodeRecord(ns, key, payload)
	if err != nil {
		return err
	}
	path := s.recordPath(ns, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("artifactstore: %w", err)
	}
	if err := atomicWriteFile(path, rec); err != nil {
		return fmt.Errorf("artifactstore: %w", err)
	}
	s.puts.Add(1)
	return nil
}

// quarantine moves a corrupt record aside so it is never served again
// but remains available for post-mortem inspection until the next GC.
func (s *Store) quarantine(path string) {
	if err := os.Rename(path, path+".corrupt"); err != nil {
		// Renaming failed (e.g. read-only store): removing is the
		// next-best way to stop serving the bad record.
		os.Remove(path)
	}
}

// walkRecords visits every record file in deterministic order (sorted
// namespaces, then sorted hashes). Temp, VERSION and quarantined files
// are skipped.
func (s *Store) walkRecords(fn func(ns, path string) error) error {
	namespaces, err := sortedSubdirs(s.dir)
	if err != nil {
		return err
	}
	for _, ns := range namespaces {
		nsDir := filepath.Join(s.dir, ns)
		shards, err := sortedSubdirs(nsDir)
		if err != nil {
			return err
		}
		for _, shard := range shards {
			shardDir := filepath.Join(nsDir, shard)
			ents, err := os.ReadDir(shardDir)
			if err != nil {
				return fmt.Errorf("artifactstore: %w", err)
			}
			names := make([]string, 0, len(ents))
			for _, e := range ents {
				if e.IsDir() || strings.HasSuffix(e.Name(), ".corrupt") || strings.HasPrefix(e.Name(), tmpPrefix) {
					continue
				}
				names = append(names, e.Name())
			}
			sort.Strings(names)
			for _, name := range names {
				if err := fn(ns, filepath.Join(shardDir, name)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func sortedSubdirs(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("artifactstore: %w", err)
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// VerifyResult summarises a store or snapshot integrity check.
type VerifyResult struct {
	Records int // records that verified clean
	Corrupt int // records that failed CRC/framing/identity checks
	Bytes   int64
}

// Verify re-reads and verifies every record in the store. Corrupt
// records are quarantined as in Get.
func (s *Store) Verify(ctx context.Context) (VerifyResult, error) {
	var res VerifyResult
	err := s.walkRecords(func(ns, path string) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("artifactstore: %w", err)
		}
		gotNS, _, _, derr := decodeRecord(b)
		if derr == nil && gotNS != ns {
			derr = fmt.Errorf("artifactstore: record in namespace dir %q claims namespace %q", ns, gotNS)
		}
		if derr != nil {
			s.quarantine(path)
			s.corrupt.Add(1)
			res.Corrupt++
			return nil
		}
		res.Records++
		res.Bytes += int64(len(b))
		return nil
	})
	return res, err
}

// GCResult summarises a garbage-collection pass.
type GCResult struct {
	Removed int // files deleted (quarantined records + stale temp files)
}

// GC removes quarantined records and orphaned temp files left behind by
// interrupted writes. Live records are never touched.
func (s *Store) GC(ctx context.Context) (GCResult, error) {
	var res GCResult
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return fmt.Errorf("artifactstore: %w", err)
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if d.IsDir() {
			return nil
		}
		name := d.Name()
		if strings.HasSuffix(name, ".corrupt") || strings.HasPrefix(name, tmpPrefix) {
			if rerr := os.Remove(path); rerr == nil {
				res.Removed++
			}
		}
		return nil
	})
	return res, err
}

const tmpPrefix = ".tmp-"

// atomicWriteFile writes data to a temp file in the target directory
// and renames it into place.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
