package artifactstore

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestRecordRoundTrip(t *testing.T) {
	cases := []struct {
		ns, key string
		payload []byte
	}{
		{"dca", "dca:00ff", []byte("hello")},
		{"est", "est:" + strings.Repeat("ab", 32), []byte{}},
		{"ptxa", "ptxa:x", bytes.Repeat([]byte{0, 1, 2, 255}, 1000)},
	}
	for _, c := range cases {
		rec, err := encodeRecord(c.ns, c.key, c.payload)
		if err != nil {
			t.Fatalf("encodeRecord(%q, %q): %v", c.ns, c.key, err)
		}
		ns, key, payload, err := decodeRecord(rec)
		if err != nil {
			t.Fatalf("decodeRecord: %v", err)
		}
		if ns != c.ns || key != c.key || !bytes.Equal(payload, c.payload) {
			t.Errorf("round trip of (%q, %q) got (%q, %q)", c.ns, c.key, ns, key)
		}
		// Re-encoding is byte-identical.
		rec2, err := encodeRecord(ns, key, payload)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec, rec2) {
			t.Errorf("re-encoding (%q, %q) is not byte-identical", c.ns, c.key)
		}
	}
}

func TestRecordRejections(t *testing.T) {
	if _, err := encodeRecord("", "k", nil); err == nil {
		t.Error("empty namespace accepted")
	}
	if _, err := encodeRecord("ns", "", nil); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := encodeRecord("ns", strings.Repeat("k", maxKeyLen+1), nil); err == nil {
		t.Error("oversized key accepted")
	}

	rec, err := encodeRecord("ns", "key", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	// Every single-byte corruption must be rejected (CRC or framing).
	for i := range rec {
		bad := append([]byte(nil), rec...)
		bad[i] ^= 0x01
		if _, _, _, err := decodeRecord(bad); err == nil {
			t.Fatalf("bit flip at offset %d accepted", i)
		}
	}
	// Every truncation must be rejected.
	for n := 0; n < len(rec); n++ {
		if _, _, _, err := decodeRecord(rec[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Trailing garbage must be rejected.
	if _, _, _, err := decodeRecord(append(append([]byte(nil), rec...), 'x')); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestStorePutGet(t *testing.T) {
	ctx := context.Background()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(ctx, "ns", "ns:missing"); err != nil || ok {
		t.Fatalf("Get on empty store: ok=%v err=%v", ok, err)
	}
	payload := []byte(`{"v":1}`)
	if err := s.Put(ctx, "ns", "ns:key1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(ctx, "ns", "ns:key1")
	if err != nil || !ok {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get returned %q, want %q", got, payload)
	}
	// Overwrite.
	payload2 := []byte(`{"v":2}`)
	if err := s.Put(ctx, "ns", "ns:key1", payload2); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := s.Get(ctx, "ns", "ns:key1"); !bytes.Equal(got, payload2) {
		t.Fatalf("Get after overwrite returned %q", got)
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Puts != 2 || st.Corrupt != 0 {
		t.Errorf("stats = %+v, want 2 hits, 1 miss, 2 puts, 0 corrupt", st)
	}
}

// TestStoreQuarantine corrupts a record on disk and checks it is
// detected, quarantined, never served, and recoverable by re-Put.
func TestStoreQuarantine(t *testing.T) {
	ctx := context.Background()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "ns", "ns:key1", []byte("data")); err != nil {
		t.Fatal(err)
	}
	path := s.recordPath("ns", "ns:key1")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff // break the CRC
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(ctx, "ns", "ns:key1"); err != nil || ok {
		t.Fatalf("corrupt record served: ok=%v err=%v", ok, err)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt count = %d, want 1", st.Corrupt)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("corrupt record not quarantined: %v", err)
	}
	// The slot is free again: recompute-and-Put repairs it.
	if err := s.Put(ctx, "ns", "ns:key1", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := s.Get(ctx, "ns", "ns:key1"); !ok || !bytes.Equal(got, []byte("data")) {
		t.Fatalf("repaired record not served: ok=%v got=%q", ok, got)
	}
	// GC removes the quarantined file.
	res, err := s.GC(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 1 {
		t.Errorf("GC removed %d files, want 1", res.Removed)
	}
	if _, err := os.Stat(path + ".corrupt"); err == nil {
		t.Error("quarantined file survived GC")
	}
}

// TestStoreIdentityMismatch plants a valid record under the wrong path
// (simulating a hash collision or a renamed file) and checks the key
// check inside the record catches it.
func TestStoreIdentityMismatch(t *testing.T) {
	ctx := context.Background()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "ns", "ns:key1", []byte("data")); err != nil {
		t.Fatal(err)
	}
	// Move key1's record file to where key2's should live.
	p2 := s.recordPath("ns", "ns:key2")
	if err := os.MkdirAll(filepath.Dir(p2), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(s.recordPath("ns", "ns:key1"), p2); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(ctx, "ns", "ns:key2"); err != nil || ok {
		t.Fatalf("record with mismatched identity served: ok=%v err=%v", ok, err)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt count = %d, want 1", st.Corrupt)
	}
}

func TestEnsureNamespaceVersionWipe(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnsureNamespace("ns", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "ns", "ns:key1", []byte("v1 format")); err != nil {
		t.Fatal(err)
	}
	// Same version: contents survive.
	if err := s.EnsureNamespace("ns", 1); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(ctx, "ns", "ns:key1"); !ok {
		t.Fatal("record lost on same-version EnsureNamespace")
	}
	// Version bump: namespace wiped.
	if err := s.EnsureNamespace("ns", 2); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(ctx, "ns", "ns:key1"); ok {
		t.Fatal("stale-format record survived a version bump")
	}
	if err := s.EnsureNamespace("bad namespace!", 1); err == nil {
		t.Error("invalid namespace accepted")
	}
	if err := s.EnsureNamespace("ns", 0); err == nil {
		t.Error("zero version accepted")
	}
}

func TestVerify(t *testing.T) {
	ctx := context.Background()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("ns:key%d", i)
		if err := s.Put(ctx, "ns", key, []byte(key)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Verify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 5 || res.Corrupt != 0 {
		t.Fatalf("Verify = %+v, want 5 clean records", res)
	}
	// Corrupt one record; Verify must find and quarantine exactly it.
	path := s.recordPath("ns", "ns:key3")
	b, _ := os.ReadFile(path)
	b[recordHeader] ^= 0xff
	os.WriteFile(path, b, 0o644)
	res, err = s.Verify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 4 || res.Corrupt != 1 {
		t.Fatalf("Verify after corruption = %+v, want 4 clean + 1 corrupt", res)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	ctx := context.Background()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for _, ns := range []string{"aaa", "bbb"} {
		for i := 0; i < 10; i++ {
			key := fmt.Sprintf("%s:key%02d", ns, i)
			val := fmt.Sprintf("payload of %s", key)
			want[ns+"\x00"+key] = val
			if err := s.Put(ctx, ns, key, []byte(val)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var snap bytes.Buffer
	n, err := s.Export(ctx, &snap)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("exported %d records, want %d", n, len(want))
	}
	// Export is deterministic: a second export is byte-identical.
	var snap2 bytes.Buffer
	if _, err := s.Export(ctx, &snap2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap.Bytes(), snap2.Bytes()) {
		t.Error("two exports of the same store differ")
	}
	// Import into a fresh store reproduces every record, and its own
	// export is byte-identical to the original snapshot.
	s2, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Import(ctx, bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	if _, err := ReadSnapshotInto(ctx, s2, got); err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("record %q: got %q, want %q", k, got[k], v)
		}
	}
	var snap3 bytes.Buffer
	if _, err := s2.Export(ctx, &snap3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap.Bytes(), snap3.Bytes()) {
		t.Error("export after import-round-trip is not byte-identical")
	}
}

// ReadSnapshotInto collects every store record into m (test helper).
func ReadSnapshotInto(ctx context.Context, s *Store, m map[string]string) (int, error) {
	var buf bytes.Buffer
	if _, err := s.Export(ctx, &buf); err != nil {
		return 0, err
	}
	return ReadSnapshot(&buf, func(ns, key string, payload []byte) error {
		m[ns+"\x00"+key] = string(payload)
		return nil
	})
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	ctx := context.Background()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(ctx, "ns", fmt.Sprintf("ns:key%d", i), bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if _, err := s.Export(ctx, &snap); err != nil {
		t.Fatal(err)
	}
	good := snap.Bytes()
	if _, err := ReadSnapshot(bytes.NewReader(good), nil); err != nil {
		t.Fatalf("clean snapshot rejected: %v", err)
	}
	// Any truncation is rejected.
	for _, n := range []int{0, 3, 6, 20, len(good) / 2, len(good) - 1} {
		if _, err := ReadSnapshot(bytes.NewReader(good[:n]), nil); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
	// Any single bit flip is rejected.
	for i := 0; i < len(good); i += 7 {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x10
		if _, err := ReadSnapshot(bytes.NewReader(bad), nil); err == nil {
			t.Errorf("bit flip at offset %d accepted", i)
		}
	}
	// Trailing data is rejected.
	if _, err := ReadSnapshot(bytes.NewReader(append(append([]byte(nil), good...), 0)), nil); err == nil {
		t.Error("trailing byte after trailer accepted")
	}
}

// jsonCodec is a test codec storing any JSON-marshalable value.
type jsonCodec struct{ ns string }

func (c jsonCodec) Namespace() string            { return c.ns }
func (c jsonCodec) Version() int                 { return 1 }
func (c jsonCodec) Encode(v any) ([]byte, error) { return json.Marshal(v) }
func (c jsonCodec) Decode(b []byte) (any, error) {
	var v map[string]string
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, err
	}
	return v, nil
}

func TestTierWriteThrough(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tier, err := NewTier(s, jsonCodec{ns: "tst"})
	if err != nil {
		t.Fatal(err)
	}
	val := map[string]string{"a": "1"}
	tier.Put("tst:key1", val)
	got, ok := tier.Get("tst:key1")
	if !ok {
		t.Fatal("tier miss after Put")
	}
	if m := got.(map[string]string); m["a"] != "1" {
		t.Fatalf("tier returned %v", got)
	}
	// Keys without a codec prefix bypass the tier entirely.
	tier.Put("srv\x00unit\x00x", val)
	if _, ok := tier.Get("srv\x00unit\x00x"); ok {
		t.Error("codec-less key served from disk")
	}
	tier.Put("other:key", val)
	if _, ok := tier.Get("other:key"); ok {
		t.Error("unregistered namespace served from disk")
	}
	// A payload the codec cannot decode is a counted miss.
	if err := s.Put(context.Background(), "tst", "tst:bad", []byte("not json")); err != nil {
		t.Fatal(err)
	}
	if _, ok := tier.Get("tst:bad"); ok {
		t.Error("undecodable payload served")
	}
	if n := tier.DecodeErrors(); n != 1 {
		t.Errorf("DecodeErrors = %d, want 1", n)
	}
}

func TestTierSnapshotOnly(t *testing.T) {
	ctx := context.Background()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tier0, err := NewTier(s, jsonCodec{ns: "tst"})
	if err != nil {
		t.Fatal(err)
	}
	tier0.Put("tst:key1", map[string]string{"k": "v"})
	snapFile := filepath.Join(t.TempDir(), "s.snap")
	f, err := os.Create(snapFile)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Export(ctx, f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// A tier with no store boots entirely from the snapshot.
	tier, err := NewTier(nil, jsonCodec{ns: "tst"})
	if err != nil {
		t.Fatal(err)
	}
	n, err := tier.LoadSnapshotFile(snapFile)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("loaded %d records, want 1", n)
	}
	got, ok := tier.Get("tst:key1")
	if !ok || got.(map[string]string)["k"] != "v" {
		t.Fatalf("snapshot-only Get: ok=%v got=%v", ok, got)
	}
	// Writes are dropped, not errors.
	tier.Put("tst:key2", map[string]string{})
	if _, ok := tier.Get("tst:key2"); ok {
		t.Error("snapshot-only tier persisted a Put")
	}
}

// TestGoldenSnapshot pins the snapshot byte format: today's code must
// read the checked-in snapshot written when the format was introduced.
// Regenerate with -update only on a deliberate format bump (and bump
// snapshotVersion/recordVersion accordingly).
func TestGoldenSnapshot(t *testing.T) {
	golden := filepath.Join("testdata", "store_golden.snap")
	if *update {
		ctx := context.Background()
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			key := fmt.Sprintf("gold:%064d", i)
			val := fmt.Sprintf(`{"record":%d,"body":"golden artifact %d"}`, i, i)
			if err := s.Put(ctx, "gold", key, []byte(val)); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(golden)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Export(ctx, f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Open(golden)
	if err != nil {
		t.Fatalf("golden snapshot missing (run with -update to create): %v", err)
	}
	defer f.Close()
	got := map[string]string{}
	n, err := ReadSnapshot(f, func(ns, key string, payload []byte) error {
		got[key] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatalf("today's code cannot read the golden snapshot: %v", err)
	}
	if n != 4 {
		t.Fatalf("golden snapshot has %d records, want 4", n)
	}
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("gold:%064d", i)
		want := fmt.Sprintf(`{"record":%d,"body":"golden artifact %d"}`, i, i)
		if got[key] != want {
			t.Errorf("golden record %d: got %q, want %q", i, got[key], want)
		}
	}
	// The golden snapshot also imports cleanly into a store.
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Import(context.Background(), f); err != nil {
		t.Fatalf("golden snapshot import failed: %v", err)
	}
}
