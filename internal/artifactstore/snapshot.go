package artifactstore

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"cnnperf/internal/obs"
)

// A snapshot is the whole store as one file: a header, a stream of the
// same self-delimiting records the store keeps on disk, and a trailer
// carrying a record count and a running CRC so truncation at any point
// is detected.
//
//	header:  "CPSH" + version uint16
//	records: zero or more framed records (see record.go)
//	trailer: "CPST" + count uint64 + crc uint32 over all record bytes
//
// Export writes records in deterministic order (sorted namespaces, then
// sorted content hashes), so exporting the same store twice yields
// byte-identical snapshots.

const snapshotVersion = 1

var (
	snapshotMagic = [4]byte{'C', 'P', 'S', 'H'}
	trailerMagic  = [4]byte{'C', 'P', 'S', 'T'}
)

// Export streams every record in the store to w as a snapshot.
func (s *Store) Export(ctx context.Context, w io.Writer) (int, error) {
	_, span := obs.Start(ctx, "store.snapshot")
	defer span.End()
	bw := bufio.NewWriter(w)
	head := make([]byte, 0, 6)
	head = append(head, snapshotMagic[:]...)
	head = binary.BigEndian.AppendUint16(head, snapshotVersion)
	if _, err := bw.Write(head); err != nil {
		return 0, fmt.Errorf("artifactstore: %w", err)
	}
	crc := crc32.NewIEEE()
	count := uint64(0)
	err := s.walkRecords(func(ns, path string) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("artifactstore: %w", err)
		}
		// A corrupt record must not poison the snapshot: verify before
		// including, quarantine on failure, like Get.
		gotNS, _, _, derr := decodeRecord(b)
		if derr == nil && gotNS != ns {
			derr = fmt.Errorf("artifactstore: namespace mismatch")
		}
		if derr != nil {
			s.quarantine(path)
			s.corrupt.Add(1)
			return nil
		}
		if _, err := bw.Write(b); err != nil {
			return fmt.Errorf("artifactstore: %w", err)
		}
		crc.Write(b)
		count++
		return nil
	})
	if err != nil {
		return 0, err
	}
	tail := make([]byte, 0, 16)
	tail = append(tail, trailerMagic[:]...)
	tail = binary.BigEndian.AppendUint64(tail, count)
	tail = binary.BigEndian.AppendUint32(tail, crc.Sum32())
	if _, err := bw.Write(tail); err != nil {
		return 0, fmt.Errorf("artifactstore: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return 0, fmt.Errorf("artifactstore: %w", err)
	}
	span.SetAttr(obs.Int("records", int(count)))
	return int(count), nil
}

// ReadSnapshot parses a snapshot stream, calling fn for each verified
// record. The whole stream is validated: header, per-record CRCs, and
// the trailer's count and running CRC must all check out, so a
// truncated or bit-flipped snapshot is rejected rather than partially
// applied.
func ReadSnapshot(r io.Reader, fn func(ns, key string, payload []byte) error) (int, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 6)
	if _, err := io.ReadFull(br, head); err != nil {
		return 0, fmt.Errorf("artifactstore: reading snapshot header: %w", err)
	}
	if [4]byte(head[:4]) != snapshotMagic {
		return 0, fmt.Errorf("artifactstore: bad snapshot magic %q", head[:4])
	}
	if v := binary.BigEndian.Uint16(head[4:6]); v != snapshotVersion {
		return 0, fmt.Errorf("artifactstore: unsupported snapshot version %d (want %d)", v, snapshotVersion)
	}
	crc := crc32.NewIEEE()
	count := uint64(0)
	for {
		// Peek for the trailer magic before attempting a record read:
		// both records and the trailer start at this position.
		peek, err := br.Peek(4)
		if err != nil {
			return 0, fmt.Errorf("artifactstore: truncated snapshot (no trailer): %w", err)
		}
		if [4]byte(peek) == trailerMagic {
			break
		}
		ns, key, payload, raw, err := readRecord(br)
		if err != nil {
			return 0, fmt.Errorf("artifactstore: snapshot record %d: %w", count, err)
		}
		crc.Write(raw)
		count++
		if fn != nil {
			if err := fn(ns, key, payload); err != nil {
				return 0, err
			}
		}
	}
	tail := make([]byte, 16)
	if _, err := io.ReadFull(br, tail); err != nil {
		return 0, fmt.Errorf("artifactstore: truncated snapshot trailer: %w", err)
	}
	if wantCount := binary.BigEndian.Uint64(tail[4:12]); wantCount != count {
		return 0, fmt.Errorf("artifactstore: snapshot trailer claims %d records, read %d", wantCount, count)
	}
	if wantCRC := binary.BigEndian.Uint32(tail[12:16]); wantCRC != crc.Sum32() {
		return 0, fmt.Errorf("artifactstore: snapshot CRC mismatch: computed %08x, stored %08x", crc.Sum32(), wantCRC)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return 0, fmt.Errorf("artifactstore: trailing data after snapshot trailer")
	}
	return int(count), nil
}

// Import loads every record of a snapshot into the store. The stream is
// validated end-to-end before this returns nil; records are written as
// they arrive (each individually verified), so a truncated snapshot can
// leave some records imported — all of them valid.
func (s *Store) Import(ctx context.Context, r io.Reader) (int, error) {
	return ReadSnapshot(r, func(ns, key string, payload []byte) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !validNamespace(ns) {
			return fmt.Errorf("artifactstore: snapshot record has invalid namespace %q", ns)
		}
		return s.Put(ctx, ns, key, payload)
	})
}
