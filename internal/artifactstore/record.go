package artifactstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// The on-disk record framing. Every artifact — whether it lives as one
// file in the sharded store layout or as one entry of a snapshot
// stream — is a self-delimiting, CRC-guarded record:
//
//	magic      [4]byte  "CPAR"
//	version    uint16   recordVersion (big endian, like all integers)
//	nsLen      uint16   namespace length
//	keyLen     uint32   key length
//	payloadLen uint32   payload length
//	ns         []byte
//	key        []byte
//	payload    []byte
//	crc        uint32   CRC-32 (IEEE) of everything above
//
// The namespace and full cache key are stored inside the record, not
// only in the file path, so a read can verify it got the artifact it
// asked for: a hash collision, a renamed file or a tampered record all
// fail the key check or the CRC and are treated as corruption.

const (
	recordVersion = 1
	recordHeader  = 4 + 2 + 2 + 4 + 4 // magic + version + lengths

	// Decoder sanity caps: no legitimate record exceeds these, so a
	// corrupted length field cannot drive a multi-gigabyte allocation.
	maxNamespaceLen = 128
	maxKeyLen       = 4 << 10
	maxPayloadLen   = 1 << 30
)

var recordMagic = [4]byte{'C', 'P', 'A', 'R'}

// encodeRecord frames one artifact.
func encodeRecord(ns, key string, payload []byte) ([]byte, error) {
	if len(ns) == 0 || len(ns) > maxNamespaceLen {
		return nil, fmt.Errorf("artifactstore: namespace length %d out of range [1,%d]", len(ns), maxNamespaceLen)
	}
	if len(key) == 0 || len(key) > maxKeyLen {
		return nil, fmt.Errorf("artifactstore: key length %d out of range [1,%d]", len(key), maxKeyLen)
	}
	if len(payload) > maxPayloadLen {
		return nil, fmt.Errorf("artifactstore: payload length %d exceeds %d", len(payload), maxPayloadLen)
	}
	b := make([]byte, 0, recordHeader+len(ns)+len(key)+len(payload)+4)
	b = append(b, recordMagic[:]...)
	b = binary.BigEndian.AppendUint16(b, recordVersion)
	b = binary.BigEndian.AppendUint16(b, uint16(len(ns)))
	b = binary.BigEndian.AppendUint32(b, uint32(len(key)))
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, ns...)
	b = append(b, key...)
	b = append(b, payload...)
	b = binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return b, nil
}

// decodeRecord parses and verifies one framed artifact held entirely in
// b. Trailing bytes after the record are rejected (a store file holds
// exactly one record).
func decodeRecord(b []byte) (ns, key string, payload []byte, err error) {
	ns, key, payload, n, err := decodeRecordPrefix(b)
	if err != nil {
		return "", "", nil, err
	}
	if n != len(b) {
		return "", "", nil, fmt.Errorf("artifactstore: %d trailing bytes after record", len(b)-n)
	}
	return ns, key, payload, nil
}

// decodeRecordPrefix parses one record from the front of b, returning
// how many bytes it consumed.
func decodeRecordPrefix(b []byte) (ns, key string, payload []byte, n int, err error) {
	if len(b) < recordHeader {
		return "", "", nil, 0, fmt.Errorf("artifactstore: truncated record header (%d bytes)", len(b))
	}
	if [4]byte(b[:4]) != recordMagic {
		return "", "", nil, 0, fmt.Errorf("artifactstore: bad record magic %q", b[:4])
	}
	if v := binary.BigEndian.Uint16(b[4:6]); v != recordVersion {
		return "", "", nil, 0, fmt.Errorf("artifactstore: unsupported record version %d (want %d)", v, recordVersion)
	}
	nsLen := int(binary.BigEndian.Uint16(b[6:8]))
	keyLen := int(binary.BigEndian.Uint32(b[8:12]))
	payloadLen := int(binary.BigEndian.Uint32(b[12:16]))
	if nsLen == 0 || nsLen > maxNamespaceLen || keyLen == 0 || keyLen > maxKeyLen || payloadLen > maxPayloadLen {
		return "", "", nil, 0, fmt.Errorf("artifactstore: implausible record lengths ns=%d key=%d payload=%d", nsLen, keyLen, payloadLen)
	}
	total := recordHeader + nsLen + keyLen + payloadLen + 4
	if len(b) < total {
		return "", "", nil, 0, fmt.Errorf("artifactstore: truncated record: have %d of %d bytes", len(b), total)
	}
	body := b[:total-4]
	want := binary.BigEndian.Uint32(b[total-4 : total])
	if got := crc32.ChecksumIEEE(body); got != want {
		return "", "", nil, 0, fmt.Errorf("artifactstore: record CRC mismatch: computed %08x, stored %08x", got, want)
	}
	off := recordHeader
	ns = string(b[off : off+nsLen])
	off += nsLen
	key = string(b[off : off+keyLen])
	off += keyLen
	payload = append([]byte(nil), b[off:off+payloadLen]...)
	return ns, key, payload, total, nil
}

// readRecord reads one framed artifact from a stream. io.EOF is
// returned untouched when the stream ends cleanly before the magic;
// any mid-record truncation becomes an explicit error.
func readRecord(r *bufio.Reader) (ns, key string, payload []byte, raw []byte, err error) {
	head := make([]byte, recordHeader)
	if _, err := io.ReadFull(r, head[:1]); err != nil {
		if err == io.EOF {
			return "", "", nil, nil, io.EOF
		}
		return "", "", nil, nil, fmt.Errorf("artifactstore: reading record: %w", err)
	}
	if _, err := io.ReadFull(r, head[1:]); err != nil {
		return "", "", nil, nil, fmt.Errorf("artifactstore: truncated record header: %w", err)
	}
	if [4]byte(head[:4]) != recordMagic {
		return "", "", nil, nil, fmt.Errorf("artifactstore: bad record magic %q", head[:4])
	}
	nsLen := int(binary.BigEndian.Uint16(head[6:8]))
	keyLen := int(binary.BigEndian.Uint32(head[8:12]))
	payloadLen := int(binary.BigEndian.Uint32(head[12:16]))
	if nsLen == 0 || nsLen > maxNamespaceLen || keyLen == 0 || keyLen > maxKeyLen || payloadLen > maxPayloadLen {
		return "", "", nil, nil, fmt.Errorf("artifactstore: implausible record lengths ns=%d key=%d payload=%d", nsLen, keyLen, payloadLen)
	}
	rest := make([]byte, nsLen+keyLen+payloadLen+4)
	if _, err := io.ReadFull(r, rest); err != nil {
		return "", "", nil, nil, fmt.Errorf("artifactstore: truncated record body: %w", err)
	}
	raw = append(head, rest...)
	ns, key, payload, err = decodeRecord(raw)
	if err != nil {
		return "", "", nil, nil, err
	}
	return ns, key, payload, raw, nil
}
