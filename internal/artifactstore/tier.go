package artifactstore

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
)

// A Codec translates one class of cached values to and from persisted
// bytes. Each codec owns one store namespace; the namespace doubles as
// the cache-key prefix (keys look like "<ns>:<hex>") that routes a key
// to its codec. Version is the artifact format version: bumping it
// wipes the namespace on the next Open, invalidating artifacts whose
// byte format changed.
type Codec interface {
	Namespace() string
	Version() int
	Encode(v any) ([]byte, error)
	Decode(b []byte) (any, error)
}

// Tier is the disk tier under the in-memory analysis cache. It
// implements the cache's SecondTier interface: Get probes the store
// (and, if configured, a read-only snapshot overlay) and decodes; Put
// encodes and writes through. Keys whose namespace prefix has no
// registered codec are silently skipped — the disk tier only persists
// artifact classes it understands.
//
// Tier may be configured with a store, a snapshot, or both. With only a
// snapshot it serves reads from memory and drops writes: the
// zero-cold-start boot path for replicas that share one snapshot file
// and have no local disk to warm.
type Tier struct {
	store  *Store // may be nil (snapshot-only)
	codecs map[string]Codec

	// snapshot overlay: records loaded from a snapshot file, probed
	// after the store misses. Written only during LoadSnapshotFile.
	snapshot map[string][]byte // "<ns>\x00<key>" -> payload

	// base context for spans recorded on the SecondTier path, which
	// has no per-call context. Defaults to context.Background.
	baseCtx atomic.Pointer[context.Context]

	decodeErrs atomic.Uint64
}

// NewTier builds a disk tier over store (which may be nil for a
// snapshot-only tier) with the given codecs. Namespaces are prepared at
// their codec's version — stale-format namespaces are wiped here.
func NewTier(store *Store, codecs ...Codec) (*Tier, error) {
	t := &Tier{store: store, codecs: make(map[string]Codec, len(codecs))}
	bg := context.Background()
	t.baseCtx.Store(&bg)
	for _, c := range codecs {
		ns := c.Namespace()
		if !validNamespace(ns) {
			return nil, fmt.Errorf("artifactstore: codec has invalid namespace %q", ns)
		}
		if _, dup := t.codecs[ns]; dup {
			return nil, fmt.Errorf("artifactstore: duplicate codec for namespace %q", ns)
		}
		t.codecs[ns] = c
		if store != nil {
			if err := store.EnsureNamespace(ns, c.Version()); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// SetBaseContext sets the context under which the tier's store spans
// are recorded (the SecondTier interface carries no context).
func (t *Tier) SetBaseContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	t.baseCtx.Store(&ctx)
}

func (t *Tier) ctx() context.Context { return *t.baseCtx.Load() }

// Store returns the underlying store, or nil for a snapshot-only tier.
func (t *Tier) Store() *Store { return t.store }

// DecodeErrors counts payloads that a codec refused to decode. Each
// such artifact is treated as a miss and recomputed.
func (t *Tier) DecodeErrors() uint64 { return t.decodeErrs.Load() }

// splitKey maps a cache key like "dca:<hex>" to its namespace and the
// codec registered for it.
func (t *Tier) splitKey(key string) (Codec, string, bool) {
	i := strings.IndexByte(key, ':')
	if i <= 0 {
		return nil, "", false
	}
	ns := key[:i]
	c, ok := t.codecs[ns]
	return c, ns, ok
}

// Get probes disk (then the snapshot overlay) for the artifact behind
// key and decodes it. Any failure — missing record, corrupt record,
// undecodable payload — is a miss: the caller recomputes and the next
// Put overwrites the bad artifact.
func (t *Tier) Get(key string) (any, bool) {
	c, ns, ok := t.splitKey(key)
	if !ok {
		return nil, false
	}
	var payload []byte
	found := false
	if t.store != nil {
		p, hit, err := t.store.Get(t.ctx(), ns, key)
		if err == nil && hit {
			payload, found = p, true
		}
	}
	if !found && t.snapshot != nil {
		if p, hit := t.snapshot[ns+"\x00"+key]; hit {
			payload, found = p, true
		}
	}
	if !found {
		return nil, false
	}
	v, err := c.Decode(payload)
	if err != nil {
		t.decodeErrs.Add(1)
		return nil, false
	}
	return v, true
}

// Put encodes v and writes it through to the store. Snapshot-only tiers
// and keys without a codec drop the write; persistence is best-effort
// and never fails the compute path.
func (t *Tier) Put(key string, v any) {
	c, ns, ok := t.splitKey(key)
	if !ok || t.store == nil {
		return
	}
	payload, err := c.Encode(v)
	if err != nil {
		return
	}
	// Best-effort: a full disk or permission error must not break
	// serving, the artifact is simply recomputed next boot.
	_ = t.store.Put(t.ctx(), ns, key, payload)
}

// LoadSnapshotFile loads a snapshot into the tier's in-memory overlay.
// Records in namespaces without a codec are skipped (they may belong to
// a newer binary); records are kept as raw payloads and decoded lazily
// on Get. Call before serving — the overlay is not locked.
func (t *Tier) LoadSnapshotFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("artifactstore: %w", err)
	}
	defer f.Close()
	if t.snapshot == nil {
		t.snapshot = make(map[string][]byte)
	}
	loaded := 0
	_, err = ReadSnapshot(f, func(ns, key string, payload []byte) error {
		if _, ok := t.codecs[ns]; !ok {
			return nil
		}
		t.snapshot[ns+"\x00"+key] = payload
		loaded++
		return nil
	})
	if err != nil {
		return 0, err
	}
	return loaded, nil
}
