package artifactstore

import (
	"bytes"
	"context"
	"testing"
)

// FuzzStoreDecode throws arbitrary bytes at both decode surfaces — the
// single-record frame decoder and the snapshot stream reader. Neither
// may panic, and anything either accepts must round-trip byte-identically
// through the encoder (the store only ever serves what was stored).
func FuzzStoreDecode(f *testing.F) {
	rec, err := encodeRecord("ns", "ns:key", []byte("payload"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rec)
	f.Add([]byte{})
	f.Add([]byte("CPAR"))
	f.Add(append([]byte(nil), rec[:len(rec)-2]...)) // truncated
	// A minimal snapshot: header + one record + trailer.
	var snapStore bytes.Buffer
	{
		s, err := Open(f.TempDir())
		if err != nil {
			f.Fatal(err)
		}
		ctx := context.Background()
		if err := s.Put(ctx, "ns", "ns:key", []byte("payload")); err != nil {
			f.Fatal(err)
		}
		if _, err := s.Export(ctx, &snapStore); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(snapStore.Bytes())
	f.Add([]byte("CPSH\x00\x01CPST\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if ns, key, payload, err := decodeRecord(data); err == nil {
			re, rerr := encodeRecord(ns, key, payload)
			if rerr != nil {
				t.Fatalf("decoded record does not re-encode: %v", rerr)
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("accepted record is not canonical: %d in, %d out", len(data), len(re))
			}
		}
		n, err := ReadSnapshot(bytes.NewReader(data), func(ns, key string, payload []byte) error {
			if ns == "" || key == "" {
				t.Fatal("snapshot delivered a record with empty identity")
			}
			return nil
		})
		if err == nil && n < 0 {
			t.Fatal("negative record count")
		}
	})
}
