// Package loadgen is the closed/open-loop HTTP load generator behind
// cmd/loadgen and the gateway test battery: it replays a deterministic
// mix of /v1/predict and /v1/lint requests against a replica or a
// gateway, measures throughput and latency percentiles, and merges
// results into BENCH_*.json capacity files.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cnnperf/internal/obs"
)

// Request is one replayable unit of the mix.
type Request struct {
	// Name labels the request in per-request breakdowns ("alexnet",
	// "ptx", "lint:alexnet", ...).
	Name string
	// Path is the endpoint ("/v1/predict" or "/v1/lint").
	Path string
	// Body is the JSON payload.
	Body []byte
}

// Options configures one load run.
type Options struct {
	// Target is the base URL of the replica or gateway under load.
	Target string
	// Requests is the mix, replayed round-robin. Required, non-empty.
	Requests []Request
	// Duration is the measured window (default 10s).
	Duration time.Duration
	// Warmup runs the same traffic before the measured window without
	// recording it, absorbing cold-start analysis costs (default 0).
	Warmup time.Duration
	// Concurrency is the closed-loop worker count (default 8). In open
	// loop it bounds the in-flight request count instead.
	Concurrency int
	// RatePerSec switches to open-loop mode: requests are issued on a
	// fixed schedule regardless of response latency. 0 selects closed
	// loop (each worker issues its next request when the previous one
	// completes).
	RatePerSec float64
	// Timeout bounds one request (default 30s).
	Timeout time.Duration
	// Client overrides the HTTP client (tests); nil builds one with
	// pooled connections sized to Concurrency.
	Client *http.Client
	// SlowTraceCount is how many of the slowest requests report their
	// trace IDs in Result.SlowTraces (default 5; negative disables).
	// Every request carries a fresh W3C traceparent, so a p99 outlier's
	// trace can be pulled from the target's /debug/flightrecorder.
	SlowTraceCount int
}

func (o Options) withDefaults() Options {
	if o.Duration <= 0 {
		o.Duration = 10 * time.Second
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.SlowTraceCount == 0 {
		o.SlowTraceCount = 5
	}
	if o.SlowTraceCount < 0 {
		o.SlowTraceCount = 0
	}
	return o
}

// SlowTrace identifies one of the slowest requests of a run: enough to
// pull its distributed trace out of the target's flight recorder.
type SlowTrace struct {
	Name      string  `json:"name"`
	Status    int     `json:"status"`
	LatencyMs float64 `json:"latency_ms"`
	TraceID   string  `json:"trace_id"`
}

// Percentiles summarizes a latency distribution in milliseconds.
type Percentiles struct {
	P50  float64 `json:"p50_ms"`
	P90  float64 `json:"p90_ms"`
	P95  float64 `json:"p95_ms"`
	P99  float64 `json:"p99_ms"`
	Max  float64 `json:"max_ms"`
	Mean float64 `json:"mean_ms"`
}

// Result is one measured load run.
type Result struct {
	// Name identifies the topology/config this run measured
	// ("1-replica-direct", "2-replica-gateway", ...).
	Name string `json:"name"`
	// Mode is "closed" or "open".
	Mode        string  `json:"mode"`
	Target      string  `json:"target"`
	Concurrency int     `json:"concurrency"`
	RatePerSec  float64 `json:"rate_per_sec,omitempty"`
	// DurationSeconds is the measured window actually elapsed.
	DurationSeconds float64 `json:"duration_seconds"`
	Requests        int64   `json:"requests"`
	// TransportErrors are requests that failed before an HTTP status.
	TransportErrors int64 `json:"transport_errors"`
	// StatusCounts maps HTTP status ("200") to response count.
	StatusCounts map[string]int64 `json:"status_counts"`
	// Non2xx is the total of non-2xx responses.
	Non2xx        int64       `json:"non_2xx"`
	ThroughputRPS float64     `json:"throughput_rps"`
	Latency       Percentiles `json:"latency"`
	// SlowTraces are the SlowTraceCount slowest requests with their
	// trace IDs, slowest first.
	SlowTraces []SlowTrace `json:"slow_traces,omitempty"`
}

// Errors is the total of failures: transport errors plus non-2xx
// responses.
func (r Result) Errors() int64 { return r.TransportErrors + r.Non2xx }

// recorder accumulates per-worker samples without shared locks on the
// hot path.
type recorder struct {
	latencies []float64 // seconds
	statuses  map[int]int64
	transport int64
	// slow keeps this worker's slowCap slowest requests (unordered;
	// the global top-N is exact after merging all workers).
	slow    []SlowTrace
	slowCap int
}

// noteSlow offers one measured request to the worker's slow set.
func (rec *recorder) noteSlow(st SlowTrace) {
	if rec.slowCap <= 0 {
		return
	}
	if len(rec.slow) < rec.slowCap {
		rec.slow = append(rec.slow, st)
		return
	}
	min := 0
	for i := 1; i < len(rec.slow); i++ {
		if rec.slow[i].LatencyMs < rec.slow[min].LatencyMs {
			min = i
		}
	}
	if st.LatencyMs > rec.slow[min].LatencyMs {
		rec.slow[min] = st
	}
}

// Run executes one load run against opts.Target and aggregates the
// measurements. The context cancels the run early (the partial result
// is still returned).
func Run(ctx context.Context, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if opts.Target == "" {
		return Result{}, fmt.Errorf("loadgen: target is required")
	}
	if len(opts.Requests) == 0 {
		return Result{}, fmt.Errorf("loadgen: request mix is empty")
	}
	client := opts.Client
	if client == nil {
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConnsPerHost = opts.Concurrency * 2
		client = &http.Client{Transport: t}
		defer t.CloseIdleConnections()
	}

	if opts.Warmup > 0 {
		wctx, cancel := context.WithTimeout(ctx, opts.Warmup)
		warm := opts
		warm.Duration = opts.Warmup
		runClosed(wctx, warm, client, nil) // discard samples
		cancel()
		if ctx.Err() != nil {
			return Result{}, ctx.Err()
		}
	}

	recs := make([]*recorder, opts.Concurrency)
	for i := range recs {
		recs[i] = &recorder{statuses: make(map[int]int64), slowCap: opts.SlowTraceCount}
	}
	runCtx, cancel := context.WithTimeout(ctx, opts.Duration)
	defer cancel()
	start := time.Now()
	mode := "closed"
	if opts.RatePerSec > 0 {
		mode = "open"
		runOpen(runCtx, opts, client, recs)
	} else {
		runClosed(runCtx, opts, client, recs)
	}
	elapsed := time.Since(start)

	res := Result{
		Mode:            mode,
		Target:          opts.Target,
		Concurrency:     opts.Concurrency,
		RatePerSec:      opts.RatePerSec,
		DurationSeconds: elapsed.Seconds(),
		StatusCounts:    make(map[string]int64),
	}
	var all []float64
	for _, rec := range recs {
		all = append(all, rec.latencies...)
		res.TransportErrors += rec.transport
		for status, n := range rec.statuses {
			res.StatusCounts[strconv.Itoa(status)] += n
			if status < 200 || status >= 300 {
				res.Non2xx += n
			}
		}
	}
	res.Requests = int64(len(all)) + res.TransportErrors
	if elapsed > 0 {
		res.ThroughputRPS = float64(res.Requests) / elapsed.Seconds()
	}
	res.Latency = Summarize(all)
	var slow []SlowTrace
	for _, rec := range recs {
		slow = append(slow, rec.slow...)
	}
	sort.Slice(slow, func(i, j int) bool { return slow[i].LatencyMs > slow[j].LatencyMs })
	if len(slow) > opts.SlowTraceCount {
		slow = slow[:opts.SlowTraceCount]
	}
	res.SlowTraces = slow
	return res, ctx.Err()
}

// runClosed drives Concurrency workers, each issuing its next request
// as soon as the previous one completes. recs may be nil (warmup).
func runClosed(ctx context.Context, opts Options, client *http.Client, recs []*recorder) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		var rec *recorder
		if recs != nil {
			rec = recs[w]
		}
		go func(rec *recorder) {
			defer wg.Done()
			for ctx.Err() == nil {
				req := opts.Requests[int(next.Add(1)-1)%len(opts.Requests)]
				issue(ctx, client, opts, req, rec)
			}
		}(rec)
	}
	wg.Wait()
}

// runOpen issues requests on a fixed schedule; the in-flight count is
// bounded by Concurrency (a saturated target makes the generator skip
// ticks rather than queue unboundedly, and skipped ticks show up as
// reduced measured throughput).
func runOpen(ctx context.Context, opts Options, client *http.Client, recs []*recorder) {
	interval := time.Duration(float64(time.Second) / opts.RatePerSec)
	if interval <= 0 {
		interval = time.Microsecond
	}
	sem := make(chan int, opts.Concurrency) // holds recorder slots
	for i := 0; i < opts.Concurrency; i++ {
		sem <- i
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var next atomic.Int64
	var wg sync.WaitGroup
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-ticker.C:
			select {
			case slot := <-sem:
				req := opts.Requests[int(next.Add(1)-1)%len(opts.Requests)]
				wg.Add(1)
				go func() {
					defer wg.Done()
					issue(ctx, client, opts, req, recs[slot])
					sem <- slot
				}()
			default:
				// All slots busy: drop the tick.
			}
		}
	}
}

// issue sends one request and records its outcome. rec may be nil.
func issue(ctx context.Context, client *http.Client, opts Options, r Request, rec *recorder) {
	rctx, cancel := context.WithTimeout(ctx, opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, opts.Target+r.Path, bytes.NewReader(r.Body))
	if err != nil {
		if rec != nil {
			rec.transport++
		}
		return
	}
	req.Header.Set("Content-Type", "application/json")
	// Every request originates a trace: a p99 outlier's trace ID leads
	// straight to the retained trace in the target's flight recorder.
	tc := obs.NewTraceContext()
	req.Header.Set(obs.TraceparentHeader, tc.Traceparent())
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		// A request cut off by the run deadline is not a target failure.
		if rec != nil && ctx.Err() == nil {
			rec.transport++
		}
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if rec != nil {
		lat := time.Since(start).Seconds()
		rec.latencies = append(rec.latencies, lat)
		rec.statuses[resp.StatusCode]++
		rec.noteSlow(SlowTrace{
			Name:      r.Name,
			Status:    resp.StatusCode,
			LatencyMs: lat * 1000,
			TraceID:   tc.TraceID.String(),
		})
	}
}

// Summarize computes the percentile summary of a latency sample set
// (seconds in, milliseconds out).
func Summarize(latencies []float64) Percentiles {
	if len(latencies) == 0 {
		return Percentiles{}
	}
	sorted := append([]float64(nil), latencies...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	ms := func(s float64) float64 { return s * 1000 }
	return Percentiles{
		P50:  ms(Quantile(sorted, 0.50)),
		P90:  ms(Quantile(sorted, 0.90)),
		P95:  ms(Quantile(sorted, 0.95)),
		P99:  ms(Quantile(sorted, 0.99)),
		Max:  ms(sorted[len(sorted)-1]),
		Mean: ms(sum / float64(len(sorted))),
	}
}

// Quantile returns the q-quantile (0 < q <= 1) of an ascending sorted
// sample using the nearest-rank method.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// BenchFile is the BENCH_*.json capacity document: one named Result
// per measured topology.
type BenchFile struct {
	Benchmark string   `json:"benchmark"`
	Configs   []Result `json:"configs"`
}

// MergeResult inserts res into the bench file at path (created if
// missing), replacing any config with the same name, and writes the
// file back atomically-enough for a benchmark artifact.
func MergeResult(path, benchmark string, res Result) error {
	bf := BenchFile{Benchmark: benchmark}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &bf); err != nil {
			return fmt.Errorf("loadgen: parsing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if benchmark != "" {
		bf.Benchmark = benchmark
	}
	replaced := false
	for i := range bf.Configs {
		if bf.Configs[i].Name == res.Name {
			bf.Configs[i] = res
			replaced = true
			break
		}
	}
	if !replaced {
		bf.Configs = append(bf.Configs, res)
	}
	out, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// CheckP99 guards against latency regressions: it loads the bench
// file, finds the named config, and fails if measuredP99Ms exceeds
// slack times the recorded p99. Slack absorbs the difference between
// the machine that recorded the baseline and the machine checking it.
func CheckP99(path, name string, measuredP99Ms, slack float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("loadgen: reading baseline: %w", err)
	}
	var bf BenchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return fmt.Errorf("loadgen: parsing baseline %s: %w", path, err)
	}
	for _, c := range bf.Configs {
		if c.Name != name {
			continue
		}
		limit := c.Latency.P99 * slack
		if c.Latency.P99 <= 0 {
			return fmt.Errorf("loadgen: baseline %q has no recorded p99", name)
		}
		if measuredP99Ms > limit {
			return fmt.Errorf("loadgen: p99 regression: measured %.2fms > limit %.2fms (baseline %.2fms x slack %.1f)",
				measuredP99Ms, limit, c.Latency.P99, slack)
		}
		return nil
	}
	return fmt.Errorf("loadgen: baseline %s has no config %q", path, name)
}
