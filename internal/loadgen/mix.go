package loadgen

import (
	"encoding/json"
	"fmt"
)

// SamplePTX is a small raw-PTX payload for mixed-workload runs: a
// 64-iteration counted loop that exercises the raw-PTX predict path
// (parse, lint gate, compiled DCA, full-inventory estimator) without
// dominating the run.
const SamplePTX = `.version 6.0
.target sm_61
.address_size 64
.visible .entry loadgen_loop(
.param .u64 p0
)
{
mov.u32 %r1, 0;
LOOP:
add.s32 %r1, %r1, 1;
setp.lt.s32 %p1, %r1, 64;
@%p1 bra LOOP;
ret;
}
`

// MixSpec describes a deterministic request mix.
type MixSpec struct {
	// Models are the zoo models to predict (round-robined).
	Models []string
	// GPUs are the prediction targets (required with Models or PTXEvery).
	GPUs []string
	// PTXEvery inserts one raw-PTX predict after every n model
	// requests; 0 disables.
	PTXEvery int
	// LintEvery inserts one model lint after every n requests; 0
	// disables.
	LintEvery int
}

// Build expands a MixSpec into the concrete request list Run replays.
// The expansion is deterministic: the same spec always produces the
// same byte-identical request sequence, which is what makes recorded
// capacity curves comparable across runs and machines.
func (m MixSpec) Build() ([]Request, error) {
	if len(m.Models) == 0 {
		return nil, fmt.Errorf("loadgen: mix needs at least one model")
	}
	if len(m.GPUs) == 0 {
		return nil, fmt.Errorf("loadgen: mix needs at least one gpu")
	}
	var out []Request
	appendPredict := func(model string) error {
		body, err := json.Marshal(map[string]any{"model": model, "gpus": m.GPUs})
		if err != nil {
			return err
		}
		out = append(out, Request{Name: model, Path: "/v1/predict", Body: body})
		return nil
	}
	ptxBody, err := json.Marshal(map[string]any{
		"ptx": SamplePTX, "trainable_params": 1000, "gpus": m.GPUs,
	})
	if err != nil {
		return nil, err
	}
	for i, model := range m.Models {
		if err := appendPredict(model); err != nil {
			return nil, err
		}
		if m.PTXEvery > 0 && (i+1)%m.PTXEvery == 0 {
			out = append(out, Request{Name: "ptx", Path: "/v1/predict", Body: ptxBody})
		}
		if m.LintEvery > 0 && (i+1)%m.LintEvery == 0 {
			lintBody, err := json.Marshal(map[string]any{"model": model})
			if err != nil {
				return nil, err
			}
			out = append(out, Request{Name: "lint:" + model, Path: "/v1/lint", Body: lintBody})
		}
	}
	return out, nil
}
