package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestQuantile(t *testing.T) {
	cases := []struct {
		name   string
		sorted []float64
		q      float64
		want   float64
	}{
		{"empty", nil, 0.5, 0},
		{"single", []float64{3}, 0.99, 3},
		{"median-odd", []float64{1, 2, 3}, 0.5, 2},
		{"median-even", []float64{1, 2, 3, 4}, 0.5, 2},
		{"p99-of-100", seq(100), 0.99, 99},
		{"p50-of-100", seq(100), 0.50, 50},
		{"p100", seq(100), 1.0, 100},
		{"tiny-q-clamps-to-first", []float64{5, 6, 7}, 0.01, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Quantile(tc.sorted, tc.q); got != tc.want {
				t.Errorf("Quantile(%v, %v) = %v, want %v", tc.sorted, tc.q, got, tc.want)
			}
		})
	}
}

func seq(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}

func TestSummarize(t *testing.T) {
	if got := Summarize(nil); got != (Percentiles{}) {
		t.Errorf("Summarize(nil) = %+v, want zero", got)
	}
	// Seconds in, milliseconds out; input order must not matter.
	got := Summarize([]float64{0.003, 0.001, 0.002})
	want := Percentiles{P50: 2, P90: 3, P95: 3, P99: 3, Max: 3, Mean: 2}
	if math.Abs(got.Mean-want.Mean) > 1e-9 {
		t.Errorf("Mean = %v, want %v", got.Mean, want.Mean)
	}
	got.Mean, want.Mean = 0, 0
	if got != want {
		t.Errorf("Summarize = %+v, want %+v", got, want)
	}
}

func TestMixSpecBuild(t *testing.T) {
	t.Run("deterministic", func(t *testing.T) {
		spec := MixSpec{Models: []string{"alexnet", "vgg16"}, GPUs: []string{"gtx1080ti"}, PTXEvery: 1, LintEvery: 2}
		a, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		b, _ := spec.Build()
		if len(a) != len(b) {
			t.Fatalf("two builds differ in length: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].Name != b[i].Name || a[i].Path != b[i].Path || string(a[i].Body) != string(b[i].Body) {
				t.Fatalf("request %d differs between builds: %+v vs %+v", i, a[i], b[i])
			}
		}
		// 2 model predicts + 2 ptx predicts + 1 lint (after the 2nd model).
		if len(a) != 5 {
			t.Fatalf("mix length %d, want 5: %+v", len(a), names(a))
		}
		wantNames := []string{"alexnet", "ptx", "vgg16", "ptx", "lint:vgg16"}
		for i, n := range wantNames {
			if a[i].Name != n {
				t.Errorf("request %d is %q, want %q (mix %v)", i, a[i].Name, n, names(a))
			}
		}
	})
	t.Run("bodies-parse", func(t *testing.T) {
		spec := MixSpec{Models: []string{"alexnet"}, GPUs: []string{"gtx1080ti", "v100s"}, PTXEvery: 1, LintEvery: 1}
		reqs, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range reqs {
			var doc map[string]any
			if err := json.Unmarshal(r.Body, &doc); err != nil {
				t.Errorf("request %q body is not JSON: %v", r.Name, err)
			}
		}
	})
	t.Run("validation", func(t *testing.T) {
		if _, err := (MixSpec{GPUs: []string{"g"}}).Build(); err == nil {
			t.Error("mix without models built")
		}
		if _, err := (MixSpec{Models: []string{"m"}}).Build(); err == nil {
			t.Error("mix without gpus built")
		}
	})
}

func names(reqs []Request) []string {
	out := make([]string, len(reqs))
	for i, r := range reqs {
		out[i] = r.Name
	}
	return out
}

// TestRunClosedLoop drives the generator against a local stub and
// checks the accounting: request totals, status counts, latency
// sanity, and that the run respects its duration.
func TestRunClosedLoop(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if strings.HasSuffix(r.URL.Path, "/v1/lint") {
			w.WriteHeader(http.StatusBadRequest)
			fmt.Fprint(w, `{"error":{"code":"bad_request","message":"nope"}}`)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer ts.Close()

	res, err := Run(context.Background(), Options{
		Target: ts.URL,
		Requests: []Request{
			{Name: "ok", Path: "/v1/predict", Body: []byte(`{}`)},
			{Name: "bad", Path: "/v1/lint", Body: []byte(`{}`)},
		},
		Duration:    300 * time.Millisecond,
		Concurrency: 4,
		Timeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Mode != "closed" {
		t.Errorf("mode %q, want closed", res.Mode)
	}
	// Requests cut off by the run deadline reach the server but are
	// deliberately unrecorded; at most one per worker can straggle.
	if res.Requests == 0 || res.Requests > hits.Load() || hits.Load()-res.Requests > 4 {
		t.Errorf("recorded %d requests, server saw %d", res.Requests, hits.Load())
	}
	if res.TransportErrors != 0 {
		t.Errorf("transport errors %d against a healthy stub", res.TransportErrors)
	}
	// The mix alternates 200 and 400 round-robin.
	if res.Non2xx == 0 || res.StatusCounts["400"] == 0 || res.StatusCounts["200"] == 0 {
		t.Errorf("status accounting off: %v (non2xx %d)", res.StatusCounts, res.Non2xx)
	}
	if res.Errors() != res.Non2xx {
		t.Errorf("Errors() = %d, want %d", res.Errors(), res.Non2xx)
	}
	if res.Latency.P50 <= 0 || res.Latency.Max < res.Latency.P99 || res.Latency.P99 < res.Latency.P50 {
		t.Errorf("implausible latency summary: %+v", res.Latency)
	}
	if res.DurationSeconds < 0.25 || res.DurationSeconds > 2 {
		t.Errorf("measured window %.2fs, want ~0.3s", res.DurationSeconds)
	}
}

// TestRunOpenLoop checks the fixed-schedule mode: the issued request
// count tracks rate*duration, never the (much higher) closed-loop
// capacity of the stub.
func TestRunOpenLoop(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer ts.Close()

	res, err := Run(context.Background(), Options{
		Target:      ts.URL,
		Requests:    []Request{{Name: "ok", Path: "/v1/predict", Body: []byte(`{}`)}},
		Duration:    500 * time.Millisecond,
		Concurrency: 8,
		RatePerSec:  100,
		Timeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Mode != "open" {
		t.Errorf("mode %q, want open", res.Mode)
	}
	// ~50 scheduled ticks; allow generous scheduling slop but reject
	// closed-loop-like volumes (the stub could serve tens of thousands).
	if res.Requests < 10 || res.Requests > 100 {
		t.Errorf("open loop issued %d requests at 100/s over 0.5s, want ~50", res.Requests)
	}
	if res.Errors() != 0 {
		t.Errorf("errors %d against a healthy stub", res.Errors())
	}
}

// TestRunWarmupExcluded checks that warmup traffic reaches the target
// but is absent from the measured result.
func TestRunWarmupExcluded(t *testing.T) {
	var total atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		total.Add(1)
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer ts.Close()

	res, err := Run(context.Background(), Options{
		Target:      ts.URL,
		Requests:    []Request{{Name: "ok", Path: "/v1/predict", Body: []byte(`{}`)}},
		Duration:    200 * time.Millisecond,
		Warmup:      200 * time.Millisecond,
		Concurrency: 2,
		Timeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Requests == 0 {
		t.Fatal("no measured requests")
	}
	if total.Load() <= res.Requests {
		t.Errorf("server saw %d requests, measured %d: warmup traffic missing or counted", total.Load(), res.Requests)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Options{Requests: []Request{{}}}); err == nil {
		t.Error("run without target succeeded")
	}
	if _, err := Run(context.Background(), Options{Target: "http://x"}); err == nil {
		t.Error("run without requests succeeded")
	}
}

// TestTransportErrorCounting distinguishes real connection failures
// (counted) from requests cut off by the run deadline (not counted).
func TestTransportErrorCounting(t *testing.T) {
	// A closed server: every request is a genuine transport error.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close()
	res, err := Run(context.Background(), Options{
		Target:      ts.URL,
		Requests:    []Request{{Name: "x", Path: "/v1/predict", Body: []byte(`{}`)}},
		Duration:    100 * time.Millisecond,
		Concurrency: 2,
		Timeout:     time.Second,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.TransportErrors == 0 {
		t.Error("connection-refused requests not counted as transport errors")
	}
	if res.Requests != res.TransportErrors {
		t.Errorf("requests %d != transport errors %d for a dead target", res.Requests, res.TransportErrors)
	}
}

func TestMergeResult(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	mk := func(name string, p99 float64) Result {
		return Result{Name: name, Mode: "closed", Requests: 10, Latency: Percentiles{P99: p99}}
	}

	if err := MergeResult(path, "gateway_capacity", mk("1-replica", 5)); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := MergeResult(path, "gateway_capacity", mk("2-replica", 4)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := MergeResult(path, "", mk("1-replica", 6)); err != nil {
		t.Fatalf("replace: %v", err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var bf BenchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		t.Fatalf("bench file is not JSON: %v\n%s", err, raw)
	}
	if bf.Benchmark != "gateway_capacity" {
		t.Errorf("benchmark %q survived empty-name merge, want gateway_capacity", bf.Benchmark)
	}
	if len(bf.Configs) != 2 {
		t.Fatalf("%d configs, want 2 (replace, not append): %+v", len(bf.Configs), bf.Configs)
	}
	if bf.Configs[0].Name != "1-replica" || bf.Configs[0].Latency.P99 != 6 {
		t.Errorf("replace failed: %+v", bf.Configs[0])
	}

	if err := MergeResult(filepath.Join(t.TempDir(), "bad.json"), "b", Result{Name: "x"}); err != nil {
		t.Errorf("merge into fresh dir: %v", err)
	}
	badPath := filepath.Join(t.TempDir(), "corrupt.json")
	if err := os.WriteFile(badPath, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := MergeResult(badPath, "b", Result{Name: "x"}); err == nil {
		t.Error("merge into corrupt file succeeded")
	}
}

func TestCheckP99(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := MergeResult(path, "b", Result{Name: "cfg", Latency: Percentiles{P99: 10}}); err != nil {
		t.Fatal(err)
	}
	if err := CheckP99(path, "cfg", 25, 3); err != nil {
		t.Errorf("25ms vs 10ms baseline at 3x slack should pass: %v", err)
	}
	if err := CheckP99(path, "cfg", 35, 3); err == nil {
		t.Error("35ms vs 10ms baseline at 3x slack should fail")
	}
	if err := CheckP99(path, "missing", 1, 3); err == nil {
		t.Error("missing config should fail")
	}
	if err := CheckP99(filepath.Join(t.TempDir(), "nope.json"), "cfg", 1, 3); err == nil {
		t.Error("missing baseline file should fail")
	}
	if err := MergeResult(path, "b", Result{Name: "zero"}); err != nil {
		t.Fatal(err)
	}
	if err := CheckP99(path, "zero", 1, 3); err == nil {
		t.Error("baseline without a recorded p99 should fail")
	}
}
