// Package dse implements the design-space exploration the paper's
// introduction motivates: selecting the right GPGPU accelerator for a
// CNN's inference under design constraints (latency, power, memory,
// cost) without prototyping on every device. The trained estimator
// predicts IPC per candidate; combined with the dynamic instruction
// count this yields a predicted latency, and the hardware datasheet
// supplies power and memory — all without executing the network.
package dse

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"cnnperf/internal/core"
	"cnnperf/internal/gpu"
	"cnnperf/internal/parallel"
)

// Constraints bound the acceptable design points. Zero values disable a
// constraint.
type Constraints struct {
	// MaxLatencySec rejects devices whose predicted inference latency
	// exceeds this bound (the "on-time computation" requirement).
	MaxLatencySec float64
	// MaxPowerW rejects devices whose TDP exceeds this bound (edge and
	// IoT deployments).
	MaxPowerW float64
	// MinMemGB rejects devices with less device memory than the model
	// plus activations need.
	MinMemGB float64
}

// Candidate is one scored design point.
type Candidate struct {
	// ID is the catalogue id of the device.
	ID string
	// Spec is the device datasheet.
	Spec gpu.Spec
	// PredictedIPC is the estimator's output.
	PredictedIPC float64
	// PredictedLatencySec is executed-instructions / (IPC * clock).
	PredictedLatencySec float64
	// PerfPerWatt is 1/(latency * TDP) — higher is better.
	PerfPerWatt float64
	// Feasible reports whether every constraint holds.
	Feasible bool
	// Violations lists the violated constraints.
	Violations []string
}

// Objective selects the ranking criterion.
type Objective int

const (
	// MinLatency ranks by predicted latency, fastest first.
	MinLatency Objective = iota
	// MaxEfficiency ranks by performance per watt.
	MaxEfficiency
)

// Result is the outcome of one exploration.
type Result struct {
	// Model is the CNN explored for.
	Model string
	// Objective is the ranking criterion used.
	Objective Objective
	// Candidates are all scored devices, ranked best first with
	// infeasible candidates after feasible ones.
	Candidates []Candidate
}

// Best returns the top feasible candidate.
func (r *Result) Best() (Candidate, error) {
	for _, c := range r.Candidates {
		if c.Feasible {
			return c, nil
		}
	}
	return Candidate{}, fmt.Errorf("dse: no feasible design point for %s", r.Model)
}

// Explore scores every candidate GPU for the analysed CNN using the
// trained estimator and ranks them under the given objective and
// constraints.
func Explore(est *core.Estimator, a *core.ModelAnalysis, candidateIDs []string, cons Constraints, obj Objective) (*Result, error) {
	return ExploreContext(context.Background(), est, a, candidateIDs, cons, obj, 0)
}

// ExploreContext is Explore with cancellation and a bounded worker pool:
// the candidate devices are scored concurrently (workers <= 0 selects
// GOMAXPROCS), then ranked. Scoring is a pure function of (estimator,
// analysis, spec), so the ranking is identical for every worker count.
func ExploreContext(ctx context.Context, est *core.Estimator, a *core.ModelAnalysis, candidateIDs []string, cons Constraints, obj Objective, workers int) (*Result, error) {
	if est == nil || a == nil {
		return nil, fmt.Errorf("dse: nil estimator or analysis")
	}
	if len(candidateIDs) == 0 {
		return nil, fmt.Errorf("dse: no candidate devices")
	}
	// Resolve every candidate up front so an unknown id fails fast and
	// deterministically, before any scoring work is spent.
	specs := make([]gpu.Spec, len(candidateIDs))
	for i, id := range candidateIDs {
		spec, err := gpu.Lookup(id)
		if err != nil {
			return nil, fmt.Errorf("dse: %w", err)
		}
		specs[i] = spec
	}
	res := &Result{Model: a.Name, Objective: obj}
	scored := make([]Candidate, len(candidateIDs))
	err := parallel.ForEach(ctx, workers, len(candidateIDs), func(_ context.Context, i int) error {
		id, spec := candidateIDs[i], specs[i]
		ipc, err := est.Predict(a, spec)
		if err != nil {
			return fmt.Errorf("dse: predicting %s on %s: %w", a.Name, id, err)
		}
		c := Candidate{ID: id, Spec: spec, PredictedIPC: ipc}
		clockHz := spec.BoostClockMHz * 1e6
		c.PredictedLatencySec = float64(a.Report.Executed) / (ipc * clockHz)
		if spec.TDPWatts > 0 {
			c.PerfPerWatt = 1 / (c.PredictedLatencySec * float64(spec.TDPWatts))
		}
		c.Feasible = true
		if cons.MaxLatencySec > 0 && c.PredictedLatencySec > cons.MaxLatencySec {
			c.Feasible = false
			c.Violations = append(c.Violations,
				fmt.Sprintf("latency %.4fs > %.4fs", c.PredictedLatencySec, cons.MaxLatencySec))
		}
		if cons.MaxPowerW > 0 && float64(spec.TDPWatts) > cons.MaxPowerW {
			c.Feasible = false
			c.Violations = append(c.Violations,
				fmt.Sprintf("TDP %dW > %.0fW", spec.TDPWatts, cons.MaxPowerW))
		}
		// Memory need: weights + a working-activations allowance.
		needGB := float64(4*a.Summary.TrainableParams)/1e9 + 0.5
		if cons.MinMemGB > needGB {
			needGB = cons.MinMemGB
		}
		if spec.MemSizeGB < needGB {
			c.Feasible = false
			c.Violations = append(c.Violations,
				fmt.Sprintf("memory %.0fGB < %.1fGB needed", spec.MemSizeGB, needGB))
		}
		scored[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Candidates = scored
	sort.SliceStable(res.Candidates, func(i, j int) bool {
		a, b := res.Candidates[i], res.Candidates[j]
		if a.Feasible != b.Feasible {
			return a.Feasible
		}
		switch obj {
		case MaxEfficiency:
			return a.PerfPerWatt > b.PerfPerWatt
		default:
			return a.PredictedLatencySec < b.PredictedLatencySec
		}
	})
	return res, nil
}

// Format renders the exploration as an aligned table.
func (r *Result) Format() string {
	var b strings.Builder
	obj := "min latency"
	if r.Objective == MaxEfficiency {
		obj = "max perf/W"
	}
	fmt.Fprintf(&b, "DSE for %s (objective: %s)\n", r.Model, obj)
	fmt.Fprintf(&b, "%-4s %-14s %10s %12s %12s  %s\n", "rank", "device", "IPC", "latency s", "perf/W", "notes")
	for i, c := range r.Candidates {
		note := "ok"
		if !c.Feasible {
			note = "INFEASIBLE: " + strings.Join(c.Violations, "; ")
		}
		fmt.Fprintf(&b, "%-4d %-14s %10.1f %12.5f %12.5f  %s\n",
			i+1, c.ID, c.PredictedIPC, c.PredictedLatencySec, c.PerfPerWatt, note)
	}
	return b.String()
}
