package dse

import (
	"strings"
	"testing"

	"cnnperf/internal/core"
	"cnnperf/internal/gpu"
	"cnnperf/internal/mlearn"
)

// trainedEstimator builds a small dataset and estimator shared by tests.
func trainedEstimator(t *testing.T) (*core.Estimator, *core.ModelAnalysis) {
	t.Helper()
	cfg := core.Config{}
	models := []string{"alexnet", "mobilenet", "mobilenetv2", "squeezenet", "resnet18"}
	ds, analyses, err := core.BuildDataset(models, gpu.TrainingGPUs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.TrainEstimator(ds, mlearn.NewDecisionTree())
	if err != nil {
		t.Fatal(err)
	}
	return est, analyses["mobilenetv2"]
}

func TestExploreRanksByLatency(t *testing.T) {
	est, a := trainedEstimator(t)
	res, err := Explore(est, a, gpu.TableIVGPUs, Constraints{}, MinLatency)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if len(res.Candidates) != len(gpu.TableIVGPUs) {
		t.Fatalf("candidates = %d", len(res.Candidates))
	}
	for i := 1; i < len(res.Candidates); i++ {
		a, b := res.Candidates[i-1], res.Candidates[i]
		if a.Feasible && b.Feasible && a.PredictedLatencySec > b.PredictedLatencySec {
			t.Error("feasible candidates not sorted by latency")
		}
	}
	best, err := res.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.PredictedLatencySec <= 0 || best.PredictedIPC <= 0 {
		t.Errorf("best candidate implausible: %+v", best)
	}
}

func TestExploreConstraints(t *testing.T) {
	est, a := trainedEstimator(t)
	// A 60 W power budget excludes every 250 W card.
	res, err := Explore(est, a, gpu.TableIVGPUs, Constraints{MaxPowerW: 60}, MinLatency)
	if err != nil {
		t.Fatal(err)
	}
	feasible := 0
	for _, c := range res.Candidates {
		if c.Feasible {
			feasible++
			if c.Spec.TDPWatts > 60 {
				t.Errorf("%s: infeasible TDP marked feasible", c.ID)
			}
		} else if len(c.Violations) == 0 {
			t.Errorf("%s: infeasible without violations", c.ID)
		}
	}
	if feasible == 0 {
		t.Error("the 47W Quadro P1000 should satisfy a 60W budget")
	}
	// Impossible latency bound: no feasible point, Best errors.
	res, err = Explore(est, a, gpu.TableIVGPUs, Constraints{MaxLatencySec: 1e-12}, MinLatency)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Best(); err == nil {
		t.Error("impossible constraints should leave no best candidate")
	}
	// Memory constraint.
	res, err = Explore(est, a, gpu.TableIVGPUs, Constraints{MinMemGB: 20}, MinLatency)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		if c.Feasible && c.Spec.MemSizeGB < 20 {
			t.Errorf("%s: memory constraint ignored", c.ID)
		}
	}
}

func TestExploreEfficiencyObjective(t *testing.T) {
	est, a := trainedEstimator(t)
	res, err := Explore(est, a, gpu.TableIVGPUs, Constraints{}, MaxEfficiency)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Candidates); i++ {
		x, y := res.Candidates[i-1], res.Candidates[i]
		if x.Feasible && y.Feasible && x.PerfPerWatt < y.PerfPerWatt {
			t.Error("not sorted by efficiency")
		}
	}
}

func TestExploreErrors(t *testing.T) {
	est, a := trainedEstimator(t)
	if _, err := Explore(nil, a, gpu.TableIVGPUs, Constraints{}, MinLatency); err == nil {
		t.Error("nil estimator should error")
	}
	if _, err := Explore(est, nil, gpu.TableIVGPUs, Constraints{}, MinLatency); err == nil {
		t.Error("nil analysis should error")
	}
	if _, err := Explore(est, a, nil, Constraints{}, MinLatency); err == nil {
		t.Error("no candidates should error")
	}
	if _, err := Explore(est, a, []string{"voodoo"}, Constraints{}, MinLatency); err == nil {
		t.Error("unknown device should error")
	}
}

func TestFormat(t *testing.T) {
	est, a := trainedEstimator(t)
	res, err := Explore(est, a, gpu.TableIVGPUs, Constraints{MaxPowerW: 60}, MaxEfficiency)
	if err != nil {
		t.Fatal(err)
	}
	text := res.Format()
	if !strings.Contains(text, "max perf/W") || !strings.Contains(text, "INFEASIBLE") {
		t.Errorf("format missing content:\n%s", text)
	}
	if !strings.Contains(text, "quadrop1000") {
		t.Error("format missing candidates")
	}
}
