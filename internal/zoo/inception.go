package zoo

import (
	"fmt"

	"cnnperf/internal/cnn"
)

func init() {
	register(Reference{
		Name: "inceptionv3", Input: sq(299), Layers: 48,
		Neurons: 32_554_387, TrainableParams: 23_817_352,
	}, buildInceptionV3)
}

// convBN adds the Inception-style conv unit: bias-free convolution,
// batch norm (scale-free in Keras Inception, but we keep full BN; the
// difference is the gamma vector), ReLU.
func convBN(b *cnn.Builder, x *cnn.Node, tag string, filters, kh, kw, stride int, pad cnn.Padding) *cnn.Node {
	y := b.AddNamed(tag+"_conv", cnn.Conv2D{
		Filters: filters, KH: kh, KW: kw, SH: stride, SW: stride, Pad: pad,
	}, x)
	y = b.AddNamed(tag+"_bn", cnn.BatchNorm{Center: true}, y) // Keras Inception: scale=False
	return b.AddNamed(tag+"_relu", cnn.ReLU(), y)
}

// buildInceptionV3 constructs Inception v3 (Szegedy et al., CVPR 2016) at
// 299x299 with the Keras layer configuration: the 5-conv stem, three
// 35x35 modules, the grid reduction, four 17x17 factorised-7x7 modules,
// the second reduction and two 8x8 expanded-filter-bank modules.
func buildInceptionV3() *cnn.Model {
	b, x := cnn.NewBuilder("inceptionv3", sq(299))
	x = convBN(b, x, "stem1", 32, 3, 3, 2, cnn.Valid) // 149
	x = convBN(b, x, "stem2", 32, 3, 3, 1, cnn.Valid) // 147
	x = convBN(b, x, "stem3", 64, 3, 3, 1, cnn.Same)  // 147
	x = b.Add(cnn.MaxPool2D(3, 2, cnn.Valid), x)      // 73
	x = convBN(b, x, "stem4", 80, 1, 1, 1, cnn.Valid)
	x = convBN(b, x, "stem5", 192, 3, 3, 1, cnn.Valid) // 71
	x = b.Add(cnn.MaxPool2D(3, 2, cnn.Valid), x)       // 35x35x192

	// Three Inception-A modules (35x35); pool-branch filters 32,64,64.
	for i, poolF := range []int{32, 64, 64} {
		x = inceptionA(b, x, fmt.Sprintf("mixed%d", i), poolF)
	}
	x = inceptionReductionA(b, x, "mixed3") // 17x17x768
	// Four Inception-B modules with factorised 7x7; inner widths 128,160,160,192.
	for i, c := range []int{128, 160, 160, 192} {
		x = inceptionB(b, x, fmt.Sprintf("mixed%d", i+4), c)
	}
	x = inceptionReductionB(b, x, "mixed8") // 8x8x1280
	// Two Inception-C modules.
	for i := 0; i < 2; i++ {
		x = inceptionC(b, x, fmt.Sprintf("mixed%d", i+9))
	}
	x = b.Add(cnn.GlobalAvgPool(), x)
	x = b.Add(cnn.FC(1000), x)
	x = b.Add(cnn.Softmax(), x)
	return b.MustBuild(x)
}

// inceptionA is the 35x35 module: 1x1, 5x5, double-3x3 and pooled branches.
func inceptionA(b *cnn.Builder, x *cnn.Node, tag string, poolF int) *cnn.Node {
	b1 := convBN(b, x, tag+"_b1", 64, 1, 1, 1, cnn.Same)

	b5 := convBN(b, x, tag+"_b5a", 48, 1, 1, 1, cnn.Same)
	b5 = convBN(b, b5, tag+"_b5b", 64, 5, 5, 1, cnn.Same)

	b3 := convBN(b, x, tag+"_b3a", 64, 1, 1, 1, cnn.Same)
	b3 = convBN(b, b3, tag+"_b3b", 96, 3, 3, 1, cnn.Same)
	b3 = convBN(b, b3, tag+"_b3c", 96, 3, 3, 1, cnn.Same)

	bp := b.AddNamed(tag+"_pool", cnn.AvgPool2D(3, 1, cnn.Same), x)
	bp = convBN(b, bp, tag+"_bp", poolF, 1, 1, 1, cnn.Same)

	return b.AddNamed(tag+"_cat", cnn.Concat{}, b1, b5, b3, bp)
}

// inceptionReductionA shrinks 35x35 to 17x17.
func inceptionReductionA(b *cnn.Builder, x *cnn.Node, tag string) *cnn.Node {
	b3 := convBN(b, x, tag+"_b3", 384, 3, 3, 2, cnn.Valid)

	bd := convBN(b, x, tag+"_bda", 64, 1, 1, 1, cnn.Same)
	bd = convBN(b, bd, tag+"_bdb", 96, 3, 3, 1, cnn.Same)
	bd = convBN(b, bd, tag+"_bdc", 96, 3, 3, 2, cnn.Valid)

	bp := b.AddNamed(tag+"_pool", cnn.MaxPool2D(3, 2, cnn.Valid), x)
	return b.AddNamed(tag+"_cat", cnn.Concat{}, b3, bd, bp)
}

// inceptionB is the 17x17 module with factorised 7x7 convolutions of
// inner width c.
func inceptionB(b *cnn.Builder, x *cnn.Node, tag string, c int) *cnn.Node {
	b1 := convBN(b, x, tag+"_b1", 192, 1, 1, 1, cnn.Same)

	b7 := convBN(b, x, tag+"_b7a", c, 1, 1, 1, cnn.Same)
	b7 = convBN(b, b7, tag+"_b7b", c, 1, 7, 1, cnn.Same)
	b7 = convBN(b, b7, tag+"_b7c", 192, 7, 1, 1, cnn.Same)

	bd := convBN(b, x, tag+"_bda", c, 1, 1, 1, cnn.Same)
	bd = convBN(b, bd, tag+"_bdb", c, 7, 1, 1, cnn.Same)
	bd = convBN(b, bd, tag+"_bdc", c, 1, 7, 1, cnn.Same)
	bd = convBN(b, bd, tag+"_bdd", c, 7, 1, 1, cnn.Same)
	bd = convBN(b, bd, tag+"_bde", 192, 1, 7, 1, cnn.Same)

	bp := b.AddNamed(tag+"_pool", cnn.AvgPool2D(3, 1, cnn.Same), x)
	bp = convBN(b, bp, tag+"_bp", 192, 1, 1, 1, cnn.Same)

	return b.AddNamed(tag+"_cat", cnn.Concat{}, b1, b7, bd, bp)
}

// inceptionReductionB shrinks 17x17 to 8x8.
func inceptionReductionB(b *cnn.Builder, x *cnn.Node, tag string) *cnn.Node {
	b3 := convBN(b, x, tag+"_b3a", 192, 1, 1, 1, cnn.Same)
	b3 = convBN(b, b3, tag+"_b3b", 320, 3, 3, 2, cnn.Valid)

	b7 := convBN(b, x, tag+"_b7a", 192, 1, 1, 1, cnn.Same)
	b7 = convBN(b, b7, tag+"_b7b", 192, 1, 7, 1, cnn.Same)
	b7 = convBN(b, b7, tag+"_b7c", 192, 7, 1, 1, cnn.Same)
	b7 = convBN(b, b7, tag+"_b7d", 192, 3, 3, 2, cnn.Valid)

	bp := b.AddNamed(tag+"_pool", cnn.MaxPool2D(3, 2, cnn.Valid), x)
	return b.AddNamed(tag+"_cat", cnn.Concat{}, b3, b7, bp)
}

// inceptionC is the 8x8 module with expanded 3x3 filter banks.
func inceptionC(b *cnn.Builder, x *cnn.Node, tag string) *cnn.Node {
	b1 := convBN(b, x, tag+"_b1", 320, 1, 1, 1, cnn.Same)

	b3 := convBN(b, x, tag+"_b3a", 384, 1, 1, 1, cnn.Same)
	b3l := convBN(b, b3, tag+"_b3l", 384, 1, 3, 1, cnn.Same)
	b3r := convBN(b, b3, tag+"_b3r", 384, 3, 1, 1, cnn.Same)
	b3c := b.AddNamed(tag+"_b3cat", cnn.Concat{}, b3l, b3r)

	bd := convBN(b, x, tag+"_bda", 448, 1, 1, 1, cnn.Same)
	bd = convBN(b, bd, tag+"_bdb", 384, 3, 3, 1, cnn.Same)
	bdl := convBN(b, bd, tag+"_bdl", 384, 1, 3, 1, cnn.Same)
	bdr := convBN(b, bd, tag+"_bdr", 384, 3, 1, 1, cnn.Same)
	bdc := b.AddNamed(tag+"_bdcat", cnn.Concat{}, bdl, bdr)

	bp := b.AddNamed(tag+"_pool", cnn.AvgPool2D(3, 1, cnn.Same), x)
	bp = convBN(b, bp, tag+"_bp", 192, 1, 1, 1, cnn.Same)

	return b.AddNamed(tag+"_cat", cnn.Concat{}, b1, b3c, bdc, bp)
}
