package zoo

import (
	"fmt"

	"cnnperf/internal/cnn"
)

func init() {
	register(Reference{
		Name: "resnet101", Input: sq(224), Layers: 101,
		Neurons: 55_886_036, TrainableParams: 44_601_832,
	}, func() *cnn.Model { return buildResNetV1("resnet101", []int{3, 4, 23, 3}) })
	register(Reference{
		Name: "resnet152", Input: sq(224), Layers: 152,
		Neurons: 79_067_348, TrainableParams: 60_268_520,
	}, func() *cnn.Model { return buildResNetV1("resnet152", []int{3, 8, 36, 3}) })
	register(Reference{
		Name: "resnet50v2", Input: sq(224), Layers: 50,
		Neurons: 31_381_204, TrainableParams: 25_568_360,
	}, func() *cnn.Model { return buildResNetV2("resnet50v2", []int{3, 4, 6, 3}) })
	register(Reference{
		Name: "resnet101v2", Input: sq(224), Layers: 101,
		Neurons: 51_261_140, TrainableParams: 44_577_896,
	}, func() *cnn.Model { return buildResNetV2("resnet101v2", []int{3, 4, 23, 3}) })
	register(Reference{
		Name: "resnet152v2", Input: sq(224), Layers: 152,
		Neurons: 75_755_220, TrainableParams: 60_236_904,
	}, func() *cnn.Model { return buildResNetV2("resnet152v2", []int{3, 8, 36, 3}) })
	registerExtra("resnet50", sq(224), func() *cnn.Model {
		return buildResNetV1("resnet50", []int{3, 4, 6, 3})
	})
}

// buildResNetV1 constructs a post-activation bottleneck ResNet (He et al.,
// CVPR 2016) following the Keras convention: a 7x7/2 stem with bias, four
// stages of 1x1-3x3-1x1 bottlenecks (stride on the first block of stages
// 2-4), projection shortcuts at stage entries, global average pooling and
// a 1000-way classifier. Keras ResNet v1 convolutions keep their biases.
func buildResNetV1(name string, blocks []int) *cnn.Model {
	b, x := cnn.NewBuilder(name, sq(224))
	x = b.Add(cnn.Pad2D(3), x)
	x = b.Add(cnn.Conv(64, 7, 2, cnn.Valid), x) // 112x112x64
	x = b.Add(cnn.BN(), x)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.Pad2D(1), x)
	x = b.Add(cnn.MaxPool2D(3, 2, cnn.Valid), x) // 56x56x64

	width := []int{64, 128, 256, 512}
	for stage, n := range blocks {
		for blk := 0; blk < n; blk++ {
			stride := 1
			if blk == 0 && stage > 0 {
				stride = 2
			}
			x = resV1Bottleneck(b, x, width[stage], stride, blk == 0, fmt.Sprintf("s%db%d", stage+1, blk+1))
		}
	}
	x = b.Add(cnn.GlobalAvgPool(), x)
	x = b.Add(cnn.FC(1000), x)
	x = b.Add(cnn.Softmax(), x)
	return b.MustBuild(x)
}

// resV1Bottleneck adds one post-activation bottleneck residual block.
// project selects a 1x1 projection shortcut (first block of each stage).
func resV1Bottleneck(b *cnn.Builder, x *cnn.Node, width, stride int, project bool, tag string) *cnn.Node {
	shortcut := x
	if project {
		shortcut = b.AddNamed(tag+"_sc_conv", cnn.Conv(4*width, 1, stride, cnn.Valid), x)
		shortcut = b.AddNamed(tag+"_sc_bn", cnn.BN(), shortcut)
	}
	y := b.AddNamed(tag+"_c1", cnn.Conv(width, 1, stride, cnn.Valid), x)
	y = b.AddNamed(tag+"_bn1", cnn.BN(), y)
	y = b.AddNamed(tag+"_r1", cnn.ReLU(), y)
	y = b.AddNamed(tag+"_c2", cnn.Conv(width, 3, 1, cnn.Same), y)
	y = b.AddNamed(tag+"_bn2", cnn.BN(), y)
	y = b.AddNamed(tag+"_r2", cnn.ReLU(), y)
	y = b.AddNamed(tag+"_c3", cnn.Conv(4*width, 1, 1, cnn.Valid), y)
	y = b.AddNamed(tag+"_bn3", cnn.BN(), y)
	y = b.AddNamed(tag+"_add", cnn.Add{}, shortcut, y)
	return b.AddNamed(tag+"_out", cnn.ReLU(), y)
}

// buildResNetV2 constructs a pre-activation bottleneck ResNet (He et al.,
// ECCV 2016) in the Keras layout: bias-free internal convolutions with
// BN+ReLU before each, stride-2 applied in the last block of stages 1-3,
// a final BN+ReLU, global average pooling and a 1000-way classifier.
func buildResNetV2(name string, blocks []int) *cnn.Model {
	b, x := cnn.NewBuilder(name, sq(224))
	x = b.Add(cnn.Pad2D(3), x)
	x = b.Add(cnn.Conv(64, 7, 2, cnn.Valid), x) // stem conv keeps bias in Keras v2
	x = b.Add(cnn.Pad2D(1), x)
	x = b.Add(cnn.MaxPool2D(3, 2, cnn.Valid), x)

	width := []int{64, 128, 256, 512}
	for stage, n := range blocks {
		for blk := 0; blk < n; blk++ {
			stride := 1
			if blk == n-1 && stage < len(blocks)-1 {
				stride = 2
			}
			x = resV2Bottleneck(b, x, width[stage], stride, blk == 0, fmt.Sprintf("s%db%d", stage+1, blk+1))
		}
	}
	x = b.Add(cnn.BN(), x)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.GlobalAvgPool(), x)
	x = b.Add(cnn.FC(1000), x)
	x = b.Add(cnn.Softmax(), x)
	return b.MustBuild(x)
}

// resV2Bottleneck adds one pre-activation bottleneck block. The shortcut
// is a 1x1 projection after the pre-activation when the block enters a
// stage, or a max-pool when it carries a stride, matching Keras.
func resV2Bottleneck(b *cnn.Builder, x *cnn.Node, width, stride int, project bool, tag string) *cnn.Node {
	pre := b.AddNamed(tag+"_pre_bn", cnn.BN(), x)
	pre = b.AddNamed(tag+"_pre_r", cnn.ReLU(), pre)

	var shortcut *cnn.Node
	switch {
	case project:
		shortcut = b.AddNamed(tag+"_sc_conv", cnn.Conv(4*width, 1, stride, cnn.Valid), pre)
	case stride > 1:
		shortcut = b.AddNamed(tag+"_sc_pool", cnn.MaxPool2D(1, stride, cnn.Valid), x)
	default:
		shortcut = x
	}

	y := b.AddNamed(tag+"_c1", cnn.ConvNoBias(width, 1, 1, cnn.Valid), pre)
	y = b.AddNamed(tag+"_bn1", cnn.BN(), y)
	y = b.AddNamed(tag+"_r1", cnn.ReLU(), y)
	y = b.AddNamed(tag+"_pad", cnn.Pad2D(1), y)
	y = b.AddNamed(tag+"_c2", cnn.ConvNoBias(width, 3, stride, cnn.Valid), y)
	y = b.AddNamed(tag+"_bn2", cnn.BN(), y)
	y = b.AddNamed(tag+"_r2", cnn.ReLU(), y)
	y = b.AddNamed(tag+"_c3", cnn.Conv(4*width, 1, 1, cnn.Valid), y)
	return b.AddNamed(tag+"_add", cnn.Add{}, shortcut, y)
}
