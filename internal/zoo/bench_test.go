package zoo

import "testing"

// BenchmarkBuild measures graph construction + shape inference per
// representative family member.
func BenchmarkBuild(b *testing.B) {
	for _, name := range []string{"alexnet", "vgg16", "resnet152v2", "densenet201", "efficientnetb7", "nasnetlarge"} {
		name := name
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := MustBuild(name)
				if m.TrainableParams() <= 0 {
					b.Fatal("no params")
				}
			}
		})
	}
}

// BenchmarkStaticAnalysisAll measures the Static Analyzer over the whole
// Table I inventory (what Phase 1 repeats per dataset build).
func BenchmarkStaticAnalysisAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var total int64
		for _, m := range All() {
			total += m.TrainableParams() + m.NeuronCount()
		}
		if total <= 0 {
			b.Fatal("no analysis output")
		}
	}
}
