package zoo

import (
	"fmt"

	"cnnperf/internal/cnn"
)

func init() {
	register(Reference{
		Name: "xception", Input: sq(299), Layers: 71,
		Neurons: 62_981_867, TrainableParams: 22_855_952,
	}, buildXception)
}

// sepConvBN adds an Xception separable convolution unit: bias-free
// depthwise 3x3 + bias-free pointwise + batch norm.
func sepConvBN(b *cnn.Builder, x *cnn.Node, tag string, filters int) *cnn.Node {
	y := b.AddNamed(tag+"_dw", cnn.DepthwiseConv(3, 1, cnn.Same), x)
	y = b.AddNamed(tag+"_pw", cnn.ConvNoBias(filters, 1, 1, cnn.Valid), y)
	return b.AddNamed(tag+"_bn", cnn.BN(), y)
}

// buildXception constructs Xception (Chollet, CVPR 2017): an entry flow of
// three strided separable modules with 1x1 shortcuts, a middle flow of
// eight residual separable modules at 728 channels, and the exit flow
// ending in 1536/2048-channel separable convolutions.
func buildXception() *cnn.Model {
	b, x := cnn.NewBuilder("xception", sq(299))
	// Entry stem.
	x = b.Add(cnn.ConvNoBias(32, 3, 2, cnn.Valid), x) // 149
	x = b.Add(cnn.BN(), x)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.ConvNoBias(64, 3, 1, cnn.Valid), x) // 147
	x = b.Add(cnn.BN(), x)
	x = b.Add(cnn.ReLU(), x)

	// Entry modules: 128, 256, 728 with strided max pool and conv shortcut.
	for i, f := range []int{128, 256, 728} {
		tag := fmt.Sprintf("entry%d", i+1)
		shortcut := b.AddNamed(tag+"_sc", cnn.ConvNoBias(f, 1, 2, cnn.Same), x)
		shortcut = b.AddNamed(tag+"_scbn", cnn.BN(), shortcut)
		y := x
		if i > 0 {
			y = b.AddNamed(tag+"_r0", cnn.ReLU(), y)
		}
		y = sepConvBN(b, y, tag+"_s1", f)
		y = b.AddNamed(tag+"_r1", cnn.ReLU(), y)
		y = sepConvBN(b, y, tag+"_s2", f)
		y = b.AddNamed(tag+"_pool", cnn.MaxPool2D(3, 2, cnn.Same), y)
		x = b.AddNamed(tag+"_add", cnn.Add{}, shortcut, y)
	}

	// Middle flow: eight residual modules at 728 channels.
	for i := 0; i < 8; i++ {
		tag := fmt.Sprintf("mid%d", i+1)
		y := x
		for j := 1; j <= 3; j++ {
			y = b.AddNamed(fmt.Sprintf("%s_r%d", tag, j), cnn.ReLU(), y)
			y = sepConvBN(b, y, fmt.Sprintf("%s_s%d", tag, j), 728)
		}
		x = b.AddNamed(tag+"_add", cnn.Add{}, x, y)
	}

	// Exit flow.
	shortcut := b.AddNamed("exit_sc", cnn.ConvNoBias(1024, 1, 2, cnn.Same), x)
	shortcut = b.AddNamed("exit_scbn", cnn.BN(), shortcut)
	y := b.AddNamed("exit_r1", cnn.ReLU(), x)
	y = sepConvBN(b, y, "exit_s1", 728)
	y = b.AddNamed("exit_r2", cnn.ReLU(), y)
	y = sepConvBN(b, y, "exit_s2", 1024)
	y = b.AddNamed("exit_pool", cnn.MaxPool2D(3, 2, cnn.Same), y)
	x = b.AddNamed("exit_add", cnn.Add{}, shortcut, y)

	x = sepConvBN(b, x, "exit_s3", 1536)
	x = b.Add(cnn.ReLU(), x)
	x = sepConvBN(b, x, "exit_s4", 2048)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.GlobalAvgPool(), x)
	x = b.Add(cnn.FC(1000), x)
	x = b.Add(cnn.Softmax(), x)
	return b.MustBuild(x)
}
