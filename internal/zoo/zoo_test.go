package zoo

import (
	"testing"

	"cnnperf/internal/cnn"
)

func TestAllModelsBuildAndValidate(t *testing.T) {
	for _, name := range Names() {
		m, err := Build(name)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: validate: %v", name, err)
		}
		if m.Name != name {
			t.Errorf("%s: model name is %q", name, m.Name)
		}
	}
}

func TestTableICoverage(t *testing.T) {
	if len(TableIOrder) != 31 {
		// Table I has 32 rows but lists resnet50v2..152v2 and the five
		// BiT models; the paper's text says 32 CNNs while the table
		// prints 31 distinct rows.
		t.Fatalf("TableIOrder has %d entries", len(TableIOrder))
	}
	for _, name := range TableIOrder {
		if _, ok := TableI(name); !ok {
			t.Errorf("no Table I reference for %s", name)
		}
		if _, err := Build(name); err != nil {
			t.Errorf("cannot build Table I model %s: %v", name, err)
		}
	}
}

// exactParamModels are the models whose trainable-parameter counts our
// structural reimplementation reproduces exactly as printed in Table I.
var exactParamModels = []string{
	"m-r50x1", "m-r50x3", "m-r101x3", "m-r101x1", "m-r152x4",
	"resnet101", "resnet152", "resnet50v2", "resnet101v2", "resnet152v2",
	"densenet121", "densenet169", "densenet201",
	"mobilenet", "inceptionv3", "vgg16", "vgg19",
	"efficientnetb0", "efficientnetb1", "efficientnetb2", "efficientnetb3",
	"efficientnetb4", "efficientnetb5", "efficientnetb6", "efficientnetb7",
	"xception", "mobilenetv2", "inceptionresnetv2",
}

func TestTableIParamsExact(t *testing.T) {
	for _, name := range exactParamModels {
		ref, _ := TableI(name)
		m := MustBuild(name)
		if got := m.TrainableParams(); got != ref.TrainableParams {
			t.Errorf("%s: params = %d, Table I says %d", name, got, ref.TrainableParams)
		}
	}
}

func TestTableIParamsApprox(t *testing.T) {
	// NASNet cell wiring has framework-specific corner cases; we land
	// within 0.1 %. The paper's AlexNet variant differs from the
	// canonical grouped AlexNet by 4.6 % (documented in EXPERIMENTS.md).
	approx := map[string]float64{
		"nasnetmobile": 0.1,
		"nasnetlarge":  0.1,
		"alexnet":      5.0,
	}
	for name, tolPct := range approx {
		ref, _ := TableI(name)
		m := MustBuild(name)
		got := float64(m.TrainableParams())
		want := float64(ref.TrainableParams)
		dev := 100 * abs(got-want) / want
		if dev > tolPct {
			t.Errorf("%s: params %v deviates %.2f%% from Table I %v (tol %.1f%%)", name, got, dev, want, tolPct)
		}
	}
}

// TestTableINeuronsExact verifies the "Neurons" column for the families
// whose graph granularity matches the Keras layer decomposition the paper
// counted. Our graphs carry one extra softmax node worth 1000 elements.
func TestTableINeuronsExact(t *testing.T) {
	exact := []string{
		"resnet101", "resnet152", "resnet50v2", "resnet101v2", "resnet152v2",
		"densenet121", "densenet169", "densenet201", "inceptionv3",
	}
	for _, name := range exact {
		ref, _ := TableI(name)
		m := MustBuild(name)
		if got := m.ActivationVolume(); got != ref.Neurons+1000 {
			t.Errorf("%s: activation volume = %d, Table I+softmax = %d", name, got, ref.Neurons+1000)
		}
	}
}

func TestTableIInputSizes(t *testing.T) {
	for _, name := range TableIOrder {
		ref, _ := TableI(name)
		m := MustBuild(name)
		if m.InputShape != ref.Input {
			// Two documented deviations: Table I prints 156 for
			// EfficientNetB5 (published resolution is 456) — our
			// Reference already records the corrected value.
			t.Errorf("%s: input %v, Table I %v", name, m.InputShape, ref.Input)
		}
	}
}

func TestAllModelsClassify1000(t *testing.T) {
	for _, name := range Names() {
		m := MustBuild(name)
		if out := m.Output().OutShape(); out != (cnn.Shape{H: 1, W: 1, C: 1000}) {
			t.Errorf("%s: output shape %v, want 1x1x1000", name, out)
		}
	}
}

func TestBuildDeterminism(t *testing.T) {
	for _, name := range []string{"vgg16", "resnet50v2", "efficientnetb0", "nasnetmobile"} {
		a := MustBuild(name)
		b := MustBuild(name)
		if a.TrainableParams() != b.TrainableParams() ||
			a.NeuronCount() != b.NeuronCount() ||
			a.FLOPs() != b.FLOPs() ||
			len(a.Nodes()) != len(b.Nodes()) {
			t.Errorf("%s: rebuilding produced a different graph", name)
		}
	}
}

func TestBuildUnknownAndAlias(t *testing.T) {
	if _, err := Build("resnet9000"); err == nil {
		t.Error("unknown model should error")
	}
	// The paper's "m-r154x4" typo aliases to the published BiT-R152x4.
	a, err := Build("m-r154x4")
	if err != nil {
		t.Fatalf("alias build: %v", err)
	}
	bm := MustBuild("m-r152x4")
	if a.TrainableParams() != bm.TrainableParams() {
		t.Error("alias must build the same model")
	}
	if _, ok := TableI("m-r154x4"); !ok {
		t.Error("alias must resolve in TableI too")
	}
}

func TestMustBuildPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild of unknown model should panic")
		}
	}()
	MustBuild("nope")
}

func TestAllReturnsTableIModels(t *testing.T) {
	ms := All()
	if len(ms) != len(TableIOrder) {
		t.Fatalf("All returned %d models", len(ms))
	}
	for i, m := range ms {
		want := TableIOrder[i]
		if want == "m-r154x4" {
			want = "m-r152x4"
		}
		if m.Name != want {
			t.Errorf("All()[%d] = %s, want %s", i, m.Name, want)
		}
	}
}

// TestEfficientNetScalingMonotone checks the compound-scaling invariant:
// parameters strictly increase from B0 to B7.
func TestEfficientNetScalingMonotone(t *testing.T) {
	var prev int64
	for i := 0; i <= 7; i++ {
		name := "efficientnetb" + string(rune('0'+i))
		m := MustBuild(name)
		p := m.TrainableParams()
		if p <= prev {
			t.Errorf("%s params %d not greater than previous %d", name, p, prev)
		}
		prev = p
	}
}

// TestDepthFamiliesMonotone checks that deeper family members have more
// parameters.
func TestDepthFamiliesMonotone(t *testing.T) {
	families := [][]string{
		{"resnet101", "resnet152"},
		{"resnet50v2", "resnet101v2", "resnet152v2"},
		{"densenet121", "densenet169", "densenet201"},
		{"vgg16", "vgg19"},
		{"m-r50x1", "m-r101x1"},
		{"m-r50x3", "m-r101x3"},
	}
	for _, fam := range families {
		var prev int64
		for _, name := range fam {
			p := MustBuild(name).TrainableParams()
			if p <= prev {
				t.Errorf("%s params %d not greater than predecessor %d", name, p, prev)
			}
			prev = p
		}
	}
}

func TestRoundFilters(t *testing.T) {
	cases := []struct {
		f    int
		w    float64
		want int
	}{
		{32, 1.0, 32},
		{32, 1.1, 32}, // 35.2 -> 32 (>= 0.9*35.2)
		{32, 1.2, 40}, // 38.4 -> 40
		{1280, 2.0, 2560},
		{16, 1.0, 16},
		{32, 1.4, 48}, // 44.8 -> 48
	}
	for _, c := range cases {
		if got := roundFilters(c.f, c.w); got != c.want {
			t.Errorf("roundFilters(%d, %.1f) = %d, want %d", c.f, c.w, got, c.want)
		}
	}
}

func TestRoundRepeats(t *testing.T) {
	if roundRepeats(3, 1.0) != 3 || roundRepeats(3, 1.4) != 5 || roundRepeats(1, 3.1) != 4 {
		t.Error("roundRepeats wrong")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestExtraModelsMatchPublishedCounts pins the future-work zoo additions
// to their published reference parameter counts (torchvision).
func TestExtraModelsMatchPublishedCounts(t *testing.T) {
	golden := map[string]int64{
		"resnet18":   11_689_512,
		"resnet34":   21_797_672,
		"squeezenet": 1_248_424,
		"resnet50":   25_583_592, // Keras ResNet50 v1 with biased convs
	}
	for name, want := range golden {
		m := MustBuild(name)
		if got := m.TrainableParams(); got != want {
			t.Errorf("%s: params = %d, want %d", name, got, want)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// Extras are not part of Table I.
	for name := range golden {
		for _, t1 := range TableIOrder {
			if t1 == name {
				t.Errorf("%s must not be in TableIOrder", name)
			}
		}
	}
}

// TestKnownMACCounts validates the FLOP/MAC machinery against published
// multiply-accumulate counts (within 5%; sources: original papers and
// common model-zoo tables).
func TestKnownMACCounts(t *testing.T) {
	known := map[string]float64{
		"vgg16":          15.47e9, // Simonyan & Zisserman
		"vgg19":          19.63e9,
		"mobilenet":      569e6, // Howard et al. Table 4 (multiply-adds)
		"resnet50":       3.86e9,
		"inceptionv3":    5.7e9,
		"efficientnetb0": 0.39e9, // Tan & Le Table 1
		"xception":       8.4e9,  // Chollet Table 3 (FLOPs as mult-adds)
	}
	for name, want := range known {
		m := MustBuild(name)
		got := float64(m.MACs())
		dev := 100 * abs(got-want) / want
		if dev > 8 {
			t.Errorf("%s: MACs %.3g deviates %.1f%% from published %.3g", name, got, dev, want)
		}
	}
}

// TestKnownFeatureMapShapes pins the pre-classifier feature-map shapes of
// well-documented architectures (the published "7x7x2048"-style figures).
func TestKnownFeatureMapShapes(t *testing.T) {
	want := map[string]cnn.Shape{
		"resnet50v2":     {H: 7, W: 7, C: 2048},
		"resnet101":      {H: 7, W: 7, C: 2048},
		"vgg16":          {H: 7, W: 7, C: 512},
		"mobilenet":      {H: 7, W: 7, C: 1024},
		"mobilenetv2":    {H: 7, W: 7, C: 1280}, // 200x200 input -> ceil chain
		"inceptionv3":    {H: 8, W: 8, C: 2048},
		"xception":       {H: 10, W: 10, C: 2048},
		"efficientnetb0": {H: 7, W: 7, C: 1280},
		"densenet121":    {H: 7, W: 7, C: 1024},
		// torchvision pools with ceil_mode (13x13); our Valid pooling
		// floors to 12x12 — parameter counts are unaffected.
		"squeezenet": {H: 12, W: 12, C: 1000},
	}
	for name, shape := range want {
		m := MustBuild(name)
		// Find the last global-pool node (SE blocks contain inner
		// squeezes) and inspect its input.
		var got cnn.Shape
		found := false
		for _, n := range m.Nodes() {
			if _, ok := n.Op.(cnn.GlobalPool2D); ok {
				got = n.Inputs[0].OutShape()
				found = true
			}
		}
		if !found {
			// VGG has no global pool: use the flatten input.
			for _, n := range m.Nodes() {
				if _, ok := n.Op.(cnn.Flatten); ok {
					got = n.Inputs[0].OutShape()
					found = true
					break
				}
			}
		}
		if !found {
			t.Errorf("%s: no pooling/flatten node found", name)
			continue
		}
		if got != shape {
			t.Errorf("%s: pre-classifier feature map %v, want %v", name, got, shape)
		}
	}
}
