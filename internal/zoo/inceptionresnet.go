package zoo

import (
	"fmt"

	"cnnperf/internal/cnn"
)

func init() {
	register(Reference{
		Name: "inceptionresnetv2", Input: sq(200), Layers: 164,
		Neurons: 81_201_907, TrainableParams: 55_813_192,
	}, buildInceptionResNetV2)
}

// buildInceptionResNetV2 constructs Inception-ResNet v2 (Szegedy et al.,
// AAAI 2017) in the Keras layout: the Inception stem, mixed_5b, ten
// block35 modules, reduction-A, twenty block17 modules, reduction-B, ten
// block8 modules and the final 1536-channel convolution. The paper runs
// it at 200x200 input (Table I).
func buildInceptionResNetV2() *cnn.Model {
	b, x := cnn.NewBuilder("inceptionresnetv2", sq(200))
	x = convBN(b, x, "stem1", 32, 3, 3, 2, cnn.Valid)
	x = convBN(b, x, "stem2", 32, 3, 3, 1, cnn.Valid)
	x = convBN(b, x, "stem3", 64, 3, 3, 1, cnn.Same)
	x = b.Add(cnn.MaxPool2D(3, 2, cnn.Valid), x)
	x = convBN(b, x, "stem4", 80, 1, 1, 1, cnn.Valid)
	x = convBN(b, x, "stem5", 192, 3, 3, 1, cnn.Valid)
	x = b.Add(cnn.MaxPool2D(3, 2, cnn.Valid), x)

	// mixed_5b (Inception-A).
	b1 := convBN(b, x, "m5b_b1", 96, 1, 1, 1, cnn.Same)
	b5 := convBN(b, x, "m5b_b5a", 48, 1, 1, 1, cnn.Same)
	b5 = convBN(b, b5, "m5b_b5b", 64, 5, 5, 1, cnn.Same)
	b3 := convBN(b, x, "m5b_b3a", 64, 1, 1, 1, cnn.Same)
	b3 = convBN(b, b3, "m5b_b3b", 96, 3, 3, 1, cnn.Same)
	b3 = convBN(b, b3, "m5b_b3c", 96, 3, 3, 1, cnn.Same)
	bp := b.AddNamed("m5b_pool", cnn.AvgPool2D(3, 1, cnn.Same), x)
	bp = convBN(b, bp, "m5b_bp", 64, 1, 1, 1, cnn.Same)
	x = b.AddNamed("m5b_cat", cnn.Concat{}, b1, b5, b3, bp) // 320 channels

	// 10x block35.
	for i := 1; i <= 10; i++ {
		x = block35(b, x, fmt.Sprintf("b35_%d", i))
	}

	// reduction-A (mixed_6a).
	ra1 := convBN(b, x, "m6a_b1", 384, 3, 3, 2, cnn.Valid)
	ra2 := convBN(b, x, "m6a_b2a", 256, 1, 1, 1, cnn.Same)
	ra2 = convBN(b, ra2, "m6a_b2b", 256, 3, 3, 1, cnn.Same)
	ra2 = convBN(b, ra2, "m6a_b2c", 384, 3, 3, 2, cnn.Valid)
	rap := b.AddNamed("m6a_pool", cnn.MaxPool2D(3, 2, cnn.Valid), x)
	x = b.AddNamed("m6a_cat", cnn.Concat{}, ra1, ra2, rap) // 1088 channels

	// 20x block17.
	for i := 1; i <= 20; i++ {
		x = block17(b, x, fmt.Sprintf("b17_%d", i))
	}

	// reduction-B (mixed_7a).
	rb1 := convBN(b, x, "m7a_b1a", 256, 1, 1, 1, cnn.Same)
	rb1 = convBN(b, rb1, "m7a_b1b", 384, 3, 3, 2, cnn.Valid)
	rb2 := convBN(b, x, "m7a_b2a", 256, 1, 1, 1, cnn.Same)
	rb2 = convBN(b, rb2, "m7a_b2b", 288, 3, 3, 2, cnn.Valid)
	rb3 := convBN(b, x, "m7a_b3a", 256, 1, 1, 1, cnn.Same)
	rb3 = convBN(b, rb3, "m7a_b3b", 288, 3, 3, 1, cnn.Same)
	rb3 = convBN(b, rb3, "m7a_b3c", 320, 3, 3, 2, cnn.Valid)
	rbp := b.AddNamed("m7a_pool", cnn.MaxPool2D(3, 2, cnn.Valid), x)
	x = b.AddNamed("m7a_cat", cnn.Concat{}, rb1, rb2, rb3, rbp) // 2080 channels

	// 10x block8.
	for i := 1; i <= 10; i++ {
		x = block8(b, x, fmt.Sprintf("b8_%d", i))
	}

	x = convBN(b, x, "conv7b", 1536, 1, 1, 1, cnn.Same)
	x = b.Add(cnn.GlobalAvgPool(), x)
	x = b.Add(cnn.FC(1000), x)
	x = b.Add(cnn.Softmax(), x)
	return b.MustBuild(x)
}

// block35 is the 35x35 residual Inception module.
func block35(b *cnn.Builder, x *cnn.Node, tag string) *cnn.Node {
	b1 := convBN(b, x, tag+"_b1", 32, 1, 1, 1, cnn.Same)
	b2 := convBN(b, x, tag+"_b2a", 32, 1, 1, 1, cnn.Same)
	b2 = convBN(b, b2, tag+"_b2b", 32, 3, 3, 1, cnn.Same)
	b3 := convBN(b, x, tag+"_b3a", 32, 1, 1, 1, cnn.Same)
	b3 = convBN(b, b3, tag+"_b3b", 48, 3, 3, 1, cnn.Same)
	b3 = convBN(b, b3, tag+"_b3c", 64, 3, 3, 1, cnn.Same)
	cat := b.AddNamed(tag+"_cat", cnn.Concat{}, b1, b2, b3)
	up := b.AddNamed(tag+"_up", cnn.Conv(320, 1, 1, cnn.Same), cat) // bias, linear
	y := b.AddNamed(tag+"_add", cnn.Add{}, x, up)
	return b.AddNamed(tag+"_relu", cnn.ReLU(), y)
}

// block17 is the 17x17 residual module with factorised 7x7 convolutions.
func block17(b *cnn.Builder, x *cnn.Node, tag string) *cnn.Node {
	b1 := convBN(b, x, tag+"_b1", 192, 1, 1, 1, cnn.Same)
	b2 := convBN(b, x, tag+"_b2a", 128, 1, 1, 1, cnn.Same)
	b2 = convBN(b, b2, tag+"_b2b", 160, 1, 7, 1, cnn.Same)
	b2 = convBN(b, b2, tag+"_b2c", 192, 7, 1, 1, cnn.Same)
	cat := b.AddNamed(tag+"_cat", cnn.Concat{}, b1, b2)
	up := b.AddNamed(tag+"_up", cnn.Conv(1088, 1, 1, cnn.Same), cat)
	y := b.AddNamed(tag+"_add", cnn.Add{}, x, up)
	return b.AddNamed(tag+"_relu", cnn.ReLU(), y)
}

// block8 is the 8x8 residual module with factorised 3x3 convolutions.
func block8(b *cnn.Builder, x *cnn.Node, tag string) *cnn.Node {
	b1 := convBN(b, x, tag+"_b1", 192, 1, 1, 1, cnn.Same)
	b2 := convBN(b, x, tag+"_b2a", 192, 1, 1, 1, cnn.Same)
	b2 = convBN(b, b2, tag+"_b2b", 224, 1, 3, 1, cnn.Same)
	b2 = convBN(b, b2, tag+"_b2c", 256, 3, 1, 1, cnn.Same)
	cat := b.AddNamed(tag+"_cat", cnn.Concat{}, b1, b2)
	up := b.AddNamed(tag+"_up", cnn.Conv(2080, 1, 1, cnn.Same), cat)
	y := b.AddNamed(tag+"_add", cnn.Add{}, x, up)
	return b.AddNamed(tag+"_relu", cnn.ReLU(), y)
}
