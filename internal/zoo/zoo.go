// Package zoo provides from-scratch structural definitions of the 32
// standard CNNs the paper uses for its experiments (Table I): the AlexNet,
// VGG, ResNet (v1/v2), Big-Transfer (BiT) ResNet, DenseNet, NASNet,
// MobileNet (v1/v2), Inception v3, Inception-ResNet v2, Xception and
// EfficientNet (B0–B7) families.
//
// Every builder reproduces the published topology so that the Static
// Analyzer's trainable-parameter and neuron counts match the reference
// implementations. Reference values from the paper's Table I are embedded
// for verification.
package zoo

import (
	"fmt"
	"sort"

	"cnnperf/internal/cnn"
)

// Builder constructs one model of the zoo.
type Builder func() *cnn.Model

// Reference holds the values the paper's Table I reports for one CNN.
type Reference struct {
	// Name is the model name as printed in the paper.
	Name string
	// Input is the input size used by the paper.
	Input cnn.Shape
	// Layers is the layer count reported by Table I.
	Layers int
	// Neurons is the neuron count reported by Table I.
	Neurons int64
	// TrainableParams is the trainable-parameter count of Table I.
	TrainableParams int64
}

// registry maps canonical model names to builders.
var registry = map[string]Builder{}

// tableI holds the paper's reference rows keyed by canonical name.
var tableI = map[string]Reference{}

func register(ref Reference, b Builder) {
	if _, dup := registry[ref.Name]; dup {
		panic(fmt.Sprintf("zoo: duplicate model %q", ref.Name))
	}
	registry[ref.Name] = b
	tableI[ref.Name] = ref
}

// registerExtra adds a model that is not part of the paper's Table I
// (used to extend the design space, as the paper's future work proposes).
// It has no reference row.
func registerExtra(name string, input cnn.Shape, b Builder) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("zoo: duplicate model %q", name))
	}
	registry[name] = b
	_ = input
}

// Names returns all registered model names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TableIOrder lists the models in the row order of the paper's Table I.
var TableIOrder = []string{
	"m-r50x1", "m-r50x3", "m-r101x3", "m-r101x1", "m-r152x4",
	"resnet101", "resnet152", "resnet50v2", "resnet101v2", "resnet152v2",
	"nasnetmobile", "nasnetlarge",
	"densenet121", "densenet169", "densenet201",
	"mobilenet", "inceptionv3", "vgg16", "vgg19",
	"efficientnetb0", "efficientnetb1", "efficientnetb2", "efficientnetb3",
	"efficientnetb4", "efficientnetb5", "efficientnetb6", "efficientnetb7",
	"xception", "mobilenetv2", "inceptionresnetv2", "alexnet",
}

// Build constructs the named model. The name "m-r154x4" of the paper
// (a typo for the published BiT-R152x4) is accepted as an alias.
func Build(name string) (*cnn.Model, error) {
	if name == "m-r154x4" {
		name = "m-r152x4"
	}
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("zoo: unknown model %q", name)
	}
	return b(), nil
}

// MustBuild is Build but panics on unknown names.
func MustBuild(name string) *cnn.Model {
	m, err := Build(name)
	if err != nil {
		panic(err)
	}
	return m
}

// TableI returns the paper's reference row for the named model.
func TableI(name string) (Reference, bool) {
	if name == "m-r154x4" {
		name = "m-r152x4"
	}
	r, ok := tableI[name]
	return r, ok
}

// All builds every model in Table I order.
func All() []*cnn.Model {
	out := make([]*cnn.Model, 0, len(TableIOrder))
	for _, n := range TableIOrder {
		out = append(out, MustBuild(n))
	}
	return out
}

func sq(n int) cnn.Shape { return cnn.Shape{H: n, W: n, C: 3} }
