package zoo

import (
	"fmt"

	"cnnperf/internal/cnn"
)

// The models in this file extend the zoo beyond the paper's Table I —
// the paper's future work plans "more standard CNNs and variations of
// well-known CNNs" to grow the training dataset. They are registered as
// extras (no Table I reference row).

func init() {
	registerExtra("resnet18", sq(224), func() *cnn.Model {
		return buildBasicResNet("resnet18", []int{2, 2, 2, 2})
	})
	registerExtra("resnet34", sq(224), func() *cnn.Model {
		return buildBasicResNet("resnet34", []int{3, 4, 6, 3})
	})
	registerExtra("squeezenet", sq(224), buildSqueezeNet)
}

// buildBasicResNet constructs the basic-block ResNets (He et al., 2016;
// torchvision layout): bias-free 3x3 convolution pairs with BN, 1x1
// projection shortcuts at stage entries, channels 64-512.
func buildBasicResNet(name string, blocks []int) *cnn.Model {
	b, x := cnn.NewBuilder(name, sq(224))
	x = b.Add(cnn.Pad2D(3), x)
	x = b.Add(cnn.ConvNoBias(64, 7, 2, cnn.Valid), x)
	x = b.Add(cnn.BN(), x)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.Pad2D(1), x)
	x = b.Add(cnn.MaxPool2D(3, 2, cnn.Valid), x)

	width := []int{64, 128, 256, 512}
	for stage, n := range blocks {
		for blk := 0; blk < n; blk++ {
			stride := 1
			if blk == 0 && stage > 0 {
				stride = 2
			}
			x = basicBlock(b, x, width[stage], stride, blk == 0 && stage > 0,
				fmt.Sprintf("s%db%d", stage+1, blk+1))
		}
	}
	x = b.Add(cnn.GlobalAvgPool(), x)
	x = b.Add(cnn.FC(1000), x)
	x = b.Add(cnn.Softmax(), x)
	return b.MustBuild(x)
}

// basicBlock adds one two-convolution residual block.
func basicBlock(b *cnn.Builder, x *cnn.Node, width, stride int, project bool, tag string) *cnn.Node {
	shortcut := x
	if project {
		shortcut = b.AddNamed(tag+"_sc_conv", cnn.ConvNoBias(width, 1, stride, cnn.Valid), x)
		shortcut = b.AddNamed(tag+"_sc_bn", cnn.BN(), shortcut)
	}
	y := b.AddNamed(tag+"_c1", cnn.ConvNoBias(width, 3, stride, cnn.Same), x)
	y = b.AddNamed(tag+"_bn1", cnn.BN(), y)
	y = b.AddNamed(tag+"_r1", cnn.ReLU(), y)
	y = b.AddNamed(tag+"_c2", cnn.ConvNoBias(width, 3, 1, cnn.Same), y)
	y = b.AddNamed(tag+"_bn2", cnn.BN(), y)
	y = b.AddNamed(tag+"_add", cnn.Add{}, shortcut, y)
	return b.AddNamed(tag+"_out", cnn.ReLU(), y)
}

// buildSqueezeNet constructs SqueezeNet 1.0 (Iandola et al., 2016): a
// 96-filter stem and eight fire modules (1x1 squeeze feeding parallel
// 1x1 and 3x3 expands), ending in a 1x1 convolution classifier.
func buildSqueezeNet() *cnn.Model {
	b, x := cnn.NewBuilder("squeezenet", sq(224))
	x = b.Add(cnn.Conv(96, 7, 2, cnn.Valid), x)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.MaxPool2D(3, 2, cnn.Valid), x)

	fire := func(x *cnn.Node, squeeze, expand int, tag string) *cnn.Node {
		s := b.AddNamed(tag+"_s", cnn.Conv(squeeze, 1, 1, cnn.Valid), x)
		s = b.AddNamed(tag+"_sr", cnn.ReLU(), s)
		e1 := b.AddNamed(tag+"_e1", cnn.Conv(expand, 1, 1, cnn.Valid), s)
		e1 = b.AddNamed(tag+"_e1r", cnn.ReLU(), e1)
		e3 := b.AddNamed(tag+"_e3", cnn.Conv(expand, 3, 1, cnn.Same), s)
		e3 = b.AddNamed(tag+"_e3r", cnn.ReLU(), e3)
		return b.AddNamed(tag+"_cat", cnn.Concat{}, e1, e3)
	}

	x = fire(x, 16, 64, "fire2")
	x = fire(x, 16, 64, "fire3")
	x = fire(x, 32, 128, "fire4")
	x = b.Add(cnn.MaxPool2D(3, 2, cnn.Valid), x)
	x = fire(x, 32, 128, "fire5")
	x = fire(x, 48, 192, "fire6")
	x = fire(x, 48, 192, "fire7")
	x = fire(x, 64, 256, "fire8")
	x = b.Add(cnn.MaxPool2D(3, 2, cnn.Valid), x)
	x = fire(x, 64, 256, "fire9")
	x = b.Add(cnn.Dropout{Rate: 0.5}, x)
	x = b.Add(cnn.Conv(1000, 1, 1, cnn.Valid), x)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.GlobalAvgPool(), x)
	x = b.Add(cnn.Softmax(), x)
	return b.MustBuild(x)
}
