package zoo

import (
	"fmt"

	"cnnperf/internal/cnn"
)

func init() {
	register(Reference{
		Name: "nasnetmobile", Input: sq(224), Layers: 771,
		Neurons: 27_690_705, TrainableParams: 5_289_978,
	}, func() *cnn.Model { return buildNASNet("nasnetmobile", 224, 32, 44, 4) })
	register(Reference{
		Name: "nasnetlarge", Input: sq(331), Layers: 1041,
		Neurons: 290_560_171, TrainableParams: 88_753_150,
	}, func() *cnn.Model { return buildNASNet("nasnetlarge", 331, 96, 168, 6) })
}

// buildNASNet constructs a NASNet-A network (Zoph et al., CVPR 2018) in
// the Keras arrangement: a strided stem convolution, two stem reduction
// cells at filters/4 and filters/2, then three groups of n normal cells
// at filters, 2*filters and 4*filters separated by reduction cells.
func buildNASNet(name string, resolution, stemFilters, filters, n int) *cnn.Model {
	b, x := cnn.NewBuilder(name, sq(resolution))
	x = b.Add(cnn.ConvNoBias(stemFilters, 3, 2, cnn.Valid), x)
	x = b.Add(cnn.BN(), x)

	nas := &nasBuilder{b: b}
	var p *cnn.Node
	x, p = nas.reductionCell(x, p, filters/4, "stem1")
	x, p = nas.reductionCell(x, p, filters/2, "stem2")
	for i := 0; i < n; i++ {
		x, p = nas.normalCell(x, p, filters, fmt.Sprintf("n1_%d", i+1))
	}
	x, p = nas.reductionCell(x, p, filters*2, "red1")
	for i := 0; i < n; i++ {
		x, p = nas.normalCell(x, p, filters*2, fmt.Sprintf("n2_%d", i+1))
	}
	x, p = nas.reductionCell(x, p, filters*4, "red2")
	for i := 0; i < n; i++ {
		x, p = nas.normalCell(x, p, filters*4, fmt.Sprintf("n3_%d", i+1))
	}
	_ = p
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.GlobalAvgPool(), x)
	x = b.Add(cnn.FC(1000), x)
	x = b.Add(cnn.Softmax(), x)
	return b.MustBuild(x)
}

// nasBuilder carries the graph builder through the cell helpers.
type nasBuilder struct {
	b *cnn.Builder
}

// sepUnit is the NASNet separable-convolution unit: two rounds of
// ReLU -> depthwise k x k -> pointwise -> BN; the stride applies to the
// first depthwise convolution only.
func (nb *nasBuilder) sepUnit(x *cnn.Node, filters, k, stride int, tag string) *cnn.Node {
	y := nb.b.AddNamed(tag+"_r1", cnn.ReLU(), x)
	y = nb.b.AddNamed(tag+"_dw1", cnn.DepthwiseConv(k, stride, cnn.Same), y)
	y = nb.b.AddNamed(tag+"_pw1", cnn.ConvNoBias(filters, 1, 1, cnn.Valid), y)
	y = nb.b.AddNamed(tag+"_bn1", cnn.BN(), y)
	y = nb.b.AddNamed(tag+"_r2", cnn.ReLU(), y)
	y = nb.b.AddNamed(tag+"_dw2", cnn.DepthwiseConv(k, 1, cnn.Same), y)
	y = nb.b.AddNamed(tag+"_pw2", cnn.ConvNoBias(filters, 1, 1, cnn.Valid), y)
	return nb.b.AddNamed(tag+"_bn2", cnn.BN(), y)
}

// squeeze projects a cell input to the cell's filter count.
func (nb *nasBuilder) squeeze(x *cnn.Node, filters int, tag string) *cnn.Node {
	y := nb.b.AddNamed(tag+"_r", cnn.ReLU(), x)
	y = nb.b.AddNamed(tag+"_c", cnn.ConvNoBias(filters, 1, 1, cnn.Valid), y)
	return nb.b.AddNamed(tag+"_bn", cnn.BN(), y)
}

// adjust reconciles the previous cell output p with the current input h:
// a strided average-pool + projection when the spatial sizes differ, a
// plain projection when only the channel count differs.
func (nb *nasBuilder) adjust(p, h *cnn.Node, filters int, tag string) *cnn.Node {
	if p == nil {
		p = h
	}
	if p.OutShape().H != h.OutShape().H || p.OutShape().W != h.OutShape().W {
		y := nb.b.AddNamed(tag+"_r", cnn.ReLU(), p)
		y = nb.b.AddNamed(tag+"_pool", cnn.AvgPool2D(1, 2, cnn.Valid), y)
		y = nb.b.AddNamed(tag+"_c", cnn.ConvNoBias(filters, 1, 1, cnn.Valid), y)
		y = nb.b.AddNamed(tag+"_bn", cnn.BN(), y)
		// Spatial size may still be off by one against valid-padded h;
		// crop via max-pool window 1 when needed.
		if y.OutShape().H != h.OutShape().H || y.OutShape().W != h.OutShape().W {
			y = nb.b.AddNamed(tag+"_crop", cnn.Pool2D{Kind2: cnn.AvgPool,
				KH: y.OutShape().H - h.OutShape().H + 1, KW: y.OutShape().W - h.OutShape().W + 1,
				SH: 1, SW: 1, Pad: cnn.Valid}, y)
		}
		return y
	}
	if p.OutShape().C != filters {
		return nb.squeeze(p, filters, tag)
	}
	return p
}

// normalCell adds one NASNet-A normal cell and returns (output, input) so
// the caller can thread the previous-cell line.
func (nb *nasBuilder) normalCell(h, p *cnn.Node, filters int, tag string) (*cnn.Node, *cnn.Node) {
	b := nb.b
	pa := nb.adjust(p, h, filters, tag+"_adj")
	hs := nb.squeeze(h, filters, tag+"_sq")

	b1 := b.AddNamed(tag+"_b1", cnn.Add{},
		nb.sepUnit(hs, filters, 5, 1, tag+"_b1l"),
		nb.sepUnit(pa, filters, 3, 1, tag+"_b1r"))
	b2 := b.AddNamed(tag+"_b2", cnn.Add{},
		nb.sepUnit(pa, filters, 5, 1, tag+"_b2l"),
		nb.sepUnit(pa, filters, 3, 1, tag+"_b2r"))
	b3 := b.AddNamed(tag+"_b3", cnn.Add{},
		b.AddNamed(tag+"_b3l", cnn.AvgPool2D(3, 1, cnn.Same), hs),
		pa)
	b4 := b.AddNamed(tag+"_b4", cnn.Add{},
		b.AddNamed(tag+"_b4l", cnn.AvgPool2D(3, 1, cnn.Same), pa),
		b.AddNamed(tag+"_b4r", cnn.AvgPool2D(3, 1, cnn.Same), pa))
	b5 := b.AddNamed(tag+"_b5", cnn.Add{},
		nb.sepUnit(hs, filters, 3, 1, tag+"_b5l"),
		hs)

	out := b.AddNamed(tag+"_cat", cnn.Concat{}, pa, b1, b2, b3, b4, b5)
	return out, h
}

// reductionCell adds one NASNet-A reduction cell (stride-2) and returns
// (output, input).
func (nb *nasBuilder) reductionCell(h, p *cnn.Node, filters int, tag string) (*cnn.Node, *cnn.Node) {
	b := nb.b
	pa := nb.adjust(p, h, filters, tag+"_adj")
	hs := nb.squeeze(h, filters, tag+"_sq")

	b1 := b.AddNamed(tag+"_b1", cnn.Add{},
		nb.sepUnit(hs, filters, 5, 2, tag+"_b1l"),
		nb.sepUnit(pa, filters, 7, 2, tag+"_b1r"))
	b2 := b.AddNamed(tag+"_b2", cnn.Add{},
		b.AddNamed(tag+"_b2l", cnn.MaxPool2D(3, 2, cnn.Same), hs),
		nb.sepUnit(pa, filters, 7, 2, tag+"_b2r"))
	b3 := b.AddNamed(tag+"_b3", cnn.Add{},
		b.AddNamed(tag+"_b3l", cnn.AvgPool2D(3, 2, cnn.Same), hs),
		nb.sepUnit(pa, filters, 5, 2, tag+"_b3r"))
	b4 := b.AddNamed(tag+"_b4", cnn.Add{},
		b.AddNamed(tag+"_b4l", cnn.AvgPool2D(3, 1, cnn.Same), b1),
		b2)
	b5 := b.AddNamed(tag+"_b5", cnn.Add{},
		nb.sepUnit(b1, filters, 3, 1, tag+"_b5l"),
		b.AddNamed(tag+"_b5r", cnn.MaxPool2D(3, 2, cnn.Same), hs))

	out := b.AddNamed(tag+"_cat", cnn.Concat{}, b2, b3, b4, b5)
	return out, h
}
