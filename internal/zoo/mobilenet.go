package zoo

import (
	"fmt"

	"cnnperf/internal/cnn"
)

func init() {
	register(Reference{
		Name: "mobilenet", Input: sq(224), Layers: 28,
		Neurons: 16_848_248, TrainableParams: 4_231_976,
	}, buildMobileNetV1)
	register(Reference{
		Name: "mobilenetv2", Input: sq(200), Layers: 53,
		Neurons: 21_815_960, TrainableParams: 3_504_872,
	}, buildMobileNetV2)
}

// buildMobileNetV1 constructs MobileNet (Howard et al., 2017) with width
// multiplier 1.0: a strided stem convolution followed by thirteen
// depthwise-separable blocks and a 1000-way classifier.
func buildMobileNetV1() *cnn.Model {
	b, x := cnn.NewBuilder("mobilenet", sq(224))
	x = b.Add(cnn.ConvNoBias(32, 3, 2, cnn.Same), x)
	x = b.Add(cnn.BN(), x)
	x = b.Add(cnn.ReLU(), x)

	// (filters, stride) for the thirteen separable blocks.
	cfg := []struct{ f, s int }{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1}, {512, 2},
		{512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {1024, 2}, {1024, 1},
	}
	for i, c := range cfg {
		tag := fmt.Sprintf("sep%d", i+1)
		x = b.AddNamed(tag+"_dw", cnn.DepthwiseConv(3, c.s, cnn.Same), x)
		x = b.AddNamed(tag+"_dwbn", cnn.BN(), x)
		x = b.AddNamed(tag+"_dwr", cnn.ReLU(), x)
		x = b.AddNamed(tag+"_pw", cnn.ConvNoBias(c.f, 1, 1, cnn.Valid), x)
		x = b.AddNamed(tag+"_pwbn", cnn.BN(), x)
		x = b.AddNamed(tag+"_pwr", cnn.ReLU(), x)
	}
	x = b.Add(cnn.GlobalAvgPool(), x)
	x = b.Add(cnn.Dropout{Rate: 0.001}, x)
	x = b.Add(cnn.FC(1000), x)
	x = b.Add(cnn.Softmax(), x)
	return b.MustBuild(x)
}

// buildMobileNetV2 constructs MobileNetV2 (Sandler et al., CVPR 2018):
// inverted residual bottlenecks with linear projections. The paper runs it
// at 200x200 input (Table I).
func buildMobileNetV2() *cnn.Model {
	b, x := cnn.NewBuilder("mobilenetv2", sq(200))
	x = b.Add(cnn.ConvNoBias(32, 3, 2, cnn.Same), x)
	x = b.Add(cnn.BN(), x)
	x = b.Add(cnn.ReLU(), x) // ReLU6 in the original; identical structurally.

	// (expansion, channels, repeats, first stride).
	cfg := []struct{ t, c, n, s int }{
		{1, 16, 1, 1}, {6, 24, 2, 2}, {6, 32, 3, 2}, {6, 64, 4, 2},
		{6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1},
	}
	inC := 32
	blockID := 0
	for _, c := range cfg {
		for i := 0; i < c.n; i++ {
			stride := 1
			if i == 0 {
				stride = c.s
			}
			blockID++
			x = invertedResidual(b, x, inC, c.c, c.t, stride, fmt.Sprintf("ir%d", blockID))
			inC = c.c
		}
	}
	x = b.Add(cnn.ConvNoBias(1280, 1, 1, cnn.Valid), x)
	x = b.Add(cnn.BN(), x)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.GlobalAvgPool(), x)
	x = b.Add(cnn.FC(1000), x)
	x = b.Add(cnn.Softmax(), x)
	return b.MustBuild(x)
}

// invertedResidual adds one MobileNetV2 bottleneck: pointwise expansion
// (skipped when t==1), depthwise 3x3, linear pointwise projection, with a
// residual connection when shapes allow.
func invertedResidual(b *cnn.Builder, x *cnn.Node, inC, outC, t, stride int, tag string) *cnn.Node {
	y := x
	if t != 1 {
		y = b.AddNamed(tag+"_exp", cnn.ConvNoBias(inC*t, 1, 1, cnn.Valid), y)
		y = b.AddNamed(tag+"_expbn", cnn.BN(), y)
		y = b.AddNamed(tag+"_expr", cnn.ReLU(), y)
	}
	y = b.AddNamed(tag+"_dw", cnn.DepthwiseConv(3, stride, cnn.Same), y)
	y = b.AddNamed(tag+"_dwbn", cnn.BN(), y)
	y = b.AddNamed(tag+"_dwr", cnn.ReLU(), y)
	y = b.AddNamed(tag+"_proj", cnn.ConvNoBias(outC, 1, 1, cnn.Valid), y)
	y = b.AddNamed(tag+"_projbn", cnn.BN(), y)
	if stride == 1 && inC == outC {
		y = b.AddNamed(tag+"_add", cnn.Add{}, x, y)
	}
	return y
}
