package zoo

import "cnnperf/internal/cnn"

func init() {
	register(Reference{
		Name: "vgg16", Input: sq(224), Layers: 16,
		Neurons: 15_262_696, TrainableParams: 138_357_544,
	}, func() *cnn.Model { return buildVGG("vgg16", []int{2, 2, 3, 3, 3}) })
	register(Reference{
		Name: "vgg19", Input: sq(224), Layers: 19,
		Neurons: 16_567_272, TrainableParams: 143_667_240,
	}, func() *cnn.Model { return buildVGG("vgg19", []int{2, 2, 4, 4, 4}) })
}

// buildVGG constructs a VGG network (Simonyan & Zisserman): five blocks of
// same-padded 3x3 convolutions with max pooling in between, followed by
// two 4096-unit fully connected layers and a 1000-way classifier.
func buildVGG(name string, blocks []int) *cnn.Model {
	filters := []int{64, 128, 256, 512, 512}
	b, x := cnn.NewBuilder(name, sq(224))
	for i, n := range blocks {
		for j := 0; j < n; j++ {
			x = b.Add(cnn.Conv(filters[i], 3, 1, cnn.Same), x)
			x = b.Add(cnn.ReLU(), x)
			_ = j
		}
		x = b.Add(cnn.MaxPool2D(2, 2, cnn.Valid), x)
	}
	x = b.Add(cnn.Flatten{}, x)
	x = b.Add(cnn.FC(4096), x)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.FC(4096), x)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.FC(1000), x)
	x = b.Add(cnn.Softmax(), x)
	return b.MustBuild(x)
}
