package zoo

import (
	"fmt"

	"cnnperf/internal/cnn"
)

func init() {
	register(Reference{
		Name: "densenet121", Input: sq(224), Layers: 121,
		Neurons: 49_926_612, TrainableParams: 7_978_856,
	}, func() *cnn.Model { return buildDenseNet("densenet121", []int{6, 12, 24, 16}) })
	register(Reference{
		Name: "densenet169", Input: sq(224), Layers: 169,
		Neurons: 60_094_164, TrainableParams: 14_149_480,
	}, func() *cnn.Model { return buildDenseNet("densenet169", []int{6, 12, 32, 32}) })
	register(Reference{
		Name: "densenet201", Input: sq(224), Layers: 201,
		Neurons: 77_292_244, TrainableParams: 20_013_928,
	}, func() *cnn.Model { return buildDenseNet("densenet201", []int{6, 12, 48, 32}) })
}

// buildDenseNet constructs a DenseNet (Huang et al., CVPR 2017) with
// growth rate 32 and compression 0.5: a 7x7/2 stem, four dense blocks
// whose layers are BN-ReLU-Conv1x1(128)-BN-ReLU-Conv3x3(32) bottlenecks
// concatenated onto the running feature map, and half-compressing
// transitions with 2x2 average pooling in between.
func buildDenseNet(name string, blocks []int) *cnn.Model {
	const growth = 32
	b, x := cnn.NewBuilder(name, sq(224))
	x = b.Add(cnn.Pad2D(3), x)
	x = b.Add(cnn.ConvNoBias(64, 7, 2, cnn.Valid), x)
	x = b.Add(cnn.BN(), x)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.Pad2D(1), x)
	x = b.Add(cnn.MaxPool2D(3, 2, cnn.Valid), x)

	channels := 64
	for bi, n := range blocks {
		for li := 0; li < n; li++ {
			x = denseLayer(b, x, growth, fmt.Sprintf("b%dl%d", bi+1, li+1))
			channels += growth
		}
		if bi < len(blocks)-1 {
			channels /= 2
			x = denseTransition(b, x, channels, fmt.Sprintf("t%d", bi+1))
		}
	}
	x = b.Add(cnn.BN(), x)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.GlobalAvgPool(), x)
	x = b.Add(cnn.FC(1000), x)
	x = b.Add(cnn.Softmax(), x)
	return b.MustBuild(x)
}

// denseLayer adds one bottlenecked dense layer and concatenates its output
// onto the incoming feature map.
func denseLayer(b *cnn.Builder, x *cnn.Node, growth int, tag string) *cnn.Node {
	y := b.AddNamed(tag+"_bn1", cnn.BN(), x)
	y = b.AddNamed(tag+"_r1", cnn.ReLU(), y)
	y = b.AddNamed(tag+"_c1", cnn.ConvNoBias(4*growth, 1, 1, cnn.Valid), y)
	y = b.AddNamed(tag+"_bn2", cnn.BN(), y)
	y = b.AddNamed(tag+"_r2", cnn.ReLU(), y)
	y = b.AddNamed(tag+"_c2", cnn.ConvNoBias(growth, 3, 1, cnn.Same), y)
	return b.AddNamed(tag+"_cat", cnn.Concat{}, x, y)
}

// denseTransition compresses the channel count and halves the spatial
// resolution between dense blocks.
func denseTransition(b *cnn.Builder, x *cnn.Node, channels int, tag string) *cnn.Node {
	y := b.AddNamed(tag+"_bn", cnn.BN(), x)
	y = b.AddNamed(tag+"_r", cnn.ReLU(), y)
	y = b.AddNamed(tag+"_c", cnn.ConvNoBias(channels, 1, 1, cnn.Valid), y)
	return b.AddNamed(tag+"_pool", cnn.AvgPool2D(2, 2, cnn.Valid), y)
}
