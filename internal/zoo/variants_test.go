package zoo

import "testing"

func TestVGGVariantReproducesVGG16(t *testing.T) {
	v, err := VGGVariant("vgg16-variant", []int{2, 2, 3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if v.TrainableParams() != MustBuild("vgg16").TrainableParams() {
		t.Error("variant {2,2,3,3,3} must equal VGG16")
	}
	v19, err := VGGVariant("vgg19-variant", []int{2, 2, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if v19.TrainableParams() != MustBuild("vgg19").TrainableParams() {
		t.Error("variant {2,2,4,4,4} must equal VGG19")
	}
	if _, err := VGGVariant("bad", []int{2, 2}); err == nil {
		t.Error("wrong block count should error")
	}
	if _, err := VGGVariant("bad", []int{2, 2, 3, 3, 0}); err == nil {
		t.Error("zero-conv block should error")
	}
}

func TestMobileNetAlpha(t *testing.T) {
	full, err := MobileNetAlpha(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if full.TrainableParams() != MustBuild("mobilenet").TrainableParams() {
		t.Errorf("alpha 1.0 params %d != base %d",
			full.TrainableParams(), MustBuild("mobilenet").TrainableParams())
	}
	// Parameters grow monotonically with alpha.
	var prev int64
	for _, a := range []float64{0.25, 0.5, 0.75, 1.0, 1.25} {
		m, err := MobileNetAlpha(a)
		if err != nil {
			t.Fatalf("alpha %f: %v", a, err)
		}
		p := m.TrainableParams()
		if p <= prev {
			t.Errorf("alpha %f: params %d not above %d", a, p, prev)
		}
		prev = p
		if err := m.Validate(); err != nil {
			t.Errorf("alpha %f: %v", a, err)
		}
	}
	if _, err := MobileNetAlpha(0); err == nil {
		t.Error("alpha 0 should error")
	}
	if _, err := MobileNetAlpha(3); err == nil {
		t.Error("alpha 3 should error")
	}
}

func TestResNetVariant(t *testing.T) {
	v, err := ResNetVariant("resnet101-variant", []int{3, 4, 23, 3}, true)
	if err != nil {
		t.Fatal(err)
	}
	if v.TrainableParams() != MustBuild("resnet101").TrainableParams() {
		t.Error("bottleneck {3,4,23,3} must equal ResNet101")
	}
	basic, err := ResNetVariant("resnet18-variant", []int{2, 2, 2, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if basic.TrainableParams() != MustBuild("resnet18").TrainableParams() {
		t.Error("basic {2,2,2,2} must equal ResNet18")
	}
	// A novel depth works end to end.
	novel, err := ResNetVariant("resnet77", []int{3, 4, 15, 3}, true)
	if err != nil {
		t.Fatal(err)
	}
	if novel.TrainableParams() <= MustBuild("resnet50").TrainableParams() {
		t.Error("deeper variant should have more parameters than ResNet50")
	}
	if _, err := ResNetVariant("bad", []int{1, 2}, true); err == nil {
		t.Error("wrong stage count should error")
	}
	if _, err := ResNetVariant("bad", []int{1, 2, 3, 99}, true); err == nil {
		t.Error("absurd stage depth should error")
	}
}

func TestVariantSet(t *testing.T) {
	vs, err := VariantSet()
	if err != nil {
		t.Fatalf("variant set: %v", err)
	}
	if len(vs) < 10 {
		t.Fatalf("variant set too small: %d", len(vs))
	}
	seen := map[string]bool{}
	tableI := map[string]bool{}
	for _, n := range TableIOrder {
		tableI[n] = true
	}
	for _, m := range vs {
		if seen[m.Name] {
			t.Errorf("duplicate variant %s", m.Name)
		}
		seen[m.Name] = true
		if tableI[m.Name] {
			t.Errorf("variant %s collides with Table I", m.Name)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}
