package zoo

import (
	"fmt"
	"math"

	"cnnperf/internal/cnn"
)

// effVariant describes one EfficientNet compound-scaling point.
type effVariant struct {
	width, depth float64
	resolution   int
}

var effVariants = map[string]effVariant{
	"efficientnetb0": {1.0, 1.0, 224},
	"efficientnetb1": {1.0, 1.1, 240},
	"efficientnetb2": {1.1, 1.2, 260},
	"efficientnetb3": {1.2, 1.4, 300},
	"efficientnetb4": {1.4, 1.8, 380},
	"efficientnetb5": {1.6, 2.2, 456},
	"efficientnetb6": {1.8, 2.6, 528},
	"efficientnetb7": {2.0, 3.1, 600},
}

func init() {
	refs := []Reference{
		{Name: "efficientnetb0", Input: sq(224), Layers: 240, Neurons: 25_117_095, TrainableParams: 5_288_548},
		{Name: "efficientnetb1", Input: sq(240), Layers: 342, Neurons: 40_150_331, TrainableParams: 7_794_184},
		{Name: "efficientnetb2", Input: sq(260), Layers: 342, Neurons: 50_908_981, TrainableParams: 9_109_994},
		{Name: "efficientnetb3", Input: sq(300), Layers: 387, Neurons: 87_507_971, TrainableParams: 12_233_232},
		{Name: "efficientnetb4", Input: sq(380), Layers: 477, Neurons: 180_088_531, TrainableParams: 19_341_616},
		// Table I prints 156x156 for B5; the published resolution is 456.
		{Name: "efficientnetb5", Input: sq(456), Layers: 579, Neurons: 358_290_427, TrainableParams: 30_389_784},
		{Name: "efficientnetb6", Input: sq(528), Layers: 669, Neurons: 605_671_091, TrainableParams: 43_040_704},
		{Name: "efficientnetb7", Input: sq(600), Layers: 816, Neurons: 1_046_113_195, TrainableParams: 66_347_960},
	}
	for _, ref := range refs {
		name := ref.Name
		register(ref, func() *cnn.Model { return buildEfficientNet(name) })
	}
}

// effBlock is one row of the EfficientNet-B0 block table.
type effBlock struct {
	kernel, repeats, in, out, expand, stride int
}

// b0Blocks is the baseline EfficientNet-B0 stage configuration
// (Tan & Le, ICML 2019), each with squeeze-excite ratio 0.25.
var b0Blocks = []effBlock{
	{3, 1, 32, 16, 1, 1},
	{3, 2, 16, 24, 6, 2},
	{5, 2, 24, 40, 6, 2},
	{3, 3, 40, 80, 6, 2},
	{5, 3, 80, 112, 6, 1},
	{5, 4, 112, 192, 6, 2},
	{3, 1, 192, 320, 6, 1},
}

// roundFilters applies the EfficientNet width-scaling rule with divisor 8.
func roundFilters(filters int, width float64) int {
	f := float64(filters) * width
	newF := math.Max(8, float64((int(f)+4)/8*8))
	if newF < 0.9*f {
		newF += 8
	}
	return int(newF)
}

// roundRepeats applies the depth-scaling rule (ceiling).
func roundRepeats(repeats int, depth float64) int {
	return int(math.Ceil(depth * float64(repeats)))
}

// buildEfficientNet constructs the named EfficientNet variant: a strided
// stem, seven stages of mobile inverted bottlenecks (MBConv) with
// squeeze-and-excitation, and a 1280-channel (width-scaled) head.
func buildEfficientNet(name string) *cnn.Model {
	v, ok := effVariants[name]
	if !ok {
		panic(fmt.Sprintf("zoo: unknown efficientnet %q", name))
	}
	b, x := cnn.NewBuilder(name, sq(v.resolution))
	stem := roundFilters(32, v.width)
	x = b.Add(cnn.ConvNoBias(stem, 3, 2, cnn.Same), x)
	x = b.Add(cnn.BN(), x)
	x = b.Add(cnn.Swish(), x)

	inC := stem
	blockID := 0
	for si, blk := range b0Blocks {
		outC := roundFilters(blk.out, v.width)
		repeats := roundRepeats(blk.repeats, v.depth)
		for r := 0; r < repeats; r++ {
			stride := 1
			if r == 0 {
				stride = blk.stride
			}
			blockID++
			x = mbConv(b, x, inC, outC, blk.expand, blk.kernel, stride,
				fmt.Sprintf("s%d_%d", si+1, r+1))
			inC = outC
		}
	}

	head := roundFilters(1280, v.width)
	x = b.Add(cnn.ConvNoBias(head, 1, 1, cnn.Valid), x)
	x = b.Add(cnn.BN(), x)
	x = b.Add(cnn.Swish(), x)
	x = b.Add(cnn.GlobalAvgPool(), x)
	x = b.Add(cnn.Dropout{Rate: 0.2}, x)
	x = b.Add(cnn.FC(1000), x)
	x = b.Add(cnn.Softmax(), x)
	return b.MustBuild(x)
}

// mbConv adds one mobile inverted bottleneck with squeeze-excitation.
// The SE reduction uses the block *input* channels / 4, as in the
// reference implementation; SE convolutions carry biases.
func mbConv(b *cnn.Builder, x *cnn.Node, inC, outC, expand, kernel, stride int, tag string) *cnn.Node {
	y := x
	expC := inC * expand
	if expand != 1 {
		y = b.AddNamed(tag+"_exp", cnn.ConvNoBias(expC, 1, 1, cnn.Valid), y)
		y = b.AddNamed(tag+"_expbn", cnn.BN(), y)
		y = b.AddNamed(tag+"_expsw", cnn.Swish(), y)
	}
	y = b.AddNamed(tag+"_dw", cnn.DepthwiseConv(kernel, stride, cnn.Same), y)
	y = b.AddNamed(tag+"_dwbn", cnn.BN(), y)
	y = b.AddNamed(tag+"_dwsw", cnn.Swish(), y)

	// Squeeze-and-excitation gate.
	seC := inC / 4
	if seC < 1 {
		seC = 1
	}
	se := b.AddNamed(tag+"_se_gap", cnn.GlobalAvgPool(), y)
	se = b.AddNamed(tag+"_se_red", cnn.Conv(seC, 1, 1, cnn.Valid), se)
	se = b.AddNamed(tag+"_se_sw", cnn.Swish(), se)
	se = b.AddNamed(tag+"_se_ex", cnn.Conv(expC, 1, 1, cnn.Valid), se)
	se = b.AddNamed(tag+"_se_sig", cnn.Sigmoid(), se)
	y = b.AddNamed(tag+"_se_mul", cnn.Multiply{}, y, se)

	y = b.AddNamed(tag+"_proj", cnn.ConvNoBias(outC, 1, 1, cnn.Valid), y)
	y = b.AddNamed(tag+"_projbn", cnn.BN(), y)
	if stride == 1 && inC == outC {
		y = b.AddNamed(tag+"_add", cnn.Add{}, x, y)
	}
	return y
}
