package zoo

import (
	"fmt"

	"cnnperf/internal/cnn"
)

// The variant builders generate parameterised versions of well-known
// architectures — the paper's future work plans exactly such variations
// to enlarge the training dataset beyond the 31 fixed networks.

// VGGVariant builds a VGG-style network with a custom per-block
// convolution count (5 blocks, e.g. {2,2,3,3,3} reproduces VGG16).
func VGGVariant(name string, blocks []int) (*cnn.Model, error) {
	if len(blocks) != 5 {
		return nil, fmt.Errorf("zoo: VGG variants need 5 blocks, got %d", len(blocks))
	}
	for i, n := range blocks {
		if n < 1 || n > 8 {
			return nil, fmt.Errorf("zoo: block %d has %d convolutions, want 1-8", i, n)
		}
	}
	return buildVGG(name, blocks), nil
}

// MobileNetAlpha builds MobileNet v1 with a width multiplier alpha in
// (0, 2]; channel counts round to multiples of 8 as in the original
// implementation. Alpha 1.0 reproduces the registered "mobilenet".
func MobileNetAlpha(alpha float64) (*cnn.Model, error) {
	if alpha <= 0 || alpha > 2 {
		return nil, fmt.Errorf("zoo: width multiplier %f outside (0, 2]", alpha)
	}
	scale := func(c int) int {
		v := int(float64(c)*alpha + 4)
		v -= v % 8
		if v < 8 {
			v = 8
		}
		return v
	}
	name := fmt.Sprintf("mobilenet_a%03.0f", alpha*100)
	b, x := cnn.NewBuilder(name, sq(224))
	x = b.Add(cnn.ConvNoBias(scale(32), 3, 2, cnn.Same), x)
	x = b.Add(cnn.BN(), x)
	x = b.Add(cnn.ReLU(), x)
	cfg := []struct{ f, s int }{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1}, {512, 2},
		{512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {1024, 2}, {1024, 1},
	}
	for i, c := range cfg {
		tag := fmt.Sprintf("sep%d", i+1)
		x = b.AddNamed(tag+"_dw", cnn.DepthwiseConv(3, c.s, cnn.Same), x)
		x = b.AddNamed(tag+"_dwbn", cnn.BN(), x)
		x = b.AddNamed(tag+"_dwr", cnn.ReLU(), x)
		x = b.AddNamed(tag+"_pw", cnn.ConvNoBias(scale(c.f), 1, 1, cnn.Valid), x)
		x = b.AddNamed(tag+"_pwbn", cnn.BN(), x)
		x = b.AddNamed(tag+"_pwr", cnn.ReLU(), x)
	}
	x = b.Add(cnn.GlobalAvgPool(), x)
	x = b.Add(cnn.Dropout{Rate: 0.001}, x)
	x = b.Add(cnn.FC(1000), x)
	x = b.Add(cnn.Softmax(), x)
	return b.Build(x)
}

// VariantSet generates a bundle of architecture variations (plus the
// registered extras) for enlarging the training dataset beyond Table I —
// the paper's closing future-work item. All names are distinct from the
// Table I models.
func VariantSet() ([]*cnn.Model, error) {
	var out []*cnn.Model
	for _, alpha := range []float64{0.25, 0.5, 0.75, 1.25} {
		m, err := MobileNetAlpha(alpha)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	vggs := map[string][]int{
		"vgg11-like": {1, 1, 2, 2, 2},
		"vgg21-like": {2, 2, 4, 4, 5},
	}
	for name, blocks := range vggs {
		m, err := VGGVariant(name, blocks)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	resnets := []struct {
		name       string
		blocks     []int
		bottleneck bool
	}{
		{"resnet26", []int{2, 2, 2, 2}, true},
		{"resnet65", []int{3, 4, 11, 3}, true},
		{"resnet24-basic", []int{3, 3, 3, 2}, false},
	}
	for _, r := range resnets {
		m, err := ResNetVariant(r.name, r.blocks, r.bottleneck)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	for _, name := range []string{"resnet18", "resnet34", "resnet50", "squeezenet"} {
		m, err := Build(name)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// ResNetVariant builds a ResNet with custom stage depths. With
// bottleneck=true it uses the 1x1-3x3-1x1 blocks of ResNet-50 and
// deeper; with false the two-3x3 basic blocks of ResNet-18/34.
func ResNetVariant(name string, blocks []int, bottleneck bool) (*cnn.Model, error) {
	if len(blocks) != 4 {
		return nil, fmt.Errorf("zoo: ResNet variants need 4 stages, got %d", len(blocks))
	}
	for i, n := range blocks {
		if n < 1 || n > 48 {
			return nil, fmt.Errorf("zoo: stage %d has %d blocks, want 1-48", i, n)
		}
	}
	if bottleneck {
		return buildResNetV1(name, blocks), nil
	}
	return buildBasicResNet(name, blocks), nil
}
