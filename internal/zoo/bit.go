package zoo

import (
	"fmt"

	"cnnperf/internal/cnn"
)

func init() {
	register(Reference{
		Name: "m-r50x1", Input: sq(224), Layers: 50,
		Neurons: 15_903_016, TrainableParams: 25_549_352,
	}, func() *cnn.Model { return buildBiT("m-r50x1", []int{3, 4, 6, 3}, 1) })
	register(Reference{
		Name: "m-r50x3", Input: sq(224), Layers: 50,
		Neurons: 143_111_080, TrainableParams: 217_319_080,
	}, func() *cnn.Model { return buildBiT("m-r50x3", []int{3, 4, 6, 3}, 3) })
	register(Reference{
		Name: "m-r101x1", Input: sq(224), Layers: 101,
		Neurons: 28_158_248, TrainableParams: 44_541_480,
	}, func() *cnn.Model { return buildBiT("m-r101x1", []int{3, 4, 23, 3}, 1) })
	register(Reference{
		Name: "m-r101x3", Input: sq(224), Layers: 101,
		Neurons: 253_408_168, TrainableParams: 387_934_888,
	}, func() *cnn.Model { return buildBiT("m-r101x3", []int{3, 4, 23, 3}, 3) })
	register(Reference{
		// Table I prints "m-r154x4"; the published BiT model is R152x4.
		Name: "m-r152x4", Input: sq(224), Layers: 154,
		Neurons: 611_981_544, TrainableParams: 936_533_224,
	}, func() *cnn.Model { return buildBiT("m-r152x4", []int{3, 8, 36, 3}, 4) })
}

// buildBiT constructs a Big Transfer (BiT, Kolesnikov et al. 2020) ResNet:
// a pre-activation ResNet-v2 with GroupNorm (32 groups) in place of
// BatchNorm, weight-standardised bias-free convolutions, a width factor
// applied to every stage, and a 1000-way dense head.
func buildBiT(name string, blocks []int, widthFactor int) *cnn.Model {
	b, x := cnn.NewBuilder(name, sq(224))
	stem := 64 * widthFactor
	x = b.Add(cnn.Pad2D(3), x)
	x = b.Add(cnn.ConvNoBias(stem, 7, 2, cnn.Valid), x)
	x = b.Add(cnn.Pad2D(1), x)
	x = b.Add(cnn.MaxPool2D(3, 2, cnn.Valid), x)

	width := []int{64, 128, 256, 512}
	for stage, n := range blocks {
		for blk := 0; blk < n; blk++ {
			stride := 1
			if blk == 0 && stage > 0 {
				stride = 2
			}
			x = bitBottleneck(b, x, width[stage]*widthFactor, stride, blk == 0,
				fmt.Sprintf("s%db%d", stage+1, blk+1))
		}
	}
	x = b.Add(cnn.GroupNorm{Groups: 32}, x)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.GlobalAvgPool(), x)
	x = b.Add(cnn.FC(1000), x)
	x = b.Add(cnn.Softmax(), x)
	return b.MustBuild(x)
}

// bitBottleneck adds one pre-activation GN bottleneck (BiT flavour:
// stride on the 3x3, projection shortcut from the pre-activation).
func bitBottleneck(b *cnn.Builder, x *cnn.Node, width, stride int, project bool, tag string) *cnn.Node {
	pre := b.AddNamed(tag+"_gn", cnn.GroupNorm{Groups: 32}, x)
	pre = b.AddNamed(tag+"_r", cnn.ReLU(), pre)

	shortcut := x
	if project {
		shortcut = b.AddNamed(tag+"_sc", cnn.ConvNoBias(4*width, 1, stride, cnn.Valid), pre)
	}

	y := b.AddNamed(tag+"_c1", cnn.ConvNoBias(width, 1, 1, cnn.Valid), pre)
	y = b.AddNamed(tag+"_gn1", cnn.GroupNorm{Groups: 32}, y)
	y = b.AddNamed(tag+"_r1", cnn.ReLU(), y)
	y = b.AddNamed(tag+"_c2", cnn.ConvNoBias(width, 3, stride, cnn.Same), y)
	y = b.AddNamed(tag+"_gn2", cnn.GroupNorm{Groups: 32}, y)
	y = b.AddNamed(tag+"_r2", cnn.ReLU(), y)
	y = b.AddNamed(tag+"_c3", cnn.ConvNoBias(4*width, 1, 1, cnn.Valid), y)
	return b.AddNamed(tag+"_add", cnn.Add{}, shortcut, y)
}
