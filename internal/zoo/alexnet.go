package zoo

import "cnnperf/internal/cnn"

func init() {
	register(Reference{
		Name: "alexnet", Input: sq(227), Layers: 8,
		Neurons: 650_000, TrainableParams: 58_325_066,
	}, buildAlexNet)
}

// buildAlexNet constructs the original two-tower AlexNet (Krizhevsky et
// al., 2012) with grouped convolutions in layers 2, 4 and 5. The paper's
// Table I reports 58.3M trainable parameters for its AlexNet variant; the
// canonical grouped architecture built here has 61.0M (a 4.5 % deviation
// recorded in EXPERIMENTS.md).
func buildAlexNet() *cnn.Model {
	b, x := cnn.NewBuilder("alexnet", sq(227))
	x = b.Add(cnn.Conv(96, 11, 4, cnn.Valid), x) // 55x55x96
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.MaxPool2D(3, 2, cnn.Valid), x) // 27x27x96
	x = b.Add(cnn.Conv2D{Filters: 256, KH: 5, KW: 5, SH: 1, SW: 1, Pad: cnn.Same, UseBias: true, Groups: 2}, x)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.MaxPool2D(3, 2, cnn.Valid), x) // 13x13x256
	x = b.Add(cnn.Conv(384, 3, 1, cnn.Same), x)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.Conv2D{Filters: 384, KH: 3, KW: 3, SH: 1, SW: 1, Pad: cnn.Same, UseBias: true, Groups: 2}, x)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.Conv2D{Filters: 256, KH: 3, KW: 3, SH: 1, SW: 1, Pad: cnn.Same, UseBias: true, Groups: 2}, x)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.MaxPool2D(3, 2, cnn.Valid), x) // 6x6x256
	x = b.Add(cnn.Flatten{}, x)
	x = b.Add(cnn.Dropout{Rate: 0.5}, x)
	x = b.Add(cnn.FC(4096), x)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.Dropout{Rate: 0.5}, x)
	x = b.Add(cnn.FC(4096), x)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.FC(1000), x)
	x = b.Add(cnn.Softmax(), x)
	return b.MustBuild(x)
}
