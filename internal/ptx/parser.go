package ptx

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads PTX assembly text (the subset this package prints plus the
// nvcc conventions of the paper's Fig. 2: comments, directives, labels,
// predicated instructions) into a Module.
func Parse(src string) (*Module, error) {
	p := &parser{lines: splitLines(src)}
	return p.parseModule()
}

type parser struct {
	lines []string
	pos   int
}

// splitLines normalises the input: strips // comments and blank lines,
// keeps everything else trimmed.
func splitLines(src string) []string {
	raw := strings.Split(src, "\n")
	out := make([]string, 0, len(raw))
	for _, l := range raw {
		if i := strings.Index(l, "//"); i >= 0 {
			l = l[:i]
		}
		l = strings.TrimSpace(l)
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}

func (p *parser) peek() (string, bool) {
	if p.pos >= len(p.lines) {
		return "", false
	}
	return p.lines[p.pos], true
}

func (p *parser) next() (string, bool) {
	l, ok := p.peek()
	if ok {
		p.pos++
	}
	return l, ok
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("ptx: line %d: %s", p.pos+1, fmt.Sprintf(format, args...))
}

func (p *parser) parseModule() (*Module, error) {
	m := &Module{}
	for {
		line, ok := p.peek()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(line, ".version"):
			m.Version = strings.TrimSpace(strings.TrimPrefix(line, ".version"))
			p.pos++
		case strings.HasPrefix(line, ".target"):
			m.Target = strings.TrimSpace(strings.TrimPrefix(line, ".target"))
			p.pos++
		case strings.HasPrefix(line, ".address_size"):
			v := strings.TrimSpace(strings.TrimPrefix(line, ".address_size"))
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, p.errf("bad address size %q", v)
			}
			m.AddressSize = n
			p.pos++
		case strings.Contains(line, ".entry"):
			k, err := p.parseKernel()
			if err != nil {
				return nil, err
			}
			m.Kernels = append(m.Kernels, k)
		default:
			return nil, p.errf("unexpected line %q", line)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// parseKernel consumes ".visible .entry name(" through the closing "}".
func (p *parser) parseKernel() (*Kernel, error) {
	line, _ := p.next()
	idx := strings.Index(line, ".entry")
	rest := strings.TrimSpace(line[idx+len(".entry"):])
	name := rest
	inlineParams := ""
	if i := strings.IndexByte(rest, '('); i >= 0 {
		name = strings.TrimSpace(rest[:i])
		inlineParams = strings.TrimSpace(rest[i+1:])
	}
	if name == "" {
		return nil, p.errf("kernel entry without a name")
	}
	k := &Kernel{Name: name}

	// Parameters: either inline up to ')' or on following lines.
	paramText := inlineParams
	for !strings.Contains(paramText, ")") {
		l, ok := p.next()
		if !ok {
			return nil, p.errf("unterminated parameter list for %q", name)
		}
		paramText += " " + l
	}
	closing := strings.Index(paramText, ")")
	body := strings.TrimSpace(paramText[closing+1:])
	paramText = paramText[:closing]
	for _, decl := range strings.Split(paramText, ",") {
		decl = strings.TrimSpace(decl)
		if decl == "" {
			continue
		}
		fields := strings.Fields(decl)
		// ".param .u64 name"
		if len(fields) != 3 || fields[0] != ".param" {
			return nil, p.errf("bad parameter %q", decl)
		}
		k.Params = append(k.Params, Param{Type: fields[1], Name: fields[2]})
	}

	// Opening brace may trail the parameter list or sit on its own line.
	if body == "" {
		l, ok := p.next()
		if !ok || !strings.HasPrefix(l, "{") {
			return nil, p.errf("expected '{' for kernel %q", name)
		}
		body = strings.TrimSpace(strings.TrimPrefix(l, "{"))
	} else {
		if !strings.HasPrefix(body, "{") {
			return nil, p.errf("expected '{' after parameters of %q", name)
		}
		body = strings.TrimSpace(strings.TrimPrefix(body, "{"))
	}
	if body != "" {
		// Rare: instruction on the brace line.
		if err := p.parseBodyLine(k, body); err != nil {
			return nil, err
		}
	}

	for {
		l, ok := p.next()
		if !ok {
			return nil, p.errf("unterminated kernel %q", name)
		}
		if l == "}" {
			break
		}
		if strings.HasSuffix(l, "}") {
			l = strings.TrimSpace(strings.TrimSuffix(l, "}"))
			if l != "" {
				if err := p.parseBodyLine(k, l); err != nil {
					return nil, err
				}
			}
			break
		}
		if err := p.parseBodyLine(k, l); err != nil {
			return nil, err
		}
	}
	return k, nil
}

// parseBodyLine handles one body line: a .reg declaration, a label, or
// one or more ';'-separated instructions.
func (p *parser) parseBodyLine(k *Kernel, line string) error {
	if strings.HasPrefix(line, ".reg") {
		return p.parseRegDecl(k, line)
	}
	if strings.HasPrefix(line, ".reqntid") || strings.HasPrefix(line, ".maxntid") {
		return nil // performance directives: ignored
	}
	for {
		line = strings.TrimSpace(line)
		if line == "" {
			return nil
		}
		// Labels: "NAME:" possibly followed by an instruction.
		if i := strings.IndexByte(line, ':'); i >= 0 && isLabelName(line[:i]) {
			if err := k.AddLabel(line[:i]); err != nil {
				return err
			}
			line = line[i+1:]
			continue
		}
		semi := strings.IndexByte(line, ';')
		if semi < 0 {
			return p.errf("instruction without ';': %q", line)
		}
		stmt := strings.TrimSpace(line[:semi])
		line = line[semi+1:]
		if stmt == "" {
			continue
		}
		in, err := parseInstruction(stmt)
		if err != nil {
			return p.errf("%v", err)
		}
		k.Append(in)
	}
}

func isLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || r == '$':
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (p *parser) parseRegDecl(k *Kernel, line string) error {
	// ".reg .f32 %f<40>;"
	line = strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(line, ".reg")), ";")
	fields := strings.Fields(line)
	if len(fields) != 2 {
		return p.errf("bad .reg declaration %q", line)
	}
	spec := fields[1]
	lt := strings.IndexByte(spec, '<')
	gt := strings.IndexByte(spec, '>')
	if lt < 0 || gt < lt {
		return p.errf("bad register bank %q", spec)
	}
	count, err := strconv.Atoi(spec[lt+1 : gt])
	if err != nil {
		return p.errf("bad register count in %q", spec)
	}
	k.Regs = append(k.Regs, RegDecl{Type: fields[0], Prefix: spec[:lt], Count: count})
	return nil
}

// parseInstruction parses "@!%p1 opcode a, b, c" (no trailing ';').
func parseInstruction(stmt string) (Instruction, error) {
	var in Instruction
	if strings.HasPrefix(stmt, "@") {
		sp := strings.IndexAny(stmt, " \t")
		if sp < 0 {
			return in, fmt.Errorf("predicated instruction without opcode: %q", stmt)
		}
		pred := stmt[1:sp]
		if strings.HasPrefix(pred, "!") {
			in.PredNeg = true
			pred = pred[1:]
		}
		in.Pred = pred
		stmt = strings.TrimSpace(stmt[sp:])
	}
	sp := strings.IndexAny(stmt, " \t")
	if sp < 0 {
		in.Opcode = stmt
		return in, nil
	}
	in.Opcode = stmt[:sp]
	ops := strings.Split(stmt[sp+1:], ",")
	for _, o := range ops {
		o = strings.TrimSpace(o)
		if o != "" {
			in.Operands = append(in.Operands, o)
		}
	}
	return in, nil
}
