package ptx

import (
	"strings"
	"testing"
)

// benchModule builds a module with many loop kernels for parser/printer
// throughput measurement.
func benchModule(b *testing.B) *Module {
	b.Helper()
	m := &Module{Version: "6.0", Target: "sm_61", AddressSize: 64}
	for i := 0; i < 50; i++ {
		k := &Kernel{Name: "kernel_" + string(rune('a'+i%26)) + string(rune('0'+i/26))}
		k.Params = []Param{{Name: k.Name + "_p0", Type: ".u64"}}
		k.Append(Instruction{Opcode: "ld.param.u64", Operands: []string{"%rd1", "[" + k.Name + "_p0]"}})
		k.Append(Instruction{Opcode: "mov.u32", Operands: []string{"%r1", "0"}})
		if err := k.AddLabel("L"); err != nil {
			b.Fatal(err)
		}
		k.Append(Instruction{Opcode: "mul.wide.s32", Operands: []string{"%rd2", "%r1", "4"}})
		k.Append(Instruction{Opcode: "add.s64", Operands: []string{"%rd3", "%rd1", "%rd2"}})
		k.Append(Instruction{Opcode: "ld.global.f32", Operands: []string{"%f1", "[%rd3]"}})
		k.Append(Instruction{Opcode: "fma.rn.f32", Operands: []string{"%f2", "%f1", "%f1", "%f2"}})
		k.Append(Instruction{Opcode: "add.s32", Operands: []string{"%r1", "%r1", "1"}})
		k.Append(Instruction{Opcode: "setp.lt.s32", Operands: []string{"%p1", "%r1", "1024"}})
		k.Append(Instruction{Pred: "%p1", Opcode: "bra", Operands: []string{"L"}})
		k.Append(Instruction{Opcode: "ret"})
		m.Kernels = append(m.Kernels, k)
	}
	return m
}

func BenchmarkPrint(b *testing.B) {
	m := benchModule(b)
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		total += len(Print(m))
	}
	if total == 0 {
		b.Fatal("empty output")
	}
}

func BenchmarkParse(b *testing.B) {
	text := Print(benchModule(b))
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassOf(b *testing.B) {
	ops := []string{"add.s32", "fma.rn.f32", "ld.global.f32", "setp.lt.u32", "bra", "cvta.to.global.u64"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ClassOf(ops[i%len(ops)]) == ClassUnknown {
			b.Fatal("unknown class")
		}
	}
}

func BenchmarkInstructionString(b *testing.B) {
	in := Instruction{Pred: "%p1", Opcode: "fma.rn.f32", Operands: []string{"%f1", "%f2", "%f3", "%f1"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !strings.HasPrefix(in.String(), "@") {
			b.Fatal("bad render")
		}
	}
}
