// Package cfg builds control-flow graphs over parsed PTX kernels. It is
// shared by the dynamic code analysis (which slices branch-deciding
// instructions) and the static-analysis framework (which computes
// dominators, loop nesting and dataflow facts over the same blocks).
package cfg

import (
	"fmt"

	"cnnperf/internal/ptx"
)

// Block is a maximal straight-line instruction range [Start, End).
type Block struct {
	// Start is the index of the first instruction.
	Start int
	// End is one past the last instruction.
	End int
	// Succs are the indices of successor blocks in the CFG.
	Succs []int
	// Preds are the indices of predecessor blocks in the CFG.
	Preds []int
}

// Graph is the control-flow graph of one kernel.
type Graph struct {
	// Blocks are the basic blocks in ascending Start order.
	Blocks []*Block
	// blockOf maps an instruction index to its block index.
	blockOf []int
}

// BlockOf returns the block index containing instruction idx.
func (g *Graph) BlockOf(idx int) int { return g.blockOf[idx] }

// Build partitions the kernel body into basic blocks and wires the
// successor and predecessor edges from branch targets and fallthrough.
// The entry block is always Blocks[0].
func Build(k *ptx.Kernel) (*Graph, error) {
	n := len(k.Body)
	if n == 0 {
		return nil, fmt.Errorf("cfg: kernel %q has an empty body", k.Name)
	}
	leaders := make(map[int]bool, 8)
	leaders[0] = true
	for i, in := range k.Body {
		if ptx.IsBranch(in.Opcode) {
			if len(in.Operands) != 1 {
				return nil, fmt.Errorf("cfg: kernel %q: branch at %d needs 1 operand", k.Name, i)
			}
			tgt, err := k.Target(in.Operands[0])
			if err != nil {
				return nil, fmt.Errorf("cfg: %w", err)
			}
			if tgt < n {
				leaders[tgt] = true
			}
			if i+1 < n {
				leaders[i+1] = true
			}
		}
		if ptx.IsExit(in.Opcode) && i+1 < n {
			leaders[i+1] = true
		}
	}
	// Labels also start blocks: predicated instructions may jump there.
	for _, idx := range k.Labels {
		if idx < n {
			leaders[idx] = true
		}
	}

	g := &Graph{blockOf: make([]int, n)}
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || leaders[i] {
			g.Blocks = append(g.Blocks, &Block{Start: start, End: i})
			start = i
		}
	}
	for bi, b := range g.Blocks {
		for i := b.Start; i < b.End; i++ {
			g.blockOf[i] = bi
		}
	}
	// Successors.
	for bi, b := range g.Blocks {
		last := k.Body[b.End-1]
		switch {
		case ptx.IsExit(last.Opcode) && last.Pred == "":
			// no successors
		case ptx.IsBranch(last.Opcode):
			tgt, err := k.Target(last.Operands[0])
			if err != nil {
				return nil, fmt.Errorf("cfg: %w", err)
			}
			if tgt < n {
				b.Succs = append(b.Succs, g.blockOf[tgt])
			}
			if last.Pred != "" && b.End < n {
				// Conditional branch falls through too.
				b.Succs = append(b.Succs, bi+1)
			}
		default:
			if b.End < n {
				b.Succs = append(b.Succs, bi+1)
			}
		}
	}
	for bi, b := range g.Blocks {
		for _, s := range b.Succs {
			g.Blocks[s].Preds = append(g.Blocks[s].Preds, bi)
		}
	}
	return g, nil
}

// BackEdges returns the (from, to) block pairs whose branch jumps backward
// — the loop edges of the kernel.
func (g *Graph) BackEdges() [][2]int {
	var out [][2]int
	for bi, b := range g.Blocks {
		for _, s := range b.Succs {
			if s <= bi {
				out = append(out, [2]int{bi, s})
			}
		}
	}
	return out
}

// Reachable returns the set of block indices reachable from the entry.
func (g *Graph) Reachable() []bool {
	seen := make([]bool, len(g.Blocks))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}
