package cfg

import (
	"testing"

	"cnnperf/internal/ptx"
)

func TestBuildErrors(t *testing.T) {
	if _, err := Build(&ptx.Kernel{Name: "empty"}); err == nil {
		t.Error("empty body should error")
	}
	k := &ptx.Kernel{Name: "badbra"}
	k.Append(ptx.Instruction{Opcode: "bra"})
	if _, err := Build(k); err == nil {
		t.Error("branch without operand should error")
	}
	k2 := &ptx.Kernel{Name: "nolabel"}
	k2.Append(ptx.Instruction{Opcode: "bra", Operands: []string{"GONE"}})
	if _, err := Build(k2); err == nil {
		t.Error("unresolved branch target should error")
	}
}

func TestBuildDiamondEdges(t *testing.T) {
	k := &ptx.Kernel{Name: "diamond"}
	k.Append(ptx.Instruction{Opcode: "setp.lt.s32", Operands: []string{"%p1", "%r1", "8"}})
	k.Append(ptx.Instruction{Pred: "%p1", Opcode: "bra", Operands: []string{"THEN"}})
	k.Append(ptx.Instruction{Opcode: "mov.u32", Operands: []string{"%r2", "1"}})
	k.Append(ptx.Instruction{Opcode: "bra.uni", Operands: []string{"JOIN"}})
	if err := k.AddLabel("THEN"); err != nil {
		t.Fatal(err)
	}
	k.Append(ptx.Instruction{Opcode: "mov.u32", Operands: []string{"%r2", "2"}})
	if err := k.AddLabel("JOIN"); err != nil {
		t.Fatal(err)
	}
	k.Append(ptx.Instruction{Opcode: "ret"})
	g, err := Build(k)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(g.Blocks))
	}
	// Entry branches to both arms; both arms join; join has two preds.
	if len(g.Blocks[0].Succs) != 2 {
		t.Errorf("entry succs = %v", g.Blocks[0].Succs)
	}
	if len(g.Blocks[3].Preds) != 2 {
		t.Errorf("join preds = %v", g.Blocks[3].Preds)
	}
	if len(g.BackEdges()) != 0 {
		t.Errorf("diamond has no back edges: %v", g.BackEdges())
	}
	for bi, ok := range g.Reachable() {
		if !ok {
			t.Errorf("block %d unreachable", bi)
		}
	}
}

// A branch whose target is a trailing label (index == len(Body)) falls
// off the end: the block gets no successor edge for it.
func TestBuildTrailingLabelTarget(t *testing.T) {
	k := &ptx.Kernel{Name: "tail"}
	k.Append(ptx.Instruction{Opcode: "bra.uni", Operands: []string{"END"}})
	if err := k.AddLabel("END"); err != nil {
		t.Fatal(err)
	}
	g, err := Build(k)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if len(g.Blocks) != 1 || len(g.Blocks[0].Succs) != 0 {
		t.Errorf("graph = %+v", g.Blocks[0])
	}
}
