package ptx

import "strings"

// specialRegs are the read-only hardware registers: they are sourced by
// instructions but never defined by one.
var specialRegs = map[string]bool{
	"%tid.x": true, "%tid.y": true, "%tid.z": true,
	"%ntid.x": true, "%ntid.y": true, "%ntid.z": true,
	"%ctaid.x": true, "%ctaid.y": true, "%ctaid.z": true,
	"%nctaid.x": true, "%nctaid.y": true, "%nctaid.z": true,
}

// IsSpecialReg reports whether the operand names a read-only hardware
// register such as "%tid.x".
func IsSpecialReg(op string) bool { return specialRegs[op] }

// RegOperand extracts the virtual register name from an operand, handling
// memory references "[%rd1+4]" and plain registers "%r3". Immediates,
// labels, parameter names and special read-only registers return "".
func RegOperand(op string) string {
	op = strings.TrimSpace(op)
	if strings.HasPrefix(op, "[") {
		op = strings.TrimPrefix(op, "[")
		op = strings.TrimSuffix(op, "]")
		if i := strings.IndexAny(op, "+-"); i > 0 {
			op = op[:i]
		}
	}
	if !strings.HasPrefix(op, "%") || IsSpecialReg(op) {
		return ""
	}
	return op
}
