package ptx

import (
	"fmt"
	"strings"
)

// Instruction is one PTX instruction: an optional guard predicate, a full
// opcode and its operand list. For opcodes with a destination (HasDest),
// Operands[0] is the destination.
type Instruction struct {
	// Pred is the guard predicate register ("%p1") or empty.
	Pred string
	// PredNeg negates the guard ("@!%p1").
	PredNeg bool
	// Opcode is the full dotted opcode, e.g. "setp.lt.u32".
	Opcode string
	// Operands are the operand strings: registers ("%r1"), immediates
	// ("42", "0f3F800000"), special registers ("%tid.x"), memory
	// references ("[%rd1+4]"), parameter names or labels.
	Operands []string
}

// Dest returns the destination register, or "" when the opcode has none.
func (in Instruction) Dest() string {
	if HasDest(in.Opcode) && len(in.Operands) > 0 {
		return in.Operands[0]
	}
	return ""
}

// Sources returns the source operands (everything that is not the
// destination). Stores and branches source all operands.
func (in Instruction) Sources() []string {
	if HasDest(in.Opcode) {
		if len(in.Operands) <= 1 {
			return nil
		}
		return in.Operands[1:]
	}
	return in.Operands
}

// Class returns the execution class of the instruction.
func (in Instruction) Class() Class { return ClassOf(in.Opcode) }

// String renders the instruction in PTX syntax.
func (in Instruction) String() string {
	var b strings.Builder
	if in.Pred != "" {
		b.WriteByte('@')
		if in.PredNeg {
			b.WriteByte('!')
		}
		b.WriteString(in.Pred)
		b.WriteByte(' ')
	}
	b.WriteString(in.Opcode)
	if len(in.Operands) > 0 {
		b.WriteByte(' ')
		b.WriteString(strings.Join(in.Operands, ", "))
	}
	b.WriteByte(';')
	return b.String()
}

// Param is a kernel parameter declaration.
type Param struct {
	// Name is the parameter identifier.
	Name string
	// Type is the PTX type, e.g. ".u64".
	Type string
}

// RegDecl declares a bank of virtual registers, e.g. ".reg .f32 %f<40>;".
type RegDecl struct {
	// Type is the register type (".f32", ".pred", ...).
	Type string
	// Prefix is the register name prefix ("%f").
	Prefix string
	// Count is the declared bank size.
	Count int
}

// Kernel is one .entry function: parameters, register declarations and a
// flat instruction body with labels resolved to indices.
type Kernel struct {
	// Name is the kernel entry name.
	Name string
	// Params are the kernel parameters in declaration order.
	Params []Param
	// Regs are the register bank declarations.
	Regs []RegDecl
	// Body is the instruction sequence.
	Body []Instruction
	// Labels maps label names to the Body index they precede.
	Labels map[string]int
	// labelAt maps a body index to its label names (for printing).
	labelAt map[int][]string
}

// AddLabel attaches a label to the next appended instruction index.
func (k *Kernel) AddLabel(name string) error {
	if k.Labels == nil {
		k.Labels = make(map[string]int)
		k.labelAt = make(map[int][]string)
	}
	if _, dup := k.Labels[name]; dup {
		return fmt.Errorf("ptx: duplicate label %q in kernel %q", name, k.Name)
	}
	idx := len(k.Body)
	k.Labels[name] = idx
	k.labelAt[idx] = append(k.labelAt[idx], name)
	return nil
}

// Append adds an instruction to the body.
func (k *Kernel) Append(in Instruction) { k.Body = append(k.Body, in) }

// LabelsAt returns the labels attached to a body index.
func (k *Kernel) LabelsAt(idx int) []string {
	return k.labelAt[idx]
}

// Target resolves a branch target label to a body index.
func (k *Kernel) Target(label string) (int, error) {
	idx, ok := k.Labels[label]
	if !ok {
		return 0, fmt.Errorf("ptx: undefined label %q in kernel %q", label, k.Name)
	}
	return idx, nil
}

// StaticHistogram counts the static instructions per class.
func (k *Kernel) StaticHistogram() map[Class]int64 {
	h := make(map[Class]int64)
	for _, in := range k.Body {
		h[in.Class()]++
	}
	return h
}

// Validate checks label targets, label table consistency and operand
// arity of the body.
func (k *Kernel) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("ptx: kernel without name")
	}
	// Labels must point into the body ([0, len] — len marks a trailing
	// label) and the reverse index must agree with the forward one, so a
	// hand-assembled kernel cannot print the same label twice.
	for name, idx := range k.Labels {
		if idx < 0 || idx > len(k.Body) {
			return fmt.Errorf("ptx: kernel %q: label %q points at %d, outside the body [0,%d]",
				k.Name, name, idx, len(k.Body))
		}
	}
	for idx, names := range k.labelAt {
		seen := make(map[string]bool, len(names))
		for _, name := range names {
			if seen[name] {
				return fmt.Errorf("ptx: kernel %q: duplicate label %q", k.Name, name)
			}
			seen[name] = true
			if at, ok := k.Labels[name]; !ok || at != idx {
				return fmt.Errorf("ptx: kernel %q: label %q recorded at index %d but resolves to %d",
					k.Name, name, idx, at)
			}
		}
	}
	for i, in := range k.Body {
		if in.Opcode == "" {
			return fmt.Errorf("ptx: kernel %q: empty opcode at %d", k.Name, i)
		}
		if ClassOf(in.Opcode) == ClassUnknown {
			return fmt.Errorf("ptx: kernel %q: unknown opcode %q at %d", k.Name, in.Opcode, i)
		}
		if IsBranch(in.Opcode) {
			if len(in.Operands) != 1 {
				return fmt.Errorf("ptx: kernel %q: %s needs 1 operand at %d", k.Name, in.Opcode, i)
			}
			if _, err := k.Target(in.Operands[0]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Module is a translation unit: header directives plus kernels.
type Module struct {
	// Version is the PTX ISA version, e.g. "6.0".
	Version string
	// Target is the SM target, e.g. "sm_61".
	Target string
	// AddressSize is 32 or 64.
	AddressSize int
	// Kernels are the entry functions in declaration order.
	Kernels []*Kernel
}

// Kernel returns the kernel with the given name, or nil.
func (m *Module) Kernel(name string) *Kernel {
	for _, k := range m.Kernels {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// Validate checks the module header and all kernels. Branches resolving
// only against a label of a sibling kernel are rejected with a dedicated
// error: PTX labels are function-scoped, so such a branch can never be
// assembled.
func (m *Module) Validate() error {
	if m.AddressSize != 32 && m.AddressSize != 64 {
		return fmt.Errorf("ptx: address size %d", m.AddressSize)
	}
	seen := make(map[string]bool)
	for _, k := range m.Kernels {
		if seen[k.Name] {
			return fmt.Errorf("ptx: duplicate kernel %q", k.Name)
		}
		seen[k.Name] = true
		for i, in := range k.Body {
			if !IsBranch(in.Opcode) || len(in.Operands) != 1 {
				continue
			}
			label := in.Operands[0]
			if _, ok := k.Labels[label]; ok {
				continue
			}
			for _, other := range m.Kernels {
				if other == k {
					continue
				}
				if _, ok := other.Labels[label]; ok {
					return fmt.Errorf("ptx: kernel %q: branch at %d targets label %q of kernel %q (labels are function-scoped)",
						k.Name, i, label, other.Name)
				}
			}
		}
		if err := k.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// StaticInstructions returns the total static instruction count.
func (m *Module) StaticInstructions() int64 {
	var n int64
	for _, k := range m.Kernels {
		n += int64(len(k.Body))
	}
	return n
}
