package ptx

import (
	"strings"
	"testing"
)

func TestClassOf(t *testing.T) {
	cases := map[string]Class{
		"add.s32":            ClassIntALU,
		"add.f32":            ClassFP32,
		"mul.wide.s32":       ClassIntALU,
		"mul.f32":            ClassFP32,
		"fma.rn.f32":         ClassFMA,
		"div.approx.f32":     ClassSFU,
		"div.s32":            ClassIntALU,
		"rcp.approx.f32":     ClassSFU,
		"ex2.approx.f32":     ClassSFU,
		"ld.global.f32":      ClassLoad,
		"ld.param.u64":       ClassLoad,
		"st.global.f32":      ClassStore,
		"setp.lt.u32":        ClassCompare,
		"setp.ge.s32":        ClassCompare,
		"mov.u32":            ClassMove,
		"selp.f32":           ClassMove,
		"cvt.rn.f32.s32":     ClassConvert,
		"cvta.to.global.u64": ClassConvert,
		"bra":                ClassBranch,
		"bra.uni":            ClassBranch,
		"bar.sync":           ClassSync,
		"ret":                ClassControl,
		"shl.b32":            ClassIntALU,
		"or.b32":             ClassIntALU,
		"max.f32":            ClassFP32,
		"frobnicate.x":       ClassUnknown,
	}
	for op, want := range cases {
		if got := ClassOf(op); got != want {
			t.Errorf("ClassOf(%q) = %v, want %v", op, got, want)
		}
	}
}

func TestClassPredicates(t *testing.T) {
	if !IsBranch("bra") || IsBranch("add.s32") {
		t.Error("IsBranch wrong")
	}
	if !IsBarrier("bar.sync") || IsBarrier("ret") {
		t.Error("IsBarrier wrong")
	}
	if !IsExit("ret") || IsExit("bra") {
		t.Error("IsExit wrong")
	}
	if !HasDest("add.s32") || HasDest("st.global.f32") || HasDest("bra") || HasDest("ret") {
		t.Error("HasDest wrong")
	}
}

func TestClassStringsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Classes {
		s := c.String()
		if s == "unknown" || seen[s] {
			t.Errorf("class %d has bad or duplicate string %q", c, s)
		}
		seen[s] = true
	}
}

func TestInstructionAccessors(t *testing.T) {
	add := Instruction{Opcode: "add.s32", Operands: []string{"%r1", "%r2", "%r3"}}
	if add.Dest() != "%r1" {
		t.Errorf("dest = %q", add.Dest())
	}
	if got := add.Sources(); len(got) != 2 || got[0] != "%r2" {
		t.Errorf("sources = %v", got)
	}
	st := Instruction{Opcode: "st.global.f32", Operands: []string{"[%rd1]", "%f1"}}
	if st.Dest() != "" {
		t.Error("store has no dest register")
	}
	if got := st.Sources(); len(got) != 2 {
		t.Errorf("store sources = %v", got)
	}
	pred := Instruction{Pred: "%p1", PredNeg: true, Opcode: "bra", Operands: []string{"L1"}}
	if s := pred.String(); s != "@!%p1 bra L1;" {
		t.Errorf("String = %q", s)
	}
}

func buildLoopKernel(t *testing.T) *Kernel {
	t.Helper()
	k := &Kernel{Name: "loop_test"}
	k.Params = []Param{{Name: "loop_test_param_0", Type: ".u64"}}
	k.Regs = []RegDecl{
		{Type: ".pred", Prefix: "%p", Count: 2},
		{Type: ".b32", Prefix: "%r", Count: 8},
	}
	k.Append(Instruction{Opcode: "mov.u32", Operands: []string{"%r1", "0"}})
	if err := k.AddLabel("$L__BB0_1"); err != nil {
		t.Fatal(err)
	}
	k.Append(Instruction{Opcode: "add.s32", Operands: []string{"%r1", "%r1", "1"}})
	k.Append(Instruction{Opcode: "setp.lt.s32", Operands: []string{"%p1", "%r1", "16"}})
	k.Append(Instruction{Pred: "%p1", Opcode: "bra", Operands: []string{"$L__BB0_1"}})
	k.Append(Instruction{Opcode: "ret"})
	return k
}

func TestKernelLabelsAndValidate(t *testing.T) {
	k := buildLoopKernel(t)
	if err := k.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	idx, err := k.Target("$L__BB0_1")
	if err != nil || idx != 1 {
		t.Errorf("target = %d, %v", idx, err)
	}
	if _, err := k.Target("missing"); err == nil {
		t.Error("missing label should error")
	}
	if err := k.AddLabel("$L__BB0_1"); err == nil {
		t.Error("duplicate label should error")
	}
	h := k.StaticHistogram()
	if h[ClassIntALU] != 1 || h[ClassBranch] != 1 || h[ClassCompare] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestKernelValidateCatchesBadBranch(t *testing.T) {
	k := &Kernel{Name: "bad"}
	k.Append(Instruction{Opcode: "bra", Operands: []string{"nowhere"}})
	if err := k.Validate(); err == nil {
		t.Error("branch to undefined label should fail validation")
	}
	k2 := &Kernel{Name: "bad2"}
	k2.Append(Instruction{Opcode: "frob.u32", Operands: []string{"%r1"}})
	if err := k2.Validate(); err == nil {
		t.Error("unknown opcode should fail validation")
	}

	// Branch arity applies to every bra variant, not just the bare forms.
	k3 := &Kernel{Name: "bad3"}
	k3.Append(Instruction{Opcode: "bra.uni"})
	if err := k3.Validate(); err == nil {
		t.Error("bra.uni without operands should fail validation")
	}

	// A label pointing outside the body is structurally broken.
	k4 := &Kernel{Name: "bad4"}
	k4.Append(Instruction{Opcode: "ret"})
	k4.Labels = map[string]int{"WILD": 7}
	if err := k4.Validate(); err == nil {
		t.Error("out-of-range label index should fail validation")
	}

	// AddLabel refuses duplicates within one kernel.
	k5 := &Kernel{Name: "k5"}
	if err := k5.AddLabel("L"); err != nil {
		t.Fatalf("first label: %v", err)
	}
	k5.Append(Instruction{Opcode: "ret"})
	if err := k5.AddLabel("L"); err == nil {
		t.Error("duplicate label must be rejected")
	}
	if err := k5.Validate(); err != nil {
		t.Errorf("kernel left valid after rejected duplicate: %v", err)
	}
}

func TestModuleValidateRejectsCrossKernelBranch(t *testing.T) {
	// Kernel b branches to a label that exists only in kernel a: labels
	// are function-scoped, so the module must not validate.
	a := &Kernel{Name: "a"}
	if err := a.AddLabel("DONE"); err != nil {
		t.Fatal(err)
	}
	a.Append(Instruction{Opcode: "ret"})
	b := &Kernel{Name: "b"}
	b.Append(Instruction{Opcode: "bra", Operands: []string{"DONE"}})
	b.Append(Instruction{Opcode: "ret"})
	m := &Module{Version: "6.0", Target: "sm_61", AddressSize: 64, Kernels: []*Kernel{a, b}}
	err := m.Validate()
	if err == nil {
		t.Fatal("cross-kernel branch target should fail module validation")
	}
	if !strings.Contains(err.Error(), "function-scoped") || !strings.Contains(err.Error(), `"a"`) {
		t.Errorf("error should name the owning kernel: %v", err)
	}
	// The equivalent source text must be rejected by Parse too.
	src := ".version 6.0\n.target sm_61\n.address_size 64\n" +
		".visible .entry a()\n{\nDONE:\n\tret;\n}\n" +
		".visible .entry b()\n{\n\tbra DONE;\n\tret;\n}\n"
	if _, err := Parse(src); err == nil {
		t.Error("Parse should reject cross-kernel branch targets")
	}
}

func TestModuleRoundTrip(t *testing.T) {
	m := &Module{Version: "6.0", Target: "sm_61", AddressSize: 64}
	m.Kernels = append(m.Kernels, buildLoopKernel(t))
	if err := m.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	text := Print(m)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("parse printed module: %v\n%s", err, text)
	}
	if back.Version != m.Version || back.Target != m.Target || back.AddressSize != 64 {
		t.Errorf("header mismatch: %+v", back)
	}
	if len(back.Kernels) != 1 {
		t.Fatalf("kernels = %d", len(back.Kernels))
	}
	k, bk := m.Kernels[0], back.Kernels[0]
	if bk.Name != k.Name || len(bk.Body) != len(k.Body) || len(bk.Params) != len(k.Params) {
		t.Fatalf("kernel mismatch: %+v vs %+v", bk, k)
	}
	for i := range k.Body {
		if k.Body[i].String() != bk.Body[i].String() {
			t.Errorf("instr %d: %q vs %q", i, k.Body[i].String(), bk.Body[i].String())
		}
	}
	if bk.Labels["$L__BB0_1"] != 1 {
		t.Errorf("label index = %d", bk.Labels["$L__BB0_1"])
	}
	// Second print must be identical (canonical form).
	if Print(back) != text {
		t.Error("print is not canonical")
	}
}

// TestParseFig2Style parses a fragment in the nvcc style of the paper's
// Fig. 2 (comments, reqntid directive, predicated branch, param load).
func TestParseFig2Style(t *testing.T) {
	src := `
// Generated by LLVM NVPTX Back-End
.version 6.0
.target sm_61
.address_size 64
.visible .entry fusion_135(
	.param .u64 fusion_135_param_0
)
{
	.reg .pred %p<14>;
	.reg .b32 %r<20>;
	.reg .b64 %rd<12>;
	mov.u32 %r13, %ctaid.x;
	mov.u32 %r14, %tid.x;
	shl.b32 %r15, %r13, 10;
	shl.b32 %r16, %r14, 2;
	or.b32 %r1, %r16, %r15;
	setp.lt.u32 %p1, %r1, 718296;
	@%p1 bra LBB0_2;
	bra.uni LBB0_1;
LBB0_2:
	ld.param.u64 %rd10, [fusion_135_param_0];
LBB0_1:
	ret;
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	k := m.Kernel("fusion_135")
	if k == nil {
		t.Fatal("kernel not found")
	}
	if len(k.Body) != 10 {
		t.Errorf("body = %d instructions", len(k.Body))
	}
	if k.Labels["LBB0_2"] != 8 || k.Labels["LBB0_1"] != 9 {
		t.Errorf("labels = %v", k.Labels)
	}
	if k.Body[6].Pred != "%p1" || k.Body[6].Opcode != "bra" {
		t.Errorf("predicated branch parsed wrong: %+v", k.Body[6])
	}
	if len(k.Regs) != 3 || k.Regs[0].Count != 14 {
		t.Errorf("regs = %+v", k.Regs)
	}
	if m.StaticInstructions() != 10 {
		t.Errorf("static instructions = %d", m.StaticInstructions())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		".version 6.0\n.address_size banana\n",
		"garbage line\n",
		".version 6.0\n.target sm_61\n.address_size 64\n.visible .entry k(\n.param .u64 p\n)\n{\nadd.s32 %r1, %r2, %r3\n}\n", // missing ';'
		".version 6.0\n.target sm_61\n.address_size 64\n.visible .entry k(\n.param .u64\n)\n{\nret;\n}\n",                    // bad param
		".version 6.0\n.target sm_61\n.address_size 64\n.visible .entry k(\n.param .u64 p\n)\n{\nbra missing;\n}\n",          // undefined label
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestParseEndLabel(t *testing.T) {
	// A label may point one past the last instruction.
	src := ".version 6.0\n.target sm_61\n.address_size 64\n" +
		".visible .entry k(\n.param .u64 p\n)\n{\n" +
		"setp.lt.u32 %p1, %r1, 4;\n@%p1 bra END;\nmov.u32 %r1, 0;\nEND:\n}\n"
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	k := m.Kernels[0]
	if k.Labels["END"] != 3 {
		t.Errorf("END label = %d, want 3 (one past last)", k.Labels["END"])
	}
	// Round trip keeps the trailing label.
	back, err := Parse(Print(m))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.Kernels[0].Labels["END"] != 3 {
		t.Error("trailing label lost in round trip")
	}
}

func TestIsLabelName(t *testing.T) {
	good := []string{"LBB0_1", "$L__BB0_2", "end", "_x9"}
	bad := []string{"", "9abc", "with space", "a-b"}
	for _, s := range good {
		if !isLabelName(s) {
			t.Errorf("%q should be a label name", s)
		}
	}
	for _, s := range bad {
		if isLabelName(s) {
			t.Errorf("%q should not be a label name", s)
		}
	}
}

func TestParseInstructionForms(t *testing.T) {
	in, err := parseInstruction("ld.global.f32 %f1, [%rd4+16]")
	if err != nil || in.Opcode != "ld.global.f32" || in.Operands[1] != "[%rd4+16]" {
		t.Errorf("load parse: %+v, %v", in, err)
	}
	in, err = parseInstruction("@!%p3 mov.u32 %r1, %r2")
	if err != nil || !in.PredNeg || in.Pred != "%p3" {
		t.Errorf("negated predicate parse: %+v, %v", in, err)
	}
	in, err = parseInstruction("ret")
	if err != nil || in.Opcode != "ret" || len(in.Operands) != 0 {
		t.Errorf("ret parse: %+v, %v", in, err)
	}
	if _, err := parseInstruction("@%p1"); err == nil {
		t.Error("predicate without opcode should error")
	}
}

func TestModuleValidateDuplicates(t *testing.T) {
	m := &Module{Version: "6.0", Target: "sm_61", AddressSize: 64}
	m.Kernels = append(m.Kernels, &Kernel{Name: "k"}, &Kernel{Name: "k"})
	if err := m.Validate(); err == nil {
		t.Error("duplicate kernels should fail validation")
	}
	m2 := &Module{Version: "6.0", Target: "sm_61", AddressSize: 16}
	if err := m2.Validate(); err == nil {
		t.Error("bad address size should fail validation")
	}
	if (&Module{}).Kernel("x") != nil {
		t.Error("missing kernel lookup should be nil")
	}
}

func TestPrintContainsStructure(t *testing.T) {
	m := &Module{Version: "6.0", Target: "sm_61", AddressSize: 64}
	m.Kernels = append(m.Kernels, buildLoopKernel(t))
	text := Print(m)
	for _, want := range []string{".version 6.0", ".target sm_61", ".visible .entry loop_test(", ".reg .pred %p<2>;", "$L__BB0_1:", "@%p1 bra $L__BB0_1;"} {
		if !strings.Contains(text, want) {
			t.Errorf("printed module missing %q:\n%s", want, text)
		}
	}
}

// TestParseKernelMalformed exercises the parser's kernel-level error
// paths.
func TestParseKernelMalformed(t *testing.T) {
	header := ".version 6.0\n.target sm_61\n.address_size 64\n"
	cases := map[string]string{
		"unterminated params": header + ".visible .entry k(\n.param .u64 p\n",
		"missing brace":       header + ".visible .entry k(\n.param .u64 p\n)\nret;\n",
		"unterminated body":   header + ".visible .entry k(\n.param .u64 p\n)\n{\nret;\n",
		"nameless entry":      header + ".visible .entry (\n.param .u64 p\n)\n{\nret;\n}\n",
		"bad reg decl":        header + ".visible .entry k(\n.param .u64 p\n)\n{\n.reg .f32;\nret;\n}\n",
		"bad reg bank":        header + ".visible .entry k(\n.param .u64 p\n)\n{\n.reg .f32 %f;\nret;\n}\n",
		"bad reg count":       header + ".visible .entry k(\n.param .u64 p\n)\n{\n.reg .f32 %f<x>;\nret;\n}\n",
		"duplicate label":     header + ".visible .entry k(\n.param .u64 p\n)\n{\nL:\nL:\nret;\n}\n",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

// TestParseInlineForms covers params on the entry line and instructions
// sharing a line with the closing brace.
func TestParseInlineForms(t *testing.T) {
	src := ".version 6.0\n.target sm_61\n.address_size 64\n" +
		".visible .entry k(.param .u64 p) {\n" +
		"mov.u32 %r1, 0; add.s32 %r1, %r1, 1;\n" +
		"ret; }\n"
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	k := m.Kernels[0]
	if len(k.Body) != 3 {
		t.Errorf("body = %d, want 3", len(k.Body))
	}
	if len(k.Params) != 1 || k.Params[0].Name != "p" {
		t.Errorf("params = %+v", k.Params)
	}
	// Performance directives are ignored.
	src2 := ".version 6.0\n.target sm_61\n.address_size 64\n" +
		".visible .entry k(.param .u64 p) {\n.reqntid 256, 1, 1;\nret;\n}\n"
	m2, err := Parse(src2)
	if err != nil {
		t.Fatalf("reqntid: %v", err)
	}
	if len(m2.Kernels[0].Body) != 1 {
		t.Error("reqntid should not become an instruction")
	}
}

func TestValidateEmptyNameAndOpcode(t *testing.T) {
	if err := (&Kernel{}).Validate(); err == nil {
		t.Error("nameless kernel should fail")
	}
	k := &Kernel{Name: "k"}
	k.Append(Instruction{})
	if err := k.Validate(); err == nil {
		t.Error("empty opcode should fail")
	}
	k2 := &Kernel{Name: "k"}
	k2.Append(Instruction{Opcode: "bra"})
	if err := k2.Validate(); err == nil {
		t.Error("bra without operand should fail")
	}
}

func TestSharedMemoryClasses(t *testing.T) {
	if ClassOf("ld.shared.f32") != ClassLoadShared {
		t.Error("ld.shared misclassified")
	}
	if ClassOf("st.shared.f32") != ClassStoreShared {
		t.Error("st.shared misclassified")
	}
	if HasDest("st.shared.f32") {
		t.Error("shared store has no destination")
	}
	if !HasDest("ld.shared.f32") {
		t.Error("shared load has a destination")
	}
	// Plain global accesses keep their classes.
	if ClassOf("ld.global.f32") != ClassLoad || ClassOf("st.global.f32") != ClassStore {
		t.Error("global accesses misclassified")
	}
}
