package ptx

import (
	"strings"
	"sync"
)

// NumClasses is the number of distinct Class values, including
// ClassUnknown. Fixed-size histograms indexed by Class use it as their
// array length.
const NumClasses = int(ClassControl) + 1

// OpInfo is the pre-decoded form of one full opcode. Interpreters that
// revisit the same instruction many times (the dynamic code analysis
// walks loop bodies once per iteration) decode the opcode once and keep
// the OpInfo instead of re-splitting the string on every step.
type OpInfo struct {
	// Root is the opcode text before the first '.' ("setp.lt.s32" -> "setp").
	Root string
	// Cmp is the second dotted field — the comparison mnemonic for setp
	// opcodes ("setp.lt.s32" -> "lt") — or "" when absent.
	Cmp string
	// Class is ClassOf(opcode).
	Class Class
	// Branch, Exit, Barrier and Dest mirror IsBranch, IsExit, IsBarrier
	// and HasDest.
	Branch, Exit, Barrier, Dest bool
}

// opInfoCache interns decoded opcodes. Opcode strings come from a small
// fixed vocabulary (the generator emits a few dozen distinct spellings),
// so the map stays tiny and read-mostly — exactly sync.Map's sweet spot.
var opInfoCache sync.Map // string -> OpInfo

// Decode returns the pre-decoded form of a full opcode, memoized
// process-wide by opcode spelling.
func Decode(opcode string) OpInfo {
	if v, ok := opInfoCache.Load(opcode); ok {
		return v.(OpInfo)
	}
	info := decodeOpcode(opcode)
	opInfoCache.Store(opcode, info)
	return info
}

func decodeOpcode(opcode string) OpInfo {
	root, rest, _ := strings.Cut(opcode, ".")
	cmp, _, _ := strings.Cut(rest, ".")
	c := ClassOf(opcode)
	return OpInfo{
		Root:    root,
		Cmp:     cmp,
		Class:   c,
		Branch:  c == ClassBranch,
		Exit:    c == ClassControl,
		Barrier: c == ClassSync,
		Dest:    hasDestClass(c),
	}
}

// hasDestClass is HasDest keyed by the already-computed class.
func hasDestClass(c Class) bool {
	switch c {
	case ClassStore, ClassStoreShared, ClassBranch, ClassSync, ClassControl, ClassUnknown:
		return false
	}
	return true
}
