// Package ptx models NVIDIA's Parallel Thread Execution (PTX) virtual ISA
// at the level the paper's dynamic code analysis requires: typed
// instructions over virtual registers, predicates, branches and labels,
// kernels with parameters, and a text form compatible with the fragments
// the paper shows (Fig. 2). It contains an instruction-set table, a
// module/kernel object model, a parser for the generated subset and a
// printer; parse(print(m)) == m.
package ptx

import "strings"

// Class buckets opcodes by execution resource, mirroring how GPU timing
// models charge instructions to functional units.
type Class int

const (
	// ClassUnknown marks opcodes outside the table.
	ClassUnknown Class = iota
	// ClassIntALU covers 32/64-bit integer and logical operations.
	ClassIntALU
	// ClassFP32 covers single-precision add/mul/min/max.
	ClassFP32
	// ClassFMA covers fused multiply-add (the GEMM workhorse).
	ClassFMA
	// ClassSFU covers special-function approximations (rcp, ex2, ...).
	ClassSFU
	// ClassLoad covers global/param memory reads.
	ClassLoad
	// ClassStore covers global memory writes.
	ClassStore
	// ClassLoadShared covers on-chip shared-memory reads.
	ClassLoadShared
	// ClassStoreShared covers on-chip shared-memory writes.
	ClassStoreShared
	// ClassCompare covers predicate-setting comparisons.
	ClassCompare
	// ClassMove covers register moves and selects.
	ClassMove
	// ClassConvert covers type conversions and address-space casts.
	ClassConvert
	// ClassBranch covers control transfers.
	ClassBranch
	// ClassSync covers barriers.
	ClassSync
	// ClassControl covers ret/exit.
	ClassControl
)

// String returns a short class mnemonic.
func (c Class) String() string {
	switch c {
	case ClassIntALU:
		return "int"
	case ClassFP32:
		return "fp32"
	case ClassFMA:
		return "fma"
	case ClassSFU:
		return "sfu"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassLoadShared:
		return "ld.shared"
	case ClassStoreShared:
		return "st.shared"
	case ClassCompare:
		return "cmp"
	case ClassMove:
		return "mov"
	case ClassConvert:
		return "cvt"
	case ClassBranch:
		return "branch"
	case ClassSync:
		return "sync"
	case ClassControl:
		return "ctl"
	default:
		return "unknown"
	}
}

// Classes lists every concrete class once, in a stable order, for
// histogram construction.
var Classes = []Class{
	ClassIntALU, ClassFP32, ClassFMA, ClassSFU, ClassLoad, ClassStore,
	ClassLoadShared, ClassStoreShared,
	ClassCompare, ClassMove, ClassConvert, ClassBranch, ClassSync, ClassControl,
}

// rootClass maps the opcode root (text before the first '.') to a class.
var rootClass = map[string]Class{
	"add": ClassIntALU, "sub": ClassIntALU, "mul": ClassIntALU,
	"mad": ClassIntALU, "div": ClassIntALU, "rem": ClassIntALU,
	"min": ClassIntALU, "max": ClassIntALU, "abs": ClassIntALU,
	"neg": ClassIntALU, "and": ClassIntALU, "or": ClassIntALU,
	"xor": ClassIntALU, "not": ClassIntALU, "shl": ClassIntALU,
	"shr": ClassIntALU,
	"fma": ClassFMA,
	"rcp": ClassSFU, "sqrt": ClassSFU, "rsqrt": ClassSFU,
	"ex2": ClassSFU, "lg2": ClassSFU, "sin": ClassSFU, "cos": ClassSFU,
	"ld":     ClassLoad,
	"st":     ClassStore,
	"setp":   ClassCompare,
	"mov":    ClassMove,
	"selp":   ClassMove,
	"cvt":    ClassConvert,
	"cvta":   ClassConvert,
	"bra":    ClassBranch,
	"bar":    ClassSync,
	"ret":    ClassControl,
	"exit":   ClassControl,
	"trap":   ClassControl,
	"membar": ClassSync,
}

// ClassOf determines the execution class of a full opcode such as
// "fma.rn.f32" or "ld.global.f32". Floating-point arithmetic on the
// int-ALU roots (add.f32, mul.f32, ...) is reclassified to ClassFP32,
// and double/approx divisions to the SFU.
func ClassOf(opcode string) Class {
	root, rest, _ := strings.Cut(opcode, ".")
	c, ok := rootClass[root]
	if !ok {
		return ClassUnknown
	}
	if strings.Contains(rest, "shared") {
		switch c {
		case ClassLoad:
			return ClassLoadShared
		case ClassStore:
			return ClassStoreShared
		}
	}
	if c == ClassIntALU && rest != "" {
		if strings.Contains(rest, "f32") || strings.Contains(rest, "f64") {
			if root == "div" {
				return ClassSFU
			}
			return ClassFP32
		}
	}
	return c
}

// IsBranch reports whether the opcode transfers control.
func IsBranch(opcode string) bool { return ClassOf(opcode) == ClassBranch }

// IsBarrier reports whether the opcode is a synchronisation barrier.
func IsBarrier(opcode string) bool { return ClassOf(opcode) == ClassSync }

// IsExit reports whether the opcode terminates the thread.
func IsExit(opcode string) bool { return ClassOf(opcode) == ClassControl }

// HasDest reports whether the first operand of the opcode is a
// destination register (everything except stores, branches, barriers and
// control opcodes in our subset).
func HasDest(opcode string) bool { return hasDestClass(ClassOf(opcode)) }
