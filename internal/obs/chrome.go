package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// Chrome trace_event export: the recorded span forest becomes a JSON
// document loadable by chrome://tracing and Perfetto. Every span is a
// complete ("X") event; concurrent siblings are spread across thread
// lanes so each lane holds only properly nested or disjoint events.

// chromeEvent is one trace_event record.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`            // microseconds since trace epoch
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the exported document shape. OtherData carries the
// absolute trace epoch (`epoch_unix_ns`, a string — Unix nanoseconds
// exceed exact float64 integers) so `obscheck stitch` can align
// documents from different processes onto one clock.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// epochKey is the otherData field holding the absolute trace epoch.
const epochKey = "epoch_unix_ns"

// processNameEvent builds the metadata event naming a trace process.
func processNameEvent(pid int, name string) chromeEvent {
	return chromeEvent{
		Name: "process_name", Ph: "M", PID: pid, TID: 0,
		Args: map[string]any{"name": name},
	}
}

// writeChromeDoc sorts events by timestamp and encodes the document,
// stamping the absolute epoch into otherData.
func writeChromeDoc(w io.Writer, events []chromeEvent, epoch time.Time) error {
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{epochKey: strconv.FormatInt(epoch.UnixNano(), 10)},
	})
}

// WriteChromeTrace exports the recorded spans as Chrome trace_event
// JSON. Spans not yet ended are exported with zero duration and an
// "unfinished" arg rather than being dropped.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	epoch := t.Epoch()
	events := []chromeEvent{processNameEvent(1, "cnnperf")}
	lanes := &laneAllocator{}
	roots := t.Roots()
	sortByStart(roots)
	for _, lane := range assignLanes(roots, lanes, -1, time.Time{}) {
		events = appendSpanEvents(events, lane.span, 1, lane.tid, lanes, epoch)
	}
	return writeChromeDoc(w, events, epoch)
}

// laneAllocator hands out process-wide thread-lane ids.
type laneAllocator struct{ next int }

func (a *laneAllocator) alloc() int {
	id := a.next
	a.next++
	return id
}

type placedSpan struct {
	span *Span
	tid  int
}

// assignLanes partitions sibling spans into lanes so events in one
// lane never partially overlap: the first non-overlapping sibling
// reuses the parent's lane (parentTID), the rest open fresh lanes.
// Chrome's viewer renders each lane as a nesting track, so this keeps
// concurrent children visually side by side instead of garbled.
//
// parentEnd bounds reuse of the parent's lane: a child that outlives
// its parent (an abandoned request whose batched work continues) must
// not share the parent's lane or the events would partially overlap,
// so it opens a fresh lane instead. Zero means unbounded.
func assignLanes(siblings []*Span, lanes *laneAllocator, parentTID int, parentEnd time.Time) []placedSpan {
	type laneState struct {
		tid        int
		end, limit time.Time
	}
	var open []laneState
	if parentTID >= 0 {
		open = append(open, laneState{tid: parentTID, limit: parentEnd})
	}
	out := make([]placedSpan, 0, len(siblings))
	for _, s := range siblings {
		_, _, dur, _ := s.snapshot()
		end := s.start.Add(dur)
		placed := false
		for i := range open {
			if !open[i].end.After(s.start) && (open[i].limit.IsZero() || !end.After(open[i].limit)) {
				open[i].end = end
				out = append(out, placedSpan{span: s, tid: open[i].tid})
				placed = true
				break
			}
		}
		if !placed {
			tid := lanes.alloc()
			open = append(open, laneState{tid: tid, end: end})
			out = append(out, placedSpan{span: s, tid: tid})
		}
	}
	return out
}

func appendSpanEvents(events []chromeEvent, s *Span, pid, tid int, lanes *laneAllocator, epoch time.Time) []chromeEvent {
	attrs, children, dur, ended := s.snapshot()
	ev := chromeEvent{
		Name: s.name,
		Ph:   "X",
		PID:  pid,
		TID:  tid,
		TS:   float64(s.start.Sub(epoch).Nanoseconds()) / 1e3,
		Dur:  float64(dur.Nanoseconds()) / 1e3,
	}
	ev.Args = make(map[string]any, len(attrs)+4)
	for _, a := range attrs {
		ev.Args[a.Key] = attrValue(a.Value)
	}
	if !ended {
		ev.Args["unfinished"] = true
	}
	if !s.traceID.IsZero() {
		ev.Args["trace_id"] = s.traceID.String()
		ev.Args["span_id"] = s.spanID.String()
		if !s.parentID.IsZero() {
			ev.Args["parent_span_id"] = s.parentID.String()
		}
	}
	if len(ev.Args) == 0 {
		ev.Args = nil
	}
	events = append(events, ev)
	sortByStart(children)
	for _, lane := range assignLanes(children, lanes, tid, s.start.Add(dur)) {
		events = appendSpanEvents(events, lane.span, pid, lane.tid, lanes, epoch)
	}
	return events
}

// attrValue maps attribute values onto JSON-friendly types.
func attrValue(v any) any {
	switch x := v.(type) {
	case time.Duration:
		return x.String()
	case error:
		return x.Error()
	default:
		return v
	}
}

// ValidateChromeTrace checks that data is a well-formed Chrome
// trace_event document: a JSON array of events or an object with a
// traceEvents array, every event carrying a name, a known phase, and
// non-negative timestamps, and events within one (pid, tid) lane
// either disjoint or properly nested. It returns the "X" span names
// seen, so callers can assert specific stages were traced.
func ValidateChromeTrace(data []byte) (spanNames []string, err error) {
	var doc chromeTrace
	if err := json.Unmarshal(data, &doc); err != nil {
		var arr []chromeEvent
		if err2 := json.Unmarshal(data, &arr); err2 != nil {
			return nil, fmt.Errorf("chrome trace: not a trace document: %w", err)
		}
		doc.TraceEvents = arr
	}
	if len(doc.TraceEvents) == 0 {
		return nil, fmt.Errorf("chrome trace: no events")
	}
	type interval struct{ start, end float64 }
	byLane := make(map[[2]int][]interval)
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return nil, fmt.Errorf("chrome trace: event %d has no name", i)
		}
		switch ev.Ph {
		case "X", "B", "E", "M", "i", "C":
		default:
			return nil, fmt.Errorf("chrome trace: event %d (%s) has unknown phase %q", i, ev.Name, ev.Ph)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			return nil, fmt.Errorf("chrome trace: event %d (%s) has negative time", i, ev.Name)
		}
		if ev.Ph == "X" {
			spanNames = append(spanNames, ev.Name)
			lane := [2]int{ev.PID, ev.TID}
			byLane[lane] = append(byLane[lane], interval{start: ev.TS, end: ev.TS + ev.Dur})
		}
	}
	// Within one lane, sorted events must form a valid nesting: each
	// event either fits inside the enclosing open interval or starts
	// after it ends.
	const slack = 1e-3 // µs tolerance for float rounding
	for lane, ivs := range byLane {
		sort.Slice(ivs, func(i, j int) bool {
			if ivs[i].start != ivs[j].start {
				return ivs[i].start < ivs[j].start
			}
			return ivs[i].end > ivs[j].end // container first
		})
		var stack []interval
		for _, iv := range ivs {
			for len(stack) > 0 && stack[len(stack)-1].end <= iv.start+slack {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && iv.end > stack[len(stack)-1].end+slack {
				return nil, fmt.Errorf("chrome trace: lane %v has partially overlapping events ([%f,%f] vs [%f,%f])",
					lane, iv.start, iv.end, stack[len(stack)-1].start, stack[len(stack)-1].end)
			}
			stack = append(stack, iv)
		}
	}
	return spanNames, nil
}
