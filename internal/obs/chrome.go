package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Chrome trace_event export: the recorded span forest becomes a JSON
// document loadable by chrome://tracing and Perfetto. Every span is a
// complete ("X") event; concurrent siblings are spread across thread
// lanes so each lane holds only properly nested or disjoint events.

// chromeEvent is one trace_event record.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`            // microseconds since trace epoch
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the exported document shape.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the recorded spans as Chrome trace_event
// JSON. Spans not yet ended are exported with zero duration and an
// "unfinished" arg rather than being dropped.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := []chromeEvent{{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "cnnperf"},
	}}
	lanes := &laneAllocator{}
	roots := t.Roots()
	sortByStart(roots)
	for _, lane := range assignLanes(roots, lanes, -1) {
		events = appendSpanEvents(events, lane.span, lane.tid, lanes, t.epoch)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// laneAllocator hands out process-wide thread-lane ids.
type laneAllocator struct{ next int }

func (a *laneAllocator) alloc() int {
	id := a.next
	a.next++
	return id
}

type placedSpan struct {
	span *Span
	tid  int
}

// assignLanes partitions sibling spans into lanes so events in one
// lane never partially overlap: the first non-overlapping sibling
// reuses the parent's lane (parentTID), the rest open fresh lanes.
// Chrome's viewer renders each lane as a nesting track, so this keeps
// concurrent children visually side by side instead of garbled.
func assignLanes(siblings []*Span, lanes *laneAllocator, parentTID int) []placedSpan {
	type laneState struct {
		tid int
		end time.Time
	}
	var open []laneState
	if parentTID >= 0 {
		open = append(open, laneState{tid: parentTID})
	}
	out := make([]placedSpan, 0, len(siblings))
	for _, s := range siblings {
		_, _, dur, _ := s.snapshot()
		end := s.start.Add(dur)
		placed := false
		for i := range open {
			if !open[i].end.After(s.start) {
				open[i].end = end
				out = append(out, placedSpan{span: s, tid: open[i].tid})
				placed = true
				break
			}
		}
		if !placed {
			tid := lanes.alloc()
			open = append(open, laneState{tid: tid, end: end})
			out = append(out, placedSpan{span: s, tid: tid})
		}
	}
	return out
}

func appendSpanEvents(events []chromeEvent, s *Span, tid int, lanes *laneAllocator, epoch time.Time) []chromeEvent {
	attrs, children, dur, ended := s.snapshot()
	ev := chromeEvent{
		Name: s.name,
		Ph:   "X",
		PID:  1,
		TID:  tid,
		TS:   float64(s.start.Sub(epoch).Nanoseconds()) / 1e3,
		Dur:  float64(dur.Nanoseconds()) / 1e3,
	}
	if len(attrs) > 0 || !ended {
		ev.Args = make(map[string]any, len(attrs)+1)
		for _, a := range attrs {
			ev.Args[a.Key] = attrValue(a.Value)
		}
		if !ended {
			ev.Args["unfinished"] = true
		}
	}
	events = append(events, ev)
	sortByStart(children)
	for _, lane := range assignLanes(children, lanes, tid) {
		events = appendSpanEvents(events, lane.span, lane.tid, lanes, epoch)
	}
	return events
}

// attrValue maps attribute values onto JSON-friendly types.
func attrValue(v any) any {
	switch x := v.(type) {
	case time.Duration:
		return x.String()
	case error:
		return x.Error()
	default:
		return v
	}
}

// ValidateChromeTrace checks that data is a well-formed Chrome
// trace_event document: a JSON array of events or an object with a
// traceEvents array, every event carrying a name, a known phase, and
// non-negative timestamps, and events within one (pid, tid) lane
// either disjoint or properly nested. It returns the "X" span names
// seen, so callers can assert specific stages were traced.
func ValidateChromeTrace(data []byte) (spanNames []string, err error) {
	var doc chromeTrace
	if err := json.Unmarshal(data, &doc); err != nil {
		var arr []chromeEvent
		if err2 := json.Unmarshal(data, &arr); err2 != nil {
			return nil, fmt.Errorf("chrome trace: not a trace document: %w", err)
		}
		doc.TraceEvents = arr
	}
	if len(doc.TraceEvents) == 0 {
		return nil, fmt.Errorf("chrome trace: no events")
	}
	type interval struct{ start, end float64 }
	byLane := make(map[[2]int][]interval)
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return nil, fmt.Errorf("chrome trace: event %d has no name", i)
		}
		switch ev.Ph {
		case "X", "B", "E", "M", "i", "C":
		default:
			return nil, fmt.Errorf("chrome trace: event %d (%s) has unknown phase %q", i, ev.Name, ev.Ph)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			return nil, fmt.Errorf("chrome trace: event %d (%s) has negative time", i, ev.Name)
		}
		if ev.Ph == "X" {
			spanNames = append(spanNames, ev.Name)
			lane := [2]int{ev.PID, ev.TID}
			byLane[lane] = append(byLane[lane], interval{start: ev.TS, end: ev.TS + ev.Dur})
		}
	}
	// Within one lane, sorted events must form a valid nesting: each
	// event either fits inside the enclosing open interval or starts
	// after it ends.
	const slack = 1e-3 // µs tolerance for float rounding
	for lane, ivs := range byLane {
		sort.Slice(ivs, func(i, j int) bool {
			if ivs[i].start != ivs[j].start {
				return ivs[i].start < ivs[j].start
			}
			return ivs[i].end > ivs[j].end // container first
		})
		var stack []interval
		for _, iv := range ivs {
			for len(stack) > 0 && stack[len(stack)-1].end <= iv.start+slack {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && iv.end > stack[len(stack)-1].end+slack {
				return nil, fmt.Errorf("chrome trace: lane %v has partially overlapping events ([%f,%f] vs [%f,%f])",
					lane, iv.start, iv.end, stack[len(stack)-1].start, stack[len(stack)-1].end)
			}
			stack = append(stack, iv)
		}
	}
	return spanNames, nil
}
