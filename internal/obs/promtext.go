package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the content type of the text exposition
// format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in Prometheus text
// exposition format, families sorted by name, series sorted by label
// values. Func-backed metrics are evaluated at exposition time.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind.promType())
		switch f.kind {
		case kindCounterFunc, kindGaugeFunc:
			fmt.Fprintf(bw, "%s %s\n", f.name, formatPromValue(f.fn()))
			continue
		}
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		series := make(map[string]any, len(keys))
		for _, k := range keys {
			series[k] = f.series[k]
		}
		f.mu.Unlock()
		sort.Strings(keys)
		for _, key := range keys {
			labels := promLabels(f.labelNames, key)
			switch inst := series[key].(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labels, inst.Value())
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labels, formatPromValue(inst.Value()))
			case *Histogram:
				writePromHistogram(bw, f.name, f.labelNames, key, inst.Snapshot())
			}
		}
	}
	return bw.Flush()
}

func writePromHistogram(w io.Writer, name string, labelNames []string, key string, s HistogramSnapshot) {
	for i, bound := range s.Bounds {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name,
			promLabelsExtra(labelNames, key, "le", formatPromValue(bound)), s.Buckets[i])
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name,
		promLabelsExtra(labelNames, key, "le", "+Inf"), s.Count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(labelNames, key), formatPromValue(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(labelNames, key), s.Count)
}

func promLabels(names []string, key string) string {
	return promLabelsExtra(names, key, "", "")
}

// promLabelsExtra renders a label set, optionally with one extra pair
// (histograms append le).
func promLabelsExtra(names []string, key, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	values := strings.Split(key, labelSep)
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, n := range names {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		// Go %q quoting matches the Prometheus escapes (\\, \", \n).
		fmt.Fprintf(&b, "%s=%q", n, v)
	}
	if extraName != "" {
		if !first {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(h string) string {
	return strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(h)
}

func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ValidatePrometheusText is an in-tree, dependency-free replacement
// for `promtool check metrics`: it checks that r holds a well-formed
// Prometheus text exposition. Verified properties:
//
//   - comment lines are well-formed HELP/TYPE lines with valid metric
//     names and known types, and TYPE precedes the family's samples;
//   - sample lines parse (name, optional label set, float value) with
//     valid metric and label names and balanced quoting;
//   - no duplicate series (same name + label set);
//   - histogram families have a +Inf bucket whose count equals _count,
//     and cumulative bucket counts are non-decreasing.
//
// It returns the number of samples on success.
func ValidatePrometheusText(r io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	typeOf := make(map[string]string)
	sampled := make(map[string]bool) // family -> samples seen
	seen := make(map[string]bool)    // full series key
	type histState struct {
		buckets  []float64
		counts   []int64
		infCount int64
		hasInf   bool
		count    int64
		hasCount bool
		labels   string
	}
	hists := make(map[string]*histState) // family+labels(without le)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				if strings.HasPrefix(line, "# HELP") || strings.HasPrefix(line, "# TYPE") {
					return 0, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
				}
				continue // free-form comment
			}
			name := fields[2]
			if !metricNameRE.MatchString(name) {
				return 0, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return 0, fmt.Errorf("line %d: TYPE line missing type", lineNo)
				}
				typ := fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return 0, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := typeOf[name]; dup {
					return 0, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if sampled[name] {
					return 0, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				typeOf[name] = typ
			}
			continue
		}
		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return 0, fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples++
		family := histFamily(name, typeOf)
		sampled[family] = true
		serieKey := name + "\x00" + labels
		if seen[serieKey] {
			return 0, fmt.Errorf("line %d: duplicate series %s{%s}", lineNo, name, labels)
		}
		seen[serieKey] = true
		if typeOf[family] == "histogram" {
			st := hists[family+"\x00"+stripLE(labels)]
			if st == nil {
				st = &histState{labels: labels}
				hists[family+"\x00"+stripLE(labels)] = st
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, ok := labelValue(labels, "le")
				if !ok {
					return 0, fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				}
				if le == "+Inf" {
					st.hasInf = true
					st.infCount = int64(value)
				} else {
					bound, err := strconv.ParseFloat(le, 64)
					if err != nil {
						return 0, fmt.Errorf("line %d: bad le value %q", lineNo, le)
					}
					st.buckets = append(st.buckets, bound)
					st.counts = append(st.counts, int64(value))
				}
			case strings.HasSuffix(name, "_count"):
				st.hasCount = true
				st.count = int64(value)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	for fam, st := range hists {
		name := strings.SplitN(fam, "\x00", 2)[0]
		if !st.hasInf {
			return 0, fmt.Errorf("histogram %s: no +Inf bucket", name)
		}
		if st.hasCount && st.infCount != st.count {
			return 0, fmt.Errorf("histogram %s: +Inf bucket %d != _count %d", name, st.infCount, st.count)
		}
		// Bucket lines were emitted in le order; enforce cumulative
		// monotonicity over that order.
		for i := 1; i < len(st.counts); i++ {
			if st.buckets[i] <= st.buckets[i-1] {
				return 0, fmt.Errorf("histogram %s: bucket bounds not ascending", name)
			}
			if st.counts[i] < st.counts[i-1] {
				return 0, fmt.Errorf("histogram %s: cumulative bucket counts decrease", name)
			}
		}
		if len(st.counts) > 0 && st.infCount < st.counts[len(st.counts)-1] {
			return 0, fmt.Errorf("histogram %s: +Inf bucket below last bound bucket", name)
		}
	}
	if samples == 0 {
		return 0, fmt.Errorf("no samples")
	}
	return samples, nil
}

// histFamily maps a sample name to its family name: _bucket/_sum/_count
// suffixes belong to the base histogram family when one is declared.
func histFamily(name string, typeOf map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if typeOf[base] == "histogram" || typeOf[base] == "summary" {
				return base
			}
		}
	}
	return name
}

// parsePromSample parses one sample line into name, canonical label
// string and value.
func parsePromSample(line string) (name, labels string, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !metricNameRE.MatchString(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end, perr := parseLabelSet(rest)
		if perr != nil {
			return "", "", 0, perr
		}
		labels = rest[1 : end-1]
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad sample value %q", fields[0])
	}
	if len(fields) == 2 { // optional timestamp
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", "", 0, fmt.Errorf("bad sample timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// parseLabelSet scans a {name="value",...} block starting at s[0]=='{'
// and returns the index just past the closing brace.
func parseLabelSet(s string) (end int, err error) {
	i := 1
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j >= len(s) || !labelNameRE.MatchString(s[i:j]) {
			return 0, fmt.Errorf("invalid label name in %q", s)
		}
		i = j + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		i++
	}
}

// labelValue extracts one label's value from a canonical label string.
func labelValue(labels, name string) (string, bool) {
	rest := labels
	for rest != "" {
		rest = strings.TrimLeft(rest, ", ")
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return "", false
		}
		ln := rest[:eq]
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return "", false
		}
		// find closing quote honouring escapes
		i := 1
		for i < len(rest) && rest[i] != '"' {
			if rest[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(rest) {
			return "", false
		}
		val := rest[1:i]
		rest = rest[i+1:]
		if ln == name {
			return val, true
		}
	}
	return "", false
}

// stripLE removes the le label from a canonical label string so bucket
// series of one histogram share a key.
func stripLE(labels string) string {
	var parts []string
	rest := labels
	for rest != "" {
		rest = strings.TrimLeft(rest, ", ")
		if rest == "" {
			break
		}
		eq := strings.Index(rest, "=")
		if eq < 0 {
			break
		}
		ln := rest[:eq]
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			break
		}
		i := 1
		for i < len(rest) && rest[i] != '"' {
			if rest[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(rest) {
			break
		}
		pair := ln + "=" + rest[:i+1]
		rest = rest[i+1:]
		if ln != "le" {
			parts = append(parts, pair)
		}
	}
	return strings.Join(parts, ",")
}
