package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// The metrics registry: counters, gauges and histograms, optionally
// labelled, registered by name and exported in Prometheus text format.
// Observation paths are lock-free (atomics); only series creation and
// exposition take locks.

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by d (negative deltas are ignored —
// counters only go up).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add offsets the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket counting histogram with atomic counters.
type Histogram struct {
	bounds  []float64 // inclusive upper bounds, ascending
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogramInstrument(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := len(h.bounds)
	for b, bound := range h.bounds {
		if v <= bound {
			i = b
			break
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time view of a histogram with
// cumulative bucket counts (Prometheus semantics). The final bucket is
// the implicit +Inf bucket.
type HistogramSnapshot struct {
	Count   int64
	Sum     float64
	Bounds  []float64 // upper bounds, excluding +Inf
	Buckets []int64   // cumulative counts, len(Bounds)+1 (last = +Inf = Count)
}

// Snapshot captures the histogram state. Counters may be mutually
// skewed by in-flight observations; each is individually consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sumBits.Load()),
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.bounds)+1),
	}
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Buckets[i] = cum
	}
	return s
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is one registered metric name: its metadata and every
// labelled series under it.
type family struct {
	name       string
	help       string
	kind       metricKind
	labelNames []string
	buckets    []float64
	fn         func() float64 // kindCounterFunc / kindGaugeFunc

	mu     sync.Mutex
	series map[string]any // label-values key -> *Counter | *Gauge | *Histogram
	order  []string       // insertion order of series keys
}

const labelSep = "\xff"

func (f *family) instrument(labelValues []string) any {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %s expects %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if inst, ok := f.series[key]; ok {
		return inst
	}
	var inst any
	switch f.kind {
	case kindCounter:
		inst = &Counter{}
	case kindGauge:
		inst = &Gauge{}
	case kindHistogram:
		inst = newHistogramInstrument(f.buckets)
	default:
		panic(fmt.Sprintf("obs: metric %s is a func metric; it has no settable series", f.name))
	}
	f.series[key] = inst
	f.order = append(f.order, key)
	return inst
}

// Registry holds the registered metric families. The zero value is not
// usable; construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
var labelNameRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

func (r *Registry) register(name, help string, kind metricKind, labelNames []string, buckets []float64, fn func() float64) *family {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, ln := range labelNames {
		if !labelNameRE.MatchString(ln) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, ln))
		}
	}
	if kind == kindHistogram {
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic(fmt.Sprintf("obs: metric %s: bucket bounds not ascending", name))
			}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different shape", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labelNames: append([]string(nil), labelNames...),
		buckets:    append([]float64(nil), buckets...),
		fn:         fn,
		series:     make(map[string]any),
	}
	r.families[name] = f
	return f
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil, nil).instrument(nil).(*Counter)
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil, nil).instrument(nil).(*Gauge)
}

// Histogram registers (or fetches) an unlabelled histogram with the
// given ascending bucket bounds.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, kindHistogram, nil, buckets, nil).instrument(nil).(*Histogram)
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge for pre-existing atomic counters
// (cache hits, pool task counts) that should not be double-counted.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, kindCounterFunc, nil, nil, fn)
}

// GaugeFunc registers a gauge whose value is read from fn at
// exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGaugeFunc, nil, nil, fn)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, labelNames, nil, nil)}
}

// With returns the counter for the given label values (created on
// first use).
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.instrument(labelValues).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, labelNames, nil, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.instrument(labelValues).(*Gauge)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, kindHistogram, labelNames, buckets, nil)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.instrument(labelValues).(*Histogram)
}

// sortedFamilies snapshots the families in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
