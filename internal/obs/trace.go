package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects a forest of spans. One tracer typically covers one
// CLI invocation or one daemon request; it is safe for concurrent use
// by the worker pool (children of one span may start and end on many
// goroutines).
type Tracer struct {
	epoch time.Time

	mu    sync.Mutex
	roots []*Span

	// sampler decides per root span whether to record it (nil = always).
	// Descendants of an unsampled root are suppressed with it.
	sampler func(root string) bool
	limit   atomic.Int64 // max recorded spans (0 = unlimited)

	spans   atomic.Int64
	dropped atomic.Int64
}

// NewTracer returns an always-on tracer with no span limit.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// SetSampler installs a per-root sampling decision. The sampler sees
// the root span name; returning false suppresses that root and every
// descendant. Child spans always follow their root's decision, so a
// sampled trace is never missing interior nodes.
func (t *Tracer) SetSampler(f func(root string) bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sampler = f
}

// SetLimit bounds the number of recorded spans (0 = unlimited). Spans
// started beyond the limit are counted as dropped and not recorded;
// their descendants attach to the nearest recorded ancestor.
func (t *Tracer) SetLimit(n int) {
	t.limit.Store(int64(n))
}

// NthSampler returns a deterministic sampler admitting every n-th root
// span (n <= 1 admits all).
func NthSampler(n int) func(string) bool {
	if n <= 1 {
		return func(string) bool { return true }
	}
	var c atomic.Int64
	return func(string) bool { return (c.Add(1)-1)%int64(n) == 0 }
}

// SpanCount reports the number of recorded spans.
func (t *Tracer) SpanCount() int { return int(t.spans.Load()) }

// Dropped reports the number of spans suppressed by the span limit
// (sampled-out roots are not counted; sampling is policy, not loss).
func (t *Tracer) Dropped() int { return int(t.dropped.Load()) }

// Roots returns the recorded root spans in start order.
func (t *Tracer) Roots() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Span is one timed region of the pipeline. Spans nest: a span started
// under a context carrying another span becomes its child. All methods
// are safe on a nil receiver, so instrumented code never checks
// whether tracing is enabled.
type Span struct {
	tracer *Tracer
	name   string
	start  time.Time

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
	dur      time.Duration
	ended    bool
}

// suppressed marks a context whose root span was sampled out: Start
// under it records nothing, and deeper descendants stay suppressed.
var suppressed = &Span{}

// Start begins a span named name under ctx. The returned context
// carries the new span, so nested Start calls build a tree; the
// returned span may be nil (no tracer installed, sampled out, or over
// the span limit) and is safe to use anyway.
//
// The caller must End the span; spans not ended by export time are
// rendered with zero duration and an "unfinished" marker.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if parent, ok := ctx.Value(spanKey).(*Span); ok {
		if parent == suppressed {
			return ctx, nil
		}
		sp := parent.newChild(name, attrs)
		if sp == nil {
			return ctx, nil // over limit: descendants attach to parent
		}
		return context.WithValue(ctx, spanKey, sp), sp
	}
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	sp := t.newRoot(name, attrs)
	if sp == nil {
		return context.WithValue(ctx, spanKey, suppressed), nil
	}
	return context.WithValue(ctx, spanKey, sp), sp
}

// SpanFrom returns the span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey).(*Span)
	if sp == suppressed {
		return nil
	}
	return sp
}

func (t *Tracer) newRoot(name string, attrs []Attr) *Span {
	t.mu.Lock()
	sampler := t.sampler
	t.mu.Unlock()
	if sampler != nil && !sampler(name) {
		return nil
	}
	if limit := t.limit.Load(); limit > 0 && t.spans.Load() >= limit {
		t.dropped.Add(1)
		return nil
	}
	sp := &Span{tracer: t, name: name, start: time.Now(), attrs: attrs}
	t.spans.Add(1)
	t.mu.Lock()
	t.roots = append(t.roots, sp)
	t.mu.Unlock()
	return sp
}

func (s *Span) newChild(name string, attrs []Attr) *Span {
	t := s.tracer
	if limit := t.limit.Load(); limit > 0 && t.spans.Load() >= limit {
		t.dropped.Add(1)
		return nil
	}
	child := &Span{tracer: t, name: name, start: time.Now(), attrs: attrs}
	t.spans.Add(1)
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// End stops the span's clock. End is idempotent and nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// SetAttr appends attributes to the span. Nil-safe.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span duration (zero until End, and on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Children returns a snapshot of the child spans in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// snapshot copies the mutable state under the span lock.
func (s *Span) snapshot() (attrs []Attr, children []*Span, dur time.Duration, ended bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...), append([]*Span(nil), s.children...), s.dur, s.ended
}

// Tree renders the recorded spans as a human-readable indented tree
// with durations and attributes.
func (t *Tracer) Tree() string {
	var b strings.Builder
	for _, r := range t.Roots() {
		writeTree(&b, r, 0)
	}
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(&b, "(+%d spans dropped by limit)\n", d)
	}
	return b.String()
}

func writeTree(b *strings.Builder, s *Span, depth int) {
	attrs, children, dur, ended := s.snapshot()
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(s.name)
	if ended {
		fmt.Fprintf(b, " %s", dur.Round(time.Microsecond))
	} else {
		b.WriteString(" (unfinished)")
	}
	for _, a := range attrs {
		fmt.Fprintf(b, " %s=%v", a.Key, a.Value)
	}
	b.WriteByte('\n')
	sortByStart(children)
	for _, c := range children {
		writeTree(b, c, depth+1)
	}
}

func sortByStart(spans []*Span) {
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].start.Before(spans[j].start) })
}

// StageTotals aggregates the recorded spans by name: total duration
// and count per span name, for coarse stage attribution of a whole
// run. Unfinished spans contribute their count but no duration.
func (t *Tracer) StageTotals() map[string]StageTotal {
	out := make(map[string]StageTotal)
	var walk func(*Span)
	walk = func(s *Span) {
		_, children, dur, ended := s.snapshot()
		st := out[s.name]
		st.Count++
		if ended {
			st.Total += dur
		}
		out[s.name] = st
		for _, c := range children {
			walk(c)
		}
	}
	for _, r := range t.Roots() {
		walk(r)
	}
	return out
}

// StageTotal is one row of StageTotals.
type StageTotal struct {
	// Count is the number of spans with this name.
	Count int
	// Total is the summed duration of the ended ones.
	Total time.Duration
}
