package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects a forest of spans. One tracer typically covers one
// CLI invocation or one daemon request; it is safe for concurrent use
// by the worker pool (children of one span may start and end on many
// goroutines).
//
// A tracer can be pooled: Reset returns every recorded span to an
// internal freelist so the flight recorder's steady state allocates
// nothing, and Acquire/Release let detached work (the batching
// executor) pin a tracer against recycling while it still writes
// spans into it.
type Tracer struct {
	mu    sync.Mutex
	epoch time.Time
	roots []*Span

	// sampler decides per root span whether to record it (nil = always).
	// Descendants of an unsampled root are suppressed with it.
	sampler func(root string) bool
	limit   atomic.Int64 // max recorded spans (0 = unlimited)

	spans   atomic.Int64
	dropped atomic.Int64

	// idctr is the splitmix64 state for trace/span ID generation,
	// seeded once from crypto/rand.
	idctr atomic.Uint64

	// busy counts holders that may still start spans (Acquire/Release);
	// a pooled tracer is only recycled when it reaches zero.
	busy atomic.Int64

	freeMu sync.Mutex
	free   []*Span
}

// NewTracer returns an always-on tracer with no span limit.
func NewTracer() *Tracer {
	t := &Tracer{epoch: time.Now()}
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		t.idctr.Store(binary.BigEndian.Uint64(seed[:]))
	} else {
		t.idctr.Store(uint64(time.Now().UnixNano()))
	}
	return t
}

// Epoch returns the tracer's time origin (creation or last Reset);
// exported Chrome trace timestamps are relative to it.
func (t *Tracer) Epoch() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// SetSampler installs a per-root sampling decision. The sampler sees
// the root span name; returning false suppresses that root and every
// descendant. Child spans always follow their root's decision, so a
// sampled trace is never missing interior nodes.
func (t *Tracer) SetSampler(f func(root string) bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sampler = f
}

// SetLimit bounds the number of recorded spans (0 = unlimited). Spans
// started beyond the limit are counted as dropped and not recorded;
// their descendants attach to the nearest recorded ancestor.
func (t *Tracer) SetLimit(n int) {
	t.limit.Store(int64(n))
}

// NthSampler returns a deterministic sampler admitting every n-th root
// span (n <= 1 admits all).
func NthSampler(n int) func(string) bool {
	if n <= 1 {
		return func(string) bool { return true }
	}
	var c atomic.Int64
	return func(string) bool { return (c.Add(1)-1)%int64(n) == 0 }
}

// SpanCount reports the number of recorded spans.
func (t *Tracer) SpanCount() int { return int(t.spans.Load()) }

// Dropped reports the number of spans suppressed by the span limit
// (sampled-out roots are not counted; sampling is policy, not loss).
func (t *Tracer) Dropped() int { return int(t.dropped.Load()) }

// Roots returns the recorded root spans in start order.
func (t *Tracer) Roots() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// peekRoot returns the first recorded root and the root count without
// copying — the flight recorder's allocation-free capture path.
func (t *Tracer) peekRoot() (*Span, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.roots) == 0 {
		return nil, 0
	}
	return t.roots[0], len(t.roots)
}

// Acquire pins the tracer against recycling: Reset callers (the
// flight-recorder pool) must not recycle a tracer while InUse reports
// true. Nil-safe.
func (t *Tracer) Acquire() {
	if t != nil {
		t.busy.Add(1)
	}
}

// Release undoes one Acquire. Nil-safe.
func (t *Tracer) Release() {
	if t != nil {
		t.busy.Add(-1)
	}
}

// InUse reports whether any Acquire is outstanding.
func (t *Tracer) InUse() bool { return t.busy.Load() > 0 }

// Reset detaches every recorded span into the tracer's freelist and
// rewinds the epoch, counters, and ID state for reuse, so a pooled
// tracer serves its next request without heap allocation. The caller
// must guarantee no goroutine still starts or reads spans (InUse
// false and all exports finished).
func (t *Tracer) Reset() {
	t.mu.Lock()
	// The exclusive-access contract lets us walk the forest in place:
	// no copies, so a pooled tracer's reset is allocation-free.
	for _, r := range t.roots {
		t.releaseTree(r)
	}
	for i := range t.roots {
		t.roots[i] = nil
	}
	t.roots = t.roots[:0]
	t.epoch = time.Now()
	t.mu.Unlock()
	t.spans.Store(0)
	t.dropped.Store(0)
}

// releaseTree recycles a span and its descendants into the freelist.
// Caller guarantees exclusive access (Reset's contract).
func (t *Tracer) releaseTree(s *Span) {
	for _, c := range s.children {
		t.releaseTree(c)
	}
	s.recycle()
	t.freeMu.Lock()
	t.free = append(t.free, s)
	t.freeMu.Unlock()
}

// allocSpan takes a span from the freelist or allocates a fresh one.
func (t *Tracer) allocSpan() *Span {
	t.freeMu.Lock()
	if n := len(t.free); n > 0 {
		sp := t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
		t.freeMu.Unlock()
		return sp
	}
	t.freeMu.Unlock()
	return &Span{tracer: t}
}

// splitmix64 is the SplitMix64 output finalizer; with a golden-ratio
// counter it yields a full-period, well-mixed 64-bit sequence.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func (t *Tracer) nextID() uint64 {
	return splitmix64(t.idctr.Add(0x9E3779B97F4A7C15))
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], t.nextID())
	if id.IsZero() {
		id[7] = 1
	}
	return id
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], t.nextID())
	binary.BigEndian.PutUint64(id[8:], t.nextID())
	if id.IsZero() {
		id[15] = 1
	}
	return id
}

// Span is one timed region of the pipeline. Spans nest: a span started
// under a context carrying another span becomes its child. All methods
// are safe on a nil receiver, so instrumented code never checks
// whether tracing is enabled.
type Span struct {
	tracer *Tracer
	name   string
	start  time.Time

	traceID  TraceID
	spanID   SpanID
	parentID SpanID

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
	dur      time.Duration
	ended    bool
}

// suppressed marks a context whose root span was sampled out: Start
// under it records nothing, and deeper descendants stay suppressed.
var suppressed = &Span{}

// Start begins a span named name under ctx. The returned context
// carries the new span, so nested Start calls build a tree; the
// returned span may be nil (no tracer installed, sampled out, or over
// the span limit) and is safe to use anyway.
//
// A root span adopts the remote trace context carried by ctx
// (WithRemoteParent), if any, so cross-process traces share one trace
// ID; otherwise it mints a fresh trace ID.
//
// The caller must End the span; spans not ended by export time are
// rendered with zero duration and an "unfinished" marker.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if parent, ok := ctx.Value(spanKey).(*Span); ok {
		if parent == suppressed {
			return ctx, nil
		}
		sp := parent.newChild(name, attrs)
		if sp == nil {
			return ctx, nil // over limit: descendants attach to parent
		}
		return context.WithValue(ctx, spanKey, sp), sp
	}
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	remote, _ := ctx.Value(remoteParentKey).(TraceContext)
	sp := t.newRoot(name, attrs, remote)
	if sp == nil {
		return context.WithValue(ctx, spanKey, suppressed), nil
	}
	return context.WithValue(ctx, spanKey, sp), sp
}

// SpanFrom returns the span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey).(*Span)
	if sp == suppressed {
		return nil
	}
	return sp
}

func (t *Tracer) newRoot(name string, attrs []Attr, remote TraceContext) *Span {
	t.mu.Lock()
	sampler := t.sampler
	t.mu.Unlock()
	if sampler != nil && !sampler(name) {
		return nil
	}
	if limit := t.limit.Load(); limit > 0 && t.spans.Load() >= limit {
		t.dropped.Add(1)
		return nil
	}
	sp := t.allocSpan()
	sp.name = name
	sp.start = time.Now()
	sp.attrs = append(sp.attrs, attrs...)
	if remote.Valid() {
		sp.traceID = remote.TraceID
		sp.parentID = remote.SpanID
	} else {
		sp.traceID = t.newTraceID()
	}
	sp.spanID = t.newSpanID()
	t.spans.Add(1)
	t.mu.Lock()
	t.roots = append(t.roots, sp)
	t.mu.Unlock()
	return sp
}

func (s *Span) newChild(name string, attrs []Attr) *Span {
	t := s.tracer
	if limit := t.limit.Load(); limit > 0 && t.spans.Load() >= limit {
		t.dropped.Add(1)
		return nil
	}
	child := t.allocSpan()
	child.name = name
	child.start = time.Now()
	child.attrs = append(child.attrs, attrs...)
	child.traceID = s.traceID
	child.parentID = s.spanID
	child.spanID = t.newSpanID()
	t.spans.Add(1)
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// End stops the span's clock. End is idempotent and nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// SetAttr appends attributes to the span. Nil-safe.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// TraceID returns the span's trace identity (zero on nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.traceID
}

// SpanID returns the span's identity (zero on nil).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.spanID
}

// ParentSpanID returns the parent span's identity — local parent, or
// the remote caller for a root continuing a propagated trace (zero on
// nil or for a locally originated root).
func (s *Span) ParentSpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.parentID
}

// TraceContext returns the span's identity as a propagable trace
// context (sampled flag set); zero and invalid on nil.
func (s *Span) TraceContext() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.traceID, SpanID: s.spanID, Flags: 0x01}
}

// Duration returns the span duration (zero until End, and on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Children returns a snapshot of the child spans in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// recycle clears per-use state (keeping slice capacity) so the span
// can re-enter the freelist.
func (s *Span) recycle() {
	s.mu.Lock()
	s.name = ""
	s.start = time.Time{}
	s.traceID = TraceID{}
	s.spanID = SpanID{}
	s.parentID = SpanID{}
	for i := range s.attrs {
		s.attrs[i] = Attr{}
	}
	s.attrs = s.attrs[:0]
	for i := range s.children {
		s.children[i] = nil
	}
	s.children = s.children[:0]
	s.dur = 0
	s.ended = false
	s.mu.Unlock()
}

// snapshot copies the mutable state under the span lock.
func (s *Span) snapshot() (attrs []Attr, children []*Span, dur time.Duration, ended bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...), append([]*Span(nil), s.children...), s.dur, s.ended
}

// Tree renders the recorded spans as a human-readable indented tree
// with durations and attributes.
func (t *Tracer) Tree() string {
	var b strings.Builder
	for _, r := range t.Roots() {
		writeTree(&b, r, 0)
	}
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(&b, "(+%d spans dropped by limit)\n", d)
	}
	return b.String()
}

func writeTree(b *strings.Builder, s *Span, depth int) {
	attrs, children, dur, ended := s.snapshot()
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(s.name)
	if ended {
		fmt.Fprintf(b, " %s", dur.Round(time.Microsecond))
	} else {
		b.WriteString(" (unfinished)")
	}
	for _, a := range attrs {
		fmt.Fprintf(b, " %s=%v", a.Key, a.Value)
	}
	b.WriteByte('\n')
	sortByStart(children)
	for _, c := range children {
		writeTree(b, c, depth+1)
	}
}

func sortByStart(spans []*Span) {
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].start.Before(spans[j].start) })
}

// StageTotals aggregates the recorded spans by name: total duration
// and count per span name, for coarse stage attribution of a whole
// run. Unfinished spans contribute their count but no duration.
func (t *Tracer) StageTotals() map[string]StageTotal {
	out := make(map[string]StageTotal)
	var walk func(*Span)
	walk = func(s *Span) {
		_, children, dur, ended := s.snapshot()
		st := out[s.name]
		st.Count++
		if ended {
			st.Total += dur
		}
		out[s.name] = st
		for _, c := range children {
			walk(c)
		}
	}
	for _, r := range t.Roots() {
		walk(r)
	}
	return out
}

// StageTotal is one row of StageTotals.
type StageTotal struct {
	// Count is the number of spans with this name.
	Count int
	// Total is the summed duration of the ended ones.
	Total time.Duration
}
