package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestStitchCrossProcessTrace runs the real pipeline end to end in one
// process: a "gateway" flight recorder records gw.route/gw.attempt, a
// "replica" recorder continues the propagated trace context, and the
// two exported dumps stitch into one valid document under one trace ID.
func TestStitchCrossProcessTrace(t *testing.T) {
	gwFR := NewFlightRecorder(FlightRecorderConfig{Process: "gateway", Seed: 1})
	gwTracer := gwFR.StartRequest()
	gctx := WithTracer(context.Background(), gwTracer)
	gctx, route := Start(gctx, "gw.route")
	actx, attempt := Start(gctx, "gw.attempt", String("backend", "b0"))
	wire := Traceparent(actx) // what the gateway puts on the proxied request

	repFR := NewFlightRecorder(FlightRecorderConfig{Process: "replica", Seed: 2})
	repTracer := repFR.StartRequest()
	rctx := WithTracer(context.Background(), repTracer)
	remote, err := ParseTraceparent(wire)
	if err != nil {
		t.Fatalf("gateway emitted unparseable traceparent %q: %v", wire, err)
	}
	rctx = WithRemoteParent(rctx, remote)
	rctx, srvRoot := Start(rctx, "srv.predict")
	_, stage := Start(rctx, "features")
	stage.End()
	srvRoot.End()
	repFR.Finish(repTracer, TraceMeta{Endpoint: "predict", Status: 200, Duration: time.Second})

	attempt.End()
	route.End()
	gwFR.Finish(gwTracer, TraceMeta{Endpoint: "predict", Status: 200, Duration: time.Second})

	traceID := route.TraceID().String()
	if srvRoot.TraceID().String() != traceID {
		t.Fatalf("replica trace %s, gateway trace %s", srvRoot.TraceID(), traceID)
	}

	var gwDump, repDump bytes.Buffer
	if err := gwFR.WriteChromeTrace(&gwDump, ""); err != nil {
		t.Fatal(err)
	}
	if err := repFR.WriteChromeTrace(&repDump, ""); err != nil {
		t.Fatal(err)
	}

	res, err := StitchChromeTraces([]StitchFile{
		{Name: "gateway.json", Data: gwDump.Bytes()},
		{Name: "replica.json", Data: repDump.Bytes()},
	}, traceID)
	if err != nil {
		t.Fatal(err)
	}
	names, err := ValidateChromeTrace(res.Doc)
	if err != nil {
		t.Fatalf("stitched doc invalid: %v\n%s", err, res.Doc)
	}
	want := map[string]bool{"gw.route": false, "gw.attempt": false, "srv.predict": false, "features": false}
	for _, n := range names {
		if _, ok := want[n]; !ok {
			t.Errorf("unexpected span %q survived the trace filter", n)
		}
		want[n] = true
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("span %q missing from stitched trace", n)
		}
	}
	if got := res.TraceProcs[traceID]; got != 2 {
		t.Errorf("trace %s spans %d processes, want 2", traceID, got)
	}
	if len(res.Processes) != 2 || res.Processes[0].Events != 2 || res.Processes[1].Events != 2 {
		t.Errorf("process contributions %+v", res.Processes)
	}
	// The replica's spans parent under the gateway's attempt span.
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(res.Doc, &doc); err != nil {
		t.Fatal(err)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "srv.predict" {
			if got := ev.Args["parent_span_id"]; got != attempt.SpanID().String() {
				t.Errorf("srv.predict parent %v, want gw.attempt %s", got, attempt.SpanID())
			}
		}
	}

	// Filtering by an unknown trace drops every span event.
	res2, err := StitchChromeTraces([]StitchFile{
		{Name: "gateway.json", Data: gwDump.Bytes()},
	}, strings.Repeat("ab", 16))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Processes[0].Events != 0 {
		t.Errorf("unknown-trace filter kept %d events", res2.Processes[0].Events)
	}
}

func TestStitchAlignsClocks(t *testing.T) {
	mk := func(epochNS int64, name string) []byte {
		doc := map[string]any{
			"traceEvents": []map[string]any{
				{"name": name, "ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": 5.0,
					"args": map[string]any{"trace_id": strings.Repeat("cd", 16)}},
			},
			// Epoch as a decimal string, the exporter's wire form.
			"otherData": map[string]any{"epoch_unix_ns": strconv.FormatInt(epochNS, 10)},
		}
		b, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	early := mk(1_000_000_000, "early")
	late := mk(1_002_000_000, "late") // 2ms later epoch

	res, err := StitchChromeTraces([]StitchFile{
		{Name: "early", Data: early},
		{Name: "late", Data: late},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			PID  int     `json:"pid"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(res.Doc, &doc); err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	pids := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byName[ev.Name] = ev.TS
		pids[ev.Name] = ev.PID
	}
	if got := byName["late"] - byName["early"]; got != 2000 {
		t.Errorf("late shifted %vµs relative to early, want 2000", got)
	}
	if pids["early"] != 1 || pids["late"] != 2 {
		t.Errorf("pids %v, want early=1 late=2", pids)
	}
	if doc.OtherData["epoch_unix_ns"] != "1000000000" {
		t.Errorf("merged epoch %v, want the earliest input epoch", doc.OtherData["epoch_unix_ns"])
	}
	if res.TraceProcs[strings.Repeat("cd", 16)] != 2 {
		t.Errorf("trace procs %v", res.TraceProcs)
	}
}

func TestStitchRejectsAndTolerates(t *testing.T) {
	if _, err := StitchChromeTraces(nil, ""); err == nil {
		t.Error("empty input stitched")
	}
	if _, err := StitchChromeTraces([]StitchFile{{Name: "x", Data: []byte("nope")}}, ""); err == nil {
		t.Error("garbage input stitched")
	}
	// Bare-array documents (the other accepted Chrome trace form) and
	// documents with no epoch still stitch (offset 0).
	arr := []byte(`[{"name":"a","ph":"X","pid":1,"tid":1,"ts":0,"dur":1}]`)
	res, err := StitchChromeTraces([]StitchFile{{Name: "arr", Data: arr}}, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Processes[0].Events != 1 {
		t.Errorf("bare array contributed %d events", res.Processes[0].Events)
	}
}
