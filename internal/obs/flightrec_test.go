package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// finishOne runs one request-shaped trace (root + one child) through
// fr and classifies it via meta.
func finishOne(t *testing.T, fr *FlightRecorder, meta TraceMeta) TraceID {
	t.Helper()
	tr := fr.StartRequest()
	if tr == nil {
		t.Fatal("StartRequest returned nil from a live recorder")
	}
	ctx := WithTracer(context.Background(), tr)
	cctx, root := Start(ctx, "srv."+meta.Endpoint)
	_, child := Start(cctx, "stage")
	child.End()
	root.End()
	id := root.TraceID()
	fr.Finish(tr, meta)
	return id
}

func TestFlightRecorderRetention(t *testing.T) {
	fr := NewFlightRecorder(FlightRecorderConfig{
		Capacity: 8, SampleCapacity: 8, SlowThreshold: 50 * time.Millisecond, Seed: 7,
	})

	errID := finishOne(t, fr, TraceMeta{Endpoint: "predict", RequestID: "r-err", Status: 500, Err: true, Duration: time.Millisecond})
	slowID := finishOne(t, fr, TraceMeta{Endpoint: "predict", RequestID: "r-slow", Status: 200, Duration: 60 * time.Millisecond})
	okID := finishOne(t, fr, TraceMeta{Endpoint: "lint", RequestID: "r-ok", Status: 200, Duration: time.Millisecond})

	traces := fr.Traces()
	if len(traces) != 3 {
		t.Fatalf("retained %d traces, want 3", len(traces))
	}
	byID := make(map[string]RetainedTrace)
	for _, tr := range traces {
		byID[tr.TraceID] = tr
	}
	for id, wantReason := range map[TraceID]string{errID: "error", slowID: "slow", okID: "sampled"} {
		got, ok := byID[id.String()]
		if !ok {
			t.Fatalf("trace %s (%s) not retained: %+v", id, wantReason, traces)
		}
		if got.Reason != wantReason {
			t.Errorf("trace %s reason %q, want %q", id, got.Reason, wantReason)
		}
		if got.Spans != 2 {
			t.Errorf("trace %s spans %d, want 2", id, got.Spans)
		}
	}
	if byID[errID.String()].RequestID != "r-err" || byID[errID.String()].Status != 500 {
		t.Errorf("error trace meta %+v", byID[errID.String()])
	}

	st := fr.Stats()
	if st.Requests != 3 || st.RetainedErr != 1 || st.RetainedSlow != 1 || st.SampledKept != 1 {
		t.Errorf("stats %+v", st)
	}
	if st.RetainedTraces != 3 || st.RetainedSpans != 6 {
		t.Errorf("retained %d traces / %d spans, want 3/6", st.RetainedTraces, st.RetainedSpans)
	}

	// The export carries every retained trace and is a valid document;
	// filtering by trace ID keeps exactly that trace's spans.
	var buf bytes.Buffer
	if err := fr.WriteChromeTrace(&buf, ""); err != nil {
		t.Fatal(err)
	}
	names, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("export invalid: %v\n%s", err, buf.String())
	}
	if len(names) != 6 {
		t.Fatalf("export has %d spans, want 6", len(names))
	}
	buf.Reset()
	if err := fr.WriteChromeTrace(&buf, errID.String()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), errID.String()) || strings.Contains(buf.String(), okID.String()) {
		t.Fatalf("filtered export wrong:\n%s", buf.String())
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	foundMeta := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Args["fr_reason"] == "error" {
			foundMeta = true
			if ev.Args["fr_request_id"] != "r-err" || ev.Args["fr_endpoint"] != "predict" {
				t.Errorf("root event meta args %+v", ev.Args)
			}
		}
	}
	if !foundMeta {
		t.Error("filtered export missing fr_* root annotations")
	}
}

func TestFlightRecorderRingWraparound(t *testing.T) {
	const capacity = 4
	fr := NewFlightRecorder(FlightRecorderConfig{
		Capacity: capacity, SampleCapacity: -1, Seed: 11,
	})
	const total = 10
	for i := 0; i < total; i++ {
		finishOne(t, fr, TraceMeta{Endpoint: "predict", Status: 500, Err: true, Duration: time.Millisecond})
	}
	traces := fr.Traces()
	if len(traces) != capacity {
		t.Fatalf("retained %d traces, want %d", len(traces), capacity)
	}
	// Oldest-first eviction: the survivors are exactly the last capacity
	// captures, still in capture order.
	for i, tr := range traces {
		want := uint64(total - capacity + i + 1)
		if tr.Seq != want {
			t.Errorf("trace %d seq %d, want %d", i, tr.Seq, want)
		}
	}
	st := fr.Stats()
	if st.Evicted != total-capacity {
		t.Errorf("evicted %d, want %d", st.Evicted, total-capacity)
	}
	if st.Recycled != total-capacity {
		t.Errorf("recycled %d, want %d", st.Recycled, total-capacity)
	}
	if st.RetainedSpans != capacity*2 {
		t.Errorf("retained spans %d, want %d", st.RetainedSpans, capacity*2)
	}
	// Wraparound must not corrupt the export.
	var buf bytes.Buffer
	if err := fr.WriteChromeTrace(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("post-wraparound export invalid: %v", err)
	}
}

// TestFlightRecorderReservoirProperties drives many ordinary requests
// through a small reservoir and checks the retention invariants: exact
// occupancy, deterministic admission under a fixed seed, and a sample
// that is spread over the whole sequence rather than pinned to its
// start or end.
func TestFlightRecorderReservoirProperties(t *testing.T) {
	const k, n = 8, 1000
	run := func(seed uint64) []uint64 {
		fr := NewFlightRecorder(FlightRecorderConfig{
			Capacity: 4, SampleCapacity: k, Seed: seed,
		})
		for i := 0; i < n; i++ {
			finishOne(t, fr, TraceMeta{Endpoint: "predict", Status: 200, Duration: time.Millisecond})
		}
		traces := fr.Traces()
		if len(traces) != k {
			t.Fatalf("seed %d: reservoir holds %d, want %d", seed, len(traces), k)
		}
		seqs := make([]uint64, 0, k)
		for _, tr := range traces {
			if tr.Reason != "sampled" {
				t.Fatalf("seed %d: reason %q in reservoir", seed, tr.Reason)
			}
			if tr.Seq == 0 || tr.Seq > n {
				t.Fatalf("seed %d: seq %d out of range", seed, tr.Seq)
			}
			seqs = append(seqs, tr.Seq)
		}
		st := fr.Stats()
		if st.Requests != n {
			t.Fatalf("seed %d: requests %d, want %d", seed, st.Requests, n)
		}
		// Everything not currently retained was recycled back to the pool.
		if st.Recycled != n-k {
			t.Fatalf("seed %d: recycled %d, want %d", seed, st.Recycled, n-k)
		}
		return seqs
	}

	a, b := run(42), run(42)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("same seed, different samples: %v vs %v", a, b)
	}
	// A (very loose) uniformity check: the mean kept sequence number of
	// a uniform sample over 1..1000 concentrates near 500; landing
	// outside [150, 850] means the sampler favours one end.
	for _, seed := range []uint64{42, 7, 99} {
		seqs := run(seed)
		var sum uint64
		for _, s := range seqs {
			sum += s
		}
		mean := float64(sum) / float64(len(seqs))
		if mean < 150 || mean > 850 {
			t.Errorf("seed %d: mean kept seq %.0f suggests biased sampling (%v)", seed, mean, seqs)
		}
	}
}

func TestFlightRecorderNilSafety(t *testing.T) {
	var fr *FlightRecorder
	if tr := fr.StartRequest(); tr != nil {
		t.Fatal("nil recorder handed out a tracer")
	}
	fr.Finish(nil, TraceMeta{})
	if st := fr.Stats(); st != (FlightRecorderStats{}) {
		t.Fatalf("nil stats %+v", st)
	}
	if got := fr.Traces(); got != nil {
		t.Fatalf("nil Traces = %v", got)
	}
	if err := fr.WriteChromeTrace(&bytes.Buffer{}, ""); err == nil {
		t.Fatal("nil WriteChromeTrace did not error")
	}
	if n, err := fr.WriteDir(t.TempDir()); n != 0 || err != nil {
		t.Fatalf("nil WriteDir = %d, %v", n, err)
	}

	// A live recorder must also shrug off a Finish with no spans (e.g. a
	// sampled-out root): nothing retained, tracer recycled.
	live := NewFlightRecorder(FlightRecorderConfig{Seed: 3})
	live.Finish(live.StartRequest(), TraceMeta{Endpoint: "predict", Status: 200})
	if st := live.Stats(); st.RetainedTraces != 0 || st.Recycled != 1 {
		t.Fatalf("empty-trace finish stats %+v", st)
	}
}

func TestFlightRecorderWriteDir(t *testing.T) {
	fr := NewFlightRecorder(FlightRecorderConfig{Capacity: 8, SampleCapacity: -1, Seed: 5})
	errID := finishOne(t, fr, TraceMeta{Endpoint: "predict", Status: 500, Err: true})
	slowID := finishOne(t, fr, TraceMeta{Endpoint: "lint", Status: 200, Duration: time.Second})

	dir := filepath.Join(t.TempDir(), "traces")
	n, err := fr.WriteDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("wrote %d files, want 2", n)
	}
	for i, want := range []string{
		"fr-0001-error-" + errID.String() + ".json",
		"fr-0002-slow-" + slowID.String() + ".json",
	} {
		data, err := os.ReadFile(filepath.Join(dir, want))
		if err != nil {
			t.Fatalf("file %d: %v", i, err)
		}
		names, err := ValidateChromeTrace(data)
		if err != nil {
			t.Fatalf("%s invalid: %v", want, err)
		}
		if len(names) != 2 {
			t.Errorf("%s has %d spans, want 2", want, len(names))
		}
	}
}

// TestFlightRecorderConcurrentCapture hammers the capture path from
// many goroutines while a reader exports and lists concurrently; run
// under -race this is the torn-export / recycle-race guard.
func TestFlightRecorderConcurrentCapture(t *testing.T) {
	fr := NewFlightRecorder(FlightRecorderConfig{
		Capacity: 4, SampleCapacity: 4, SlowThreshold: time.Hour, Seed: 13,
	})
	const workers, perWorker = 8, 50
	var workerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := fr.WriteChromeTrace(&buf, ""); err != nil {
				t.Error(err)
				return
			}
			if buf.Len() > 0 {
				if _, err := ValidateChromeTrace(buf.Bytes()); err != nil {
					t.Errorf("concurrent export invalid: %v", err)
					return
				}
			}
			fr.Traces()
			fr.Stats()
		}
	}()
	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for i := 0; i < perWorker; i++ {
				status, isErr := 200, false
				if i%3 == 0 {
					status, isErr = 500, true
				}
				finishOne(t, fr, TraceMeta{Endpoint: "predict", Status: status, Err: isErr})
			}
		}()
	}
	workerWG.Wait()
	close(stop)
	readerWG.Wait()

	st := fr.Stats()
	if st.Requests != workers*perWorker {
		t.Fatalf("requests %d, want %d", st.Requests, workers*perWorker)
	}
	if st.RetainedTraces > 8 {
		t.Fatalf("retained %d traces, capacity is 4+4", st.RetainedTraces)
	}
}

// TestFlightRecorderSteadyStateAllocs pins the headline property: once
// the pool and freelists are warm, capturing a request (tracer from
// pool, two spans, classification, recycle) allocates nothing.
func TestFlightRecorderSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	fr := NewFlightRecorder(FlightRecorderConfig{
		Capacity: 2, SampleCapacity: 2, SlowThreshold: time.Hour, Seed: 17,
	})
	capture := func() {
		tr := fr.StartRequest()
		root := tr.newRoot("srv.predict", nil, TraceContext{})
		child := root.newChild("stage", nil)
		child.End()
		root.End()
		fr.Finish(tr, TraceMeta{Endpoint: "predict", Status: 200, Duration: time.Millisecond})
	}
	for i := 0; i < 64; i++ { // warm the pool, freelists, and reservoir
		capture()
	}
	if allocs := testing.AllocsPerRun(200, capture); allocs > 0 {
		t.Errorf("steady-state capture allocates %.1f objects per request, want 0", allocs)
	}
}
