package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartWithoutTracerIsNoop(t *testing.T) {
	ctx, sp := Start(context.Background(), "stage")
	if sp != nil {
		t.Fatalf("Start without tracer returned a span")
	}
	// All span methods must be nil-safe.
	sp.End()
	sp.SetAttr(String("k", "v"))
	if sp.Name() != "" || sp.Duration() != 0 || sp.Children() != nil {
		t.Fatalf("nil span accessors not zero")
	}
	if SpanFrom(ctx) != nil {
		t.Fatalf("noop Start leaked a span into the context")
	}
}

func TestSpanTreeNesting(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "root", String("model", "alexnet"))
	cctx, child := Start(ctx, "child")
	_, grand := Start(cctx, "grandchild")
	grand.End()
	child.End()
	_, sib := Start(ctx, "sibling")
	sib.End()
	root.End()

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name() != "root" {
		t.Fatalf("roots = %v", roots)
	}
	kids := roots[0].Children()
	if len(kids) != 2 || kids[0].Name() != "child" || kids[1].Name() != "sibling" {
		t.Fatalf("children of root: %v", kids)
	}
	gk := kids[0].Children()
	if len(gk) != 1 || gk[0].Name() != "grandchild" {
		t.Fatalf("grandchildren: %v", gk)
	}
	if tr.SpanCount() != 4 {
		t.Fatalf("span count = %d, want 4", tr.SpanCount())
	}
	tree := tr.Tree()
	for _, want := range []string{"root", "  child", "    grandchild", "  sibling", "model=alexnet"} {
		if !strings.Contains(tree, want) {
			t.Errorf("Tree() missing %q:\n%s", want, tree)
		}
	}
}

// TestConcurrentChildSpans exercises span creation from many
// goroutines under one parent — the shape of the worker-pool fan-out —
// and must pass under -race.
func TestConcurrentChildSpans(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root")

	const workers = 32
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cctx, child := Start(ctx, "child", Int("i", i))
			_, g := Start(cctx, "grandchild")
			g.End()
			child.End()
		}(i)
	}
	wg.Wait()
	root.End()

	kids := root.Children()
	if len(kids) != workers {
		t.Fatalf("children = %d, want %d", len(kids), workers)
	}
	for _, k := range kids {
		if k.Name() != "child" {
			t.Fatalf("unexpected child %q", k.Name())
		}
		if g := k.Children(); len(g) != 1 || g[0].Name() != "grandchild" {
			t.Fatalf("child %v has grandchildren %v", k, g)
		}
		if k.Duration() <= 0 {
			t.Fatalf("child has no duration")
		}
	}
	if tr.SpanCount() != 1+2*workers {
		t.Fatalf("span count = %d, want %d", tr.SpanCount(), 1+2*workers)
	}

	// The export must be valid even with concurrent siblings (they are
	// spread over lanes so no lane holds partially overlapping events).
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	names, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace invalid: %v\n%s", err, buf.String())
	}
	if len(names) != 1+2*workers {
		t.Fatalf("exported %d spans, want %d", len(names), 1+2*workers)
	}
}

func TestSamplerSuppressesDescendants(t *testing.T) {
	tr := NewTracer()
	tr.SetSampler(NthSampler(2)) // admit roots 0, 2, 4, ...
	base := WithTracer(context.Background(), tr)

	for i := 0; i < 4; i++ {
		ctx, root := Start(base, "root")
		_, child := Start(ctx, "child")
		child.End()
		root.End()
	}
	if got := len(tr.Roots()); got != 2 {
		t.Fatalf("recorded %d roots, want 2", got)
	}
	// Children of suppressed roots must not become new roots.
	if tr.SpanCount() != 4 {
		t.Fatalf("span count = %d, want 4 (2 roots + 2 children)", tr.SpanCount())
	}
}

func TestSpanLimit(t *testing.T) {
	tr := NewTracer()
	tr.SetLimit(2)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	_, a := Start(ctx, "a")
	a.End()
	bctx, b := Start(ctx, "b") // over limit: dropped
	if b != nil {
		t.Fatalf("span over limit not dropped")
	}
	// Descendants of a dropped span attach to the nearest recorded
	// ancestor instead of vanishing silently... but they are over the
	// limit too, so they are dropped as well.
	_, c := Start(bctx, "c")
	if c != nil {
		t.Fatalf("descendant of dropped span recorded over limit")
	}
	root.End()
	if tr.SpanCount() != 2 || tr.Dropped() != 2 {
		t.Fatalf("count=%d dropped=%d, want 2/2", tr.SpanCount(), tr.Dropped())
	}
}

// TestSpanLimitMidTreeConcurrent hits the span limit while many
// goroutines race to add children — the count must never overshoot by
// more than the racing writers, every drop must be accounted, and the
// surviving tree must still export as a valid trace. Run under -race.
func TestSpanLimitMidTreeConcurrent(t *testing.T) {
	const limit, workers, perWorker = 16, 8, 10
	tr := NewTracer()
	tr.SetLimit(limit)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root")

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				cctx, c := Start(ctx, "child")
				// Descendants of a dropped child attach upward (or drop
				// too); either way they must not corrupt the tree.
				_, g := Start(cctx, "grandchild")
				g.End()
				c.End()
			}
		}()
	}
	wg.Wait()
	root.End()

	total := 1 + 2*workers*perWorker
	count, dropped := tr.SpanCount(), tr.Dropped()
	// The limit check and the count increment are not one atomic step,
	// so racing writers can overshoot by at most their number.
	if count < limit || count > limit+workers {
		t.Fatalf("span count %d, want within [%d, %d]", count, limit, limit+workers)
	}
	if count+dropped != total {
		t.Fatalf("count %d + dropped %d != started %d", count, dropped, total)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	names, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("limited trace invalid: %v\n%s", err, buf.String())
	}
	if len(names) != count {
		t.Fatalf("exported %d spans, recorded %d", len(names), count)
	}
}

// TestSampledOutRootChildrenDoNotLeak pins the suppressed-sentinel
// contract: when the sampler rejects a root, spans started under the
// rejected context (even concurrently, even ended after the fact) must
// not be recorded, must not become roots, and a later Reset must leave
// the tracer reusable. Run under -race.
func TestSampledOutRootChildrenDoNotLeak(t *testing.T) {
	tr := NewTracer()
	tr.SetSampler(func(string) bool { return false })
	ctx := WithTracer(context.Background(), tr)

	rctx, root := Start(ctx, "root")
	if root != nil {
		t.Fatal("sampled-out root recorded")
	}
	var wg sync.WaitGroup
	spans := make([]*Span, 16)
	for i := range spans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cctx, c := Start(rctx, "child")
			_, g := Start(cctx, "grandchild")
			spans[i] = c
			g.End()
			c.End() // ending a nil span after the root was rejected is fine
		}(i)
	}
	wg.Wait()
	for i, c := range spans {
		if c != nil {
			t.Fatalf("child %d of a sampled-out root was recorded", i)
		}
	}
	if n := len(tr.Roots()); n != 0 {
		t.Fatalf("%d roots leaked from a sampled-out trace", n)
	}
	if tr.SpanCount() != 0 {
		t.Fatalf("span count %d, want 0", tr.SpanCount())
	}
	// Sampling is policy, not loss: nothing counts as dropped.
	if tr.Dropped() != 0 {
		t.Fatalf("dropped %d, want 0", tr.Dropped())
	}

	// The tracer recovers for its next pooled use.
	tr.Reset()
	tr.SetSampler(nil)
	_, r2 := Start(WithTracer(context.Background(), tr), "fresh")
	r2.End()
	if len(tr.Roots()) != 1 || tr.SpanCount() != 1 {
		t.Fatalf("tracer unusable after sampled-out trace + Reset: roots=%d spans=%d",
			len(tr.Roots()), tr.SpanCount())
	}
}

// TestResetRecyclesSpans pins the pooling contract: after Reset the
// same span objects come back off the freelist, so a warmed tracer
// records its next trace without fresh span allocations.
func TestResetRecyclesSpans(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	cctx, root := Start(ctx, "root")
	_, child := Start(cctx, "child")
	child.End()
	root.End()
	firstRoot, firstChild := root, child

	tr.Reset()
	if len(tr.Roots()) != 0 || tr.SpanCount() != 0 {
		t.Fatalf("Reset left roots=%d spans=%d", len(tr.Roots()), tr.SpanCount())
	}
	if firstRoot.Name() != "" || firstRoot.TraceID() != (TraceID{}) {
		t.Fatalf("recycled span retains state: %q/%s", firstRoot.Name(), firstRoot.TraceID())
	}

	ctx2 := WithTracer(context.Background(), tr)
	c2, root2 := Start(ctx2, "again")
	_, child2 := Start(c2, "again.child")
	child2.End()
	root2.End()
	reused := map[*Span]bool{firstRoot: true, firstChild: true}
	if !reused[root2] || !reused[child2] {
		t.Error("spans after Reset were not drawn from the freelist")
	}
	if root2.TraceID().IsZero() {
		t.Error("reused span has no fresh trace ID")
	}
}

func TestChromeTraceDurationsNest(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	_, a := Start(ctx, "stage.a")
	time.Sleep(2 * time.Millisecond)
	a.End()
	_, b := Start(ctx, "stage.b")
	time.Sleep(1 * time.Millisecond)
	b.End()
	root.End()

	if root.Duration() < a.Duration()+b.Duration() {
		t.Fatalf("root %v shorter than children %v + %v", root.Duration(), a.Duration(), b.Duration())
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	names, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("invalid trace: %v\n%s", err, buf.String())
	}
	want := map[string]bool{"root": true, "stage.a": true, "stage.b": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("trace missing spans %v", want)
	}
}

func TestValidateChromeTraceRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      `nope`,
		"empty":         `{"traceEvents":[]}`,
		"no name":       `{"traceEvents":[{"ph":"X","ts":1,"dur":1}]}`,
		"bad phase":     `{"traceEvents":[{"name":"x","ph":"Z","ts":1}]}`,
		"negative time": `{"traceEvents":[{"name":"x","ph":"X","ts":-1}]}`,
		"partial overlap": `{"traceEvents":[
			{"name":"a","ph":"X","pid":1,"tid":1,"ts":0,"dur":10},
			{"name":"b","ph":"X","pid":1,"tid":1,"ts":5,"dur":10}]}`,
	}
	for name, doc := range cases {
		if _, err := ValidateChromeTrace([]byte(doc)); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestStageTotals(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	for i := 0; i < 3; i++ {
		_, s := Start(ctx, "stage")
		time.Sleep(time.Millisecond)
		s.End()
	}
	root.End()
	totals := tr.StageTotals()
	if totals["stage"].Count != 3 || totals["stage"].Total <= 0 {
		t.Fatalf("stage totals = %+v", totals["stage"])
	}
	if totals["root"].Count != 1 {
		t.Fatalf("root totals = %+v", totals["root"])
	}
}
