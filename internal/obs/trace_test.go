package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartWithoutTracerIsNoop(t *testing.T) {
	ctx, sp := Start(context.Background(), "stage")
	if sp != nil {
		t.Fatalf("Start without tracer returned a span")
	}
	// All span methods must be nil-safe.
	sp.End()
	sp.SetAttr(String("k", "v"))
	if sp.Name() != "" || sp.Duration() != 0 || sp.Children() != nil {
		t.Fatalf("nil span accessors not zero")
	}
	if SpanFrom(ctx) != nil {
		t.Fatalf("noop Start leaked a span into the context")
	}
}

func TestSpanTreeNesting(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "root", String("model", "alexnet"))
	cctx, child := Start(ctx, "child")
	_, grand := Start(cctx, "grandchild")
	grand.End()
	child.End()
	_, sib := Start(ctx, "sibling")
	sib.End()
	root.End()

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name() != "root" {
		t.Fatalf("roots = %v", roots)
	}
	kids := roots[0].Children()
	if len(kids) != 2 || kids[0].Name() != "child" || kids[1].Name() != "sibling" {
		t.Fatalf("children of root: %v", kids)
	}
	gk := kids[0].Children()
	if len(gk) != 1 || gk[0].Name() != "grandchild" {
		t.Fatalf("grandchildren: %v", gk)
	}
	if tr.SpanCount() != 4 {
		t.Fatalf("span count = %d, want 4", tr.SpanCount())
	}
	tree := tr.Tree()
	for _, want := range []string{"root", "  child", "    grandchild", "  sibling", "model=alexnet"} {
		if !strings.Contains(tree, want) {
			t.Errorf("Tree() missing %q:\n%s", want, tree)
		}
	}
}

// TestConcurrentChildSpans exercises span creation from many
// goroutines under one parent — the shape of the worker-pool fan-out —
// and must pass under -race.
func TestConcurrentChildSpans(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root")

	const workers = 32
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cctx, child := Start(ctx, "child", Int("i", i))
			_, g := Start(cctx, "grandchild")
			g.End()
			child.End()
		}(i)
	}
	wg.Wait()
	root.End()

	kids := root.Children()
	if len(kids) != workers {
		t.Fatalf("children = %d, want %d", len(kids), workers)
	}
	for _, k := range kids {
		if k.Name() != "child" {
			t.Fatalf("unexpected child %q", k.Name())
		}
		if g := k.Children(); len(g) != 1 || g[0].Name() != "grandchild" {
			t.Fatalf("child %v has grandchildren %v", k, g)
		}
		if k.Duration() <= 0 {
			t.Fatalf("child has no duration")
		}
	}
	if tr.SpanCount() != 1+2*workers {
		t.Fatalf("span count = %d, want %d", tr.SpanCount(), 1+2*workers)
	}

	// The export must be valid even with concurrent siblings (they are
	// spread over lanes so no lane holds partially overlapping events).
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	names, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace invalid: %v\n%s", err, buf.String())
	}
	if len(names) != 1+2*workers {
		t.Fatalf("exported %d spans, want %d", len(names), 1+2*workers)
	}
}

func TestSamplerSuppressesDescendants(t *testing.T) {
	tr := NewTracer()
	tr.SetSampler(NthSampler(2)) // admit roots 0, 2, 4, ...
	base := WithTracer(context.Background(), tr)

	for i := 0; i < 4; i++ {
		ctx, root := Start(base, "root")
		_, child := Start(ctx, "child")
		child.End()
		root.End()
	}
	if got := len(tr.Roots()); got != 2 {
		t.Fatalf("recorded %d roots, want 2", got)
	}
	// Children of suppressed roots must not become new roots.
	if tr.SpanCount() != 4 {
		t.Fatalf("span count = %d, want 4 (2 roots + 2 children)", tr.SpanCount())
	}
}

func TestSpanLimit(t *testing.T) {
	tr := NewTracer()
	tr.SetLimit(2)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	_, a := Start(ctx, "a")
	a.End()
	bctx, b := Start(ctx, "b") // over limit: dropped
	if b != nil {
		t.Fatalf("span over limit not dropped")
	}
	// Descendants of a dropped span attach to the nearest recorded
	// ancestor instead of vanishing silently... but they are over the
	// limit too, so they are dropped as well.
	_, c := Start(bctx, "c")
	if c != nil {
		t.Fatalf("descendant of dropped span recorded over limit")
	}
	root.End()
	if tr.SpanCount() != 2 || tr.Dropped() != 2 {
		t.Fatalf("count=%d dropped=%d, want 2/2", tr.SpanCount(), tr.Dropped())
	}
}

func TestChromeTraceDurationsNest(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	_, a := Start(ctx, "stage.a")
	time.Sleep(2 * time.Millisecond)
	a.End()
	_, b := Start(ctx, "stage.b")
	time.Sleep(1 * time.Millisecond)
	b.End()
	root.End()

	if root.Duration() < a.Duration()+b.Duration() {
		t.Fatalf("root %v shorter than children %v + %v", root.Duration(), a.Duration(), b.Duration())
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	names, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("invalid trace: %v\n%s", err, buf.String())
	}
	want := map[string]bool{"root": true, "stage.a": true, "stage.b": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("trace missing spans %v", want)
	}
}

func TestValidateChromeTraceRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      `nope`,
		"empty":         `{"traceEvents":[]}`,
		"no name":       `{"traceEvents":[{"ph":"X","ts":1,"dur":1}]}`,
		"bad phase":     `{"traceEvents":[{"name":"x","ph":"Z","ts":1}]}`,
		"negative time": `{"traceEvents":[{"name":"x","ph":"X","ts":-1}]}`,
		"partial overlap": `{"traceEvents":[
			{"name":"a","ph":"X","pid":1,"tid":1,"ts":0,"dur":10},
			{"name":"b","ph":"X","pid":1,"tid":1,"ts":5,"dur":10}]}`,
	}
	for name, doc := range cases {
		if _, err := ValidateChromeTrace([]byte(doc)); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestStageTotals(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	for i := 0; i < 3; i++ {
		_, s := Start(ctx, "stage")
		time.Sleep(time.Millisecond)
		s.End()
	}
	root.End()
	totals := tr.StageTotals()
	if totals["stage"].Count != 3 || totals["stage"].Total <= 0 {
		t.Fatalf("stage totals = %+v", totals["stage"])
	}
	if totals["root"].Count != 1 {
		t.Fatalf("root totals = %+v", totals["root"])
	}
}
