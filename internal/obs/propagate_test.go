package obs

import (
	"context"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatalf("fresh context invalid: %+v", tc)
	}
	wire := tc.Traceparent()
	if !strings.HasPrefix(wire, "00-") || len(wire) != 55 {
		t.Fatalf("wire form %q malformed", wire)
	}
	got, err := ParseTraceparent(wire)
	if err != nil {
		t.Fatalf("parse own wire form: %v", err)
	}
	if got != tc {
		t.Fatalf("round trip: got %+v, want %+v", got, tc)
	}
	// Two mints must be distinct traces.
	if other := NewTraceContext(); other.TraceID == tc.TraceID {
		t.Fatalf("two fresh contexts share a trace ID")
	}
}

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		name string
		in   string
		ok   bool
	}{
		{"canonical", valid, true},
		{"surrounding space", " " + valid + " ", true},
		{"unsampled flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", true},
		{"future version extra field", "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", true},
		{"empty", "", false},
		{"too few fields", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", false},
		{"version ff", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"version FF", "FF-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"version 00 extra field", valid + "-extra", false},
		{"one-digit version", "0-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"non-hex version", "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"short trace id", "00-4bf92f3577b34da6a3ce929d0e0e473-00f067aa0ba902b7-01", false},
		{"non-hex trace id", "00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01", false},
		{"zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01", false},
		{"short parent id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b-01", false},
		{"non-hex parent id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902bg-01", false},
		{"zero parent id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", false},
		{"long flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-011", false},
		{"non-hex flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g", false},
	}
	for _, tt := range cases {
		tc, err := ParseTraceparent(tt.in)
		if tt.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tt.name, err)
		}
		if !tt.ok && err == nil {
			t.Errorf("%s: parsed %q as %+v, want error", tt.name, tt.in, tc)
		}
		if tt.ok && err == nil && !tc.Valid() {
			t.Errorf("%s: parsed context invalid: %+v", tt.name, tc)
		}
	}
}

func TestRootAdoptsRemoteParent(t *testing.T) {
	remote, err := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx = WithRemoteParent(ctx, remote)
	if got, ok := RemoteParent(ctx); !ok || got != remote {
		t.Fatalf("RemoteParent = %+v, %v", got, ok)
	}

	cctx, root := Start(ctx, "srv.predict")
	_, child := Start(cctx, "stage")
	child.End()
	root.End()

	if root.TraceID() != remote.TraceID {
		t.Fatalf("root trace ID %s, want remote %s", root.TraceID(), remote.TraceID)
	}
	if root.ParentSpanID() != remote.SpanID {
		t.Fatalf("root parent %s, want remote span %s", root.ParentSpanID(), remote.SpanID)
	}
	if root.SpanID().IsZero() || root.SpanID() == remote.SpanID {
		t.Fatalf("root span ID %s not freshly minted", root.SpanID())
	}
	if child.TraceID() != remote.TraceID || child.ParentSpanID() != root.SpanID() {
		t.Fatalf("child identity %s/%s does not chain to root", child.TraceID(), child.ParentSpanID())
	}
}

func TestRootWithoutRemoteParentMintsTrace(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	_, a := Start(ctx, "a")
	a.End()
	_, b := Start(ctx, "b")
	b.End()
	if a.TraceID().IsZero() || b.TraceID().IsZero() {
		t.Fatal("root without remote parent has zero trace ID")
	}
	if a.TraceID() == b.TraceID() {
		t.Fatal("independent roots share a trace ID")
	}
	if !a.ParentSpanID().IsZero() {
		t.Fatalf("locally originated root has parent %s", a.ParentSpanID())
	}
}

func TestTraceparentFromContext(t *testing.T) {
	if got := Traceparent(context.Background()); got != "" {
		t.Fatalf("bare context traceparent %q", got)
	}
	remote := NewTraceContext()
	rctx := WithRemoteParent(context.Background(), remote)
	if got := Traceparent(rctx); got != remote.Traceparent() {
		t.Fatalf("remote-only traceparent %q, want %q", got, remote.Traceparent())
	}

	// An active span wins over the inherited remote parent: downstream
	// calls must parent under the local span, not skip a hop.
	tr := NewTracer()
	ctx := WithTracer(rctx, tr)
	sctx, sp := Start(ctx, "gw.attempt")
	defer sp.End()
	got, err := ParseTraceparent(Traceparent(sctx))
	if err != nil {
		t.Fatalf("span traceparent unparseable: %v", err)
	}
	if got.TraceID != remote.TraceID {
		t.Fatalf("span traceparent trace %s, want %s", got.TraceID, remote.TraceID)
	}
	if got.SpanID != sp.SpanID() {
		t.Fatalf("span traceparent parent %s, want active span %s", got.SpanID, sp.SpanID())
	}
}

func TestWithRemoteParentIgnoresInvalid(t *testing.T) {
	ctx := WithRemoteParent(context.Background(), TraceContext{})
	if _, ok := RemoteParent(ctx); ok {
		t.Fatal("invalid remote parent stored")
	}
}
