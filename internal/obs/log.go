package obs

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"
)

// Level is a log severity.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel parses a level name ("debug", "info", "warn"/"warning",
// "error").
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
	}
}

// Logger writes structured JSON log lines: one object per line with
// ts, level, msg, the request_id stamped into the context (when
// present), and the attribute key/value pairs. A nil *Logger discards
// everything, so call sites never gate on logging being configured.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	level *atomic.Int32
	base  []Attr
	now   func() time.Time
}

// NewLogger builds a logger writing to w at the given minimum level.
func NewLogger(w io.Writer, level Level) *Logger {
	lv := &atomic.Int32{}
	lv.Store(int32(level))
	return &Logger{mu: &sync.Mutex{}, w: w, level: lv, now: time.Now}
}

// With returns a logger that includes attrs on every line. The clone
// shares the parent's writer, lock and level.
func (l *Logger) With(attrs ...Attr) *Logger {
	if l == nil || len(attrs) == 0 {
		return l
	}
	clone := *l
	clone.base = append(append([]Attr(nil), l.base...), attrs...)
	return &clone
}

// SetLevel changes the minimum level at runtime.
func (l *Logger) SetLevel(level Level) {
	if l == nil {
		return
	}
	l.level.Store(int32(level))
}

// Enabled reports whether a line at level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && int32(level) >= l.level.Load()
}

// Log writes one line at the given level under ctx (whose request id,
// if any, is included).
func (l *Logger) Log(ctx context.Context, level Level, msg string, attrs ...Attr) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.Grow(128)
	b.WriteString(`{"ts":`)
	appendJSONString(&b, l.now().UTC().Format(time.RFC3339Nano))
	b.WriteString(`,"level":`)
	appendJSONString(&b, level.String())
	b.WriteString(`,"msg":`)
	appendJSONString(&b, msg)
	if ctx != nil {
		if rid := RequestID(ctx); rid != "" {
			b.WriteString(`,"request_id":`)
			appendJSONString(&b, rid)
		}
	}
	for _, a := range l.base {
		appendAttr(&b, a)
	}
	for _, a := range attrs {
		appendAttr(&b, a)
	}
	b.WriteString("}\n")
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.w, b.String())
}

// Debug logs at debug level without a context.
func (l *Logger) Debug(msg string, attrs ...Attr) { l.Log(nil, LevelDebug, msg, attrs...) }

// Info logs at info level without a context.
func (l *Logger) Info(msg string, attrs ...Attr) { l.Log(nil, LevelInfo, msg, attrs...) }

// Warn logs at warn level without a context.
func (l *Logger) Warn(msg string, attrs ...Attr) { l.Log(nil, LevelWarn, msg, attrs...) }

// Error logs at error level without a context.
func (l *Logger) Error(msg string, attrs ...Attr) { l.Log(nil, LevelError, msg, attrs...) }

// DebugCtx logs at debug level with the request id from ctx.
func (l *Logger) DebugCtx(ctx context.Context, msg string, attrs ...Attr) {
	l.Log(ctx, LevelDebug, msg, attrs...)
}

// InfoCtx logs at info level with the request id from ctx.
func (l *Logger) InfoCtx(ctx context.Context, msg string, attrs ...Attr) {
	l.Log(ctx, LevelInfo, msg, attrs...)
}

// WarnCtx logs at warn level with the request id from ctx.
func (l *Logger) WarnCtx(ctx context.Context, msg string, attrs ...Attr) {
	l.Log(ctx, LevelWarn, msg, attrs...)
}

// ErrorCtx logs at error level with the request id from ctx.
func (l *Logger) ErrorCtx(ctx context.Context, msg string, attrs ...Attr) {
	l.Log(ctx, LevelError, msg, attrs...)
}

func appendAttr(b *strings.Builder, a Attr) {
	b.WriteByte(',')
	appendJSONString(b, a.Key)
	b.WriteByte(':')
	switch v := a.Value.(type) {
	case string:
		appendJSONString(b, v)
	case bool:
		b.WriteString(strconv.FormatBool(v))
	case int:
		b.WriteString(strconv.FormatInt(int64(v), 10))
	case int64:
		b.WriteString(strconv.FormatInt(v, 10))
	case uint64:
		b.WriteString(strconv.FormatUint(v, 10))
	case float64:
		b.WriteString(formatFloat(v))
	case time.Duration:
		appendJSONString(b, v.String())
	case error:
		appendJSONString(b, v.Error())
	case fmt.Stringer:
		appendJSONString(b, v.String())
	case nil:
		b.WriteString("null")
	default:
		appendJSONString(b, fmt.Sprintf("%v", v))
	}
}

// formatFloat renders a float as a JSON number (NaN/Inf are not valid
// JSON numbers, so they become strings).
func formatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	switch s {
	case "NaN", "+Inf", "-Inf", "Inf":
		return strconv.Quote(s)
	}
	return s
}

// appendJSONString writes s as a JSON string literal. Hand-rolled so
// the logger controls key order and never allocates an encoder.
func appendJSONString(b *strings.Builder, s string) {
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		case utf8.RuneError:
			b.WriteString(`�`)
		default:
			if r < 0x20 {
				fmt.Fprintf(b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
}
