package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
)

// Trace stitching: flight-recorder dumps from the gateway and each
// replica are separate Chrome trace documents with process-local
// clocks. StitchChromeTraces aligns them onto one timeline (using the
// absolute epoch each document carries in otherData) and merges the
// events of one distributed trace — matched by the trace_id span arg
// the exporter stamps — into a single document, one Chrome pid per
// input process.

// StitchFile is one input document for stitching.
type StitchFile struct {
	// Name labels the process in the merged document (e.g. "gateway",
	// "replica-1"); typically the source file name.
	Name string
	// Data is the Chrome trace JSON.
	Data []byte
}

// StitchedProcess reports one input's contribution to the merge.
type StitchedProcess struct {
	Name   string
	PID    int
	Events int // X events contributed after filtering
}

// StitchResult is the outcome of a stitch.
type StitchResult struct {
	// Doc is the merged Chrome trace document.
	Doc []byte
	// Processes describes each input file in pid order.
	Processes []StitchedProcess
	// TraceProcs counts, per trace ID seen across all inputs (before
	// filtering), how many distinct processes recorded spans for it.
	TraceProcs map[string]int
}

// stitchDoc decodes one input document (object or bare array form).
func stitchDoc(data []byte) (chromeTrace, error) {
	var doc chromeTrace
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&doc); err != nil {
		var arr []chromeEvent
		if err2 := json.Unmarshal(data, &arr); err2 != nil {
			return doc, fmt.Errorf("not a trace document: %w", err)
		}
		doc.TraceEvents = arr
	}
	return doc, nil
}

// docEpoch extracts the absolute epoch (Unix nanoseconds) stamped in
// otherData, or 0 when absent.
func docEpoch(doc chromeTrace) int64 {
	v, ok := doc.OtherData[epochKey]
	if !ok {
		return 0
	}
	switch x := v.(type) {
	case string:
		n, err := strconv.ParseInt(x, 10, 64)
		if err != nil {
			return 0
		}
		return n
	case float64:
		return int64(x)
	}
	return 0
}

// eventTraceID reads the trace_id arg stamped on exported spans.
func eventTraceID(ev chromeEvent) string {
	if ev.Args == nil {
		return ""
	}
	id, _ := ev.Args["trace_id"].(string)
	return id
}

// StitchChromeTraces merges per-process Chrome trace files into one
// document on a shared timeline. Each input becomes one Chrome pid (in
// argument order). When traceID is non-empty only X events carrying
// that trace_id arg are kept (metadata events always survive); when
// empty, everything merges. Timestamps are shifted by each document's
// epoch offset from the earliest input epoch, so spans from different
// processes line up on one clock.
func StitchChromeTraces(files []StitchFile, traceID string) (*StitchResult, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("stitch: no input files")
	}
	docs := make([]chromeTrace, len(files))
	epochs := make([]int64, len(files))
	var base int64
	for i, f := range files {
		doc, err := stitchDoc(f.Data)
		if err != nil {
			return nil, fmt.Errorf("stitch: %s: %w", f.Name, err)
		}
		docs[i] = doc
		epochs[i] = docEpoch(doc)
		if epochs[i] != 0 && (base == 0 || epochs[i] < base) {
			base = epochs[i]
		}
	}

	res := &StitchResult{TraceProcs: make(map[string]int)}
	perTrace := make(map[string]map[int]bool)
	var merged []chromeEvent
	for i, doc := range docs {
		pid := i + 1
		offsetUS := 0.0
		if epochs[i] != 0 && base != 0 {
			offsetUS = float64(epochs[i]-base) / 1e3
		}
		proc := StitchedProcess{Name: files[i].Name, PID: pid}
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "X" {
				if id := eventTraceID(ev); id != "" {
					if perTrace[id] == nil {
						perTrace[id] = make(map[int]bool)
					}
					perTrace[id][pid] = true
				}
			}
			keep := ev.Ph != "X" || traceID == "" || eventTraceID(ev) == traceID
			if !keep {
				continue
			}
			ev.PID = pid
			ev.TS += offsetUS
			if ev.Ph == "X" {
				proc.Events++
			}
			merged = append(merged, ev)
		}
		res.Processes = append(res.Processes, proc)
	}
	for id, pids := range perTrace {
		res.TraceProcs[id] = len(pids)
	}

	sort.SliceStable(merged, func(i, j int) bool { return merged[i].TS < merged[j].TS })
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(chromeTrace{
		TraceEvents:     merged,
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			epochKey:         strconv.FormatInt(base, 10),
			"stitched_files": len(files),
		},
	}); err != nil {
		return nil, fmt.Errorf("stitch: encode: %w", err)
	}
	res.Doc = buf.Bytes()
	return res, nil
}
