// Package obs is the dependency-free observability layer of the
// pipeline: hierarchical span tracing with Chrome trace_event export,
// a structured leveled JSON logger with request-ID propagation, and a
// metrics registry (counters, gauges, histograms) with Prometheus
// text-format exposition.
//
// Everything is opt-in and context-carried: code instruments itself
// with obs.Start / logger calls unconditionally, and pays only a
// context lookup when no tracer or logger is installed. None of the
// instruments feed back into analysis results — the determinism
// harness proves prediction bytes are identical with observability on
// and off.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"time"
)

// Attr is one key/value annotation on a span or log line.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an int attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: int64(v)} }

// Int64 builds an int64 attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float64 builds a float64 attribute.
func Float64(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a bool attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Duration builds a duration attribute (rendered as a string, e.g. "1.2ms").
func Duration(k string, v time.Duration) Attr { return Attr{Key: k, Value: v} }

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	requestIDKey
	remoteParentKey
)

// WithTracer installs a tracer in the context; obs.Start on the
// returned context (and its descendants) records spans into it.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the tracer installed in ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// WithRequestID stamps a request identifier into the context; the
// logger includes it on every line logged under that context.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the request identifier stamped into ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// NewRequestID generates a fresh 16-hex-digit request identifier.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively unreachable; fall back to a
		// timestamp so request correlation still works.
		return fmt.Sprintf("t%015x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}
