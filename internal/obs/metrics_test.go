package obs

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs processed")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("queue_depth", "pending jobs")
	g.Set(3)
	g.Add(2)
	g.Add(-4)
	if g.Value() != 1 {
		t.Fatalf("gauge = %v, want 1", g.Value())
	}
	// Re-registration returns the same instrument.
	if r.Counter("jobs_total", "jobs processed").Value() != 5 {
		t.Fatal("re-registered counter lost its value")
	}
}

func TestHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Sum-56.05) > 1e-9 {
		t.Fatalf("sum = %v", s.Sum)
	}
	wantCum := []int64{1, 3, 4, 5}
	for i, w := range wantCum {
		if s.Buckets[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (buckets %v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
}

func TestVecSeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("requests_total", "requests", "endpoint", "code")
	v.With("predict", "2xx").Add(3)
	v.With("predict", "4xx").Inc()
	v.With("lint", "2xx").Inc()
	if v.With("predict", "2xx").Value() != 3 {
		t.Fatal("series not shared by label values")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label cardinality did not panic")
		}
	}()
	v.With("just-one")
}

// TestPrometheusGolden locks the exposition format against a golden
// file and runs the in-tree validator over it.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	reqs := r.CounterVec("cnnperfd_requests_total", "HTTP requests by endpoint and status class.", "endpoint", "code")
	reqs.With("predict", "2xx").Add(7)
	reqs.With("predict", "5xx").Add(1)
	reqs.With("lint", "2xx").Add(2)
	g := r.Gauge("cnnperfd_in_flight_requests", "Requests currently being served.")
	g.Set(2)
	r.GaugeFunc("cnnperfd_uptime_seconds", "Seconds since process start.", func() float64 { return 12.5 })
	r.CounterFunc("cnnperfd_cache_hits_total", "Analysis cache hits.", func() float64 { return 42 })
	h := r.Histogram("cnnperfd_request_duration_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	goldenPath := filepath.Join("testdata", "metrics.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition differs from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	n, err := ValidatePrometheusText(strings.NewReader(got))
	if err != nil {
		t.Fatalf("golden exposition fails validation: %v", err)
	}
	if n == 0 {
		t.Fatal("validator saw no samples")
	}
}

func TestValidatePrometheusTextRejects(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad name":       "9metric 1\n",
		"bad value":      "metric one\n",
		"bad type":       "# TYPE m wobble\nm 1\n",
		"type after use": "m 1\n# TYPE m counter\n",
		"dup series":     "m{a=\"1\"} 1\nm{a=\"1\"} 2\n",
		"unquoted label": "m{a=1} 2\n",
		"hist no inf":    "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\nh_sum 1\n",
		"hist mismatch":  "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_count 2\nh_sum 1\n",
		"hist decreasing": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_count 5\nh_sum 1\n",
	}
	for name, doc := range cases {
		if _, err := ValidatePrometheusText(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: validated:\n%s", name, doc)
		}
	}
	// And a well-formed document with labels, timestamps and comments
	// must pass.
	good := `# a free-form comment
# HELP m helpful
# TYPE m counter
m{path="/v1/predict",quote="a\"b"} 5 1700000000
# TYPE g gauge
g 1.5e-3
`
	if n, err := ValidatePrometheusText(strings.NewReader(good)); err != nil || n != 2 {
		t.Fatalf("good doc rejected: n=%d err=%v", n, err)
	}
}

func TestMetricsConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", []float64{1, 2, 3})
	v := r.CounterVec("v_total", "", "w")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 5))
				v.With("a").Inc()
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 || h.Snapshot().Count != 8000 || v.With("a").Value() != 8000 {
		t.Fatalf("lost updates: c=%d h=%d v=%d", c.Value(), h.Snapshot().Count, v.With("a").Value())
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidatePrometheusText(&buf); err != nil {
		t.Fatal(err)
	}
}
