package obs

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder: an always-on, fixed-size ring of completed
// root-span trees per process, with tail-based retention — error and
// over-threshold slow traces are always kept (evicting oldest-first),
// everything else is reservoir-sampled — so the evidence for a tail
// latency incident is already captured when you go looking. Tracers
// are pooled and spans freelisted (Tracer.Reset), so the steady-state
// capture path allocates nothing.

// FlightRecorderConfig configures a FlightRecorder. Zero values take
// the documented defaults.
type FlightRecorderConfig struct {
	// Capacity is the tail ring size: how many error/slow traces are
	// retained (oldest evicted first). Default 64.
	Capacity int
	// SampleCapacity is the reservoir size for traces that are neither
	// errors nor slow. Default 64; negative disables sampling.
	SampleCapacity int
	// SlowThreshold marks a trace slow when its request duration
	// reaches it. Default 250ms.
	SlowThreshold time.Duration
	// SpanLimit bounds spans per recorded trace (Tracer.SetLimit).
	// Default 512.
	SpanLimit int
	// Process names this process in exported Chrome traces. Default
	// "cnnperfd".
	Process string
	// Seed fixes the reservoir RNG for deterministic tests (0 = random).
	Seed uint64
}

func (c FlightRecorderConfig) withDefaults() FlightRecorderConfig {
	if c.Capacity <= 0 {
		c.Capacity = 64
	}
	if c.SampleCapacity == 0 {
		c.SampleCapacity = 64
	}
	if c.SampleCapacity < 0 {
		c.SampleCapacity = 0
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = 250 * time.Millisecond
	}
	if c.SpanLimit <= 0 {
		c.SpanLimit = 512
	}
	if c.Process == "" {
		c.Process = "cnnperfd"
	}
	return c
}

// TraceMeta is the request-level outcome attached to a finished trace;
// it drives the retention decision.
type TraceMeta struct {
	Endpoint  string
	RequestID string
	Status    int
	Err       bool
	Duration  time.Duration
}

// frEntry is one retained trace.
type frEntry struct {
	t      *Tracer
	root   *Span
	meta   TraceMeta
	reason string
	seq    uint64
	spans  int
}

// FlightRecorder retains a bounded set of completed traces per
// process. Capture (StartRequest/Finish) is designed for the request
// hot path: a pool hit plus one short critical section, no steady
// state allocation.
type FlightRecorder struct {
	cfg   FlightRecorderConfig
	epoch time.Time
	pool  sync.Pool

	mu            sync.Mutex
	seq           uint64
	tail          []frEntry // error + slow traces, ring ordered by tailNext
	tailNext      int
	sampled       []frEntry // reservoir of ordinary traces
	seen          uint64    // reservoir candidates observed
	rng           uint64
	retainedSpans int64

	requests     atomic.Int64
	retainedSlow atomic.Int64
	retainedErr  atomic.Int64
	sampledKept  atomic.Int64
	evicted      atomic.Int64
	recycled     atomic.Int64
	skippedBusy  atomic.Int64
}

// NewFlightRecorder builds a recorder with the given config.
func NewFlightRecorder(cfg FlightRecorderConfig) *FlightRecorder {
	cfg = cfg.withDefaults()
	fr := &FlightRecorder{
		cfg:     cfg,
		epoch:   time.Now(),
		tail:    make([]frEntry, 0, cfg.Capacity),
		sampled: make([]frEntry, 0, cfg.SampleCapacity),
		rng:     cfg.Seed,
	}
	if fr.rng == 0 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err == nil {
			fr.rng = binary.BigEndian.Uint64(b[:])
		} else {
			fr.rng = uint64(time.Now().UnixNano())
		}
		if fr.rng == 0 {
			fr.rng = 1
		}
	}
	fr.pool.New = func() any {
		t := NewTracer()
		t.SetLimit(cfg.SpanLimit)
		return t
	}
	return fr
}

// nextRand steps the xorshift64 state; caller holds fr.mu.
func (fr *FlightRecorder) nextRand() uint64 {
	x := fr.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	fr.rng = x
	return x
}

// StartRequest hands out a pooled tracer for one request. Pair with
// Finish. Nil-safe (returns nil).
func (fr *FlightRecorder) StartRequest() *Tracer {
	if fr == nil {
		return nil
	}
	return fr.pool.Get().(*Tracer)
}

// Finish classifies the finished request's trace and retains or
// recycles its tracer: error and slow traces enter the tail ring
// (evicting the oldest retained trace when full), the rest are
// reservoir-sampled. Nil-safe in both arguments.
func (fr *FlightRecorder) Finish(t *Tracer, meta TraceMeta) {
	if fr == nil || t == nil {
		return
	}
	fr.requests.Add(1)
	root, nroots := t.peekRoot()
	if nroots == 0 {
		// Nothing recorded (sampled-out root or an untraced endpoint);
		// there is no trace to retain.
		fr.recycle(t)
		return
	}
	reason := ""
	switch {
	case meta.Err || meta.Status >= 500:
		reason = "error"
	case meta.Duration >= fr.cfg.SlowThreshold:
		reason = "slow"
	}
	e := frEntry{t: t, root: root, meta: meta, reason: reason, spans: t.SpanCount()}

	var evict *Tracer
	fr.mu.Lock()
	fr.seq++
	e.seq = fr.seq
	switch reason {
	case "error", "slow":
		if reason == "error" {
			fr.retainedErr.Add(1)
		} else {
			fr.retainedSlow.Add(1)
		}
		if len(fr.tail) < cap(fr.tail) {
			fr.tail = append(fr.tail, e)
		} else {
			evict = fr.tail[fr.tailNext].t
			fr.retainedSpans -= int64(fr.tail[fr.tailNext].spans)
			fr.tail[fr.tailNext] = e
			fr.tailNext = (fr.tailNext + 1) % cap(fr.tail)
			fr.evicted.Add(1)
		}
		fr.retainedSpans += int64(e.spans)
	default:
		e.reason = "sampled"
		fr.seen++
		switch {
		case len(fr.sampled) < cap(fr.sampled):
			fr.sampled = append(fr.sampled, e)
			fr.sampledKept.Add(1)
			fr.retainedSpans += int64(e.spans)
		case cap(fr.sampled) > 0 && fr.nextRand()%fr.seen < uint64(cap(fr.sampled)):
			// Algorithm R: the n-th candidate replaces a uniformly
			// chosen resident with probability k/n.
			idx := int(fr.nextRand() % uint64(len(fr.sampled)))
			evict = fr.sampled[idx].t
			fr.retainedSpans -= int64(fr.sampled[idx].spans)
			fr.sampled[idx] = e
			fr.sampledKept.Add(1)
			fr.evicted.Add(1)
			fr.retainedSpans += int64(e.spans)
		default:
			evict = t // not retained
		}
	}
	fr.mu.Unlock()
	if evict != nil {
		fr.recycle(evict)
	}
}

// recycle resets a no-longer-retained tracer back into the pool,
// unless detached work still holds it (then the GC reclaims it).
func (fr *FlightRecorder) recycle(t *Tracer) {
	if t.InUse() {
		fr.skippedBusy.Add(1)
		return
	}
	t.Reset()
	fr.recycled.Add(1)
	fr.pool.Put(t)
}

// FlightRecorderStats is a point-in-time counter snapshot.
type FlightRecorderStats struct {
	Requests       int64 `json:"requests"`
	RetainedSlow   int64 `json:"retained_slow"`
	RetainedErr    int64 `json:"retained_error"`
	SampledKept    int64 `json:"sampled"`
	Evicted        int64 `json:"evicted"`
	Recycled       int64 `json:"recycled"`
	SkippedBusy    int64 `json:"skipped_busy"`
	RetainedTraces int   `json:"retained_traces"`
	RetainedSpans  int64 `json:"retained_spans"`
}

// Stats snapshots the recorder counters. Nil-safe (zero stats).
func (fr *FlightRecorder) Stats() FlightRecorderStats {
	if fr == nil {
		return FlightRecorderStats{}
	}
	fr.mu.Lock()
	traces := len(fr.tail) + len(fr.sampled)
	spans := fr.retainedSpans
	fr.mu.Unlock()
	return FlightRecorderStats{
		Requests:       fr.requests.Load(),
		RetainedSlow:   fr.retainedSlow.Load(),
		RetainedErr:    fr.retainedErr.Load(),
		SampledKept:    fr.sampledKept.Load(),
		Evicted:        fr.evicted.Load(),
		Recycled:       fr.recycled.Load(),
		SkippedBusy:    fr.skippedBusy.Load(),
		RetainedTraces: traces,
		RetainedSpans:  spans,
	}
}

// RegisterMetrics exposes the recorder as the cnnperfd_fr_* metric
// families on reg (exposition-time Func bridges; nothing is
// double-counted).
func (fr *FlightRecorder) RegisterMetrics(reg *Registry) {
	reg.CounterFunc("cnnperfd_fr_requests_total",
		"Requests observed by the flight recorder.",
		func() float64 { return float64(fr.requests.Load()) })
	reg.CounterFunc("cnnperfd_fr_retained_slow_total",
		"Traces retained because the request exceeded the slow threshold.",
		func() float64 { return float64(fr.retainedSlow.Load()) })
	reg.CounterFunc("cnnperfd_fr_retained_error_total",
		"Traces retained because the request errored (5xx).",
		func() float64 { return float64(fr.retainedErr.Load()) })
	reg.CounterFunc("cnnperfd_fr_sampled_total",
		"Ordinary traces admitted to the reservoir sample.",
		func() float64 { return float64(fr.sampledKept.Load()) })
	reg.CounterFunc("cnnperfd_fr_evictions_total",
		"Retained traces evicted by ring wraparound or reservoir replacement.",
		func() float64 { return float64(fr.evicted.Load()) })
	reg.CounterFunc("cnnperfd_fr_recycled_tracers_total",
		"Tracers reset and returned to the capture pool.",
		func() float64 { return float64(fr.recycled.Load()) })
	reg.GaugeFunc("cnnperfd_fr_retained_traces",
		"Traces currently retained (tail ring + reservoir).",
		func() float64 { return float64(fr.Stats().RetainedTraces) })
	reg.GaugeFunc("cnnperfd_fr_retained_spans",
		"Spans across all currently retained traces.",
		func() float64 { return float64(fr.Stats().RetainedSpans) })
}

// RetainedTrace summarizes one retained trace for listings.
type RetainedTrace struct {
	Seq        uint64  `json:"seq"`
	TraceID    string  `json:"trace_id"`
	Reason     string  `json:"reason"`
	Endpoint   string  `json:"endpoint"`
	RequestID  string  `json:"request_id"`
	Status     int     `json:"status"`
	DurationMs float64 `json:"duration_ms"`
	Spans      int     `json:"spans"`
}

// entriesLocked returns the retained entries ordered by capture
// sequence; caller holds fr.mu.
func (fr *FlightRecorder) entriesLocked() []frEntry {
	out := make([]frEntry, 0, len(fr.tail)+len(fr.sampled))
	out = append(out, fr.tail...)
	out = append(out, fr.sampled...)
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// Traces lists the currently retained traces in capture order.
// Nil-safe (nil).
func (fr *FlightRecorder) Traces() []RetainedTrace {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]RetainedTrace, 0, len(fr.tail)+len(fr.sampled))
	for _, e := range fr.entriesLocked() {
		out = append(out, RetainedTrace{
			Seq:        e.seq,
			TraceID:    e.root.TraceID().String(),
			Reason:     e.reason,
			Endpoint:   e.meta.Endpoint,
			RequestID:  e.meta.RequestID,
			Status:     e.meta.Status,
			DurationMs: float64(e.meta.Duration.Nanoseconds()) / 1e6,
			Spans:      e.spans,
		})
	}
	return out
}

// WriteChromeTrace exports the retained traces (optionally filtered to
// one trace ID, 32-hex wire form) as a single Chrome trace document.
// The whole event list is built under the recorder lock so a
// concurrent eviction can never recycle a tracer mid-export.
func (fr *FlightRecorder) WriteChromeTrace(w io.Writer, traceID string) error {
	if fr == nil {
		return fmt.Errorf("flight recorder disabled")
	}
	fr.mu.Lock()
	events := []chromeEvent{processNameEvent(1, fr.cfg.Process)}
	lanes := &laneAllocator{}
	for _, e := range fr.entriesLocked() {
		if traceID != "" && e.root.TraceID().String() != traceID {
			continue
		}
		rootIdx := len(events)
		for _, lane := range assignLanes([]*Span{e.root}, lanes, -1, time.Time{}) {
			events = appendSpanEvents(events, lane.span, 1, lane.tid, lanes, fr.epoch)
		}
		if rootIdx < len(events) {
			if events[rootIdx].Args == nil {
				events[rootIdx].Args = make(map[string]any, 5)
			}
			events[rootIdx].Args["fr_reason"] = e.reason
			events[rootIdx].Args["fr_endpoint"] = e.meta.Endpoint
			events[rootIdx].Args["fr_status"] = e.meta.Status
			events[rootIdx].Args["fr_duration_ms"] = float64(e.meta.Duration.Nanoseconds()) / 1e6
			if e.meta.RequestID != "" {
				events[rootIdx].Args["fr_request_id"] = e.meta.RequestID
			}
		}
	}
	fr.mu.Unlock()
	return writeChromeDoc(w, events, fr.epoch)
}

// WriteDir writes one Chrome trace file per retained trace into dir
// (created if missing), named fr-<seq>-<reason>-<trace id>.json, and
// reports how many files were written. Nil-safe (0, nil).
func (fr *FlightRecorder) WriteDir(dir string) (int, error) {
	if fr == nil {
		return 0, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("flight recorder: %w", err)
	}
	n := 0
	for _, tr := range fr.Traces() {
		name := filepath.Join(dir, fmt.Sprintf("fr-%04d-%s-%s.json", tr.Seq, tr.Reason, tr.TraceID))
		f, err := os.Create(name)
		if err != nil {
			return n, fmt.Errorf("flight recorder: %w", err)
		}
		err = fr.WriteChromeTrace(f, tr.TraceID)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return n, fmt.Errorf("flight recorder: write %s: %w", name, err)
		}
		n++
	}
	return n, nil
}
