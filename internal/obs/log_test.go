package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedLogger returns a logger with a frozen clock so lines are
// byte-reproducible.
func fixedLogger(buf *bytes.Buffer, level Level) *Logger {
	l := NewLogger(buf, level)
	l.now = func() time.Time { return time.Date(2026, 8, 6, 12, 0, 0, 123456789, time.UTC) }
	return l
}

func TestLoggerLineFormat(t *testing.T) {
	var buf bytes.Buffer
	l := fixedLogger(&buf, LevelDebug)
	ctx := WithRequestID(context.Background(), "abc123")
	l.InfoCtx(ctx, "request done",
		String("path", "/v1/predict"),
		Int("status", 200),
		Float64("dur", 1.5),
		Bool("cached", true),
		Duration("window", 2*time.Millisecond),
	)
	got := buf.String()
	want := `{"ts":"2026-08-06T12:00:00.123456789Z","level":"info","msg":"request done","request_id":"abc123","path":"/v1/predict","status":200,"dur":1.5,"cached":true,"window":"2ms"}` + "\n"
	if got != want {
		t.Fatalf("line:\n%q\nwant:\n%q", got, want)
	}
	// And it must be valid JSON.
	var m map[string]any
	if err := json.Unmarshal([]byte(got), &m); err != nil {
		t.Fatalf("line is not JSON: %v", err)
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	l := fixedLogger(&buf, LevelWarn)
	l.Debug("hidden")
	l.Info("hidden")
	l.Warn("shown")
	l.Error("shown too", Attr{Key: "err", Value: errors.New("boom")})
	lines := strings.Count(buf.String(), "\n")
	if lines != 2 {
		t.Fatalf("wrote %d lines, want 2:\n%s", lines, buf.String())
	}
	if !strings.Contains(buf.String(), `"err":"boom"`) {
		t.Fatalf("error attr not rendered: %s", buf.String())
	}
	l.SetLevel(LevelDebug)
	l.Debug("now visible")
	if !strings.Contains(buf.String(), "now visible") {
		t.Fatalf("SetLevel did not lower the threshold")
	}
}

func TestLoggerWith(t *testing.T) {
	var buf bytes.Buffer
	l := fixedLogger(&buf, LevelInfo).With(String("app", "cnnperfd"))
	l.Info("hello")
	if !strings.Contains(buf.String(), `"app":"cnnperfd"`) {
		t.Fatalf("base attr missing: %s", buf.String())
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Info("nothing")
	l.ErrorCtx(context.Background(), "nothing")
	if l.With(String("a", "b")) != nil {
		t.Fatal("With on nil logger should stay nil")
	}
	if l.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
	l.SetLevel(LevelDebug)
}

func TestLoggerEscaping(t *testing.T) {
	var buf bytes.Buffer
	l := fixedLogger(&buf, LevelInfo)
	l.Info("quote \" backslash \\ newline \n tab \t done", String("k", "v\"w"))
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("escaped line is not JSON: %v\n%s", err, buf.String())
	}
	if m["msg"] != "quote \" backslash \\ newline \n tab \t done" {
		t.Fatalf("msg round-trip failed: %q", m["msg"])
	}
	if m["k"] != `v"w` {
		t.Fatalf("attr round-trip failed: %q", m["k"])
	}
}

func TestLoggerConcurrentLinesStayWhole(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Info("line", Int("worker", i), Int("j", j))
			}
		}(i)
	}
	wg.Wait()
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("interleaved line: %v\n%q", err, line)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "INFO": LevelInfo,
		"warn": LevelWarn, "warning": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestRequestIDHelpers(t *testing.T) {
	ctx := context.Background()
	if RequestID(ctx) != "" {
		t.Fatal("empty ctx has a request id")
	}
	ctx = WithRequestID(ctx, "rid-1")
	if RequestID(ctx) != "rid-1" {
		t.Fatal("request id not propagated")
	}
	a, b := NewRequestID(), NewRequestID()
	if a == b || len(a) != 16 {
		t.Fatalf("NewRequestID: %q %q", a, b)
	}
}
