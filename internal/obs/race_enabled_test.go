//go:build race

package obs

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation allocates, so zero-alloc tests are meaningless (and
// false-failing) under -race.
const raceEnabled = true
