package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
	"time"
)

// W3C Trace Context propagation: a `traceparent` header ties spans
// recorded in different processes (gateway, replicas, load generator)
// into one distributed trace. The gateway injects the header on every
// proxied attempt; the replica middleware extracts it so its local
// span forest hangs off the remote root, and `obscheck stitch` later
// merges the per-process Chrome trace files by trace ID.

// TraceparentHeader is the canonical (lowercase) W3C header name.
const TraceparentHeader = "traceparent"

// TraceID is a 16-byte W3C trace identifier (big-endian hex on the wire).
type TraceID [16]byte

// IsZero reports whether the trace ID is all zeroes (invalid per spec).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String returns the 32-hex-digit wire form.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// SpanID is an 8-byte W3C parent/span identifier.
type SpanID [8]byte

// IsZero reports whether the span ID is all zeroes (invalid per spec).
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String returns the 16-hex-digit wire form.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// TraceContext is a decoded traceparent: the trace identity plus the
// caller's span ID, which becomes the parent of the next local root.
type TraceContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// Valid reports whether both identifiers are non-zero, as the W3C spec
// requires of a usable traceparent.
func (tc TraceContext) Valid() bool { return !tc.TraceID.IsZero() && !tc.SpanID.IsZero() }

// Traceparent renders the version-00 wire form
// ("00-<trace-id>-<span-id>-<flags>").
func (tc TraceContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x", tc.TraceID, tc.SpanID, tc.Flags)
}

// NewTraceContext mints a fresh sampled trace context from
// crypto/rand, for callers (the load generator, the gateway edge) that
// originate a trace rather than continue one.
func NewTraceContext() TraceContext {
	var b [24]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Effectively unreachable; fall back to the clock so IDs are
		// still distinct enough for correlation.
		binary.BigEndian.PutUint64(b[:8], uint64(time.Now().UnixNano()))
		binary.BigEndian.PutUint64(b[8:16], splitmix64(uint64(time.Now().UnixNano())))
		binary.BigEndian.PutUint64(b[16:], splitmix64(binary.BigEndian.Uint64(b[:8])))
	}
	var tc TraceContext
	copy(tc.TraceID[:], b[:16])
	copy(tc.SpanID[:], b[16:])
	if !tc.Valid() { // astronomically unlikely all-zero draw
		tc.TraceID[0], tc.SpanID[0] = 1, 1
	}
	tc.Flags = 0x01
	return tc
}

// ParseTraceparent decodes a version-00 traceparent header value. Per
// the W3C spec it rejects version "ff", malformed field lengths,
// non-hex digits, and all-zero trace or span IDs; unknown (non-ff)
// versions are accepted if the 00-prefix fields parse.
func ParseTraceparent(s string) (TraceContext, error) {
	var tc TraceContext
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return tc, fmt.Errorf("traceparent: want 4 fields, got %d", len(parts))
	}
	ver, tid, sid, flags := parts[0], parts[1], parts[2], parts[3]
	if len(ver) != 2 {
		return tc, fmt.Errorf("traceparent: version field %q is not 2 hex digits", ver)
	}
	if _, err := hex.DecodeString(ver); err != nil {
		return tc, fmt.Errorf("traceparent: bad version %q: %w", ver, err)
	}
	if strings.EqualFold(ver, "ff") {
		return tc, fmt.Errorf("traceparent: version ff is forbidden")
	}
	if ver == "00" && len(parts) != 4 {
		return tc, fmt.Errorf("traceparent: version 00 wants exactly 4 fields, got %d", len(parts))
	}
	if len(tid) != 32 {
		return tc, fmt.Errorf("traceparent: trace-id %q is not 32 hex digits", tid)
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(tid)); err != nil {
		return tc, fmt.Errorf("traceparent: bad trace-id: %w", err)
	}
	if tc.TraceID.IsZero() {
		return tc, fmt.Errorf("traceparent: all-zero trace-id")
	}
	if len(sid) != 16 {
		return tc, fmt.Errorf("traceparent: parent-id %q is not 16 hex digits", sid)
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(sid)); err != nil {
		return tc, fmt.Errorf("traceparent: bad parent-id: %w", err)
	}
	if tc.SpanID.IsZero() {
		return tc, fmt.Errorf("traceparent: all-zero parent-id")
	}
	if len(flags) != 2 {
		return tc, fmt.Errorf("traceparent: flags field %q is not 2 hex digits", flags)
	}
	fb, err := hex.DecodeString(flags)
	if err != nil {
		return tc, fmt.Errorf("traceparent: bad flags: %w", err)
	}
	tc.Flags = fb[0]
	return tc, nil
}

// WithRemoteParent records a remote trace context in ctx: the next
// root span started under ctx adopts its trace ID and parents itself
// under its span ID. Invalid contexts are ignored.
func WithRemoteParent(ctx context.Context, tc TraceContext) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteParentKey, tc)
}

// RemoteParent returns the remote trace context recorded in ctx, if any.
func RemoteParent(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(remoteParentKey).(TraceContext)
	return tc, ok
}

// Traceparent renders the header value for the current position in the
// trace: the active span's context if one is recorded, else the remote
// parent carried by ctx, else "".
func Traceparent(ctx context.Context) string {
	if tc := SpanFrom(ctx).TraceContext(); tc.Valid() {
		return tc.Traceparent()
	}
	if tc, ok := RemoteParent(ctx); ok {
		return tc.Traceparent()
	}
	return ""
}

// Transplant copies the observability identity of src — tracer,
// current span, request ID — onto dst, which supplies cancellation and
// deadlines. The batching executor uses it to graft spans for work it
// performs on behalf of a request onto that request's trace without
// inheriting the request's cancellation.
func Transplant(dst, src context.Context) context.Context {
	if t, ok := src.Value(tracerKey).(*Tracer); ok {
		dst = context.WithValue(dst, tracerKey, t)
	}
	if sp, ok := src.Value(spanKey).(*Span); ok {
		dst = context.WithValue(dst, spanKey, sp)
	}
	if id, ok := src.Value(requestIDKey).(string); ok {
		dst = context.WithValue(dst, requestIDKey, id)
	}
	return dst
}
