package dca

import (
	"sync/atomic"

	"cnnperf/internal/obs"
)

// The batched engine publishes lock-free process-wide counters so the
// serving daemon can expose allocation and batch-occupancy telemetry
// without dca importing the server (the same process-wide hook pattern
// as ptxanalysis.RegisterMetrics). Recording is a handful of atomic
// adds per batched execution — never per instruction.

var (
	batchCalls    atomic.Int64 // executeBatch invocations
	batchLanes    atomic.Int64 // lanes (threads) across all invocations
	batchSegments atomic.Int64 // control-flow segments (batches) run
	batchLaneSegs atomic.Int64 // lane·segment products: occupancy numerator
	batchSplits   atomic.Int64 // divergence splits (branch or loop-key)
	arenaGrows    atomic.Int64 // slab growths (warm-up and high-water bumps)
	arenaBytes    atomic.Int64 // high-water retained arena footprint, bytes
)

// BatchExecStats is a snapshot of the batched-execution counters.
type BatchExecStats struct {
	// Calls counts batched executions (one per analyzed launch pair or
	// ExecuteBatch call).
	Calls int64
	// Lanes counts the threads those calls carried.
	Lanes int64
	// Segments counts the control-flow segments actually run: a batch
	// that never diverges is one segment; every split adds one.
	Segments int64
	// LaneSegments sums lanes over segments; LaneSegments/Segments is
	// the mean batch occupancy.
	LaneSegments int64
	// Splits counts divergence events (branch partitions and unequal
	// closed-form loop keys).
	Splits int64
	// ArenaGrows counts slab growths across all arenas — zero growth
	// between two snapshots proves an allocation-free steady state.
	ArenaGrows int64
	// ArenaBytes is the largest retained arena footprint seen.
	ArenaBytes int64
}

// BatchStats snapshots the process-wide batched-execution counters.
func BatchStats() BatchExecStats {
	return BatchExecStats{
		Calls:        batchCalls.Load(),
		Lanes:        batchLanes.Load(),
		Segments:     batchSegments.Load(),
		LaneSegments: batchLaneSegs.Load(),
		Splits:       batchSplits.Load(),
		ArenaGrows:   arenaGrows.Load(),
		ArenaBytes:   arenaBytes.Load(),
	}
}

// recordArenaBytes raises the high-water retained-bytes mark.
func recordArenaBytes(n int64) {
	for {
		cur := arenaBytes.Load()
		if n <= cur || arenaBytes.CompareAndSwap(cur, n) {
			return
		}
	}
}

// batchLaneBuckets grade batched executions by lane count: the analysis
// path runs two representative threads; benchmarks and future bulk
// callers run warp-sized batches.
var batchLaneBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

var batchLaneHist atomic.Pointer[obs.Histogram]

// RegisterMetrics installs the package's instruments into the given
// registry. Call once at process startup (the serving daemon does);
// later calls swap the target registry.
func RegisterMetrics(reg *obs.Registry) {
	batchLaneHist.Store(reg.Histogram("cnnperfd_dca_batch_lanes",
		"Threads per batched compiled execution.", batchLaneBuckets))
}

// observeBatch records one batched execution when a metrics registry is
// wired in.
func observeBatch(lanes int) {
	batchCalls.Add(1)
	batchLanes.Add(int64(lanes))
	if h := batchLaneHist.Load(); h != nil {
		h.Observe(float64(lanes))
	}
}
