package dca

import (
	"fmt"
	"strconv"
	"strings"

	"cnnperf/internal/ptx"
)

// ThreadCtx fixes the special-register values for one representative
// thread of a launch.
type ThreadCtx struct {
	// CtaID is %ctaid.x.
	CtaID int64
	// Tid is %tid.x.
	Tid int64
	// NTid is %ntid.x (block size).
	NTid int64
	// NCtaID is %nctaid.x (grid size).
	NCtaID int64
}

// ClassHist is a dense per-class instruction histogram, indexed by
// ptx.Class. The hot path accumulates into this fixed-size array —
// value-comparable, copyable, allocation-free — and only the
// serialization boundary (KernelReport/Report) converts to the sparse
// map form.
type ClassHist [ptx.NumClasses]int64

// Map returns the sparse map form of the histogram, keeping only
// nonzero entries (the historical ExecResult.PerClass encoding).
func (h *ClassHist) Map() map[ptx.Class]int64 {
	m := make(map[ptx.Class]int64, 8)
	for c, v := range h {
		if v != 0 {
			m[ptx.Class(c)] = v
		}
	}
	return m
}

// ExecResult is the outcome of abstractly executing one thread.
type ExecResult struct {
	// Steps is the number of dynamically executed instructions.
	Steps int64
	// PerClass histograms the executed instructions by class.
	PerClass ClassHist
	// Interpreted counts the instructions actually evaluated (the slice);
	// Steps-Interpreted instructions were only counted.
	Interpreted int64
	// BackBranches counts taken backward branches — the total loop
	// iterations of the thread.
	BackBranches int64
}

// ExecOptions tunes the abstract executor.
type ExecOptions struct {
	// MaxSteps aborts runaway executions (default 50M).
	MaxSteps int64
	// Full interprets every instruction instead of only the control
	// slice (global loads read as zero). Used by the ablation study.
	Full bool
	// Reference forces the reference tree-walking interpreter instead of
	// the compiled register-slot bytecode engine. Results are identical
	// by construction (and by the differential tests); the flag exists
	// for differential testing and as an escape hatch.
	Reference bool
	// Unbatched forces the compiled engine to execute representative
	// threads one at a time instead of as a warp-style batch. Results
	// are identical either way (the zoo-wide equivalence tests enforce
	// it); the flag exists for differential testing and benchmarking.
	Unbatched bool
}

// effectiveMaxSteps resolves the MaxSteps default shared by both
// execution engines.
func (o ExecOptions) effectiveMaxSteps() int64 {
	if o.MaxSteps <= 0 {
		return 50_000_000
	}
	return o.MaxSteps
}

// ExecuteThread runs one thread through the kernel, evaluating only the
// control slice (or everything under opts.Full) and counting every
// instruction the thread would execute. This is the reference
// interpreter; CompiledKernel.Execute is the fast path and must agree
// with it exactly.
func ExecuteThread(k *ptx.Kernel, slice *ControlSlice, params map[string]int64, ctx ThreadCtx, opts ExecOptions) (res ExecResult, err error) {
	maxSteps := opts.effectiveMaxSteps()
	env := make(map[string]int64, 32)
	n := len(k.Body)
	// Decode every opcode once up front: the loop below revisits the
	// same pc once per loop iteration, and string-splitting the opcode
	// each time dominated the interpreter profile.
	dec := make([]ptx.OpInfo, n)
	for i := range k.Body {
		dec[i] = ptx.Decode(k.Body[i].Opcode)
	}
	pc := 0
	for pc < n {
		if res.Steps >= maxSteps {
			return res, fmt.Errorf("dca: kernel %q exceeded %d steps (infinite loop?)", k.Name, maxSteps)
		}
		in := &k.Body[pc]
		info := &dec[pc]
		res.Steps++
		res.PerClass[info.Class]++
		interpret := opts.Full || slice.InSlice[pc]
		if !interpret {
			pc++
			continue
		}
		res.Interpreted++

		// Guard predicate.
		taken := true
		if in.Pred != "" {
			v, ok := env[in.Pred]
			if !ok {
				return res, fmt.Errorf("dca: kernel %q pc %d: predicate %s undefined", k.Name, pc, in.Pred)
			}
			taken = v != 0
			if in.PredNeg {
				taken = !taken
			}
		}
		if info.Branch {
			if taken {
				tgt, err := k.Target(in.Operands[0])
				if err != nil {
					return res, fmt.Errorf("dca: %w", err)
				}
				if tgt <= pc {
					res.BackBranches++
				}
				pc = tgt
			} else {
				pc++
			}
			continue
		}
		if info.Exit {
			return res, nil
		}
		if taken {
			if err := stepDecoded(k, *in, pc, info, env, params, ctx, opts); err != nil {
				return res, err
			}
		}
		pc++
	}
	return res, nil
}

// step evaluates one non-branch instruction into env. It decodes the
// opcode on every call; hot loops pre-decode and call stepDecoded.
func step(k *ptx.Kernel, in ptx.Instruction, pc int, env map[string]int64, params map[string]int64, ctx ThreadCtx, opts ExecOptions) error {
	info := ptx.Decode(in.Opcode)
	return stepDecoded(k, in, pc, &info, env, params, ctx, opts)
}

// stepDecoded evaluates one non-branch instruction into env using the
// pre-decoded opcode info.
func stepDecoded(k *ptx.Kernel, in ptx.Instruction, pc int, info *ptx.OpInfo, env map[string]int64, params map[string]int64, ctx ThreadCtx, opts ExecOptions) error {
	val := func(op string) (int64, error) { return operandValue(op, env, ctx) }
	dst := in.Dest()
	src := in.Sources()
	need := func(want int) error {
		if len(src) < want {
			return fmt.Errorf("dca: kernel %q pc %d: %s needs %d sources, has %d", k.Name, pc, in.Opcode, want, len(src))
		}
		return nil
	}
	root := info.Root
	switch root {
	case "mov", "cvt", "cvta", "abs", "neg", "not":
		if err := need(1); err != nil {
			return err
		}
		v, err := val(src[0])
		if err != nil {
			return err
		}
		switch root {
		case "neg":
			v = -v
		case "not":
			v = ^v
		case "abs":
			if v < 0 {
				v = -v
			}
		}
		env[dst] = v
	case "ld":
		if err := need(1); err != nil {
			return err
		}
		if strings.Contains(in.Opcode, "param") {
			name := strings.Trim(src[0], "[]")
			v, ok := params[name]
			if !ok {
				return fmt.Errorf("dca: kernel %q pc %d: no value for parameter %q", k.Name, pc, name)
			}
			env[dst] = v
			return nil
		}
		// Global/shared loads carry data, never control, in the
		// generated subset; they appear here only in Full mode.
		if !opts.Full {
			return fmt.Errorf("dca: kernel %q pc %d: data load %q inside control slice", k.Name, pc, in.Opcode)
		}
		env[dst] = 0
	case "st":
		// Stores have no register effects.
	case "add", "sub", "mul", "div", "rem", "min", "max", "and", "or", "xor", "shl", "shr":
		if err := need(2); err != nil {
			return err
		}
		a, err := val(src[0])
		if err != nil {
			return err
		}
		b, err := val(src[1])
		if err != nil {
			return err
		}
		v, err := intBinop(root, a, b)
		if err != nil {
			return fmt.Errorf("dca: kernel %q pc %d: %w", k.Name, pc, err)
		}
		env[dst] = v
	case "mad", "fma":
		if err := need(3); err != nil {
			return err
		}
		a, err := val(src[0])
		if err != nil {
			return err
		}
		b, err := val(src[1])
		if err != nil {
			return err
		}
		c, err := val(src[2])
		if err != nil {
			return err
		}
		env[dst] = a*b + c
	case "setp":
		if err := need(2); err != nil {
			return err
		}
		a, err := val(src[0])
		if err != nil {
			return err
		}
		b, err := val(src[1])
		if err != nil {
			return err
		}
		r, err := compare(info.Cmp, a, b)
		if err != nil {
			return fmt.Errorf("dca: kernel %q pc %d: %w", k.Name, pc, err)
		}
		env[dst] = r
	case "selp":
		if err := need(3); err != nil {
			return err
		}
		a, err := val(src[0])
		if err != nil {
			return err
		}
		b, err := val(src[1])
		if err != nil {
			return err
		}
		p, err := val(src[2])
		if err != nil {
			return err
		}
		if p != 0 {
			env[dst] = a
		} else {
			env[dst] = b
		}
	case "rcp", "sqrt", "rsqrt", "ex2", "lg2", "sin", "cos":
		// SFU float ops: value-irrelevant for control in our subset.
		env[dst] = 0
	case "bar", "membar":
		// Barriers: no register effects.
	default:
		return fmt.Errorf("dca: kernel %q pc %d: cannot interpret opcode %q", k.Name, pc, in.Opcode)
	}
	return nil
}

// cmpOf extracts the comparison mnemonic from a setp opcode.
func cmpOf(opcode string) string {
	parts := strings.Split(opcode, ".")
	if len(parts) >= 2 {
		return parts[1]
	}
	return ""
}

func compare(cmp string, a, b int64) (int64, error) {
	var r bool
	switch cmp {
	case "lt":
		r = a < b
	case "le":
		r = a <= b
	case "gt":
		r = a > b
	case "ge":
		r = a >= b
	case "eq":
		r = a == b
	case "ne":
		r = a != b
	default:
		return 0, fmt.Errorf("unknown comparison %q", cmp)
	}
	if r {
		return 1, nil
	}
	return 0, nil
}

func intBinop(root string, a, b int64) (int64, error) {
	switch root {
	case "add":
		return a + b, nil
	case "sub":
		return a - b, nil
	case "mul":
		return a * b, nil
	case "div":
		if b == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return a / b, nil
	case "rem":
		if b == 0 {
			return 0, fmt.Errorf("remainder by zero")
		}
		return a % b, nil
	case "min":
		if a < b {
			return a, nil
		}
		return b, nil
	case "max":
		if a > b {
			return a, nil
		}
		return b, nil
	case "and":
		return a & b, nil
	case "or":
		return a | b, nil
	case "xor":
		return a ^ b, nil
	case "shl":
		return a << uint(b&63), nil
	case "shr":
		return int64(uint64(a) >> uint(b&63)), nil
	}
	return 0, fmt.Errorf("unknown binop %q", root)
}

// operandValue resolves an operand to an integer: registers from env,
// special registers from the thread context, decimal immediates, and PTX
// hex-float immediates (bit pattern).
func operandValue(op string, env map[string]int64, ctx ThreadCtx) (int64, error) {
	switch op {
	case "%tid.x":
		return ctx.Tid, nil
	case "%ntid.x":
		return ctx.NTid, nil
	case "%ctaid.x":
		return ctx.CtaID, nil
	case "%nctaid.x":
		return ctx.NCtaID, nil
	}
	if strings.HasPrefix(op, "%") {
		v, ok := env[op]
		if !ok {
			return 0, fmt.Errorf("dca: register %s read before write", op)
		}
		return v, nil
	}
	if strings.HasPrefix(op, "0f") || strings.HasPrefix(op, "0F") {
		bits, err := strconv.ParseUint(op[2:], 16, 64)
		if err != nil {
			return 0, fmt.Errorf("dca: bad float immediate %q", op)
		}
		return int64(bits), nil
	}
	v, err := strconv.ParseInt(op, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("dca: cannot evaluate operand %q", op)
	}
	return v, nil
}
