package dca

import (
	"fmt"
	"testing"
	"testing/quick"

	"cnnperf/internal/ptx"
)

// buildSequentialLoops constructs a kernel with len(bounds) independent
// counted loops; loop i runs bounds[i] times with fills[i] FP filler
// instructions in its body. The closed-form dynamic instruction count is
// sum(1 + n_i*(m_i+3)) + 1.
func buildSequentialLoops(bounds, fills []int) (*ptx.Kernel, int64) {
	k := &ptx.Kernel{Name: "seq"}
	var want int64
	for i, n := range bounds {
		m := fills[i]
		idx := fmt.Sprintf("%%r%d", i+1)
		k.Append(ptx.Instruction{Opcode: "mov.u32", Operands: []string{idx, "0"}})
		label := fmt.Sprintf("L%d", i)
		if err := k.AddLabel(label); err != nil {
			panic(err)
		}
		for f := 0; f < m; f++ {
			reg := fmt.Sprintf("%%f%d", i*100+f+1)
			k.Append(ptx.Instruction{Opcode: "mov.f32", Operands: []string{reg, "0f00000000"}})
		}
		k.Append(ptx.Instruction{Opcode: "add.s32", Operands: []string{idx, idx, "1"}})
		pred := fmt.Sprintf("%%p%d", i+1)
		k.Append(ptx.Instruction{Opcode: "setp.lt.s32", Operands: []string{pred, idx, fmt.Sprintf("%d", n)}})
		k.Append(ptx.Instruction{Pred: pred, Opcode: "bra", Operands: []string{label}})
		want += 1 + int64(n)*int64(m+3)
	}
	k.Append(ptx.Instruction{Opcode: "ret"})
	return k, want + 1
}

// TestSequentialLoopCountProperty: for random loop structures, the
// sliced abstract execution counts exactly the closed-form dynamic
// instruction total.
func TestSequentialLoopCountProperty(t *testing.T) {
	f := func(rawBounds, rawFills [4]uint8, loops uint8) bool {
		l := int(loops%4) + 1
		bounds := make([]int, l)
		fills := make([]int, l)
		for i := 0; i < l; i++ {
			bounds[i] = int(rawBounds[i]%50) + 1
			fills[i] = int(rawFills[i] % 6)
		}
		k, want := buildSequentialLoops(bounds, fills)
		g := BuildDepGraph(k)
		s := BuildControlSlice(k, g)
		res, err := ExecuteThread(k, s, nil, ThreadCtx{NTid: 1, NCtaID: 1}, ExecOptions{})
		if err != nil {
			t.Logf("execute: %v", err)
			return false
		}
		// Filler instructions must be outside the slice; controls inside.
		if s.Size > len(k.Body) {
			return false
		}
		return res.Steps == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestNestedLoopCountProperty: a doubly nested loop executes
// 2 + a*(4 + 3b) instructions for outer bound a and inner bound b.
func TestNestedLoopCountProperty(t *testing.T) {
	build := func(a, b int) *ptx.Kernel {
		k := &ptx.Kernel{Name: "nested"}
		k.Append(ptx.Instruction{Opcode: "mov.u32", Operands: []string{"%r1", "0"}})
		if err := k.AddLabel("OUT"); err != nil {
			panic(err)
		}
		k.Append(ptx.Instruction{Opcode: "mov.u32", Operands: []string{"%r2", "0"}})
		if err := k.AddLabel("IN"); err != nil {
			panic(err)
		}
		k.Append(ptx.Instruction{Opcode: "add.s32", Operands: []string{"%r2", "%r2", "1"}})
		k.Append(ptx.Instruction{Opcode: "setp.lt.s32", Operands: []string{"%p2", "%r2", fmt.Sprintf("%d", b)}})
		k.Append(ptx.Instruction{Pred: "%p2", Opcode: "bra", Operands: []string{"IN"}})
		k.Append(ptx.Instruction{Opcode: "add.s32", Operands: []string{"%r1", "%r1", "1"}})
		k.Append(ptx.Instruction{Opcode: "setp.lt.s32", Operands: []string{"%p1", "%r1", fmt.Sprintf("%d", a)}})
		k.Append(ptx.Instruction{Pred: "%p1", Opcode: "bra", Operands: []string{"OUT"}})
		k.Append(ptx.Instruction{Opcode: "ret"})
		return k
	}
	f := func(ra, rb uint8) bool {
		a, b := int(ra%20)+1, int(rb%20)+1
		k := build(a, b)
		g := BuildDepGraph(k)
		s := BuildControlSlice(k, g)
		res, err := ExecuteThread(k, s, nil, ThreadCtx{}, ExecOptions{})
		if err != nil {
			t.Logf("execute: %v", err)
			return false
		}
		want := int64(2 + a*(4+3*b))
		if res.Steps != want {
			t.Logf("a=%d b=%d: steps=%d want=%d", a, b, res.Steps, want)
			return false
		}
		// The nested loop has exactly two back edges in the CFG.
		cfg, err := BuildCFG(k)
		if err != nil {
			return false
		}
		return len(cfg.BackEdges()) == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSliceStableUnderFillerProperty: adding pure-FP filler instructions
// never changes the slice size (they carry no control dependence).
func TestSliceStableUnderFillerProperty(t *testing.T) {
	f := func(rawBound, rawFill uint8) bool {
		n := int(rawBound%30) + 1
		fill := int(rawFill % 8)
		kNo, _ := buildSequentialLoops([]int{n}, []int{0})
		kFill, _ := buildSequentialLoops([]int{n}, []int{fill})
		sNo := BuildControlSlice(kNo, BuildDepGraph(kNo))
		sFill := BuildControlSlice(kFill, BuildDepGraph(kFill))
		return sNo.Size == sFill.Size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestExecutedScalesLinearlyWithThreads: for any launch whose threads all
// take the in-bounds path, the executed total is active*perThread plus
// the out-of-bounds remainder.
func TestExecutedScalesLinearlyWithThreads(t *testing.T) {
	f := func(rawThreads uint16) bool {
		threads := int64(rawThreads%2000) + 1
		k, _ := buildSequentialLoops([]int{5}, []int{2})
		// Prepend a bounds check like the generator's prologue.
		body := []ptx.Instruction{
			{Opcode: "mov.u32", Operands: []string{"%r100", "%ctaid.x"}},
			{Opcode: "mov.u32", Operands: []string{"%r101", "%ntid.x"}},
			{Opcode: "mov.u32", Operands: []string{"%r102", "%tid.x"}},
			{Opcode: "mad.lo.s32", Operands: []string{"%r103", "%r100", "%r101", "%r102"}},
			{Opcode: "setp.ge.s32", Operands: []string{"%p100", "%r103", fmt.Sprintf("%d", threads)}},
			{Pred: "%p100", Opcode: "bra", Operands: []string{"EXIT"}},
		}
		offset := len(body)
		labels := make(map[string]int)
		for name, idx := range k.Labels {
			labels[name] = idx + offset
		}
		body = append(body, k.Body...)
		labels["EXIT"] = len(body) - 1 // the ret instruction
		k2 := &ptx.Kernel{Name: "guarded", Body: body, Labels: labels}

		g := BuildDepGraph(k2)
		s := BuildControlSlice(k2, g)
		grid := int((threads + 255) / 256)
		inRes, err := ExecuteThread(k2, s, nil, ThreadCtx{CtaID: 0, Tid: 0, NTid: 256, NCtaID: int64(grid)}, ExecOptions{})
		if err != nil {
			t.Logf("in-bounds: %v", err)
			return false
		}
		total := int64(grid) * 256
		wantOOB := int64(7) // 6 prologue + ret
		got := threads*inRes.Steps + (total-threads)*wantOOB
		// Cross-check with the analytic helper used by AnalyzeKernelLaunch.
		if total > threads {
			oobRes, err := ExecuteThread(k2, s, nil, ThreadCtx{CtaID: int64(grid) - 1, Tid: 255, NTid: 256, NCtaID: int64(grid)}, ExecOptions{})
			if err != nil {
				t.Logf("oob: %v", err)
				return false
			}
			if oobRes.Steps != wantOOB {
				t.Logf("oob steps = %d, want %d", oobRes.Steps, wantOOB)
				return false
			}
		}
		return got > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
