package dca

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"cnnperf/internal/ptx"
)

// divergenceKernels are kernel bodies chosen to drive every batched
// control-flow mechanism: uniform fast paths, tid-dependent branch
// splits, per-lane faults, writtenness divergence, unequal closed-form
// loop keys, and step-limit aborts inside loops.
var divergenceKernels = []struct {
	name     string
	body     string
	params   map[string]int64
	full     bool
	maxSteps int64
}{
	{
		name: "uniform_loop",
		body: "mov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.lt.s32 %p1, %r1, 50;\n@%p1 bra L;\nret;\n",
	},
	{
		name: "tid_branch_diverges",
		body: "mov.u32 %r1, %tid.x;\nsetp.lt.s32 %p1, %r1, 4;\n@%p1 bra A;\nmov.u32 %r2, 7;\nsetp.lt.s32 %p2, %r2, 99;\n@%p2 bra B;\nA:\nmov.u32 %r3, 2;\nsetp.lt.s32 %p3, %r3, 5;\n@%p3 bra B;\nB:\nret;\n",
	},
	{
		name: "tid_trip_counts",
		body: "mov.u32 %r2, %tid.x;\nmov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.lt.s32 %p1, %r1, %r2;\n@%p1 bra L;\nret;\n",
	},
	{
		name: "ntid_bound_loop",
		body: "mov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.lt.s32 %p1, %r1, %ntid.x;\n@%p1 bra L;\nret;\n",
	},
	{
		name: "div_by_tid_faults_lane0",
		body: "mov.u32 %r2, %tid.x;\ndiv.s32 %r1, 64, %r2;\nsetp.lt.s32 %p1, %r1, 100;\n@%p1 bra E;\nE:\nret;\n",
	},
	{
		name: "guarded_write_then_read",
		body: "mov.u32 %r1, %tid.x;\nsetp.lt.s32 %p1, %r1, 8;\n@%p1 mov.u32 %r2, 5;\nsetp.lt.s32 %p2, %r2, 9;\n@%p2 bra E;\nE:\nret;\n",
	},
	{
		name: "predicated_exit_varying_guard",
		body: "mov.u32 %r1, %tid.x;\nsetp.lt.s32 %p1, %r1, 4;\n@%p1 ret;\nmov.u32 %r3, 1;\nsetp.lt.s32 %p3, %r3, 2;\n@%p3 bra E;\nE:\nret;\n",
	},
	{
		name:     "step_limit_mixed",
		body:     "mov.u32 %r2, %tid.x;\nmul.lo.s32 %r3, %r2, 100;\nmov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.lt.s32 %p1, %r1, %r3;\n@%p1 bra L;\nret;\n",
		maxSteps: 900,
	},
	{
		name:   "param_bound_uniform",
		body:   "ld.param.u64 %rd1, [p0];\nmov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.lt.s32 %p1, %r1, %rd1;\n@%p1 bra L;\nret;\n",
		params: map[string]int64{"p0": 37},
	},
	{
		name: "ctaid_tid_product_path",
		body: "mov.u32 %r1, %ctaid.x;\nmov.u32 %r2, %ntid.x;\nmul.lo.s32 %r3, %r1, %r2;\nmov.u32 %r4, %tid.x;\nadd.s32 %r5, %r3, %r4;\nsetp.lt.s32 %p1, %r5, 40;\n@%p1 bra E;\nmov.u32 %r6, 1;\nE:\nret;\n",
	},
	{
		name: "full_mode_data_loop",
		body: "mov.u32 %r9, %tid.x;\nmov.u32 %r1, 0;\nmov.f32 %f1, 0f00000000;\nmov.u64 %rd2, 64;\nL:\nld.global.f32 %f2, [%rd2];\nfma.rn.f32 %f1, %f2, %f2, %f1;\nadd.s32 %r1, %r1, 1;\nsetp.lt.s32 %p1, %r1, 20;\n@%p1 bra L;\nret;\n",
		full: true,
	},
	{
		name: "ne_exit_iterated_tid",
		body: "mov.u32 %r2, %tid.x;\nadd.s32 %r2, %r2, 4;\nmov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.ne.s32 %p1, %r1, %r2;\n@%p1 bra L;\nret;\n",
	},
}

// checkLanes runs the batched engine over ctxs and requires every lane
// to reproduce its single-lane reference execution exactly — counts and
// error text.
func checkLanes(t *testing.T, k *ptx.Kernel, params map[string]int64, ctxs []ThreadCtx, opts ExecOptions) {
	t.Helper()
	slice := BuildControlSlice(k, BuildDepGraph(k))
	ck, err := Compile(k, slice, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	out := ck.ExecuteBatch(k, params, ctxs)
	if len(out) != len(ctxs) {
		t.Fatalf("ExecuteBatch returned %d results for %d lanes", len(out), len(ctxs))
	}
	for i, ctx := range ctxs {
		want, werr := ExecuteThread(k, slice, params, ctx, opts)
		got, gerr := out[i].Res, out[i].Err
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("lane %d (ctx %+v): error disagreement: reference=%v batched=%v", i, ctx, werr, gerr)
		}
		if werr != nil {
			if werr.Error() != gerr.Error() {
				t.Fatalf("lane %d (ctx %+v): error text diverged:\nreference: %v\nbatched:   %v", i, ctx, werr, gerr)
			}
			continue
		}
		if got != want {
			t.Fatalf("lane %d (ctx %+v): diverged: reference=%+v batched=%+v", i, ctx, want, got)
		}
	}
}

// TestBatchedDivergenceKernels sweeps the divergence suite over lane
// populations from degenerate (one lane, all-identical lanes) to
// warp-sized mixes of blocks and block shapes.
func TestBatchedDivergenceKernels(t *testing.T) {
	laneSets := map[string][]ThreadCtx{
		"one_lane":  {{Tid: 3, CtaID: 1, NTid: 32, NCtaID: 2}},
		"all_same":  {{Tid: 5, NTid: 16, NCtaID: 1}, {Tid: 5, NTid: 16, NCtaID: 1}, {Tid: 5, NTid: 16, NCtaID: 1}},
		"tid_range": ctxRange(0, 16, 32, 2),
		"mixed_shapes": append(append(ctxRange(0, 8, 32, 2), ctxRange(0, 8, 64, 4)...),
			ThreadCtx{Tid: 63, CtaID: 3, NTid: 64, NCtaID: 4}),
	}
	for _, tc := range divergenceKernels {
		t.Run(tc.name, func(t *testing.T) {
			k := parseOne(t, tc.body)
			opts := ExecOptions{Full: tc.full, MaxSteps: tc.maxSteps}
			for setName, ctxs := range laneSets {
				t.Run(setName, func(t *testing.T) {
					checkLanes(t, k, tc.params, ctxs, opts)
				})
			}
		})
	}
}

// ctxRange builds one lane per tid in [lo, hi) under the given block
// and grid shape.
func ctxRange(lo, hi, ntid, nctaid int64) []ThreadCtx {
	var out []ThreadCtx
	for tid := lo; tid < hi; tid++ {
		out = append(out, ThreadCtx{Tid: tid, CtaID: tid % nctaid, NTid: ntid, NCtaID: nctaid})
	}
	return out
}

// TestBatchedRandomLanePartitions is the property test: random lane
// populations (random sizes, random special-register values, duplicate
// lanes, multiple block shapes) must agree lane for lane with the
// reference interpreter on every divergence kernel.
func TestBatchedRandomLanePartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for _, tc := range divergenceKernels {
		t.Run(tc.name, func(t *testing.T) {
			k := parseOne(t, tc.body)
			opts := ExecOptions{Full: tc.full, MaxSteps: tc.maxSteps}
			for trial := 0; trial < 25; trial++ {
				nl := 1 + rng.Intn(33)
				ctxs := make([]ThreadCtx, nl)
				for i := range ctxs {
					ntid := int64(1) << uint(rng.Intn(7)) // 1..64
					nctaid := int64(1 + rng.Intn(5))
					ctxs[i] = ThreadCtx{
						Tid:    int64(rng.Intn(int(ntid))),
						CtaID:  int64(rng.Intn(int(nctaid))),
						NTid:   ntid,
						NCtaID: nctaid,
					}
				}
				// Occasionally force all lanes into one control-flow
				// class (the all-threads-one-class degenerate case).
				if trial%5 == 0 {
					for i := range ctxs {
						ctxs[i] = ctxs[0]
					}
				}
				checkLanes(t, k, tc.params, ctxs, opts)
			}
		})
	}
}

// TestBatchedArenaReuse runs many batches through one arena with resets
// between them — the production AnalyzeProgram pattern — and requires
// the recycled buffers to never leak state across executions.
func TestBatchedArenaReuse(t *testing.T) {
	ar := newExecArena()
	for round := 0; round < 3; round++ {
		for _, tc := range divergenceKernels {
			k := parseOne(t, tc.body)
			opts := ExecOptions{Full: tc.full, MaxSteps: tc.maxSteps}
			slice := BuildControlSlice(k, BuildDepGraph(k))
			ck, err := Compile(k, slice, opts)
			if err != nil {
				t.Fatalf("%s: Compile: %v", tc.name, err)
			}
			ctxs := ctxRange(0, 12, 32, 2)
			out := make([]LaneResult, len(ctxs))
			ck.executeBatch(k, tc.params, ctxs, nil, ar, out)
			ar.reset()
			for i, ctx := range ctxs {
				want, werr := ExecuteThread(k, slice, tc.params, ctx, opts)
				if (werr == nil) != (out[i].Err == nil) {
					t.Fatalf("%s round %d lane %d: error disagreement: %v vs %v", tc.name, round, i, werr, out[i].Err)
				}
				if werr == nil && out[i].Res != want {
					t.Fatalf("%s round %d lane %d: diverged after arena reuse", tc.name, round, i)
				}
			}
		}
	}
}

// TestBatchedConcurrentArenas executes batches from many goroutines,
// each with a private arena, against one shared CompiledKernel — the
// server's concurrency shape — and checks both lane-level correctness
// (under -race, also memory safety) and that no goroutines leak.
func TestBatchedConcurrentArenas(t *testing.T) {
	k := parseOne(t, divergenceKernels[2].body) // tid-dependent trip counts
	opts := ExecOptions{}
	slice := BuildControlSlice(k, BuildDepGraph(k))
	ck, err := Compile(k, slice, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctxs := ctxRange(0, 32, 32, 2)
	want := make([]ExecResult, len(ctxs))
	for i, ctx := range ctxs {
		res, rerr := ExecuteThread(k, slice, nil, ctx, opts)
		if rerr != nil {
			t.Fatal(rerr)
		}
		want[i] = res
	}
	before := runtime.NumGoroutine()
	const workers = 8
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ar := newExecArena()
			out := make([]LaneResult, len(ctxs))
			for iter := 0; iter < 50; iter++ {
				ck.executeBatch(k, nil, ctxs, nil, ar, out)
				ar.reset()
				for i := range out {
					if out[i].Err != nil || out[i].Res != want[i] {
						errs <- fmt.Errorf("lane %d diverged concurrently: %+v err=%v", i, out[i].Res, out[i].Err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked across batched execution: %d before, %d after", before, after)
	}
}

// TestBatchedSerializedKernel decodes a compiled kernel from its wire
// form and batch-executes it: the decoder must recompute the batch
// layout so persisted bytecode stays executable by the batched engine.
func TestBatchedSerializedKernel(t *testing.T) {
	for _, tc := range divergenceKernels {
		k := parseOne(t, tc.body)
		opts := ExecOptions{Full: tc.full, MaxSteps: tc.maxSteps}
		ck, err := Compile(k, BuildControlSlice(k, BuildDepGraph(k)), opts)
		if err != nil {
			t.Fatalf("%s: Compile: %v", tc.name, err)
		}
		blob, err := MarshalCompiledKernel(ck)
		if err != nil {
			t.Fatalf("%s: marshal: %v", tc.name, err)
		}
		back, err := UnmarshalCompiledKernel(blob)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", tc.name, err)
		}
		ctxs := ctxRange(0, 8, 32, 2)
		want := ck.ExecuteBatch(k, tc.params, ctxs)
		got := back.ExecuteBatch(k, tc.params, ctxs)
		for i := range want {
			if (want[i].Err == nil) != (got[i].Err == nil) ||
				(want[i].Err == nil && got[i].Res != want[i].Res) {
				t.Fatalf("%s lane %d: decoded kernel diverged", tc.name, i)
			}
		}
	}
}

// TestBatchStatsAccounting pins the occupancy arithmetic: a fully
// uniform batch is one segment carrying every lane; each divergence
// split adds exactly one segment.
func TestBatchStatsAccounting(t *testing.T) {
	uniform := parseOne(t, divergenceKernels[0].body)
	ck, err := Compile(uniform, BuildControlSlice(uniform, BuildDepGraph(uniform)), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctxs := ctxRange(0, 16, 32, 1)
	before := BatchStats()
	ck.ExecuteBatch(uniform, nil, ctxs)
	d := statsDelta(before, BatchStats())
	if d.Calls != 1 || d.Lanes != 16 {
		t.Errorf("calls/lanes = %d/%d, want 1/16", d.Calls, d.Lanes)
	}
	if d.Segments != 1 || d.LaneSegments != 16 || d.Splits != 0 {
		t.Errorf("uniform kernel: segments=%d laneSegs=%d splits=%d, want 1/16/0",
			d.Segments, d.LaneSegments, d.Splits)
	}

	// Lanes 0..15 against a lt-4 tid test: exactly one branch split.
	div := parseOne(t, "mov.u32 %r1, %tid.x;\nsetp.lt.s32 %p1, %r1, 4;\n@%p1 bra E;\nmov.u32 %r2, 1;\nsetp.lt.s32 %p2, %r2, 3;\n@%p2 bra E;\nE:\nret;\n")
	ck2, err := Compile(div, BuildControlSlice(div, BuildDepGraph(div)), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before = BatchStats()
	ck2.ExecuteBatch(div, nil, ctxs)
	d = statsDelta(before, BatchStats())
	if d.Splits != 1 || d.Segments != 2 {
		t.Errorf("divergent kernel: segments=%d splits=%d, want 2/1", d.Segments, d.Splits)
	}
}

func statsDelta(a, b BatchExecStats) BatchExecStats {
	return BatchExecStats{
		Calls:        b.Calls - a.Calls,
		Lanes:        b.Lanes - a.Lanes,
		Segments:     b.Segments - a.Segments,
		LaneSegments: b.LaneSegments - a.LaneSegments,
		Splits:       b.Splits - a.Splits,
		ArenaGrows:   b.ArenaGrows - a.ArenaGrows,
		ArenaBytes:   b.ArenaBytes,
	}
}
