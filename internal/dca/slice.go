package dca

import "cnnperf/internal/ptx"

// ControlSlice computes the subgraph G_v* of instructions that must be
// executed to decide every branch of the kernel: the branches themselves,
// their guard predicates, and the transitive data dependencies of those
// predicates (the backward slice over the dependency graph). This is the
// core of the paper's speed claim — only this slice is interpreted, not
// the full kernel.
type ControlSlice struct {
	// InSlice[i] reports whether instruction i belongs to the slice.
	InSlice []bool
	// Size is the number of instructions in the slice.
	Size int
}

// Fraction returns |slice| / |body|.
func (s *ControlSlice) Fraction() float64 {
	if len(s.InSlice) == 0 {
		return 0
	}
	return float64(s.Size) / float64(len(s.InSlice))
}

// BuildControlSlice computes the control slice of a kernel given its
// dependency graph.
func BuildControlSlice(k *ptx.Kernel, g *DepGraph) *ControlSlice {
	n := len(k.Body)
	s := &ControlSlice{InSlice: make([]bool, n)}
	var stack []int
	mark := func(i int) {
		if !s.InSlice[i] {
			s.InSlice[i] = true
			stack = append(stack, i)
		}
	}
	for i, in := range k.Body {
		if ptx.IsBranch(in.Opcode) || ptx.IsExit(in.Opcode) {
			mark(i)
		}
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range g.Deps[i] {
			mark(d)
		}
	}
	for _, in := range s.InSlice {
		if in {
			s.Size++
		}
	}
	return s
}
