package dca

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"reflect"
	"testing"

	"cnnperf/internal/ptx"
	"cnnperf/internal/ptxgen"
)

// serializeKernels are PTX bodies covering the bytecode shapes the
// compiled-kernel codec must round-trip: straight-line code, countable
// closed-form loops, uncountable loops, predicated control flow, and
// parameter-dependent bounds.
var serializeKernels = []struct {
	name string
	body string
}{
	{"straight_line", "mov.u32 %r1, 7;\nadd.s32 %r1, %r1, 1;\nret;\n"},
	{"closed_form_loop", "mov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.lt.s32 %p1, %r1, 16;\n@%p1 bra L;\nret;\n"},
	{"param_bound_loop", "ld.param.u64 %rd1, [p0];\ncvt.u32.u64 %r2, %rd1;\nmov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.lt.s32 %p1, %r1, %r2;\n@%p1 bra L;\nret;\n"},
	{"predicated_skip", "mov.u32 %r1, 3;\nsetp.eq.s32 %p1, %r1, 3;\n@%p1 bra DONE;\nadd.s32 %r1, %r1, 9;\nDONE:\nret;\n"},
	{"tid_dependent", "mov.u32 %r1, %tid.x;\nL:\nadd.s32 %r1, %r1, 2;\nsetp.lt.s32 %p1, %r1, 200;\n@%p1 bra L;\nret;\n"},
}

// TestCompiledKernelRoundTrip: Unmarshal(Marshal(ck)) is deep-equal,
// re-marshals byte-identically, and executes bit-identically to the
// original compiled kernel for a spread of thread contexts.
func TestCompiledKernelRoundTrip(t *testing.T) {
	ctxs := []ThreadCtx{
		{CtaID: 0, Tid: 0, NTid: 32, NCtaID: 1},
		{CtaID: 3, Tid: 17, NTid: 64, NCtaID: 8},
		{CtaID: 7, Tid: 63, NTid: 64, NCtaID: 8},
	}
	params := map[string]int64{"p0": 24}
	for _, tc := range serializeKernels {
		t.Run(tc.name, func(t *testing.T) {
			k := parseOne(t, tc.body)
			ck := compileFor(t, k, ExecOptions{})
			b, err := MarshalCompiledKernel(ck)
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			got, err := UnmarshalCompiledKernel(b)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if !reflect.DeepEqual(got, ck) {
				t.Error("round-tripped compiled kernel is not deep-equal")
			}
			b2, err := MarshalCompiledKernel(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b, b2) {
				t.Error("re-marshal is not byte-identical")
			}
			for _, tctx := range ctxs {
				want, werr := ck.Execute(k, params, tctx)
				have, herr := got.Execute(k, params, tctx)
				if (werr == nil) != (herr == nil) {
					t.Fatalf("ctx %+v: errors disagree: %v vs %v", tctx, werr, herr)
				}
				if werr != nil {
					continue
				}
				if !reflect.DeepEqual(want, have) {
					t.Fatalf("ctx %+v: original executes %+v, reconstruction %+v", tctx, want, have)
				}
			}
		})
	}
}

func TestKernelReportRoundTrip(t *testing.T) {
	k := parseOne(t, serializeKernels[1].body)
	l := ptxgen.Launch{Kernel: "k", GridX: 4, BlockX: 64, Threads: 200,
		Params: map[string]int64{"p0": 1 << 20}, WorkingSetBytes: 1 << 16}
	r, err := AnalyzeKernelLaunch(k, l, Options{SkipLint: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalKernelReport(&r)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := UnmarshalKernelReport(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(*got, r) {
		t.Errorf("round-tripped report differs:\n got %+v\nwant %+v", *got, r)
	}
	b2, err := MarshalKernelReport(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Error("re-marshal is not byte-identical")
	}
}

func TestSerializeRejections(t *testing.T) {
	if _, err := MarshalKernelReport(nil); err == nil {
		t.Error("nil report marshaled")
	}
	if _, err := MarshalCompiledKernel(nil); err == nil {
		t.Error("nil compiled kernel marshaled")
	}
	if _, err := UnmarshalKernelReport([]byte(`{"version":99,"report":{}}`)); err == nil {
		t.Error("future report version accepted")
	}
	if _, err := UnmarshalCompiledKernel([]byte(`{"version":99}`)); err == nil {
		t.Error("future compiled-kernel version accepted")
	}

	// Field-level corruption of a valid compiled kernel must be caught
	// by the validation battery, never crash Execute.
	k := parseOne(t, serializeKernels[1].body)
	ck := compileFor(t, k, ExecOptions{})
	valid, err := MarshalCompiledKernel(ck)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, edit func(j map[string]any)) {
		t.Helper()
		var j map[string]any
		if err := json.Unmarshal(valid, &j); err != nil {
			t.Fatal(err)
		}
		edit(j)
		b, err := json.Marshal(j)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := UnmarshalCompiledKernel(b); err == nil {
			t.Errorf("%s: corrupt bytecode accepted", name)
		}
	}
	corrupt("slot count mismatch", func(j map[string]any) { j["slots"] = 99 })
	corrupt("negative max steps", func(j map[string]any) { j["max_steps"] = -1 })
	corrupt("array length skew", func(j map[string]any) { j["interp"] = []bool{true} })
	corrupt("oob class", func(j map[string]any) {
		// []uint8 encodes as base64 in JSON.
		raw, err := base64.StdEncoding.DecodeString(j["class"].(string))
		if err != nil {
			t.Fatal(err)
		}
		raw[0] = byte(ptx.NumClasses)
		j["class"] = base64.StdEncoding.EncodeToString(raw)
	})
	corrupt("oob opcode", func(j map[string]any) {
		code := j["code"].([]any)
		code[0].(map[string]any)["op"] = float64(200)
	})
	corrupt("oob branch target", func(j map[string]any) {
		code := j["code"].([]any)
		for _, ci := range code {
			m := ci.(map[string]any)
			if op, _ := m["op"].(float64); copKind(uint8(op)) == copBra {
				m["target"] = float64(10000)
			}
		}
	})
	corrupt("stalling next-interp", func(j map[string]any) {
		ni := j["next_interp"].([]any)
		interp := j["interp"].([]any)
		// Force pc 0 uninterpreted with next_interp stalled at 0.
		interp[0] = false
		ni[0] = float64(0)
	})
	corrupt("zero-step loop", func(j map[string]any) {
		loops := j["loops"].([]any)
		for i, lo := range loops {
			if lo != nil {
				lo.(map[string]any)["step"] = float64(0)
				loops[i] = lo
			}
		}
		// If the kernel had no loop this edit is a no-op; guard so the
		// subtest still exercises a rejection.
		j["max_steps"] = float64(0)
	})
}

// FuzzCompiledKernelDecode: arbitrary bytes into the bytecode decoder
// must never panic, and anything accepted must execute without
// panicking on a hostile-but-plausible launch.
func FuzzCompiledKernelDecode(f *testing.F) {
	for _, tc := range serializeKernels {
		src := ".version 6.0\n.target sm_61\n.address_size 64\n.visible .entry k(\n.param .u64 p0\n)\n{\n" + tc.body + "}\n"
		m, err := ptx.Parse(src)
		if err != nil {
			f.Fatal(err)
		}
		k := m.Kernels[0]
		ck, err := Compile(k, BuildControlSlice(k, BuildDepGraph(k)), ExecOptions{MaxSteps: 10_000})
		if err != nil {
			f.Fatal(err)
		}
		b, err := MarshalCompiledKernel(ck)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	// The kernel the fuzzed bytecode executes against: params exist but
	// the bytecode may reference positions beyond them.
	m, err := ptx.Parse(".version 6.0\n.target sm_61\n.address_size 64\n.visible .entry k(\n.param .u64 p0\n)\n{\nret;\n}\n")
	if err != nil {
		f.Fatal(err)
	}
	hostKernel := m.Kernels[0]
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := UnmarshalCompiledKernel(data)
		if err != nil {
			return
		}
		// Accepted bytecode must be safe to run: bounded and panic-free.
		_, _ = ck.Execute(hostKernel, map[string]int64{"p0": 4}, ThreadCtx{Tid: 1, NTid: 32, NCtaID: 2})
	})
}
