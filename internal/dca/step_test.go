package dca

import (
	"testing"

	"cnnperf/internal/ptx"
)

// execOne interprets a one-instruction kernel in Full mode with a
// pre-seeded environment and returns the destination value.
func execOne(t *testing.T, in ptx.Instruction, seed map[string]int64) (int64, error) {
	t.Helper()
	k := &ptx.Kernel{Name: "one"}
	env := map[string]int64{}
	for r, v := range seed {
		env[r] = v
	}
	err := step(k, in, 0, env, map[string]int64{"p0": 77}, ThreadCtx{Tid: 3, NTid: 32}, ExecOptions{Full: true})
	if err != nil {
		return 0, err
	}
	return env[in.Dest()], nil
}

func ins(op string, operands ...string) ptx.Instruction {
	return ptx.Instruction{Opcode: op, Operands: operands}
}

// TestStepOpcodeSemantics covers every interpreted opcode family.
func TestStepOpcodeSemantics(t *testing.T) {
	seed := map[string]int64{"%r1": 12, "%r2": 5, "%r3": -7, "%p1": 1, "%p2": 0}
	cases := []struct {
		in   ptx.Instruction
		want int64
	}{
		{ins("mov.u32", "%rd", "42"), 42},
		{ins("cvt.s64.s32", "%rd", "%r1"), 12},
		{ins("cvta.to.global.u64", "%rd", "%r1"), 12},
		{ins("neg.s32", "%rd", "%r1"), -12},
		{ins("not.b32", "%rd", "%r2"), ^int64(5)},
		{ins("abs.s32", "%rd", "%r3"), 7},
		{ins("add.s32", "%rd", "%r1", "%r2"), 17},
		{ins("sub.s32", "%rd", "%r1", "%r2"), 7},
		{ins("mul.lo.s32", "%rd", "%r1", "%r2"), 60},
		{ins("div.s32", "%rd", "%r1", "%r2"), 2},
		{ins("rem.s32", "%rd", "%r1", "%r2"), 2},
		{ins("min.s32", "%rd", "%r1", "%r2"), 5},
		{ins("max.s32", "%rd", "%r1", "%r2"), 12},
		{ins("and.b32", "%rd", "%r1", "%r2"), 4},
		{ins("or.b32", "%rd", "%r1", "%r2"), 13},
		{ins("xor.b32", "%rd", "%r1", "%r2"), 9},
		{ins("shl.b32", "%rd", "%r2", "2"), 20},
		{ins("shr.b32", "%rd", "%r1", "1"), 6},
		{ins("mad.lo.s32", "%rd", "%r1", "%r2", "%r3"), 53},
		{ins("fma.rn.f32", "%rd", "%r1", "%r2", "%r3"), 53},
		{ins("setp.lt.s32", "%rd", "%r2", "%r1"), 1},
		{ins("setp.gt.s32", "%rd", "%r2", "%r1"), 0},
		{ins("setp.le.s32", "%rd", "%r2", "%r2"), 1},
		{ins("setp.eq.s32", "%rd", "%r1", "%r1"), 1},
		{ins("selp.b32", "%rd", "%r1", "%r2", "%p1"), 12},
		{ins("selp.b32", "%rd", "%r1", "%r2", "%p2"), 5},
		{ins("ld.param.u64", "%rd", "[p0]"), 77},
		{ins("ld.global.f32", "%rd", "[%r1]"), 0}, // Full mode: loads read 0
		{ins("rcp.approx.f32", "%rd", "%r1"), 0},
		{ins("sqrt.approx.f32", "%rd", "%r1"), 0},
	}
	for _, c := range cases {
		got, err := execOne(t, c.in, seed)
		if err != nil {
			t.Errorf("%s: %v", c.in.String(), err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %d, want %d", c.in.String(), got, c.want)
		}
	}
}

// TestStepErrors covers the interpreter's failure paths.
func TestStepErrors(t *testing.T) {
	seed := map[string]int64{"%r1": 1, "%r0": 0}
	bad := []ptx.Instruction{
		ins("add.s32", "%rd", "%r1"),            // missing source
		ins("mad.lo.s32", "%rd", "%r1", "%r1"),  // missing third source
		ins("selp.b32", "%rd", "%r1", "%r1"),    // missing predicate
		ins("div.s32", "%rd", "%r1", "%r0"),     // divide by zero
		ins("rem.s32", "%rd", "%r1", "%r0"),     // remainder by zero
		ins("setp.zz.s32", "%rd", "%r1", "%r1"), // unknown comparison
		ins("ld.param.u64", "%rd", "[missing]"), // unknown parameter
		ins("add.s32", "%rd", "%r9", "%r1"),     // undefined register
		ins("mov.u32", "%rd", "banana"),         // unparsable operand
	}
	for _, in := range bad {
		if _, err := execOne(t, in, seed); err == nil {
			t.Errorf("%s should error", in.String())
		}
	}
	// Slice mode rejects data loads.
	k := &ptx.Kernel{Name: "one"}
	err := step(k, ins("ld.global.f32", "%rd", "[%r1]"), 0,
		map[string]int64{"%r1": 1}, nil, ThreadCtx{}, ExecOptions{})
	if err == nil {
		t.Error("global load inside a slice should error")
	}
	// Unknown opcode family.
	err = step(k, ins("frobnicate.s32", "%rd", "%r1"),
		0, map[string]int64{"%r1": 1}, nil, ThreadCtx{}, ExecOptions{Full: true})
	if err == nil {
		t.Error("unknown opcode should error")
	}
}

// TestStepSideEffectFree: stores and barriers change no registers.
func TestStepSideEffectFree(t *testing.T) {
	env := map[string]int64{"%r1": 1, "%rd1": 4096, "%f1": 0}
	k := &ptx.Kernel{Name: "one"}
	for _, in := range []ptx.Instruction{
		ins("st.global.f32", "[%rd1]", "%f1"),
		ins("st.shared.f32", "[%rd1]", "%f1"),
		ins("bar.sync", "0"),
	} {
		before := len(env)
		if err := step(k, in, 0, env, nil, ThreadCtx{}, ExecOptions{Full: true}); err != nil {
			t.Errorf("%s: %v", in.String(), err)
		}
		if len(env) != before {
			t.Errorf("%s changed the environment", in.String())
		}
	}
}

func TestPredicatedNonBranchSkips(t *testing.T) {
	// A guarded mov with a false predicate is counted but has no effect.
	k := &ptx.Kernel{Name: "pred"}
	k.Append(ptx.Instruction{Opcode: "setp.lt.s32", Operands: []string{"%p1", "5", "3"}}) // false
	k.Append(ptx.Instruction{Pred: "%p1", Opcode: "mov.u32", Operands: []string{"%r1", "99"}})
	k.Append(ptx.Instruction{Opcode: "setp.eq.s32", Operands: []string{"%p2", "1", "1"}}) // true
	k.Append(ptx.Instruction{Pred: "%p2", PredNeg: true, Opcode: "mov.u32", Operands: []string{"%r1", "42"}})
	k.Append(ptx.Instruction{Opcode: "ret"})
	g := BuildDepGraph(k)
	s := BuildControlSlice(k, g)
	// Force full interpretation so the movs are evaluated.
	res, err := ExecuteThread(k, s, nil, ThreadCtx{}, ExecOptions{Full: true})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if res.Steps != 5 {
		t.Errorf("steps = %d, want 5 (guarded instructions still issue)", res.Steps)
	}
}

func TestSliceFractionEmpty(t *testing.T) {
	s := &ControlSlice{}
	if s.Fraction() != 0 {
		t.Error("empty slice fraction should be 0")
	}
}
