package dca

import (
	"fmt"
	"testing"

	"cnnperf/internal/ptx"
)

// TestZeroAlloc pins the tentpole allocation guarantee: once the arena
// is warm, steady-state compiled execution — batched at any lane count,
// and single-lane — performs exactly zero heap allocations per run.
// The gate runs in CI with -count=1; any regression (an escaping
// closure, a map materialization, a slice growing past its slab) fails
// the build rather than silently eroding throughput.
func TestZeroAlloc(t *testing.T) {
	type workload struct {
		name   string
		k      *ptx.Kernel
		ck     *CompiledKernel
		params map[string]int64
	}
	var loads []workload
	for _, tc := range []struct {
		name string
		body string
	}{
		{"uniform_loop", divergenceKernels[0].body},
		{"tid_branch_diverges", divergenceKernels[1].body},
		{"tid_trip_counts", divergenceKernels[2].body},
		{"ne_exit_iterated", divergenceKernels[11].body},
	} {
		k := parseOne(t, tc.body)
		ck, err := Compile(k, BuildControlSlice(k, BuildDepGraph(k)), ExecOptions{})
		if err != nil {
			t.Fatalf("%s: Compile: %v", tc.name, err)
		}
		loads = append(loads, workload{tc.name, k, ck, nil})
	}
	// The heaviest real workload: the deepest loop nest in the
	// resnet50v2 schedule.
	prog := compileZoo(t, "resnet50v2")
	rk, rl := heaviestLaunch(t, prog)
	rck, err := Compile(rk, BuildControlSlice(rk, BuildDepGraph(rk)), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	loads = append(loads, workload{"resnet50v2_heaviest", rk, rck, rl.Params})

	for _, w := range loads {
		w := w
		for _, lanes := range []int{1, 2, 32} {
			lanes := lanes
			t.Run(fmt.Sprintf("%s/batched_%d", w.name, lanes), func(t *testing.T) {
				ctxs := make([]ThreadCtx, lanes)
				for i := range ctxs {
					ctxs[i] = ThreadCtx{Tid: int64(i % 32), CtaID: int64(i / 32), NTid: 32, NCtaID: 8}
				}
				out := make([]LaneResult, lanes)
				ar := newExecArena()
				w.ck.executeBatch(w.k, w.params, ctxs, nil, ar, out)
				ar.reset()
				avg := testing.AllocsPerRun(50, func() {
					w.ck.executeBatch(w.k, w.params, ctxs, nil, ar, out)
					ar.reset()
				})
				if avg != 0 {
					t.Errorf("%s lanes=%d: %v allocs per warm batched execution, want 0", w.name, lanes, avg)
				}
			})
		}
		t.Run(w.name+"/single", func(t *testing.T) {
			ctx := ThreadCtx{Tid: 3, CtaID: 1, NTid: 32, NCtaID: 8}
			ar := newExecArena()
			if _, err := w.ck.execute(w.k, w.params, ctx, nil, ar); err != nil {
				t.Fatal(err)
			}
			ar.reset()
			avg := testing.AllocsPerRun(50, func() {
				_, _ = w.ck.execute(w.k, w.params, ctx, nil, ar)
				ar.reset()
			})
			if avg != 0 {
				t.Errorf("%s: %v allocs per warm single-lane execution, want 0", w.name, avg)
			}
		})
	}
}
