package dca

import (
	"testing"

	"cnnperf/internal/analysiscache"
	"cnnperf/internal/ptx"
	"cnnperf/internal/ptxgen"
)

// guardedKernel builds the canonical bounds-checked kernel shape:
//
//	gid = ctaid*ntid + tid
//	if gid >= n goto DONE
//	r5 = gid + 1        (out of slice: counted, not interpreted)
//	DONE: ret
//
// Blocks: [0..5 guard], [6 body], [7 ret].
func guardedKernel(t *testing.T, n int64) *ptx.Kernel {
	t.Helper()
	k := &ptx.Kernel{Name: "guard"}
	k.Append(ptx.Instruction{Opcode: "mov.u32", Operands: []string{"%r1", "%tid.x"}})
	k.Append(ptx.Instruction{Opcode: "mov.u32", Operands: []string{"%r2", "%ctaid.x"}})
	k.Append(ptx.Instruction{Opcode: "mov.u32", Operands: []string{"%r3", "%ntid.x"}})
	k.Append(ptx.Instruction{Opcode: "mad.lo.s32", Operands: []string{"%r4", "%r2", "%r3", "%r1"}})
	k.Append(ptx.Instruction{Opcode: "setp.ge.s32", Operands: []string{"%p1", "%r4", imm(n)}})
	k.Append(ptx.Instruction{Pred: "%p1", Opcode: "bra", Operands: []string{"DONE"}})
	k.Append(ptx.Instruction{Opcode: "add.s32", Operands: []string{"%r5", "%r4", "1"}})
	if err := k.AddLabel("DONE"); err != nil {
		t.Fatal(err)
	}
	k.Append(ptx.Instruction{Opcode: "ret"})
	return k
}

// TestBlockVisitsGuarded: the bounds-checked body block is visited by
// in-bounds threads only; the guard and exit blocks by every thread.
func TestBlockVisitsGuarded(t *testing.T) {
	k := guardedKernel(t, 48)
	l := ptxgen.Launch{Kernel: "guard", GridX: 2, BlockX: 32, Threads: 48}
	kr, err := AnalyzeKernelLaunch(k, l, Options{BlockCounts: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{64, 48, 64}
	if len(kr.BlockVisits) != len(want) {
		t.Fatalf("BlockVisits = %v, want %v", kr.BlockVisits, want)
	}
	for i, w := range want {
		if kr.BlockVisits[i] != w {
			t.Errorf("BlockVisits[%d] = %d, want %d", i, kr.BlockVisits[i], w)
		}
	}

	// Without BlockCounts the profile is not collected.
	kr, err = AnalyzeKernelLaunch(k, l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if kr.BlockVisits != nil {
		t.Errorf("BlockVisits without BlockCounts = %v, want nil", kr.BlockVisits)
	}
}

// TestBlockVisitsCountedLoop: closed-form loop accounting feeds the
// visit profile — the loop block is charged once per iteration — and
// the profile is consistent with the executed-instruction total.
func TestBlockVisitsCountedLoop(t *testing.T) {
	k := countedLoop(t, 5)
	l := ptxgen.Launch{Kernel: "counted", GridX: 2, BlockX: 32, Threads: 64}
	kr, err := AnalyzeKernelLaunch(k, l, Options{BlockCounts: true})
	if err != nil {
		t.Fatal(err)
	}
	// Blocks: [mov], [add setp bra] x5 iterations, [ret].
	want := []int64{64, 320, 64}
	if len(kr.BlockVisits) != len(want) {
		t.Fatalf("BlockVisits = %v, want %v", kr.BlockVisits, want)
	}
	for i, w := range want {
		if kr.BlockVisits[i] != w {
			t.Errorf("BlockVisits[%d] = %d, want %d", i, kr.BlockVisits[i], w)
		}
	}
	// No thread exits mid-block, so the per-block visit counts weighted
	// by block length must reproduce the launch's executed total.
	g, err := BuildCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for bi, b := range g.Blocks {
		sum += kr.BlockVisits[bi] * int64(b.End-b.Start)
	}
	if sum != kr.Executed {
		t.Errorf("visit-weighted instruction total = %d, Executed = %d", sum, kr.Executed)
	}
}

// TestBlockVisitsReferenceMode: under the reference interpreter the
// bytecode is compiled on the side purely for the visit profile, which
// must match the bytecode engine's.
func TestBlockVisitsReferenceMode(t *testing.T) {
	k := guardedKernel(t, 48)
	l := ptxgen.Launch{Kernel: "guard", GridX: 2, BlockX: 32, Threads: 48}
	ref, err := AnalyzeKernelLaunch(k, l, Options{BlockCounts: true, Exec: ExecOptions{Reference: true}})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := AnalyzeKernelLaunch(k, l, Options{BlockCounts: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.BlockVisits) != len(fast.BlockVisits) {
		t.Fatalf("reference visits %v != bytecode visits %v", ref.BlockVisits, fast.BlockVisits)
	}
	for i := range ref.BlockVisits {
		if ref.BlockVisits[i] != fast.BlockVisits[i] {
			t.Errorf("BlockVisits[%d]: reference %d != bytecode %d", i, ref.BlockVisits[i], fast.BlockVisits[i])
		}
	}
	if ref.Executed != fast.Executed {
		t.Errorf("Executed: reference %d != bytecode %d", ref.Executed, fast.Executed)
	}
}

// TestBlockVisitsCacheDetached: a cache hit must hand back a private
// copy of the visit profile, and the BlockCounts knob must key the
// cache (a profile-free entry cannot satisfy a profiled request).
func TestBlockVisitsCacheDetached(t *testing.T) {
	k := guardedKernel(t, 48)
	l := ptxgen.Launch{Kernel: "guard", GridX: 2, BlockX: 32, Threads: 48}
	cache := analysiscache.New(64)
	opts := Options{BlockCounts: true, Cache: cache}
	first, err := AnalyzeKernelLaunch(k, l, opts)
	if err != nil {
		t.Fatal(err)
	}
	first.BlockVisits[0] = -1
	second, err := AnalyzeKernelLaunch(k, l, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.BlockVisits[0] == -1 {
		t.Error("cache hit shares the BlockVisits slice with a prior caller")
	}
	// Same cache, BlockCounts off: must not inherit the profiled entry.
	plain, err := AnalyzeKernelLaunch(k, l, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if plain.BlockVisits != nil {
		t.Errorf("BlockCounts=false hit a profiled cache entry: %v", plain.BlockVisits)
	}
}
