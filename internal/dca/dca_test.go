package dca

import (
	"strconv"
	"testing"

	"cnnperf/internal/cnn"
	"cnnperf/internal/ptx"
	"cnnperf/internal/ptxgen"
)

// countedLoop builds a kernel that loops a fixed number of times:
//
//	mov r1, 0
//	L: add r1, r1, 1; setp.lt p1, r1, n; @p1 bra L
//	ret
func countedLoop(t *testing.T, n int64) *ptx.Kernel {
	t.Helper()
	k := &ptx.Kernel{Name: "counted"}
	k.Append(ptx.Instruction{Opcode: "mov.u32", Operands: []string{"%r1", "0"}})
	if err := k.AddLabel("L"); err != nil {
		t.Fatal(err)
	}
	k.Append(ptx.Instruction{Opcode: "add.s32", Operands: []string{"%r1", "%r1", "1"}})
	k.Append(ptx.Instruction{Opcode: "setp.lt.s32", Operands: []string{"%p1", "%r1", imm(n)}})
	k.Append(ptx.Instruction{Pred: "%p1", Opcode: "bra", Operands: []string{"L"}})
	k.Append(ptx.Instruction{Opcode: "ret"})
	return k
}

func imm(v int64) string { return strconv.FormatInt(v, 10) }

func TestCFGStructure(t *testing.T) {
	k := countedLoop(t, 4)
	cfg, err := BuildCFG(k)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	// Blocks: [mov], [add setp bra], [ret].
	if len(cfg.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(cfg.Blocks))
	}
	if cfg.BlockOf(0) != 0 || cfg.BlockOf(1) != 1 || cfg.BlockOf(4) != 2 {
		t.Error("blockOf wrong")
	}
	loop := cfg.Blocks[1]
	if len(loop.Succs) != 2 {
		t.Fatalf("loop block succs = %v", loop.Succs)
	}
	back := cfg.BackEdges()
	if len(back) != 1 || back[0] != [2]int{1, 1} {
		t.Errorf("back edges = %v", back)
	}
}

func TestCFGEmptyKernel(t *testing.T) {
	if _, err := BuildCFG(&ptx.Kernel{Name: "empty"}); err == nil {
		t.Error("empty kernel should error")
	}
}

func TestCFGSingleBlock(t *testing.T) {
	k := &ptx.Kernel{Name: "line"}
	k.Append(ptx.Instruction{Opcode: "mov.u32", Operands: []string{"%r1", "%tid.x"}})
	k.Append(ptx.Instruction{Opcode: "add.s32", Operands: []string{"%r2", "%r1", "1"}})
	k.Append(ptx.Instruction{Opcode: "ret"})
	cfg, err := BuildCFG(k)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	if len(cfg.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(cfg.Blocks))
	}
	b := cfg.Blocks[0]
	if b.Start != 0 || b.End != 3 || len(b.Succs) != 0 || len(b.Preds) != 0 {
		t.Errorf("block = %+v", *b)
	}
	if len(cfg.BackEdges()) != 0 {
		t.Error("straight line has no back edges")
	}
	for i := 0; i < 3; i++ {
		if cfg.BlockOf(i) != 0 {
			t.Errorf("blockOf(%d) = %d", i, cfg.BlockOf(i))
		}
	}
}

// TestCFGBackEdgeOnlyLoop: an unconditional self-loop with no exit path
// — the whole body is one block whose only successor is itself.
func TestCFGBackEdgeOnlyLoop(t *testing.T) {
	k := &ptx.Kernel{Name: "spin"}
	if err := k.AddLabel("SPIN"); err != nil {
		t.Fatal(err)
	}
	k.Append(ptx.Instruction{Opcode: "add.s32", Operands: []string{"%r1", "%r1", "1"}})
	k.Append(ptx.Instruction{Opcode: "bra.uni", Operands: []string{"SPIN"}})
	cfg, err := BuildCFG(k)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	if len(cfg.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(cfg.Blocks))
	}
	b := cfg.Blocks[0]
	if len(b.Succs) != 1 || b.Succs[0] != 0 || len(b.Preds) != 1 || b.Preds[0] != 0 {
		t.Errorf("self-loop edges wrong: %+v", *b)
	}
	back := cfg.BackEdges()
	if len(back) != 1 || back[0] != [2]int{0, 0} {
		t.Errorf("back edges = %v", back)
	}
	reach := cfg.Reachable()
	if len(reach) != 1 || !reach[0] {
		t.Errorf("reachable = %v", reach)
	}
}

// TestCFGUnreachableTrailingBlock: code after an unconditional ret forms
// its own block with no predecessors.
func TestCFGUnreachableTrailingBlock(t *testing.T) {
	k := &ptx.Kernel{Name: "dead"}
	k.Append(ptx.Instruction{Opcode: "ret"})
	k.Append(ptx.Instruction{Opcode: "mov.u32", Operands: []string{"%r1", "0"}})
	k.Append(ptx.Instruction{Opcode: "ret"})
	cfg, err := BuildCFG(k)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	if len(cfg.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(cfg.Blocks))
	}
	if len(cfg.Blocks[0].Succs) != 0 {
		t.Errorf("ret block has successors: %v", cfg.Blocks[0].Succs)
	}
	if len(cfg.Blocks[1].Preds) != 0 {
		t.Errorf("dead block has predecessors: %v", cfg.Blocks[1].Preds)
	}
	reach := cfg.Reachable()
	if !reach[0] || reach[1] {
		t.Errorf("reachable = %v, want [true false]", reach)
	}
}

// TestCFGPredicatedExitFallsThrough: a guarded ret does not terminate
// the block's control flow — the not-taken threads continue.
func TestCFGPredicatedExitFallsThrough(t *testing.T) {
	k := &ptx.Kernel{Name: "guard"}
	k.Append(ptx.Instruction{Opcode: "setp.lt.s32", Operands: []string{"%p1", "%r1", "8"}})
	k.Append(ptx.Instruction{Pred: "%p1", Opcode: "ret"})
	k.Append(ptx.Instruction{Opcode: "mov.u32", Operands: []string{"%r2", "1"}})
	k.Append(ptx.Instruction{Opcode: "ret"})
	cfg, err := BuildCFG(k)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	if len(cfg.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(cfg.Blocks))
	}
	if len(cfg.Blocks[0].Succs) != 1 || cfg.Blocks[0].Succs[0] != 1 {
		t.Errorf("predicated exit must fall through: %v", cfg.Blocks[0].Succs)
	}
}

// TestLintGateRejectsBadKernel: the static-analysis gate refuses kernels
// with error-severity diagnostics before abstract execution, unless the
// caller explicitly skips it.
func TestLintGateRejectsBadKernel(t *testing.T) {
	k := &ptx.Kernel{Name: "ubd"}
	k.Append(ptx.Instruction{Opcode: "add.s32", Operands: []string{"%r2", "%r5", "1"}})
	k.Append(ptx.Instruction{Opcode: "ret"})
	l := ptxgen.Launch{Kernel: "ubd", GridX: 1, BlockX: 32, Threads: 32}
	if _, err := AnalyzeKernelLaunch(k, l, Options{}); err == nil {
		t.Error("use-before-def kernel must be rejected by the lint gate")
	}
	// SkipLint bypasses the gate (the abstract executor reads the
	// undefined register as zero).
	if _, err := AnalyzeKernelLaunch(k, l, Options{SkipLint: true}); err != nil {
		t.Errorf("SkipLint run failed: %v", err)
	}
}

func TestDepGraph(t *testing.T) {
	k := countedLoop(t, 4)
	g := BuildDepGraph(k)
	// setp (index 2) depends on add (index 1); add depends on mov (0)
	// and itself... (self-deps are excluded).
	has := func(i, j int) bool {
		for _, d := range g.Deps[i] {
			if d == j {
				return true
			}
		}
		return false
	}
	if !has(2, 1) {
		t.Error("setp should depend on add")
	}
	if !has(1, 0) {
		t.Error("add should depend on mov")
	}
	if has(1, 1) {
		t.Error("self-dependency must be excluded")
	}
	// bra (3) depends on setp (2) via predicate.
	if !has(3, 2) {
		t.Error("bra should depend on its predicate definition")
	}
	if g.Edges() == 0 {
		t.Error("edges = 0")
	}
}

func TestRegOperand(t *testing.T) {
	cases := map[string]string{
		"%r1":          "%r1",
		"[%rd4]":       "%rd4",
		"[%rd4+16]":    "%rd4",
		"42":           "",
		"label":        "",
		"%tid.x":       "",
		"[param_name]": "",
	}
	for in, want := range cases {
		if got := regOperand(in); got != want {
			t.Errorf("regOperand(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestControlSliceOfLoop(t *testing.T) {
	k := countedLoop(t, 4)
	g := BuildDepGraph(k)
	s := BuildControlSlice(k, g)
	// Everything in this kernel feeds the branch: slice = all 5.
	if s.Size != 5 {
		t.Errorf("slice size = %d, want 5", s.Size)
	}
	if s.Fraction() != 1.0 {
		t.Errorf("fraction = %f", s.Fraction())
	}
}

func TestControlSliceExcludesDataPath(t *testing.T) {
	k := countedLoop(t, 2)
	// Splice in a data-only FMA chain before ret: it must not join the
	// slice.
	body := append([]ptx.Instruction{}, k.Body[:4]...)
	body = append(body,
		ptx.Instruction{Opcode: "mov.f32", Operands: []string{"%f1", "0f00000000"}},
		ptx.Instruction{Opcode: "fma.rn.f32", Operands: []string{"%f1", "%f1", "%f1", "%f1"}},
		ptx.Instruction{Opcode: "ret"},
	)
	k2 := &ptx.Kernel{Name: "withdata", Labels: k.Labels, Body: body}
	g := BuildDepGraph(k2)
	s := BuildControlSlice(k2, g)
	if s.InSlice[4] || s.InSlice[5] {
		t.Error("fp data chain must not be in the control slice")
	}
	if !s.InSlice[3] || !s.InSlice[2] {
		t.Error("branch and predicate must be in the slice")
	}
}

func TestExecuteThreadCountsLoop(t *testing.T) {
	k := countedLoop(t, 16)
	g := BuildDepGraph(k)
	s := BuildControlSlice(k, g)
	res, err := ExecuteThread(k, s, nil, ThreadCtx{NTid: 256, NCtaID: 1}, ExecOptions{})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	// mov + 16*(add+setp+bra) + ret = 50.
	if res.Steps != 50 {
		t.Errorf("steps = %d, want 50", res.Steps)
	}
	if res.PerClass[ptx.ClassIntALU] != 16 || res.PerClass[ptx.ClassCompare] != 16 ||
		res.PerClass[ptx.ClassBranch] != 16 || res.PerClass[ptx.ClassControl] != 1 {
		t.Errorf("per-class = %v", res.PerClass)
	}
}

func TestExecuteThreadInfiniteLoopGuard(t *testing.T) {
	k := &ptx.Kernel{Name: "inf"}
	if err := k.AddLabel("L"); err != nil {
		t.Fatal(err)
	}
	k.Append(ptx.Instruction{Opcode: "bra", Operands: []string{"L"}})
	g := BuildDepGraph(k)
	s := BuildControlSlice(k, g)
	_, err := ExecuteThread(k, s, nil, ThreadCtx{}, ExecOptions{MaxSteps: 1000})
	if err == nil {
		t.Error("infinite loop should hit the step guard")
	}
}

func TestExecuteThreadUndefinedRegister(t *testing.T) {
	k := &ptx.Kernel{Name: "undef"}
	k.Append(ptx.Instruction{Opcode: "setp.lt.s32", Operands: []string{"%p1", "%r9", "3"}})
	if err := k.AddLabel("L"); err != nil {
		t.Fatal(err)
	}
	k.Append(ptx.Instruction{Pred: "%p1", Opcode: "bra", Operands: []string{"L"}})
	k.Append(ptx.Instruction{Opcode: "ret"})
	g := BuildDepGraph(k)
	s := BuildControlSlice(k, g)
	if _, err := ExecuteThread(k, s, nil, ThreadCtx{}, ExecOptions{}); err == nil {
		t.Error("reading an undefined register should error")
	}
}

func TestOperandValue(t *testing.T) {
	env := map[string]int64{"%r1": 7}
	ctx := ThreadCtx{CtaID: 2, Tid: 3, NTid: 256, NCtaID: 10}
	cases := []struct {
		op   string
		want int64
	}{
		{"%r1", 7}, {"42", 42}, {"-5", -5},
		{"%tid.x", 3}, {"%ctaid.x", 2}, {"%ntid.x", 256}, {"%nctaid.x", 10},
		{"0f3F800000", 0x3F800000},
	}
	for _, c := range cases {
		got, err := operandValue(c.op, env, ctx)
		if err != nil || got != c.want {
			t.Errorf("operandValue(%q) = %d, %v; want %d", c.op, got, err, c.want)
		}
	}
	if _, err := operandValue("%r9", env, ctx); err == nil {
		t.Error("undefined register should error")
	}
	if _, err := operandValue("banana", env, ctx); err == nil {
		t.Error("garbage operand should error")
	}
}

func TestIntBinopAndCompare(t *testing.T) {
	if v, _ := intBinop("div", 7, 2); v != 3 {
		t.Error("div")
	}
	if _, err := intBinop("div", 7, 0); err == nil {
		t.Error("div by zero should error")
	}
	if _, err := intBinop("rem", 7, 0); err == nil {
		t.Error("rem by zero should error")
	}
	if v, _ := intBinop("shl", 1, 10); v != 1024 {
		t.Error("shl")
	}
	if v, _ := intBinop("min", -3, 5); v != -3 {
		t.Error("min")
	}
	if v, _ := compare("ne", 1, 2); v != 1 {
		t.Error("ne")
	}
	if _, err := compare("zz", 1, 2); err == nil {
		t.Error("unknown comparison should error")
	}
}

// compileSmall compiles a compact CNN for end-to-end analysis tests.
func compileSmall(t *testing.T) *ptxgen.Program {
	t.Helper()
	b, x := cnn.NewBuilder("tiny", cnn.Shape{H: 8, W: 8, C: 3})
	x = b.Add(cnn.ConvNoBias(4, 3, 1, cnn.Same), x)
	x = b.Add(cnn.BN(), x)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.MaxPool2D(2, 2, cnn.Valid), x)
	x = b.Add(cnn.Flatten{}, x)
	x = b.Add(cnn.FC(10), x)
	x = b.Add(cnn.Softmax(), x)
	m, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ptxgen.Compile(m, ptxgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestAnalyzeProgramEndToEnd(t *testing.T) {
	prog := compileSmall(t)
	rep, err := AnalyzeProgram(prog, Options{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if rep.Model != "tiny" {
		t.Errorf("model = %q", rep.Model)
	}
	if len(rep.Kernels) != len(prog.Launches) {
		t.Errorf("kernel reports = %d, launches = %d", len(rep.Kernels), len(prog.Launches))
	}
	if rep.Executed <= 0 {
		t.Fatal("no executed instructions")
	}
	// Sum of kernels must equal the total.
	var sum int64
	for _, kr := range rep.Kernels {
		sum += kr.Executed
		if kr.PerThread <= 0 || kr.Executed < kr.PerThread {
			t.Errorf("%s: implausible counts %+v", kr.Kernel, kr)
		}
		if kr.SliceFraction <= 0 || kr.SliceFraction > 1 {
			t.Errorf("%s: slice fraction %f", kr.Kernel, kr.SliceFraction)
		}
	}
	if sum != rep.Executed {
		t.Errorf("kernel sum %d != total %d", sum, rep.Executed)
	}
	// Per-class totals must sum to the executed count.
	var classSum int64
	for _, v := range rep.PerClass {
		classSum += v
	}
	if classSum != rep.Executed {
		t.Errorf("class sum %d != executed %d", classSum, rep.Executed)
	}
	if rep.MeanSliceFraction <= 0 || rep.MeanSliceFraction >= 1 {
		t.Errorf("mean slice fraction = %f (slicing should skip the data path)", rep.MeanSliceFraction)
	}
}

// TestSliceMatchesFullInterpretation is the key correctness property of
// the paper's trick: executing only the control slice must yield exactly
// the same dynamic instruction counts as interpreting everything.
func TestSliceMatchesFullInterpretation(t *testing.T) {
	prog := compileSmall(t)
	sliced, err := AnalyzeProgram(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := AnalyzeProgram(prog, Options{Exec: ExecOptions{Full: true}})
	if err != nil {
		t.Fatal(err)
	}
	if sliced.Executed != full.Executed {
		t.Errorf("sliced executed %d != full %d", sliced.Executed, full.Executed)
	}
	for c, v := range full.PerClass {
		if sliced.PerClass[c] != v {
			t.Errorf("class %v: sliced %d != full %d", c, sliced.PerClass[c], v)
		}
	}
}

// TestConvExecutedCountFormula verifies the conv kernel's dynamic count
// against the closed form 18 + 13*K per in-bounds thread (12 fixed
// prologue/bounds-check instructions, 2 loop-init, 13 per iteration,
// 3 store, 1 ret).
func TestConvExecutedCountFormula(t *testing.T) {
	b, x := cnn.NewBuilder("one", cnn.Shape{H: 4, W: 4, C: 2})
	x = b.Add(cnn.ConvNoBias(4, 3, 1, cnn.Same), x)
	m, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ptxgen.Compile(m, ptxgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeProgram(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kr := rep.Kernels[0]
	k := int64(3 * 3 * 2) // KH*KW*Cin
	wantPerThread := 18 + 13*k
	if kr.PerThread != wantPerThread {
		t.Errorf("per-thread = %d, want %d", kr.PerThread, wantPerThread)
	}
	// 64 active threads, grid 1x256 -> 192 OOB threads running the
	// 13-instruction prologue+exit path.
	wantTotal := 64*wantPerThread + 192*13
	if kr.Executed != wantTotal {
		t.Errorf("executed = %d, want %d", kr.Executed, wantTotal)
	}
}

func TestAnalyzeDeterminism(t *testing.T) {
	prog := compileSmall(t)
	a, err := AnalyzeProgram(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := AnalyzeProgram(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Executed != b.Executed {
		t.Error("analysis not deterministic")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := AnalyzeProgram(nil, Options{}); err == nil {
		t.Error("nil program should error")
	}
	if _, err := AnalyzeKernelLaunch(nil, ptxgen.Launch{}, Options{}); err == nil {
		t.Error("nil kernel should error")
	}
}

// TestExecutedScalesWithBatch: the dynamic instruction total of a batched
// program is (nearly) batch times the single-sample total — the small
// difference is the out-of-bounds padding of the last block.
func TestExecutedScalesWithBatch(t *testing.T) {
	b, x := cnn.NewBuilder("bt", cnn.Shape{H: 8, W: 8, C: 4})
	x = b.Add(cnn.ConvNoBias(8, 3, 1, cnn.Same), x)
	x = b.Add(cnn.ReLU(), x)
	m, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	exec := func(batch int) int64 {
		prog, err := ptxgen.Compile(m, ptxgen.Options{Batch: batch})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := AnalyzeProgram(prog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Executed
	}
	e1, e8 := exec(1), exec(8)
	ratio := float64(e8) / float64(e1)
	if ratio < 7.5 || ratio > 8.5 {
		t.Errorf("batch-8 executed %d is %.2fx batch-1 %d, want about 8x", e8, ratio, e1)
	}
}

// TestTiledLoweringReducesGlobalTraffic: the tiled convolution must
// execute the same number of FMAs as the implicit one (same math, K
// padded up to the tile size) while issuing far fewer global loads.
func TestTiledLoweringReducesGlobalTraffic(t *testing.T) {
	b, x := cnn.NewBuilder("tiletest", cnn.Shape{H: 8, W: 8, C: 32})
	x = b.Add(cnn.ConvNoBias(16, 3, 1, cnn.Same), x)
	m, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	analyze := func(l ptxgen.ConvLowering) *Report {
		prog, err := ptxgen.Compile(m, ptxgen.Options{Lowering: l})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := AnalyzeProgram(prog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	implicit := analyze(ptxgen.ImplicitGEMM)
	tiled := analyze(ptxgen.TiledGEMM)

	// K = 288 = 18 tiles exactly: identical FMA counts.
	if implicit.PerClass[ptx.ClassFMA] != tiled.PerClass[ptx.ClassFMA] {
		t.Errorf("FMA counts differ: implicit %d, tiled %d",
			implicit.PerClass[ptx.ClassFMA], tiled.PerClass[ptx.ClassFMA])
	}
	// Global loads: tiled stages 2 per tile instead of 2 per element.
	ratio := float64(implicit.PerClass[ptx.ClassLoad]) / float64(tiled.PerClass[ptx.ClassLoad])
	if ratio < 8 {
		t.Errorf("tiled lowering should cut global loads by about the tile size, got %.1fx", ratio)
	}
	if tiled.PerClass[ptx.ClassLoadShared] == 0 || tiled.PerClass[ptx.ClassSync] == 0 {
		t.Error("tiled kernel must execute shared accesses and barriers")
	}
}

// TestLoopIterationReporting: the analysis resolves the loop trip counts
// a static analyzer cannot (the paper's Section III-B argument).
func TestLoopIterationReporting(t *testing.T) {
	b, x := cnn.NewBuilder("looprep", cnn.Shape{H: 4, W: 4, C: 2})
	x = b.Add(cnn.ConvNoBias(4, 3, 1, cnn.Same), x) // K = 18 loop iterations
	m, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ptxgen.Compile(m, ptxgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeProgram(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// K = 18 iterations -> 17 taken backward branches (the final
	// iteration falls through).
	if got := rep.Kernels[0].LoopIterations; got != 17 {
		t.Errorf("loop iterations = %d, want 17 (K-1 taken back branches)", got)
	}
}

// TestTraceThreadDirect exercises the trace API the detailed simulator
// consumes: the trace length equals the in-bounds per-thread step count.
func TestTraceThreadDirect(t *testing.T) {
	prog := compileSmall(t)
	for i, l := range prog.Launches {
		k := prog.Module.Kernel(l.Kernel)
		trace, err := TraceThread(k, LaunchInfo{BlockX: l.BlockX, GridX: l.GridX, Params: l.Params}, 0, ExecOptions{})
		if err != nil {
			t.Fatalf("trace %s: %v", l.Kernel, err)
		}
		kr, err := AnalyzeKernelLaunch(k, l, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(trace)) != kr.PerThread {
			t.Errorf("%s: trace length %d != per-thread steps %d", l.Kernel, len(trace), kr.PerThread)
		}
		_ = i
	}
	// The length cap triggers.
	k := prog.Module.Kernel(prog.Launches[0].Kernel)
	if _, err := TraceThread(k, LaunchInfo{BlockX: 256, GridX: 1, Params: prog.Launches[0].Params}, 3, ExecOptions{}); err == nil {
		t.Error("tiny maxLen should error")
	}
}
