package dca

import (
	"fmt"
	"strconv"
	"strings"

	"cnnperf/internal/ptx"
	"cnnperf/internal/ptxanalysis"
)

// The bytecode instruction set. Each opcode spelling the reference
// interpreter understands lowers to one of these; anything it would
// reject lowers to copBad, which raises the same error lazily — only
// when the instruction is actually reached with its guard true — so
// compilation itself never fails on code the thread never executes.
type copKind uint8

const (
	// copBad errors when executed: unknown opcode root, missing
	// operands, or an unknown setp comparison.
	copBad copKind = iota
	copMov
	copNeg
	copNot
	copAbs
	copLdParam // a: parameter position, or by-name fallback via name
	copLdData  // global/shared load: zero in Full mode, error in slice mode
	copNop     // st, bar, membar: no register effects
	copAdd
	copSub
	copMul
	copDiv
	copRem
	copMin
	copMax
	copAnd
	copOr
	copXor
	copShl
	copShr
	copMad
	copSetp
	copSelp
	copSfu // rcp/sqrt/rsqrt/ex2/lg2/sin/cos: dst = 0
	copBra
	copExit
)

// cmpKind encodes the setp comparison.
type cmpKind uint8

const (
	cmpBad cmpKind = iota // unknown comparison: errors when executed
	cmpLT
	cmpLE
	cmpGT
	cmpGE
	cmpEQ
	cmpNE
)

var cmpKinds = map[string]cmpKind{
	"lt": cmpLT, "le": cmpLE, "gt": cmpGT, "ge": cmpGE, "eq": cmpEQ, "ne": cmpNE,
}

var binopKinds = map[string]copKind{
	"add": copAdd, "sub": copSub, "mul": copMul, "div": copDiv,
	"rem": copRem, "min": copMin, "max": copMax, "and": copAnd,
	"or": copOr, "xor": copXor, "shl": copShl, "shr": copShr,
}

// refKind tags how an operand reference resolves at execution time.
type refKind uint8

const (
	refImm  refKind = iota // val is the immediate value
	refSlot                // val is a frame slot index
	refTid
	refNTid
	refCtaID
	refNCtaID
	refBad // unparsable operand: val indexes badNames, errors when read
)

// ref is one pre-decoded operand.
type ref struct {
	kind refKind
	val  int64
}

// cinst is one bytecode instruction.
type cinst struct {
	op      copKind
	cmp     cmpKind
	predNeg bool
	pred    int32 // guard predicate slot, -1 when unguarded
	dst     int32 // destination slot, -1 when none
	a, b, c ref
	// target is the branch destination pc for copBra (-1: unresolved
	// label, errors when taken) and the declared-parameter position for
	// copLdParam (-1: undeclared name, resolved via name at run time).
	target int32
	back   bool   // copBra: target <= pc (a taken branch counts a loop iteration)
	name   string // copLdParam by-name fallback; copBad/refBad error text
}

// affineLoop is a single-block self-loop whose trip count has a closed
// form: a lone induction variable advanced by a compile-time-constant
// step and compared against a loop-invariant bound.
type affineLoop struct {
	start, end int32 // block bounds [start, end) in pc space
	ind        int32 // induction-variable slot, written only by the add
	pred       int32 // the setp destination / branch guard slot
	step       int64 // per-iteration increment (negative for sub)
	bound      ref   // loop-invariant bound operand
	// cmp is the normalized continue condition: the loop repeats while
	// cmp(ind, bound) holds. Restricted to lt/le (step>0) and gt/ge
	// (step<0), so the loop provably terminates and the trip count is
	// n = max(1, ceil((bound-ind0)/step)) and its mirror forms.
	cmp cmpKind
	// predNeg records the back branch's guard polarity: after a
	// closed-form exit the predicate slot holds the last raw setp
	// result, which is 1 for a negated guard and 0 otherwise.
	predNeg       bool
	perIterSteps  int64                 // instructions counted per iteration (block length)
	perIterInterp int64                 // instructions interpreted per iteration
	hist          [ptx.NumClasses]int64 // per-class counts of one iteration
}

// CompiledKernel is one kernel's control slice lowered to register-slot
// bytecode: opcodes interned to an enum, register names resolved to
// frame slots, immediates and special registers pre-decoded, branch
// targets pre-resolved to pc indices, and per-pc classes precomputed.
// A compiled kernel is immutable and safe for concurrent Execute calls;
// the analysis cache shares one instance across content-identical
// kernels (parameters are therefore bound by declaration position, not
// by name).
type CompiledKernel struct {
	code   []cinst
	interp []bool // pc is interpreted (in the slice, or Full mode)
	// nextInterp[pc] is the first interpreted pc >= pc (len(code) when
	// none): the length of the counted-only run starting at pc.
	nextInterp []int32
	class      []ptx.Class
	// classPrefix[i*NumClasses+c] counts class-c instructions in
	// body[0:i], so any counted-only run accounts its class histogram
	// with NumClasses subtractions instead of one increment per pc.
	classPrefix []int64
	// loops[pc] is non-nil when pc heads a closed-form countable loop.
	loops    []*affineLoop
	slots    int
	full     bool
	maxSteps int64
	regNames []string // slot -> register name, for error messages
	badNames []string // refBad -> original operand text

	// Batch layout, derived from the bytecode by computeLayout (never
	// serialized — the decoder recomputes it). varying[slot] marks slots
	// whose value can differ between lanes of one batch; slotLoc[slot]
	// is the slot's index within its frame — the per-batch uniform frame
	// or the struct-of-arrays varying lane arrays. scalar[pc] marks
	// instructions the batched engine executes once per batch.
	varying []bool
	slotLoc []int32
	scalar  []bool
	nuslots int
	nvslots int
}

// Compile lowers the kernel's control slice to bytecode under the given
// executor options (Full and MaxSteps are baked in; cache keys must
// include them). Errors are reserved for structural impossibilities —
// per-instruction problems lower to lazily-erroring bytecode so the
// compiled kernel mirrors the reference interpreter's behavior exactly.
// Callers fall back to ExecuteThread when Compile fails.
func Compile(k *ptx.Kernel, slice *ControlSlice, opts ExecOptions) (*CompiledKernel, error) {
	n := len(k.Body)
	if len(slice.InSlice) != n {
		return nil, fmt.Errorf("dca: compile: slice covers %d of %d instructions", len(slice.InSlice), n)
	}
	c := &CompiledKernel{
		code:        make([]cinst, n),
		interp:      make([]bool, n),
		nextInterp:  make([]int32, n+1),
		class:       make([]ptx.Class, n),
		classPrefix: make([]int64, (n+1)*ptx.NumClasses),
		loops:       make([]*affineLoop, n),
		full:        opts.Full,
		maxSteps:    opts.effectiveMaxSteps(),
	}
	slots := make(map[string]int32, 32)
	slotOf := func(name string) int32 {
		if s, ok := slots[name]; ok {
			return s
		}
		s := int32(len(c.regNames))
		slots[name] = s
		c.regNames = append(c.regNames, name)
		return s
	}
	paramPos := make(map[string]int32, len(k.Params))
	for i, p := range k.Params {
		paramPos[p.Name] = int32(i)
	}
	for pc := range k.Body {
		in := &k.Body[pc]
		info := ptx.Decode(in.Opcode)
		c.class[pc] = info.Class
		c.interp[pc] = opts.Full || slice.InSlice[pc]
		base := pc * ptx.NumClasses
		copy(c.classPrefix[base+ptx.NumClasses:base+2*ptx.NumClasses], c.classPrefix[base:base+ptx.NumClasses])
		c.classPrefix[base+ptx.NumClasses+int(info.Class)]++
		if c.interp[pc] {
			c.code[pc] = c.compileInst(k, pc, in, &info, slotOf, paramPos)
		}
	}
	next := int32(n)
	c.nextInterp[n] = next
	for pc := n - 1; pc >= 0; pc-- {
		if c.interp[pc] {
			next = int32(pc)
		}
		c.nextInterp[pc] = next
	}
	c.slots = len(c.regNames)
	c.detectLoops(k)
	c.computeLayout()
	return c, nil
}

// refVaries reports whether an operand reference can resolve to
// different values for different lanes of one batch. %tid.x and
// %ctaid.x always vary; %ntid.x and %nctaid.x are uniform because the
// batched engine groups lanes by (NTid, NCtaID) up front.
func refVaries(r ref, varying []bool) bool {
	switch r.kind {
	case refTid, refCtaID:
		return true
	case refSlot:
		return varying[r.val]
	}
	return false
}

// computeLayout classifies every register slot as uniform (one value
// per batch) or varying (one value per lane) and lays the slots out:
// uniform slots index a per-batch frame, varying slots index contiguous
// struct-of-arrays lane arrays. A slot is varying when any write to it
// reads a varying source or sits under a varying guard — a monotone
// fixpoint over the bytecode. The classification also marks the
// instructions the batched engine can execute once per batch (scalar):
// uniform guard, uniform destination, uniform sources. Unused operand
// fields hold zero-valued refImm entries, so the blanket source check
// is sound for every opcode.
func (c *CompiledKernel) computeLayout() {
	varying := make([]bool, c.slots)
	for changed := true; changed; {
		changed = false
		for pc := range c.code {
			if !c.interp[pc] {
				continue
			}
			ci := &c.code[pc]
			if ci.dst < 0 || varying[ci.dst] {
				continue
			}
			if refVaries(ci.a, varying) || refVaries(ci.b, varying) || refVaries(ci.c, varying) ||
				(ci.pred >= 0 && varying[ci.pred]) {
				varying[ci.dst] = true
				changed = true
			}
		}
	}
	c.varying = varying
	c.slotLoc = make([]int32, c.slots)
	c.nuslots, c.nvslots = 0, 0
	for s, v := range varying {
		if v {
			c.slotLoc[s] = int32(c.nvslots)
			c.nvslots++
		} else {
			c.slotLoc[s] = int32(c.nuslots)
			c.nuslots++
		}
	}
	c.scalar = make([]bool, len(c.code))
	for pc := range c.code {
		if !c.interp[pc] {
			continue
		}
		ci := &c.code[pc]
		c.scalar[pc] = !(ci.pred >= 0 && varying[ci.pred]) &&
			!(ci.dst >= 0 && varying[ci.dst]) &&
			!refVaries(ci.a, varying) && !refVaries(ci.b, varying) && !refVaries(ci.c, varying)
	}
}

// compileInst lowers one interpreted instruction, mirroring the
// reference interpreter's step/branch/exit handling case for case.
func (c *CompiledKernel) compileInst(k *ptx.Kernel, pc int, in *ptx.Instruction, info *ptx.OpInfo, slotOf func(string) int32, paramPos map[string]int32) cinst {
	ci := cinst{pred: -1, dst: -1, target: -1}
	if in.Pred != "" {
		ci.pred = slotOf(in.Pred)
		ci.predNeg = in.PredNeg
	}
	operand := func(op string) ref {
		switch op {
		case "%tid.x":
			return ref{kind: refTid}
		case "%ntid.x":
			return ref{kind: refNTid}
		case "%ctaid.x":
			return ref{kind: refCtaID}
		case "%nctaid.x":
			return ref{kind: refNCtaID}
		}
		if strings.HasPrefix(op, "%") {
			return ref{kind: refSlot, val: int64(slotOf(op))}
		}
		if strings.HasPrefix(op, "0f") || strings.HasPrefix(op, "0F") {
			if bits, err := strconv.ParseUint(op[2:], 16, 64); err == nil {
				return ref{kind: refImm, val: int64(bits)}
			}
		} else if v, err := strconv.ParseInt(op, 10, 64); err == nil {
			return ref{kind: refImm, val: v}
		}
		c.badNames = append(c.badNames, op)
		return ref{kind: refBad, val: int64(len(c.badNames) - 1)}
	}
	if info.Branch {
		ci.op = copBra
		if len(in.Operands) == 1 {
			if tgt, err := k.Target(in.Operands[0]); err == nil {
				ci.target = int32(tgt)
				ci.back = tgt <= pc
			} else {
				ci.name = in.Operands[0]
			}
		}
		return ci
	}
	if info.Exit {
		ci.op = copExit
		return ci
	}
	src := in.Sources()
	if info.Dest {
		ci.dst = slotOf(in.Dest())
	}
	// bad returns the lazily-erroring form carrying the reference
	// interpreter's message for this instruction; the kernel name is
	// substituted at execution time (compiled code is shared across
	// content-identical kernels under different names).
	bad := func(msg string) cinst {
		ci.op = copBad
		ci.name = msg
		return ci
	}
	need := func(want int) bool { return len(src) >= want }
	arity := func(want int) cinst {
		return bad(fmt.Sprintf("dca: kernel %s pc %d: %s needs %d sources, has %d", kernelPlaceholder, pc, in.Opcode, want, len(src)))
	}
	switch info.Root {
	case "mov", "cvt", "cvta":
		if !need(1) {
			return arity(1)
		}
		ci.op, ci.a = copMov, operand(src[0])
	case "neg":
		if !need(1) {
			return arity(1)
		}
		ci.op, ci.a = copNeg, operand(src[0])
	case "not":
		if !need(1) {
			return arity(1)
		}
		ci.op, ci.a = copNot, operand(src[0])
	case "abs":
		if !need(1) {
			return arity(1)
		}
		ci.op, ci.a = copAbs, operand(src[0])
	case "ld":
		if !need(1) {
			return arity(1)
		}
		if strings.Contains(in.Opcode, "param") {
			ci.op = copLdParam
			name := strings.Trim(src[0], "[]")
			if pos, ok := paramPos[name]; ok {
				// Declared parameters bind by position: the compiled
				// kernel is shared across content-identical kernels
				// whose parameter names differ.
				ci.target = pos
			} else {
				ci.name = name
			}
			return ci
		}
		ci.op = copLdData
	case "st", "bar", "membar":
		ci.op = copNop
	case "add", "sub", "mul", "div", "rem", "min", "max", "and", "or", "xor", "shl", "shr":
		if !need(2) {
			return arity(2)
		}
		ci.op = binopKinds[info.Root]
		ci.a, ci.b = operand(src[0]), operand(src[1])
	case "mad", "fma":
		if !need(3) {
			return arity(3)
		}
		ci.op = copMad
		ci.a, ci.b, ci.c = operand(src[0]), operand(src[1]), operand(src[2])
	case "setp":
		if !need(2) {
			return arity(2)
		}
		ci.op = copSetp
		ci.cmp = cmpKinds[info.Cmp] // cmpBad when unknown: errors when executed
		if ci.cmp == cmpBad {
			ci.name = info.Cmp
		}
		ci.a, ci.b = operand(src[0]), operand(src[1])
	case "selp":
		if !need(3) {
			return arity(3)
		}
		ci.op = copSelp
		ci.a, ci.b, ci.c = operand(src[0]), operand(src[1]), operand(src[2])
	case "rcp", "sqrt", "rsqrt", "ex2", "lg2", "sin", "cos":
		ci.op = copSfu
	default:
		return bad(fmt.Sprintf("dca: kernel %s pc %d: cannot interpret opcode %q", kernelPlaceholder, pc, in.Opcode))
	}
	return ci
}

// kernelPlaceholder marks where the launched kernel's quoted name is
// substituted into a pre-rendered lazy error message.
const kernelPlaceholder = "\x00kernel\x00"

// detectLoops registers closed-form trip counts for the affine
// single-block self-loops the natural-loop analysis finds. Kernels the
// CFG builder rejects simply get no closed forms — execution still
// works, iterating such loops one step at a time.
func (c *CompiledKernel) detectLoops(k *ptx.Kernel) {
	g, err := BuildCFG(k)
	if err != nil {
		return
	}
	for _, l := range ptxanalysis.LoopsOf(g) {
		if len(l.Blocks) != 1 {
			continue // multi-block loops iterate normally
		}
		b := g.Blocks[l.Header]
		if al := c.analyzeSelfLoop(b.Start, b.End); al != nil {
			c.loops[b.Start] = al
		}
	}
}

// analyzeSelfLoop decides whether the single-block loop [start, end) is
// affine and countable. The generated reduction loops all share one
// shape — the only interpreted instructions are the induction update
// (add/sub ind, ind, imm), the exit test (setp cmp p, ind, bound) and
// the guarded back branch — and that is exactly the shape accepted
// here; anything else falls back to per-iteration interpretation.
func (c *CompiledKernel) analyzeSelfLoop(start, end int) *affineLoop {
	var interp []int32
	for pc := start; pc < end; pc++ {
		if c.interp[pc] {
			interp = append(interp, int32(pc))
		}
	}
	if len(interp) != 3 || interp[2] != int32(end-1) {
		return nil
	}
	ad, sp, bra := &c.code[interp[0]], &c.code[interp[1]], &c.code[end-1]
	if bra.op != copBra || int(bra.target) != start || bra.pred < 0 {
		return nil
	}
	// Induction update: unguarded ind = ind +/- constant.
	if ad.pred != -1 || ad.dst < 0 {
		return nil
	}
	var step int64
	switch {
	case ad.op == copAdd && ad.a.kind == refSlot && ad.a.val == int64(ad.dst) && ad.b.kind == refImm:
		step = ad.b.val
	case ad.op == copSub && ad.a.kind == refSlot && ad.a.val == int64(ad.dst) && ad.b.kind == refImm:
		step = -ad.b.val
	default:
		return nil
	}
	if step == 0 {
		return nil
	}
	ind := ad.dst
	// Exit test: unguarded setp writing the branch guard, comparing the
	// induction variable against a loop-invariant bound. Only the add
	// and the setp write inside the block, so any other operand — an
	// immediate, a special register, or a slot that is neither ind nor
	// the guard — is invariant across iterations.
	if sp.op != copSetp || sp.pred != -1 || sp.dst != bra.pred || sp.dst == ind {
		return nil
	}
	cmp := sp.cmp
	bound := sp.b
	if sp.a.kind != refSlot || sp.a.val != int64(ind) {
		if sp.b.kind != refSlot || sp.b.val != int64(ind) {
			return nil
		}
		// Bound on the left: flip the comparison.
		bound = sp.a
		switch cmp {
		case cmpLT:
			cmp = cmpGT
		case cmpLE:
			cmp = cmpGE
		case cmpGT:
			cmp = cmpLT
		case cmpGE:
			cmp = cmpLE
		}
	}
	if bound.kind == refBad || (bound.kind == refSlot && (bound.val == int64(ind) || bound.val == int64(sp.dst))) {
		return nil
	}
	// A negated guard continues the loop while the comparison fails.
	if bra.predNeg {
		switch cmp {
		case cmpLT:
			cmp = cmpGE
		case cmpLE:
			cmp = cmpGT
		case cmpGT:
			cmp = cmpLE
		case cmpGE:
			cmp = cmpLT
		case cmpEQ:
			cmp = cmpNE
		case cmpNE:
			cmp = cmpEQ
		}
	}
	// Only monotone conditions moving toward their bound terminate with
	// a closed form; eq/ne and wrong-direction loops iterate normally
	// (and hit the MaxSteps guard exactly as the reference does).
	switch cmp {
	case cmpLT, cmpLE:
		if step < 0 {
			return nil
		}
	case cmpGT, cmpGE:
		if step > 0 {
			return nil
		}
	default:
		return nil
	}
	al := &affineLoop{
		start: int32(start), end: int32(end),
		ind: ind, pred: sp.dst, step: step, bound: bound, cmp: cmp,
		predNeg:       bra.predNeg,
		perIterSteps:  int64(end - start),
		perIterInterp: 3,
	}
	base := start * ptx.NumClasses
	top := end * ptx.NumClasses
	for cl := 0; cl < ptx.NumClasses; cl++ {
		al.hist[cl] = c.classPrefix[top+cl] - c.classPrefix[base+cl]
	}
	return al
}

// trips solves the loop's trip count for the given entry value and
// bound. ok is false when the closed form cannot be trusted — operand
// magnitudes large enough that the reference interpreter's wrap-around
// arithmetic could diverge from exact math — in which case the caller
// iterates the loop normally.
func (al *affineLoop) trips(v0, bound int64) (n int64, ok bool) {
	const lim = int64(1) << 61
	if v0 <= -lim || v0 >= lim || bound <= -lim || bound >= lim {
		return 0, false
	}
	switch al.cmp {
	case cmpLT: // while ind < bound, step > 0
		n = ceilDiv(bound-v0, al.step)
	case cmpLE:
		n = ceilDiv(bound-v0+1, al.step)
	case cmpGT: // while ind > bound, step < 0
		n = ceilDiv(v0-bound, -al.step)
	case cmpGE:
		n = ceilDiv(v0-bound+1, -al.step)
	}
	// The body always runs once: the exit test sits at the bottom.
	if n < 1 {
		n = 1
	}
	// Keep every intermediate induction value far from the int64 limits
	// so closed-form arithmetic matches the iterated wrap-around exactly.
	step := al.step
	if step < 0 {
		step = -step
	}
	if n >= lim/step {
		return 0, false
	}
	return n, true
}

// ceilDiv is ceil(a/b) for b > 0.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b > 0 {
		q++
	}
	return q
}
