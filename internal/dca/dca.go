package dca

import (
	"context"
	"fmt"
	"strings"
	"time"

	"cnnperf/internal/analysiscache"
	"cnnperf/internal/obs"
	"cnnperf/internal/ptx"
	"cnnperf/internal/ptxanalysis"
	"cnnperf/internal/ptxgen"
)

// KernelReport is the analysis result for one kernel launch.
type KernelReport struct {
	// Kernel is the kernel name.
	Kernel string
	// Node is the CNN graph node the kernel implements.
	Node string
	// Static is the static instruction count of the kernel body.
	Static int
	// SliceSize is the number of instructions in the control slice.
	SliceSize int
	// SliceFraction is SliceSize / Static.
	SliceFraction float64
	// DepEdges is |E| of the kernel's dependency graph.
	DepEdges int
	// PerThread is the dynamic instruction count of one in-bounds thread.
	PerThread int64
	// LoopIterations is the loop-trip total of one in-bounds thread
	// (taken backward branches) — what the dynamic code analysis
	// resolves that a static count cannot.
	LoopIterations int64
	// Executed is the dynamic instruction count over all launched threads.
	Executed int64
	// PerClass histograms Executed by instruction class.
	PerClass map[ptx.Class]int64
	// WorkingSetBytes is copied from the launch for the timing model.
	WorkingSetBytes int64
	// Threads is the number of in-bounds threads.
	Threads int64
	// BlockVisits is the launch-total execution count per CFG basic
	// block (cfg.Build block order, shared with ptxanalysis), scaled by
	// thread population like Executed. Populated only under
	// Options.BlockCounts, and nil when the kernel's control slice
	// cannot be compiled to bytecode — consumers must fall back to
	// unweighted static block features.
	BlockVisits []int64
}

// Report aggregates the dynamic code analysis over a whole program (one
// CNN): the total number of executed PTX instructions the paper uses as
// the p predictor, plus per-class totals consumed by the GPU simulator.
type Report struct {
	// Model is the analysed model's name.
	Model string
	// Kernels are the per-launch reports in execution order.
	Kernels []KernelReport
	// Executed is the total dynamic instruction count.
	Executed int64
	// PerClass histograms Executed by class.
	PerClass map[ptx.Class]int64
	// AnalysisTime is the wall-clock cost of the analysis (the paper's
	// t_dca).
	AnalysisTime time.Duration
	// MeanSliceFraction is the average control-slice share, showing how
	// little of the code the slicing interpreter had to evaluate.
	MeanSliceFraction float64
}

// Options configures the analysis.
type Options struct {
	// Exec tunes the abstract executor.
	Exec ExecOptions
	// SkipLint bypasses the static-analysis validation gate. Set by
	// AnalyzeProgram after it has linted each distinct kernel once, so
	// repeated launches of one kernel are not re-analysed.
	SkipLint bool
	// Cache memoizes per-kernel analysis results content-addressed by
	// the kernel's canonical text and launch configuration, so identical
	// kernels — within one model or across the whole zoo — are sliced
	// and abstractly executed exactly once. Nil disables memoization.
	Cache *analysiscache.Cache
	// BlockCounts additionally records per-basic-block execution counts
	// in KernelReport.BlockVisits (the dynamic weights of the per-block
	// static features). Off by default: the visit profile costs one
	// counter array per representative thread.
	BlockCounts bool
}

// lintGate rejects kernels whose static analysis reports error-severity
// diagnostics (use-before-def registers, unresolved branch targets):
// abstractly executing them would compute garbage or fail midway.
// LintErrors computes exactly the error-severity subset of the full
// lint, skipping the warning-only analyses the gate never looks at.
func lintGate(k *ptx.Kernel) error {
	return gateErr(k, ptxanalysis.LintErrors(k))
}

// cachedLintGate is lintGate memoizing the error-severity findings by
// kernel content.
func cachedLintGate(k *ptx.Kernel, c *analysiscache.Cache) error {
	if c == nil {
		return lintGate(k)
	}
	v, _, err := c.GetOrCompute(analysiscache.KernelKey("lint", k), func() (any, error) {
		return ptxanalysis.LintErrors(k), nil
	})
	if err != nil {
		return err
	}
	return gateErr(k, v.([]ptxanalysis.Diag))
}

// gateErr converts error-severity diagnostics into the gate rejection.
func gateErr(k *ptx.Kernel, errs []ptxanalysis.Diag) error {
	if len(errs) > 0 {
		return fmt.Errorf("dca: kernel %s rejected by static analysis: %s (%d error diagnostics)",
			k.Name, errs[0].Msg, len(errs))
	}
	return nil
}

// AnalyzeKernelLaunch slices and abstractly executes one kernel under its
// launch configuration. Threads of a launch differ only in whether the
// bounds check passes, so one in-bounds and (when the grid overcovers)
// one out-of-bounds representative suffice; the counts scale by thread
// population. With opts.Cache set, the result is memoized by kernel
// content and launch configuration.
func AnalyzeKernelLaunch(k *ptx.Kernel, l ptxgen.Launch, opts Options) (KernelReport, error) {
	return analyzeKernelLaunch(k, l, opts, nil, nil)
}

// kernelProgram bundles the per-kernel artifacts every launch of one
// kernel shares: the dependency graph, the control slice and the
// compiled bytecode. AnalyzeProgram prepares one per distinct kernel so
// repeated launches do not rebuild them.
type kernelProgram struct {
	g     *DepGraph
	slice *ControlSlice
	ck    *CompiledKernel // nil: run the reference interpreter
	// cfgErr is the structural CFG failure, reported per launch when
	// the lint gate is skipped.
	cfgErr error
}

// prepareKernel builds the launch-independent analysis artifacts.
func prepareKernel(k *ptx.Kernel, opts Options) *kernelProgram {
	kp := &kernelProgram{}
	if _, err := BuildCFG(k); err != nil {
		kp.cfgErr = err
		return kp
	}
	kp.g = BuildDepGraph(k)
	kp.slice = BuildControlSlice(k, kp.g)
	if !opts.Exec.Reference {
		kp.ck = compiledKernel(k, kp.slice, opts)
	}
	return kp
}

// analyzeKernelLaunch is AnalyzeKernelLaunch with an optional lazy
// provider of prepared per-kernel artifacts (nil: build them inline) and
// an optional reusable execution arena (nil: allocate one per call).
func analyzeKernelLaunch(k *ptx.Kernel, l ptxgen.Launch, opts Options, prep func() *kernelProgram, ar *execArena) (KernelReport, error) {
	kr, _, err := analyzeKernelLaunchHit(k, l, opts, prep, ar)
	return kr, err
}

// analyzeKernelLaunchHit additionally reports whether the result came
// out of the analysis cache, for span attribution.
func analyzeKernelLaunchHit(k *ptx.Kernel, l ptxgen.Launch, opts Options, prep func() *kernelProgram, ar *execArena) (KernelReport, bool, error) {
	if k == nil {
		return KernelReport{}, false, fmt.Errorf("dca: nil kernel")
	}
	if opts.Cache == nil {
		kr, err := analyzeKernelLaunchUncached(k, l, opts, prep, ar)
		return kr, false, err
	}
	key := launchKey(k, l, opts)
	// GetOrCompute runs the closure on the calling goroutine, so the
	// caller's arena never crosses goroutines; cached reports retain no
	// arena-backed memory (BlockVisits is freshly allocated).
	v, hit, err := opts.Cache.GetOrCompute(key, func() (any, error) {
		kr, err := analyzeKernelLaunchUncached(k, l, opts, prep, ar)
		if err != nil {
			return nil, err
		}
		return &kr, nil
	})
	if err != nil {
		return KernelReport{}, hit, err
	}
	// The cached report may come from a content-identical kernel under a
	// different name or launch identity; re-stamp the launch-specific
	// fields (none of which influence the counts) and detach the class
	// histogram so callers cannot mutate the shared entry.
	kr := *(v.(*KernelReport))
	kr.Kernel = k.Name
	kr.Node = l.Node
	kr.WorkingSetBytes = l.WorkingSetBytes
	perClass := make(map[ptx.Class]int64, len(kr.PerClass))
	for c, n := range kr.PerClass {
		perClass[c] = n
	}
	kr.PerClass = perClass
	if kr.BlockVisits != nil {
		kr.BlockVisits = append([]int64(nil), kr.BlockVisits...)
	}
	return kr, hit, nil
}

// launchKey derives the memoization key of one (kernel, launch) pair:
// the canonical kernel text plus every launch and executor knob that can
// influence the counted result. WorkingSetBytes and the node identity
// are deliberately excluded — they are carried through the report but do
// not affect the abstract execution.
func launchKey(k *ptx.Kernel, l ptxgen.Launch, opts Options) string {
	var params strings.Builder
	for i, p := range k.Params {
		fmt.Fprintf(&params, "%d=%d;", i, l.Params[p.Name])
	}
	return analysiscache.KernelKey("dca", k,
		fmt.Sprintf("grid=%d;block=%d;threads=%d;full=%t;maxsteps=%d;lint=%t;ref=%t;bb=%t",
			l.GridX, l.BlockX, l.Threads, opts.Exec.Full, opts.Exec.MaxSteps, opts.SkipLint, opts.Exec.Reference, opts.BlockCounts),
		params.String())
}

// batchLayoutVersion versions the in-memory compiled-program memo key:
// CompiledKernel instances are shared through the analysis cache, and a
// process mixing binaries (or a cache warmed by an older layout pass)
// must never hand bytecode without batch-layout metadata to the batched
// engine. Version 2 introduced the uniform/varying slot layout. The
// persistent serialization format is unversioned by this constant — the
// decoder recomputes the layout from the bytecode.
const batchLayoutVersion = 2

// compiledKernel returns the bytecode form of the kernel's control
// slice, memoized by kernel content and the executor knobs baked into
// the compiled program. A nil return means the kernel cannot be
// compiled; the caller falls back to the reference interpreter.
func compiledKernel(k *ptx.Kernel, slice *ControlSlice, opts Options) *CompiledKernel {
	if opts.Cache == nil {
		ck, err := Compile(k, slice, opts.Exec)
		if err != nil {
			return nil
		}
		return ck
	}
	key := analysiscache.KernelKey("dcac", k,
		fmt.Sprintf("full=%t;maxsteps=%d;layout=%d", opts.Exec.Full, opts.Exec.effectiveMaxSteps(), batchLayoutVersion))
	v, _, err := opts.Cache.GetOrCompute(key, func() (any, error) {
		return Compile(k, slice, opts.Exec)
	})
	if err != nil {
		return nil
	}
	return v.(*CompiledKernel)
}

// analyzeKernelLaunchUncached is the memoization-free analysis body.
func analyzeKernelLaunchUncached(k *ptx.Kernel, l ptxgen.Launch, opts Options, prep func() *kernelProgram, ar *execArena) (KernelReport, error) {
	if ar == nil {
		ar = newExecArena()
	}
	if !opts.SkipLint {
		if err := lintGate(k); err != nil {
			return KernelReport{}, err
		}
	}
	var kp *kernelProgram
	if prep != nil {
		kp = prep()
	} else {
		kp = prepareKernel(k, opts)
	}
	if kp.cfgErr != nil { // structural validation (lint subsumes it)
		return KernelReport{}, kp.cfgErr
	}
	slice := kp.slice

	// Block-count instrumentation: only the bytecode engine carries the
	// per-instruction visit counters. Under Reference mode (or after a
	// compiler bailout) the bytecode is compiled on the side purely for
	// the profile — the engines are differentially verified identical,
	// so the replay cannot change the report — and a kernel the
	// compiler rejects simply reports nil BlockVisits.
	vck := kp.ck
	if opts.BlockCounts && vck == nil {
		vck = compiledKernel(k, slice, opts)
	}
	visitsOK := true

	rep := KernelReport{
		Kernel:          k.Name,
		Node:            l.Node,
		Static:          len(k.Body),
		SliceSize:       slice.Size,
		SliceFraction:   slice.Fraction(),
		DepEdges:        kp.g.Edges(),
		PerClass:        make(map[ptx.Class]int64),
		WorkingSetBytes: l.WorkingSetBytes,
		Threads:         l.Threads,
	}

	total := int64(l.GridX) * int64(l.BlockX)
	active := l.Threads
	oob := total - active
	runOob := oob > 0 && active <= total
	wantVisits := opts.BlockCounts && vck != nil

	var inVisits, oobVisits []int64
	if wantVisits {
		inVisits = ar.i64.take(len(k.Body))
		if runOob {
			oobVisits = ar.i64.take(len(k.Body))
		}
	}
	inCtx := ThreadCtx{CtaID: 0, Tid: 0, NTid: int64(l.BlockX), NCtaID: int64(l.GridX)}
	oobCtx := ThreadCtx{CtaID: int64(l.GridX) - 1, Tid: int64(l.BlockX) - 1, NTid: int64(l.BlockX), NCtaID: int64(l.GridX)}

	// Engine selection: the batched compiled engine is the default — the
	// in-bounds and out-of-bounds representatives run as one two-lane
	// batch, sharing every uniform computation. opts.Exec.Unbatched runs
	// the compiled engine one lane at a time; opts.Exec.Reference (or a
	// compiler bailout) runs the reference tree-walking interpreter. All
	// three produce identical results — the differential fuzz target and
	// the zoo-wide equivalence tests enforce it.
	var inRes, oobRes ExecResult
	var inErr, oobErr error
	if kp.ck != nil && !opts.Exec.Unbatched {
		var ctxs [2]ThreadCtx
		var outs [2]LaneResult
		var vis [2][]int64
		ctxs[0], ctxs[1] = inCtx, oobCtx
		vis[0], vis[1] = inVisits, oobVisits
		nl := 1
		if runOob {
			nl = 2
		}
		if wantVisits {
			kp.ck.executeBatch(k, l.Params, ctxs[:nl], vis[:nl], ar, outs[:nl])
		} else {
			kp.ck.executeBatch(k, l.Params, ctxs[:nl], nil, ar, outs[:nl])
		}
		inRes, inErr = outs[0].Res, outs[0].Err
		if nl == 2 {
			oobRes, oobErr = outs[1].Res, outs[1].Err
		}
	} else {
		exec := func(tc ThreadCtx, visits []int64) (ExecResult, error) {
			if kp.ck != nil {
				return kp.ck.execute(k, l.Params, tc, visits, ar)
			}
			res, err := ExecuteThread(k, slice, l.Params, tc, opts.Exec)
			if err == nil && visits != nil {
				if _, verr := vck.execute(k, l.Params, tc, visits, ar); verr != nil {
					visitsOK = false
				}
			}
			return res, err
		}
		inRes, inErr = exec(inCtx, inVisits)
		if inErr == nil && runOob {
			oobRes, oobErr = exec(oobCtx, oobVisits)
		}
	}
	if inErr != nil {
		return rep, fmt.Errorf("dca: kernel %s: %w", k.Name, inErr)
	}
	rep.PerThread = inRes.Steps
	rep.LoopIterations = inRes.BackBranches

	if active > total {
		return rep, fmt.Errorf("dca: kernel %s: %d threads exceed grid capacity %d", k.Name, active, total)
	}

	rep.Executed = active * inRes.Steps
	// The dense histogram converts to the sparse report map here, at the
	// serialization boundary: only classes the thread touched get an
	// entry (an entry may still be zero when active is zero, matching
	// the historical map encoding).
	for c, v := range &inRes.PerClass {
		if v != 0 {
			rep.PerClass[ptx.Class(c)] += active * v
		}
	}
	if oob > 0 {
		if oobErr != nil {
			return rep, fmt.Errorf("dca: kernel %s (oob thread): %w", k.Name, oobErr)
		}
		rep.Executed += oob * oobRes.Steps
		for c, v := range &oobRes.PerClass {
			if v != 0 {
				rep.PerClass[ptx.Class(c)] += oob * v
			}
		}
	}
	if inVisits != nil && visitsOK {
		// Collapse the per-instruction profile to per-block launch
		// totals: a block's visit count is its first instruction's (an
		// early thread exit can starve a block's tail, never its head).
		if g, cerr := BuildCFG(k); cerr == nil {
			rep.BlockVisits = make([]int64, len(g.Blocks))
			for bi, b := range g.Blocks {
				v := active * inVisits[b.Start]
				if oobVisits != nil {
					v += oob * oobVisits[b.Start]
				}
				rep.BlockVisits[bi] = v
			}
		}
	}
	return rep, nil
}

// AnalyzeProgram runs the dynamic code analysis over every launch of a
// compiled CNN and aggregates the executed-instruction totals.
func AnalyzeProgram(prog *ptxgen.Program, opts Options) (*Report, error) {
	return AnalyzeProgramContext(context.Background(), prog, opts)
}

// AnalyzeProgramContext is AnalyzeProgram with span tracing: when ctx
// carries an obs tracer (or span), the lint gate, each per-kernel
// compile and each per-launch abstract execution are recorded as nested
// spans. Tracing never changes the computed report.
func AnalyzeProgramContext(ctx context.Context, prog *ptxgen.Program, opts Options) (*Report, error) {
	if prog == nil {
		return nil, fmt.Errorf("dca: nil program")
	}
	start := time.Now()
	ctx, span := obs.Start(ctx, "dca.analyze",
		obs.String("model", prog.Model), obs.Int("launches", len(prog.Launches)))
	defer span.End()
	rep := &Report{Model: prog.Model, PerClass: make(map[ptx.Class]int64)}
	// Gate every distinct kernel once up front; the per-launch loop can
	// then skip re-linting (a kernel may be launched many times). With a
	// cache, the error-severity findings are memoized by content, so a
	// kernel shape shared across models is linted exactly once.
	if !opts.SkipLint {
		_, lintSpan := obs.Start(ctx, "dca.lint")
		linted := make(map[string]bool, len(prog.Launches))
		for _, l := range prog.Launches {
			if linted[l.Kernel] {
				continue
			}
			linted[l.Kernel] = true
			k := prog.Module.Kernel(l.Kernel)
			if k == nil {
				lintSpan.End()
				return nil, fmt.Errorf("dca: launch references unknown kernel %q", l.Kernel)
			}
			if err := cachedLintGate(k, opts.Cache); err != nil {
				lintSpan.End()
				return nil, err
			}
		}
		lintSpan.SetAttr(obs.Int("kernels", len(linted)))
		lintSpan.End()
		opts.SkipLint = true
	}
	// One kernel is launched many times with different parameters; its
	// launch-independent artifacts (dependency graph, control slice,
	// compiled bytecode) are prepared lazily once and shared.
	prepared := make(map[string]*kernelProgram, 8)
	// One arena serves every launch of the program: reset (never freed)
	// between launches, so after the first few launches warm the slabs
	// the per-launch executions allocate nothing.
	ar := newExecArena()
	var sliceSum float64
	for _, l := range prog.Launches {
		k := prog.Module.Kernel(l.Kernel)
		if k == nil {
			return nil, fmt.Errorf("dca: launch references unknown kernel %q", l.Kernel)
		}
		execCtx, execSpan := obs.Start(ctx, "dca.exec",
			obs.String("kernel", k.Name), obs.String("node", l.Node))
		kr, hit, err := analyzeKernelLaunchHit(k, l, opts, func() *kernelProgram {
			kp := prepared[k.Name]
			if kp == nil {
				_, compileSpan := obs.Start(execCtx, "dca.compile", obs.String("kernel", k.Name))
				kp = prepareKernel(k, opts)
				compileSpan.End()
				prepared[k.Name] = kp
			}
			return kp
		}, ar)
		ar.reset()
		if err != nil {
			execSpan.End()
			return nil, err
		}
		execSpan.SetAttr(obs.Bool("cache_hit", hit),
			obs.Int64("executed", kr.Executed), obs.Int64("loop_iterations", kr.LoopIterations))
		execSpan.End()
		rep.Kernels = append(rep.Kernels, kr)
		rep.Executed += kr.Executed
		// Accumulate in class order, not map order: insertion order into
		// rep.PerClass is then deterministic across runs and engines.
		for c := 0; c < ptx.NumClasses; c++ {
			if v, ok := kr.PerClass[ptx.Class(c)]; ok {
				rep.PerClass[ptx.Class(c)] += v
			}
		}
		sliceSum += kr.SliceFraction
	}
	if len(rep.Kernels) > 0 {
		rep.MeanSliceFraction = sliceSum / float64(len(rep.Kernels))
	}
	rep.AnalysisTime = time.Since(start)
	return rep, nil
}
