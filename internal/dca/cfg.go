// Package dca implements the paper's Dynamic Code Analysis: it parses a
// CNN's PTX kernels into a data-dependency graph G = {V, E} and a control
// flow graph, slices the subgraph of instructions needed to decide each
// branch, and abstractly executes only that slice to resolve branch
// outcomes and loop trip counts. The result is the total number of
// executed PTX instructions — obtained without running the CNN on a GPU
// and without a cycle-level simulator (Section IV-A of the paper).
package dca

import (
	"fmt"

	"cnnperf/internal/ptx"
	"cnnperf/internal/ptx/cfg"
)

// BasicBlock is a maximal straight-line instruction range [Start, End).
// It is shared with the static-analysis framework via internal/ptx/cfg.
type BasicBlock = cfg.Block

// CFG is the control-flow graph of one kernel.
type CFG = cfg.Graph

// BuildCFG partitions the kernel body into basic blocks and wires the
// successor edges from branch targets and fallthrough. The construction
// lives in internal/ptx/cfg so the static analyses see the same blocks.
func BuildCFG(k *ptx.Kernel) (*CFG, error) {
	g, err := cfg.Build(k)
	if err != nil {
		return nil, fmt.Errorf("dca: %w", err)
	}
	return g, nil
}
