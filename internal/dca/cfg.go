// Package dca implements the paper's Dynamic Code Analysis: it parses a
// CNN's PTX kernels into a data-dependency graph G = {V, E} and a control
// flow graph, slices the subgraph of instructions needed to decide each
// branch, and abstractly executes only that slice to resolve branch
// outcomes and loop trip counts. The result is the total number of
// executed PTX instructions — obtained without running the CNN on a GPU
// and without a cycle-level simulator (Section IV-A of the paper).
package dca

import (
	"fmt"

	"cnnperf/internal/ptx"
)

// BasicBlock is a maximal straight-line instruction range [Start, End).
type BasicBlock struct {
	// Start is the index of the first instruction.
	Start int
	// End is one past the last instruction.
	End int
	// Succs are the indices of successor blocks in the CFG.
	Succs []int
}

// CFG is the control-flow graph of one kernel.
type CFG struct {
	// Blocks are the basic blocks in ascending Start order.
	Blocks []*BasicBlock
	// blockOf maps an instruction index to its block index.
	blockOf []int
}

// BlockOf returns the block index containing instruction idx.
func (c *CFG) BlockOf(idx int) int { return c.blockOf[idx] }

// BuildCFG partitions the kernel body into basic blocks and wires the
// successor edges from branch targets and fallthrough.
func BuildCFG(k *ptx.Kernel) (*CFG, error) {
	n := len(k.Body)
	if n == 0 {
		return nil, fmt.Errorf("dca: kernel %q has an empty body", k.Name)
	}
	leaders := make(map[int]bool, 8)
	leaders[0] = true
	for i, in := range k.Body {
		if ptx.IsBranch(in.Opcode) {
			tgt, err := k.Target(in.Operands[0])
			if err != nil {
				return nil, fmt.Errorf("dca: %w", err)
			}
			if tgt < n {
				leaders[tgt] = true
			}
			if i+1 < n {
				leaders[i+1] = true
			}
		}
		if ptx.IsExit(in.Opcode) && i+1 < n {
			leaders[i+1] = true
		}
	}
	// Labels also start blocks: predicated instructions may jump there.
	for _, idx := range k.Labels {
		if idx < n {
			leaders[idx] = true
		}
	}

	cfg := &CFG{blockOf: make([]int, n)}
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || leaders[i] {
			cfg.Blocks = append(cfg.Blocks, &BasicBlock{Start: start, End: i})
			start = i
		}
	}
	for bi, b := range cfg.Blocks {
		for i := b.Start; i < b.End; i++ {
			cfg.blockOf[i] = bi
		}
	}
	// Successors.
	for bi, b := range cfg.Blocks {
		last := k.Body[b.End-1]
		switch {
		case ptx.IsExit(last.Opcode):
			// no successors
		case ptx.IsBranch(last.Opcode):
			tgt, err := k.Target(last.Operands[0])
			if err != nil {
				return nil, fmt.Errorf("dca: %w", err)
			}
			if tgt < n {
				b.Succs = append(b.Succs, cfg.blockOf[tgt])
			}
			if last.Pred != "" && b.End < n {
				// Conditional branch falls through too.
				b.Succs = append(b.Succs, bi+1)
			}
		default:
			if b.End < n {
				b.Succs = append(b.Succs, bi+1)
			}
		}
	}
	return cfg, nil
}

// BackEdges returns the (from, to) block pairs whose branch jumps backward
// — the loop edges of the kernel.
func (c *CFG) BackEdges() [][2]int {
	var out [][2]int
	for bi, b := range c.Blocks {
		for _, s := range b.Succs {
			if s <= bi {
				out = append(out, [2]int{bi, s})
			}
		}
	}
	return out
}
