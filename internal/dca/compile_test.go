package dca

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"cnnperf/internal/analysiscache"
	"cnnperf/internal/ptx"
	"cnnperf/internal/ptxgen"
	"cnnperf/internal/zoo"
)

// parseOne wraps a kernel body in a module skeleton and parses it.
func parseOne(t *testing.T, body string) *ptx.Kernel {
	t.Helper()
	src := ".version 6.0\n.target sm_61\n.address_size 64\n.visible .entry k(\n.param .u64 p0\n)\n{\n" + body + "}\n"
	m, err := ptx.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	return m.Kernels[0]
}

// bothEngines executes one thread on the reference interpreter, the
// compiled bytecode and a one-lane batch, and requires identical counts
// and identical error behavior (including the message) from all three.
// It returns the reference result.
func bothEngines(t *testing.T, k *ptx.Kernel, params map[string]int64, ctx ThreadCtx, opts ExecOptions) (ExecResult, error) {
	t.Helper()
	g := BuildDepGraph(k)
	slice := BuildControlSlice(k, g)
	want, werr := ExecuteThread(k, slice, params, ctx, opts)
	ck, cerr := Compile(k, slice, opts)
	if cerr != nil {
		t.Fatalf("Compile: %v", cerr)
	}
	got, gerr := ck.Execute(k, params, ctx)
	bout := ck.ExecuteBatch(k, params, []ThreadCtx{ctx})
	for _, engine := range []struct {
		name string
		res  ExecResult
		err  error
	}{{"compiled", got, gerr}, {"batched", bout[0].Res, bout[0].Err}} {
		if (werr == nil) != (engine.err == nil) {
			t.Fatalf("engines disagree on error: reference=%v %s=%v", werr, engine.name, engine.err)
		}
		if werr != nil {
			if werr.Error() != engine.err.Error() {
				t.Fatalf("error text diverged:\nreference: %v\n%s: %v", werr, engine.name, engine.err)
			}
			continue
		}
		if engine.res != want {
			t.Fatalf("counts diverged: reference=%+v %s=%+v", want, engine.name, engine.res)
		}
	}
	return want, werr
}

// hasClosedForm reports whether the compiled kernel registered at least
// one closed-form loop.
func hasClosedForm(ck *CompiledKernel) bool {
	for _, al := range ck.loops {
		if al != nil {
			return true
		}
	}
	return false
}

func compileFor(t *testing.T, k *ptx.Kernel, opts ExecOptions) *CompiledKernel {
	t.Helper()
	ck, err := Compile(k, BuildControlSlice(k, BuildDepGraph(k)), opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return ck
}

// TestCompiledLoopShapes sweeps the affine-loop shapes the closed-form
// solver must handle — and the near-miss shapes it must reject and
// iterate instead — requiring exact agreement with the reference.
func TestCompiledLoopShapes(t *testing.T) {
	ctx := ThreadCtx{CtaID: 1, Tid: 3, NTid: 64, NCtaID: 4}
	cases := []struct {
		name     string
		body     string
		params   map[string]int64
		closed   bool  // solver should engage
		backs    int64 // expected BackBranches (loop trips - 1), -1 to skip
		wantErr  bool
		maxSteps int64
	}{
		{
			name:   "unit_step_lt",
			body:   "mov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.lt.s32 %p1, %r1, 16;\n@%p1 bra L;\nret;\n",
			closed: true, backs: 15,
		},
		{
			name:   "step_two",
			body:   "mov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 2;\nsetp.lt.s32 %p1, %r1, 17;\n@%p1 bra L;\nret;\n",
			closed: true, backs: 8,
		},
		{
			name:   "le_bound",
			body:   "mov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.le.s32 %p1, %r1, 16;\n@%p1 bra L;\nret;\n",
			closed: true, backs: 16,
		},
		{
			name:   "countdown_gt",
			body:   "mov.u32 %r1, 10;\nL:\nsub.s32 %r1, %r1, 1;\nsetp.gt.s32 %p1, %r1, 0;\n@%p1 bra L;\nret;\n",
			closed: true, backs: 9,
		},
		{
			name:   "countdown_ge",
			body:   "mov.u32 %r1, 10;\nL:\nsub.s32 %r1, %r1, 1;\nsetp.ge.s32 %p1, %r1, 0;\n@%p1 bra L;\nret;\n",
			closed: true, backs: 10,
		},
		{
			name:   "negated_guard",
			body:   "mov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.ge.s32 %p1, %r1, 16;\n@!%p1 bra L;\nret;\n",
			closed: true, backs: 15,
		},
		{
			name:   "flipped_operands",
			body:   "mov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.gt.s32 %p1, 16, %r1;\n@%p1 bra L;\nret;\n",
			closed: true, backs: 15,
		},
		{
			name:   "sreg_bound",
			body:   "mov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.lt.s32 %p1, %r1, %ntid.x;\n@%p1 bra L;\nret;\n",
			closed: true, backs: 63,
		},
		{
			name:   "param_bound",
			body:   "ld.param.u64 %rd1, [p0];\nmov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.lt.s32 %p1, %r1, %rd1;\n@%p1 bra L;\nret;\n",
			params: map[string]int64{"p0": 33},
			closed: true, backs: 32,
		},
		{
			name:   "mac_body_skip_runs",
			body:   "mov.u32 %r1, 0;\nmov.f32 %f1, 0f00000000;\nmov.u64 %rd2, 64;\nL:\nmul.lo.s32 %r2, %r1, 4;\nld.global.f32 %f2, [%rd2];\nld.global.f32 %f3, [%rd2];\nfma.rn.f32 %f1, %f2, %f3, %f1;\nadd.s32 %r1, %r1, 1;\nsetp.lt.s32 %p1, %r1, 100;\n@%p1 bra L;\nret;\n",
			closed: true, backs: 99,
		},
		{
			name:   "already_past_bound",
			body:   "mov.u32 %r1, 50;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.lt.s32 %p1, %r1, 16;\n@%p1 bra L;\nret;\n",
			closed: true, backs: 0,
		},
		{
			name:   "ne_exit_falls_back",
			body:   "mov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.ne.s32 %p1, %r1, 16;\n@%p1 bra L;\nret;\n",
			closed: false, backs: 15,
		},
		{
			name:   "eq_guard_falls_back",
			body:   "mov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.eq.s32 %p1, %r1, 1;\n@%p1 bra L;\nret;\n",
			closed: false, backs: 1,
		},
		{
			name:   "wrong_direction_hits_limit",
			body:   "mov.u32 %r1, 0;\nL:\nsub.s32 %r1, %r1, 1;\nsetp.lt.s32 %p1, %r1, 16;\n@%p1 bra L;\nret;\n",
			closed: false, backs: -1, wantErr: true, maxSteps: 1000,
		},
		{
			name:   "nonconstant_step_falls_back",
			body:   "mov.u32 %r2, 1;\nmov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, %r2;\nsetp.lt.s32 %p1, %r1, 16;\n@%p1 bra L;\nret;\n",
			closed: false, backs: 15,
		},
		{
			name:   "bound_written_in_loop_falls_back",
			body:   "mov.u32 %r2, 30;\nmov.u32 %r1, 0;\nL:\nadd.s32 %r2, %r2, 1;\nadd.s32 %r1, %r1, 2;\nsetp.lt.s32 %p1, %r1, %r2;\n@%p1 bra L;\nret;\n",
			closed: false, backs: 29,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := parseOne(t, tc.body)
			opts := ExecOptions{MaxSteps: tc.maxSteps}
			ck := compileFor(t, k, opts)
			if got := hasClosedForm(ck); got != tc.closed {
				t.Errorf("closed-form detection = %t, want %t", got, tc.closed)
			}
			res, err := bothEngines(t, k, tc.params, ctx, opts)
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr = %t", err, tc.wantErr)
			}
			if tc.backs >= 0 && res.BackBranches != tc.backs {
				t.Errorf("BackBranches = %d, want %d", res.BackBranches, tc.backs)
			}
		})
	}
}

// TestCompiledFullModeEquivalence re-runs a data-carrying loop under
// Full interpretation, where global loads read as zero and every
// instruction is evaluated.
func TestCompiledFullModeEquivalence(t *testing.T) {
	body := "mov.u32 %r1, 0;\nmov.f32 %f1, 0f00000000;\nmov.u64 %rd2, 64;\nL:\nld.global.f32 %f2, [%rd2];\nfma.rn.f32 %f1, %f2, %f2, %f1;\nadd.s32 %r1, %r1, 1;\nsetp.lt.s32 %p1, %r1, 40;\n@%p1 bra L;\nret;\n"
	k := parseOne(t, body)
	res, err := bothEngines(t, k, nil, ThreadCtx{NTid: 32, NCtaID: 1}, ExecOptions{Full: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != res.Interpreted {
		t.Errorf("Full mode interpreted %d of %d steps", res.Interpreted, res.Steps)
	}
}

// TestCompiledErrorTextEquivalence pins the error-path parity: the
// bytecode engine must fail with the reference interpreter's exact
// message, including on lazily-lowered bad instructions.
func TestCompiledErrorTextEquivalence(t *testing.T) {
	ctx := ThreadCtx{NTid: 32, NCtaID: 1}
	cases := []struct {
		name string
		body string
		opts ExecOptions
	}{
		{name: "read_before_write", body: "add.s32 %r1, %r2, 1;\nsetp.lt.s32 %p1, %r1, 4;\n@%p1 bra L;\nL:\nret;\n"},
		{name: "undefined_predicate", body: "@%p9 bra L;\nL:\nret;\n"},
		{name: "missing_param", body: "ld.param.u64 %rd1, [nope];\nsetp.lt.s32 %p1, %rd1, 4;\n@%p1 bra L;\nL:\nret;\n"},
		{name: "division_by_zero", body: "mov.u32 %r2, 0;\ndiv.s32 %r1, 4, %r2;\nsetp.lt.s32 %p1, %r1, 4;\n@%p1 bra L;\nL:\nret;\n"},
		{name: "step_limit", body: "mov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.lt.s32 %p1, %r1, 1000000;\n@%p1 bra L;\nret;\n", opts: ExecOptions{MaxSteps: 100}},
		{name: "data_load_in_slice", body: "ld.global.u32 %r1, [%rd2];\nsetp.lt.s32 %p1, %r1, 4;\n@%p1 bra L;\nL:\nret;\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := parseOne(t, tc.body)
			_, err := bothEngines(t, k, nil, ctx, tc.opts)
			if err == nil {
				t.Fatal("expected an error from both engines")
			}
		})
	}
}

// TestCompiledStepLimitInsideClosedForm places the MaxSteps limit in
// the middle of a closed-form loop: the solver must report the same
// abort the reference hits mid-iteration.
func TestCompiledStepLimitInsideClosedForm(t *testing.T) {
	k := parseOne(t, "mov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.lt.s32 %p1, %r1, 1000;\n@%p1 bra L;\nret;\n")
	ck := compileFor(t, k, ExecOptions{MaxSteps: 500})
	if !hasClosedForm(ck) {
		t.Fatal("closed form not detected")
	}
	_, err := bothEngines(t, k, nil, ThreadCtx{NTid: 1, NCtaID: 1}, ExecOptions{MaxSteps: 500})
	if err == nil {
		t.Fatal("expected the step-limit abort")
	}
}

// TestCompiledReenteredLoop re-enters one loop from an outer loop,
// checking the closed form applies cleanly on each entry with a
// different live induction start.
func TestCompiledReenteredLoop(t *testing.T) {
	body := "mov.u32 %r9, 0;\nOUTER:\nmov.u32 %r1, 0;\nINNER:\nadd.s32 %r1, %r1, 1;\nsetp.lt.s32 %p1, %r1, 7;\n@%p1 bra INNER;\nadd.s32 %r9, %r9, 1;\nsetp.lt.s32 %p2, %r9, 5;\n@%p2 bra OUTER;\nret;\n"
	k := parseOne(t, body)
	res, err := bothEngines(t, k, nil, ThreadCtx{NTid: 1, NCtaID: 1}, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 5 outer trips * 6 inner back branches + 4 outer back branches.
	if want := int64(5*6 + 4); res.BackBranches != want {
		t.Errorf("BackBranches = %d, want %d", res.BackBranches, want)
	}
}

// TestCompiledExecuteAllocsIndependentOfTripCount asserts the
// steady-state property the tentpole targets: the per-call allocation
// count of the compiled engine does not grow with the number of
// interpreter steps.
func TestCompiledExecuteAllocsIndependentOfTripCount(t *testing.T) {
	allocs := func(bound int64) float64 {
		// The ne exit defeats the closed form, forcing a genuine
		// per-iteration interpretation of `bound` trips.
		k := countedLoopNE(t, bound)
		slice := BuildControlSlice(k, BuildDepGraph(k))
		ck, err := Compile(k, slice, ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(10, func() {
			if _, err := ck.Execute(k, nil, ThreadCtx{NTid: 1, NCtaID: 1}); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := allocs(4), allocs(4096)
	if small != large {
		t.Errorf("allocations grow with trip count: %v at 4 trips vs %v at 4096", small, large)
	}
}

// countedLoopNE is countedLoop with an ne exit test, which the
// closed-form solver must refuse.
func countedLoopNE(t *testing.T, n int64) *ptx.Kernel {
	t.Helper()
	k := &ptx.Kernel{Name: "counted_ne"}
	k.Append(ptx.Instruction{Opcode: "mov.u32", Operands: []string{"%r1", "0"}})
	if err := k.AddLabel("L"); err != nil {
		t.Fatal(err)
	}
	k.Append(ptx.Instruction{Opcode: "add.s32", Operands: []string{"%r1", "%r1", "1"}})
	k.Append(ptx.Instruction{Opcode: "setp.ne.s32", Operands: []string{"%p1", "%r1", imm(n)}})
	k.Append(ptx.Instruction{Pred: "%p1", Opcode: "bra", Operands: []string{"L"}})
	k.Append(ptx.Instruction{Opcode: "ret"})
	return k
}

// stripTime zeroes the wall-clock field so reports compare by content.
func stripTime(r *Report) *Report {
	c := *r
	c.AnalysisTime = time.Duration(0)
	return &c
}

// TestCompiledMatchesReferenceOnZoo is the zoo-wide equivalence gate:
// with the compiler enabled — batched or unbatched — AnalyzeProgram must
// reproduce the reference interpreter's reports byte for byte on every
// CNN, with the analysis cache on and off. Byte-for-byte is literal:
// beyond DeepEqual, every KernelReport must serialize to identical
// bytes across engines. -short runs a 4-model subset.
func TestCompiledMatchesReferenceOnZoo(t *testing.T) {
	models := zoo.TableIOrder
	if testing.Short() {
		models = []string{"alexnet", "mobilenetv2", "resnet50v2", "inceptionv3"}
	}
	for _, name := range models {
		prog, err := ptxgen.Compile(zoo.MustBuild(name), ptxgen.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ref, err := AnalyzeProgram(prog, Options{Exec: ExecOptions{Reference: true}, BlockCounts: true})
		if err != nil {
			t.Fatalf("%s reference: %v", name, err)
		}
		engines := []struct {
			name string
			opts Options
		}{
			{"batched", Options{BlockCounts: true}},
			{"unbatched", Options{Exec: ExecOptions{Unbatched: true}, BlockCounts: true}},
			{"batched+cache", Options{Cache: analysiscache.New(0), BlockCounts: true}},
			{"unbatched+cache", Options{Exec: ExecOptions{Unbatched: true}, Cache: analysiscache.New(0), BlockCounts: true}},
		}
		for _, eng := range engines {
			got, err := AnalyzeProgram(prog, eng.opts)
			if err != nil {
				t.Fatalf("%s %s: %v", name, eng.name, err)
			}
			if !reflect.DeepEqual(stripTime(ref), stripTime(got)) {
				t.Errorf("%s: %s report diverges from reference", name, eng.name)
				continue
			}
			for i := range got.Kernels {
				wb, werr := MarshalKernelReport(&ref.Kernels[i])
				gb, gerr := MarshalKernelReport(&got.Kernels[i])
				if werr != nil || gerr != nil {
					t.Fatalf("%s: marshal: %v / %v", name, werr, gerr)
				}
				if !bytes.Equal(wb, gb) {
					t.Errorf("%s: %s kernel %d serializes differently:\nref: %s\ngot: %s",
						name, eng.name, i, wb, gb)
					break
				}
			}
		}
	}
}

// TestCompiledKernelSharedAcrossRenames checks the positional parameter
// binding: two content-identical kernels under different names (and
// different parameter names) share one cached compiled kernel and still
// bind their own launch parameters correctly.
func TestCompiledKernelSharedAcrossRenames(t *testing.T) {
	src := ".version 6.0\n.target sm_61\n.address_size 64\n" +
		".visible .entry alpha(\n.param .u64 alpha_n\n)\n{\n" +
		"ld.param.u64 %rd1, [alpha_n];\nmov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.lt.s32 %p1, %r1, %rd1;\n@%p1 bra L;\nret;\n}\n" +
		".visible .entry beta(\n.param .u64 beta_n\n)\n{\n" +
		"ld.param.u64 %rd1, [beta_n];\nmov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.lt.s32 %p1, %r1, %rd1;\n@%p1 bra L;\nret;\n}\n"
	m, err := ptx.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cache := analysiscache.New(0)
	opts := Options{Cache: cache}
	launches := []struct {
		k      *ptx.Kernel
		params map[string]int64
		trips  int64
	}{
		{m.Kernels[0], map[string]int64{"alpha_n": 12}, 12},
		{m.Kernels[1], map[string]int64{"beta_n": 99}, 99},
	}
	for _, l := range launches {
		kr, err := AnalyzeKernelLaunch(l.k, ptxgen.Launch{Kernel: l.k.Name, GridX: 1, BlockX: 1, Threads: 1, Params: l.params}, opts)
		if err != nil {
			t.Fatalf("%s: %v", l.k.Name, err)
		}
		if kr.LoopIterations != l.trips-1 {
			t.Errorf("%s: LoopIterations = %d, want %d", l.k.Name, kr.LoopIterations, l.trips-1)
		}
	}
	if s := cache.Stats(); s.Hits == 0 {
		t.Errorf("content-identical kernels never shared a cache entry: %s", s)
	}
}
