package dca

import (
	"fmt"
	"testing"

	"cnnperf/internal/ptx"
	"cnnperf/internal/ptxgen"
	"cnnperf/internal/zoo"
)

func compileZoo(b testing.TB, name string) *ptxgen.Program {
	b.Helper()
	m := zoo.MustBuild(name)
	prog, err := ptxgen.Compile(m, ptxgen.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// BenchmarkAnalyzeProgram measures the full dynamic code analysis (the
// paper's t_dca) per model.
func BenchmarkAnalyzeProgram(b *testing.B) {
	for _, name := range []string{"alexnet", "mobilenetv2", "resnet50v2", "inceptionv3"} {
		name := name
		b.Run(name, func(b *testing.B) {
			prog := compileZoo(b, name)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := AnalyzeProgram(prog, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// heaviestLaunch returns the kernel and launch with the most dynamic
// steps for the in-bounds probe thread — the workload where interpreter
// speed matters most.
func heaviestLaunch(b testing.TB, prog *ptxgen.Program) (*ptx.Kernel, ptxgen.Launch) {
	b.Helper()
	byName := make(map[string]*ptx.Kernel, len(prog.Module.Kernels))
	for _, k := range prog.Module.Kernels {
		byName[k.Name] = k
	}
	var (
		best      *ptx.Kernel
		bestL     ptxgen.Launch
		bestSteps int64 = -1
	)
	for _, l := range prog.Launches {
		k := byName[l.Kernel]
		if k == nil {
			continue
		}
		g := BuildDepGraph(k)
		slice := BuildControlSlice(k, g)
		ctx := ThreadCtx{NTid: int64(l.BlockX), NCtaID: int64(l.GridX)}
		res, err := ExecuteThread(k, slice, l.Params, ctx, ExecOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Steps > bestSteps {
			best, bestL, bestSteps = k, l, res.Steps
		}
	}
	if best == nil {
		b.Fatal("no launches")
	}
	return best, bestL
}

// BenchmarkExecuteThread compares the reference tree-walking
// interpreter against the compiled register-slot bytecode engine on the
// heaviest single-thread workload in the resnet50v2 schedule. The
// compile step runs outside the timed loop, matching production where
// compiled kernels are built once and memoized.
func BenchmarkExecuteThread(b *testing.B) {
	prog := compileZoo(b, "resnet50v2")
	k, l := heaviestLaunch(b, prog)
	g := BuildDepGraph(k)
	slice := BuildControlSlice(k, g)
	ctx := ThreadCtx{NTid: int64(l.BlockX), NCtaID: int64(l.GridX)}
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ExecuteThread(k, slice, l.Params, ctx, ExecOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		ck, err := Compile(k, slice, ExecOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ck.Execute(k, l.Params, ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBatchedExec measures the warp-style batched engine on the
// heaviest resnet50v2 launch across lane populations, against a serial
// baseline issuing the same threads through single-lane Execute calls.
// Custom metrics report per-thread cost, aggregate thread throughput
// and the realized batch occupancy (lanes per control-flow segment).
// All subbenches reuse one warmed arena, so steady-state iterations
// allocate nothing — the committed TestZeroAlloc pins that.
func BenchmarkBatchedExec(b *testing.B) {
	prog := compileZoo(b, "resnet50v2")
	k, l := heaviestLaunch(b, prog)
	slice := BuildControlSlice(k, BuildDepGraph(k))
	ck, err := Compile(k, slice, ExecOptions{})
	if err != nil {
		b.Fatal(err)
	}
	mkCtxs := func(lanes int) []ThreadCtx {
		ctxs := make([]ThreadCtx, lanes)
		for i := range ctxs {
			ctxs[i] = ThreadCtx{
				Tid:    int64(i % l.BlockX),
				CtaID:  int64((i / l.BlockX) % l.GridX),
				NTid:   int64(l.BlockX),
				NCtaID: int64(l.GridX),
			}
		}
		return ctxs
	}
	for _, lanes := range []int{1, 2, 8, 32, 256} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			ctxs := mkCtxs(lanes)
			out := make([]LaneResult, lanes)
			ar := newExecArena()
			ck.executeBatch(k, l.Params, ctxs, nil, ar, out)
			ar.reset()
			for i := range out {
				if out[i].Err != nil {
					b.Fatal(out[i].Err)
				}
			}
			before := BatchStats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ck.executeBatch(k, l.Params, ctxs, nil, ar, out)
				ar.reset()
			}
			b.StopTimer()
			d := statsDelta(before, BatchStats())
			threads := float64(b.N) * float64(lanes)
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/threads, "ns/thread")
			b.ReportMetric(threads/b.Elapsed().Seconds(), "threads/s")
			if d.Segments > 0 {
				b.ReportMetric(float64(d.LaneSegments)/float64(d.Segments), "lanes/segment")
			}
		})
	}
	// The serial baseline issues the same 32 threads one Execute call at
	// a time: the unbatched aggregate throughput the batch is judged by.
	b.Run("serial=32", func(b *testing.B) {
		ctxs := mkCtxs(32)
		ar := newExecArena()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, ctx := range ctxs {
				if _, err := ck.execute(k, l.Params, ctx, nil, ar); err != nil {
					b.Fatal(err)
				}
				ar.reset()
			}
		}
		b.StopTimer()
		threads := float64(b.N) * 32
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/threads, "ns/thread")
		b.ReportMetric(threads/b.Elapsed().Seconds(), "threads/s")
	})
}

// BenchmarkSliceVsFull isolates the interpreter cost difference between
// control-slice execution and full interpretation.
func BenchmarkSliceVsFull(b *testing.B) {
	prog := compileZoo(b, "resnet50v2")
	b.Run("sliced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := AnalyzeProgram(prog, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := AnalyzeProgram(prog, Options{Exec: ExecOptions{Full: true}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBuildGraphs measures CFG + dependency-graph + slice
// construction without execution.
func BenchmarkBuildGraphs(b *testing.B) {
	prog := compileZoo(b, "inceptionv3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range prog.Module.Kernels {
			if _, err := BuildCFG(k); err != nil {
				b.Fatal(err)
			}
			g := BuildDepGraph(k)
			_ = BuildControlSlice(k, g)
		}
	}
}
