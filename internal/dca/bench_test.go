package dca

import (
	"testing"

	"cnnperf/internal/ptxgen"
	"cnnperf/internal/zoo"
)

func compileZoo(b *testing.B, name string) *ptxgen.Program {
	b.Helper()
	m := zoo.MustBuild(name)
	prog, err := ptxgen.Compile(m, ptxgen.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// BenchmarkAnalyzeProgram measures the full dynamic code analysis (the
// paper's t_dca) per model.
func BenchmarkAnalyzeProgram(b *testing.B) {
	for _, name := range []string{"alexnet", "mobilenetv2", "resnet50v2", "inceptionv3"} {
		name := name
		b.Run(name, func(b *testing.B) {
			prog := compileZoo(b, name)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := AnalyzeProgram(prog, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSliceVsFull isolates the interpreter cost difference between
// control-slice execution and full interpretation.
func BenchmarkSliceVsFull(b *testing.B) {
	prog := compileZoo(b, "resnet50v2")
	b.Run("sliced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := AnalyzeProgram(prog, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := AnalyzeProgram(prog, Options{Exec: ExecOptions{Full: true}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBuildGraphs measures CFG + dependency-graph + slice
// construction without execution.
func BenchmarkBuildGraphs(b *testing.B) {
	prog := compileZoo(b, "inceptionv3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range prog.Module.Kernels {
			if _, err := BuildCFG(k); err != nil {
				b.Fatal(err)
			}
			g := BuildDepGraph(k)
			_ = BuildControlSlice(k, g)
		}
	}
}
