package dca

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"cnnperf/internal/ptx"
)

// Execute runs one thread over the compiled bytecode and returns exactly
// what ExecuteThread would: same counts, same success/error behavior.
// The kernel is needed only for parameter binding and error text — the
// compiled code may be shared by several content-identical kernels, so
// k supplies the identity of the one actually launched. The frame is a
// flat int64 array; the steady-state loop performs no allocations.
func (c *CompiledKernel) Execute(k *ptx.Kernel, params map[string]int64, ctx ThreadCtx) (ExecResult, error) {
	return c.execute(k, params, ctx, nil, nil)
}

// evalRef resolves one operand reference against a single-lane frame;
// ok=false routes to evalErr for message construction off the hot path.
// A plain function (not a closure) so the steady-state loop captures
// nothing on the heap.
func evalRef(r ref, frame []int64, written []bool, sreg *[4]int64) (int64, bool) {
	switch r.kind {
	case refImm:
		return r.val, true
	case refSlot:
		if !written[r.val] {
			return 0, false
		}
		return frame[r.val], true
	case refTid:
		return sreg[0], true
	case refNTid:
		return sreg[1], true
	case refCtaID:
		return sreg[2], true
	case refNCtaID:
		return sreg[3], true
	}
	return 0, false
}

// execute is Execute with an optional per-instruction visit profile and
// an optional caller-owned arena. When visits is non-nil (length
// len(code)), visits[pc] accumulates how many times pc executed,
// including counted-but-not-interpreted stretches and closed-form loop
// iterations. When ar is non-nil the frame and parameter buffers are
// carved from it, making warm steady-state execution allocation-free;
// a nil ar falls back to the garbage-collected heap.
func (c *CompiledKernel) execute(k *ptx.Kernel, params map[string]int64, ctx ThreadCtx, visits []int64, ar *execArena) (res ExecResult, err error) {
	var frame []int64
	var written, pok []bool
	var pvals []int64
	if ar != nil {
		frame = ar.i64.takeRaw(c.slots) // reads gated by written
		written = ar.bit.take(c.slots)
		pvals = ar.i64.takeRaw(len(k.Params)) // fully bound below
		pok = ar.bit.takeRaw(len(k.Params))
	} else {
		frame = make([]int64, c.slots)
		written = make([]bool, c.slots)
		pvals = make([]int64, len(k.Params))
		pok = make([]bool, len(k.Params))
	}
	// Declared parameters bind by position so cached compiled kernels
	// work across renamed-but-identical kernels.
	for i, p := range k.Params {
		v, ok := params[p.Name]
		pvals[i], pok[i] = v, ok
	}
	sreg := [4]int64{ctx.Tid, ctx.NTid, ctx.CtaID, ctx.NCtaID}
	eval := func(r ref) (int64, bool) { return evalRef(r, frame, written, &sreg) }
	n := int32(len(c.code))
	maxSteps := c.maxSteps
	pc := int32(0)
	for pc < n {
		if res.Steps >= maxSteps {
			return res, stepLimitErr(k, maxSteps)
		}
		// Closed-form loop accounting: when the pc heads a countable
		// affine loop whose entry state is resolvable, charge all n
		// iterations at once and jump past the loop.
		if al := c.loops[pc]; al != nil {
			done, lerr := c.runLoop(al, k, frame, written, &sreg, &res, visits)
			if lerr != nil {
				return res, lerr
			}
			if done {
				pc = al.end
				continue
			}
			// Unresolvable entry state: interpret the loop normally.
		}
		// Skip-run: a contiguous counted-but-not-interpreted stretch is
		// accounted in O(classes) via the prefix sums.
		if !c.interp[pc] {
			q := c.nextInterp[pc]
			run := int64(q - pc)
			if res.Steps+run > maxSteps {
				return res, stepLimitErr(k, maxSteps)
			}
			res.Steps += run
			base, top := int(pc)*ptx.NumClasses, int(q)*ptx.NumClasses
			for cl := 0; cl < ptx.NumClasses; cl++ {
				res.PerClass[cl] += c.classPrefix[top+cl] - c.classPrefix[base+cl]
			}
			if visits != nil {
				for i := pc; i < q; i++ {
					visits[i]++
				}
			}
			pc = q
			continue
		}
		ci := &c.code[pc]
		res.Steps++
		res.PerClass[c.class[pc]]++
		res.Interpreted++
		if visits != nil {
			visits[pc]++
		}

		taken := true
		if ci.pred >= 0 {
			if !written[ci.pred] {
				return res, fmt.Errorf("dca: kernel %q pc %d: predicate %s undefined", k.Name, pc, c.regNames[ci.pred])
			}
			taken = frame[ci.pred] != 0
			if ci.predNeg {
				taken = !taken
			}
		}
		switch ci.op {
		case copBra:
			if taken {
				if ci.target < 0 {
					// Mirror the reference's unresolved-label error.
					_, terr := k.Target(ci.name)
					return res, fmt.Errorf("dca: %w", terr)
				}
				if ci.back {
					res.BackBranches++
				}
				pc = ci.target
			} else {
				pc++
			}
			continue
		case copExit:
			// Like the reference: a predicated ret terminates the
			// thread whether or not the guard holds.
			return res, nil
		}
		if !taken {
			pc++
			continue
		}
		var a, b, v int64
		var ok bool
		switch ci.op {
		case copMov, copNeg, copNot, copAbs:
			if v, ok = eval(ci.a); !ok {
				return res, c.evalErr(k, ci.a)
			}
			switch ci.op {
			case copNeg:
				v = -v
			case copNot:
				v = ^v
			case copAbs:
				if v < 0 {
					v = -v
				}
			}
			frame[ci.dst], written[ci.dst] = v, true
		case copLdParam:
			if ci.target >= 0 {
				// Bytecode may come off disk: the position was validated
				// structurally but only the launched kernel fixes the
				// parameter count, so bound it here.
				if int(ci.target) >= len(pok) {
					return res, fmt.Errorf("dca: kernel %q pc %d: parameter position %d of %d", k.Name, pc, ci.target, len(pok))
				}
				if !pok[ci.target] {
					return res, fmt.Errorf("dca: kernel %q pc %d: no value for parameter %q", k.Name, pc, k.Params[ci.target].Name)
				}
				v = pvals[ci.target]
			} else {
				if v, ok = params[ci.name]; !ok {
					return res, fmt.Errorf("dca: kernel %q pc %d: no value for parameter %q", k.Name, pc, ci.name)
				}
			}
			frame[ci.dst], written[ci.dst] = v, true
		case copLdData:
			if !c.full {
				return res, fmt.Errorf("dca: kernel %q pc %d: data load %q inside control slice", k.Name, pc, k.Body[pc].Opcode)
			}
			frame[ci.dst], written[ci.dst] = 0, true
		case copNop:
			// Stores and barriers: no register effects.
		case copAdd, copSub, copMul, copDiv, copRem, copMin, copMax, copAnd, copOr, copXor, copShl, copShr:
			if a, ok = eval(ci.a); !ok {
				return res, c.evalErr(k, ci.a)
			}
			if b, ok = eval(ci.b); !ok {
				return res, c.evalErr(k, ci.b)
			}
			switch ci.op {
			case copAdd:
				v = a + b
			case copSub:
				v = a - b
			case copMul:
				v = a * b
			case copDiv:
				if b == 0 {
					return res, fmt.Errorf("dca: kernel %q pc %d: division by zero", k.Name, pc)
				}
				v = a / b
			case copRem:
				if b == 0 {
					return res, fmt.Errorf("dca: kernel %q pc %d: remainder by zero", k.Name, pc)
				}
				v = a % b
			case copMin:
				v = b
				if a < b {
					v = a
				}
			case copMax:
				v = b
				if a > b {
					v = a
				}
			case copAnd:
				v = a & b
			case copOr:
				v = a | b
			case copXor:
				v = a ^ b
			case copShl:
				v = a << uint(b&63)
			case copShr:
				v = int64(uint64(a) >> uint(b&63))
			}
			frame[ci.dst], written[ci.dst] = v, true
		case copMad:
			if a, ok = eval(ci.a); !ok {
				return res, c.evalErr(k, ci.a)
			}
			if b, ok = eval(ci.b); !ok {
				return res, c.evalErr(k, ci.b)
			}
			if v, ok = eval(ci.c); !ok {
				return res, c.evalErr(k, ci.c)
			}
			frame[ci.dst], written[ci.dst] = a*b+v, true
		case copSetp:
			if a, ok = eval(ci.a); !ok {
				return res, c.evalErr(k, ci.a)
			}
			if b, ok = eval(ci.b); !ok {
				return res, c.evalErr(k, ci.b)
			}
			var r bool
			switch ci.cmp {
			case cmpLT:
				r = a < b
			case cmpLE:
				r = a <= b
			case cmpGT:
				r = a > b
			case cmpGE:
				r = a >= b
			case cmpEQ:
				r = a == b
			case cmpNE:
				r = a != b
			default:
				return res, fmt.Errorf("dca: kernel %q pc %d: unknown comparison %q", k.Name, pc, ci.name)
			}
			v = 0
			if r {
				v = 1
			}
			frame[ci.dst], written[ci.dst] = v, true
		case copSelp:
			if a, ok = eval(ci.a); !ok {
				return res, c.evalErr(k, ci.a)
			}
			if b, ok = eval(ci.b); !ok {
				return res, c.evalErr(k, ci.b)
			}
			if v, ok = eval(ci.c); !ok {
				return res, c.evalErr(k, ci.c)
			}
			if v != 0 {
				frame[ci.dst], written[ci.dst] = a, true
			} else {
				frame[ci.dst], written[ci.dst] = b, true
			}
		case copSfu:
			frame[ci.dst], written[ci.dst] = 0, true
		default: // copBad
			return res, errors.New(strings.Replace(ci.name, kernelPlaceholder, strconv.Quote(k.Name), 1))
		}
		pc++
	}
	return res, nil
}

// runLoop applies the closed-form trip count of an affine loop: n
// iterations are charged to every counter in O(1) and the machine state
// is advanced to the loop exit. done=false (with nil error) means the
// entry state cannot be resolved — the caller interprets the loop
// normally, which reproduces the reference behavior including its
// errors and MaxSteps abort.
func (c *CompiledKernel) runLoop(al *affineLoop, k *ptx.Kernel, frame []int64, written []bool, sreg *[4]int64, res *ExecResult, visits []int64) (done bool, err error) {
	if !written[al.ind] {
		return false, nil // slow path fails at the add, as the reference does
	}
	v0 := frame[al.ind]
	var bound int64
	switch al.bound.kind {
	case refImm:
		bound = al.bound.val
	case refSlot:
		if !written[al.bound.val] {
			return false, nil
		}
		bound = frame[al.bound.val]
	case refTid:
		bound = sreg[0]
	case refNTid:
		bound = sreg[1]
	case refCtaID:
		bound = sreg[2]
	case refNCtaID:
		bound = sreg[3]
	default:
		return false, nil
	}
	n, ok := al.trips(v0, bound)
	if !ok {
		return false, nil
	}
	// The reference aborts as soon as Steps reaches MaxSteps with an
	// instruction still pending; n iterations of perIterSteps crossing
	// the limit means it would abort inside this loop.
	remaining := c.maxSteps - res.Steps
	if n > remaining/al.perIterSteps {
		return false, stepLimitErr(k, c.maxSteps)
	}
	res.Steps += n * al.perIterSteps
	res.Interpreted += n * al.perIterInterp
	res.BackBranches += n - 1
	for cl := 0; cl < ptx.NumClasses; cl++ {
		res.PerClass[cl] += n * al.hist[cl]
	}
	if visits != nil {
		for i := al.start; i < al.end; i++ {
			visits[i] += n
		}
	}
	frame[al.ind] = v0 + n*al.step
	exitPred := int64(0)
	if al.predNeg {
		exitPred = 1
	}
	frame[al.pred], written[al.pred] = exitPred, true
	return true, nil
}

// evalErr reconstructs the reference interpreter's operand-resolution
// error for a failed ref.
func (c *CompiledKernel) evalErr(k *ptx.Kernel, r ref) error {
	switch r.kind {
	case refSlot:
		return fmt.Errorf("dca: register %s read before write", c.regNames[r.val])
	case refBad:
		op := c.badNames[r.val]
		if strings.HasPrefix(op, "0f") || strings.HasPrefix(op, "0F") {
			return fmt.Errorf("dca: bad float immediate %q", op)
		}
		return fmt.Errorf("dca: cannot evaluate operand %q", op)
	}
	return fmt.Errorf("dca: kernel %q: internal operand error", k.Name)
}

// stepLimitErr is the shared runaway-execution abort.
func stepLimitErr(k *ptx.Kernel, maxSteps int64) error {
	return fmt.Errorf("dca: kernel %q exceeded %d steps (infinite loop?)", k.Name, maxSteps)
}
