package dca

import (
	"cnnperf/internal/ptx"
)

// DepGraph is the data-dependency graph G = {V, E} of one kernel: node i
// is instruction i, and Deps[i] lists the instructions whose results
// instruction i may consume (conservative: every definition of each
// source register, in any block).
type DepGraph struct {
	// Deps[i] are the indices instruction i depends on.
	Deps [][]int
	// DefsOf maps a register name to the instructions defining it.
	DefsOf map[string][]int
}

// Edges returns the total number of dependency edges |E|.
func (g *DepGraph) Edges() int {
	n := 0
	for _, d := range g.Deps {
		n += len(d)
	}
	return n
}

// regOperand extracts the register name from an operand, handling memory
// references "[%rd1+4]" and plain registers "%r3". Immediates, labels,
// parameter names and special read-only registers return "". The
// extraction is shared with the static analyses via ptx.RegOperand.
func regOperand(op string) string { return ptx.RegOperand(op) }

// BuildDepGraph constructs the dependency graph of a kernel body.
func BuildDepGraph(k *ptx.Kernel) *DepGraph {
	g := &DepGraph{
		Deps:   make([][]int, len(k.Body)),
		DefsOf: make(map[string][]int),
	}
	for i, in := range k.Body {
		if d := in.Dest(); d != "" {
			g.DefsOf[d] = append(g.DefsOf[d], i)
		}
		// FMA-style opcodes also read their destination; and guarded
		// instructions depend on their predicate's definitions.
	}
	for i, in := range k.Body {
		seen := make(map[int]bool)
		addDefs := func(reg string) {
			for _, d := range g.DefsOf[reg] {
				if d != i && !seen[d] {
					seen[d] = true
					g.Deps[i] = append(g.Deps[i], d)
				}
			}
		}
		for _, src := range in.Sources() {
			if r := regOperand(src); r != "" {
				addDefs(r)
			}
		}
		// Accumulator-style reads of the destination (fma acc,..,acc is
		// covered by Sources; add.s32 r,r,1 likewise). Predicates:
		if in.Pred != "" {
			addDefs(in.Pred)
		}
	}
	return g
}
