package dca

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"cnnperf/internal/ptx"
)

// The batched engine executes many representative threads of one kernel
// launch at once, warp-style: lanes that share a control-flow class —
// identical branch outcomes and identical closed-form loop keys — run
// under a single fetch-decode, with one shared ExecResult per batch.
// Register slots the compiler proves uniform across lanes (computeLayout)
// live in a small per-batch frame and execute once per batch; varying
// slots live in struct-of-arrays lane arrays indexed [loc*lanes + lane].
// A divergent branch or an unequal loop trip count splits the batch:
// the continuing group keeps the batch state, the deferred group is
// pushed onto a worklist with a copy of the uniform frame and counters.
// Every lane's result and error are, instruction for instruction,
// exactly what the single-lane engines produce — the differential and
// property tests enforce byte-level agreement.

// LaneResult is one lane's outcome of a batched execution: the same
// (ExecResult, error) pair Execute would return for that lane's
// ThreadCtx.
type LaneResult struct {
	Res ExecResult
	Err error
}

// ExecuteBatch runs one thread per ThreadCtx over the compiled bytecode
// and returns per-lane results identical to len(ctxs) Execute calls.
// Lanes are grouped by (NTid, NCtaID) up front and regrouped on control
// divergence, so threads sharing a control-flow class pay for one
// fetch-decode between them. The call allocates a fresh arena; hot
// callers thread a reusable arena through executeBatch instead.
func (c *CompiledKernel) ExecuteBatch(k *ptx.Kernel, params map[string]int64, ctxs []ThreadCtx) []LaneResult {
	out := make([]LaneResult, len(ctxs))
	c.executeBatch(k, params, ctxs, nil, newExecArena(), out)
	return out
}

// batch is one control-flow class in flight: the lanes still in it, the
// shared program counter and counters, and the per-batch uniform
// register frame. Splits copy the uniform state; varying state lives in
// global per-lane arrays and never moves.
type batch struct {
	lanes    []int32
	pc       int32
	res      ExecResult
	uframe   []int64
	uwritten []bool
}

// batchExec is the transient state of one executeBatch call. All slices
// are carved from the caller's arena; the struct itself lives on the
// stack.
type batchExec struct {
	c      *CompiledKernel
	k      *ptx.Kernel
	params map[string]int64
	ctxs   []ThreadCtx
	pvals  []int64
	pok    []bool
	nl     int
	// vframe/vwritten are the struct-of-arrays varying-slot storage,
	// indexed [slotLoc*nl + lane].
	vframe   []int64
	vwritten []bool
	visits   [][]int64
	hasVis   bool
	out      []LaneResult
	ar       *execArena
	scratch  []int32
	keys     []int64
	stack    []batch
	sp       int
}

// executeBatch is ExecuteBatch over a caller-owned arena, optional
// per-lane visit profiles (visits[lane] as in execute), and a
// caller-owned result slice. After arena warm-up the call performs no
// heap allocations on the success path.
func (c *CompiledKernel) executeBatch(k *ptx.Kernel, params map[string]int64, ctxs []ThreadCtx, visits [][]int64, ar *execArena, out []LaneResult) {
	nl := len(ctxs)
	if nl == 0 {
		return
	}
	observeBatch(nl)
	bx := batchExec{
		c: c, k: k, params: params, ctxs: ctxs,
		nl:       nl,
		vframe:   ar.i64.takeRaw(c.nvslots * nl), // reads gated by vwritten
		vwritten: ar.bit.take(c.nvslots * nl),
		visits:   visits,
		out:      out,
		ar:       ar,
		scratch:  ar.i32.takeRaw(nl),
		keys:     ar.i64.takeRaw(nl),
		stack:    ar.bat.takeRaw(nl),
	}
	for _, v := range visits {
		if v != nil {
			bx.hasVis = true
			break
		}
	}
	// Declared parameters bind by position so cached compiled kernels
	// work across renamed-but-identical kernels. Both arrays are fully
	// written here, so neither needs a zeroed take.
	bx.pvals = ar.i64.takeRaw(len(k.Params))
	bx.pok = ar.bit.takeRaw(len(k.Params))
	for i, p := range k.Params {
		v, ok := params[p.Name]
		bx.pvals[i], bx.pok[i] = v, ok
	}
	// Initial batching: lanes agreeing on (NTid, NCtaID) share a batch,
	// making %ntid.x/%nctaid.x uniform within every batch. Grouping is
	// stable in lane order; analysis launches pass lanes that agree, so
	// the common case is one batch.
	laneStore := bx.ar.i32.takeRaw(nl)
	grouped := bx.ar.bit.take(nl)
	pos := 0
	for i := 0; i < nl; i++ {
		if grouped[i] {
			continue
		}
		start := pos
		for j := i; j < nl; j++ {
			if !grouped[j] && ctxs[j].NTid == ctxs[i].NTid && ctxs[j].NCtaID == ctxs[i].NCtaID {
				grouped[j] = true
				laneStore[pos] = int32(j)
				pos++
			}
		}
		bx.stack[bx.sp] = batch{
			lanes:    laneStore[start:pos],
			uframe:   ar.i64.takeRaw(c.nuslots), // reads gated by uwritten
			uwritten: ar.bit.take(c.nuslots),
		}
		bx.sp++
	}
	for bx.sp > 0 {
		bx.sp--
		b := bx.stack[bx.sp]
		bx.run(&b)
	}
}

// push defers a batch to the worklist. Capacity never overflows: live
// batches hold disjoint non-empty lane sets, so at most nl exist.
func (bx *batchExec) push(b batch) {
	bx.stack[bx.sp] = b
	bx.sp++
}

// finishAll ends every remaining lane of the batch with the shared
// result and error (nil for a clean exit). Field-at-a-time assignment
// keeps the compiler from zeroing and copying a LaneResult temporary
// per lane — with its embedded ClassHist the struct is large enough
// that the redundant duffzero shows up in profiles.
func (bx *batchExec) finishAll(b *batch, err error) {
	out := bx.out
	for _, ln := range b.lanes {
		out[ln].Res = b.res
		out[ln].Err = err
	}
	b.lanes = b.lanes[:0]
}

// predUndefErr mirrors the single-lane engines' undefined-guard error.
func (bx *batchExec) predUndefErr(pc, slot int32) error {
	return fmt.Errorf("dca: kernel %q pc %d: predicate %s undefined", bx.k.Name, pc, bx.c.regNames[slot])
}

// readSlot resolves a register slot for one lane, routing uniform slots
// to the batch frame and varying slots to the lane arrays.
func (bx *batchExec) readSlot(b *batch, slot, lane int32) (int64, bool) {
	loc := bx.c.slotLoc[slot]
	if bx.c.varying[slot] {
		i := int(loc)*bx.nl + int(lane)
		if !bx.vwritten[i] {
			return 0, false
		}
		return bx.vframe[i], true
	}
	if !b.uwritten[loc] {
		return 0, false
	}
	return b.uframe[loc], true
}

// storeSlot writes a register slot for one lane.
func (bx *batchExec) storeSlot(b *batch, slot, lane int32, v int64) {
	loc := bx.c.slotLoc[slot]
	if bx.c.varying[slot] {
		i := int(loc)*bx.nl + int(lane)
		bx.vframe[i], bx.vwritten[i] = v, true
		return
	}
	b.uframe[loc], b.uwritten[loc] = v, true
}

// evalL resolves one operand reference for one lane.
func (bx *batchExec) evalL(b *batch, r ref, lane int32) (int64, bool) {
	switch r.kind {
	case refImm:
		return r.val, true
	case refSlot:
		return bx.readSlot(b, int32(r.val), lane)
	case refTid:
		return bx.ctxs[lane].Tid, true
	case refNTid:
		return bx.ctxs[lane].NTid, true
	case refCtaID:
		return bx.ctxs[lane].CtaID, true
	case refNCtaID:
		return bx.ctxs[lane].NCtaID, true
	}
	return 0, false
}

// evalU resolves one operand reference of a scalar instruction at the
// batch level. computeLayout guarantees scalar instructions carry no
// per-lane sources, so reading lane 0's special registers is exact.
func (bx *batchExec) evalU(b *batch, r ref) (int64, bool) {
	if r.kind == refSlot {
		loc := bx.c.slotLoc[r.val]
		if !b.uwritten[loc] {
			return 0, false
		}
		return b.uframe[loc], true
	}
	return bx.evalL(b, r, b.lanes[0])
}

// countVisits charges one executed pc range [pc, q) to every profiled
// lane of the batch, n times.
func (bx *batchExec) countVisits(b *batch, pc, q int32, n int64) {
	for _, ln := range b.lanes {
		if v := bx.visits[ln]; v != nil {
			for i := pc; i < q; i++ {
				v[i] += n
			}
		}
	}
}

// run executes one batch to completion, splitting on divergence; split
// remainders go to the worklist and run later.
func (bx *batchExec) run(b *batch) {
	c := bx.c
	n := int32(len(c.code))
	batchSegments.Add(1)
	batchLaneSegs.Add(int64(len(b.lanes)))
	for {
		if len(b.lanes) == 0 {
			return
		}
		pc := b.pc
		if pc >= n {
			bx.finishAll(b, nil)
			return
		}
		if b.res.Steps >= c.maxSteps {
			bx.finishAll(b, stepLimitErr(bx.k, c.maxSteps))
			return
		}
		// Closed-form loop accounting, batched: lanes agreeing on the
		// loop's outcome key — the trip count, "iterate", or "limit" —
		// stay together; disagreeing lanes split off and re-enter here.
		if al := c.loops[pc]; al != nil {
			switch bx.runLoopBatch(b, al) {
			case loopApplied:
				b.pc = al.end
				continue
			case loopSplit:
				continue // b narrowed to one key group; re-evaluate
			case loopFinished:
				return
			}
			// loopIterate: interpret the loop normally.
		}
		// Skip-run: one O(classes) charge per batch, however many lanes.
		if !c.interp[pc] {
			q := c.nextInterp[pc]
			run := int64(q - pc)
			if b.res.Steps+run > c.maxSteps {
				bx.finishAll(b, stepLimitErr(bx.k, c.maxSteps))
				return
			}
			b.res.Steps += run
			base, top := int(pc)*ptx.NumClasses, int(q)*ptx.NumClasses
			for cl := 0; cl < ptx.NumClasses; cl++ {
				b.res.PerClass[cl] += c.classPrefix[top+cl] - c.classPrefix[base+cl]
			}
			if bx.hasVis {
				bx.countVisits(b, pc, q, 1)
			}
			b.pc = q
			continue
		}
		ci := &c.code[pc]
		b.res.Steps++
		b.res.PerClass[c.class[pc]]++
		b.res.Interpreted++
		if bx.hasVis {
			bx.countVisits(b, pc, pc+1, 1)
		}
		if c.scalar[pc] {
			// Uniform guard: one evaluation decides every lane.
			taken := true
			if ci.pred >= 0 {
				loc := c.slotLoc[ci.pred]
				if !b.uwritten[loc] {
					bx.finishAll(b, bx.predUndefErr(pc, ci.pred))
					return
				}
				taken = b.uframe[loc] != 0
				if ci.predNeg {
					taken = !taken
				}
			}
			switch ci.op {
			case copBra:
				if taken {
					if ci.target < 0 {
						_, terr := bx.k.Target(ci.name)
						bx.finishAll(b, fmt.Errorf("dca: %w", terr))
						return
					}
					if ci.back {
						b.res.BackBranches++
					}
					b.pc = ci.target
				} else {
					b.pc++
				}
				continue
			case copExit:
				// Like the single-lane engines: a predicated ret
				// terminates the thread whether or not the guard holds.
				bx.finishAll(b, nil)
				return
			}
			if taken {
				if err := bx.scalarStep(b, ci, pc); err != nil {
					bx.finishAll(b, err)
					return
				}
			}
			b.pc++
			continue
		}
		// Varying guard or destination: per-lane execution. Branches
		// partition the batch; other opcodes run lane by lane, and a
		// faulting lane leaves the batch with the shared counters.
		switch ci.op {
		case copBra:
			bx.vectorBranch(b, ci, pc)
			if len(b.lanes) == 0 {
				return
			}
			continue
		case copExit:
			bx.vectorExit(b, ci, pc)
			return
		}
		bx.vectorStep(b, ci, pc)
		if len(b.lanes) == 0 {
			return
		}
		b.pc++
	}
}

// scalarStep executes one uniform non-branch instruction once for the
// whole batch, writing the per-batch uniform frame. Any error is shared
// by every lane — exactly what len(lanes) single-lane runs would each
// report.
func (bx *batchExec) scalarStep(b *batch, ci *cinst, pc int32) error {
	c := bx.c
	var a, bv, v int64
	var ok bool
	switch ci.op {
	case copMov, copNeg, copNot, copAbs:
		if v, ok = bx.evalU(b, ci.a); !ok {
			return c.evalErr(bx.k, ci.a)
		}
		switch ci.op {
		case copNeg:
			v = -v
		case copNot:
			v = ^v
		case copAbs:
			if v < 0 {
				v = -v
			}
		}
	case copLdParam:
		if ci.target >= 0 {
			if int(ci.target) >= len(bx.pok) {
				return fmt.Errorf("dca: kernel %q pc %d: parameter position %d of %d", bx.k.Name, pc, ci.target, len(bx.pok))
			}
			if !bx.pok[ci.target] {
				return fmt.Errorf("dca: kernel %q pc %d: no value for parameter %q", bx.k.Name, pc, bx.k.Params[ci.target].Name)
			}
			v = bx.pvals[ci.target]
		} else if v, ok = bx.params[ci.name]; !ok {
			return fmt.Errorf("dca: kernel %q pc %d: no value for parameter %q", bx.k.Name, pc, ci.name)
		}
	case copLdData:
		if !c.full {
			return fmt.Errorf("dca: kernel %q pc %d: data load %q inside control slice", bx.k.Name, pc, bx.k.Body[pc].Opcode)
		}
		v = 0
	case copNop:
		return nil
	case copAdd, copSub, copMul, copDiv, copRem, copMin, copMax, copAnd, copOr, copXor, copShl, copShr:
		if a, ok = bx.evalU(b, ci.a); !ok {
			return c.evalErr(bx.k, ci.a)
		}
		if bv, ok = bx.evalU(b, ci.b); !ok {
			return c.evalErr(bx.k, ci.b)
		}
		var err error
		if v, err = binop(bx.k, pc, ci.op, a, bv); err != nil {
			return err
		}
	case copMad:
		if a, ok = bx.evalU(b, ci.a); !ok {
			return c.evalErr(bx.k, ci.a)
		}
		if bv, ok = bx.evalU(b, ci.b); !ok {
			return c.evalErr(bx.k, ci.b)
		}
		if v, ok = bx.evalU(b, ci.c); !ok {
			return c.evalErr(bx.k, ci.c)
		}
		v = a*bv + v
	case copSetp:
		if a, ok = bx.evalU(b, ci.a); !ok {
			return c.evalErr(bx.k, ci.a)
		}
		if bv, ok = bx.evalU(b, ci.b); !ok {
			return c.evalErr(bx.k, ci.b)
		}
		var err error
		if v, err = setp(bx.k, pc, ci, a, bv); err != nil {
			return err
		}
	case copSelp:
		if a, ok = bx.evalU(b, ci.a); !ok {
			return c.evalErr(bx.k, ci.a)
		}
		if bv, ok = bx.evalU(b, ci.b); !ok {
			return c.evalErr(bx.k, ci.b)
		}
		if v, ok = bx.evalU(b, ci.c); !ok {
			return c.evalErr(bx.k, ci.c)
		}
		if v != 0 {
			v = a
		} else {
			v = bv
		}
	case copSfu:
		v = 0
	default: // copBad
		return errors.New(strings.Replace(ci.name, kernelPlaceholder, strconv.Quote(bx.k.Name), 1))
	}
	loc := c.slotLoc[ci.dst]
	b.uframe[loc], b.uwritten[loc] = v, true
	return nil
}

// vectorStep executes one varying non-branch instruction lane by lane.
// Faulting lanes are recorded and compacted out of the batch in place.
func (bx *batchExec) vectorStep(b *batch, ci *cinst, pc int32) {
	lanes := b.lanes
	w := 0
	for _, ln := range lanes {
		if err := bx.laneStep(b, ci, pc, ln); err != nil {
			bx.out[ln].Res = b.res
			bx.out[ln].Err = err
			continue
		}
		lanes[w] = ln
		w++
	}
	b.lanes = lanes[:w]
}

// laneStep executes one varying instruction for one lane, mirroring the
// single-lane engine's guard-then-operands evaluation order and error
// text case for case.
func (bx *batchExec) laneStep(b *batch, ci *cinst, pc, ln int32) error {
	c := bx.c
	if ci.pred >= 0 {
		pv, ok := bx.readSlot(b, ci.pred, ln)
		if !ok {
			return bx.predUndefErr(pc, ci.pred)
		}
		taken := pv != 0
		if ci.predNeg {
			taken = !taken
		}
		if !taken {
			return nil
		}
	}
	var a, bv, v int64
	var ok bool
	switch ci.op {
	case copMov, copNeg, copNot, copAbs:
		if v, ok = bx.evalL(b, ci.a, ln); !ok {
			return c.evalErr(bx.k, ci.a)
		}
		switch ci.op {
		case copNeg:
			v = -v
		case copNot:
			v = ^v
		case copAbs:
			if v < 0 {
				v = -v
			}
		}
	case copLdParam:
		if ci.target >= 0 {
			if int(ci.target) >= len(bx.pok) {
				return fmt.Errorf("dca: kernel %q pc %d: parameter position %d of %d", bx.k.Name, pc, ci.target, len(bx.pok))
			}
			if !bx.pok[ci.target] {
				return fmt.Errorf("dca: kernel %q pc %d: no value for parameter %q", bx.k.Name, pc, bx.k.Params[ci.target].Name)
			}
			v = bx.pvals[ci.target]
		} else if v, ok = bx.params[ci.name]; !ok {
			return fmt.Errorf("dca: kernel %q pc %d: no value for parameter %q", bx.k.Name, pc, ci.name)
		}
	case copLdData:
		if !c.full {
			return fmt.Errorf("dca: kernel %q pc %d: data load %q inside control slice", bx.k.Name, pc, bx.k.Body[pc].Opcode)
		}
		v = 0
	case copNop:
		return nil
	case copAdd, copSub, copMul, copDiv, copRem, copMin, copMax, copAnd, copOr, copXor, copShl, copShr:
		if a, ok = bx.evalL(b, ci.a, ln); !ok {
			return c.evalErr(bx.k, ci.a)
		}
		if bv, ok = bx.evalL(b, ci.b, ln); !ok {
			return c.evalErr(bx.k, ci.b)
		}
		var err error
		if v, err = binop(bx.k, pc, ci.op, a, bv); err != nil {
			return err
		}
	case copMad:
		if a, ok = bx.evalL(b, ci.a, ln); !ok {
			return c.evalErr(bx.k, ci.a)
		}
		if bv, ok = bx.evalL(b, ci.b, ln); !ok {
			return c.evalErr(bx.k, ci.b)
		}
		if v, ok = bx.evalL(b, ci.c, ln); !ok {
			return c.evalErr(bx.k, ci.c)
		}
		v = a*bv + v
	case copSetp:
		if a, ok = bx.evalL(b, ci.a, ln); !ok {
			return c.evalErr(bx.k, ci.a)
		}
		if bv, ok = bx.evalL(b, ci.b, ln); !ok {
			return c.evalErr(bx.k, ci.b)
		}
		var err error
		if v, err = setp(bx.k, pc, ci, a, bv); err != nil {
			return err
		}
	case copSelp:
		if a, ok = bx.evalL(b, ci.a, ln); !ok {
			return c.evalErr(bx.k, ci.a)
		}
		if bv, ok = bx.evalL(b, ci.b, ln); !ok {
			return c.evalErr(bx.k, ci.b)
		}
		if v, ok = bx.evalL(b, ci.c, ln); !ok {
			return c.evalErr(bx.k, ci.c)
		}
		if v != 0 {
			v = a
		} else {
			v = bv
		}
	case copSfu:
		v = 0
	default: // copBad
		return errors.New(strings.Replace(ci.name, kernelPlaceholder, strconv.Quote(bx.k.Name), 1))
	}
	bx.storeSlot(b, ci.dst, ln, v)
	return nil
}

// binop evaluates one arithmetic/logic opcode with the single-lane
// engine's exact division/remainder error text.
func binop(k *ptx.Kernel, pc int32, op copKind, a, b int64) (int64, error) {
	switch op {
	case copAdd:
		return a + b, nil
	case copSub:
		return a - b, nil
	case copMul:
		return a * b, nil
	case copDiv:
		if b == 0 {
			return 0, fmt.Errorf("dca: kernel %q pc %d: division by zero", k.Name, pc)
		}
		return a / b, nil
	case copRem:
		if b == 0 {
			return 0, fmt.Errorf("dca: kernel %q pc %d: remainder by zero", k.Name, pc)
		}
		return a % b, nil
	case copMin:
		if a < b {
			return a, nil
		}
		return b, nil
	case copMax:
		if a > b {
			return a, nil
		}
		return b, nil
	case copAnd:
		return a & b, nil
	case copOr:
		return a | b, nil
	case copXor:
		return a ^ b, nil
	case copShl:
		return a << uint(b&63), nil
	}
	return int64(uint64(a) >> uint(b&63)), nil // copShr
}

// setp evaluates one comparison with the single-lane engine's exact
// unknown-comparison error text.
func setp(k *ptx.Kernel, pc int32, ci *cinst, a, b int64) (int64, error) {
	var r bool
	switch ci.cmp {
	case cmpLT:
		r = a < b
	case cmpLE:
		r = a <= b
	case cmpGT:
		r = a > b
	case cmpGE:
		r = a >= b
	case cmpEQ:
		r = a == b
	case cmpNE:
		r = a != b
	default:
		return 0, fmt.Errorf("dca: kernel %q pc %d: unknown comparison %q", k.Name, pc, ci.name)
	}
	if r {
		return 1, nil
	}
	return 0, nil
}

// vectorBranch partitions the batch on a varying guard. Lanes with an
// unwritten guard fault out; taken lanes continue at the target with
// the batch state, untaken lanes (when both groups are non-empty) defer
// to the worklist at pc+1 with copies of the uniform frame and
// counters. The partition is stable in lane order on both sides.
func (bx *batchExec) vectorBranch(b *batch, ci *cinst, pc int32) {
	c := bx.c
	lanes := b.lanes
	nt, nu := 0, 0
	for _, ln := range lanes {
		pv, ok := bx.readSlot(b, ci.pred, ln)
		if !ok {
			bx.out[ln].Res = b.res
			bx.out[ln].Err = bx.predUndefErr(pc, ci.pred)
			continue
		}
		taken := pv != 0
		if ci.predNeg {
			taken = !taken
		}
		if taken {
			lanes[nt] = ln
			nt++
		} else {
			bx.scratch[nu] = ln
			nu++
		}
	}
	copy(lanes[nt:nt+nu], bx.scratch[:nu])
	if nt > 0 && nu > 0 {
		nb := batch{
			lanes: lanes[nt : nt+nu], pc: pc + 1, res: b.res,
			uframe:   bx.ar.i64.takeRaw(c.nuslots), // fully copied below
			uwritten: bx.ar.bit.takeRaw(c.nuslots),
		}
		copy(nb.uframe, b.uframe)
		copy(nb.uwritten, b.uwritten)
		bx.push(nb)
		batchSplits.Add(1)
	}
	switch {
	case nt > 0:
		b.lanes = lanes[:nt]
		if ci.target < 0 {
			_, terr := bx.k.Target(ci.name)
			bx.finishAll(b, fmt.Errorf("dca: %w", terr))
			return
		}
		if ci.back {
			b.res.BackBranches++
		}
		b.pc = ci.target
	case nu > 0:
		b.lanes = lanes[:nu]
		b.pc = pc + 1
	default:
		b.lanes = lanes[:0]
	}
}

// vectorExit ends every lane at a ret with a varying guard: the guard's
// definedness is checked per lane (the exit itself ignores its value,
// like the single-lane engines).
func (bx *batchExec) vectorExit(b *batch, ci *cinst, pc int32) {
	out := bx.out
	for _, ln := range b.lanes {
		if _, ok := bx.readSlot(b, ci.pred, ln); !ok {
			out[ln].Res = b.res
			out[ln].Err = bx.predUndefErr(pc, ci.pred)
			continue
		}
		out[ln].Res = b.res
		out[ln].Err = nil
	}
	b.lanes = b.lanes[:0]
}

// Closed-form loop outcomes for one batch.
type loopOutcome uint8

const (
	loopIterate  loopOutcome = iota // interpret the loop normally
	loopApplied                     // closed form charged; jump to al.end
	loopSplit                       // batch narrowed to one key group
	loopFinished                    // every lane ended (step limit)
)

// Per-lane loop keys below 1 are sentinels; trip counts are always >= 1.
const (
	loopKeyIterate int64 = -1 // entry state unresolvable: interpret
	loopKeyLimit   int64 = -2 // closed form crosses MaxSteps: abort
)

// loopKey resolves one lane's closed-form outcome: the trip count, or a
// sentinel for "interpret normally" / "step-limit abort" — mirroring
// runLoop's resolution order exactly.
func (bx *batchExec) loopKey(b *batch, al *affineLoop, ln int32) int64 {
	v0, ok := bx.readSlot(b, al.ind, ln)
	if !ok {
		return loopKeyIterate
	}
	var bound int64
	switch al.bound.kind {
	case refImm:
		bound = al.bound.val
	case refSlot:
		if bound, ok = bx.readSlot(b, int32(al.bound.val), ln); !ok {
			return loopKeyIterate
		}
	case refTid:
		bound = bx.ctxs[ln].Tid
	case refNTid:
		bound = bx.ctxs[ln].NTid
	case refCtaID:
		bound = bx.ctxs[ln].CtaID
	case refNCtaID:
		bound = bx.ctxs[ln].NCtaID
	default:
		return loopKeyIterate
	}
	n, ok := al.trips(v0, bound)
	if !ok {
		return loopKeyIterate
	}
	remaining := bx.c.maxSteps - b.res.Steps
	if n > remaining/al.perIterSteps {
		return loopKeyLimit
	}
	return n
}

// runLoopBatch applies a closed-form loop to the batch. Lanes agreeing
// on the loop key are handled together: a shared trip count charges the
// counters once and advances the induction state (per lane when the
// induction slot varies); disagreeing lanes split off by key group.
func (bx *batchExec) runLoopBatch(b *batch, al *affineLoop) loopOutcome {
	c := bx.c
	lanes := b.lanes
	// Fast path: a loop whose entry state is provably uniform has one
	// key for the whole batch — resolve it once.
	uniform := !c.varying[al.ind] &&
		!(al.bound.kind == refTid || al.bound.kind == refCtaID ||
			(al.bound.kind == refSlot && c.varying[al.bound.val]))
	k0 := bx.loopKey(b, al, lanes[0])
	if !uniform {
		// Resolve every lane's key once, caching them for the partition
		// pass below so a split doesn't re-derive trip counts.
		keys := bx.keys
		keys[0] = k0
		same := true
		for i, ln := range lanes[1:] {
			kl := bx.loopKey(b, al, ln)
			keys[i+1] = kl
			if kl != k0 {
				same = false
			}
		}
		if !same {
			// Split off the first key group; the rest re-enters at the
			// same pc and regroups on its own keys.
			w, nu := 0, 0
			for i, ln := range lanes {
				if keys[i] == k0 {
					lanes[w] = ln
					w++
				} else {
					bx.scratch[nu] = ln
					nu++
				}
			}
			copy(lanes[w:w+nu], bx.scratch[:nu])
			nb := batch{
				lanes: lanes[w : w+nu], pc: b.pc, res: b.res,
				uframe:   bx.ar.i64.takeRaw(c.nuslots), // fully copied below
				uwritten: bx.ar.bit.takeRaw(c.nuslots),
			}
			copy(nb.uframe, b.uframe)
			copy(nb.uwritten, b.uwritten)
			bx.push(nb)
			batchSplits.Add(1)
			b.lanes = lanes[:w]
			return loopSplit
		}
	}
	switch k0 {
	case loopKeyIterate:
		return loopIterate
	case loopKeyLimit:
		bx.finishAll(b, stepLimitErr(bx.k, c.maxSteps))
		return loopFinished
	}
	n := k0
	b.res.Steps += n * al.perIterSteps
	b.res.Interpreted += n * al.perIterInterp
	b.res.BackBranches += n - 1
	for cl := 0; cl < ptx.NumClasses; cl++ {
		b.res.PerClass[cl] += n * al.hist[cl]
	}
	if bx.hasVis {
		bx.countVisits(b, al.start, al.end, n)
	}
	if c.varying[al.ind] {
		base := int(c.slotLoc[al.ind]) * bx.nl
		for _, ln := range b.lanes {
			bx.vframe[base+int(ln)] += n * al.step
		}
	} else {
		b.uframe[c.slotLoc[al.ind]] += n * al.step
	}
	exitPred := int64(0)
	if al.predNeg {
		exitPred = 1
	}
	if c.varying[al.pred] {
		base := int(c.slotLoc[al.pred]) * bx.nl
		for _, ln := range b.lanes {
			i := base + int(ln)
			bx.vframe[i], bx.vwritten[i] = exitPred, true
		}
	} else {
		loc := c.slotLoc[al.pred]
		b.uframe[loc], b.uwritten[loc] = exitPred, true
	}
	return loopApplied
}
