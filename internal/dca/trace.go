package dca

import (
	"fmt"

	"cnnperf/internal/ptx"
)

// TraceThread abstractly executes one in-bounds thread of a kernel and
// returns its dynamic instruction trace as a sequence of instruction
// classes — the input a cycle-level simulator replays per warp. maxLen
// bounds the trace (0 = 10M).
func TraceThread(k *ptx.Kernel, l launchLike, maxLen int, opts ExecOptions) ([]ptx.Class, error) {
	if maxLen <= 0 {
		maxLen = 10_000_000
	}
	g := BuildDepGraph(k)
	slice := BuildControlSlice(k, g)
	ctx := ThreadCtx{CtaID: 0, Tid: 0, NTid: int64(l.blockX()), NCtaID: int64(l.gridX())}

	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = int64(maxLen) + 1
	}
	trace := make([]ptx.Class, 0, 1024)
	env := make(map[string]int64, 32)
	n := len(k.Body)
	pc := 0
	for pc < n {
		if len(trace) >= maxLen {
			return nil, fmt.Errorf("dca: trace of kernel %q exceeds %d instructions", k.Name, maxLen)
		}
		in := k.Body[pc]
		trace = append(trace, in.Class())
		interpret := opts.Full || slice.InSlice[pc]
		if !interpret {
			pc++
			continue
		}
		taken := true
		if in.Pred != "" {
			v, ok := env[in.Pred]
			if !ok {
				return nil, fmt.Errorf("dca: kernel %q pc %d: predicate %s undefined", k.Name, pc, in.Pred)
			}
			taken = v != 0
			if in.PredNeg {
				taken = !taken
			}
		}
		if ptx.IsBranch(in.Opcode) {
			if taken {
				tgt, err := k.Target(in.Operands[0])
				if err != nil {
					return nil, fmt.Errorf("dca: %w", err)
				}
				pc = tgt
			} else {
				pc++
			}
			continue
		}
		if ptx.IsExit(in.Opcode) {
			return trace, nil
		}
		if taken {
			if err := step(k, in, pc, env, l.params(), ctx, opts); err != nil {
				return nil, err
			}
		}
		pc++
	}
	return trace, nil
}

// launchLike decouples TraceThread from the ptxgen.Launch struct (avoids
// a hard dependency direction while letting callers pass launches).
type launchLike interface {
	blockX() int
	gridX() int
	params() map[string]int64
}

// LaunchInfo is a minimal launchLike implementation.
type LaunchInfo struct {
	// BlockX is the threads per block.
	BlockX int
	// GridX is the number of blocks.
	GridX int
	// Params are the kernel parameter values.
	Params map[string]int64
}

func (l LaunchInfo) blockX() int              { return l.BlockX }
func (l LaunchInfo) gridX() int               { return l.GridX }
func (l LaunchInfo) params() map[string]int64 { return l.Params }
