package dca

import (
	"encoding/json"
	"fmt"

	"cnnperf/internal/ptx"
)

// Persistent serialization of the dynamic-code-analysis artifacts: the
// per-launch KernelReport and the compiled bytecode. The bytecode
// decoder validates every slot, target and enum against the invariants
// Execute relies on — the hot loop indexes frames and prefix tables
// without bounds checks, so a corrupt artifact must be rejected here,
// never executed. Bump the version constants when the shapes change.

const (
	kernelReportVersion   = 1
	compiledKernelVersion = 1
)

type kernelReportJSON struct {
	Version int          `json:"version"`
	Report  KernelReport `json:"report"`
}

// MarshalKernelReport serialises one per-launch report.
func MarshalKernelReport(r *KernelReport) ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("dca: cannot marshal a nil report")
	}
	return json.Marshal(kernelReportJSON{Version: kernelReportVersion, Report: *r})
}

// UnmarshalKernelReport reconstructs a persisted report.
func UnmarshalKernelReport(b []byte) (*KernelReport, error) {
	var j kernelReportJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return nil, fmt.Errorf("dca: decoding report: %w", err)
	}
	if j.Version != kernelReportVersion {
		return nil, fmt.Errorf("dca: unsupported report version %d (want %d)", j.Version, kernelReportVersion)
	}
	if j.Report.Static < 0 || j.Report.Executed < 0 || j.Report.Threads < 0 {
		return nil, fmt.Errorf("dca: corrupt report payload")
	}
	r := j.Report
	return &r, nil
}

type refJSON struct {
	Kind uint8 `json:"kind"`
	Val  int64 `json:"val,omitempty"`
}

type cinstJSON struct {
	Op      uint8   `json:"op"`
	Cmp     uint8   `json:"cmp,omitempty"`
	PredNeg bool    `json:"pred_neg,omitempty"`
	Pred    int32   `json:"pred"`
	Dst     int32   `json:"dst"`
	A       refJSON `json:"a"`
	B       refJSON `json:"b"`
	C       refJSON `json:"c"`
	Target  int32   `json:"target"`
	Back    bool    `json:"back,omitempty"`
	Name    string  `json:"name,omitempty"`
}

type affineLoopJSON struct {
	Start         int32   `json:"start"`
	End           int32   `json:"end"`
	Ind           int32   `json:"ind"`
	Pred          int32   `json:"pred"`
	Step          int64   `json:"step"`
	Bound         refJSON `json:"bound"`
	Cmp           uint8   `json:"cmp"`
	PredNeg       bool    `json:"pred_neg,omitempty"`
	PerIterSteps  int64   `json:"per_iter_steps"`
	PerIterInterp int64   `json:"per_iter_interp"`
	Hist          []int64 `json:"hist"`
}

type compiledKernelJSON struct {
	Version     int               `json:"version"`
	Code        []cinstJSON       `json:"code"`
	Interp      []bool            `json:"interp"`
	NextInterp  []int32           `json:"next_interp"`
	Class       []uint8           `json:"class"`
	ClassPrefix []int64           `json:"class_prefix"`
	Loops       []*affineLoopJSON `json:"loops"`
	Slots       int               `json:"slots"`
	Full        bool              `json:"full,omitempty"`
	MaxSteps    int64             `json:"max_steps"`
	RegNames    []string          `json:"reg_names,omitempty"`
	BadNames    []string          `json:"bad_names,omitempty"`
}

// MarshalCompiledKernel serialises compiled bytecode.
func MarshalCompiledKernel(c *CompiledKernel) ([]byte, error) {
	if c == nil {
		return nil, fmt.Errorf("dca: cannot marshal a nil compiled kernel")
	}
	j := compiledKernelJSON{
		Version:     compiledKernelVersion,
		Code:        make([]cinstJSON, len(c.code)),
		Interp:      c.interp,
		NextInterp:  c.nextInterp,
		Class:       make([]uint8, len(c.class)),
		ClassPrefix: c.classPrefix,
		Loops:       make([]*affineLoopJSON, len(c.loops)),
		Slots:       c.slots,
		Full:        c.full,
		MaxSteps:    c.maxSteps,
		RegNames:    c.regNames,
		BadNames:    c.badNames,
	}
	for i, ci := range c.code {
		j.Code[i] = cinstJSON{
			Op: uint8(ci.op), Cmp: uint8(ci.cmp), PredNeg: ci.predNeg,
			Pred: ci.pred, Dst: ci.dst,
			A:      refJSON{Kind: uint8(ci.a.kind), Val: ci.a.val},
			B:      refJSON{Kind: uint8(ci.b.kind), Val: ci.b.val},
			C:      refJSON{Kind: uint8(ci.c.kind), Val: ci.c.val},
			Target: ci.target, Back: ci.back, Name: ci.name,
		}
	}
	for i, cl := range c.class {
		j.Class[i] = uint8(cl)
	}
	for i, al := range c.loops {
		if al == nil {
			continue
		}
		j.Loops[i] = &affineLoopJSON{
			Start: al.start, End: al.end, Ind: al.ind, Pred: al.pred,
			Step: al.step, Bound: refJSON{Kind: uint8(al.bound.kind), Val: al.bound.val},
			Cmp: uint8(al.cmp), PredNeg: al.predNeg,
			PerIterSteps: al.perIterSteps, PerIterInterp: al.perIterInterp,
			Hist: al.hist[:],
		}
	}
	return json.Marshal(j)
}

// UnmarshalCompiledKernel reconstructs and validates compiled bytecode.
func UnmarshalCompiledKernel(b []byte) (*CompiledKernel, error) {
	var j compiledKernelJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return nil, fmt.Errorf("dca: decoding compiled kernel: %w", err)
	}
	if j.Version != compiledKernelVersion {
		return nil, fmt.Errorf("dca: unsupported compiled-kernel version %d (want %d)", j.Version, compiledKernelVersion)
	}
	n := len(j.Code)
	if len(j.Interp) != n || len(j.Class) != n || len(j.Loops) != n {
		return nil, fmt.Errorf("dca: compiled kernel arrays disagree on length")
	}
	if len(j.NextInterp) != n+1 || len(j.ClassPrefix) != (n+1)*ptx.NumClasses {
		return nil, fmt.Errorf("dca: compiled kernel index tables have wrong length")
	}
	if j.Slots < 0 || j.Slots != len(j.RegNames) {
		return nil, fmt.Errorf("dca: compiled kernel has %d slots but %d register names", j.Slots, len(j.RegNames))
	}
	if j.MaxSteps <= 0 {
		return nil, fmt.Errorf("dca: compiled kernel has non-positive step limit %d", j.MaxSteps)
	}
	c := &CompiledKernel{
		code:        make([]cinst, n),
		interp:      j.Interp,
		nextInterp:  j.NextInterp,
		class:       make([]ptx.Class, n),
		classPrefix: j.ClassPrefix,
		loops:       make([]*affineLoop, n),
		slots:       j.Slots,
		full:        j.Full,
		maxSteps:    j.MaxSteps,
		regNames:    j.RegNames,
		badNames:    j.BadNames,
	}
	checkRef := func(r refJSON) (ref, error) {
		if r.Kind > uint8(refBad) {
			return ref{}, fmt.Errorf("dca: unknown operand kind %d", r.Kind)
		}
		k := refKind(r.Kind)
		if k == refSlot && (r.Val < 0 || r.Val >= int64(j.Slots)) {
			return ref{}, fmt.Errorf("dca: operand slot %d of %d", r.Val, j.Slots)
		}
		if k == refBad && (r.Val < 0 || r.Val >= int64(len(j.BadNames))) {
			return ref{}, fmt.Errorf("dca: bad-operand index %d of %d", r.Val, len(j.BadNames))
		}
		return ref{kind: k, val: r.Val}, nil
	}
	for pc := range j.Code {
		cj := &j.Code[pc]
		// Uninterpreted pcs keep the compiler's zero-valued cinst and are
		// never read by Execute (the skip loop jumps over them via
		// nextInterp, whose progress is validated below), so only
		// interpreted instructions face the full battery.
		if !j.Interp[pc] {
			c.code[pc] = cinst{
				op: copKind(cj.Op), cmp: cmpKind(cj.Cmp), predNeg: cj.PredNeg,
				pred: cj.Pred, dst: cj.Dst,
				a:      ref{kind: refKind(cj.A.Kind), val: cj.A.Val},
				b:      ref{kind: refKind(cj.B.Kind), val: cj.B.Val},
				c:      ref{kind: refKind(cj.C.Kind), val: cj.C.Val},
				target: cj.Target, back: cj.Back, name: cj.Name,
			}
			continue
		}
		if cj.Op > uint8(copExit) {
			return nil, fmt.Errorf("dca: pc %d: unknown opcode %d", pc, cj.Op)
		}
		if cj.Cmp > uint8(cmpNE) {
			return nil, fmt.Errorf("dca: pc %d: unknown comparison %d", pc, cj.Cmp)
		}
		if cj.Pred < -1 || int64(cj.Pred) >= int64(j.Slots) {
			return nil, fmt.Errorf("dca: pc %d: predicate slot %d of %d", pc, cj.Pred, j.Slots)
		}
		if cj.Dst < -1 || int64(cj.Dst) >= int64(j.Slots) {
			return nil, fmt.Errorf("dca: pc %d: destination slot %d of %d", pc, cj.Dst, j.Slots)
		}
		op := copKind(cj.Op)
		// Every opcode that writes the frame must carry a real slot;
		// Execute stores through dst unconditionally for these.
		switch op {
		case copBad, copNop, copBra, copExit:
		default:
			if cj.Dst < 0 {
				return nil, fmt.Errorf("dca: pc %d: writing opcode %d without a destination", pc, cj.Op)
			}
		}
		// Branch targets land inside [0, n] (n exits); param positions
		// are re-checked against the launched kernel at execution time.
		if op == copBra && int(cj.Target) > n {
			return nil, fmt.Errorf("dca: pc %d: branch target %d of %d", pc, cj.Target, n)
		}
		a, err := checkRef(cj.A)
		if err != nil {
			return nil, fmt.Errorf("dca: pc %d: %w", pc, err)
		}
		bb, err := checkRef(cj.B)
		if err != nil {
			return nil, fmt.Errorf("dca: pc %d: %w", pc, err)
		}
		cc, err := checkRef(cj.C)
		if err != nil {
			return nil, fmt.Errorf("dca: pc %d: %w", pc, err)
		}
		c.code[pc] = cinst{
			op: op, cmp: cmpKind(cj.Cmp), predNeg: cj.PredNeg,
			pred: cj.Pred, dst: cj.Dst, a: a, b: bb, c: cc,
			target: cj.Target, back: cj.Back, name: cj.Name,
		}
	}
	for pc, cl := range j.Class {
		if int(cl) >= ptx.NumClasses {
			return nil, fmt.Errorf("dca: pc %d: instruction class %d of %d", pc, cl, ptx.NumClasses)
		}
		c.class[pc] = ptx.Class(cl)
	}
	for pc := range j.NextInterp {
		q := j.NextInterp[pc]
		if int(q) < pc || int(q) > n {
			return nil, fmt.Errorf("dca: next-interp[%d]=%d out of [%d,%d]", pc, q, pc, n)
		}
		// A counted-only run must make progress or the skip loop never
		// terminates.
		if pc < n && !j.Interp[pc] && int(q) == pc {
			return nil, fmt.Errorf("dca: next-interp[%d] stalls on an uninterpreted pc", pc)
		}
	}
	for pc, lj := range j.Loops {
		if lj == nil {
			continue
		}
		if int(lj.Start) != pc || lj.Start >= lj.End || int(lj.End) > n {
			return nil, fmt.Errorf("dca: loop at pc %d has bounds [%d,%d) of %d", pc, lj.Start, lj.End, n)
		}
		if lj.Ind < 0 || int64(lj.Ind) >= int64(j.Slots) || lj.Pred < 0 || int64(lj.Pred) >= int64(j.Slots) {
			return nil, fmt.Errorf("dca: loop at pc %d references slots %d/%d of %d", pc, lj.Ind, lj.Pred, j.Slots)
		}
		bound, err := checkRef(lj.Bound)
		if err != nil {
			return nil, fmt.Errorf("dca: loop at pc %d: %w", pc, err)
		}
		cmp := cmpKind(lj.Cmp)
		// Only monotone conditions moving toward the bound are countable;
		// anything else (including step 0, which would divide by zero in
		// the trip-count solver) is corrupt.
		switch cmp {
		case cmpLT, cmpLE:
			if lj.Step <= 0 {
				return nil, fmt.Errorf("dca: loop at pc %d: step %d against %v", pc, lj.Step, cmp)
			}
		case cmpGT, cmpGE:
			if lj.Step >= 0 {
				return nil, fmt.Errorf("dca: loop at pc %d: step %d against %v", pc, lj.Step, cmp)
			}
		default:
			return nil, fmt.Errorf("dca: loop at pc %d: uncountable comparison %d", pc, lj.Cmp)
		}
		if lj.PerIterSteps <= 0 || lj.PerIterInterp < 0 || len(lj.Hist) != ptx.NumClasses {
			return nil, fmt.Errorf("dca: loop at pc %d: corrupt iteration accounting", pc)
		}
		al := &affineLoop{
			start: lj.Start, end: lj.End, ind: lj.Ind, pred: lj.Pred,
			step: lj.Step, bound: bound, cmp: cmp, predNeg: lj.PredNeg,
			perIterSteps: lj.PerIterSteps, perIterInterp: lj.PerIterInterp,
		}
		copy(al.hist[:], lj.Hist)
		c.loops[pc] = al
	}
	// The batch layout is derived state, never serialized: recompute it
	// so decoded bytecode is executable by the batched engine.
	c.computeLayout()
	return c, nil
}
