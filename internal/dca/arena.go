package dca

import "unsafe"

// The compiled engine's transient execution state — register frames,
// struct-of-arrays lane storage, batch worklists, visit counters — lives
// in a caller-owned execArena instead of the garbage-collected heap.
// AnalyzeProgram keeps one arena per program and resets (never frees) it
// between kernel launches, so steady-state compiled execution performs
// zero heap allocations after warm-up: each slab grows to its
// high-water mark during the first pass over a workload and every later
// take carves from the retained buffer. TestZeroAlloc pins the
// property with testing.AllocsPerRun.

// slab is a bump allocator over one contiguous buffer of T. take
// returns zeroed, capacity-clipped subslices; reset rewinds the bump
// pointer and, when the previous run outgrew the buffer, re-sizes it to
// the run's cumulative demand so the next run allocates nothing.
type slab[T any] struct {
	buf []T
	off int
	// need is the cumulative demand of the current run, including takes
	// that forced a mid-run grow. reset sizes the buffer from it.
	need int
}

// take returns a zeroed slice of n elements carved from the slab. The
// returned slice stays valid until the owning arena is reset — mid-run
// grows retire the old buffer but never recycle outstanding memory.
func (s *slab[T]) take(n int) []T {
	p := s.takeRaw(n)
	clear(p)
	return p
}

// takeRaw is take without the zeroing pass, for buffers whose every
// read is gated by a separately-tracked written bit (register frames,
// parameter values) or that are fully written before any read (lane
// lists, key scratch, the batch worklist). Recycled garbage is then
// unobservable and the clear is pure cost.
func (s *slab[T]) takeRaw(n int) []T {
	if n == 0 {
		return nil
	}
	s.need += n
	if s.off+n > len(s.buf) {
		size := 2 * len(s.buf)
		if size < n {
			size = n
		}
		if size < 64 {
			size = 64
		}
		s.buf = make([]T, size)
		s.off = 0
		arenaGrows.Add(1)
	}
	p := s.buf[s.off : s.off+n : s.off+n]
	s.off += n
	return p
}

// reset rewinds the slab for the next run. A run that outgrew the
// buffer gets a single right-sized replacement now, off the hot path,
// so the next identical run is allocation-free.
func (s *slab[T]) reset() {
	if s.need > len(s.buf) {
		s.buf = make([]T, s.need)
		arenaGrows.Add(1)
	}
	s.off, s.need = 0, 0
}

// execArena owns every transient buffer of one execution context:
// register frames and writtenness bits (single-lane and batched),
// struct-of-arrays varying-slot lane arrays, per-batch uniform frames,
// lane index lists, the batch worklist, and per-instruction visit
// counters. One arena serves one goroutine; AnalyzeProgram resets it
// between launches.
type execArena struct {
	i64 slab[int64]
	i32 slab[int32]
	bit slab[bool]
	bat slab[batch]
}

// newExecArena returns an empty arena. Slabs materialize on first use.
func newExecArena() *execArena {
	return &execArena{}
}

// reset rewinds all slabs for the next execution and publishes the
// arena's retained-bytes high-water mark to the metrics hook.
func (a *execArena) reset() {
	a.i64.reset()
	a.i32.reset()
	a.bit.reset()
	a.bat.reset()
	recordArenaBytes(a.bytes())
}

// bytes is the total retained buffer footprint of the arena.
func (a *execArena) bytes() int64 {
	return int64(len(a.i64.buf))*8 + int64(len(a.i32.buf))*4 +
		int64(len(a.bit.buf)) + int64(len(a.bat.buf))*int64(unsafe.Sizeof(batch{}))
}
