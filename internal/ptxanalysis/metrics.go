package ptxanalysis

import (
	"sync/atomic"

	"cnnperf/internal/obs"
)

// The package publishes one instrument: a histogram of abstract-
// interpretation fixpoint iterations per analysed kernel. Analysis
// code runs in contexts with and without a serving-metrics registry,
// so the wiring is a process-wide atomic hook: RegisterMetrics installs
// the histogram (the daemon does this at startup) and every
// AnalyzeKernel observes into it when present. Without registration
// the observation is a single atomic load — effectively free.

// absintIterationBuckets grade kernels by fixpoint cost: straight-line
// kernels settle in a handful of block transfers, loopy ones in tens.
var absintIterationBuckets = []float64{2, 4, 8, 16, 32, 64, 128, 256}

var absintHist atomic.Pointer[obs.Histogram]

// RegisterMetrics installs the package's instruments into the given
// registry. Call once at process startup (the serving daemon does);
// later calls swap the target registry.
func RegisterMetrics(reg *obs.Registry) {
	absintHist.Store(reg.Histogram("cnnperfd_absint_iterations",
		"Abstract-interpretation fixpoint iterations per analysed kernel.",
		absintIterationBuckets))
}

// observeAbsintIterations records one kernel's fixpoint iteration count
// when a metrics registry is wired in.
func observeAbsintIterations(iters int) {
	if h := absintHist.Load(); h != nil {
		h.Observe(float64(iters))
	}
}
