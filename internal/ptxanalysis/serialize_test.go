package ptxanalysis

import (
	"bytes"
	"reflect"
	"testing"
)

// serializeLoopBody exercises loop depth, pressure and mix so the persisted view
// has non-trivial content in every field.
const serializeLoopBody = `
	mov.u32 %r1, 0;
	mov.u32 %r4, 0;
OUTER:
	mov.u32 %r2, 0;
INNER:
	add.s32 %r2, %r2, 1;
	add.s32 %r4, %r4, %r2;
	setp.lt.s32 %p2, %r2, 8;
	@%p2 bra INNER;
	add.s32 %r1, %r1, 1;
	setp.lt.s32 %p1, %r1, 4;
	@%p1 bra OUTER;
	st.global.u32 [%rd1], %r4;
	ret;
`

// reducedView strips a fresh analysis down to the fields the serializer
// persists, mirroring what the rest of the pipeline consumes.
func reducedView(a *KernelAnalysis) *KernelAnalysis {
	return &KernelAnalysis{
		Kernel:       a.Kernel,
		Static:       a.Static,
		MaxLoopDepth: a.MaxLoopDepth,
		Pressure:     a.Pressure,
		Mix:          a.Mix,
		Blocks:       a.Blocks,
		Diags:        a.Diags,
	}
}

func TestKernelAnalysisRoundTrip(t *testing.T) {
	for _, body := range []string{diamondBody, serializeLoopBody} {
		k := parseKernel(t, body)
		a, err := AnalyzeKernel(k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := MarshalKernelAnalysis(a)
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		got, err := UnmarshalKernelAnalysis(b)
		if err != nil {
			t.Fatalf("Unmarshal: %v", err)
		}
		if !reflect.DeepEqual(got, reducedView(a)) {
			t.Errorf("round trip lost data:\n got %+v\nwant %+v", got, reducedView(a))
		}
		// Re-marshal of the reduced view is byte-identical.
		b2, err := MarshalKernelAnalysis(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, b2) {
			t.Error("re-marshal is not byte-identical")
		}
	}
}

func TestKernelAnalysisRejections(t *testing.T) {
	if _, err := MarshalKernelAnalysis(nil); err == nil {
		t.Error("nil analysis marshaled")
	}
	cases := map[string]string{
		"not json":       "@@@",
		"future version": `{"version":99}`,
		"negative size":  `{"version":1,"static":-3}`,
		"negative depth": `{"version":1,"max_loop_depth":-1}`,
	}
	for name, payload := range cases {
		if _, err := UnmarshalKernelAnalysis([]byte(payload)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDiagsRoundTrip(t *testing.T) {
	// A kernel with real diagnostics.
	k := parseKernel(t, "add.s32 %r2, %r5, 1;\nret;")
	diags := LintKernel(k)
	if len(diags) == 0 {
		t.Fatal("expected diagnostics from a use-before-def kernel")
	}
	for _, in := range [][]Diag{diags, {}, nil} {
		b, err := MarshalDiags(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalDiags(b)
		if err != nil {
			t.Fatal(err)
		}
		if got == nil {
			t.Fatal("UnmarshalDiags returned nil (must be empty slice)")
		}
		want := in
		if want == nil {
			want = []Diag{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("diags round trip: got %+v, want %+v", got, want)
		}
		b2, err := MarshalDiags(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, b2) {
			t.Error("re-marshal is not byte-identical")
		}
	}
	if _, err := UnmarshalDiags([]byte(`{"version":7}`)); err == nil {
		t.Error("future diags version accepted")
	}
}
