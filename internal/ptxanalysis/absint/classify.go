package absint

import (
	"strings"

	"cnnperf/internal/ptx"
)

// Coalescing thresholds, in bytes of per-thread stride. The memory
// system serves a warp in 32-byte sectors: a known stride at or past a
// full sector means every lane of a warp touches its own sector — the
// access is provably uncoalesced regardless of alignment.
const (
	// UncoalescedStrideBytes is the PTXA010 threshold.
	UncoalescedStrideBytes = 32
	// sharedBankBytes and sharedBanks model the standard 32-bank,
	// 4-byte-word shared memory layout.
	sharedBankBytes = 4
	sharedBanks     = 32
)

// AccessSpaceOf classifies a memory opcode's address space.
func AccessSpaceOf(opcode string) Space { return accessSpace(opcode) }

// AddrRegOf extracts the address register of an instruction's bracketed
// memory operand, or "" for a direct (parameter-name) reference.
func AddrRegOf(in *ptx.Instruction) string { return addrRegOf(in) }

// elemBytes derives the access width from the opcode's type suffix
// (ld.global.f32 → 4, st.shared.u64 → 8, ...).
func elemBytes(opcode string) int64 {
	parts := strings.Split(opcode, ".")
	for i := len(parts) - 1; i >= 1; i-- {
		p := parts[i]
		switch {
		case strings.HasSuffix(p, "64"):
			return 8
		case strings.HasSuffix(p, "32"):
			return 4
		case strings.HasSuffix(p, "16"):
			return 2
		case strings.HasSuffix(p, "8"):
			return 1
		case p == "pred":
			return 1
		}
	}
	return 4
}

// accessSpace classifies a memory opcode's address space.
func accessSpace(opcode string) Space {
	switch {
	case strings.Contains(opcode, ".param"):
		return SpaceParam
	case strings.Contains(opcode, ".shared"):
		return SpaceShared
	default:
		return SpaceGlobal
	}
}

// addrRegOf extracts the address register of the bracketed memory
// operand, or "" for a direct (parameter-name) reference.
func addrRegOf(in *ptx.Instruction) string {
	for _, op := range in.Operands {
		op = strings.TrimSpace(op)
		if strings.HasPrefix(op, "[") {
			return ptx.RegOperand(op)
		}
	}
	return ""
}

// recordAccess classifies one memory instruction from the abstract
// value of its address register.
func (e *engine) recordAccess(bi, line int, in *ptx.Instruction, st []Value) {
	space := accessSpace(in.Opcode)
	if space == SpaceParam {
		return // parameter loads never touch the memory system
	}
	class := in.Class()
	acc := MemAccess{
		Line:      line,
		Block:     bi,
		Space:     space,
		Store:     class == ptx.ClassStore || class == ptx.ClassStoreShared,
		ElemBytes: elemBytes(in.Opcode),
		Class:     CoalUnknown,
	}
	addr := topAny()
	if r := addrRegOf(in); r != "" {
		if s, ok := e.res.slot[r]; ok {
			addr = st[s]
		}
	} else {
		addr = topUniform() // direct parameter reference: grid-uniform
	}
	if stride, ok := addr.StrideConst(); ok {
		acc.StrideKnown = true
		acc.StrideBytes = stride
		abs := stride
		if abs < 0 {
			abs = -abs
		}
		switch {
		case abs == 0:
			acc.Class = CoalUniform
		case abs <= acc.ElemBytes:
			acc.Class = CoalCoalesced
		default:
			acc.Class = CoalStrided
		}
		if space == SpaceShared {
			acc.ConflictWays = bankConflictWays(stride)
		}
	}
	e.res.Accesses = append(e.res.Accesses, acc)
}

// bankConflictWays computes the shared-memory bank-conflict degree of a
// known per-thread byte stride: with addresses a + s·t, lane t hits
// bank (a/4 + (s/4)·t) mod 32, so 32/gcd(32, s/4) distinct banks are
// touched and gcd(32, s/4) lanes collide on each. A zero stride is a
// broadcast (conflict-free); a stride off the 4-byte word grid is
// reported as unknown (0).
func bankConflictWays(strideBytes int64) int {
	if strideBytes < 0 {
		strideBytes = -strideBytes
	}
	if strideBytes == 0 {
		return 1 // broadcast
	}
	if strideBytes%sharedBankBytes != 0 {
		return 0
	}
	words := (strideBytes / sharedBankBytes) % sharedBanks
	if words == 0 {
		return sharedBanks // every lane lands on one bank
	}
	return int(gcd64(sharedBanks, words))
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
