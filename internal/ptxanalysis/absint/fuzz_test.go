package absint

import (
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"cnnperf/internal/ptx"
	"cnnperf/internal/ptx/cfg"
)

// fuzzSeeds are whole PTX modules (the internal/ptx FuzzParse corpus
// format) covering the shapes the abstract interpreter cares about:
// affine tid indexing, constant and divergent branches, widened loops,
// shared-memory strides, predicated defs, and broken fragments that
// must die in the parser, never in the engine.
var fuzzSeeds = []string{
	".version 6.0\n.target sm_61\n.address_size 64\n.visible .entry k(\n.param .u64 p0\n)\n{\n" +
		"ld.param.u64 %rd1, [p0];\nmov.u32 %r1, %tid.x;\nmul.wide.s32 %rd2, %r1, 4;\n" +
		"add.s64 %rd3, %rd1, %rd2;\nld.global.f32 %f1, [%rd3];\nst.global.f32 [%rd3], %f1;\nret;\n}\n",
	".version 6.0\n.target sm_61\n.address_size 64\n.visible .entry k()\n{\n" +
		"mov.u32 %r1, 5;\nsetp.lt.s32 %p1, %r1, 3;\n@%p1 bra DEAD;\nret;\nDEAD:\nmov.u32 %r2, 1;\nret;\n}\n",
	".version 6.0\n.target sm_61\n.address_size 64\n.visible .entry k()\n{\n" +
		"mov.u32 %r1, %tid.x;\nsetp.lt.s32 %p1, %r1, 16;\n@%p1 bra SKIP;\nbar.sync 0;\nSKIP:\nret;\n}\n",
	".version 6.0\n.target sm_61\n.address_size 64\n.visible .entry k(\n.param .u64 p0\n)\n{\n" +
		"ld.param.u64 %rd1, [p0];\nmov.u32 %r1, 0;\nL:\nld.global.f32 %f1, [%rd1];\n" +
		"add.s32 %r1, %r1, 1;\nsetp.lt.s32 %p1, %r1, %ntid.x;\n@%p1 bra L;\nret;\n}\n",
	".version 6.0\n.target sm_61\n.address_size 64\n.visible .entry k()\n{\n" +
		"mov.u32 %r1, %tid.x;\nmul.wide.s32 %rd1, %r1, 8;\nld.shared.f32 %f1, [%rd1];\nret;\n}\n",
	".version 6.0\n.target sm_61\n.address_size 64\n.visible .entry k()\n{\n" +
		"mov.u32 %r2, %tid.x;\nsetp.lt.s32 %p1, %r2, 4;\n@%p1 mov.u32 %r1, 2;\n" +
		"add.s32 %r3, %r1, 1;\nst.global.u32 [%r2], %r3;\nret;\n}\n",
	// Nested loops with a tid-dependent inner bound: widening territory.
	".version 6.0\n.target sm_61\n.address_size 64\n.visible .entry k()\n{\n" +
		"mov.u32 %r1, 0;\nOUTER:\nmov.u32 %r2, %tid.x;\nINNER:\nadd.s32 %r2, %r2, 1;\n" +
		"setp.lt.s32 %p1, %r2, 64;\n@%p1 bra INNER;\nadd.s32 %r1, %r1, 1;\n" +
		"setp.lt.s32 %p2, %r1, 8;\n@%p2 bra OUTER;\nret;\n}\n",
	// Broken fragments: the parser rejects them, Analyze never runs.
	".version 6.0\n.address_size banana\n",
	"garbage line\n",
	".version 6.0\n.target sm_61\n.address_size 64\n.visible .entry k(\n.param .u64 p\n)\n{\nbra missing;\n}\n",
}

// FuzzAbsint feeds arbitrary byte soup through parse → cfg → Analyze.
// Whatever the module, the engine must not panic, must converge (the
// iteration cap is a safety net the fuzzer should never reach), must
// keep its result shape consistent with the CFG, and must be fully
// deterministic run to run.
func FuzzAbsint(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ptx.Parse(src)
		if err != nil {
			return
		}
		for _, k := range m.Kernels {
			g, err := cfg.Build(k)
			if err != nil {
				continue
			}
			r := Analyze(k, g)
			if !r.Converged {
				t.Fatalf("kernel %s: no fixpoint in %d iterations", k.Name, r.Iterations)
			}
			if cap := iterCap(len(g.Blocks)); r.Iterations > cap {
				t.Fatalf("kernel %s: %d iterations exceeds cap %d", k.Name, r.Iterations, cap)
			}
			if len(r.Entry) != len(g.Blocks) || len(r.Reached) != len(g.Blocks) || len(r.Branch) != len(g.Blocks) {
				t.Fatalf("kernel %s: result shape %d/%d/%d blocks, CFG has %d",
					k.Name, len(r.Entry), len(r.Reached), len(r.Branch), len(g.Blocks))
			}
			for bi := range g.Blocks {
				if r.Reached[bi] != (r.Entry[bi] != nil) {
					t.Fatalf("kernel %s block %d: Reached=%t but entry state nil=%t",
						k.Name, bi, r.Reached[bi], r.Entry[bi] == nil)
				}
				if r.Entry[bi] != nil && len(r.Entry[bi]) != len(r.Regs) {
					t.Fatalf("kernel %s block %d: %d slots, %d registers",
						k.Name, bi, len(r.Entry[bi]), len(r.Regs))
				}
			}
			if !r.Reached[0] && len(g.Blocks) > 0 {
				t.Fatalf("kernel %s: entry block unreached", k.Name)
			}
			for _, a := range r.Accesses {
				if a.Line < 0 || a.Line >= len(k.Body) || a.Block < 0 || a.Block >= len(g.Blocks) {
					t.Fatalf("kernel %s: access at line %d block %d out of range", k.Name, a.Line, a.Block)
				}
			}
			for _, uu := range r.UndefUses {
				if uu.Line < 0 || uu.Line >= len(k.Body) {
					t.Fatalf("kernel %s: undef use at line %d out of range", k.Name, uu.Line)
				}
			}
			// The fixpoint is deterministic: a second run from scratch
			// must reproduce every fact and every counter.
			r2 := Analyze(k, g)
			if r.Iterations != r2.Iterations || r.Widenings != r2.Widenings {
				t.Fatalf("kernel %s: rerun took %d/%d iterations/widenings, first run %d/%d",
					k.Name, r2.Iterations, r2.Widenings, r.Iterations, r.Widenings)
			}
			if !reflect.DeepEqual(r.Entry, r2.Entry) ||
				!reflect.DeepEqual(r.Branch, r2.Branch) ||
				!reflect.DeepEqual(r.Accesses, r2.Accesses) ||
				!reflect.DeepEqual(r.UndefUses, r2.UndefUses) {
				t.Fatalf("kernel %s: rerun produced different facts", k.Name)
			}
		}
	})
}

// virtualReg matches virtual register tokens (%r1, %rd12, %f3, %p1, ...)
// but not special registers (%tid.x, %ctaid.x, %ntid.x carry no digits
// before the dot) and not parameter brackets.
var virtualReg = regexp.MustCompile(`%[a-z]+[0-9]+`)

// renameRegs maps every virtual register in src to a fresh name drawn
// from a disjoint namespace, consistently across all occurrences.
func renameRegs(src string) (string, map[string]string) {
	rename := make(map[string]string)
	out := virtualReg.ReplaceAllStringFunc(src, func(reg string) string {
		if strings.Contains(reg, ".") {
			return reg
		}
		nr, ok := rename[reg]
		if !ok {
			nr = "%zz" + strconv.Itoa(900-len(rename))
			rename[reg] = nr
		}
		return nr
	})
	return out, rename
}

// TestRenameInvariance: the analysis depends on dataflow, not on
// register spelling. Renaming every virtual register consistently must
// leave branch classes, access classifications, undef-use lines, entry
// lattice values, and the iteration/widening counters untouched.
func TestRenameInvariance(t *testing.T) {
	for i, src := range fuzzSeeds {
		m1, err := ptx.Parse(src)
		if err != nil {
			continue
		}
		renamed, rename := renameRegs(src)
		m2, err := ptx.Parse(renamed)
		if err != nil {
			t.Fatalf("seed %d: renamed module no longer parses: %v", i, err)
		}
		if len(m1.Kernels) != len(m2.Kernels) {
			t.Fatalf("seed %d: kernel count changed under rename", i)
		}
		for ki, k1 := range m1.Kernels {
			k2 := m2.Kernels[ki]
			g1, err1 := cfg.Build(k1)
			g2, err2 := cfg.Build(k2)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("seed %d kernel %s: cfg errors diverge under rename: %v vs %v", i, k1.Name, err1, err2)
			}
			if err1 != nil {
				continue
			}
			r1 := Analyze(k1, g1)
			r2 := Analyze(k2, g2)
			if r1.Iterations != r2.Iterations || r1.Widenings != r2.Widenings || r1.Converged != r2.Converged {
				t.Errorf("seed %d kernel %s: counters changed under rename: %d/%d/%t vs %d/%d/%t",
					i, k1.Name, r1.Iterations, r1.Widenings, r1.Converged,
					r2.Iterations, r2.Widenings, r2.Converged)
			}
			if !reflect.DeepEqual(r1.Branch, r2.Branch) {
				t.Errorf("seed %d kernel %s: branch classes changed under rename:\n%v\n%v",
					i, k1.Name, r1.Branch, r2.Branch)
			}
			if !reflect.DeepEqual(r1.Accesses, r2.Accesses) {
				t.Errorf("seed %d kernel %s: access classes changed under rename:\n%v\n%v",
					i, k1.Name, r1.Accesses, r2.Accesses)
			}
			if !reflect.DeepEqual(r1.Reached, r2.Reached) {
				t.Errorf("seed %d kernel %s: reachability changed under rename", i, k1.Name)
			}
			if len(r1.UndefUses) != len(r2.UndefUses) {
				t.Errorf("seed %d kernel %s: undef uses %d vs %d under rename",
					i, k1.Name, len(r1.UndefUses), len(r2.UndefUses))
			} else {
				for j, uu := range r1.UndefUses {
					if r2.UndefUses[j].Line != uu.Line || r2.UndefUses[j].Reg != rename[uu.Reg] {
						t.Errorf("seed %d kernel %s: undef use %d is %v, renamed run has %v",
							i, k1.Name, j, uu, r2.UndefUses[j])
					}
				}
			}
			// Slot order is first textual appearance, which renaming
			// preserves — so the entry lattice must match slot for slot.
			if len(r1.Regs) != len(r2.Regs) {
				t.Fatalf("seed %d kernel %s: register count changed under rename", i, k1.Name)
			}
			for si, reg := range r1.Regs {
				if r2.Regs[si] != rename[reg] {
					t.Errorf("seed %d kernel %s: slot %d is %s, renamed run has %s (want %s)",
						i, k1.Name, si, reg, r2.Regs[si], rename[reg])
				}
			}
			if !reflect.DeepEqual(r1.Entry, r2.Entry) {
				t.Errorf("seed %d kernel %s: entry lattice values changed under rename", i, k1.Name)
			}
		}
	}
}
