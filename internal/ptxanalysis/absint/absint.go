// Package absint is a forward abstract interpreter over parsed PTX
// kernels: every virtual register carries a product-lattice value —
// an integer interval crossed with a thread-dependence taint — and the
// engine runs the transfer functions to a fixpoint over the kernel CFG,
// widening at the targets of back edges so loops converge.
//
// The abstraction is affine in the thread index: a register value is
// modelled as B + T·tid, where B (the thread-invariant component) and T
// (the coefficient of %tid.x) are both intervals. T = [0,0] proves the
// value identical across the threads of a block (uniform); a constant
// non-zero T is a proven per-thread stride, which is exactly what
// memory-coalescing classification needs; anything else is a possibly
// thread-dependent unknown. The integer semantics mirror the dynamic
// code analysis executor (internal/dca), which models all registers as
// int64 bit patterns — so facts proved here are facts about the same
// abstract machine the pipeline executes.
package absint

import (
	"strconv"
	"strings"

	"cnnperf/internal/ptx"
	"cnnperf/internal/ptx/cfg"
)

// Value is the product-lattice element of one register: the abstract
// value is B + T*tid with tid ranging over the threads of a block.
type Value struct {
	// B is the thread-invariant component.
	B Interval
	// T is the coefficient of %tid.x. [0,0] proves uniformity.
	T Interval
	// Undef marks a register that may be read before any definition on
	// some feasible path.
	Undef bool
}

// top is the unknown-but-uniform value.
func topUniform() Value { return Value{B: Top(), T: Const(0)} }

// topAny is the unconstrained value (possibly thread-dependent).
func topAny() Value { return Value{B: Top(), T: Top()} }

func constVal(v int64) Value { return Value{B: Const(v), T: Const(0)} }

// Uniform reports whether the value is provably identical across the
// threads of a block.
func (v Value) Uniform() bool { return v.T.Eq(Const(0)) }

// ConstV reports whether the value is a compile-time constant.
func (v Value) ConstV() (int64, bool) {
	if c, ok := v.B.IsConst(); ok && v.Uniform() {
		return c, true
	}
	return 0, false
}

// StrideConst reports whether the per-thread stride (the tid
// coefficient) is a known constant.
func (v Value) StrideConst() (int64, bool) { return v.T.IsConst() }

// Eq is structural lattice equality.
func (v Value) Eq(o Value) bool {
	return v.B.Eq(o.B) && v.T.Eq(o.T) && v.Undef == o.Undef
}

// Join is the pointwise least upper bound.
func (v Value) Join(o Value) Value {
	return Value{B: v.B.Join(o.B), T: v.T.Join(o.T), Undef: v.Undef || o.Undef}
}

// Widen applies interval widening componentwise against the previous
// iterate.
func (v Value) Widen(next Value) Value {
	return Value{B: v.B.Widen(next.B), T: v.T.Widen(next.T), Undef: v.Undef || next.Undef}
}

// BranchClass classifies the terminating conditional branch of a block.
type BranchClass int

const (
	// BranchNone: the block does not end in a guarded branch.
	BranchNone BranchClass = iota
	// BranchUniform: the guard is provably thread-invariant — all
	// threads of a block take the same side.
	BranchUniform
	// BranchDivergent: the guard may depend on the thread index.
	BranchDivergent
)

// String returns a short class mnemonic.
func (c BranchClass) String() string {
	switch c {
	case BranchUniform:
		return "uniform"
	case BranchDivergent:
		return "divergent"
	default:
		return "none"
	}
}

// Branch is the classification of one block's terminating branch.
type Branch struct {
	// Line is the body index of the branch (-1 when the block has none).
	Line int
	// Class grades the guard's thread dependence.
	Class BranchClass
	// Const reports a guard that resolves to one boolean; Taken is its
	// decided direction.
	Const bool
	Taken bool
}

// Space is a memory address space.
type Space int

const (
	SpaceGlobal Space = iota
	SpaceShared
	SpaceParam
)

// String names the address space.
func (s Space) String() string {
	switch s {
	case SpaceShared:
		return "shared"
	case SpaceParam:
		return "param"
	default:
		return "global"
	}
}

// CoalClass grades the coalescing quality of one memory access.
type CoalClass int

const (
	// CoalUniform: all threads of a block address the same location.
	CoalUniform CoalClass = iota
	// CoalCoalesced: consecutive threads touch consecutive elements.
	CoalCoalesced
	// CoalStrided: a known constant stride larger than the element.
	CoalStrided
	// CoalUnknown: the per-thread stride could not be bounded.
	CoalUnknown
)

// String returns a short class mnemonic.
func (c CoalClass) String() string {
	switch c {
	case CoalUniform:
		return "uniform"
	case CoalCoalesced:
		return "coalesced"
	case CoalStrided:
		return "strided"
	default:
		return "unknown"
	}
}

// MemAccess is the address-lattice classification of one load or store.
type MemAccess struct {
	// Line is the body index of the instruction.
	Line int
	// Block is the containing CFG block.
	Block int
	// Space is the address space.
	Space Space
	// Store distinguishes writes from reads.
	Store bool
	// ElemBytes is the access width from the opcode's type suffix.
	ElemBytes int64
	// StrideKnown reports a constant per-thread stride; StrideBytes is
	// its value (0 for a uniform address).
	StrideKnown bool
	StrideBytes int64
	// Class grades the coalescing quality.
	Class CoalClass
	// ConflictWays is the shared-memory bank-conflict degree implied by
	// a known stride (0 when unknown or not shared; 1 means conflict-free).
	ConflictWays int
}

// UndefUse records a register read while possibly undefined.
type UndefUse struct {
	// Line is the reading instruction's body index.
	Line int
	// Reg is the register name.
	Reg string
}

// Result carries the fixpoint solution and the classifications derived
// from it.
type Result struct {
	// Regs is the slot order (first textual appearance in the body).
	Regs []string
	// Entry is the per-block entry state (nil: no feasible path reaches
	// the block). Indexed [block][slot], slots parallel to Regs.
	Entry [][]Value
	// Reached marks blocks with a non-nil entry state.
	Reached []bool
	// Branch classifies each block's terminating guarded branch.
	Branch []Branch
	// Accesses classifies every global/shared memory access in body order.
	Accesses []MemAccess
	// UndefUses lists possibly-undefined register reads in body order.
	UndefUses []UndefUse
	// Iterations counts block-transfer applications until the fixpoint.
	Iterations int
	// Widenings counts widening applications.
	Widenings int
	// Converged is false only if the engine hit its iteration cap (the
	// safety net; widening should always converge first).
	Converged bool

	slot map[string]int
}

// EntryValue returns the entry-state value of a register at a block.
// ok is false for unreached blocks and unknown registers.
func (r *Result) EntryValue(block int, reg string) (Value, bool) {
	s, ok := r.slot[reg]
	if !ok || block < 0 || block >= len(r.Entry) || r.Entry[block] == nil {
		return Value{}, false
	}
	return r.Entry[block][s], true
}

// Facts is the fact-count summary used for observability: one fact per
// (reached block, register) entry pair plus one per classified access
// and branch.
func (r *Result) Facts() int {
	n := len(r.Accesses) + len(r.UndefUses)
	for bi, ok := range r.Reached {
		if ok {
			n += len(r.Entry[bi])
		}
		if r.Branch[bi].Class != BranchNone {
			n++
		}
	}
	return n
}

// widenDelay is the number of visits a widen-point block absorbs before
// widening kicks in, letting small constant loops settle exactly first.
const widenDelay = 2

// iterCap bounds block transfers as a safety net; widening guarantees
// convergence far below it for any real kernel.
func iterCap(blocks int) int { return 64 + 32*blocks }

// Analyze runs the abstract interpretation of one kernel over its CFG
// to fixpoint and derives the branch, memory and undef classifications.
// The graph must be cfg.Build(k) of the same kernel.
func Analyze(k *ptx.Kernel, g *cfg.Graph) *Result {
	n := len(g.Blocks)
	res := &Result{
		Entry:     make([][]Value, n),
		Reached:   make([]bool, n),
		Branch:    make([]Branch, n),
		Converged: true,
		slot:      make(map[string]int),
	}
	for bi := range res.Branch {
		res.Branch[bi].Line = -1
	}

	// Slot assignment: every register named anywhere in the body, in
	// first-appearance order.
	intern := func(r string) {
		if r == "" {
			return
		}
		if _, ok := res.slot[r]; !ok {
			res.slot[r] = len(res.Regs)
			res.Regs = append(res.Regs, r)
		}
	}
	for _, in := range k.Body {
		if in.Pred != "" {
			intern(in.Pred)
		}
		if d := in.Dest(); d != "" {
			intern(d)
		}
		for _, src := range in.Sources() {
			intern(ptx.RegOperand(src))
		}
	}
	nslots := len(res.Regs)

	eng := &engine{k: k, g: g, res: res}

	// Entry state: every register starts undefined (reading it is a
	// lint error, so its value is unconstrained in both components).
	entry := make([]Value, nslots)
	for i := range entry {
		entry[i] = Value{B: Top(), T: Top(), Undef: true}
	}

	// Widen points: targets of back edges (covers natural and
	// irreducible loops alike — any cycle crosses one).
	widenAt := make([]bool, n)
	for _, e := range g.BackEdges() {
		widenAt[e[1]] = true
	}

	visits := make([]int, n)
	inWork := make([]bool, n)
	work := []int{0}
	inWork[0] = true
	res.Entry[0] = entry
	res.Reached[0] = true
	cap := iterCap(n)
	for len(work) > 0 {
		if res.Iterations >= cap {
			res.Converged = false
			// Conservative bailout: force every reached entry to top so
			// downstream classifications cannot claim unproven facts.
			for bi := range res.Entry {
				if res.Entry[bi] == nil {
					continue
				}
				for s := range res.Entry[bi] {
					res.Entry[bi][s] = Value{B: Top(), T: Top(), Undef: res.Entry[bi][s].Undef}
				}
			}
			break
		}
		bi := work[0]
		work = work[1:]
		inWork[bi] = false
		res.Iterations++
		visits[bi]++
		out := eng.transferBlock(bi, res.Entry[bi], nil)
		for _, edge := range eng.feasibleSuccs(bi, out) {
			si, state := edge.to, edge.state
			prev := res.Entry[si]
			if prev == nil {
				next := make([]Value, nslots)
				copy(next, state)
				res.Entry[si] = next
				res.Reached[si] = true
				if !inWork[si] {
					work = append(work, si)
					inWork[si] = true
				}
				continue
			}
			changed := false
			widen := widenAt[si] && visits[si] >= widenDelay
			for s := range prev {
				j := prev[s].Join(state[s])
				if widen {
					j = prev[s].Widen(j)
				}
				if !j.Eq(prev[s]) {
					prev[s] = j
					changed = true
				}
			}
			if widen && changed {
				res.Widenings++
			}
			if changed && !inWork[si] {
				work = append(work, si)
				inWork[si] = true
			}
		}
	}

	eng.derive()
	return res
}

// edge is one feasible outgoing propagation.
type outEdge struct {
	to    int
	state []Value
}

// engine holds the per-analysis scratch shared by the fixpoint loop and
// the derivation pass.
type engine struct {
	k   *ptx.Kernel
	g   *cfg.Graph
	res *Result
}

// transferBlock interprets one block from its entry state and returns
// the exit state. The input is not mutated. When sink is non-nil, the
// per-instruction facts (memory accesses, undef uses) are appended to
// it — the derivation pass's mode.
func (e *engine) transferBlock(bi int, in []Value, sink *Result) []Value {
	st := make([]Value, len(in))
	copy(st, in)
	b := e.g.Blocks[bi]
	for i := b.Start; i < b.End; i++ {
		ins := &e.k.Body[i]
		if sink != nil {
			e.recordFacts(bi, i, ins, st)
		}
		e.transferInst(ins, st)
	}
	return st
}

// transferInst applies one instruction's transfer function in place.
func (e *engine) transferInst(in *ptx.Instruction, st []Value) {
	dest := in.Dest()
	if dest == "" {
		return // stores, branches, barriers, control: no register effect
	}
	ds, ok := e.res.slot[dest]
	if !ok {
		return
	}
	v := e.evalDef(in, st)
	if in.Pred != "" {
		// A guarded definition may leave the old value in place: weak
		// update. (This also models dca's per-thread predication: the
		// joined value covers both the taken and skipped outcomes.)
		v = st[ds].Join(v)
		v.Undef = st[ds].Undef
	} else {
		v.Undef = false
	}
	st[ds] = v
}

// operand evaluates one source operand against the current state.
func (e *engine) operand(op string, st []Value) Value {
	op = strings.TrimSpace(op)
	switch op {
	case "%tid.x":
		return Value{B: Const(0), T: Const(1)}
	case "%ntid.x", "%nctaid.x":
		return Value{B: Interval{1, PosInf}, T: Const(0)}
	case "%ctaid.x":
		return Value{B: Interval{0, PosInf}, T: Const(0)}
	}
	if ptx.IsSpecialReg(op) {
		// Other thread-geometry axes: thread-dependent with an unknown
		// x-stride (a warp can span the y/z axes too).
		if strings.HasPrefix(op, "%tid.") {
			return topAny()
		}
		return topUniform()
	}
	if r := ptx.RegOperand(op); r != "" {
		if s, ok := e.res.slot[r]; ok {
			return st[s]
		}
		return topAny()
	}
	// Immediates: decimal integers, or float bit patterns exactly as the
	// dca executor models them (0f hex bits as an int64).
	if strings.HasPrefix(op, "0f") || strings.HasPrefix(op, "0F") {
		if bits, err := strconv.ParseUint(op[2:], 16, 64); err == nil {
			return constVal(int64(bits))
		}
		return topUniform()
	}
	if v, err := strconv.ParseInt(op, 10, 64); err == nil {
		return constVal(v)
	}
	// Unparsable operand (the executor errors on it): unconstrained but
	// thread-invariant — a malformed constant cannot introduce taint.
	return topUniform()
}

// evalDef computes the abstract value a defining instruction produces.
func (e *engine) evalDef(in *ptx.Instruction, st []Value) Value {
	root, _, _ := strings.Cut(in.Opcode, ".")
	class := in.Class()
	srcs := in.Sources()
	get := func(i int) Value {
		if i < len(srcs) {
			return e.operand(srcs[i], st)
		}
		return topAny()
	}

	// Floating-point arithmetic operates on IEEE bit patterns the
	// interval domain cannot track; only the taint component survives.
	if class == ptx.ClassFP32 || class == ptx.ClassFMA || class == ptx.ClassSFU {
		out := topUniform()
		for i := range srcs {
			if !get(i).Uniform() {
				return topAny()
			}
		}
		return out
	}

	switch root {
	case "mov", "cvt", "cvta":
		return get(0)
	case "ld":
		if strings.Contains(in.Opcode, "param") {
			return topUniform() // kernel parameters are grid-uniform
		}
		// Data load: all threads reading one address see one value; a
		// thread-dependent address yields thread-dependent data.
		if get(0).Uniform() {
			return topUniform()
		}
		return topAny()
	case "add":
		a, b := get(0), get(1)
		return Value{B: a.B.Add(b.B), T: a.T.Add(b.T)}
	case "sub":
		a, b := get(0), get(1)
		return Value{B: a.B.Sub(b.B), T: a.T.Sub(b.T)}
	case "neg":
		a := get(0)
		return Value{B: a.B.Neg(), T: a.T.Neg()}
	case "mul":
		return mulVal(get(0), get(1))
	case "mad", "fma":
		p := mulVal(get(0), get(1))
		c := get(2)
		return Value{B: p.B.Add(c.B), T: p.T.Add(c.T)}
	case "shl":
		a, b := get(0), get(1)
		if s, ok := b.ConstV(); ok && s >= 0 && s < 63 {
			return mulVal(a, constVal(int64(1)<<uint(s)))
		}
		if a.Uniform() && b.Uniform() {
			return topUniform()
		}
		return topAny()
	case "min":
		return minMaxVal(get(0), get(1), true)
	case "max":
		return minMaxVal(get(0), get(1), false)
	case "abs":
		a := get(0)
		if !a.Uniform() {
			return topAny()
		}
		if a.B.Lo >= 0 {
			return a
		}
		return topUniform()
	case "setp":
		return e.setpVal(in, st)
	case "selp":
		a, b, p := get(0), get(1), get(2)
		if c, ok := p.ConstV(); ok {
			if c != 0 {
				return a
			}
			return b
		}
		out := a.Join(b)
		if !p.Uniform() && !a.Eq(b) {
			// A thread-dependent select of distinct values is itself
			// thread-dependent even when both arms are uniform.
			out.T = Top()
		}
		return out
	case "div", "rem", "shr", "and", "or", "xor", "not":
		for i := range srcs {
			if !get(i).Uniform() {
				return topAny()
			}
		}
		return topUniform()
	default:
		return topAny()
	}
}

// mulVal multiplies two abstract values, staying affine only while at
// most one factor carries the thread index.
func mulVal(a, b Value) Value {
	if b.Uniform() {
		return Value{B: a.B.Mul(b.B), T: a.T.Mul(b.B)}
	}
	if a.Uniform() {
		return Value{B: b.B.Mul(a.B), T: b.T.Mul(a.B)}
	}
	return topAny() // tid² term: outside the affine abstraction
}

// minMaxVal models min/max: exact on uniform values, affine-preserving
// when both sides share one stride.
func minMaxVal(a, b Value, isMin bool) Value {
	if a.Uniform() && b.Uniform() {
		if isMin {
			return Value{B: a.B.MinI(b.B), T: Const(0)}
		}
		return Value{B: a.B.MaxI(b.B), T: Const(0)}
	}
	sa, oka := a.StrideConst()
	sb, okb := b.StrideConst()
	if oka && okb && sa == sb {
		// min(B1+st, B2+st) = min(B1,B2)+st: the stride factors out.
		v := Value{T: a.T}
		if isMin {
			v.B = a.B.MinI(b.B)
		} else {
			v.B = a.B.MaxI(b.B)
		}
		return v
	}
	return topAny()
}

// setpVal evaluates a comparison to an abstract predicate in {0,1}.
func (e *engine) setpVal(in *ptx.Instruction, st []Value) Value {
	srcs := in.Sources()
	if len(srcs) < 2 {
		return topAny()
	}
	parts := strings.Split(in.Opcode, ".")
	cmp := ""
	if len(parts) >= 2 {
		cmp = parts[1]
	}
	a := e.operand(srcs[0], st)
	b := e.operand(srcs[1], st)

	// Identical operand text compares a register against itself: the
	// outcome is decided reflexively whatever the value.
	if strings.TrimSpace(srcs[0]) == strings.TrimSpace(srcs[1]) && ptx.RegOperand(srcs[0]) != "" {
		switch cmp {
		case "eq", "le", "ge":
			return constVal(1)
		case "ne", "lt", "gt":
			return constVal(0)
		}
	}

	// d = a - b decides the comparison; its taint decides divergence.
	d := Value{B: a.B.Sub(b.B), T: a.T.Sub(b.T)}
	pred := Value{B: Interval{0, 1}, T: Const(0)}
	if !d.Uniform() {
		pred.T = Top() // threads may disagree on the outcome
		return pred
	}
	decideTrue, decideFalse := false, false
	switch cmp {
	case "lt":
		decideTrue, decideFalse = d.B.Hi < 0, d.B.Lo >= 0
	case "le":
		decideTrue, decideFalse = d.B.Hi <= 0, d.B.Lo > 0
	case "gt":
		decideTrue, decideFalse = d.B.Lo > 0, d.B.Hi <= 0
	case "ge":
		decideTrue, decideFalse = d.B.Lo >= 0, d.B.Hi < 0
	case "eq":
		if c, ok := d.B.IsConst(); ok && c == 0 {
			decideTrue = true
		}
		decideFalse = !d.B.Contains(0)
	case "ne":
		decideFalse = func() bool { c, ok := d.B.IsConst(); return ok && c == 0 }()
		decideTrue = !d.B.Contains(0)
	default:
		return pred
	}
	switch {
	case decideTrue:
		return constVal(1)
	case decideFalse:
		return constVal(0)
	}
	return pred
}

// feasibleSuccs returns the outgoing edges consistent with the block's
// exit state: a constant branch guard prunes the impossible side.
func (e *engine) feasibleSuccs(bi int, out []Value) []outEdge {
	b := e.g.Blocks[bi]
	if len(b.Succs) == 0 {
		return nil
	}
	edges := make([]outEdge, 0, len(b.Succs))
	all := func() []outEdge {
		for _, s := range b.Succs {
			edges = append(edges, outEdge{to: s, state: out})
		}
		return edges
	}
	last := &e.k.Body[b.End-1]
	if !ptx.IsBranch(last.Opcode) || last.Pred == "" || len(last.Operands) != 1 {
		return all()
	}
	ps, ok := e.res.slot[last.Pred]
	if !ok {
		return all()
	}
	c, isConst := out[ps].ConstV()
	if !isConst {
		return all()
	}
	taken := (c != 0) != last.PredNeg
	tgt, err := e.k.Target(last.Operands[0])
	if err != nil {
		return all()
	}
	takenBlock := e.g.BlockOf(tgt)
	for _, s := range b.Succs {
		if (s == takenBlock) == taken {
			edges = append(edges, outEdge{to: s, state: out})
		}
	}
	if len(edges) == 0 {
		return all() // defensive: never strand a structurally present edge set
	}
	return edges
}

// derive replays every reached block once from its fixpoint entry state
// and records the per-instruction classifications.
func (e *engine) derive() {
	for bi := range e.g.Blocks {
		if !e.res.Reached[bi] {
			continue
		}
		e.transferBlock(bi, e.res.Entry[bi], e.res)
	}
}

// recordFacts classifies one instruction at its reaching state.
func (e *engine) recordFacts(bi, line int, in *ptx.Instruction, st []Value) {
	// Possibly-undefined reads: direct register sources plus the guard.
	record := func(r string) {
		if r == "" {
			return
		}
		if s, ok := e.res.slot[r]; ok && st[s].Undef {
			e.res.UndefUses = append(e.res.UndefUses, UndefUse{Line: line, Reg: r})
		}
	}
	for _, src := range in.Sources() {
		record(ptx.RegOperand(src))
	}
	if in.Pred != "" {
		record(in.Pred)
	}

	class := in.Class()
	switch class {
	case ptx.ClassLoad, ptx.ClassStore, ptx.ClassLoadShared, ptx.ClassStoreShared:
		e.recordAccess(bi, line, in, st)
	case ptx.ClassBranch:
		if in.Pred != "" && line == e.g.Blocks[bi].End-1 {
			e.res.Branch[bi] = e.classifyBranch(line, in, st)
		}
	}
}

// classifyBranch grades the guard of a terminating conditional branch.
func (e *engine) classifyBranch(line int, in *ptx.Instruction, st []Value) Branch {
	br := Branch{Line: line, Class: BranchDivergent}
	s, ok := e.res.slot[in.Pred]
	if !ok {
		return br
	}
	v := st[s]
	if v.Uniform() {
		br.Class = BranchUniform
	}
	if c, isConst := v.ConstV(); isConst {
		br.Const = true
		br.Taken = (c != 0) != in.PredNeg
	}
	return br
}
