package absint

import (
	"testing"

	"cnnperf/internal/ptx"
	"cnnperf/internal/ptx/cfg"
)

func parseKernel(t testing.TB, body string) (*ptx.Kernel, *cfg.Graph) {
	t.Helper()
	src := ".version 6.0\n.target sm_61\n.address_size 64\n" +
		".visible .entry k(\n.param .u64 p0\n)\n{\n" + body + "}\n"
	m, err := ptx.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(m.Kernels) != 1 {
		t.Fatalf("want 1 kernel, got %d", len(m.Kernels))
	}
	k := m.Kernels[0]
	g, err := cfg.Build(k)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return k, g
}

func analyze(t testing.TB, body string) *Result {
	t.Helper()
	k, g := parseKernel(t, body)
	r := Analyze(k, g)
	if !r.Converged {
		t.Fatalf("analysis did not converge in %d iterations", r.Iterations)
	}
	return r
}

func TestIntervalArith(t *testing.T) {
	if got := Const(3).Add(Const(4)); !got.Eq(Const(7)) {
		t.Errorf("3+4 = %v", got)
	}
	if got := (Interval{1, PosInf}).Add(Const(1)); got.Lo != 2 || got.Hi != PosInf {
		t.Errorf("[1,+inf]+1 = %v", got)
	}
	if got := Const(1 << 62).Mul(Const(4)); got.Hi != PosInf {
		t.Errorf("overflowing mul must saturate, got %v", got)
	}
	if got := (Interval{-2, 3}).Mul(Const(-4)); got.Lo != -12 || got.Hi != 8 {
		t.Errorf("[-2,3]*-4 = %v", got)
	}
	w := Const(0).Widen(Interval{0, 5})
	if w.Lo != 0 || w.Hi != PosInf {
		t.Errorf("widen grew-above = %v", w)
	}
	if got := Top().Sub(Const(1)); !got.IsTop() {
		t.Errorf("top-1 = %v", got)
	}
}

func TestTidAffineIndex(t *testing.T) {
	// The generated global-index idiom: idx = ctaid*ntid + tid, then a
	// byte address idx*4.
	r := analyze(t, `
mov.u32 %r1, %ctaid.x;
mov.u32 %r2, %ntid.x;
mad.lo.s32 %r3, %r1, %r2, %tid.x;
mul.wide.s32 %rd1, %r3, 4;
ld.global.f32 %f1, [%rd1];
ret;
`)
	if len(r.Accesses) != 1 {
		t.Fatalf("want 1 access, got %d", len(r.Accesses))
	}
	a := r.Accesses[0]
	if !a.StrideKnown || a.StrideBytes != 4 {
		t.Fatalf("stride = %+v, want known 4", a)
	}
	if a.Class != CoalCoalesced {
		t.Fatalf("class = %v, want coalesced", a.Class)
	}
	if a.Space != SpaceGlobal || a.Store {
		t.Fatalf("access misclassified: %+v", a)
	}
}

func TestStridedAndSharedConflict(t *testing.T) {
	r := analyze(t, `
mov.u32 %r1, %tid.x;
mul.wide.s32 %rd1, %r1, 64;
ld.global.f32 %f1, [%rd1];
mul.wide.s32 %rd2, %r1, 8;
st.shared.f32 [%rd2], %f1;
ret;
`)
	if len(r.Accesses) != 2 {
		t.Fatalf("want 2 accesses, got %d", len(r.Accesses))
	}
	g, s := r.Accesses[0], r.Accesses[1]
	if g.Class != CoalStrided || g.StrideBytes != 64 {
		t.Fatalf("global access = %+v, want strided 64", g)
	}
	if s.Space != SpaceShared || !s.Store || s.ConflictWays != 2 {
		t.Fatalf("shared access = %+v, want 2-way conflict", s)
	}
}

func TestUniformAddressBroadcast(t *testing.T) {
	r := analyze(t, `
ld.param.u64 %rd1, [p0];
ld.global.f32 %f1, [%rd1];
ret;
`)
	if len(r.Accesses) != 1 || r.Accesses[0].Class != CoalUniform || r.Accesses[0].StrideBytes != 0 {
		t.Fatalf("accesses = %+v, want one uniform", r.Accesses)
	}
}

func TestBranchClasses(t *testing.T) {
	// Divergent: the generated bounds-check guards on a tid-dependent
	// comparison. Uniform: a comparison of two parameters.
	r := analyze(t, `
mov.u32 %r1, %tid.x;
setp.ge.s32 %p1, %r1, 100;
@%p1 bra EXIT;
ld.param.u64 %rd1, [p0];
setp.lt.s32 %p2, %rd1, 5;
@%p2 bra EXIT;
mov.u32 %r2, 0;
EXIT:
ret;
`)
	var classes []BranchClass
	for _, br := range r.Branch {
		if br.Class != BranchNone {
			classes = append(classes, br.Class)
		}
	}
	if len(classes) != 2 || classes[0] != BranchDivergent || classes[1] != BranchUniform {
		t.Fatalf("branch classes = %v, want [divergent uniform]", classes)
	}
}

func TestConstantBranchPrunesBlock(t *testing.T) {
	r := analyze(t, `
mov.u32 %r1, 5;
setp.lt.s32 %p1, %r1, 3;
@%p1 bra DEAD;
bra.uni EXIT;
DEAD:
mov.u32 %r2, 1;
EXIT:
ret;
`)
	var constBranches int
	for _, br := range r.Branch {
		if br.Const {
			constBranches++
			if br.Taken {
				t.Fatalf("5<3 guard must be not-taken, got %+v", br)
			}
		}
	}
	if constBranches != 1 {
		t.Fatalf("const branches = %d, want 1", constBranches)
	}
	unreached := 0
	for bi, ok := range r.Reached {
		if !ok {
			unreached++
			if want := "%r2"; r.Entry[bi] != nil {
				t.Fatalf("unreached block %d (%s def) has entry state", bi, want)
			}
		}
	}
	if unreached != 1 {
		t.Fatalf("unreached blocks = %d, want exactly the pruned one", unreached)
	}
}

func TestLoopWideningConverges(t *testing.T) {
	r := analyze(t, `
mov.u32 %r1, 0;
LOOP:
add.s32 %r1, %r1, 1;
setp.lt.s32 %p1, %r1, 363;
@%p1 bra LOOP;
ret;
`)
	if r.Widenings == 0 {
		t.Fatalf("loop analysis performed no widening (iterations=%d)", r.Iterations)
	}
	// The loop-header entry value of the counter must cover every
	// concrete iterate yet stay uniform (the counter is not
	// thread-dependent), and the exit test must not look constant.
	var headerVal Value
	found := false
	for bi := range r.Reached {
		if v, ok := r.EntryValue(bi, "%r1"); ok && r.Branch[bi].Class != BranchNone {
			headerVal, found = v, true
		}
	}
	if !found {
		t.Fatal("no loop block with a classified branch")
	}
	if !headerVal.Uniform() {
		t.Fatalf("loop counter became thread-dependent: %+v", headerVal)
	}
	if !headerVal.B.Contains(0) || !headerVal.B.Contains(362) {
		t.Fatalf("loop counter interval %v does not cover the iterates", headerVal.B)
	}
	for _, br := range r.Branch {
		if br.Const {
			t.Fatalf("loop exit test must not be constant after widening: %+v", br)
		}
	}
}

func TestUndefUseDetected(t *testing.T) {
	r := analyze(t, `
add.s32 %r1, %r9, 1;
ret;
`)
	if len(r.UndefUses) != 1 || r.UndefUses[0].Reg != "%r9" || r.UndefUses[0].Line != 0 {
		t.Fatalf("undef uses = %+v, want [%%r9 at 0]", r.UndefUses)
	}
}

func TestPredicatedDefStaysMaybeUndef(t *testing.T) {
	// A definition under a guard may not execute; a later read is still
	// a possibly-undefined use.
	r := analyze(t, `
mov.u32 %r1, %tid.x;
setp.lt.s32 %p1, %r1, 4;
@%p1 mov.u32 %r2, 7;
add.s32 %r3, %r2, 1;
ret;
`)
	found := false
	for _, u := range r.UndefUses {
		if u.Reg == "%r2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("predicated-only def must leave a maybe-undef use, got %+v", r.UndefUses)
	}
}

func TestSelpTaint(t *testing.T) {
	// selp on a thread-dependent predicate of two distinct constants is
	// thread-dependent even though both arms are uniform.
	r := analyze(t, `
mov.u32 %r1, %tid.x;
setp.lt.s32 %p1, %r1, 4;
selp.b32 %r2, 1, 2, %p1;
mul.wide.s32 %rd1, %r2, 4;
ld.global.f32 %f1, [%rd1];
ret;
`)
	if len(r.Accesses) != 1 || r.Accesses[0].Class != CoalUnknown {
		t.Fatalf("accesses = %+v, want one unknown-stride load", r.Accesses)
	}
}

func TestIterationsBounded(t *testing.T) {
	k, g := parseKernel(t, `
mov.u32 %r1, 0;
A:
add.s32 %r1, %r1, 1;
setp.lt.s32 %p1, %r1, 10;
@%p1 bra A;
mov.u32 %r2, 0;
B:
add.s32 %r2, %r2, 3;
add.s32 %r1, %r1, %r2;
setp.lt.s32 %p2, %r2, 100;
@%p2 bra B;
ret;
`)
	r := Analyze(k, g)
	if !r.Converged {
		t.Fatal("nested-sequence loops did not converge")
	}
	if cap := iterCap(len(g.Blocks)); r.Iterations >= cap {
		t.Fatalf("iterations %d at cap %d", r.Iterations, cap)
	}
}
