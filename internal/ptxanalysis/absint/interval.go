package absint

import (
	"fmt"
	"math"
)

// The interval component of the lattice. Bounds saturate at the int64
// limits, which double as -inf/+inf; every operation is conservative
// (the result interval contains every concretely reachable value).

// NegInf and PosInf are the saturated bounds standing in for the
// unbounded ends of an interval.
const (
	NegInf = math.MinInt64
	PosInf = math.MaxInt64
)

// Interval is the inclusive range [Lo, Hi] of an abstract integer.
// Lo > Hi never occurs in a normalized interval.
type Interval struct {
	Lo, Hi int64
}

// Top is the unbounded interval.
func Top() Interval { return Interval{NegInf, PosInf} }

// Const is the singleton interval [v, v].
func Const(v int64) Interval { return Interval{v, v} }

// IsTop reports whether the interval is unbounded on both ends.
func (iv Interval) IsTop() bool { return iv.Lo == NegInf && iv.Hi == PosInf }

// IsConst reports whether the interval is a singleton, returning its value.
func (iv Interval) IsConst() (int64, bool) { return iv.Lo, iv.Lo == iv.Hi }

// Eq reports exact structural equality.
func (iv Interval) Eq(o Interval) bool { return iv.Lo == o.Lo && iv.Hi == o.Hi }

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v int64) bool { return iv.Lo <= v && v <= iv.Hi }

// Join is the least upper bound (interval hull).
func (iv Interval) Join(o Interval) Interval {
	return Interval{minI(iv.Lo, o.Lo), maxI(iv.Hi, o.Hi)}
}

// Widen escapes any bound that grew since prev to infinity, guaranteeing
// the ascending chain stabilizes.
func (iv Interval) Widen(next Interval) Interval {
	w := next
	if next.Lo < iv.Lo {
		w.Lo = NegInf
	}
	if next.Hi > iv.Hi {
		w.Hi = PosInf
	}
	return w
}

func (iv Interval) String() string {
	lo, hi := "-inf", "+inf"
	if iv.Lo != NegInf {
		lo = fmt.Sprint(iv.Lo)
	}
	if iv.Hi != PosInf {
		hi = fmt.Sprint(iv.Hi)
	}
	return "[" + lo + "," + hi + "]"
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// satAdd adds with saturation; an infinite operand dominates.
func satAdd(a, b int64) int64 {
	if a == PosInf || b == PosInf {
		return PosInf
	}
	if a == NegInf || b == NegInf {
		return NegInf
	}
	s := a + b
	// Overflow iff the operands share a sign the sum lost.
	if a > 0 && b > 0 && s < 0 {
		return PosInf
	}
	if a < 0 && b < 0 && s >= 0 {
		return NegInf
	}
	return s
}

// satMul multiplies with saturation, treating the infinities by sign
// (0 * inf saturates conservatively rather than being 0: the infinity
// arose from widening, so the concrete factor is unknown).
func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		if a == NegInf || a == PosInf || b == NegInf || b == PosInf {
			return 0 // exact zero annihilates even a widened bound
		}
		return 0
	}
	neg := (a < 0) != (b < 0)
	if a == NegInf || a == PosInf || b == NegInf || b == PosInf {
		if neg {
			return NegInf
		}
		return PosInf
	}
	p := a * b
	if p/b != a || (a == math.MinInt64 && b == -1) {
		if neg {
			return NegInf
		}
		return PosInf
	}
	return p
}

// Add returns the interval sum.
func (iv Interval) Add(o Interval) Interval {
	return Interval{satAdd(iv.Lo, o.Lo), satAdd(iv.Hi, o.Hi)}
}

// Sub returns the interval difference.
func (iv Interval) Sub(o Interval) Interval {
	return Interval{satAdd(iv.Lo, satNeg(o.Hi)), satAdd(iv.Hi, satNeg(o.Lo))}
}

// Neg returns the negated interval.
func (iv Interval) Neg() Interval {
	return Interval{satNeg(iv.Hi), satNeg(iv.Lo)}
}

func satNeg(a int64) int64 {
	switch a {
	case NegInf:
		return PosInf
	case PosInf:
		return NegInf
	default:
		return -a
	}
}

// Mul returns the interval product (hull of the corner products).
func (iv Interval) Mul(o Interval) Interval {
	c := [4]int64{
		satMul(iv.Lo, o.Lo), satMul(iv.Lo, o.Hi),
		satMul(iv.Hi, o.Lo), satMul(iv.Hi, o.Hi),
	}
	out := Interval{c[0], c[0]}
	for _, v := range c[1:] {
		out.Lo = minI(out.Lo, v)
		out.Hi = maxI(out.Hi, v)
	}
	return out
}

// MinI / MaxI are the interval min and max.
func (iv Interval) MinI(o Interval) Interval {
	return Interval{minI(iv.Lo, o.Lo), minI(iv.Hi, o.Hi)}
}

func (iv Interval) MaxI(o Interval) Interval {
	return Interval{maxI(iv.Lo, o.Lo), maxI(iv.Hi, o.Hi)}
}
