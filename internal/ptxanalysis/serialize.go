package ptxanalysis

import (
	"encoding/json"
	"fmt"
)

// Persistent serialization of analysis artifacts. A persisted
// KernelAnalysis is a reduced view: the heavyweight in-memory
// structures (CFG, dominator trees, liveness, the absint fixpoint) are
// deliberately dropped — every consumer outside this package reads only
// the plain summary fields kept here, and module aggregation treats the
// dropped pointers as optional, so a disk-loaded analysis behaves
// exactly like a fresh one on the serving path at a fraction of the
// bytes. Bump kernelAnalysisVersion when the persisted shape changes.

const kernelAnalysisVersion = 1

type kernelAnalysisJSON struct {
	Version      int             `json:"version"`
	Kernel       string          `json:"kernel"`
	Static       int             `json:"static"`
	MaxLoopDepth int             `json:"max_loop_depth"`
	Pressure     Pressure        `json:"pressure"`
	Mix          Mix             `json:"mix"`
	Blocks       []BlockFeatures `json:"blocks,omitempty"`
	Diags        []Diag          `json:"diags,omitempty"`
}

// MarshalKernelAnalysis serialises the persistable view of a.
func MarshalKernelAnalysis(a *KernelAnalysis) ([]byte, error) {
	if a == nil {
		return nil, fmt.Errorf("ptxanalysis: cannot marshal a nil analysis")
	}
	return json.Marshal(kernelAnalysisJSON{
		Version:      kernelAnalysisVersion,
		Kernel:       a.Kernel,
		Static:       a.Static,
		MaxLoopDepth: a.MaxLoopDepth,
		Pressure:     a.Pressure,
		Mix:          a.Mix,
		Blocks:       a.Blocks,
		Diags:        a.Diags,
	})
}

// UnmarshalKernelAnalysis reconstructs a persisted analysis. The result
// carries nil CFG/Dom/PostDom/Loops/Live/Abs, like the reduced views
// already flowing through the pipeline.
func UnmarshalKernelAnalysis(b []byte) (*KernelAnalysis, error) {
	var j kernelAnalysisJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return nil, fmt.Errorf("ptxanalysis: decoding analysis: %w", err)
	}
	if j.Version != kernelAnalysisVersion {
		return nil, fmt.Errorf("ptxanalysis: unsupported analysis version %d (want %d)", j.Version, kernelAnalysisVersion)
	}
	if j.Static < 0 || j.MaxLoopDepth < 0 {
		return nil, fmt.Errorf("ptxanalysis: corrupt analysis payload")
	}
	return &KernelAnalysis{
		Kernel:       j.Kernel,
		Static:       j.Static,
		MaxLoopDepth: j.MaxLoopDepth,
		Pressure:     j.Pressure,
		Mix:          j.Mix,
		Blocks:       j.Blocks,
		Diags:        j.Diags,
	}, nil
}

const diagsVersion = 1

type diagsJSON struct {
	Version int    `json:"version"`
	Diags   []Diag `json:"diags"`
}

// MarshalDiags serialises a lint result (which may be empty but not
// nil-ambiguous: an empty slice round-trips as empty).
func MarshalDiags(diags []Diag) ([]byte, error) {
	if diags == nil {
		diags = []Diag{}
	}
	return json.Marshal(diagsJSON{Version: diagsVersion, Diags: diags})
}

// UnmarshalDiags reconstructs a persisted lint result.
func UnmarshalDiags(b []byte) ([]Diag, error) {
	var j diagsJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return nil, fmt.Errorf("ptxanalysis: decoding diags: %w", err)
	}
	if j.Version != diagsVersion {
		return nil, fmt.Errorf("ptxanalysis: unsupported diags version %d (want %d)", j.Version, diagsVersion)
	}
	if j.Diags == nil {
		j.Diags = []Diag{}
	}
	return j.Diags, nil
}
