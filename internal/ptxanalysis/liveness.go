package ptxanalysis

import (
	"sort"
	"strings"

	"cnnperf/internal/ptx"
	"cnnperf/internal/ptx/cfg"
)

// uses returns the virtual registers an instruction reads: its source
// operands (including address registers of memory references) plus its
// guard predicate.
func uses(in ptx.Instruction) []string {
	var out []string
	for _, src := range in.Sources() {
		if r := ptx.RegOperand(src); r != "" {
			out = append(out, r)
		}
	}
	if in.Pred != "" {
		out = append(out, in.Pred)
	}
	// Stores and branches have no destination, but a memory *destination*
	// operand of a store is already covered by Sources. For instructions
	// with a destination, a memory reference cannot be Operands[0] in our
	// subset, so nothing is missed.
	return out
}

// def returns the virtual register an instruction writes, or "".
func def(in ptx.Instruction) string { return in.Dest() }

// Liveness holds the per-block live-variable solution and the derived
// def-use facts of one kernel.
type Liveness struct {
	// LiveIn[b] is the set of registers live on entry to block b.
	LiveIn []map[string]bool
	// LiveOut[b] is the set of registers live on exit from block b.
	LiveOut []map[string]bool
	// DefUse maps a defining instruction index to the indices of
	// instructions that may consume its value (conservative: all uses of
	// the defined register anywhere in the kernel).
	DefUse map[int][]int
	// UseBeforeDef maps each register that may be read before any
	// definition to the index of its first reading instruction.
	UseBeforeDef map[string]int
	// DeadDefs are indices of instructions whose destination register is
	// not live immediately after the definition (dead stores). Predicated
	// definitions are excluded: they may deliberately leave the previous
	// value in place.
	DeadDefs []int
}

// ComputeLiveness solves backward live-variable dataflow over the CFG:
//
//	LiveOut[b] = union of LiveIn[s] over successors s of b
//	LiveIn[b]  = use[b] ∪ (LiveOut[b] − def[b])
//
// iterated to a fixpoint, then walks each block backwards to derive
// use-before-def, dead definitions and def-use chains.
func ComputeLiveness(k *ptx.Kernel, g *cfg.Graph) *Liveness {
	n := len(g.Blocks)
	useB := make([]map[string]bool, n)
	defB := make([]map[string]bool, n)
	for bi, b := range g.Blocks {
		u := make(map[string]bool)
		d := make(map[string]bool)
		for i := b.Start; i < b.End; i++ {
			in := k.Body[i]
			for _, r := range uses(in) {
				if !d[r] {
					u[r] = true
				}
			}
			// A guarded definition is a may-def: when the predicate is
			// false the old value flows through, so it must not kill
			// liveness (else an upstream use-before-def is masked and an
			// upstream store is wrongly declared dead).
			if r := def(in); r != "" && in.Pred == "" {
				d[r] = true
			}
		}
		useB[bi], defB[bi] = u, d
	}

	lv := &Liveness{
		LiveIn:       make([]map[string]bool, n),
		LiveOut:      make([]map[string]bool, n),
		DefUse:       make(map[int][]int),
		UseBeforeDef: make(map[string]int),
	}
	for i := 0; i < n; i++ {
		lv.LiveIn[i] = make(map[string]bool)
		lv.LiveOut[i] = make(map[string]bool)
	}
	for changed := true; changed; {
		changed = false
		for bi := n - 1; bi >= 0; bi-- {
			out := lv.LiveOut[bi]
			for _, s := range g.Blocks[bi].Succs {
				for r := range lv.LiveIn[s] {
					if !out[r] {
						out[r] = true
						changed = true
					}
				}
			}
			in := lv.LiveIn[bi]
			for r := range useB[bi] {
				if !in[r] {
					in[r] = true
					changed = true
				}
			}
			for r := range out {
				if !defB[bi][r] && !in[r] {
					in[r] = true
					changed = true
				}
			}
		}
	}

	// Use-before-def: registers live into the entry block have a path
	// from kernel entry to a read with no prior write. Attribute each to
	// its first reading instruction.
	for r := range lv.LiveIn[0] {
		lv.UseBeforeDef[r] = -1
	}
	if len(lv.UseBeforeDef) > 0 {
	scan:
		for i, in := range k.Body {
			for _, r := range uses(in) {
				if at, tracked := lv.UseBeforeDef[r]; tracked && at < 0 {
					lv.UseBeforeDef[r] = i
					for _, v := range lv.UseBeforeDef {
						if v < 0 {
							continue scan
						}
					}
					break scan
				}
			}
		}
	}

	// Def-use chains (conservative, flow-insensitive over defs).
	defsOf := make(map[string][]int)
	for i, in := range k.Body {
		if r := def(in); r != "" {
			defsOf[r] = append(defsOf[r], i)
		}
	}
	for i, in := range k.Body {
		for _, r := range uses(in) {
			for _, d := range defsOf[r] {
				if d != i {
					lv.DefUse[d] = append(lv.DefUse[d], i)
				}
			}
		}
	}
	for d := range lv.DefUse {
		sort.Ints(lv.DefUse[d])
		lv.DefUse[d] = dedupSorted(lv.DefUse[d])
	}

	// Dead definitions: walk each block backwards from its live-out set.
	for bi, b := range g.Blocks {
		live := make(map[string]bool, len(lv.LiveOut[bi]))
		for r := range lv.LiveOut[bi] {
			live[r] = true
		}
		for i := b.End - 1; i >= b.Start; i-- {
			in := k.Body[i]
			if r := def(in); r != "" {
				if !live[r] && in.Pred == "" {
					lv.DeadDefs = append(lv.DeadDefs, i)
				}
				// Only an unguarded definition kills the value flowing
				// from above; a may-def leaves it observable.
				if in.Pred == "" {
					delete(live, r)
				}
			}
			for _, r := range uses(in) {
				live[r] = true
			}
		}
	}
	sort.Ints(lv.DeadDefs)
	return lv
}

func dedupSorted(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Pressure is the static register pressure of one kernel: the maximum
// number of simultaneously live virtual registers at any program point.
type Pressure struct {
	// ByType maps a register type (".pred", ".b32", ".b64", ".f32") to
	// its maximum simultaneous live count.
	ByType map[string]int
	// Total is the maximum live count across all types at one point.
	Total int
}

// regType resolves a register's declared type via the kernel's register
// banks, falling back to the conventional prefixes of compiled PTX.
func regType(k *ptx.Kernel, reg string) string {
	best := ""
	for _, rd := range k.Regs {
		if strings.HasPrefix(reg, rd.Prefix) && len(rd.Prefix) > len(best) {
			best = rd.Type
		}
	}
	if best != "" {
		return best
	}
	switch {
	case strings.HasPrefix(reg, "%p"):
		return ".pred"
	case strings.HasPrefix(reg, "%rd"):
		return ".b64"
	case strings.HasPrefix(reg, "%f"):
		return ".f32"
	default:
		return ".b32"
	}
}

// ComputePressure measures the maximum live-register counts per register
// type by replaying each block backwards from its live-out set.
func ComputePressure(k *ptx.Kernel, g *cfg.Graph, lv *Liveness) Pressure {
	p := Pressure{ByType: make(map[string]int)}
	measure := func(live map[string]bool) {
		if len(live) > p.Total {
			p.Total = len(live)
		}
		counts := make(map[string]int)
		for r := range live {
			counts[regType(k, r)]++
		}
		for t, c := range counts {
			if c > p.ByType[t] {
				p.ByType[t] = c
			}
		}
	}
	for bi, b := range g.Blocks {
		live := make(map[string]bool, len(lv.LiveOut[bi]))
		for r := range lv.LiveOut[bi] {
			live[r] = true
		}
		measure(live)
		for i := b.End - 1; i >= b.Start; i-- {
			in := k.Body[i]
			// Mirror the liveness kill rule: a guarded definition may
			// preserve the incoming value, which therefore stays live
			// (and counted) across it.
			if r := def(in); r != "" && in.Pred == "" {
				delete(live, r)
			}
			for _, r := range uses(in) {
				live[r] = true
			}
			measure(live)
		}
	}
	return p
}
