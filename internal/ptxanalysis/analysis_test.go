package ptxanalysis

import (
	"testing"

	"cnnperf/internal/ptx"
	"cnnperf/internal/ptx/cfg"
)

// parseKernel wraps a body in a minimal module and returns its kernel.
func parseKernel(t *testing.T, body string) *ptx.Kernel {
	t.Helper()
	src := ".version 6.0\n.target sm_61\n.address_size 64\n" +
		".visible .entry k(\n.param .u64 k_param_0\n)\n{\n" + body + "\n}\n"
	m, err := ptx.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m.Kernels[0]
}

// diamond is the canonical if/else kernel:
//
//	b0: entry + conditional branch, b1: else, b2: then, b3: join.
const diamondBody = `
	mov.u32 %r1, %tid.x;
	setp.lt.s32 %p1, %r1, 8;
	@%p1 bra THEN;
	mov.u32 %r2, 1;
	bra.uni JOIN;
THEN:
	mov.u32 %r2, 2;
JOIN:
	add.s32 %r3, %r2, %r1;
	st.global.u32 [%rd1], %r3;
	ret;
`

func TestDominatorsDiamond(t *testing.T) {
	k := parseKernel(t, diamondBody)
	g, err := cfg.Build(k)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(g.Blocks))
	}
	dom := Dominators(g)
	// The entry immediately dominates every block; the join is dominated
	// by neither arm.
	want := []int{0, 0, 0, 0}
	for b, w := range want {
		if dom.Idom[b] != w {
			t.Errorf("idom[%d] = %d, want %d", b, dom.Idom[b], w)
		}
	}
	if !dom.Dominates(0, 3) || dom.Dominates(1, 3) || dom.Dominates(2, 3) {
		t.Error("diamond dominance wrong")
	}
	// Post-dominators: the join post-dominates everything; the arms
	// post-dominate nothing but themselves.
	pdom := PostDominators(g)
	if !pdom.Dominates(3, 0) {
		t.Error("join should post-dominate the entry")
	}
	if pdom.Dominates(1, 0) || pdom.Dominates(2, 0) {
		t.Error("arms must not post-dominate the entry")
	}
}

const loopBody = `
	mov.u32 %r1, 0;
LOOP:
	add.s32 %r1, %r1, 1;
	setp.lt.s32 %p1, %r1, 16;
	@%p1 bra LOOP;
	ret;
`

func TestNaturalLoopSimple(t *testing.T) {
	k := parseKernel(t, loopBody)
	g, err := cfg.Build(k)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	dom := Dominators(g)
	loops := NaturalLoops(g, dom)
	if len(loops) != 1 {
		t.Fatalf("loops = %+v, want 1", loops)
	}
	l := loops[0]
	if l.Header != 1 || l.Depth != 1 || len(l.Blocks) != 1 || l.Blocks[0] != 1 {
		t.Errorf("loop = %+v", l)
	}
}

const nestedLoopBody = `
	mov.u32 %r1, 0;
OUTER:
	mov.u32 %r2, 0;
INNER:
	add.s32 %r2, %r2, 1;
	setp.lt.s32 %p1, %r2, 8;
	@%p1 bra INNER;
	add.s32 %r1, %r1, 1;
	setp.lt.s32 %p2, %r1, 4;
	@%p2 bra OUTER;
	ret;
`

func TestNaturalLoopNesting(t *testing.T) {
	k := parseKernel(t, nestedLoopBody)
	g, err := cfg.Build(k)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	dom := Dominators(g)
	loops := NaturalLoops(g, dom)
	if len(loops) != 2 {
		t.Fatalf("loops = %+v, want 2", loops)
	}
	var inner, outer *Loop
	for i := range loops {
		switch loops[i].Depth {
		case 1:
			outer = &loops[i]
		case 2:
			inner = &loops[i]
		}
	}
	if outer == nil || inner == nil {
		t.Fatalf("depths wrong: %+v", loops)
	}
	if !outer.Contains(inner.Header) {
		t.Error("outer loop must contain the inner header")
	}
	a, err := AnalyzeKernel(k)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if a.MaxLoopDepth != 2 {
		t.Errorf("max loop depth = %d, want 2", a.MaxLoopDepth)
	}
	if HasErrors(a.Diags) {
		t.Errorf("clean nested loop produced errors: %v", a.Diags)
	}
}

func TestAnalyzeKernelEmptyAndNil(t *testing.T) {
	if _, err := AnalyzeKernel(nil); err == nil {
		t.Error("nil kernel should error")
	}
	a, err := AnalyzeKernel(&ptx.Kernel{Name: "empty"})
	if err != nil {
		t.Fatalf("empty kernel: %v", err)
	}
	if len(a.Diags) != 1 || a.Diags[0].Code != CodeEmptyKernel {
		t.Errorf("diags = %v, want one %s", a.Diags, CodeEmptyKernel)
	}
	if HasErrors(a.Diags) {
		t.Error("empty kernel is a warning, not an error")
	}
}

func TestAnalyzeModuleAggregates(t *testing.T) {
	src := ".version 6.0\n.target sm_61\n.address_size 64\n" +
		".visible .entry a(\n.param .u64 a_param_0\n)\n{\n" + loopBody + "\n}\n" +
		".visible .entry b(\n.param .u64 b_param_0\n)\n{\n" + nestedLoopBody + "\n}\n"
	m, err := ptx.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ma, err := AnalyzeModule(m)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if len(ma.Kernels) != 2 {
		t.Fatalf("kernels = %d", len(ma.Kernels))
	}
	if ma.MaxLoopDepth != 2 {
		t.Errorf("module max loop depth = %d, want 2", ma.MaxLoopDepth)
	}
	if ma.StaticInstructions != len(m.Kernels[0].Body)+len(m.Kernels[1].Body) {
		t.Error("static instruction total wrong")
	}
	f := ma.Features()
	if len(f) != len(FeatureNames) {
		t.Fatalf("features = %d, names = %d", len(f), len(FeatureNames))
	}
	if f[2] != 2 { // static_max_loop_depth
		t.Errorf("loop-depth feature = %f, want 2", f[2])
	}
	for i, v := range f {
		if v < 0 {
			t.Errorf("feature %s negative: %f", FeatureNames[i], v)
		}
	}
}
