package ptxanalysis

import (
	"cnnperf/internal/ptx"
	"cnnperf/internal/ptx/cfg"
	"cnnperf/internal/ptxanalysis/absint"
)

// BlockFeatures is the static feature vector of one basic block: the
// instruction mix, the divergence class of its terminating branch, the
// coalescing classes of its memory accesses and the live-register
// pressure at its entry. Joined with per-block execution counts from
// the dynamic code analysis, these aggregate into the kernel-level
// BB features behind core.Config.BBFeatures (the BB-ML direction of
// arXiv 2202.07798; see DESIGN.md §11).
type BlockFeatures struct {
	// Block is the CFG block index; the body range is [Start, End).
	Block, Start, End int
	// Instructions is End - Start.
	Instructions int
	// PerClass counts the block's instructions per execution class.
	PerClass [ptx.NumClasses]int
	// Branch is the divergence class of the terminating guarded branch
	// (BranchNone when the block falls through or branches unguarded).
	Branch absint.BranchClass
	// GlobalAccesses counts global-space loads and stores, split by
	// coalescing class: Coalesced (uniform or unit-stride), Strided
	// (known stride beyond the element size) and Unknown.
	GlobalAccesses, CoalescedGlobal, StridedGlobal, UnknownGlobal int
	// SharedAccesses counts shared-space accesses; ConflictedShared the
	// subset with a provable bank conflict (>= 2-way).
	SharedAccesses, ConflictedShared int
	// SumAbsStrideBytes accumulates |stride| over the known-stride
	// global accesses (so means can be execution-weighted later).
	SumAbsStrideBytes int64
	// KnownStrideGlobal counts the accesses behind SumAbsStrideBytes.
	KnownStrideGlobal int
	// LiveIn is the number of registers live on entry.
	LiveIn int
	// Reached is false for blocks the abstract interpreter proves
	// unreachable for every parameter and thread assignment.
	Reached bool
}

// computeBlockFeatures joins the CFG, the liveness solution and the
// abstract-interpretation facts into one feature record per block.
func computeBlockFeatures(k *ptx.Kernel, g *cfg.Graph, live *Liveness, abs *absint.Result) []BlockFeatures {
	out := make([]BlockFeatures, len(g.Blocks))
	for bi, b := range g.Blocks {
		bf := &out[bi]
		bf.Block, bf.Start, bf.End = bi, b.Start, b.End
		bf.Instructions = b.End - b.Start
		for i := b.Start; i < b.End; i++ {
			bf.PerClass[k.Body[i].Class()]++
		}
		bf.Branch = abs.Branch[bi].Class
		bf.LiveIn = len(live.LiveIn[bi])
		bf.Reached = abs.Reached[bi]
	}
	for _, acc := range abs.Accesses {
		bf := &out[acc.Block]
		switch acc.Space {
		case absint.SpaceGlobal:
			bf.GlobalAccesses++
			switch acc.Class {
			case absint.CoalUniform, absint.CoalCoalesced:
				bf.CoalescedGlobal++
			case absint.CoalStrided:
				bf.StridedGlobal++
			default:
				bf.UnknownGlobal++
			}
			if acc.StrideKnown {
				s := acc.StrideBytes
				if s < 0 {
					s = -s
				}
				bf.SumAbsStrideBytes += s
				bf.KnownStrideGlobal++
			}
		case absint.SpaceShared:
			bf.SharedAccesses++
			if acc.ConflictWays >= 2 {
				bf.ConflictedShared++
			}
		}
	}
	return out
}
