package ptxanalysis

import (
	"encoding/json"
	"strings"
	"testing"

	"cnnperf/internal/ptx"
	"cnnperf/internal/ptxgen"
	"cnnperf/internal/zoo"
)

func codes(diags []Diag) map[string]int {
	out := make(map[string]int)
	for _, d := range diags {
		out[d.Code]++
	}
	return out
}

func findDiag(diags []Diag, code string) *Diag {
	for i := range diags {
		if diags[i].Code == code {
			return &diags[i]
		}
	}
	return nil
}

func TestLintUseBeforeDef(t *testing.T) {
	k := parseKernel(t, `
	add.s32 %r2, %r5, 1;
	st.global.u32 [%rd1], %r2;
	ret;
`)
	diags := LintKernel(k)
	if !HasErrors(diags) {
		t.Fatalf("want errors, got %v", diags)
	}
	c := codes(diags)
	if c[CodeUseBeforeDef] != 2 { // %r5 and %rd1
		t.Fatalf("use-before-def count = %d, want 2 (%v)", c[CodeUseBeforeDef], diags)
	}
	d := findDiag(diags, CodeUseBeforeDef)
	if d.Severity != SevError || d.Kernel != "k" {
		t.Errorf("diag = %+v", *d)
	}
	if !strings.Contains(d.Msg, "%r5") && !strings.Contains(d.Msg, "%rd1") {
		t.Errorf("msg does not name the register: %q", d.Msg)
	}
}

func TestLintDeadStore(t *testing.T) {
	k := parseKernel(t, `
	ld.param.u64 %rd1, [k_param_0];
	mov.u32 %r1, %tid.x;
	mov.u32 %r2, 5;
	st.global.u32 [%rd1], %r1;
	ret;
`)
	diags := LintKernel(k)
	if HasErrors(diags) {
		t.Fatalf("unexpected errors: %v", diags)
	}
	d := findDiag(diags, CodeDeadStore)
	if d == nil {
		t.Fatalf("no dead-store diagnostic in %v", diags)
	}
	if d.Line != 2 || d.Severity != SevWarning {
		t.Errorf("dead store = %+v, want line 2 warning", *d)
	}
	if !strings.Contains(d.Msg, "%r2") {
		t.Errorf("msg does not name %%r2: %q", d.Msg)
	}
}

func TestLintUnreachableBlock(t *testing.T) {
	k := parseKernel(t, `
	ret;
	mov.u32 %r1, 0;
	ret;
`)
	diags := LintKernel(k)
	d := findDiag(diags, CodeUnreachable)
	if d == nil {
		t.Fatalf("no unreachable diagnostic in %v", diags)
	}
	if d.Line != 1 || d.Severity != SevWarning {
		t.Errorf("unreachable = %+v, want line 1 warning", *d)
	}
}

// TestLintBranchIntoLoop: block 0 jumps to INSIDE, which sits inside the
// lexical back-edge interval LOOP..(bra LOOP) without being its header.
func TestLintBranchIntoLoop(t *testing.T) {
	k := parseKernel(t, `
	mov.u32 %r1, 0;
	setp.eq.s32 %p2, %r1, 0;
	@%p2 bra INSIDE;
LOOP:
	add.s32 %r1, %r1, 1;
INSIDE:
	setp.lt.s32 %p1, %r1, 16;
	@%p1 bra LOOP;
	ret;
`)
	diags := LintKernel(k)
	if HasErrors(diags) {
		t.Fatalf("unexpected errors: %v", diags)
	}
	d := findDiag(diags, CodeBranchIntoLoop)
	if d == nil {
		t.Fatalf("no branch-into-loop diagnostic in %v", diags)
	}
	if d.Line != 2 {
		t.Errorf("anchor line = %d, want 2 (the entering branch)", d.Line)
	}
	// The same shape is also irreducible: the header no longer dominates
	// the back-edge source.
	if findDiag(diags, CodeIrreducibleLoop) == nil {
		t.Errorf("expected an irreducible-loop diagnostic too, got %v", diags)
	}
}

// TestLintBarrierDivergent: a bar.sync on only one arm of a branch does
// not post-dominate the entry, so threads of the block can disagree on
// reaching it.
func TestLintBarrierDivergent(t *testing.T) {
	k := parseKernel(t, `
	mov.u32 %r1, %tid.x;
	setp.lt.s32 %p1, %r1, 8;
	@%p1 bra SKIP;
	bar.sync 0;
SKIP:
	ret;
`)
	diags := LintKernel(k)
	d := findDiag(diags, CodeBarrierDivergent)
	if d == nil {
		t.Fatalf("no barrier diagnostic in %v", diags)
	}
	if d.Line != 3 || d.Severity != SevWarning {
		t.Errorf("barrier diag = %+v, want line 3 warning", *d)
	}

	// Control: a barrier every thread reaches is clean.
	clean := parseKernel(t, `
	mov.u32 %r1, %tid.x;
	bar.sync 0;
	ret;
`)
	if findDiag(LintKernel(clean), CodeBarrierDivergent) != nil {
		t.Error("unconditional barrier flagged")
	}
}

func TestLintMalformedKernel(t *testing.T) {
	// A branch to a label that was never placed cannot be parsed into a
	// CFG; Lint must degrade to a PTXA008 error, not panic.
	k := &ptx.Kernel{Name: "broken"}
	k.Body = append(k.Body, ptx.Instruction{Opcode: "bra", Operands: []string{"NOWHERE"}})
	diags := LintKernel(k)
	if len(diags) != 1 || diags[0].Code != CodeMalformed || diags[0].Severity != SevError {
		t.Fatalf("diags = %v, want one %s error", diags, CodeMalformed)
	}
}

func TestDiagJSONAndString(t *testing.T) {
	d := Diag{Severity: SevError, Kernel: "k", Line: 3, Code: CodeUseBeforeDef, Msg: "m"}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"severity":"error"`) {
		t.Errorf("json = %s", b)
	}
	var back map[string]any
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back["code"] != "PTXA001" {
		t.Errorf("round trip = %v", back)
	}
	if got := d.String(); got != "k:3: error PTXA001: m" {
		t.Errorf("String() = %q", got)
	}
}

// TestZooModulesLintClean is the acceptance gate: every model of the zoo,
// under every convolution lowering, must compile to PTX with zero
// error-severity diagnostics.
func TestZooModulesLintClean(t *testing.T) {
	names := zoo.Names()
	if testing.Short() {
		names = names[:4]
	}
	lowerings := []ptxgen.ConvLowering{ptxgen.ImplicitGEMM, ptxgen.Im2colGEMM, ptxgen.TiledGEMM}
	for _, name := range names {
		m, err := zoo.Build(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, low := range lowerings {
			prog, err := ptxgen.Compile(m, ptxgen.Options{Lowering: low, Batch: 4, FuseElementwise: true})
			if err != nil {
				t.Fatalf("%s lowering %d: %v", name, low, err)
			}
			diags := Lint(prog.Module)
			if errs := Errors(diags); len(errs) > 0 {
				for _, d := range errs[:min(len(errs), 5)] {
					t.Errorf("%s lowering %d: %s", name, low, d)
				}
				t.Fatalf("%s lowering %d: %d error diagnostics", name, low, len(errs))
			}
		}
	}
}
