package ptxanalysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"cnnperf/internal/ptx"
)

// fixtureModule exercises every abstract-interpretation lint code on one
// crafted kernel per code. Kernel names sort in the order the module-
// level contract must emit them.
const fixtureModule = `
.version 6.0
.target sm_61
.address_size 64

.visible .entry bank()
{
	mov.u32 %r1, %tid.x;
	mul.wide.s32 %rd1, %r1, 8;
	ld.shared.f32 %f1, [%rd1];
	st.global.f32 [%rd1], %f1;
	ret;
}

.visible .entry constbr()
{
	mov.u32 %r1, 5;
	setp.lt.s32 %p1, %r1, 3;
	@%p1 bra DEAD;
	ret;
DEAD:
	mov.u32 %r2, 1;
	ret;
}

.visible .entry divbar()
{
	mov.u32 %r1, %tid.x;
	setp.lt.s32 %p1, %r1, 16;
	@%p1 bra SKIP;
	bar.sync 0;
SKIP:
	ret;
}

.visible .entry hoist(
.param .u64 p0
)
{
	ld.param.u64 %rd1, [p0];
	mov.u32 %r1, 0;
L:
	ld.global.f32 %f1, [%rd1];
	st.global.f32 [%rd1], %f1;
	add.s32 %r1, %r1, 1;
	setp.lt.s32 %p1, %r1, 16;
	@%p1 bra L;
	ret;
}

.visible .entry strided(
.param .u64 p0
)
{
	ld.param.u64 %rd1, [p0];
	mov.u32 %r1, %tid.x;
	mul.wide.s32 %rd2, %r1, 64;
	add.s64 %rd3, %rd1, %rd2;
	ld.global.f32 %f1, [%rd3];
	st.global.f32 [%rd3], %f1;
	ret;
}
`

func lintFixture(t *testing.T) []Diag {
	t.Helper()
	m, err := ptx.Parse(fixtureModule)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	return Lint(m)
}

// TestAbsintLintCodes checks each PTXA009-PTXA014 code fires on its
// crafted kernel (and only there).
func TestAbsintLintCodes(t *testing.T) {
	diags := lintFixture(t)
	got := make(map[string]map[string]int) // code -> kernel -> count
	for _, d := range diags {
		if got[d.Code] == nil {
			got[d.Code] = make(map[string]int)
		}
		got[d.Code][d.Kernel]++
	}
	want := map[string]map[string]int{
		CodeConstBranch:        {"constbr": 1},
		CodeUncoalescedAccess:  {"strided": 2}, // load and store
		CodeDivergentBarrier:   {"divbar": 1},
		CodeLoopInvariantLoad:  {"hoist": 1},
		CodeUnreachableByValue: {"constbr": 1},
		CodeBankConflict:       {"bank": 1},
	}
	for code, kernels := range want {
		for kernel, n := range kernels {
			if got[code][kernel] != n {
				t.Errorf("%s on %s: %d findings, want %d", code, kernel, got[code][kernel], n)
			}
		}
		for kernel := range got[code] {
			if kernels[kernel] == 0 {
				t.Errorf("%s unexpectedly fired on kernel %s", code, kernel)
			}
		}
	}
	// The sub-threshold global stride in "bank" (8 bytes/thread) must
	// not trip PTXA010: the code is for proven full-sector strides.
	if got[CodeUncoalescedAccess]["bank"] != 0 {
		t.Error("PTXA010 fired on an 8-byte stride")
	}
	// None of the absint codes may be error-severity: they must never
	// move the DCA gate.
	for _, d := range diags {
		switch d.Code {
		case CodeConstBranch, CodeUncoalescedAccess, CodeDivergentBarrier,
			CodeLoopInvariantLoad, CodeUnreachableByValue, CodeBankConflict:
			if d.Severity == SevError {
				t.Errorf("%s is error-severity: %s", d.Code, d)
			}
		}
	}
	if HasErrors(diags) {
		t.Errorf("fixture module must carry no error-severity findings")
	}
}

// TestLintDeterministicOrder: the module-level contract orders
// diagnostics by (kernel, line, code), and repeated runs are identical.
func TestLintDeterministicOrder(t *testing.T) {
	diags := lintFixture(t)
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		inOrder := a.Kernel < b.Kernel ||
			(a.Kernel == b.Kernel && (a.Line < b.Line ||
				(a.Line == b.Line && a.Code <= b.Code)))
		if !inOrder {
			t.Errorf("diags[%d] %v sorts after diags[%d] %v", i-1, a, i, b)
		}
	}
	again := lintFixture(t)
	if len(again) != len(diags) {
		t.Fatalf("second run: %d diagnostics, first: %d", len(again), len(diags))
	}
	for i := range diags {
		if diags[i] != again[i] {
			t.Errorf("run-to-run mismatch at %d: %v vs %v", i, diags[i], again[i])
		}
	}
}

// TestLintGoldenJSON pins the machine-readable diagnostic schema: the
// JSON encoding of the fixture module's diagnostics must match the
// checked-in golden byte for byte. Regenerate with
// UPDATE_LINT_GOLDEN=1 go test ./internal/ptxanalysis -run TestLintGoldenJSON
func TestLintGoldenJSON(t *testing.T) {
	diags := lintFixture(t)
	got, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "lint_golden.json")
	if os.Getenv("UPDATE_LINT_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_LINT_GOLDEN=1): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("diagnostic JSON drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// The JSON round trip must preserve every field, including the
	// named severity encoding.
	var back []Diag
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	for i := range diags {
		if back[i] != diags[i] {
			t.Errorf("round trip changed diags[%d]: %v vs %v", i, back[i], diags[i])
		}
	}
}
