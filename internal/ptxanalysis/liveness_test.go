package ptxanalysis

import (
	"testing"

	"cnnperf/internal/ptx/cfg"
	"cnnperf/internal/ptxanalysis/absint"
)

// Fixture 1 — straight-line kernel, hand-computed liveness walk:
//
//	i0 ld.param.u64  %rd1, [k_param_0]   live before: {}
//	i1 cvta          %rd2, %rd1          live before: {%rd1}
//	i2 mov           %r1, %tid.x         live before: {%rd2}
//	i3 add           %r2, %r1, 1         live before: {%rd2,%r1}
//	i4 st.global     [%rd2], %r2         live before: {%rd2,%r2}
//	i5 ret                               live before: {}
//
// Max pressure: 2 total (one .b64 + one .b32 at i3/i4).
const straightBody = `
	ld.param.u64 %rd1, [k_param_0];
	cvta.to.global.u64 %rd2, %rd1;
	mov.u32 %r1, %tid.x;
	add.s32 %r2, %r1, 1;
	st.global.u32 [%rd2], %r2;
	ret;
`

func TestLivenessStraightLine(t *testing.T) {
	k := parseKernel(t, straightBody)
	g, err := cfg.Build(k)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	lv := ComputeLiveness(k, g)
	if len(lv.UseBeforeDef) != 0 {
		t.Errorf("use-before-def = %v, want none", lv.UseBeforeDef)
	}
	if len(lv.DeadDefs) != 0 {
		t.Errorf("dead defs = %v, want none", lv.DeadDefs)
	}
	if len(lv.LiveIn[0]) != 0 || len(lv.LiveOut[0]) != 0 {
		t.Errorf("single-block live sets: in=%v out=%v", lv.LiveIn[0], lv.LiveOut[0])
	}
	// Def-use chains: %rd1 (def i0) feeds i1; %rd2 (def i1) feeds i4.
	if got := lv.DefUse[0]; len(got) != 1 || got[0] != 1 {
		t.Errorf("def-use of i0 = %v, want [1]", got)
	}
	if got := lv.DefUse[1]; len(got) != 1 || got[0] != 4 {
		t.Errorf("def-use of i1 = %v, want [4]", got)
	}
	p := ComputePressure(k, g, lv)
	if p.Total != 2 {
		t.Errorf("total pressure = %d, want 2", p.Total)
	}
	if p.ByType[".b64"] != 1 || p.ByType[".b32"] != 1 {
		t.Errorf("pressure by type = %v, want .b64:1 .b32:1", p.ByType)
	}
}

// Fixture 2 — counted loop, hand-computed:
//
//	b0: i0 mov %r1, 0
//	b1: i1 add %r1, %r1, 1 / i2 setp %p1, %r1, 16 / i3 @%p1 bra
//	b2: i4 ret
//
// LiveIn(b1) = {%r1}; LiveOut(b0) = {%r1}; at the bra point both %r1
// and %p1 are live → max pressure 2 (.b32 1, .pred 1).
func TestLivenessLoop(t *testing.T) {
	k := parseKernel(t, loopBody)
	g, err := cfg.Build(k)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	lv := ComputeLiveness(k, g)
	if len(lv.UseBeforeDef) != 0 {
		t.Errorf("use-before-def = %v", lv.UseBeforeDef)
	}
	if !lv.LiveIn[1]["%r1"] || len(lv.LiveIn[1]) != 1 {
		t.Errorf("LiveIn(loop) = %v, want {%%r1}", lv.LiveIn[1])
	}
	if !lv.LiveOut[0]["%r1"] || len(lv.LiveOut[0]) != 1 {
		t.Errorf("LiveOut(entry) = %v, want {%%r1}", lv.LiveOut[0])
	}
	if len(lv.DeadDefs) != 0 {
		t.Errorf("dead defs = %v", lv.DeadDefs)
	}
	p := ComputePressure(k, g, lv)
	if p.Total != 2 || p.ByType[".b32"] != 1 || p.ByType[".pred"] != 1 {
		t.Errorf("pressure = %+v, want total 2, .b32 1, .pred 1", p)
	}
}

// Fixture 3 — diamond with disjoint arm temporaries, hand-computed:
// both arms define %r2 which the join consumes, so %r2 is live across
// the join edges but the arm-local pressure never exceeds 3 total
// (%r1 + %r2 + address register is not yet live: the store address
// %rd1 comes from a parameter load in this variant).
const diamondPressureBody = `
	ld.param.u64 %rd1, [k_param_0];
	mov.u32 %r1, %tid.x;
	setp.lt.s32 %p1, %r1, 8;
	@%p1 bra THEN;
	mov.u32 %r2, 1;
	bra.uni JOIN;
THEN:
	mov.u32 %r2, 2;
JOIN:
	add.s32 %r3, %r2, %r1;
	st.global.u32 [%rd1], %r3;
	ret;
`

func TestLivenessDiamond(t *testing.T) {
	k := parseKernel(t, diamondPressureBody)
	g, err := cfg.Build(k)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(g.Blocks))
	}
	lv := ComputeLiveness(k, g)
	if len(lv.UseBeforeDef) != 0 {
		t.Errorf("use-before-def = %v", lv.UseBeforeDef)
	}
	// %r2 is live out of both arms, into the join.
	if !lv.LiveOut[1]["%r2"] || !lv.LiveOut[2]["%r2"] || !lv.LiveIn[3]["%r2"] {
		t.Error("%r2 must be live out of both arms and into the join")
	}
	// Neither arm's %r2 definition is dead: the join reads it.
	if len(lv.DeadDefs) != 0 {
		t.Errorf("dead defs = %v", lv.DeadDefs)
	}
	// Hand-computed maximum: before the conditional branch (i3) the live
	// set is {%rd1, %r1, %p1} plus nothing else → with the arms' {%rd1,
	// %r1, %r2} the peak is 3 total.
	p := ComputePressure(k, g, lv)
	if p.Total != 3 {
		t.Errorf("total pressure = %d, want 3", p.Total)
	}
	if p.ByType[".b64"] != 1 || p.ByType[".b32"] != 2 || p.ByType[".pred"] != 1 {
		t.Errorf("pressure by type = %v, want .b64:1 .b32:2 .pred:1", p.ByType)
	}
}

// Predicated definitions are may-defs: when the guard is false the old
// value flows through. The two regression tests below pin the corrected
// kill rule from both directions.

// TestPredicatedDefNoFalseDeadStore: an unconditional store whose value
// a later predicated definition may overwrite is still observable on
// the guard-false path — it must not be reported dead (PTXA002 FP).
func TestPredicatedDefNoFalseDeadStore(t *testing.T) {
	k := parseKernel(t, `
	mov.u32 %r1, 1;
	mov.u32 %r2, %tid.x;
	setp.lt.s32 %p1, %r2, 4;
	@%p1 mov.u32 %r1, 2;
	st.global.u32 [%r2], %r1;
	ret;
`)
	g, err := cfg.Build(k)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	lv := ComputeLiveness(k, g)
	if len(lv.DeadDefs) != 0 {
		t.Errorf("dead defs = %v, want none: the may-def at i3 does not kill i0", lv.DeadDefs)
	}
	a, err := AnalyzeKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range a.Diags {
		if d.Code == CodeDeadStore {
			t.Errorf("false-positive dead store: %s", d)
		}
	}
}

// TestPredicatedDefKeepsUseBeforeDef: a register defined only under a
// predicate may still be read undefined on the guard-false path — the
// may-def must not mask the use-before-def (PTXA001 FN).
func TestPredicatedDefKeepsUseBeforeDef(t *testing.T) {
	k := parseKernel(t, `
	mov.u32 %r2, %tid.x;
	setp.lt.s32 %p1, %r2, 4;
	@%p1 mov.u32 %r1, 2;
	add.s32 %r3, %r1, 1;
	st.global.u32 [%r2], %r3;
	ret;
`)
	g, err := cfg.Build(k)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	lv := ComputeLiveness(k, g)
	if at, ok := lv.UseBeforeDef["%r1"]; !ok || at != 3 {
		t.Errorf("UseBeforeDef[%%r1] = %d,%t, want 3,true: the may-def must not mask it", at, ok)
	}
	diags := LintKernel(k)
	found := false
	for _, d := range diags {
		if d.Code == CodeUseBeforeDef && d.Line == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("PTXA001 missing for the guard-false path, got %v", diags)
	}
	// The pressure walk mirrors the same kill rule: %r1 stays live (and
	// counted) across its may-def, so at i3 {%r2,%p1,%r1} are live.
	p := ComputePressure(k, g, lv)
	if p.ByType[".b32"] < 2 {
		t.Errorf(".b32 pressure = %d, want >= 2 (may-def keeps %%r1 live)", p.ByType[".b32"])
	}
}

// TestUndefUseAudit differentially audits the liveness-based PTXA001
// against the abstract interpreter's flow-sensitive undef tracking:
// every register the value analysis sees read while possibly undefined
// must also be flagged by the (more conservative, flow-insensitive)
// liveness dataflow.
func TestUndefUseAudit(t *testing.T) {
	bodies := []string{
		// Plain use-before-def.
		"\tadd.s32 %r1, %r2, 1;\n\tst.global.u32 [%r1], %r1;\n\tret;\n",
		// May-def only.
		"\tmov.u32 %r2, %tid.x;\n\tsetp.lt.s32 %p1, %r2, 4;\n\t@%p1 mov.u32 %r1, 2;\n\tadd.s32 %r3, %r1, 1;\n\tst.global.u32 [%r2], %r3;\n\tret;\n",
		// Defined on every path: clean.
		diamondBody,
	}
	for i, body := range bodies {
		k := parseKernel(t, body)
		g, err := cfg.Build(k)
		if err != nil {
			t.Fatalf("kernel %d cfg: %v", i, err)
		}
		lv := ComputeLiveness(k, g)
		abs := absint.Analyze(k, g)
		for _, uu := range abs.UndefUses {
			if _, ok := lv.UseBeforeDef[uu.Reg]; !ok {
				t.Errorf("kernel %d: absint sees %s read undefined at line %d but liveness PTXA001 misses it",
					i, uu.Reg, uu.Line)
			}
		}
	}
}
