package ptxanalysis

import (
	"testing"

	"cnnperf/internal/ptx"
	"cnnperf/internal/ptxgen"
	"cnnperf/internal/zoo"
)

func resnetModule(b *testing.B) *ptx.Module {
	b.Helper()
	m, err := zoo.Build("resnet50")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := ptxgen.Compile(m, ptxgen.Options{Lowering: ptxgen.TiledGEMM, Batch: 4, FuseElementwise: true})
	if err != nil {
		b.Fatal(err)
	}
	return prog.Module
}

// BenchmarkAnalyzeKernel measures the full static analysis (CFG,
// dominators, loops, liveness, pressure, mix, lint) per kernel of a
// zoo-generated ResNet-50 module.
func BenchmarkAnalyzeKernel(b *testing.B) {
	mod := resnetModule(b)
	var total int
	for _, k := range mod.Kernels {
		total += len(k.Body)
	}
	b.ReportMetric(float64(len(mod.Kernels)), "kernels")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := mod.Kernels[i%len(mod.Kernels)]
		a, err := AnalyzeKernel(k)
		if err != nil {
			b.Fatal(err)
		}
		if a.Pressure.Total <= 0 {
			b.Fatal("no pressure computed")
		}
	}
}

// BenchmarkAnalyzeModule measures the whole-module analysis used by the
// feature extractor.
func BenchmarkAnalyzeModule(b *testing.B) {
	mod := resnetModule(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ma, err := AnalyzeModule(mod)
		if err != nil {
			b.Fatal(err)
		}
		if ma.StaticInstructions <= 0 {
			b.Fatal("no instructions analysed")
		}
	}
}
