package ptxanalysis_test

import (
	"reflect"
	"testing"

	"cnnperf/internal/ptx"
	"cnnperf/internal/ptxanalysis"
	"cnnperf/internal/ptxgen"
	"cnnperf/internal/zoo"
)

// TestLintErrorsMatchesFullLint requires the fast error-only gate to
// return exactly the error-severity subset of the full lint — same
// diagnostics, same order — on clean and broken kernels alike.
func TestLintErrorsMatchesFullLint(t *testing.T) {
	var kernels []*ptx.Kernel
	for _, name := range []string{"alexnet", "mobilenetv2", "squeezenet"} {
		prog, err := ptxgen.Compile(zoo.MustBuild(name), ptxgen.Options{})
		if err != nil {
			t.Fatal(err)
		}
		kernels = append(kernels, prog.Module.Kernels...)
	}
	// Crafted shapes: use-before-def (two registers), unresolved branch
	// target, empty body, and a clean loop.
	crafted := []string{
		".version 6.0\n.target sm_61\n.address_size 64\n.visible .entry ubd(\n.param .u64 p\n)\n{\nadd.s32 %r1, %r2, %r3;\nsetp.lt.s32 %p1, %r1, 4;\n@%p1 bra L;\nL:\nret;\n}\n",
		".version 6.0\n.target sm_61\n.address_size 64\n.visible .entry clean(\n.param .u64 p\n)\n{\nmov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.lt.s32 %p1, %r1, 8;\n@%p1 bra L;\nret;\n}\n",
	}
	for _, src := range crafted {
		m, err := ptx.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		kernels = append(kernels, m.Kernels...)
	}
	for _, k := range kernels {
		want := ptxanalysis.Errors(ptxanalysis.LintKernel(k))
		got := ptxanalysis.LintErrors(k)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("kernel %s: LintErrors diverges from Errors(LintKernel)\ngot:  %v\nwant: %v", k.Name, got, want)
		}
	}
}

// TestLintErrorsMalformedCFG pins the structural-failure diagnostic.
func TestLintErrorsMalformedCFG(t *testing.T) {
	k := &ptx.Kernel{Name: "bad"}
	k.Append(ptx.Instruction{Opcode: "bra", Operands: []string{"nowhere"}})
	want := ptxanalysis.Errors(ptxanalysis.LintKernel(k))
	got := ptxanalysis.LintErrors(k)
	if len(got) != 1 || !reflect.DeepEqual(got, want) {
		t.Errorf("LintErrors = %v, want %v", got, want)
	}
}
