// Package ptxanalysis is the static-analysis framework over parsed PTX
// kernels: dominator trees and loop nesting on the shared CFG, def-use
// chains and live-variable dataflow over virtual registers, static
// register pressure and instruction-mix profiling, and a lint
// diagnostics engine whose error-severity findings gate the dynamic code
// analysis. The per-module summary also feeds extra static predictors
// into the ML feature vector (Ardalani et al. and BB-ML show static
// program features alone carry strong predictive signal; see PAPERS.md).
package ptxanalysis

import (
	"context"
	"fmt"

	"cnnperf/internal/analysiscache"
	"cnnperf/internal/obs"
	"cnnperf/internal/ptx"
	"cnnperf/internal/ptx/cfg"
	"cnnperf/internal/ptxanalysis/absint"
)

// KernelAnalysis bundles every static-analysis result of one kernel.
type KernelAnalysis struct {
	// Kernel is the analysed kernel's name.
	Kernel string
	// Static is the body length in instructions.
	Static int
	// CFG is the control-flow graph (nil for empty kernels).
	CFG *cfg.Graph
	// Dom is the dominator tree over CFG blocks.
	Dom *DomTree
	// PostDom is the post-dominator tree (index len(Blocks) is the
	// virtual exit).
	PostDom *DomTree
	// Loops are the natural loops, outermost depth 1.
	Loops []Loop
	// MaxLoopDepth is the deepest loop nesting (0 for loop-free kernels).
	MaxLoopDepth int
	// Live is the live-variable solution with def-use chains.
	Live *Liveness
	// Pressure is the static register pressure.
	Pressure Pressure
	// Mix is the static instruction-mix profile.
	Mix Mix
	// Abs is the abstract-interpretation fixpoint (nil for empty
	// kernels): per-block value states, branch divergence classes and
	// memory-access coalescing classes.
	Abs *absint.Result
	// Blocks are the per-basic-block static feature vectors (nil for
	// empty kernels), parallel to CFG.Blocks.
	Blocks []BlockFeatures
	// Diags are the lint findings, errors first.
	Diags []Diag
}

// AnalyzeKernel runs the full static analysis of one kernel. Kernels
// with an empty body yield a minimal analysis carrying only the
// empty-kernel diagnostic; structurally broken bodies (branches to
// unresolved labels) return an error.
func AnalyzeKernel(k *ptx.Kernel) (*KernelAnalysis, error) {
	return AnalyzeKernelContext(context.Background(), k)
}

// AnalyzeKernelContext is AnalyzeKernel recording the abstract
// interpretation as an "absint" span when ctx carries a tracer; the
// fixpoint iteration count additionally feeds the absint_iterations
// histogram when a metrics registry is wired in (RegisterMetrics).
// Tracing never changes the computed analysis.
func AnalyzeKernelContext(ctx context.Context, k *ptx.Kernel) (*KernelAnalysis, error) {
	if k == nil {
		return nil, fmt.Errorf("ptxanalysis: nil kernel")
	}
	a := &KernelAnalysis{Kernel: k.Name, Static: len(k.Body)}
	if len(k.Body) == 0 {
		a.Diags = []Diag{{
			Severity: SevWarning, Kernel: k.Name, Line: -1,
			Code: CodeEmptyKernel, Msg: "kernel body has no instructions",
		}}
		a.Mix = Mix{PerClass: make(map[ptx.Class]int), CoalescedFraction: 1}
		return a, nil
	}
	g, err := cfg.Build(k)
	if err != nil {
		return nil, fmt.Errorf("ptxanalysis: %w", err)
	}
	a.CFG = g
	a.Dom = Dominators(g)
	a.PostDom = PostDominators(g)
	a.Loops = NaturalLoops(g, a.Dom)
	for _, l := range a.Loops {
		if l.Depth > a.MaxLoopDepth {
			a.MaxLoopDepth = l.Depth
		}
	}
	a.Live = ComputeLiveness(k, g)
	a.Pressure = ComputePressure(k, g, a.Live)
	a.Mix = ComputeMix(k)
	_, span := obs.Start(ctx, "absint", obs.String("kernel", k.Name))
	a.Abs = absint.Analyze(k, g)
	span.SetAttr(obs.Int("iterations", a.Abs.Iterations), obs.Int("facts", a.Abs.Facts()),
		obs.Int("widenings", a.Abs.Widenings))
	span.End()
	observeAbsintIterations(a.Abs.Iterations)
	a.Blocks = computeBlockFeatures(k, g, a.Live, a.Abs)
	a.Diags = a.lint(k)
	return a, nil
}

// ModuleAnalysis aggregates the per-kernel analyses of one module with
// size-weighted summary statistics for the feature vector.
type ModuleAnalysis struct {
	// Kernels are the per-kernel analyses in module order.
	Kernels []*KernelAnalysis
	// Diags concatenates every kernel's diagnostics.
	Diags []Diag
	// MaxRegPressure is the highest total register pressure of any kernel.
	MaxRegPressure int
	// MaxPredPressure is the highest predicate-register pressure.
	MaxPredPressure int
	// MaxLoopDepth is the deepest loop nesting in the module.
	MaxLoopDepth int
	// MeanBranchDensity, FPFraction, MemFraction, SharedFraction and
	// CoalescedFraction are static-instruction-weighted means over the
	// kernels.
	MeanBranchDensity  float64
	FPFraction         float64
	MemFraction        float64
	SharedFraction     float64
	CoalescedFraction  float64
	StaticInstructions int
}

// AnalyzeModule analyses every kernel of the module.
func AnalyzeModule(m *ptx.Module) (*ModuleAnalysis, error) {
	return AnalyzeModuleCached(m, nil)
}

// AnalyzeModuleCached is AnalyzeModule memoizing per-kernel analyses in
// the given content-addressed cache: a kernel body already analysed —
// under any name, in any module — is not re-analysed. A nil cache
// disables memoization.
func AnalyzeModuleCached(m *ptx.Module, c *analysiscache.Cache) (*ModuleAnalysis, error) {
	return AnalyzeModuleCachedContext(context.Background(), m, c)
}

// AnalyzeModuleCachedContext is AnalyzeModuleCached with span tracing
// of the per-kernel abstract interpretation.
func AnalyzeModuleCachedContext(ctx context.Context, m *ptx.Module, c *analysiscache.Cache) (*ModuleAnalysis, error) {
	if m == nil {
		return nil, fmt.Errorf("ptxanalysis: nil module")
	}
	out := &ModuleAnalysis{}
	var wBranch, wFP, wMem, wShared, wCoal float64
	for _, k := range m.Kernels {
		a, err := analyzeKernelCached(ctx, k, c)
		if err != nil {
			return nil, err
		}
		out.Kernels = append(out.Kernels, a)
		out.Diags = append(out.Diags, a.Diags...)
		if a.Pressure.Total > out.MaxRegPressure {
			out.MaxRegPressure = a.Pressure.Total
		}
		if p := a.Pressure.ByType[".pred"]; p > out.MaxPredPressure {
			out.MaxPredPressure = p
		}
		if a.MaxLoopDepth > out.MaxLoopDepth {
			out.MaxLoopDepth = a.MaxLoopDepth
		}
		w := float64(a.Static)
		out.StaticInstructions += a.Static
		wBranch += w * a.Mix.BranchDensity
		wFP += w * a.Mix.FPFraction
		wMem += w * a.Mix.MemFraction
		wShared += w * a.Mix.SharedFraction
		wCoal += w * a.Mix.CoalescedFraction
	}
	if out.StaticInstructions > 0 {
		n := float64(out.StaticInstructions)
		out.MeanBranchDensity = wBranch / n
		out.FPFraction = wFP / n
		out.MemFraction = wMem / n
		out.SharedFraction = wShared / n
		out.CoalescedFraction = wCoal / n
	}
	return out, nil
}

// analyzeKernelCached memoizes AnalyzeKernel by kernel content. On a hit
// from a content-identical kernel under a different name, the analysis
// is shallow-copied with its identity re-stamped; the heavyweight
// structures (CFG, dominator trees, liveness, the absint fixpoint and
// the block features — none of which carry the kernel name) are shared
// read-only.
func analyzeKernelCached(ctx context.Context, k *ptx.Kernel, c *analysiscache.Cache) (*KernelAnalysis, error) {
	if c == nil {
		return AnalyzeKernelContext(ctx, k)
	}
	v, _, err := c.GetOrCompute(analysiscache.KernelKey("ptxa", k), func() (any, error) {
		return AnalyzeKernelContext(ctx, k)
	})
	if err != nil {
		return nil, err
	}
	a := v.(*KernelAnalysis)
	if a.Kernel == k.Name {
		return a, nil
	}
	cp := *a
	cp.Kernel = k.Name
	cp.Diags = append([]Diag(nil), a.Diags...)
	for i := range cp.Diags {
		cp.Diags[i].Kernel = k.Name
	}
	return &cp, nil
}

// FeatureNames names the static predictors Features returns, in order.
// They extend the paper's feature vector with the program-structure
// signals of the static-analysis literature (register pressure,
// control-flow shape, instruction mix, access-pattern quality).
var FeatureNames = []string{
	"static_reg_pressure",
	"static_pred_pressure",
	"static_max_loop_depth",
	"static_branch_density",
	"static_fp_fraction",
	"static_mem_fraction",
	"static_shared_fraction",
	"static_coalesced_fraction",
}

// Features returns the static predictor vector in FeatureNames order.
func (ma *ModuleAnalysis) Features() []float64 {
	return []float64{
		float64(ma.MaxRegPressure),
		float64(ma.MaxPredPressure),
		float64(ma.MaxLoopDepth),
		ma.MeanBranchDensity,
		ma.FPFraction,
		ma.MemFraction,
		ma.SharedFraction,
		ma.CoalescedFraction,
	}
}
