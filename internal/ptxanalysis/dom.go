package ptxanalysis

import (
	"sort"

	"cnnperf/internal/ptx/cfg"
)

// DomTree is the dominator tree of a CFG: Idom[b] is the immediate
// dominator of block b, Idom[entry] == entry, and unreachable blocks
// carry Idom == -1.
type DomTree struct {
	// Idom maps a block to its immediate dominator.
	Idom []int
	// depth caches the tree depth of each block for Dominates queries.
	depth []int
}

// Dominates reports whether block a dominates block b (reflexively).
func (d *DomTree) Dominates(a, b int) bool {
	if b < 0 || b >= len(d.Idom) || d.Idom[b] < 0 {
		return false
	}
	for b != a {
		if d.depth[b] == 0 {
			return false // reached the entry without meeting a
		}
		b = d.Idom[b]
	}
	return true
}

// Dominators computes the dominator tree with the iterative
// Cooper-Harvey-Kennedy algorithm over a reverse postorder.
func Dominators(g *cfg.Graph) *DomTree {
	n := len(g.Blocks)
	succs := func(b int) []int { return g.Blocks[b].Succs }
	preds := func(b int) []int { return g.Blocks[b].Preds }
	return dominatorsOf(n, 0, succs, preds)
}

// PostDominators computes the post-dominator tree: the dominator tree of
// the reversed CFG rooted at a virtual exit node that succeeds every
// block without successors. The returned tree has n+1 entries; index n
// is the virtual exit. Blocks that cannot reach any exit (infinite
// loops) carry Idom == -1.
func PostDominators(g *cfg.Graph) *DomTree {
	n := len(g.Blocks)
	// Reversed graph: the virtual exit node n points at every real exit.
	rsucc := make([][]int, n+1)
	rpred := make([][]int, n+1)
	for b, blk := range g.Blocks {
		for _, s := range blk.Succs {
			rsucc[s] = append(rsucc[s], b)
			rpred[b] = append(rpred[b], s)
		}
		if len(blk.Succs) == 0 {
			rsucc[n] = append(rsucc[n], b)
			rpred[b] = append(rpred[b], n)
		}
	}
	return dominatorsOf(n+1, n, func(b int) []int { return rsucc[b] }, func(b int) []int { return rpred[b] })
}

// dominatorsOf is the graph-direction-agnostic core: dominators of every
// node reachable from entry, following succs edges, joining over preds.
func dominatorsOf(n, entry int, succs, preds func(int) []int) *DomTree {
	// Reverse postorder from the entry.
	order := make([]int, 0, n)
	state := make([]int, n) // 0 unvisited, 1 on stack, 2 done
	var dfs func(int)
	dfs = func(b int) {
		state[b] = 1
		for _, s := range succs(b) {
			if state[s] == 0 {
				dfs(s)
			}
		}
		state[b] = 2
		order = append(order, b)
	}
	dfs(entry)
	// order is postorder; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range order {
		rpoNum[b] = i
	}

	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[entry] = entry
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == entry {
				continue
			}
			newIdom := -1
			for _, p := range preds(b) {
				if idom[p] < 0 {
					continue // predecessor not yet reached
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom >= 0 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	d := &DomTree{Idom: idom, depth: make([]int, n)}
	for _, b := range order {
		if b == entry || idom[b] < 0 {
			continue
		}
		d.depth[b] = d.depth[idom[b]] + 1
	}
	return d
}

// Loop is one natural loop: the blocks reached backwards from a back
// edge's tail without passing the dominating header.
type Loop struct {
	// Header is the loop-header block index.
	Header int
	// Blocks are the member block indices (including the header), sorted.
	Blocks []int
	// Depth is the nesting depth (outermost loop = 1).
	Depth int
}

// Contains reports whether block b belongs to the loop.
func (l *Loop) Contains(b int) bool {
	i := sort.SearchInts(l.Blocks, b)
	return i < len(l.Blocks) && l.Blocks[i] == b
}

// NaturalLoops finds the natural loops of the CFG: for every back edge
// (t, h) where h dominates t, the loop body is h plus all blocks that
// reach t without passing through h. Loops sharing a header are merged.
// Back edges whose target does not dominate the source (irreducible
// control flow) produce no loop; the linter flags them separately.
func NaturalLoops(g *cfg.Graph, dom *DomTree) []Loop {
	bodies := make(map[int]map[int]bool) // header -> member set
	for _, e := range g.BackEdges() {
		tail, head := e[0], e[1]
		if !dom.Dominates(head, tail) {
			continue
		}
		body := bodies[head]
		if body == nil {
			body = map[int]bool{head: true}
			bodies[head] = body
		}
		// Reverse-reachability from the tail, stopping at the header.
		stack := []int{tail}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if body[b] {
				continue
			}
			body[b] = true
			for _, p := range g.Blocks[b].Preds {
				stack = append(stack, p)
			}
		}
	}
	headers := make([]int, 0, len(bodies))
	for h := range bodies {
		headers = append(headers, h)
	}
	sort.Ints(headers)
	loops := make([]Loop, 0, len(headers))
	for _, h := range headers {
		members := make([]int, 0, len(bodies[h]))
		for b := range bodies[h] {
			members = append(members, b)
		}
		sort.Ints(members)
		loops = append(loops, Loop{Header: h, Blocks: members})
	}
	// Nesting depth: a loop is nested once per distinct other loop whose
	// body contains its header.
	for i := range loops {
		depth := 1
		for j := range loops {
			if i != j && loops[j].Contains(loops[i].Header) && loops[j].Header != loops[i].Header {
				depth++
			}
		}
		loops[i].Depth = depth
	}
	return loops
}

// LoopsOf is the natural-loop analysis over a ready-built CFG with the
// dominator computation folded in — the loop information the DCA
// bytecode compiler consumes to resolve affine trip counts in closed
// form.
func LoopsOf(g *cfg.Graph) []Loop {
	return NaturalLoops(g, Dominators(g))
}
