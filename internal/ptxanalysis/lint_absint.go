package ptxanalysis

import (
	"cnnperf/internal/ptx"
	"cnnperf/internal/ptxanalysis/absint"
)

// The second-generation lint checks, PTXA009-PTXA014, derived from the
// abstract-interpretation facts. All of them are warning- or
// info-severity: they never feed the DCA gate, so enabling them cannot
// change which kernels the pipeline accepts.

// lintAbsint appends the dataflow-derived diagnostics of one kernel.
// Assumes a.Abs, a.CFG, a.PostDom and a.Loops are populated.
func (a *KernelAnalysis) lintAbsint(k *ptx.Kernel, add func(sev Severity, line int, code, format string, args ...any)) {
	abs := a.Abs

	// PTXA009: a branch whose guard the value analysis decides — the
	// condition is constant for every parameter and thread assignment.
	for _, br := range abs.Branch {
		if !br.Const {
			continue
		}
		dir := "never"
		if br.Taken {
			dir = "always"
		}
		add(SevWarning, br.Line, CodeConstBranch,
			"branch guard %s is provably constant: the branch is %s taken", k.Body[br.Line].Pred, dir)
	}

	// PTXA010: a global access with a proven per-thread stride at or
	// past a full 32-byte sector — every lane of a warp pays its own
	// memory transaction. PTXA014: a shared access whose stride lands
	// multiple lanes on one bank.
	for _, acc := range abs.Accesses {
		switch acc.Space {
		case absint.SpaceGlobal:
			s := acc.StrideBytes
			if s < 0 {
				s = -s
			}
			if acc.Class == absint.CoalStrided && s >= absint.UncoalescedStrideBytes {
				add(SevWarning, acc.Line, CodeUncoalescedAccess,
					"global access stride is %d bytes per thread (>= %d): provably uncoalesced",
					acc.StrideBytes, absint.UncoalescedStrideBytes)
			}
		case absint.SpaceShared:
			if acc.ConflictWays >= 2 {
				add(SevWarning, acc.Line, CodeBankConflict,
					"shared-memory access stride of %d bytes per thread causes a %d-way bank conflict",
					acc.StrideBytes, acc.ConflictWays)
			}
		}
	}

	// PTXA011: a barrier control-dependent on a thread-dependent
	// branch — threads of one block can disagree on reaching it, the
	// classic data-dependent-divergence hang. (PTXA005 flags the
	// structural form; this one proves the controlling condition is
	// actually thread-dependent.)
	for i, in := range k.Body {
		if !ptx.IsBarrier(in.Opcode) {
			continue
		}
		bb := a.CFG.BlockOf(i)
		for ci, br := range abs.Branch {
			if br.Class != absint.BranchDivergent {
				continue
			}
			if a.PostDom.Dominates(bb, ci) {
				continue // the barrier is reached whichever way ci goes
			}
			ctrl := false
			for _, s := range a.CFG.Blocks[ci].Succs {
				if a.PostDom.Dominates(bb, s) {
					ctrl = true
					break
				}
			}
			if ctrl {
				add(SevWarning, i, CodeDivergentBarrier,
					"%s is control-dependent on the thread-dependent branch at line %d (divergence hang hazard)",
					in.Opcode, br.Line)
				break // one finding per barrier
			}
		}
	}

	// PTXA012: an unguarded load inside a natural loop whose address
	// register is never written in the loop — the same location is
	// re-read every iteration and the load is hoistable. A load inside
	// nested loops is reported once.
	flagged := make(map[int]bool)
	for _, l := range a.Loops {
		inLoop := make(map[int]bool, len(l.Blocks))
		for _, bi := range l.Blocks {
			inLoop[bi] = true
		}
		definedInLoop := make(map[string]bool)
		for _, bi := range l.Blocks {
			b := a.CFG.Blocks[bi]
			for i := b.Start; i < b.End; i++ {
				if d := k.Body[i].Dest(); d != "" {
					definedInLoop[d] = true
				}
			}
		}
		for _, bi := range l.Blocks {
			b := a.CFG.Blocks[bi]
			for i := b.Start; i < b.End; i++ {
				in := k.Body[i]
				c := in.Class()
				if (c != ptx.ClassLoad && c != ptx.ClassLoadShared) || in.Pred != "" {
					continue
				}
				if absint.AccessSpaceOf(in.Opcode) == absint.SpaceParam {
					continue
				}
				r := absint.AddrRegOf(&in)
				if r == "" || definedInLoop[r] || flagged[i] {
					continue
				}
				flagged[i] = true
				add(SevInfo, i, CodeLoopInvariantLoad,
					"load address %s is invariant in the loop at depth %d: the load is hoistable", r, l.Depth)
			}
		}
	}

	// PTXA013: a block every structural path can reach but no value
	// assignment does — the constant-guard pruning of the abstract
	// interpreter proved all its incoming edges infeasible.
	reach := a.CFG.Reachable()
	for bi, structurally := range reach {
		if structurally && !abs.Reached[bi] {
			add(SevWarning, a.CFG.Blocks[bi].Start, CodeUnreachableByValue,
				"basic block %d (instructions %d-%d) is unreachable for every parameter and thread assignment",
				bi, a.CFG.Blocks[bi].Start, a.CFG.Blocks[bi].End-1)
		}
	}
}
