package ptxanalysis

import (
	"encoding/json"
	"fmt"
	"sort"

	"cnnperf/internal/ptx"
	"cnnperf/internal/ptx/cfg"
)

// Severity grades a diagnostic.
type Severity int

const (
	// SevInfo marks observations with no correctness impact.
	SevInfo Severity = iota
	// SevWarning marks suspicious but executable constructs.
	SevWarning
	// SevError marks constructs the abstract executor must reject.
	SevError
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	default:
		return "info"
	}
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", s.String())), nil
}

// UnmarshalJSON parses a severity name, so diagnostics survive a JSON
// round trip (the serving API returns them over the wire).
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	switch name {
	case "error":
		*s = SevError
	case "warning":
		*s = SevWarning
	case "info":
		*s = SevInfo
	default:
		return fmt.Errorf("ptxanalysis: unknown severity %q", name)
	}
	return nil
}

// Diagnostic codes. The table is documented in DESIGN.md §Static
// Analysis.
const (
	// CodeUseBeforeDef: a register may be read before any definition.
	CodeUseBeforeDef = "PTXA001"
	// CodeDeadStore: a defined value is never consumed.
	CodeDeadStore = "PTXA002"
	// CodeUnreachable: a basic block has no path from the kernel entry.
	CodeUnreachable = "PTXA003"
	// CodeBranchIntoLoop: an edge enters a loop body bypassing its header.
	CodeBranchIntoLoop = "PTXA004"
	// CodeBarrierDivergent: a barrier does not post-dominate the entry, so
	// threads of one block may disagree on reaching it.
	CodeBarrierDivergent = "PTXA005"
	// CodeEmptyKernel: the kernel body has no instructions.
	CodeEmptyKernel = "PTXA006"
	// CodeIrreducibleLoop: a back edge whose target does not dominate its
	// source — irreducible (unstructured) control flow.
	CodeIrreducibleLoop = "PTXA007"
	// CodeMalformed: the kernel is structurally broken (e.g. a branch to
	// an unresolved label) and could not be analysed at all.
	CodeMalformed = "PTXA008"

	// The PTXA009-PTXA014 codes are derived from the abstract
	// interpreter (internal/ptxanalysis/absint). They are never
	// error-severity: the DCA gate and the default pipeline outputs are
	// unaffected by their presence.

	// CodeConstBranch: a branch guard the value analysis proves constant.
	CodeConstBranch = "PTXA009"
	// CodeUncoalescedAccess: a global access with a proven per-thread
	// stride of a full memory sector or more.
	CodeUncoalescedAccess = "PTXA010"
	// CodeDivergentBarrier: a barrier control-dependent on a proven
	// thread-dependent branch condition.
	CodeDivergentBarrier = "PTXA011"
	// CodeLoopInvariantLoad: a load whose address never changes inside
	// its loop (hoistable).
	CodeLoopInvariantLoad = "PTXA012"
	// CodeUnreachableByValue: a structurally reachable block no
	// parameter or thread assignment can reach (constant guards).
	CodeUnreachableByValue = "PTXA013"
	// CodeBankConflict: a shared-memory access with a provably
	// conflicting bank stride.
	CodeBankConflict = "PTXA014"
)

// Diag is one lint diagnostic anchored to an instruction.
type Diag struct {
	// Severity grades the finding.
	Severity Severity `json:"severity"`
	// Kernel names the containing kernel.
	Kernel string `json:"kernel"`
	// Line is the instruction index within the kernel body (-1 when the
	// finding has no single anchor instruction).
	Line int `json:"line"`
	// Code is the stable machine-readable diagnostic code (PTXAnnn).
	Code string `json:"code"`
	// Msg is the human-readable description.
	Msg string `json:"msg"`
}

// String renders the diagnostic in a compiler-style single line.
func (d Diag) String() string {
	return fmt.Sprintf("%s:%d: %s %s: %s", d.Kernel, d.Line, d.Severity, d.Code, d.Msg)
}

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors(diags []Diag) bool {
	for _, d := range diags {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// Errors filters the error-severity diagnostics.
func Errors(diags []Diag) []Diag {
	var out []Diag
	for _, d := range diags {
		if d.Severity == SevError {
			out = append(out, d)
		}
	}
	return out
}

// lint derives the diagnostics of one analysed kernel. It assumes the
// analysis fields (CFG, Dom, PostDom, Loops, Live) are populated.
func (a *KernelAnalysis) lint(k *ptx.Kernel) []Diag {
	var diags []Diag
	add := func(sev Severity, line int, code, format string, args ...any) {
		diags = append(diags, Diag{
			Severity: sev, Kernel: k.Name, Line: line, Code: code,
			Msg: fmt.Sprintf(format, args...),
		})
	}

	// PTXA001 use-before-def.
	regs := make([]string, 0, len(a.Live.UseBeforeDef))
	for r := range a.Live.UseBeforeDef {
		regs = append(regs, r)
	}
	sort.Strings(regs)
	for _, r := range regs {
		add(SevError, a.Live.UseBeforeDef[r], CodeUseBeforeDef,
			"register %s may be read before it is written", r)
	}

	// PTXA002 dead stores.
	for _, i := range a.Live.DeadDefs {
		add(SevWarning, i, CodeDeadStore,
			"value of %s defined by %q is never used", k.Body[i].Dest(), k.Body[i].Opcode)
	}

	// PTXA003 unreachable blocks.
	reach := a.CFG.Reachable()
	for bi, ok := range reach {
		if !ok {
			add(SevWarning, a.CFG.Blocks[bi].Start, CodeUnreachable,
				"basic block %d (instructions %d-%d) is unreachable from the kernel entry",
				bi, a.CFG.Blocks[bi].Start, a.CFG.Blocks[bi].End-1)
		}
	}

	// PTXA004 branches into loop bodies bypassing the header. A natural
	// loop is only enterable through its header by construction, so the
	// check works on the lexical back-edge interval [header..tail]: an
	// edge from outside the interval to a block inside it other than the
	// header side-steps the loop entry.
	intervals := make(map[int]int) // header -> furthest tail
	for _, e := range a.CFG.BackEdges() {
		if e[0] > intervals[e[1]] {
			intervals[e[1]] = e[0]
		}
	}
	headers := make([]int, 0, len(intervals))
	for h := range intervals {
		headers = append(headers, h)
	}
	sort.Ints(headers)
	for _, head := range headers {
		tail := intervals[head]
		for bi, b := range a.CFG.Blocks {
			if bi >= head && bi <= tail {
				continue
			}
			for _, s := range b.Succs {
				if s > head && s <= tail {
					add(SevWarning, b.End-1, CodeBranchIntoLoop,
						"branch from block %d enters the body of the loop spanning blocks %d-%d without passing its header",
						bi, head, tail)
				}
			}
		}
	}

	// PTXA005 barriers in potentially divergent regions: a bar.sync that
	// does not post-dominate the entry block is skipped by some threads
	// on some path — a hang hazard under intra-block divergence.
	for i, in := range k.Body {
		if !ptx.IsBarrier(in.Opcode) {
			continue
		}
		b := a.CFG.BlockOf(i)
		if !a.PostDom.Dominates(b, 0) || in.Pred != "" {
			add(SevWarning, i, CodeBarrierDivergent,
				"%s at a point not all threads of the block must reach (divergence hazard)", in.Opcode)
		}
	}

	// PTXA009-PTXA014: the abstract-interpretation findings.
	a.lintAbsint(k, add)

	// PTXA007 irreducible back edges (no natural loop).
	for _, e := range a.CFG.BackEdges() {
		if !a.Dom.Dominates(e[1], e[0]) {
			add(SevWarning, a.CFG.Blocks[e[0]].End-1, CodeIrreducibleLoop,
				"back edge from block %d to block %d whose target does not dominate its source (irreducible loop)",
				e[0], e[1])
		}
	}

	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Severity != diags[j].Severity {
			return diags[i].Severity > diags[j].Severity
		}
		return diags[i].Line < diags[j].Line
	})
	return diags
}

// LintKernel runs the full static analysis of one kernel and returns its
// diagnostics. Kernels whose CFG cannot be built (unresolved branch
// targets) report the failure as an error-severity diagnostic.
func LintKernel(k *ptx.Kernel) []Diag {
	a, err := AnalyzeKernel(k)
	if err != nil {
		return []Diag{{Severity: SevError, Kernel: k.Name, Line: -1, Code: CodeMalformed, Msg: err.Error()}}
	}
	return a.Diags
}

// Lint analyses every kernel of a module and returns the diagnostics
// in the stable reporting order: sorted by (kernel, line, code). The
// per-kernel Diags fields keep their severity-first order; this module
// view is the deterministic contract CLI and serving output rely on.
func Lint(m *ptx.Module) []Diag {
	var out []Diag
	for _, k := range m.Kernels {
		out = append(out, LintKernel(k)...)
	}
	SortDiags(out)
	return out
}

// SortDiags orders diagnostics by (kernel, line, code) — the stable
// reporting contract of `cnnperf lint` and /v1/lint.
func SortDiags(diags []Diag) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Code < b.Code
	})
}

// LintErrors computes only the error-severity diagnostics of a kernel —
// exactly Errors(LintKernel(k)) — without the warning-only analyses
// (dominators, post-dominators, loops, register pressure, instruction
// mix). The only error-severity rules are the structural CFG failure
// (PTXA008) and use-before-def registers (PTXA001), which need just the
// CFG and the liveness dataflow. The DCA gate calls this on every
// distinct kernel of a program, where the full lint would dominate a
// cold-cache analysis.
func LintErrors(k *ptx.Kernel) []Diag {
	if len(k.Body) == 0 {
		return nil // the empty-kernel diagnostic is warning-severity
	}
	g, err := cfg.Build(k)
	if err != nil {
		return []Diag{{
			Severity: SevError, Kernel: k.Name, Line: -1, Code: CodeMalformed,
			Msg: fmt.Sprintf("ptxanalysis: %v", err),
		}}
	}
	live := ComputeLiveness(k, g)
	regs := make([]string, 0, len(live.UseBeforeDef))
	for r := range live.UseBeforeDef {
		regs = append(regs, r)
	}
	sort.Strings(regs)
	diags := make([]Diag, 0, len(regs))
	for _, r := range regs {
		diags = append(diags, Diag{
			Severity: SevError, Kernel: k.Name, Line: live.UseBeforeDef[r], Code: CodeUseBeforeDef,
			Msg: fmt.Sprintf("register %s may be read before it is written", r),
		})
	}
	// Match LintKernel's final ordering: within one severity, by line.
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Line < diags[j].Line })
	return diags
}
