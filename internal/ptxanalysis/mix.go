package ptxanalysis

import (
	"strconv"
	"strings"

	"cnnperf/internal/ptx"
)

// Mix is the static instruction-mix profile of one kernel.
type Mix struct {
	// PerClass counts static instructions per execution class.
	PerClass map[ptx.Class]int
	// GlobalLoads, GlobalStores, SharedLoads, SharedStores and ParamLoads
	// break the memory operations down by address space.
	GlobalLoads, GlobalStores, SharedLoads, SharedStores, ParamLoads int
	// Branches counts control transfers; CondBranches the guarded subset.
	Branches, CondBranches int
	// Barriers counts bar/membar synchronisations.
	Barriers int
	// BranchDensity is Branches divided by the body length.
	BranchDensity float64
	// CoalescedGlobal and StridedGlobal split the global accesses by the
	// address-arithmetic heuristic of StrideClass.
	CoalescedGlobal, StridedGlobal int
	// CoalescedFraction is CoalescedGlobal over all global accesses
	// (1.0 when the kernel touches no global memory).
	CoalescedFraction float64
	// FPFraction is the share of FP32+FMA+SFU instructions.
	FPFraction float64
	// MemFraction is the share of memory instructions (all spaces).
	MemFraction float64
	// SharedFraction is the share of shared-memory instructions.
	SharedFraction float64
}

// strideClass orders the thread-index dependence of a register value.
type strideClass int

const (
	// strideUniform: the value does not depend on the thread index
	// (parameters, loop counters, block-uniform arithmetic).
	strideUniform strideClass = iota
	// strideUnit: the value is an affine function of the thread index
	// with a small element-size coefficient — neighbouring threads touch
	// neighbouring addresses, the access coalesces.
	strideUnit
	// strideScattered: the thread index is scaled by a large or unknown
	// factor — neighbouring threads touch distant addresses.
	strideScattered
)

func maxStride(a, b strideClass) strideClass {
	if a > b {
		return a
	}
	return b
}

// strider resolves the stride class of registers by walking their
// definitions. Cyclic definitions (loop counters: add %r1, %r1, 1)
// resolve to the class of their acyclic inputs.
type strider struct {
	k       *ptx.Kernel
	defsOf  map[string][]int
	memo    map[string]strideClass
	onStack map[string]bool
}

func newStrider(k *ptx.Kernel) *strider {
	s := &strider{
		k:       k,
		defsOf:  make(map[string][]int),
		memo:    make(map[string]strideClass),
		onStack: make(map[string]bool),
	}
	for i, in := range k.Body {
		if d := in.Dest(); d != "" {
			s.defsOf[d] = append(s.defsOf[d], i)
		}
	}
	return s
}

// smallStride reports whether an immediate multiplier preserves
// coalescing: scaling a thread index by an element size (1-8 bytes, or
// shifts up to 3 bits) keeps neighbouring threads within one memory
// transaction.
func smallStride(op string) bool {
	v, err := strconv.ParseInt(op, 10, 64)
	return err == nil && v >= 1 && v <= 8
}

func smallShift(op string) bool {
	v, err := strconv.ParseInt(op, 10, 64)
	return err == nil && v >= 0 && v <= 3
}

// operandClass resolves one operand: immediates and parameters are
// uniform, %tid.x is the unit reference, other special registers are
// uniform per thread block.
func (s *strider) operandClass(op string) strideClass {
	op = strings.TrimSpace(op)
	if strings.HasPrefix(op, "%tid.") {
		return strideUnit
	}
	if r := ptx.RegOperand(op); r != "" {
		return s.regClass(r)
	}
	return strideUniform
}

func (s *strider) regClass(reg string) strideClass {
	if c, ok := s.memo[reg]; ok {
		return c
	}
	if s.onStack[reg] {
		// Cycle through a loop-carried definition: the recursive
		// contribution is the register's own class, which the other
		// definitions determine.
		return strideUniform
	}
	s.onStack[reg] = true
	c := strideUniform
	for _, di := range s.defsOf[reg] {
		c = maxStride(c, s.defClass(s.k.Body[di]))
	}
	delete(s.onStack, reg)
	s.memo[reg] = c
	return c
}

// defClass derives the stride class produced by one defining instruction.
func (s *strider) defClass(in ptx.Instruction) strideClass {
	root, _, _ := strings.Cut(in.Opcode, ".")
	srcs := in.Sources()
	get := func(i int) strideClass {
		if i < len(srcs) {
			return s.operandClass(srcs[i])
		}
		return strideUniform
	}
	switch root {
	case "mov", "cvt", "cvta", "ld":
		// Moves and conversions forward their input; loads produce data,
		// not thread-index arithmetic.
		if root == "ld" {
			return strideUniform
		}
		return get(0)
	case "add", "sub", "or", "and", "xor", "min", "max", "rem", "selp":
		c := strideUniform
		for i := range srcs {
			c = maxStride(c, get(i))
		}
		return c
	case "shl":
		if get(0) == strideUniform {
			return strideUniform
		}
		if smallShift(last(srcs)) {
			return get(0)
		}
		return strideScattered
	case "mul":
		return s.mulClass(get(0), get(1), srcs)
	case "mad", "fma":
		// a*b + c
		prod := s.mulClass(get(0), get(1), srcs[:min(2, len(srcs))])
		return maxStride(prod, get(2))
	case "div", "shr":
		if get(0) == strideUniform {
			return strideUniform
		}
		return strideScattered
	default:
		c := strideUniform
		for i := range srcs {
			c = maxStride(c, get(i))
		}
		return c
	}
}

// mulClass resolves a product: uniform*uniform stays uniform; a
// thread-index term survives multiplication only by a small element-size
// immediate.
func (s *strider) mulClass(a, b strideClass, srcs []string) strideClass {
	if a == strideUniform && b == strideUniform {
		return strideUniform
	}
	// One side carries the thread index: the product still coalesces only
	// when the other side is a small element-size immediate.
	if a != strideUniform && len(srcs) >= 2 && smallStride(strings.TrimSpace(srcs[1])) {
		return a
	}
	if b != strideUniform && len(srcs) >= 1 && smallStride(strings.TrimSpace(srcs[0])) {
		return b
	}
	return strideScattered
}

func last(srcs []string) string {
	if len(srcs) == 0 {
		return ""
	}
	return strings.TrimSpace(srcs[len(srcs)-1])
}

// memSpace classifies a memory opcode's address space.
func memSpace(opcode string) string {
	switch {
	case strings.Contains(opcode, ".param"):
		return "param"
	case strings.Contains(opcode, ".shared"):
		return "shared"
	default:
		return "global"
	}
}

// addrReg extracts the address register of the memory-reference operand,
// or "" when the reference is direct (parameter name).
func addrReg(in ptx.Instruction) string {
	for _, op := range in.Operands {
		op = strings.TrimSpace(op)
		if strings.HasPrefix(op, "[") {
			return ptx.RegOperand(op)
		}
	}
	return ""
}

// ComputeMix profiles the static instruction mix of a kernel, including
// the coalescing estimate from address-arithmetic patterns: a global
// access whose address is an affine function of %tid.x with an
// element-size coefficient is counted as coalesced, anything scaling the
// thread index further as strided.
func ComputeMix(k *ptx.Kernel) Mix {
	m := Mix{PerClass: make(map[ptx.Class]int)}
	st := newStrider(k)
	n := len(k.Body)
	var fp, mem, shared int
	for _, in := range k.Body {
		c := in.Class()
		m.PerClass[c]++
		switch c {
		case ptx.ClassLoad:
			if memSpace(in.Opcode) == "param" {
				m.ParamLoads++
			} else {
				m.GlobalLoads++
			}
			mem++
		case ptx.ClassStore:
			m.GlobalStores++
			mem++
		case ptx.ClassLoadShared:
			m.SharedLoads++
			mem++
			shared++
		case ptx.ClassStoreShared:
			m.SharedStores++
			mem++
			shared++
		case ptx.ClassBranch:
			m.Branches++
			if in.Pred != "" {
				m.CondBranches++
			}
		case ptx.ClassSync:
			m.Barriers++
		case ptx.ClassFP32, ptx.ClassFMA, ptx.ClassSFU:
			fp++
		}
		// Coalescing: only global-space loads and stores.
		if (c == ptx.ClassLoad || c == ptx.ClassStore) && memSpace(in.Opcode) == "global" {
			if r := addrReg(in); r != "" {
				if st.regClass(r) <= strideUnit {
					m.CoalescedGlobal++
				} else {
					m.StridedGlobal++
				}
			} else {
				m.CoalescedGlobal++ // direct parameter reference
			}
		}
	}
	if n > 0 {
		m.BranchDensity = float64(m.Branches) / float64(n)
		m.FPFraction = float64(fp) / float64(n)
		m.MemFraction = float64(mem) / float64(n)
		m.SharedFraction = float64(shared) / float64(n)
	}
	if g := m.CoalescedGlobal + m.StridedGlobal; g > 0 {
		m.CoalescedFraction = float64(m.CoalescedGlobal) / float64(g)
	} else {
		m.CoalescedFraction = 1
	}
	return m
}
