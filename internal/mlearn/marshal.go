package mlearn

import (
	"encoding/json"
	"fmt"
)

// Stable serialization for fitted regressors. Every model marshals to a
// versioned JSON envelope:
//
//	{"format":"cnnperf-mlearn","version":1,"kind":"<Name()>","model":{...}}
//
// The codec is deterministic — struct fields encode in declaration
// order and floats use Go's shortest-round-trip formatting — so
// marshaling the same fitted model twice yields byte-identical output,
// and Unmarshal(Marshal(m)) reconstructs a model that is deep-equal to
// m and predicts bit-identically. Bump envelopeVersion whenever any
// model payload changes shape; Unmarshal rejects unknown versions
// rather than guessing.

const (
	envelopeFormat  = "cnnperf-mlearn"
	envelopeVersion = 1
)

type envelope struct {
	Format  string          `json:"format"`
	Version int             `json:"version"`
	Kind    string          `json:"kind"`
	Model   json.RawMessage `json:"model"`
}

// MarshalRegressor serialises any of the five fitted paper regressors.
func MarshalRegressor(r Regressor) ([]byte, error) {
	var model any
	var err error
	switch m := r.(type) {
	case *LinearRegression:
		model, err = m.marshalBody()
	case *KNNRegressor:
		model, err = m.marshalBody()
	case *DecisionTree:
		model, err = m.marshalBody()
	case *RandomForest:
		model, err = m.marshalBody()
	case *XGBoost:
		model, err = m.marshalBody()
	default:
		return nil, fmt.Errorf("mlearn: cannot marshal regressor type %T", r)
	}
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(model)
	if err != nil {
		return nil, fmt.Errorf("mlearn: %w", err)
	}
	return json.Marshal(envelope{
		Format:  envelopeFormat,
		Version: envelopeVersion,
		Kind:    r.Name(),
		Model:   raw,
	})
}

// UnmarshalRegressor reconstructs a fitted regressor from
// MarshalRegressor output, validating the payload so a corrupt or
// adversarial artifact yields an error, never a model that panics.
func UnmarshalRegressor(b []byte) (Regressor, error) {
	var env envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("mlearn: decoding envelope: %w", err)
	}
	if env.Format != envelopeFormat {
		return nil, fmt.Errorf("mlearn: unexpected format %q", env.Format)
	}
	if env.Version != envelopeVersion {
		return nil, fmt.Errorf("mlearn: unsupported model version %d (want %d)", env.Version, envelopeVersion)
	}
	switch env.Kind {
	case "linear_regression":
		m := &LinearRegression{}
		return m, m.unmarshalBody(env.Model)
	case "knn":
		m := &KNNRegressor{}
		return m, m.unmarshalBody(env.Model)
	case "decision_tree":
		m := &DecisionTree{}
		return m, m.unmarshalBody(env.Model)
	case "random_forest":
		m := &RandomForest{}
		return m, m.unmarshalBody(env.Model)
	case "xgboost":
		m := &XGBoost{}
		return m, m.unmarshalBody(env.Model)
	default:
		return nil, fmt.Errorf("mlearn: unknown model kind %q", env.Kind)
	}
}

// scalerJSON is the serialisable form of the z-score scaler.
type scalerJSON struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

func encodeScaler(s *scaler) *scalerJSON {
	if s == nil {
		return nil
	}
	return &scalerJSON{Mean: s.mean, Std: s.std}
}

func decodeScaler(j *scalerJSON, numFeat int) (*scaler, error) {
	if j == nil {
		return nil, nil
	}
	if len(j.Mean) != numFeat || len(j.Std) != numFeat {
		return nil, fmt.Errorf("mlearn: scaler has %d/%d stats for %d features", len(j.Mean), len(j.Std), numFeat)
	}
	for i, sd := range j.Std {
		if sd == 0 {
			return nil, fmt.Errorf("mlearn: scaler feature %d has zero std", i)
		}
	}
	return &scaler{mean: j.Mean, std: j.Std}, nil
}

// --- LinearRegression ---

type linregJSON struct {
	Ridge       float64     `json:"ridge"`
	Normalize   bool        `json:"normalize"`
	NumFeatures int         `json:"num_features"`
	Coef        []float64   `json:"coef"`
	Scaler      *scalerJSON `json:"scaler,omitempty"`
}

func (m *LinearRegression) marshalBody() (any, error) {
	if !m.fitted {
		return nil, fmt.Errorf("mlearn: cannot marshal an unfitted linear regression")
	}
	return linregJSON{
		Ridge:       m.Ridge,
		Normalize:   m.Normalize,
		NumFeatures: m.numFeat,
		Coef:        m.coef,
		Scaler:      encodeScaler(m.scaler),
	}, nil
}

func (m *LinearRegression) unmarshalBody(b []byte) error {
	var j linregJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return fmt.Errorf("mlearn: decoding linear regression: %w", err)
	}
	if j.NumFeatures <= 0 || len(j.Coef) != j.NumFeatures+1 {
		return fmt.Errorf("mlearn: linear regression has %d coefficients for %d features", len(j.Coef), j.NumFeatures)
	}
	sc, err := decodeScaler(j.Scaler, j.NumFeatures)
	if err != nil {
		return err
	}
	if j.Normalize && sc == nil {
		return fmt.Errorf("mlearn: normalizing linear regression without a scaler")
	}
	m.Ridge = j.Ridge
	m.Normalize = j.Normalize
	m.numFeat = j.NumFeatures
	m.coef = j.Coef
	m.scaler = sc
	m.fitted = true
	return nil
}

// --- KNNRegressor ---

type knnJSON struct {
	K                int         `json:"k"`
	DistanceWeighted bool        `json:"distance_weighted"`
	Scaler           *scalerJSON `json:"scaler"`
	X                [][]float64 `json:"x"`
	Y                []float64   `json:"y"`
}

func (m *KNNRegressor) marshalBody() (any, error) {
	if len(m.X) == 0 || m.scaler == nil {
		return nil, fmt.Errorf("mlearn: cannot marshal an unfitted knn")
	}
	return knnJSON{
		K:                m.K,
		DistanceWeighted: m.DistanceWeighted,
		Scaler:           encodeScaler(m.scaler),
		X:                m.X,
		Y:                m.y,
	}, nil
}

func (m *KNNRegressor) unmarshalBody(b []byte) error {
	var j knnJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return fmt.Errorf("mlearn: decoding knn: %w", err)
	}
	if j.K <= 0 || len(j.X) == 0 || len(j.X) != len(j.Y) || j.Scaler == nil {
		return fmt.Errorf("mlearn: corrupt knn payload (k=%d, %d rows, %d responses)", j.K, len(j.X), len(j.Y))
	}
	p := len(j.Scaler.Mean)
	sc, err := decodeScaler(j.Scaler, p)
	if err != nil {
		return err
	}
	for i, row := range j.X {
		if len(row) != p {
			return fmt.Errorf("mlearn: knn row %d has %d features, want %d", i, len(row), p)
		}
	}
	m.K = j.K
	m.DistanceWeighted = j.DistanceWeighted
	m.scaler = sc
	m.X = j.X
	m.y = j.Y
	return nil
}

// --- DecisionTree ---

func (t *DecisionTree) marshalBody() (any, error) {
	if t.root == nil {
		return nil, fmt.Errorf("mlearn: cannot marshal an unfitted decision tree")
	}
	return treeJSON{
		Kind:        "decision_tree",
		NumFeatures: t.numFeat,
		MaxDepth:    t.MaxDepth,
		MinLeaf:     t.MinLeaf,
		MinSplit:    t.MinSplit,
		Importances: t.importances,
		Root:        encodeNode(t.root),
	}, nil
}

func (t *DecisionTree) unmarshalBody(b []byte) error {
	var j treeJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return fmt.Errorf("mlearn: decoding tree: %w", err)
	}
	loaded, err := decodeTreeJSON(&j)
	if err != nil {
		return err
	}
	*t = *loaded
	return nil
}

// decodeTreeJSON converts and validates one serialised tree (shared by
// UnmarshalRegressor and LoadDecisionTree).
func decodeTreeJSON(j *treeJSON) (*DecisionTree, error) {
	if j.Kind != "decision_tree" {
		return nil, fmt.Errorf("mlearn: unexpected model kind %q", j.Kind)
	}
	if j.NumFeatures <= 0 || j.Root == nil {
		return nil, fmt.Errorf("mlearn: corrupt tree payload")
	}
	root, err := decodeNode(j.Root)
	if err != nil {
		return nil, err
	}
	t := &DecisionTree{
		MaxDepth:    j.MaxDepth,
		MinLeaf:     j.MinLeaf,
		MinSplit:    j.MinSplit,
		numFeat:     j.NumFeatures,
		importances: j.Importances,
		root:        root,
	}
	if err := t.validateLoaded(root, 0); err != nil {
		return nil, err
	}
	if t.importances != nil && len(t.importances) != t.numFeat {
		return nil, fmt.Errorf("mlearn: tree has %d importances for %d features", len(t.importances), t.numFeat)
	}
	return t, nil
}

// --- RandomForest ---

type forestJSON struct {
	Trees       int        `json:"trees"`
	MaxDepth    int        `json:"max_depth"`
	MinLeaf     int        `json:"min_leaf"`
	MTry        int        `json:"mtry"`
	Seed        int64      `json:"seed"`
	NumFeatures int        `json:"num_features"`
	Forest      []treeJSON `json:"forest"`
}

func (m *RandomForest) marshalBody() (any, error) {
	if len(m.forest) == 0 {
		return nil, fmt.Errorf("mlearn: cannot marshal an unfitted random forest")
	}
	out := forestJSON{
		Trees:       m.Trees,
		MaxDepth:    m.MaxDepth,
		MinLeaf:     m.MinLeaf,
		MTry:        m.MTry,
		Seed:        m.Seed,
		NumFeatures: m.numFeat,
		Forest:      make([]treeJSON, 0, len(m.forest)),
	}
	for _, t := range m.forest {
		body, err := t.marshalBody()
		if err != nil {
			return nil, err
		}
		out.Forest = append(out.Forest, body.(treeJSON))
	}
	return out, nil
}

func (m *RandomForest) unmarshalBody(b []byte) error {
	var j forestJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return fmt.Errorf("mlearn: decoding random forest: %w", err)
	}
	if j.NumFeatures <= 0 || len(j.Forest) == 0 {
		return fmt.Errorf("mlearn: corrupt random forest payload")
	}
	forest := make([]*DecisionTree, 0, len(j.Forest))
	for i := range j.Forest {
		t, err := decodeTreeJSON(&j.Forest[i])
		if err != nil {
			return fmt.Errorf("mlearn: forest member %d: %w", i, err)
		}
		if t.numFeat != j.NumFeatures {
			return fmt.Errorf("mlearn: forest member %d trained on %d features, forest says %d", i, t.numFeat, j.NumFeatures)
		}
		forest = append(forest, t)
	}
	m.Trees = j.Trees
	m.MaxDepth = j.MaxDepth
	m.MinLeaf = j.MinLeaf
	m.MTry = j.MTry
	m.Seed = j.Seed
	m.numFeat = j.NumFeatures
	m.forest = forest
	return nil
}

// --- XGBoost ---

type xgbNodeJSON struct {
	Feature   int          `json:"feature,omitempty"`
	Threshold float64      `json:"threshold,omitempty"`
	Weight    float64      `json:"weight"`
	Left      *xgbNodeJSON `json:"left,omitempty"`
	Right     *xgbNodeJSON `json:"right,omitempty"`
}

type xgbJSON struct {
	Rounds      int            `json:"rounds"`
	Eta         float64        `json:"eta"`
	MaxDepth    int            `json:"max_depth"`
	Lambda      float64        `json:"lambda"`
	Gamma       float64        `json:"gamma"`
	Subsample   float64        `json:"subsample"`
	Seed        int64          `json:"seed"`
	Base        float64        `json:"base"`
	NumFeatures int            `json:"num_features"`
	Gains       []float64      `json:"gains"`
	Trees       []*xgbNodeJSON `json:"boosted_trees"`
}

func encodeXGBNode(n *xgbNode) *xgbNodeJSON {
	if n == nil {
		return nil
	}
	return &xgbNodeJSON{
		Feature:   n.feature,
		Threshold: n.threshold,
		Weight:    n.weight,
		Left:      encodeXGBNode(n.left),
		Right:     encodeXGBNode(n.right),
	}
}

func decodeXGBNode(j *xgbNodeJSON, numFeat, depth int) (*xgbNode, error) {
	if j == nil {
		return nil, nil
	}
	if depth > 64 {
		return nil, fmt.Errorf("mlearn: boosted tree deeper than 64 levels")
	}
	if (j.Left == nil) != (j.Right == nil) {
		return nil, fmt.Errorf("mlearn: corrupt boosted tree: node with a single child")
	}
	if j.Left != nil && (j.Feature < 0 || j.Feature >= numFeat) {
		return nil, fmt.Errorf("mlearn: boosted tree splits on feature %d of %d", j.Feature, numFeat)
	}
	left, err := decodeXGBNode(j.Left, numFeat, depth+1)
	if err != nil {
		return nil, err
	}
	right, err := decodeXGBNode(j.Right, numFeat, depth+1)
	if err != nil {
		return nil, err
	}
	return &xgbNode{
		feature:   j.Feature,
		threshold: j.Threshold,
		weight:    j.Weight,
		left:      left,
		right:     right,
	}, nil
}

func (m *XGBoost) marshalBody() (any, error) {
	if len(m.trees) == 0 {
		return nil, fmt.Errorf("mlearn: cannot marshal an unfitted xgboost model")
	}
	out := xgbJSON{
		Rounds:      m.Rounds,
		Eta:         m.Eta,
		MaxDepth:    m.MaxDepth,
		Lambda:      m.Lambda,
		Gamma:       m.Gamma,
		Subsample:   m.Subsample,
		Seed:        m.Seed,
		Base:        m.base,
		NumFeatures: m.numFeat,
		Gains:       m.gains,
		Trees:       make([]*xgbNodeJSON, 0, len(m.trees)),
	}
	for _, t := range m.trees {
		out.Trees = append(out.Trees, encodeXGBNode(t))
	}
	return out, nil
}

func (m *XGBoost) unmarshalBody(b []byte) error {
	var j xgbJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return fmt.Errorf("mlearn: decoding xgboost: %w", err)
	}
	if j.NumFeatures <= 0 || len(j.Trees) == 0 || j.Eta <= 0 {
		return fmt.Errorf("mlearn: corrupt xgboost payload")
	}
	if j.Gains != nil && len(j.Gains) != j.NumFeatures {
		return fmt.Errorf("mlearn: xgboost has %d gains for %d features", len(j.Gains), j.NumFeatures)
	}
	trees := make([]*xgbNode, 0, len(j.Trees))
	for i, tj := range j.Trees {
		if tj == nil {
			return fmt.Errorf("mlearn: xgboost round %d is null", i)
		}
		t, err := decodeXGBNode(tj, j.NumFeatures, 0)
		if err != nil {
			return fmt.Errorf("mlearn: xgboost round %d: %w", i, err)
		}
		trees = append(trees, t)
	}
	m.Rounds = j.Rounds
	m.Eta = j.Eta
	m.MaxDepth = j.MaxDepth
	m.Lambda = j.Lambda
	m.Gamma = j.Gamma
	m.Subsample = j.Subsample
	m.Seed = j.Seed
	m.base = j.Base
	m.numFeat = j.NumFeatures
	m.gains = j.Gains
	m.trees = trees
	return nil
}
