package mlearn

import (
	"fmt"
	"math"
	"sort"
)

// DecisionTree is a CART regression tree grown by greedy variance
// (impurity) reduction — the algorithm the paper selects for its final
// predictive model. Feature importances are the impurity decreases
// accumulated per split feature, as in the paper's Table III.
type DecisionTree struct {
	// MaxDepth limits tree depth (0 = unlimited).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 1).
	MinLeaf int
	// MinSplit is the minimum samples to attempt a split (default 2).
	MinSplit int

	root        *treeNode
	numFeat     int
	importances []float64

	// featureSubset, when non-nil, restricts candidate split features
	// (used by the random forest); indices into the feature vector.
	featureSubset func(depth int) []int
}

// treeNode is one node of the fitted tree.
type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	value     float64
	samples   int
}

func (n *treeNode) leaf() bool { return n.left == nil }

// NewDecisionTree returns an unlimited-depth CART regressor.
func NewDecisionTree() *DecisionTree { return &DecisionTree{MinLeaf: 1, MinSplit: 2} }

// Name implements Regressor.
func (t *DecisionTree) Name() string { return "decision_tree" }

// Fit implements Regressor.
func (t *DecisionTree) Fit(X [][]float64, y []float64) error {
	n, p, err := checkXY(X, y)
	if err != nil {
		return err
	}
	if t.MinLeaf <= 0 {
		t.MinLeaf = 1
	}
	if t.MinSplit < 2 {
		t.MinSplit = 2
	}
	t.numFeat = p
	t.importances = make([]float64, p)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	t.root = t.grow(X, y, idx, 0)
	// Normalise importances.
	total := 0.0
	for _, v := range t.importances {
		total += v
	}
	if total > 0 {
		for i := range t.importances {
			t.importances[i] /= total
		}
	}
	return nil
}

// grow recursively builds the tree over the sample indices idx.
func (t *DecisionTree) grow(X [][]float64, y []float64, idx []int, depth int) *treeNode {
	node := &treeNode{samples: len(idx), value: meanAt(y, idx)}
	if len(idx) < t.MinSplit || (t.MaxDepth > 0 && depth >= t.MaxDepth) {
		return node
	}
	imp := sseAt(y, idx, node.value)
	if imp == 0 {
		return node
	}
	feats := t.candidateFeatures(depth)
	bestGain := 0.0
	bestFeat := -1
	bestThr := 0.0
	var bestLeft, bestRight []int
	// Relative epsilon: splits whose gains differ only by floating-point
	// summation order count as ties, resolved to the earliest feature in
	// the schema.
	eps := 1e-9 * imp
	for _, f := range feats {
		thr, gain, left, right := bestSplitOnFeature(X, y, idx, f, imp, t.MinLeaf)
		if gain > bestGain+eps {
			bestGain, bestFeat, bestThr = gain, f, thr
			bestLeft, bestRight = left, right
		}
	}
	if bestFeat < 0 {
		return node
	}
	t.importances[bestFeat] += bestGain
	node.feature = bestFeat
	node.threshold = bestThr
	node.left = t.grow(X, y, bestLeft, depth+1)
	node.right = t.grow(X, y, bestRight, depth+1)
	return node
}

// candidateFeatures returns the feature indices to consider at a depth.
func (t *DecisionTree) candidateFeatures(depth int) []int {
	if t.featureSubset != nil {
		return t.featureSubset(depth)
	}
	out := make([]int, t.numFeat)
	for i := range out {
		out[i] = i
	}
	return out
}

// bestSplitOnFeature scans the sorted unique values of feature f for the
// threshold maximising impurity (SSE) reduction.
func bestSplitOnFeature(X [][]float64, y []float64, idx []int, f int, parentImp float64, minLeaf int) (thr, gain float64, left, right []int) {
	order := append([]int(nil), idx...)
	sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })

	n := len(order)
	// Prefix sums of y and y² in sorted order enable O(1) impurity.
	sumL, sqL := 0.0, 0.0
	sumT, sqT := 0.0, 0.0
	for _, i := range order {
		sumT += y[i]
		sqT += y[i] * y[i]
	}
	bestGain := 0.0
	bestPos := -1
	for pos := 0; pos < n-1; pos++ {
		yi := y[order[pos]]
		sumL += yi
		sqL += yi * yi
		if X[order[pos]][f] == X[order[pos+1]][f] {
			continue // cannot split between equal values
		}
		nl, nr := pos+1, n-pos-1
		if nl < minLeaf || nr < minLeaf {
			continue
		}
		impL := sqL - sumL*sumL/float64(nl)
		sumR, sqR := sumT-sumL, sqT-sqL
		impR := sqR - sumR*sumR/float64(nr)
		g := parentImp - impL - impR
		if g > bestGain {
			bestGain = g
			bestPos = pos
		}
	}
	if bestPos < 0 {
		return 0, 0, nil, nil
	}
	thr = (X[order[bestPos]][f] + X[order[bestPos+1]][f]) / 2
	left = append([]int(nil), order[:bestPos+1]...)
	right = append([]int(nil), order[bestPos+1:]...)
	return thr, bestGain, left, right
}

// Predict implements Regressor.
func (t *DecisionTree) Predict(x []float64) float64 {
	if t.root == nil || len(x) != t.numFeat {
		return 0
	}
	node := t.root
	for !node.leaf() {
		if x[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.value
}

// FeatureImportances implements FeatureImporter.
func (t *DecisionTree) FeatureImportances() []float64 {
	if t.importances == nil {
		return nil
	}
	return append([]float64(nil), t.importances...)
}

// Depth returns the depth of the fitted tree (0 for a stump/unfitted).
func (t *DecisionTree) Depth() int { return nodeDepth(t.root) }

func nodeDepth(n *treeNode) int {
	if n == nil || n.leaf() {
		return 0
	}
	l, r := nodeDepth(n.left), nodeDepth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Leaves returns the number of leaf nodes.
func (t *DecisionTree) Leaves() int { return countLeaves(t.root) }

func countLeaves(n *treeNode) int {
	if n == nil {
		return 0
	}
	if n.leaf() {
		return 1
	}
	return countLeaves(n.left) + countLeaves(n.right)
}

// String renders the tree structure for debugging.
func (t *DecisionTree) String() string {
	if t.root == nil {
		return "decision_tree(unfitted)"
	}
	return fmt.Sprintf("decision_tree(depth=%d, leaves=%d)", t.Depth(), t.Leaves())
}

func meanAt(y []float64, idx []int) float64 {
	s := 0.0
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func sseAt(y []float64, idx []int, m float64) float64 {
	s := 0.0
	for _, i := range idx {
		d := y[i] - m
		s += d * d
	}
	if s < 0 || math.IsNaN(s) {
		return 0
	}
	return s
}
