package mlearn

import (
	"math"
	"testing"
	"testing/quick"
)

// toyData is a small non-linear regression problem: y = x0^2 + 3*x1.
func toyData(n int) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	rng := newXorshift(12345)
	for i := range X {
		x0 := rng.float64v()*10 - 5
		x1 := rng.float64v() * 4
		X[i] = []float64{x0, x1}
		y[i] = x0*x0 + 3*x1
	}
	return X, y
}

func TestCheckXY(t *testing.T) {
	if _, _, err := checkXY(nil, nil); err == nil {
		t.Error("empty should error")
	}
	if _, _, err := checkXY([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, _, err := checkXY([][]float64{{}}, []float64{1}); err == nil {
		t.Error("zero-width should error")
	}
	if _, _, err := checkXY([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows should error")
	}
	n, p, err := checkXY([][]float64{{1, 2}, {3, 4}}, []float64{1, 2})
	if err != nil || n != 2 || p != 2 {
		t.Errorf("checkXY = %d,%d,%v", n, p, err)
	}
}

// ---------------------------------------------------------------------------
// Linear regression
// ---------------------------------------------------------------------------

func TestLinearRegressionRecoversLinearFunction(t *testing.T) {
	X := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 3}, {4, 1}, {5, 5}}
	y := make([]float64, len(X))
	for i, x := range X {
		y[i] = 7 + 2*x[0] - 3*x[1]
	}
	m := NewLinearRegression()
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		if got := m.Predict(x); math.Abs(got-y[i]) > 1e-6 {
			t.Errorf("row %d: predict %f, want %f", i, got, y[i])
		}
	}
	if got := m.Predict([]float64{10, 10}); math.Abs(got-(7+20-30)) > 1e-6 {
		t.Errorf("extrapolation = %f", got)
	}
}

func TestLinearRegressionSingularFallback(t *testing.T) {
	// Duplicate column: X^T X is singular, ridge fallback must engage.
	X := [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	y := []float64{2, 4, 6, 8}
	m := NewLinearRegression()
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("singular fit should fall back to ridge: %v", err)
	}
	if got := m.Predict([]float64{5, 5}); math.Abs(got-10) > 0.5 {
		t.Errorf("ridge prediction = %f, want about 10", got)
	}
}

func TestLinearRegressionCoefficientsAndUnfit(t *testing.T) {
	m := NewLinearRegression()
	if m.Predict([]float64{1, 2}) != 0 {
		t.Error("unfitted predict should be 0")
	}
	if m.Coefficients() != nil && len(m.Coefficients()) != 0 {
		t.Error("unfitted coefficients should be empty")
	}
	X := [][]float64{{1}, {2}, {3}}
	if err := m.Fit(X, []float64{2, 4, 6}); err != nil {
		t.Fatal(err)
	}
	if len(m.Coefficients()) != 2 {
		t.Errorf("coefficients = %v", m.Coefficients())
	}
	if m.Predict([]float64{1, 2, 3}) != 0 {
		t.Error("wrong-width predict should be 0")
	}
}

func TestSolve(t *testing.T) {
	// 2x + y = 5; x - y = 1 -> x=2, y=1.
	aug := [][]float64{{2, 1, 5}, {1, -1, 1}}
	sol, ok := solve(aug)
	if !ok || math.Abs(sol[0]-2) > 1e-12 || math.Abs(sol[1]-1) > 1e-12 {
		t.Errorf("solve = %v, %v", sol, ok)
	}
	if _, ok := solve([][]float64{{1, 1, 2}, {1, 1, 2}}); ok {
		t.Error("singular system should report !ok")
	}
}

// ---------------------------------------------------------------------------
// KNN
// ---------------------------------------------------------------------------

func TestKNNOneNeighborMemorises(t *testing.T) {
	X, y := toyData(40)
	m := NewKNN(1)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		if got := m.Predict(x); math.Abs(got-y[i]) > 1e-9 {
			t.Errorf("k=1 on training row %d: %f != %f", i, got, y[i])
		}
	}
}

func TestKNNAverages(t *testing.T) {
	X := [][]float64{{0}, {1}, {10}}
	y := []float64{0, 2, 100}
	m := NewKNN(2)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// Query near 0.5: neighbours {0,1} -> mean 1.
	if got := m.Predict([]float64{0.5}); math.Abs(got-1) > 1e-9 {
		t.Errorf("predict = %f, want 1", got)
	}
	// K larger than n clips.
	m2 := NewKNN(10)
	if err := m2.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := m2.Predict([]float64{0}); math.Abs(got-34) > 1e-9 {
		t.Errorf("clipped-K predict = %f, want mean 34", got)
	}
}

func TestKNNDistanceWeighted(t *testing.T) {
	X := [][]float64{{0}, {10}}
	y := []float64{0, 100}
	m := &KNNRegressor{K: 2, DistanceWeighted: true}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// Query at 1: much closer to 0 -> prediction well below 50.
	if got := m.Predict([]float64{1}); got >= 50 {
		t.Errorf("weighted predict = %f, want < 50", got)
	}
}

func TestKNNDefaults(t *testing.T) {
	m := NewKNN(0)
	if err := m.Fit([][]float64{{1}, {2}, {3}, {4}}, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if m.K != 3 {
		t.Errorf("default K = %d", m.K)
	}
	if m.Predict([]float64{1, 2}) != 0 {
		t.Error("wrong-width predict should be 0")
	}
}

// ---------------------------------------------------------------------------
// Decision tree
// ---------------------------------------------------------------------------

func TestDecisionTreeMemorisesDistinctRows(t *testing.T) {
	X, y := toyData(60)
	m := NewDecisionTree()
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		if got := m.Predict(x); math.Abs(got-y[i]) > 1e-9 {
			t.Errorf("row %d: %f != %f", i, got, y[i])
		}
	}
	if m.Leaves() < 2 || m.Depth() < 1 {
		t.Errorf("tree trivial: %s", m)
	}
}

func TestDecisionTreeDepthLimit(t *testing.T) {
	X, y := toyData(60)
	m := &DecisionTree{MaxDepth: 2, MinLeaf: 1, MinSplit: 2}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if d := m.Depth(); d > 2 {
		t.Errorf("depth %d exceeds limit 2", d)
	}
	if l := m.Leaves(); l > 4 {
		t.Errorf("leaves %d exceed 2^depth", l)
	}
}

func TestDecisionTreeMinLeaf(t *testing.T) {
	X, y := toyData(30)
	m := &DecisionTree{MinLeaf: 5, MinSplit: 10}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var walk func(n *treeNode)
	walk = func(n *treeNode) {
		if n == nil {
			return
		}
		if n.leaf() {
			if n.samples < 5 {
				t.Errorf("leaf with %d < 5 samples", n.samples)
			}
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(m.root)
}

func TestDecisionTreeImportances(t *testing.T) {
	// y depends only on feature 1: importance must concentrate there.
	X := make([][]float64, 50)
	y := make([]float64, 50)
	rng := newXorshift(7)
	for i := range X {
		X[i] = []float64{rng.float64v(), rng.float64v() * 10}
		y[i] = 5 * X[i][1]
	}
	m := NewDecisionTree()
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp := m.FeatureImportances()
	if len(imp) != 2 {
		t.Fatalf("importances = %v", imp)
	}
	if imp[1] < 0.95 {
		t.Errorf("feature 1 importance %f should dominate", imp[1])
	}
	if s := imp[0] + imp[1]; math.Abs(s-1) > 1e-9 {
		t.Errorf("importances sum %f", s)
	}
}

func TestDecisionTreeConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{5, 5, 5}
	m := NewDecisionTree()
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if m.Leaves() != 1 {
		t.Error("constant target should give a stump")
	}
	if m.Predict([]float64{99}) != 5 {
		t.Error("stump should predict the constant")
	}
}

// Property: tree predictions on arbitrary queries lie within the training
// response range (trees cannot extrapolate).
func TestTreePredictionsWithinRange(t *testing.T) {
	X, y := toyData(50)
	m := NewDecisionTree()
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range y {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	f := func(a, b float64) bool {
		x := []float64{sanitize(a, 100), sanitize(b, 100)}
		p := m.Predict(x)
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// ---------------------------------------------------------------------------
// Random forest
// ---------------------------------------------------------------------------

func TestRandomForestFitsAndGeneralises(t *testing.T) {
	X, y := toyData(100)
	m := NewRandomForest(50, 42)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// In-sample error should be small relative to the response scale.
	var sse, tot float64
	my := mean(y)
	for i, x := range X {
		d := m.Predict(x) - y[i]
		sse += d * d
		tt := y[i] - my
		tot += tt * tt
	}
	if sse/tot > 0.2 {
		t.Errorf("forest in-sample relative SSE %f too high", sse/tot)
	}
}

func TestRandomForestDeterministicBySeed(t *testing.T) {
	X, y := toyData(40)
	a := NewRandomForest(20, 1)
	b := NewRandomForest(20, 1)
	c := NewRandomForest(20, 2)
	for _, m := range []*RandomForest{a, b, c} {
		if err := m.Fit(X, y); err != nil {
			t.Fatal(err)
		}
	}
	q := []float64{1, 1}
	if a.Predict(q) != b.Predict(q) {
		t.Error("same seed must reproduce")
	}
	if a.Predict(q) == c.Predict(q) {
		t.Error("different seeds should differ")
	}
}

// Property: forest predictions stay within the training response range.
func TestForestPredictionsWithinRange(t *testing.T) {
	X, y := toyData(60)
	m := NewRandomForest(25, 3)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range y {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	f := func(a, b float64) bool {
		p := m.Predict([]float64{sanitize(a, 50), sanitize(b, 50)})
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForestImportancesNormalised(t *testing.T) {
	X, y := toyData(50)
	m := NewRandomForest(10, 9)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp := m.FeatureImportances()
	s := 0.0
	for _, v := range imp {
		if v < 0 {
			t.Error("negative importance")
		}
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("importances sum %f", s)
	}
}

func TestSampleK(t *testing.T) {
	rng := newXorshift(5)
	for trial := 0; trial < 20; trial++ {
		k := trial%4 + 1
		out := sampleK(rng, 8, k)
		if len(out) != k {
			t.Fatalf("sampleK returned %d, want %d", len(out), k)
		}
		seen := map[int]bool{}
		for _, v := range out {
			if v < 0 || v >= 8 || seen[v] {
				t.Fatalf("bad sample %v", out)
			}
			seen[v] = true
		}
	}
	if got := sampleK(rng, 3, 7); len(got) != 3 {
		t.Error("k >= p should return all features")
	}
}

// ---------------------------------------------------------------------------
// XGBoost
// ---------------------------------------------------------------------------

func TestXGBoostFitsNonLinear(t *testing.T) {
	X, y := toyData(100)
	m := NewXGBoost(42)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if m.NumTrees() != 100 {
		t.Errorf("trees = %d", m.NumTrees())
	}
	var sse, tot float64
	my := mean(y)
	for i, x := range X {
		d := m.Predict(x) - y[i]
		sse += d * d
		tt := y[i] - my
		tot += tt * tt
	}
	if sse/tot > 0.05 {
		t.Errorf("boosting in-sample relative SSE %f too high", sse/tot)
	}
}

func TestXGBoostGammaPrunes(t *testing.T) {
	X, y := toyData(50)
	loose := NewXGBoost(1)
	strict := NewXGBoost(1)
	strict.Gamma = 1e12 // no split can pay this penalty
	if err := loose.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := strict.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// With an impossible gamma every tree is a stump predicting ~0
	// residual, so predictions collapse to the base value.
	base := mean(y)
	if got := strict.Predict(X[0]); math.Abs(got-base) > 1e-6 {
		t.Errorf("gamma-pruned prediction %f, want base %f", got, base)
	}
	if got := loose.Predict(X[0]); math.Abs(got-y[0]) > math.Abs(strict.Predict(X[0])-y[0]) {
		t.Error("loose model should fit better than pruned")
	}
}

func TestXGBoostShrinkageConvergence(t *testing.T) {
	X, y := toyData(60)
	fast := &XGBoost{Rounds: 10, Eta: 0.9, MaxDepth: 3, Lambda: 1, Subsample: 1}
	slow := &XGBoost{Rounds: 10, Eta: 0.01, MaxDepth: 3, Lambda: 1, Subsample: 1}
	if err := fast.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := slow.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var fastErr, slowErr float64
	for i, x := range X {
		fastErr += math.Abs(fast.Predict(x) - y[i])
		slowErr += math.Abs(slow.Predict(x) - y[i])
	}
	if fastErr >= slowErr {
		t.Error("higher eta should fit training data faster in 10 rounds")
	}
}

func TestXGBoostImportances(t *testing.T) {
	X := make([][]float64, 60)
	y := make([]float64, 60)
	rng := newXorshift(11)
	for i := range X {
		X[i] = []float64{rng.float64v(), rng.float64v() * 10}
		y[i] = X[i][1] * X[i][1]
	}
	m := NewXGBoost(3)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp := m.FeatureImportances()
	if imp[1] < 0.9 {
		t.Errorf("feature 1 should dominate: %v", imp)
	}
}

func TestXGBoostSubsample(t *testing.T) {
	X, y := toyData(60)
	m := &XGBoost{Rounds: 30, Eta: 0.3, MaxDepth: 3, Lambda: 1, Subsample: 0.6, Seed: 4}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if m.Predict(X[0]) == 0 {
		t.Error("subsampled model should still predict")
	}
}

// ---------------------------------------------------------------------------
// Shared behaviour
// ---------------------------------------------------------------------------

func TestAllRegressorsImplementInterface(t *testing.T) {
	X, y := toyData(30)
	models := []Regressor{
		NewLinearRegression(),
		NewKNN(3),
		NewDecisionTree(),
		NewRandomForest(10, 1),
		NewXGBoost(1),
	}
	names := map[string]bool{}
	for _, m := range models {
		if err := m.Fit(X, y); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if names[m.Name()] {
			t.Errorf("duplicate name %s", m.Name())
		}
		names[m.Name()] = true
		preds := PredictAll(m, X)
		if len(preds) != len(X) {
			t.Errorf("%s: PredictAll length", m.Name())
		}
		for _, p := range preds {
			if math.IsNaN(p) || math.IsInf(p, 0) {
				t.Errorf("%s: non-finite prediction", m.Name())
			}
		}
	}
	// Importance providers.
	for _, m := range models {
		if fi, ok := m.(FeatureImporter); ok {
			imp := fi.FeatureImportances()
			if len(imp) != 2 {
				t.Errorf("%s: importances %v", m.(Regressor).Name(), imp)
			}
		}
	}
}

func TestAllRegressorsRejectBadInput(t *testing.T) {
	models := []Regressor{
		NewLinearRegression(),
		NewKNN(3),
		NewDecisionTree(),
		NewRandomForest(5, 1),
		NewXGBoost(1),
	}
	for _, m := range models {
		if err := m.Fit(nil, nil); err == nil {
			t.Errorf("%s: empty fit should error", m.Name())
		}
		if err := m.Fit([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
			t.Errorf("%s: ragged fit should error", m.Name())
		}
	}
}

func sanitize(v, scale float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, scale)
}
