// Package metrics implements the evaluation measures the paper reports:
// Mean Absolute Percentage Error, the R² coefficient of determination and
// its adjusted form, plus MAE and RMSE for diagnostics.
package metrics

import (
	"fmt"
	"math"
)

func checkPair(yTrue, yPred []float64) error {
	if len(yTrue) == 0 {
		return fmt.Errorf("metrics: empty input")
	}
	if len(yTrue) != len(yPred) {
		return fmt.Errorf("metrics: %d truths but %d predictions", len(yTrue), len(yPred))
	}
	return nil
}

// MAPE returns the mean absolute percentage error in percent
// (100/n * Σ |y-ŷ|/|y|). Zero-valued truths are rejected.
func MAPE(yTrue, yPred []float64) (float64, error) {
	if err := checkPair(yTrue, yPred); err != nil {
		return 0, err
	}
	s := 0.0
	for i := range yTrue {
		if yTrue[i] == 0 {
			return 0, fmt.Errorf("metrics: MAPE undefined for zero truth at index %d", i)
		}
		s += math.Abs(yTrue[i]-yPred[i]) / math.Abs(yTrue[i])
	}
	return 100 * s / float64(len(yTrue)), nil
}

// R2 returns the coefficient of determination 1 - SS_res/SS_tot. A model
// worse than predicting the mean yields negative values (as the paper's
// Linear Regression row shows).
func R2(yTrue, yPred []float64) (float64, error) {
	if err := checkPair(yTrue, yPred); err != nil {
		return 0, err
	}
	m := 0.0
	for _, v := range yTrue {
		m += v
	}
	m /= float64(len(yTrue))
	var ssRes, ssTot float64
	for i := range yTrue {
		d := yTrue[i] - yPred[i]
		ssRes += d * d
		t := yTrue[i] - m
		ssTot += t * t
	}
	if ssTot == 0 {
		return 0, fmt.Errorf("metrics: R2 undefined for constant truth")
	}
	return 1 - ssRes/ssTot, nil
}

// AdjustedR2 corrects R² for the number of predictors p over n samples:
// 1 - (1-R²)(n-1)/(n-p-1).
func AdjustedR2(r2 float64, n, p int) (float64, error) {
	if n-p-1 <= 0 {
		return 0, fmt.Errorf("metrics: adjusted R2 needs n > p+1 (n=%d, p=%d)", n, p)
	}
	return 1 - (1-r2)*float64(n-1)/float64(n-p-1), nil
}

// MAE returns the mean absolute error.
func MAE(yTrue, yPred []float64) (float64, error) {
	if err := checkPair(yTrue, yPred); err != nil {
		return 0, err
	}
	s := 0.0
	for i := range yTrue {
		s += math.Abs(yTrue[i] - yPred[i])
	}
	return s / float64(len(yTrue)), nil
}

// RMSE returns the root mean squared error.
func RMSE(yTrue, yPred []float64) (float64, error) {
	if err := checkPair(yTrue, yPred); err != nil {
		return 0, err
	}
	s := 0.0
	for i := range yTrue {
		d := yTrue[i] - yPred[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(yTrue))), nil
}
