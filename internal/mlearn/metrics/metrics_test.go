package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMAPE(t *testing.T) {
	got, err := MAPE([]float64{100, 200}, []float64{90, 220})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-12 { // (10% + 10%)/2
		t.Errorf("MAPE = %f, want 10", got)
	}
	if _, err := MAPE([]float64{0, 1}, []float64{1, 1}); err == nil {
		t.Error("zero truth should error")
	}
	if _, err := MAPE(nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := MAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestR2PerfectAndMean(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	r2, err := R2(y, y)
	if err != nil || r2 != 1 {
		t.Errorf("perfect R2 = %f, %v", r2, err)
	}
	meanPred := []float64{2.5, 2.5, 2.5, 2.5}
	r2, err = R2(y, meanPred)
	if err != nil || math.Abs(r2) > 1e-12 {
		t.Errorf("mean-prediction R2 = %f, %v", r2, err)
	}
	// Worse than the mean: negative (the paper's Linear Regression row).
	bad := []float64{4, 3, 2, 1}
	r2, err = R2(y, bad)
	if err != nil || r2 >= 0 {
		t.Errorf("inverted prediction R2 = %f, should be negative", r2)
	}
	if _, err := R2([]float64{5, 5}, []float64{5, 5}); err == nil {
		t.Error("constant truth should error")
	}
}

func TestAdjustedR2(t *testing.T) {
	// Paper Table II: Decision Tree R2 0.45 with n about 19 eval points
	// and 3 predictors gives adj R2 about 0.19 — check the formula's
	// direction: adjusted is always <= R2 for R2 < 1.
	adj, err := AdjustedR2(0.45, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	if adj >= 0.45 {
		t.Errorf("adjusted R2 %f should shrink below R2", adj)
	}
	if _, err := AdjustedR2(0.5, 4, 3); err == nil {
		t.Error("n <= p+1 should error")
	}
}

func TestMAEAndRMSE(t *testing.T) {
	y := []float64{1, 2, 3}
	p := []float64{2, 2, 5}
	mae, err := MAE(y, p)
	if err != nil || math.Abs(mae-1) > 1e-12 {
		t.Errorf("MAE = %f", mae)
	}
	rmse, err := RMSE(y, p)
	if err != nil || math.Abs(rmse-math.Sqrt(5.0/3)) > 1e-12 {
		t.Errorf("RMSE = %f", rmse)
	}
	if _, err := MAE(nil, nil); err == nil {
		t.Error("MAE empty should error")
	}
	if _, err := RMSE([]float64{1}, nil); err == nil {
		t.Error("RMSE mismatch should error")
	}
}

// Property: RMSE >= MAE always (Cauchy-Schwarz).
func TestRMSEDominatesMAE(t *testing.T) {
	f := func(a, b, c, d, e, g float64) bool {
		y := []float64{sane(a), sane(b), sane(c)}
		p := []float64{sane(d), sane(e), sane(g)}
		mae, err1 := MAE(y, p)
		rmse, err2 := RMSE(y, p)
		return err1 == nil && err2 == nil && rmse >= mae-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MAPE is invariant under positive scaling of both vectors.
func TestMAPEScaleInvariant(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		y := []float64{float64(a) + 1, float64(b) + 1}
		p := []float64{float64(c) + 1, float64(d) + 1}
		m1, err1 := MAPE(y, p)
		y2 := []float64{y[0] * 7, y[1] * 7}
		p2 := []float64{p[0] * 7, p[1] * 7}
		m2, err2 := MAPE(y2, p2)
		return err1 == nil && err2 == nil && math.Abs(m1-m2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// sane maps arbitrary floats into a well-behaved range.
func sane(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	return math.Mod(v, 1e6)
}
