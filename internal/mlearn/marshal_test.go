package mlearn

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// syntheticXY builds a deterministic regression problem with a known
// nonlinear structure, the same on every run and platform.
func syntheticXY(rows, cols int) ([][]float64, []float64) {
	// A simple LCG keeps the data deterministic without math/rand's
	// cross-version stability caveats.
	state := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	X := make([][]float64, rows)
	y := make([]float64, rows)
	for i := range X {
		X[i] = make([]float64, cols)
		for j := range X[i] {
			X[i][j] = 10 * next()
		}
		y[i] = 3*X[i][0] - 2*X[i][1%cols] + X[i][0]*X[i][2%cols]/5 + next()
	}
	return X, y
}

// fittedRegressors returns one fitted instance of each of the five
// paper regressors, trained on the same deterministic dataset.
func fittedRegressors(t testing.TB) []Regressor {
	t.Helper()
	X, y := syntheticXY(80, 5)
	regs := []Regressor{
		NewLinearRegression(),
		NewKNN(3),
		NewDecisionTree(),
		NewRandomForest(10, 42),
		NewXGBoost(42),
	}
	// Keep the boosted ensemble small: the golden file stays readable
	// and the round-trip still covers every node shape.
	regs[4].(*XGBoost).Rounds = 8
	for _, r := range regs {
		if err := r.Fit(X, y); err != nil {
			t.Fatalf("fitting %s: %v", r.Name(), err)
		}
	}
	return regs
}

// TestMarshalRoundTrip is the core property of the stable serialization:
// for every regressor kind, Unmarshal(Marshal(m)) is deep-equal to m,
// re-marshaling is byte-identical, and predictions are bit-identical.
func TestMarshalRoundTrip(t *testing.T) {
	probes, _ := syntheticXY(20, 5)
	for _, r := range fittedRegressors(t) {
		t.Run(r.Name(), func(t *testing.T) {
			b, err := MarshalRegressor(r)
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			// Marshal is deterministic.
			b2, err := MarshalRegressor(r)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b, b2) {
				t.Error("marshaling the same model twice differs")
			}
			got, err := UnmarshalRegressor(b)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if got.Name() != r.Name() {
				t.Fatalf("kind changed: %s -> %s", r.Name(), got.Name())
			}
			if !reflect.DeepEqual(got, r) {
				t.Errorf("round-tripped %s is not deep-equal to the original", r.Name())
			}
			// Re-marshal of the reconstruction is byte-identical.
			b3, err := MarshalRegressor(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b, b3) {
				t.Errorf("re-marshal of round-tripped %s differs", r.Name())
			}
			// Predictions are bit-identical, not merely close.
			for i, x := range probes {
				if w, g := r.Predict(x), got.Predict(x); w != g {
					t.Fatalf("probe %d: original predicts %v, reconstruction %v", i, w, g)
				}
			}
		})
	}
}

func TestMarshalRejectsUnfitted(t *testing.T) {
	for _, r := range []Regressor{
		NewLinearRegression(), NewKNN(3), NewDecisionTree(),
		NewRandomForest(10, 1), NewXGBoost(1),
	} {
		if _, err := MarshalRegressor(r); err == nil {
			t.Errorf("unfitted %s marshaled without error", r.Name())
		}
	}
}

func TestUnmarshalRejections(t *testing.T) {
	valid, err := MarshalRegressor(fittedRegressors(t)[0])
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]json.RawMessage
	if err := json.Unmarshal(valid, &env); err != nil {
		t.Fatal(err)
	}
	mutate := func(field, val string) []byte {
		m := map[string]json.RawMessage{}
		for k, v := range env {
			m[k] = v
		}
		m[field] = json.RawMessage(val)
		b, _ := json.Marshal(m)
		return b
	}
	cases := map[string][]byte{
		"not json":        []byte("@@@"),
		"wrong format":    mutate("format", `"other"`),
		"future version":  mutate("version", `99`),
		"unknown kind":    mutate("kind", `"svm"`),
		"null model":      mutate("model", `null`),
		"mismatched body": mutate("kind", `"xgboost"`), // linreg body under xgboost kind
	}
	for name, b := range cases {
		if _, err := UnmarshalRegressor(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// goldenEntry pins one regressor kind: its serialised form and a
// recorded prediction, so both the byte format and the semantics of
// loading old artifacts are locked.
type goldenEntry struct {
	Model      json.RawMessage `json:"model"`
	Input      []float64       `json:"input"`
	Prediction float64         `json:"prediction"`
}

// TestGoldenRegressors checks today's code still reads the checked-in
// serialised models and predicts exactly what was recorded when they
// were written. Regenerate with -update only on a deliberate format
// bump (and bump envelopeVersion).
func TestGoldenRegressors(t *testing.T) {
	golden := filepath.Join("testdata", "regressors_golden.json")
	probe := []float64{1.5, 2.5, 3.5, 4.5, 5.5}
	if *updateGolden {
		entries := map[string]goldenEntry{}
		for _, r := range fittedRegressors(t) {
			b, err := MarshalRegressor(r)
			if err != nil {
				t.Fatal(err)
			}
			entries[r.Name()] = goldenEntry{
				Model:      b,
				Input:      probe,
				Prediction: r.Predict(probe),
			}
		}
		out, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	var entries map[string]goldenEntry
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("golden file has %d kinds, want 5", len(entries))
	}
	for kind, e := range entries {
		r, err := UnmarshalRegressor(e.Model)
		if err != nil {
			t.Errorf("%s: today's code cannot read the golden model: %v", kind, err)
			continue
		}
		if r.Name() != kind {
			t.Errorf("%s: loaded as %s", kind, r.Name())
		}
		if got := r.Predict(e.Input); got != e.Prediction {
			t.Errorf("%s: golden model predicts %v, recorded %v", kind, got, e.Prediction)
		}
	}
}

// FuzzMlearnUnmarshal throws corrupted, truncated and version-skewed
// payloads at UnmarshalRegressor: it must never panic, and anything it
// accepts must re-marshal and round-trip to a deep-equal model.
func FuzzMlearnUnmarshal(f *testing.F) {
	for _, r := range fittedRegressors(f) {
		b, err := MarshalRegressor(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		f.Add(b[:len(b)/2])
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"format":"cnnperf-mlearn","version":1,"kind":"knn","model":{"k":1,"x":[[1]],"y":[0],"scaler":{"mean":[0],"std":[0]}}}`))
	f.Add([]byte(`{"format":"cnnperf-mlearn","version":2,"kind":"decision_tree","model":{}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalRegressor(data)
		if err != nil {
			return
		}
		b, err := MarshalRegressor(r)
		if err != nil {
			t.Fatalf("accepted model does not re-marshal: %v", err)
		}
		r2, err := UnmarshalRegressor(b)
		if err != nil {
			t.Fatalf("canonical form rejected: %v", err)
		}
		if !reflect.DeepEqual(r, r2) {
			t.Fatal("accepted model does not round-trip deep-equal")
		}
	})
}
