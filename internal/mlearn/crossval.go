package mlearn

import (
	"fmt"
	"math"

	"cnnperf/internal/mlearn/metrics"
)

// CVResult summarises a k-fold cross-validation of one regressor.
type CVResult struct {
	// Folds is the number of folds evaluated.
	Folds int
	// MAPEs holds the per-fold MAPE values.
	MAPEs []float64
	// MeanMAPE is the average of MAPEs.
	MeanMAPE float64
	// StdMAPE is the population standard deviation of MAPEs.
	StdMAPE float64
	// MeanR2 is the average per-fold R².
	MeanR2 float64
}

// CrossValidate performs deterministic k-fold cross-validation: the rows
// are shuffled once with the seed, partitioned into k folds, and for each
// fold a fresh model from factory is trained on the remainder and scored
// on the fold. It complements the paper's single 70/30 split with a
// variance estimate over splits.
func CrossValidate(factory func() Regressor, X [][]float64, y []float64, k int, seed int64) (CVResult, error) {
	n, _, err := checkXY(X, y)
	if err != nil {
		return CVResult{}, err
	}
	if k < 2 || k > n {
		return CVResult{}, fmt.Errorf("mlearn: k=%d folds invalid for %d rows", k, n)
	}
	// Deterministic shuffle.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	rng := newXorshift(seed)
	for i := n - 1; i > 0; i-- {
		j := int(rng.next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}

	res := CVResult{Folds: k}
	var r2Sum float64
	for fold := 0; fold < k; fold++ {
		lo := fold * n / k
		hi := (fold + 1) * n / k
		var trX, evX [][]float64
		var trY, evY []float64
		for pos, idx := range perm {
			if pos >= lo && pos < hi {
				evX = append(evX, X[idx])
				evY = append(evY, y[idx])
			} else {
				trX = append(trX, X[idx])
				trY = append(trY, y[idx])
			}
		}
		if len(evX) == 0 || len(trX) == 0 {
			return CVResult{}, fmt.Errorf("mlearn: fold %d is empty", fold)
		}
		model := factory()
		if err := model.Fit(trX, trY); err != nil {
			return CVResult{}, fmt.Errorf("mlearn: fold %d: %w", fold, err)
		}
		pred := PredictAll(model, evX)
		mape, err := metrics.MAPE(evY, pred)
		if err != nil {
			return CVResult{}, fmt.Errorf("mlearn: fold %d: %w", fold, err)
		}
		res.MAPEs = append(res.MAPEs, mape)
		if r2, err := metrics.R2(evY, pred); err == nil {
			r2Sum += r2
		}
	}
	res.MeanMAPE = mean(res.MAPEs)
	var varSum float64
	for _, m := range res.MAPEs {
		d := m - res.MeanMAPE
		varSum += d * d
	}
	res.StdMAPE = math.Sqrt(varSum / float64(k))
	res.MeanR2 = r2Sum / float64(k)
	return res, nil
}
