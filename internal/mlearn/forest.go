package mlearn

// RandomForest bags deterministic CART trees over bootstrap resamples
// with per-depth random feature subsets, averaging their predictions —
// the ensemble the paper compares against the single Decision Tree
// (and finds slightly worse on its small dataset, Table II).
type RandomForest struct {
	// Trees is the ensemble size (default 100).
	Trees int
	// MaxDepth bounds each tree (0 = unlimited).
	MaxDepth int
	// MinLeaf is the per-tree minimum leaf size (default 1).
	MinLeaf int
	// MTry is the number of features considered per split
	// (default ceil(p/3), the regression convention).
	MTry int
	// Seed drives the bootstrap and feature sampling.
	Seed int64

	forest  []*DecisionTree
	numFeat int
}

// NewRandomForest returns a forest with the given size and seed.
func NewRandomForest(trees int, seed int64) *RandomForest {
	return &RandomForest{Trees: trees, Seed: seed}
}

// Name implements Regressor.
func (m *RandomForest) Name() string { return "random_forest" }

// Fit implements Regressor.
func (m *RandomForest) Fit(X [][]float64, y []float64) error {
	n, p, err := checkXY(X, y)
	if err != nil {
		return err
	}
	if m.Trees <= 0 {
		m.Trees = 100
	}
	mtry := m.MTry
	if mtry <= 0 {
		mtry = (p + 2) / 3
	}
	if mtry > p {
		mtry = p
	}
	m.numFeat = p
	m.forest = make([]*DecisionTree, 0, m.Trees)
	rng := newXorshift(m.Seed)
	for t := 0; t < m.Trees; t++ {
		// Bootstrap resample.
		bx := make([][]float64, n)
		by := make([]float64, n)
		for i := 0; i < n; i++ {
			j := int(rng.next() % uint64(n))
			bx[i] = X[j]
			by[i] = y[j]
		}
		tree := &DecisionTree{MaxDepth: m.MaxDepth, MinLeaf: maxInt(1, m.MinLeaf), MinSplit: 2}
		// Random feature subset per split depth, seeded per tree.
		treeRng := newXorshift(m.Seed*1_000_003 + int64(t))
		tree.featureSubset = func(int) []int {
			return sampleK(treeRng, p, mtry)
		}
		if err := tree.Fit(bx, by); err != nil {
			return err
		}
		// The subset sampler is a fit-time concern only; dropping it
		// keeps fitted trees plain data (serializable, comparable).
		tree.featureSubset = nil
		m.forest = append(m.forest, tree)
	}
	return nil
}

// Predict implements Regressor (ensemble mean).
func (m *RandomForest) Predict(x []float64) float64 {
	if len(m.forest) == 0 || len(x) != m.numFeat {
		return 0
	}
	s := 0.0
	for _, t := range m.forest {
		s += t.Predict(x)
	}
	return s / float64(len(m.forest))
}

// FeatureImportances implements FeatureImporter (mean of tree
// importances).
func (m *RandomForest) FeatureImportances() []float64 {
	if len(m.forest) == 0 {
		return nil
	}
	out := make([]float64, m.numFeat)
	for _, t := range m.forest {
		for i, v := range t.FeatureImportances() {
			out[i] += v
		}
	}
	total := 0.0
	for _, v := range out {
		total += v
	}
	if total > 0 {
		for i := range out {
			out[i] /= total
		}
	}
	return out
}

// xorshift is a tiny deterministic PRNG (stdlib math/rand would also do,
// but an explicit generator makes the determinism contract obvious).
type xorshift struct{ s uint64 }

func newXorshift(seed int64) *xorshift {
	s := uint64(seed)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &xorshift{s: s}
}

func (x *xorshift) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}

// float64v returns a uniform value in [0,1).
func (x *xorshift) float64v() float64 {
	return float64(x.next()>>11) / float64(1<<53)
}

// sampleK draws k distinct values from [0,p) (Floyd's algorithm keeps it
// O(k) even for k close to p).
func sampleK(rng *xorshift, p, k int) []int {
	if k >= p {
		out := make([]int, p)
		for i := range out {
			out[i] = i
		}
		return out
	}
	chosen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for j := p - k; j < p; j++ {
		t := int(rng.next() % uint64(j+1))
		if chosen[t] {
			t = j
		}
		chosen[t] = true
		out = append(out, t)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
