// Package mlearn is a from-scratch, stdlib-only machine-learning library
// covering exactly the five regression algorithms the paper compares
// (Section IV-B): Linear Regression, K-Nearest Neighbors, Decision Tree,
// Random Forest and XGBoost-style gradient boosting, plus the evaluation
// metrics (MAPE, R², adjusted R²) and dataset handling (70/30 split,
// CSV I/O) of the paper's pipeline.
package mlearn

import "fmt"

// Regressor is a trainable scalar regression model.
type Regressor interface {
	// Name identifies the algorithm (e.g. "decision_tree").
	Name() string
	// Fit trains on rows X with responses y.
	Fit(X [][]float64, y []float64) error
	// Predict returns the estimate for one feature vector. Predict on
	// an unfitted model returns 0.
	Predict(x []float64) float64
}

// FeatureImporter is implemented by models that can attribute importance
// to input features (the paper's Table III uses the Decision Tree's
// impurity-based importances).
type FeatureImporter interface {
	// FeatureImportances returns one non-negative weight per feature,
	// summing to 1 (all zeros if the model is unfitted or constant).
	FeatureImportances() []float64
}

// checkXY validates training inputs.
func checkXY(X [][]float64, y []float64) (rows, cols int, err error) {
	if len(X) == 0 || len(y) == 0 {
		return 0, 0, fmt.Errorf("mlearn: empty training set")
	}
	if len(X) != len(y) {
		return 0, 0, fmt.Errorf("mlearn: %d rows but %d responses", len(X), len(y))
	}
	cols = len(X[0])
	if cols == 0 {
		return 0, 0, fmt.Errorf("mlearn: zero-width feature vectors")
	}
	for i, row := range X {
		if len(row) != cols {
			return 0, 0, fmt.Errorf("mlearn: row %d has %d features, want %d", i, len(row), cols)
		}
	}
	return len(X), cols, nil
}

// PredictAll runs Predict over every row.
func PredictAll(r Regressor, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = r.Predict(x)
	}
	return out
}

// mean returns the arithmetic mean of vs (0 for empty input).
func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}
