package mlearn

import (
	"fmt"
	"math"
)

// LinearRegression is ordinary least squares over an intercept-augmented
// design matrix, solved via the normal equations with partial-pivot
// Gaussian elimination and a tiny ridge fallback for singular systems.
// The paper includes it to test for linear dependence between the
// predictors and IPC (Table II finds none).
type LinearRegression struct {
	// Ridge is the L2 regularisation strength (0 = pure OLS with
	// automatic fallback on singularity).
	Ridge float64

	coef      []float64 // [intercept, w_1..w_p]
	numFeat   int
	fitted    bool
	scaler    *scaler
	Normalize bool // z-score features before fitting (numerical hygiene)
}

// NewLinearRegression returns an OLS model with feature normalisation
// enabled (the predictor magnitudes span 12 orders of magnitude).
func NewLinearRegression() *LinearRegression {
	return &LinearRegression{Normalize: true}
}

// Name implements Regressor.
func (m *LinearRegression) Name() string { return "linear_regression" }

// Fit implements Regressor.
func (m *LinearRegression) Fit(X [][]float64, y []float64) error {
	n, p, err := checkXY(X, y)
	if err != nil {
		return err
	}
	m.numFeat = p
	Xs := X
	if m.Normalize {
		m.scaler = fitScaler(X)
		Xs = m.scaler.transformAll(X)
	} else {
		m.scaler = nil
	}
	// Normal equations over [1 | X].
	d := p + 1
	ata := make([][]float64, d)
	for i := range ata {
		ata[i] = make([]float64, d+1) // augmented with A^T y
	}
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		row[0] = 1
		copy(row[1:], Xs[i])
		for a := 0; a < d; a++ {
			for b := 0; b < d; b++ {
				ata[a][b] += row[a] * row[b]
			}
			ata[a][d] += row[a] * y[i]
		}
	}
	ridge := m.Ridge
	for attempt := 0; attempt < 2; attempt++ {
		sys := copyMatrix(ata)
		for i := 1; i < d; i++ { // do not regularise the intercept
			sys[i][i] += ridge
		}
		coef, ok := solve(sys)
		if ok {
			m.coef = coef
			m.fitted = true
			return nil
		}
		ridge = math.Max(1e-8, ridge*10+1e-8)
	}
	return fmt.Errorf("mlearn: linear system is singular even with ridge fallback")
}

// Predict implements Regressor.
func (m *LinearRegression) Predict(x []float64) float64 {
	if !m.fitted || len(x) != m.numFeat {
		return 0
	}
	if m.scaler != nil {
		x = m.scaler.transform(x)
	}
	out := m.coef[0]
	for i, v := range x {
		out += m.coef[i+1] * v
	}
	return out
}

// Coefficients returns the fitted [intercept, weights...] vector.
func (m *LinearRegression) Coefficients() []float64 {
	return append([]float64(nil), m.coef...)
}

func copyMatrix(a [][]float64) [][]float64 {
	out := make([][]float64, len(a))
	for i := range a {
		out[i] = append([]float64(nil), a[i]...)
	}
	return out
}

// solve performs Gaussian elimination with partial pivoting on an
// augmented matrix [A | b], returning the solution or ok=false when the
// system is numerically singular.
func solve(aug [][]float64) ([]float64, bool) {
	n := len(aug)
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(aug[pivot][col]) < 1e-12 {
			return nil, false
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug[r][col] / aug[col][col]
			for c := col; c <= n; c++ {
				aug[r][c] -= f * aug[col][c]
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = aug[i][n] / aug[i][i]
	}
	return out, true
}

// scaler z-scores features using training statistics.
type scaler struct {
	mean, std []float64
}

func fitScaler(X [][]float64) *scaler {
	p := len(X[0])
	s := &scaler{mean: make([]float64, p), std: make([]float64, p)}
	n := float64(len(X))
	for _, row := range X {
		for j, v := range row {
			s.mean[j] += v
		}
	}
	for j := range s.mean {
		s.mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.mean[j]
			s.std[j] += d * d
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / n)
		if s.std[j] == 0 {
			s.std[j] = 1
		}
	}
	return s
}

func (s *scaler) transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.mean[j]) / s.std[j]
	}
	return out
}

func (s *scaler) transformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.transform(row)
	}
	return out
}
