package mlearn

import "sort"

// XGBoost is a gradient-boosted tree ensemble in the style of Chen &
// Guestrin's system (the paper's fifth candidate): squared-error
// objective with second-order leaf weights w = -G/(H+λ), split gain
// ½[G_L²/(H_L+λ) + G_R²/(H_R+λ) - G²/(H+λ)] - γ, shrinkage η and
// optional row subsampling.
type XGBoost struct {
	// Rounds is the number of boosting rounds (default 100).
	Rounds int
	// Eta is the shrinkage / learning rate (default 0.3).
	Eta float64
	// MaxDepth bounds each tree (default 4).
	MaxDepth int
	// Lambda is the L2 leaf regularisation (default 1).
	Lambda float64
	// Gamma is the minimum split gain (default 0).
	Gamma float64
	// Subsample is the row sampling fraction per round (default 1).
	Subsample float64
	// Seed drives subsampling.
	Seed int64

	base    float64
	trees   []*xgbNode
	numFeat int
	gains   []float64 // accumulated split gains per feature
}

// xgbNode is one node of a boosted tree.
type xgbNode struct {
	feature   int
	threshold float64
	left      *xgbNode
	right     *xgbNode
	weight    float64
}

func (n *xgbNode) leaf() bool { return n.left == nil }

// NewXGBoost returns a booster with the library defaults.
func NewXGBoost(seed int64) *XGBoost {
	return &XGBoost{Rounds: 100, Eta: 0.3, MaxDepth: 4, Lambda: 1, Subsample: 1, Seed: seed}
}

// Name implements Regressor.
func (m *XGBoost) Name() string { return "xgboost" }

// Fit implements Regressor.
func (m *XGBoost) Fit(X [][]float64, y []float64) error {
	n, p, err := checkXY(X, y)
	if err != nil {
		return err
	}
	if m.Rounds <= 0 {
		m.Rounds = 100
	}
	if m.Eta <= 0 {
		m.Eta = 0.3
	}
	if m.MaxDepth <= 0 {
		m.MaxDepth = 4
	}
	if m.Lambda < 0 {
		m.Lambda = 1
	}
	if m.Subsample <= 0 || m.Subsample > 1 {
		m.Subsample = 1
	}
	m.numFeat = p
	m.gains = make([]float64, p)
	m.base = mean(y)
	m.trees = nil

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = m.base
	}
	grad := make([]float64, n)
	hess := make([]float64, n)
	rng := newXorshift(m.Seed)
	for round := 0; round < m.Rounds; round++ {
		for i := range grad {
			grad[i] = pred[i] - y[i] // d/dŷ ½(ŷ-y)²
			hess[i] = 1
		}
		idx := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if m.Subsample >= 1 || rng.float64v() < m.Subsample {
				idx = append(idx, i)
			}
		}
		if len(idx) < 2 {
			idx = idx[:0]
			for i := 0; i < n; i++ {
				idx = append(idx, i)
			}
		}
		tree := m.growTree(X, grad, hess, idx, 0)
		m.trees = append(m.trees, tree)
		for i := 0; i < n; i++ {
			pred[i] += m.Eta * evalXGB(tree, X[i])
		}
	}
	return nil
}

// growTree builds one boosted tree on gradients/hessians.
func (m *XGBoost) growTree(X [][]float64, grad, hess []float64, idx []int, depth int) *xgbNode {
	var G, H float64
	for _, i := range idx {
		G += grad[i]
		H += hess[i]
	}
	node := &xgbNode{weight: -G / (H + m.Lambda)}
	if depth >= m.MaxDepth || len(idx) < 2 {
		return node
	}
	parentScore := G * G / (H + m.Lambda)
	bestGain := 0.0
	bestFeat := -1
	bestThr := 0.0
	var bestLeft, bestRight []int
	for f := 0; f < m.numFeat; f++ {
		order := append([]int(nil), idx...)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		var gl, hl float64
		for pos := 0; pos < len(order)-1; pos++ {
			i := order[pos]
			gl += grad[i]
			hl += hess[i]
			if X[order[pos]][f] == X[order[pos+1]][f] {
				continue
			}
			gr, hr := G-gl, H-hl
			gain := 0.5*(gl*gl/(hl+m.Lambda)+gr*gr/(hr+m.Lambda)-parentScore) - m.Gamma
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThr = (X[order[pos]][f] + X[order[pos+1]][f]) / 2
				bestLeft = append([]int(nil), order[:pos+1]...)
				bestRight = append([]int(nil), order[pos+1:]...)
			}
		}
	}
	if bestFeat < 0 {
		return node
	}
	m.gains[bestFeat] += bestGain
	node.feature = bestFeat
	node.threshold = bestThr
	node.left = m.growTree(X, grad, hess, bestLeft, depth+1)
	node.right = m.growTree(X, grad, hess, bestRight, depth+1)
	return node
}

func evalXGB(n *xgbNode, x []float64) float64 {
	for !n.leaf() {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.weight
}

// Predict implements Regressor.
func (m *XGBoost) Predict(x []float64) float64 {
	if len(m.trees) == 0 || len(x) != m.numFeat {
		return 0
	}
	out := m.base
	for _, t := range m.trees {
		out += m.Eta * evalXGB(t, x)
	}
	return out
}

// FeatureImportances implements FeatureImporter (normalised split gains).
func (m *XGBoost) FeatureImportances() []float64 {
	if m.gains == nil {
		return nil
	}
	out := append([]float64(nil), m.gains...)
	total := 0.0
	for _, v := range out {
		total += v
	}
	if total > 0 {
		for i := range out {
			out[i] /= total
		}
	}
	return out
}

// NumTrees returns the number of fitted boosting rounds.
func (m *XGBoost) NumTrees() int { return len(m.trees) }
