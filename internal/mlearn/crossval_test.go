package mlearn

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCrossValidateBasics(t *testing.T) {
	X, y := toyData(60)
	// Shift responses away from zero so MAPE is well-defined.
	for i := range y {
		y[i] += 100
	}
	res, err := CrossValidate(func() Regressor { return NewDecisionTree() }, X, y, 5, 42)
	if err != nil {
		t.Fatalf("cv: %v", err)
	}
	if res.Folds != 5 || len(res.MAPEs) != 5 {
		t.Fatalf("folds = %+v", res)
	}
	for i, m := range res.MAPEs {
		if m < 0 || math.IsNaN(m) {
			t.Errorf("fold %d MAPE %f", i, m)
		}
	}
	if res.MeanMAPE <= 0 || res.StdMAPE < 0 {
		t.Errorf("summary = %+v", res)
	}
	// Mean must lie within the fold range.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, m := range res.MAPEs {
		lo, hi = math.Min(lo, m), math.Max(hi, m)
	}
	if res.MeanMAPE < lo || res.MeanMAPE > hi {
		t.Error("mean outside fold range")
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	X, y := toyData(40)
	for i := range y {
		y[i] += 50
	}
	f := func() Regressor { return NewKNN(3) }
	a, err := CrossValidate(f, X, y, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(f, X, y, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.MAPEs {
		if a.MAPEs[i] != b.MAPEs[i] {
			t.Fatal("same seed must reproduce folds")
		}
	}
	c, err := CrossValidate(f, X, y, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.MAPEs[0] == c.MAPEs[0] && a.MAPEs[1] == c.MAPEs[1] && a.MAPEs[2] == c.MAPEs[2] {
		t.Error("different seeds should change the folds")
	}
}

func TestCrossValidateErrors(t *testing.T) {
	X, y := toyData(10)
	f := func() Regressor { return NewDecisionTree() }
	if _, err := CrossValidate(f, X, y, 1, 1); err == nil {
		t.Error("k=1 should error")
	}
	if _, err := CrossValidate(f, X, y, 11, 1); err == nil {
		t.Error("k>n should error")
	}
	if _, err := CrossValidate(f, nil, nil, 2, 1); err == nil {
		t.Error("empty data should error")
	}
}

func TestDecisionTreeSaveLoadRoundTrip(t *testing.T) {
	X, y := toyData(50)
	tree := NewDecisionTree()
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	back, err := LoadDecisionTree(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	// Identical predictions on training and fresh points.
	for _, x := range X {
		if tree.Predict(x) != back.Predict(x) {
			t.Fatal("loaded tree predicts differently")
		}
	}
	for i := 0; i < 20; i++ {
		q := []float64{float64(i) - 10, float64(i) / 3}
		if tree.Predict(q) != back.Predict(q) {
			t.Fatal("loaded tree differs on query points")
		}
	}
	// Importances survive.
	a, b := tree.FeatureImportances(), back.FeatureImportances()
	for i := range a {
		if a[i] != b[i] {
			t.Error("importances lost in round trip")
		}
	}
	if back.Depth() != tree.Depth() || back.Leaves() != tree.Leaves() {
		t.Error("structure changed in round trip")
	}
}

func TestSaveUnfittedTree(t *testing.T) {
	var buf bytes.Buffer
	if err := NewDecisionTree().Save(&buf); err == nil {
		t.Error("saving an unfitted tree should error")
	}
}

func TestLoadDecisionTreeErrors(t *testing.T) {
	cases := []string{
		"",
		"{",
		`{"kind":"random_forest","num_features":2,"root":{"value":1,"samples":1}}`,
		`{"kind":"decision_tree","num_features":0,"root":{"value":1,"samples":1}}`,
		`{"kind":"decision_tree","num_features":2}`,
		`{"kind":"decision_tree","num_features":2,"root":{"value":1,"samples":2,"left":{"value":1,"samples":1}}}`,
		`{"kind":"decision_tree","num_features":2,"root":{"feature":9,"threshold":1,"value":1,"samples":2,"left":{"value":1,"samples":1},"right":{"value":2,"samples":1}}}`,
	}
	for i, src := range cases {
		if _, err := LoadDecisionTree(strings.NewReader(src)); err == nil {
			t.Errorf("case %d should fail to load", i)
		}
	}
}

func TestPermutationImportance(t *testing.T) {
	// y depends strongly on feature 1, weakly on feature 0, never on 2.
	rng := newXorshift(21)
	X := make([][]float64, 80)
	y := make([]float64, 80)
	for i := range X {
		X[i] = []float64{rng.float64v(), rng.float64v() * 10, rng.float64v()}
		y[i] = 100 + X[i][0] + 20*X[i][1]
	}
	tree := NewDecisionTree()
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp, err := PermutationImportance(tree, X, y, 3, 7)
	if err != nil {
		t.Fatalf("permutation importance: %v", err)
	}
	if len(imp) != 3 {
		t.Fatalf("imp = %v", imp)
	}
	if imp[1] < imp[0] || imp[1] < imp[2] {
		t.Errorf("feature 1 should dominate: %v", imp)
	}
	if imp[2] > 0.05 {
		t.Errorf("unused feature importance %f should be ~0", imp[2])
	}
	sum := imp[0] + imp[1] + imp[2]
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("importances sum %f", sum)
	}
	// Deterministic.
	imp2, err := PermutationImportance(tree, X, y, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range imp {
		if imp[i] != imp2[i] {
			t.Fatal("permutation importance not deterministic")
		}
	}
	// Agreement with impurity importance on the dominant feature.
	gini := tree.FeatureImportances()
	maxG, maxP := 0, 0
	for i := range gini {
		if gini[i] > gini[maxG] {
			maxG = i
		}
		if imp[i] > imp[maxP] {
			maxP = i
		}
	}
	if maxG != maxP {
		t.Errorf("impurity (%d) and permutation (%d) disagree on the top feature", maxG, maxP)
	}
	// Errors.
	if _, err := PermutationImportance(tree, nil, nil, 3, 1); err == nil {
		t.Error("empty data should error")
	}
}
