package dataset

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func sample(t *testing.T, n int) *Dataset {
	t.Helper()
	d := New([]string{"f1", "f2"})
	for i := 0; i < n; i++ {
		if err := d.Append("row", []float64{float64(i), float64(i * i)}, float64(10*i)); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestAppendValidation(t *testing.T) {
	d := New([]string{"a", "b"})
	if err := d.Append("x", []float64{1}, 2); err == nil {
		t.Error("wrong-width row should error")
	}
	if err := d.Append("x", []float64{1, 2}, 3); err != nil {
		t.Errorf("append: %v", err)
	}
	if d.Len() != 1 {
		t.Errorf("len = %d", d.Len())
	}
}

func TestAppendCopiesInput(t *testing.T) {
	d := New([]string{"a"})
	x := []float64{1}
	if err := d.Append("r", x, 2); err != nil {
		t.Fatal(err)
	}
	x[0] = 99
	if d.Rows[0].X[0] != 1 {
		t.Error("Append must copy the feature slice")
	}
}

func TestXYAndTags(t *testing.T) {
	d := sample(t, 3)
	X, y := d.XY()
	if len(X) != 3 || len(y) != 3 || X[2][1] != 4 || y[1] != 10 {
		t.Errorf("XY wrong: %v %v", X, y)
	}
	if tags := d.Tags(); len(tags) != 3 || tags[0] != "row" {
		t.Errorf("tags wrong: %v", tags)
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	d := New([]string{"f"})
	for i := 0; i < 64; i++ {
		_ = d.Append(string(rune('a'+i%26))+string(rune('0'+i/26)), []float64{float64(i)}, float64(i))
	}
	train, eval, err := d.Split(0.7, 42)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 44 || eval.Len() != 20 {
		t.Errorf("split sizes %d/%d, want 44/20", train.Len(), eval.Len())
	}
	seen := make(map[float64]int)
	for _, r := range train.Rows {
		seen[r.X[0]]++
	}
	for _, r := range eval.Rows {
		seen[r.X[0]]++
	}
	if len(seen) != 64 {
		t.Errorf("split lost rows: %d distinct", len(seen))
	}
	for v, c := range seen {
		if c != 1 {
			t.Errorf("row %f appears %d times across splits", v, c)
		}
	}
}

func TestSplitDeterministicPerSeed(t *testing.T) {
	d := sample(t, 20)
	a1, _, err := d.Split(0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := d.Split(0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1.Rows {
		if a1.Rows[i].X[0] != a2.Rows[i].X[0] {
			t.Fatal("same seed must give the same split")
		}
	}
	b1, _, err := d.Split(0.7, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a1.Rows {
		if a1.Rows[i].X[0] != b1.Rows[i].X[0] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should shuffle differently")
	}
}

func TestSplitErrors(t *testing.T) {
	d := sample(t, 1)
	if _, _, err := d.Split(0.7, 1); err == nil {
		t.Error("single-row split should error")
	}
	d = sample(t, 10)
	if _, _, err := d.Split(0, 1); err == nil {
		t.Error("zero fraction should error")
	}
	if _, _, err := d.Split(1, 1); err == nil {
		t.Error("unit fraction should error")
	}
}

// Property: the split always partitions, for any size and seed.
func TestSplitPartitionProperty(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		size := int(n%60) + 2
		d := New([]string{"f"})
		for i := 0; i < size; i++ {
			_ = d.Append("r", []float64{float64(i)}, 0)
		}
		train, eval, err := d.Split(0.7, seed)
		if err != nil {
			return false
		}
		return train.Len()+eval.Len() == size && train.Len() >= 1 && eval.Len() >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := New([]string{"instr", "params"})
	_ = d.Append("vgg16@gtx1080ti", []float64{2.018e11, 138357544}, 651.1)
	_ = d.Append("alexnet@v100s", []float64{9.46e9, 60965224}, 2060.3)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if back.Len() != 2 || back.FeatureNames[1] != "params" {
		t.Fatalf("round trip wrong: %+v", back)
	}
	if back.Rows[0].Tag != "vgg16@gtx1080ti" || back.Rows[0].Y != 651.1 {
		t.Errorf("row 0 = %+v", back.Rows[0])
	}
	if back.Rows[1].X[0] != 9.46e9 {
		t.Errorf("row 1 X = %v", back.Rows[1].X)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"nottag,a,ipc\nx,1,2\n",
		"tag,a,notipc\nx,1,2\n",
		"tag,a,ipc\nx,banana,2\n",
		"tag,a,ipc\nx,1,banana\n",
	}
	for i, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestStats(t *testing.T) {
	d := New([]string{"a", "b"})
	_ = d.Append("r1", []float64{1, 10}, 100)
	_ = d.Append("r2", []float64{3, 10}, 200)
	_ = d.Append("r3", []float64{5, 10}, 300)
	stats, err := d.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 { // two features + response
		t.Fatalf("stats = %d", len(stats))
	}
	a := stats[0]
	if a.Min != 1 || a.Max != 5 || a.Mean != 3 || a.Distinct != 3 {
		t.Errorf("feature a stats = %+v", a)
	}
	b := stats[1]
	if b.Std != 0 || b.Distinct != 1 {
		t.Errorf("constant feature stats = %+v", b)
	}
	y := stats[2]
	if y.Name != "ipc" || y.Mean != 200 {
		t.Errorf("response stats = %+v", y)
	}
	text := FormatStats(stats)
	if !strings.Contains(text, "distinct") || !strings.Contains(text, "ipc") {
		t.Errorf("format malformed:\n%s", text)
	}
	empty := New([]string{"a"})
	if _, err := empty.Stats(); err == nil {
		t.Error("empty dataset stats should error")
	}
}
