// Package dataset holds the training data of the paper's pipeline: one
// row per (CNN, GPU) observation d = (y, p, c_1..c_m, t) — measured IPC,
// total executed instructions, GPU architectural features and trainable
// parameters (Eq. 1) — with the 70/30 train/evaluation split and CSV
// persistence.
package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Row is one observation.
type Row struct {
	// Tag identifies the observation, e.g. "vgg16@gtx1080ti".
	Tag string
	// X is the predictor vector.
	X []float64
	// Y is the response (measured IPC).
	Y float64
}

// Dataset is an ordered collection of rows sharing a feature schema.
type Dataset struct {
	// FeatureNames names the columns of X.
	FeatureNames []string
	// Rows are the observations.
	Rows []Row
}

// New creates an empty dataset with the given schema.
func New(featureNames []string) *Dataset {
	return &Dataset{FeatureNames: append([]string(nil), featureNames...)}
}

// Append adds one observation, validating its width.
func (d *Dataset) Append(tag string, x []float64, y float64) error {
	if len(x) != len(d.FeatureNames) {
		return fmt.Errorf("dataset: row %q has %d features, schema has %d", tag, len(x), len(d.FeatureNames))
	}
	d.Rows = append(d.Rows, Row{Tag: tag, X: append([]float64(nil), x...), Y: y})
	return nil
}

// Len returns the number of observations.
func (d *Dataset) Len() int { return len(d.Rows) }

// XY materialises the feature matrix and response vector.
func (d *Dataset) XY() ([][]float64, []float64) {
	X := make([][]float64, len(d.Rows))
	y := make([]float64, len(d.Rows))
	for i, r := range d.Rows {
		X[i] = r.X
		y[i] = r.Y
	}
	return X, y
}

// Tags returns the row tags in order.
func (d *Dataset) Tags() []string {
	out := make([]string, len(d.Rows))
	for i, r := range d.Rows {
		out[i] = r.Tag
	}
	return out
}

// Split partitions the dataset into train and evaluation subsets with
// trainFrac of the rows (rounded down, at least 1 each) going to
// training. The shuffle is a deterministic function of seed, and no row
// appears in both subsets — the disjointness the paper stresses.
func (d *Dataset) Split(trainFrac float64, seed int64) (train, eval *Dataset, err error) {
	n := len(d.Rows)
	if n < 2 {
		return nil, nil, fmt.Errorf("dataset: need at least 2 rows to split, have %d", n)
	}
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: train fraction %f outside (0,1)", trainFrac)
	}
	perm := permutation(n, seed)
	nTrain := int(trainFrac * float64(n))
	if nTrain < 1 {
		nTrain = 1
	}
	if nTrain >= n {
		nTrain = n - 1
	}
	train = New(d.FeatureNames)
	eval = New(d.FeatureNames)
	for i, idx := range perm {
		r := d.Rows[idx]
		if i < nTrain {
			train.Rows = append(train.Rows, r)
		} else {
			eval.Rows = append(eval.Rows, r)
		}
	}
	return train, eval, nil
}

// permutation returns a deterministic pseudo-random permutation of [0,n)
// via a seeded xorshift Fisher-Yates.
func permutation(n int, seed int64) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	s := uint64(seed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// WriteCSV serialises the dataset: header "tag,<features...>,ipc".
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"tag"}, d.FeatureNames...)
	header = append(header, "ipc")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	for _, r := range d.Rows {
		rec := make([]string, 0, len(r.X)+2)
		rec = append(rec, r.Tag)
		for _, v := range r.X {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		rec = append(rec, strconv.FormatFloat(r.Y, 'g', -1, 64))
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV deserialises a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	if len(header) < 3 || header[0] != "tag" || header[len(header)-1] != "ipc" {
		return nil, fmt.Errorf("dataset: malformed header %v", header)
	}
	d := New(header[1 : len(header)-1])
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: line %d has %d fields, want %d", line, len(rec), len(header))
		}
		x := make([]float64, len(rec)-2)
		for i := range x {
			v, err := strconv.ParseFloat(rec[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d field %d: %w", line, i+1, err)
			}
			x[i] = v
		}
		y, err := strconv.ParseFloat(rec[len(rec)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d response: %w", line, err)
		}
		d.Rows = append(d.Rows, Row{Tag: rec[0], X: x, Y: y})
	}
	return d, nil
}
