package dataset

import (
	"fmt"
	"math"
	"strings"
)

// FeatureStats summarises one feature column.
type FeatureStats struct {
	// Name is the feature name.
	Name string
	// Min and Max bound the observed values.
	Min, Max float64
	// Mean is the arithmetic mean.
	Mean float64
	// Std is the population standard deviation.
	Std float64
	// Distinct counts the distinct values (tree split opportunities).
	Distinct int
}

// Stats computes per-feature summary statistics plus the response
// column's, letting users sanity-check a dataset before training (the
// predictors span twelve orders of magnitude, so scaling bugs are easy
// to spot here).
func (d *Dataset) Stats() ([]FeatureStats, error) {
	if len(d.Rows) == 0 {
		return nil, fmt.Errorf("dataset: no rows to summarise")
	}
	p := len(d.FeatureNames)
	out := make([]FeatureStats, p+1)
	col := make([]float64, len(d.Rows))
	for f := 0; f <= p; f++ {
		name := "ipc"
		if f < p {
			name = d.FeatureNames[f]
		}
		for i, r := range d.Rows {
			if f < p {
				col[i] = r.X[f]
			} else {
				col[i] = r.Y
			}
		}
		out[f] = summarise(name, col)
	}
	return out, nil
}

func summarise(name string, col []float64) FeatureStats {
	s := FeatureStats{Name: name, Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	distinct := make(map[float64]bool, len(col))
	for _, v := range col {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		distinct[v] = true
	}
	s.Mean = sum / float64(len(col))
	var varSum float64
	for _, v := range col {
		d := v - s.Mean
		varSum += d * d
	}
	s.Std = math.Sqrt(varSum / float64(len(col)))
	s.Distinct = len(distinct)
	return s
}

// FormatStats renders the summary as an aligned table.
func FormatStats(stats []FeatureStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %12s %12s %12s %9s\n", "feature", "min", "max", "mean", "std", "distinct")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-24s %12.4g %12.4g %12.4g %12.4g %9d\n",
			s.Name, s.Min, s.Max, s.Mean, s.Std, s.Distinct)
	}
	return b.String()
}
