package mlearn

import (
	"math"
	"sort"
)

// KNNRegressor predicts the (optionally distance-weighted) mean response
// of the K nearest training rows under Euclidean distance over z-scored
// features. Standardisation matters here: the raw predictors span twelve
// orders of magnitude.
type KNNRegressor struct {
	// K is the neighbourhood size (default 3).
	K int
	// DistanceWeighted weights neighbours by 1/(d+eps).
	DistanceWeighted bool

	scaler *scaler
	X      [][]float64
	y      []float64
}

// NewKNN returns a K-nearest-neighbour regressor with the given K.
func NewKNN(k int) *KNNRegressor { return &KNNRegressor{K: k} }

// Name implements Regressor.
func (m *KNNRegressor) Name() string { return "knn" }

// Fit implements Regressor (KNN just memorises the standardised data).
func (m *KNNRegressor) Fit(X [][]float64, y []float64) error {
	if _, _, err := checkXY(X, y); err != nil {
		return err
	}
	if m.K <= 0 {
		m.K = 3
	}
	m.scaler = fitScaler(X)
	m.X = m.scaler.transformAll(X)
	m.y = append([]float64(nil), y...)
	return nil
}

// Predict implements Regressor.
func (m *KNNRegressor) Predict(x []float64) float64 {
	if len(m.X) == 0 || len(x) != len(m.scaler.mean) {
		return 0
	}
	q := m.scaler.transform(x)
	type hit struct {
		d float64
		y float64
	}
	hits := make([]hit, len(m.X))
	for i, row := range m.X {
		hits[i] = hit{d: euclidean(q, row), y: m.y[i]}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].d < hits[j].d })
	k := m.K
	if k > len(hits) {
		k = len(hits)
	}
	if !m.DistanceWeighted {
		s := 0.0
		for _, h := range hits[:k] {
			s += h.y
		}
		return s / float64(k)
	}
	var num, den float64
	for _, h := range hits[:k] {
		w := 1 / (h.d + 1e-9)
		num += w * h.y
		den += w
	}
	return num / den
}

func euclidean(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
