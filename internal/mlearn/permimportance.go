package mlearn

import (
	"fmt"

	"cnnperf/internal/mlearn/metrics"
)

// PermutationImportance measures model-agnostic feature importance: for
// each feature it shuffles that column of X (deterministically, seeded)
// and reports how much the model's MAPE degrades. Unlike impurity
// importance (the paper's Table III method) it needs no access to the
// model's internals and works for every Regressor, so it serves as a
// robustness check of the Table III ranking. Importances are normalised
// to sum to 1 when any degradation occurs; negative degradations (noise)
// clamp to 0.
func PermutationImportance(model Regressor, X [][]float64, y []float64, repeats int, seed int64) ([]float64, error) {
	n, p, err := checkXY(X, y)
	if err != nil {
		return nil, err
	}
	if repeats <= 0 {
		repeats = 3
	}
	base, err := metrics.MAPE(y, PredictAll(model, X))
	if err != nil {
		return nil, fmt.Errorf("mlearn: permutation baseline: %w", err)
	}
	out := make([]float64, p)
	rng := newXorshift(seed)
	col := make([]float64, n)
	shuffled := make([][]float64, n)
	rowBuf := make([][]float64, n)
	for i := range rowBuf {
		rowBuf[i] = make([]float64, p)
	}
	for f := 0; f < p; f++ {
		var degradation float64
		for r := 0; r < repeats; r++ {
			for i, row := range X {
				col[i] = row[f]
			}
			// Fisher-Yates on the column.
			for i := n - 1; i > 0; i-- {
				j := int(rng.next() % uint64(i+1))
				col[i], col[j] = col[j], col[i]
			}
			for i, row := range X {
				copy(rowBuf[i], row)
				rowBuf[i][f] = col[i]
				shuffled[i] = rowBuf[i]
			}
			m, err := metrics.MAPE(y, PredictAll(model, shuffled))
			if err != nil {
				return nil, fmt.Errorf("mlearn: permutation feature %d: %w", f, err)
			}
			degradation += m - base
		}
		d := degradation / float64(repeats)
		if d < 0 {
			d = 0
		}
		out[f] = d
	}
	total := 0.0
	for _, v := range out {
		total += v
	}
	if total > 0 {
		for i := range out {
			out[i] /= total
		}
	}
	return out, nil
}
