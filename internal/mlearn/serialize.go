package mlearn

import (
	"encoding/json"
	"fmt"
	"io"
)

// treeNodeJSON is the serialisable form of one tree node.
type treeNodeJSON struct {
	Feature   int           `json:"feature,omitempty"`
	Threshold float64       `json:"threshold,omitempty"`
	Value     float64       `json:"value"`
	Samples   int           `json:"samples"`
	Left      *treeNodeJSON `json:"left,omitempty"`
	Right     *treeNodeJSON `json:"right,omitempty"`
}

// treeJSON is the serialisable form of a fitted decision tree.
type treeJSON struct {
	Kind        string        `json:"kind"`
	NumFeatures int           `json:"num_features"`
	MaxDepth    int           `json:"max_depth"`
	MinLeaf     int           `json:"min_leaf"`
	MinSplit    int           `json:"min_split"`
	Importances []float64     `json:"importances"`
	Root        *treeNodeJSON `json:"root"`
}

func encodeNode(n *treeNode) *treeNodeJSON {
	if n == nil {
		return nil
	}
	return &treeNodeJSON{
		Feature:   n.feature,
		Threshold: n.threshold,
		Value:     n.value,
		Samples:   n.samples,
		Left:      encodeNode(n.left),
		Right:     encodeNode(n.right),
	}
}

func decodeNode(j *treeNodeJSON) (*treeNode, error) {
	if j == nil {
		return nil, nil
	}
	if (j.Left == nil) != (j.Right == nil) {
		return nil, fmt.Errorf("mlearn: corrupt tree: node with a single child")
	}
	left, err := decodeNode(j.Left)
	if err != nil {
		return nil, err
	}
	right, err := decodeNode(j.Right)
	if err != nil {
		return nil, err
	}
	return &treeNode{
		feature:   j.Feature,
		threshold: j.Threshold,
		value:     j.Value,
		samples:   j.Samples,
		left:      left,
		right:     right,
	}, nil
}

// Save serialises the fitted tree as JSON so a trained estimator can be
// shipped to DSE users without the training dataset.
func (t *DecisionTree) Save(w io.Writer) error {
	if t.root == nil {
		return fmt.Errorf("mlearn: cannot save an unfitted decision tree")
	}
	enc := json.NewEncoder(w)
	return enc.Encode(treeJSON{
		Kind:        "decision_tree",
		NumFeatures: t.numFeat,
		MaxDepth:    t.MaxDepth,
		MinLeaf:     t.MinLeaf,
		MinSplit:    t.MinSplit,
		Importances: t.importances,
		Root:        encodeNode(t.root),
	})
}

// LoadDecisionTree deserialises a tree written by Save.
func LoadDecisionTree(r io.Reader) (*DecisionTree, error) {
	var j treeJSON
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("mlearn: decoding tree: %w", err)
	}
	return decodeTreeJSON(&j)
}

// validateLoaded sanity-checks a deserialised tree: feature indices in
// range and bounded recursion depth.
func (t *DecisionTree) validateLoaded(n *treeNode, depth int) error {
	if n == nil {
		return nil
	}
	if depth > 64 {
		return fmt.Errorf("mlearn: loaded tree deeper than 64 levels")
	}
	if !n.leaf() {
		if n.feature < 0 || n.feature >= t.numFeat {
			return fmt.Errorf("mlearn: loaded tree splits on feature %d of %d", n.feature, t.numFeat)
		}
		if err := t.validateLoaded(n.left, depth+1); err != nil {
			return err
		}
		if err := t.validateLoaded(n.right, depth+1); err != nil {
			return err
		}
	}
	return nil
}
