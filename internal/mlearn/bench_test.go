package mlearn

import "testing"

func benchData(n int) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	rng := newXorshift(99)
	for i := range X {
		X[i] = []float64{
			rng.float64v() * 1e11, rng.float64v() * 1e8, rng.float64v() * 1000,
			rng.float64v() * 5000, rng.float64v() * 80, rng.float64v() * 2000,
		}
		y[i] = 500 + X[i][2]*0.8 + X[i][0]/1e9
	}
	return X, y
}

func benchFit(b *testing.B, mk func() Regressor) {
	X, y := benchData(64) // the paper's dataset scale
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mk().Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPredict(b *testing.B, mk func() Regressor) {
	X, y := benchData(64)
	m := mk()
	if err := m.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	q := X[13]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Predict(q) < 0 {
			b.Fatal("negative prediction")
		}
	}
}

func BenchmarkFitLinearRegression(b *testing.B) {
	benchFit(b, func() Regressor { return NewLinearRegression() })
}
func BenchmarkFitKNN(b *testing.B) { benchFit(b, func() Regressor { return NewKNN(3) }) }
func BenchmarkFitDecisionTree(b *testing.B) {
	benchFit(b, func() Regressor { return NewDecisionTree() })
}
func BenchmarkFitRandomForest(b *testing.B) {
	benchFit(b, func() Regressor { return NewRandomForest(100, 1) })
}
func BenchmarkFitXGBoost(b *testing.B) { benchFit(b, func() Regressor { return NewXGBoost(1) }) }

func BenchmarkPredictLinearRegression(b *testing.B) {
	benchPredict(b, func() Regressor { return NewLinearRegression() })
}
func BenchmarkPredictKNN(b *testing.B) { benchPredict(b, func() Regressor { return NewKNN(3) }) }
func BenchmarkPredictDecisionTree(b *testing.B) {
	benchPredict(b, func() Regressor { return NewDecisionTree() })
}
func BenchmarkPredictRandomForest(b *testing.B) {
	benchPredict(b, func() Regressor { return NewRandomForest(100, 1) })
}
func BenchmarkPredictXGBoost(b *testing.B) {
	benchPredict(b, func() Regressor { return NewXGBoost(1) })
}

func BenchmarkCrossValidate(b *testing.B) {
	X, y := benchData(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CrossValidate(func() Regressor { return NewDecisionTree() }, X, y, 5, 1); err != nil {
			b.Fatal(err)
		}
	}
}
