package parallel

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Pool is a long-lived bounded worker pool: a fixed set of goroutines
// started once and shared by every caller for the life of the process.
// Where ForEach spawns workers per call, a Pool bounds the *total*
// analysis parallelism across concurrent callers — the serving daemon
// runs one process-wide Pool so a burst of overlapping request batches
// cannot multiply into unbounded goroutines.
type Pool struct {
	tasks chan func()
	quit  chan struct{}
	wg    sync.WaitGroup

	closeOnce sync.Once
	size      int

	// Utilization counters for the metrics endpoint: how many workers
	// are executing a task right now, and how many tasks have completed
	// since the pool started. Lock-free so polling never contends with
	// the dispatch path.
	active    atomic.Int64
	completed atomic.Int64
}

// PoolStats is a point-in-time snapshot of a pool's utilization.
type PoolStats struct {
	// Size is the fixed worker count.
	Size int
	// Active is the number of workers currently running a task.
	Active int
	// Completed is the number of tasks finished since the pool started.
	Completed int64
}

// NewPool starts a pool of workers goroutines (<= 0 selects GOMAXPROCS).
// Callers must Close the pool when done with it.
func NewPool(workers int) *Pool {
	n := Workers(workers)
	p := &Pool{
		tasks: make(chan func()),
		quit:  make(chan struct{}),
		size:  n,
	}
	p.wg.Add(n)
	for range n {
		go func() {
			defer p.wg.Done()
			for {
				select {
				case <-p.quit:
					return
				case fn := <-p.tasks:
					p.active.Add(1)
					fn()
					p.active.Add(-1)
					p.completed.Add(1)
				}
			}
		}()
	}
	return p
}

// Size reports the number of pool workers.
func (p *Pool) Size() int { return p.size }

// Stats returns a lock-free utilization snapshot.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Size:      p.size,
		Active:    int(p.active.Load()),
		Completed: p.completed.Load(),
	}
}

// ForEach runs fn(ctx, i) for every i in [0, n) on the pool's shared
// workers, with the same contract as the package-level ForEach: the
// first error cancels the derived context, unstarted items are skipped,
// and the call returns only after every started item has finished.
// When the pool is saturated by other callers, submission blocks until
// a worker frees up (or ctx is cancelled). fn must not call ForEach on
// the same pool — nested fan-out on a full pool would deadlock.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for i := 0; i < n; i++ {
		i := i
		task := func() {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			if err := fn(ctx, i); err != nil {
				fail(err)
			}
		}
		wg.Add(1)
		select {
		case p.tasks <- task:
		case <-ctx.Done():
			wg.Done()
		case <-p.quit:
			wg.Done()
			fail(fmt.Errorf("parallel: pool is closed"))
		}
		if ctx.Err() != nil && firstErr == nil {
			// Parent cancellation: stop submitting, drain what started.
			break
		}
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Close stops the workers after their in-flight tasks finish and waits
// for them to exit. Close is idempotent; ForEach calls racing with
// Close fail with a pool-closed error rather than hanging.
func (p *Pool) Close() {
	p.closeOnce.Do(func() { close(p.quit) })
	p.wg.Wait()
}
