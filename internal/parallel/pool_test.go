package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolForEachRunsEveryItem(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var ran [50]atomic.Int32
	err := p.ForEach(context.Background(), len(ran), func(_ context.Context, i int) error {
		ran[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Fatalf("item %d ran %d times", i, got)
		}
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	defer p.Close()
	var inflight, peak atomic.Int32
	err := p.ForEach(context.Background(), 30, func(_ context.Context, i int) error {
		cur := inflight.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inflight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds pool size %d", got, workers)
	}
}

// TestPoolSharedAcrossCallers has several goroutines fan out on one pool
// concurrently; the global peak must still respect the pool bound.
func TestPoolSharedAcrossCallers(t *testing.T) {
	const workers = 4
	p := NewPool(workers)
	defer p.Close()
	var inflight, peak atomic.Int32
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.ForEach(context.Background(), 10, func(_ context.Context, i int) error {
				cur := inflight.Add(1)
				for {
					old := peak.Load()
					if cur <= old || peak.CompareAndSwap(old, cur) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				inflight.Add(-1)
				return nil
			})
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds pool size %d", got, workers)
	}
}

func TestPoolFirstErrorCancels(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var started atomic.Int32
	err := p.ForEach(context.Background(), 100, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 1 {
			return fmt.Errorf("boom at %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "boom at 1" {
		t.Fatalf("want first error, got %v", err)
	}
	if n := started.Load(); n >= 100 {
		t.Fatalf("error did not stop submissions: %d items started", n)
	}
}

func TestPoolParentCancellation(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	done := make(chan error, 1)
	go func() {
		done <- p.ForEach(ctx, 1000, func(ctx context.Context, i int) error {
			started.Add(1)
			time.Sleep(time.Millisecond)
			return nil
		})
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled ForEach returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ForEach did not return after cancellation")
	}
	if n := started.Load(); n >= 1000 {
		t.Fatal("cancellation did not stop submissions")
	}
}

func TestPoolCloseUnblocksForEach(t *testing.T) {
	p := NewPool(1)
	release := make(chan struct{})
	go p.ForEach(context.Background(), 1, func(_ context.Context, _ int) error {
		<-release
		return nil
	})
	time.Sleep(5 * time.Millisecond) // let the blocker occupy the only worker
	done := make(chan error, 1)
	go func() {
		done <- p.ForEach(context.Background(), 4, func(_ context.Context, _ int) error { return nil })
	}()
	time.Sleep(5 * time.Millisecond)
	close(release)
	p.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ForEach hung across Close")
	}
	p.Close() // idempotent
}

func TestPoolCloseStopsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(8)
	if err := p.ForEach(context.Background(), 16, func(_ context.Context, _ int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	p.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("worker goroutines leaked: %d before, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
