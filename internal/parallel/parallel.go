// Package parallel provides the bounded worker pool the analysis
// pipeline fans out on: N independent work items are distributed over a
// fixed number of goroutines with context cancellation and first-error
// propagation. Callers write results into index-addressed slots, so the
// assembled output is in deterministic input order regardless of the
// worker count or scheduling.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: values <= 0 mean
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines (workers <= 0 selects GOMAXPROCS). The first error cancels
// the shared context, no new items are started, and that error is
// returned once every in-flight item has finished — ForEach never leaks
// a goroutine. If the parent context is cancelled, the context error is
// returned. fn must confine its writes to the item's own result slot.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(ctx, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
