package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestForEachVisitsEveryIndex checks that every index runs exactly once
// for several worker counts, including the GOMAXPROCS default.
func TestForEachVisitsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		const n = 100
		var counts [n]atomic.Int32
		err := ForEach(context.Background(), workers, n, func(_ context.Context, i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestForEachEmpty checks the n <= 0 fast path.
func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(context.Context, int) error {
		t.Fatal("fn called for empty range")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestForEachFirstError checks that a failing item aborts the pool: its
// error is returned and no new items start after cancellation.
func TestForEachFirstError(t *testing.T) {
	boom := fmt.Errorf("boom")
	var started atomic.Int32
	err := ForEach(context.Background(), 2, 1000, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if s := started.Load(); s == 1000 {
		t.Fatalf("pool did not stop early: all %d items started", s)
	}
}

// TestForEachParentCancellation checks that cancelling the parent context
// stops the pool and surfaces the context error.
func TestForEachParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	errc := make(chan error, 1)
	go func() {
		errc <- ForEach(ctx, 2, 1_000_000, func(ctx context.Context, i int) error {
			ran.Add(1)
			time.Sleep(100 * time.Microsecond)
			return nil
		})
	}()
	for ran.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ForEach did not return after cancellation")
	}
	if r := ran.Load(); r == 1_000_000 {
		t.Fatal("cancellation did not stop the pool")
	}
}

// TestForEachLeaksNoGoroutines checks that both the success and the
// error path wind every worker down.
func TestForEachLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		_ = ForEach(context.Background(), 8, 50, func(_ context.Context, i int) error {
			if i == 25 {
				return fmt.Errorf("fail")
			}
			return nil
		})
		_ = ForEach(context.Background(), 8, 50, func(context.Context, int) error { return nil })
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestWorkersDefault checks the knob resolution.
func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}
