package core

import (
	"context"
	"reflect"
	"testing"

	"cnnperf/internal/analysiscache"
	"cnnperf/internal/artifactstore"
	"cnnperf/internal/gpu"
	"cnnperf/internal/zoo"
)

// TestStoreServedPredictions is the store-level property of the
// persistent artifact tier: predictions served from disk artifacts are
// bit-identical to freshly computed ones, for the zoo on both training
// GPUs. Pass A computes everything through a write-through tier backed
// by a temp store; pass B reopens the same store behind a cold memory
// cache and must (a) never re-train the estimator, (b) actually serve
// analyses from disk, and (c) reproduce the exact IPCs.
func TestStoreServedPredictions(t *testing.T) {
	models := append([]string(nil), zoo.TableIOrder...)
	if testing.Short() {
		models = models[:4]
	}
	gpus := append([]string(nil), gpu.TrainingGPUs...)
	ctx := context.Background()
	dir := t.TempDir()

	// pass opens the store fresh each time (proving the artifacts live
	// on disk, not in a shared handle) and predicts every model.
	pass := func(allowTraining bool) (map[string][]Prediction, analysiscache.Stats) {
		store, err := artifactstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		tier, err := NewArtifactTier(store)
		if err != nil {
			t.Fatal(err)
		}
		tier.SetBaseContext(ctx)
		cache := analysiscache.New(0)
		cache.SetSecondTier(tier)
		cfg := Config{Cache: cache}

		estAny, _, err := cache.GetOrCompute(EstimatorKey("", cfg), func() (any, error) {
			if !allowTraining {
				t.Error("estimator re-trained despite a persisted artifact")
			}
			return LeaveOneOutEstimatorContext(ctx, "", cfg)
		})
		if err != nil {
			t.Fatal(err)
		}
		est := estAny.(*Estimator)

		preds := make(map[string][]Prediction, len(models))
		for _, m := range models {
			a, err := AnalyzeCNNContext(ctx, m, cfg)
			if err != nil {
				t.Fatalf("%s: %v", m, err)
			}
			p, err := PredictAnalyzedContext(ctx, est, a, gpus)
			if err != nil {
				t.Fatalf("%s: %v", m, err)
			}
			preds[m] = p
		}
		return preds, cache.Stats()
	}

	fresh, _ := pass(true)
	served, stats := pass(false)

	if stats.DiskHits == 0 {
		t.Error("second pass never hit the disk tier")
	}
	for _, m := range models {
		f, s := fresh[m], served[m]
		if len(f) != len(gpus) {
			t.Fatalf("%s: %d predictions, want %d", m, len(f), len(gpus))
		}
		for i := range f {
			if f[i].IPC <= 0 {
				t.Errorf("%s/%s: non-positive IPC %v", m, f[i].GPU, f[i].IPC)
			}
		}
		// reflect.DeepEqual compares float64 with ==: bit-identical, not
		// merely close.
		if !reflect.DeepEqual(f, s) {
			t.Errorf("%s: disk-served predictions differ:\n fresh %+v\nserved %+v", m, f, s)
		}
	}
}
