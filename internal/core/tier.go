package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"cnnperf/internal/artifactstore"
	"cnnperf/internal/dca"
	"cnnperf/internal/gpusim"
	"cnnperf/internal/profiler"
	"cnnperf/internal/ptxanalysis"
	"cnnperf/internal/ptxgen"
)

// The artifact tier assembles one codec per persistable cache
// namespace, bridging the pipeline's in-memory analysis cache to the
// content-addressed disk store:
//
//	dca   per-launch dynamic-code-analysis reports (*dca.KernelReport)
//	dcac  compiled control-slice bytecode          (*dca.CompiledKernel)
//	ptxa  static kernel analyses                   (*ptxanalysis.KernelAnalysis)
//	lint  lint-gate results                        ([]ptxanalysis.Diag)
//	est   trained estimators                       (*Estimator)
//
// Each codec's Version() is the namespace format version: bump it in
// lockstep with the payload version constant of the owning package and
// the store wipes the stale namespace on next open.

type dcaCodec struct{}

func (dcaCodec) Namespace() string { return "dca" }
func (dcaCodec) Version() int      { return 1 }
func (dcaCodec) Encode(v any) ([]byte, error) {
	r, ok := v.(*dca.KernelReport)
	if !ok {
		return nil, fmt.Errorf("core: dca codec got %T", v)
	}
	return dca.MarshalKernelReport(r)
}
func (dcaCodec) Decode(b []byte) (any, error) { return dca.UnmarshalKernelReport(b) }

type dcacCodec struct{}

func (dcacCodec) Namespace() string { return "dcac" }
func (dcacCodec) Version() int      { return 1 }
func (dcacCodec) Encode(v any) ([]byte, error) {
	c, ok := v.(*dca.CompiledKernel)
	if !ok {
		return nil, fmt.Errorf("core: dcac codec got %T", v)
	}
	return dca.MarshalCompiledKernel(c)
}
func (dcacCodec) Decode(b []byte) (any, error) { return dca.UnmarshalCompiledKernel(b) }

type ptxaCodec struct{}

func (ptxaCodec) Namespace() string { return "ptxa" }
func (ptxaCodec) Version() int      { return 1 }
func (ptxaCodec) Encode(v any) ([]byte, error) {
	a, ok := v.(*ptxanalysis.KernelAnalysis)
	if !ok {
		return nil, fmt.Errorf("core: ptxa codec got %T", v)
	}
	return ptxanalysis.MarshalKernelAnalysis(a)
}
func (ptxaCodec) Decode(b []byte) (any, error) { return ptxanalysis.UnmarshalKernelAnalysis(b) }

type lintCodec struct{}

func (lintCodec) Namespace() string { return "lint" }
func (lintCodec) Version() int      { return 1 }
func (lintCodec) Encode(v any) ([]byte, error) {
	diags, ok := v.([]ptxanalysis.Diag)
	if !ok {
		return nil, fmt.Errorf("core: lint codec got %T", v)
	}
	return ptxanalysis.MarshalDiags(diags)
}
func (lintCodec) Decode(b []byte) (any, error) { return ptxanalysis.UnmarshalDiags(b) }

type estCodec struct{}

func (estCodec) Namespace() string { return "est" }
func (estCodec) Version() int      { return 1 }
func (estCodec) Encode(v any) ([]byte, error) {
	e, ok := v.(*Estimator)
	if !ok {
		return nil, fmt.Errorf("core: est codec got %T", v)
	}
	return MarshalEstimator(e)
}
func (estCodec) Decode(b []byte) (any, error) { return UnmarshalEstimator(b) }

// NewArtifactTier builds the disk tier persisting every artifact class
// the pipeline caches. store may be nil for a snapshot-only tier.
func NewArtifactTier(store *artifactstore.Store) (*artifactstore.Tier, error) {
	return artifactstore.NewTier(store,
		dcaCodec{}, dcacCodec{}, ptxaCodec{}, lintCodec{}, estCodec{})
}

// configFingerprintView is the subset of Config that changes analysis
// or training results. Workers and Cache deliberately excluded: they
// change scheduling, never values (the determinism harness enforces
// it), so artifacts stay shareable across differently-sized deployments.
type configFingerprintView struct {
	PTX              ptxgen.Options  `json:"ptx"`
	Sim              gpusim.Config   `json:"sim"`
	Prof             profiler.Config `json:"prof"`
	TrainFrac        float64         `json:"train_frac"`
	SplitSeed        int64           `json:"split_seed"`
	ExtendedFeatures bool            `json:"extended_features"`
	StaticFeatures   bool            `json:"static_features"`
	BBFeatures       bool            `json:"bb_features"`
	ReferenceInterp  bool            `json:"reference_interp"`
}

// ConfigFingerprint hashes the result-affecting configuration, so
// persisted estimators trained under one configuration are never served
// under another.
func ConfigFingerprint(cfg Config) string {
	b, err := json.Marshal(configFingerprintView{
		PTX:              cfg.PTX,
		Sim:              cfg.Sim,
		Prof:             cfg.Prof,
		TrainFrac:        cfg.TrainFrac,
		SplitSeed:        cfg.SplitSeed,
		ExtendedFeatures: cfg.ExtendedFeatures,
		StaticFeatures:   cfg.StaticFeatures,
		BBFeatures:       cfg.BBFeatures,
		ReferenceInterp:  cfg.ReferenceInterp,
	})
	if err != nil {
		// The view is plain data; Marshal cannot fail. Guard anyway.
		panic(fmt.Sprintf("core: fingerprinting config: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// EstimatorKey is the content key of the leave-one-out estimator that
// excludes the given model (empty = full-zoo estimator) under cfg. The
// "est:" prefix routes it to the estimator codec of the artifact tier.
func EstimatorKey(exclude string, cfg Config) string {
	h := sha256.New()
	var frame [8]byte
	writePart := func(s string) {
		binary.BigEndian.PutUint64(frame[:], uint64(len(s)))
		h.Write(frame[:])
		h.Write([]byte(s))
	}
	writePart("cnnperf-est")
	writePart(exclude)
	writePart(ConfigFingerprint(cfg))
	return "est:" + hex.EncodeToString(h.Sum(nil))
}
