package core_test

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"cnnperf/internal/analysiscache"
	"cnnperf/internal/cnn"
	"cnnperf/internal/core"
	"cnnperf/internal/gpu"
	"cnnperf/internal/gpusim"
	"cnnperf/internal/obs"
	"cnnperf/internal/zoo"
)

// workerCounts are the pool sizes every determinism test sweeps: the
// sequential baseline, a fixed mid-size pool, and whatever the host has.
func workerCounts() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0)}
}

// datasetCSV builds the dataset with the given configuration and
// serializes it, so different pipeline configurations can be compared
// byte for byte.
func datasetCSV(t *testing.T, models []string, cfg core.Config) string {
	t.Helper()
	ds, _, err := core.BuildDataset(models, gpu.TrainingGPUs, cfg)
	if err != nil {
		t.Fatalf("BuildDataset(workers=%d): %v", cfg.Workers, err)
	}
	var sb strings.Builder
	if err := ds.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestBuildDatasetDeterministicAcrossWorkers asserts the tentpole
// guarantee: the serialized dataset is byte-identical no matter how many
// workers built it, with and without the analysis cache.
func TestBuildDatasetDeterministicAcrossWorkers(t *testing.T) {
	models := []string{"alexnet", "mobilenet", "mobilenetv2", "squeezenet"}
	cases := []struct {
		name  string
		cache bool
	}{
		{"uncached", false},
		{"cached", true},
	}
	baseline := datasetCSV(t, models, core.Config{Workers: 1})
	if baseline == "" {
		t.Fatal("empty baseline CSV")
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, w := range workerCounts() {
				cfg := core.Config{Workers: w}
				if tc.cache {
					cfg.Cache = analysiscache.New(0)
				}
				if got := datasetCSV(t, models, cfg); got != baseline {
					t.Errorf("workers=%d cache=%t dataset differs from sequential uncached baseline:\n%s\nvs\n%s",
						w, tc.cache, got, baseline)
				}
			}
		})
	}
}

// TestCacheEquivalenceFullZoo runs the full Table I inventory — the
// paper's actual phase-1 workload — through the memoized pipeline and
// requires the rows to match the uncached build exactly, while the cache
// must have been genuinely exercised.
func TestCacheEquivalenceFullZoo(t *testing.T) {
	if testing.Short() {
		t.Skip("two full-zoo dataset builds in -short mode")
	}
	workers := runtime.GOMAXPROCS(0)
	uncached := datasetCSV(t, zoo.TableIOrder, core.Config{Workers: workers})
	cache := analysiscache.New(0)
	cached := datasetCSV(t, zoo.TableIOrder, core.Config{Workers: workers, Cache: cache})
	if cached != uncached {
		t.Fatal("cached full-zoo dataset differs from uncached build")
	}
	s := cache.Stats()
	if s.Hits == 0 {
		t.Fatalf("full-zoo build never hit the cache: %s", s)
	}
	t.Logf("full-zoo cache: %s", s)
}

// TestReferenceVsCompiledInterpreter is the engine-divergence gate: the
// dataset built with the compiled register-slot bytecode engine (the
// default) must be byte-identical to one built with the reference
// tree-walking interpreter, with and without the analysis cache. Any
// divergence between the two engines fails the build here.
func TestReferenceVsCompiledInterpreter(t *testing.T) {
	models := []string{"alexnet", "mobilenet", "mobilenetv2", "squeezenet"}
	if !testing.Short() {
		models = zoo.TableIOrder
	}
	workers := runtime.GOMAXPROCS(0)
	compiled := datasetCSV(t, models, core.Config{Workers: workers})
	if compiled == "" {
		t.Fatal("empty compiled-engine CSV")
	}
	cases := []struct {
		name string
		cfg  core.Config
	}{
		{"reference_uncached", core.Config{Workers: workers, ReferenceInterp: true}},
		{"reference_cached", core.Config{Workers: workers, ReferenceInterp: true, Cache: analysiscache.New(0)}},
		{"compiled_cached", core.Config{Workers: workers, Cache: analysiscache.New(0)}},
		{"unbatched_uncached", core.Config{Workers: workers, UnbatchedExec: true}},
		{"unbatched_cached", core.Config{Workers: workers, UnbatchedExec: true, Cache: analysiscache.New(0)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := datasetCSV(t, models, tc.cfg); got != compiled {
				t.Error("dataset diverges from the compiled-engine baseline")
			}
		})
	}
}

// TestEvaluateRegressorsDeterministicAcrossWorkers asserts the Table II
// evaluation rows do not depend on the worker count.
func TestEvaluateRegressorsDeterministicAcrossWorkers(t *testing.T) {
	cfg := core.DefaultConfig()
	ds, _, err := core.BuildDataset([]string{"alexnet", "mobilenet", "mobilenetv2", "squeezenet"}, gpu.TrainingGPUs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	train, eval, err := ds.Split(0.7, cfg.SplitSeed)
	if err != nil {
		t.Fatal(err)
	}
	var baseline string
	for _, w := range workerCounts() {
		evals, err := core.EvaluateRegressorsContext(context.Background(),
			train, eval, core.DefaultRegressors(cfg.SplitSeed), w)
		if err != nil {
			t.Fatalf("EvaluateRegressorsContext(workers=%d): %v", w, err)
		}
		got := fmt.Sprintf("%+v", evals)
		if baseline == "" {
			baseline = got
			continue
		}
		if got != baseline {
			t.Errorf("workers=%d evaluations differ:\n%s\nvs\n%s", w, got, baseline)
		}
	}
}

// TestFrequencySweepDeterministicAcrossWorkers asserts the DVFS sweep
// points are identical for every worker count.
func TestFrequencySweepDeterministicAcrossWorkers(t *testing.T) {
	a, err := core.AnalyzeCNN("alexnet", core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := gpu.MustLookup("gtx1080ti")
	clocks := []float64{800, 1000, 1200, 1400, 1582, 1800}
	var baseline string
	for _, w := range workerCounts() {
		points, err := gpusim.FrequencySweep(a.Report, spec, clocks, gpusim.Config{NoisePct: -1, Workers: w})
		if err != nil {
			t.Fatalf("FrequencySweep(workers=%d): %v", w, err)
		}
		raw, err := json.Marshal(points)
		if err != nil {
			t.Fatal(err)
		}
		if baseline == "" {
			baseline = string(raw)
			continue
		}
		if string(raw) != baseline {
			t.Errorf("workers=%d sweep differs:\n%s\nvs\n%s", w, raw, baseline)
		}
	}
}

// waitForGoroutines polls until the goroutine count drops back to the
// pre-test level (small slack for runtime helpers) or the deadline hits.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after worker-pool failure", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBuildDatasetFirstErrorPropagation plants a structurally broken
// model mid-list and requires the pool to abort with its error — under
// every worker count — without leaking goroutines.
func TestBuildDatasetFirstErrorPropagation(t *testing.T) {
	models := []*cnn.Model{
		zoo.MustBuild("alexnet"),
		zoo.MustBuild("mobilenet"),
		&cnn.Model{Name: "broken"}, // fails validation: no output node
		zoo.MustBuild("mobilenetv2"),
		zoo.MustBuild("squeezenet"),
	}
	for _, w := range workerCounts() {
		before := runtime.NumGoroutine()
		_, _, err := core.BuildDatasetFromModelsContext(context.Background(),
			models, gpu.TrainingGPUs, core.Config{Workers: w})
		if err == nil {
			t.Fatalf("workers=%d: broken model did not fail the build", w)
		}
		if !strings.Contains(err.Error(), "broken") {
			t.Fatalf("workers=%d: error does not name the broken model: %v", w, err)
		}
		waitForGoroutines(t, before)
	}
}

// TestBuildDatasetPreCancelledContext requires an already-cancelled
// context to abort the build before any analysis work runs.
func TestBuildDatasetPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := runtime.NumGoroutine()
	_, _, err := core.BuildDatasetContext(ctx, []string{"alexnet"}, gpu.TrainingGPUs, core.Config{Workers: 4})
	if err == nil {
		t.Fatal("cancelled context did not abort the build")
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("error is not the cancellation: %v", err)
	}
	waitForGoroutines(t, before)
}

// TestTracingDeterminism proves span recording is an observer, not a
// participant: the full predict path (leave-one-out training, analysis,
// per-GPU scoring) returns byte-identical results under a live tracer
// and under a bare context, and the traced run really recorded spans.
func TestTracingDeterminism(t *testing.T) {
	model := "alexnet"
	gpus := []string{gpu.TrainingGPUs[0]}

	run := func(ctx context.Context) string {
		cfg := core.DefaultConfig()
		cfg.Cache = analysiscache.New(0)
		preds, a, err := core.PredictCNNContext(ctx, model, gpus, cfg)
		if err != nil {
			t.Fatalf("PredictCNNContext: %v", err)
		}
		blob, err := json.Marshal(struct {
			Preds    []core.Prediction
			Executed int64
		}{preds, a.Report.Executed})
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}

	bare := run(context.Background())
	tracer := obs.NewTracer()
	traced := run(obs.WithTracer(context.Background(), tracer))
	if traced != bare {
		t.Fatalf("tracing changed prediction output:\nbare:   %s\ntraced: %s", bare, traced)
	}
	if tracer.SpanCount() == 0 {
		t.Fatal("traced run recorded no spans")
	}
	totals := tracer.StageTotals()
	for _, want := range []string{"model.analyze", "dca.analyze", "mlearn.train", "features", "predict"} {
		if _, ok := totals[want]; !ok {
			t.Errorf("traced run missing %q spans (have %v)", want, totals)
		}
	}
}
