package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"cnnperf/internal/mlearn"
)

// estimatorEnvelope is the on-disk form of a trained estimator: the
// feature schema plus the serialised regressor. Version 1 carried a
// bare decision tree (the paper's final model); version 2 wraps any of
// the five paper regressors in the mlearn envelope. Both versions load.
type estimatorEnvelope struct {
	Format  string          `json:"format"`
	Schema  []string        `json:"schema"`
	Model   json.RawMessage `json:"model"`
	Version int             `json:"version"`
}

const estimatorFormat = "cnnperf-estimator"

// MarshalEstimator serialises a fitted estimator with its feature
// schema as a version-2 envelope. The encoding is deterministic:
// marshaling the same estimator twice yields byte-identical output.
func MarshalEstimator(e *Estimator) ([]byte, error) {
	if e == nil || e.Regressor == nil {
		return nil, fmt.Errorf("core: cannot marshal a nil estimator")
	}
	if len(e.Schema) == 0 {
		return nil, fmt.Errorf("core: cannot marshal an estimator without a schema")
	}
	model, err := mlearn.MarshalRegressor(e.Regressor)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return json.Marshal(estimatorEnvelope{
		Format:  estimatorFormat,
		Schema:  e.Schema,
		Model:   model,
		Version: 2,
	})
}

// UnmarshalEstimator reconstructs an estimator from either envelope
// version.
func UnmarshalEstimator(b []byte) (*Estimator, error) {
	var env estimatorEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("core: decoding estimator: %w", err)
	}
	if env.Format != estimatorFormat {
		return nil, fmt.Errorf("core: unexpected format %q", env.Format)
	}
	switch env.Version {
	case 1:
		// Legacy envelope: a bare decision tree with the original
		// fixed-width schemas.
		if len(env.Schema) != len(FeatureNames) && len(env.Schema) != len(ExtendedFeatureNames) {
			return nil, fmt.Errorf("core: estimator schema has %d features, expected %d or %d",
				len(env.Schema), len(FeatureNames), len(ExtendedFeatureNames))
		}
		tree, err := mlearn.LoadDecisionTree(bytes.NewReader(env.Model))
		if err != nil {
			return nil, err
		}
		return &Estimator{Regressor: tree, Schema: env.Schema}, nil
	case 2:
		if len(env.Schema) == 0 {
			return nil, fmt.Errorf("core: estimator envelope has an empty schema")
		}
		reg, err := mlearn.UnmarshalRegressor(env.Model)
		if err != nil {
			return nil, err
		}
		return &Estimator{Regressor: reg, Schema: env.Schema}, nil
	default:
		return nil, fmt.Errorf("core: unsupported estimator version %d", env.Version)
	}
}

// Save serialises the estimator so a trained model can be distributed
// without the training data. Since version 2 any of the five paper
// regressors is persistable, not only the decision tree.
func (e *Estimator) Save(w io.Writer) error {
	b, err := MarshalEstimator(e)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// LoadEstimator deserialises an estimator written by Save (either
// envelope version).
func LoadEstimator(r io.Reader) (*Estimator, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: reading estimator: %w", err)
	}
	return UnmarshalEstimator(b)
}
