package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"cnnperf/internal/mlearn"
)

// estimatorEnvelope is the on-disk form of a trained estimator: the
// feature schema plus the serialised decision tree. Only decision-tree
// estimators (the paper's final model) are persistable.
type estimatorEnvelope struct {
	Format  string          `json:"format"`
	Schema  []string        `json:"schema"`
	Model   json.RawMessage `json:"model"`
	Version int             `json:"version"`
}

const estimatorFormat = "cnnperf-estimator"

// Save serialises a decision-tree estimator with its feature schema so a
// trained model can be distributed without the training data.
func (e *Estimator) Save(w io.Writer) error {
	tree, ok := e.Regressor.(*mlearn.DecisionTree)
	if !ok {
		return fmt.Errorf("core: only decision-tree estimators can be saved, have %s", e.Regressor.Name())
	}
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	env := estimatorEnvelope{
		Format:  estimatorFormat,
		Schema:  e.Schema,
		Model:   json.RawMessage(buf.Bytes()),
		Version: 1,
	}
	if err := json.NewEncoder(w).Encode(env); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// LoadEstimator deserialises an estimator written by Save.
func LoadEstimator(r io.Reader) (*Estimator, error) {
	var env estimatorEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("core: decoding estimator: %w", err)
	}
	if env.Format != estimatorFormat {
		return nil, fmt.Errorf("core: unexpected format %q", env.Format)
	}
	if len(env.Schema) != len(FeatureNames) && len(env.Schema) != len(ExtendedFeatureNames) {
		return nil, fmt.Errorf("core: estimator schema has %d features, expected %d or %d",
			len(env.Schema), len(FeatureNames), len(ExtendedFeatureNames))
	}
	tree, err := mlearn.LoadDecisionTree(bytes.NewReader(env.Model))
	if err != nil {
		return nil, err
	}
	return &Estimator{Regressor: tree, Schema: env.Schema}, nil
}
