// Package core implements the paper's two-phase methodology (Fig. 3).
//
// Phase 1 — training dataset creation: for every CNN the Static Analyzer
// extracts the trainable parameters, the Dynamic Code Analysis counts the
// executed PTX instructions, and the profiler measures the IPC on each
// training GPU; each observation d = (y, p, c_1..c_m, t) becomes a
// dataset row (Eq. 1).
//
// Phase 2 — predictive model generation and evaluation: the five
// candidate regressors are trained on the 70 % split and scored with
// MAPE / R² / adjusted R² on the held-out 30 % (Table II); the Decision
// Tree becomes the final Estimator, which predicts the IPC of an unseen
// CNN on an unseen GPU without touching hardware.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"cnnperf/internal/analysiscache"
	"cnnperf/internal/cnn"
	"cnnperf/internal/dca"
	"cnnperf/internal/gpu"
	"cnnperf/internal/gpusim"
	"cnnperf/internal/mlearn"
	"cnnperf/internal/mlearn/dataset"
	"cnnperf/internal/mlearn/metrics"
	"cnnperf/internal/obs"
	"cnnperf/internal/parallel"
	"cnnperf/internal/profiler"
	"cnnperf/internal/ptxanalysis"
	"cnnperf/internal/ptxanalysis/absint"
	"cnnperf/internal/ptxgen"
	"cnnperf/internal/zoo"
)

// FeatureNames is the dataset schema: the two CNN predictors followed by
// the GPU architectural predictors.
var FeatureNames = append([]string{"executed_instructions", "trainable_params"}, gpu.FeatureNames...)

// ExtendedFeatureNames additionally includes the FLOP and MAC counts the
// paper's future work proposes as extra CNN complexity predictors.
var ExtendedFeatureNames = append(append([]string{}, FeatureNames...), "flops", "macs")

// StaticFeatureNames is the base schema plus the static-analysis
// predictors of internal/ptxanalysis (register pressure, loop nesting,
// instruction mix, coalescing estimate).
var StaticFeatureNames = append(append([]string{}, FeatureNames...), ptxanalysis.FeatureNames...)

// FullFeatureNames combines the extended and static predictor sets.
var FullFeatureNames = append(append([]string{}, ExtendedFeatureNames...), ptxanalysis.FeatureNames...)

// BBFeatureNames are the per-basic-block predictors: static block
// features of the abstract interpreter (divergence class, coalescing
// class, stride, live registers) joined with the dynamic per-block
// execution counts of the DCA and aggregated execution-weighted over
// the whole model. Appended to any base schema by Config.BBFeatures;
// its length keeps every schema-width combination pairwise distinct.
var BBFeatureNames = []string{
	"bb_count",
	"bb_exec_divergent_frac",
	"bb_exec_uniform_branch_frac",
	"bb_exec_coalesced_frac",
	"bb_exec_uncoalesced_frac",
	"bb_mean_stride_bytes",
	"bb_mean_live_regs",
}

// Config collects the knobs of the whole pipeline.
type Config struct {
	// PTX configures code generation.
	PTX ptxgen.Options
	// Sim configures the ground-truth GPU simulator.
	Sim gpusim.Config
	// Prof configures the nvprof cost model.
	Prof profiler.Config
	// TrainFrac is the training split fraction (default 0.7).
	TrainFrac float64
	// SplitSeed seeds the train/eval shuffle.
	SplitSeed int64
	// ExtendedFeatures adds the FLOP and MAC predictors to the schema
	// (the paper's future-work feature set).
	ExtendedFeatures bool
	// StaticFeatures adds the ptxanalysis predictors to the schema, so
	// experiments can A/B the base vector against the static-augmented one.
	StaticFeatures bool
	// BBFeatures appends the BBFeatureNames predictors: the DCA records
	// per-basic-block execution counts (dca.Options.BlockCounts) and the
	// per-block static features are aggregated execution-weighted. Off
	// by default; with it off the pipeline output is byte-identical to
	// the seed (the determinism harness enforces it).
	BBFeatures bool
	// Workers bounds the analysis parallelism: models, regressors and
	// sweep points fan out over a pool of this many goroutines. Zero or
	// negative selects runtime.GOMAXPROCS(0). Results are assembled in
	// deterministic input order regardless of the worker count.
	Workers int
	// Cache memoizes per-kernel dynamic-code-analysis and
	// static-analysis results, content-addressed by canonical kernel
	// text, so models sharing identical kernel shapes pay for each slice
	// exactly once. Nil disables memoization (the seed behaviour);
	// results are bit-identical either way.
	Cache *analysiscache.Cache
	// ReferenceInterp forces the dynamic code analysis onto the
	// reference tree-walking interpreter instead of the compiled
	// register-slot bytecode engine. Results are identical either way
	// (the determinism harness enforces it); the flag exists for
	// differential testing and as an escape hatch.
	ReferenceInterp bool
	// UnbatchedExec keeps the compiled engine but runs each
	// representative thread through the single-lane path instead of the
	// warp-style batched engine. Results are identical either way (the
	// determinism harness enforces it); the flag exists for
	// differential testing and as an escape hatch.
	UnbatchedExec bool
}

// DefaultConfig returns the configuration of the reproduced experiments:
// batched inference (batch 16, a typical profiling setup), 5 % peak
// measurement noise, and the frozen 70/30 split seed. Under these
// defaults the Table II reproduction mirrors the paper's findings: the
// Decision Tree wins (5.9 % MAPE vs the paper's 5.73 %), Linear
// Regression is the clear loser with a negative R² (no linear
// dependence), and memory bandwidth dominates the importances.
func DefaultConfig() Config {
	return Config{
		PTX:       ptxgen.Options{Batch: 16},
		Sim:       gpusim.Config{NoisePct: 5},
		TrainFrac: 0.7,
		SplitSeed: 24,
	}
}

// workers resolves the parallelism knob (<= 0 means GOMAXPROCS).
func (c Config) workers() int { return parallel.Workers(c.Workers) }

func (c Config) trainFrac() float64 {
	if c.TrainFrac <= 0 || c.TrainFrac >= 1 {
		return 0.7
	}
	return c.TrainFrac
}

// StageTiming attributes a slice of the analysis wall-clock to one
// pipeline stage. The stage names match the span taxonomy of
// internal/obs (DESIGN.md §10).
type StageTiming struct {
	// Stage is the span name of the pipeline stage.
	Stage string `json:"stage"`
	// Duration is the measured wall-clock of that stage.
	Duration time.Duration `json:"duration_ns"`
}

// ModelAnalysis caches the per-CNN analysis shared by every GPU row: the
// static summary and the dynamic code analysis report.
type ModelAnalysis struct {
	// Name is the CNN name.
	Name string
	// Summary is the Static Analyzer output.
	Summary cnn.Summary
	// Report is the Dynamic Code Analysis output.
	Report *dca.Report
	// Static is the static-analysis summary of the generated PTX module.
	Static *ptxanalysis.ModuleAnalysis
	// DCATime is the measured wall-clock of compile+analysis (t_dca).
	DCATime time.Duration
	// Stages breaks DCATime down by pipeline stage, in execution order.
	// Purely observational: predictions never read it.
	Stages []StageTiming
}

// AnalyzeCNN runs the static analyzer and dynamic code analysis for one
// zoo model.
func AnalyzeCNN(name string, cfg Config) (*ModelAnalysis, error) {
	m, err := zoo.Build(name)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return AnalyzeModel(m, cfg)
}

// AnalyzeModel is AnalyzeCNN over an already-constructed graph (supports
// user-defined CNNs outside the zoo).
func AnalyzeModel(m *cnn.Model, cfg Config) (*ModelAnalysis, error) {
	return AnalyzeModelContext(context.Background(), m, cfg)
}

// AnalyzeModelContext is AnalyzeModel with cancellation between the
// pipeline stages, so an aborted dataset build stops promptly. With
// cfg.Cache set, the per-kernel dca and static-analysis work is
// memoized by kernel content.
func AnalyzeModelContext(ctx context.Context, m *cnn.Model, cfg Config) (*ModelAnalysis, error) {
	start := time.Now()
	ctx, span := obs.Start(ctx, "model.analyze", obs.String("model", m.Name))
	defer span.End()
	// Each stage is timed unconditionally (a few clock reads per model)
	// so the per-stage breakdown is available even without a tracer.
	stages := make([]StageTiming, 0, 4)
	stage := func(name string, t0 time.Time) {
		stages = append(stages, StageTiming{Stage: name, Duration: time.Since(t0)})
	}

	t0 := time.Now()
	_, s := obs.Start(ctx, "cnn.analyze")
	summary, err := cnn.Analyze(m)
	s.End()
	stage("cnn.analyze", t0)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	t0 = time.Now()
	_, s = obs.Start(ctx, "ptx.codegen")
	prog, err := ptxgen.Compile(m, cfg.PTX)
	if err == nil {
		s.SetAttr(obs.Int("kernels", len(prog.Module.Kernels)), obs.Int("launches", len(prog.Launches)))
	}
	s.End()
	stage("ptx.codegen", t0)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	t0 = time.Now()
	rep, err := dca.AnalyzeProgramContext(ctx, prog, dca.Options{
		Cache:       cfg.Cache,
		Exec:        dca.ExecOptions{Reference: cfg.ReferenceInterp, Unbatched: cfg.UnbatchedExec},
		BlockCounts: cfg.BBFeatures,
	})
	stage("dca.analyze", t0)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	t0 = time.Now()
	sctx, s := obs.Start(ctx, "static.analysis")
	static, err := ptxanalysis.AnalyzeModuleCachedContext(sctx, prog.Module, cfg.Cache)
	s.End()
	stage("static.analysis", t0)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &ModelAnalysis{
		Name:    m.Name,
		Summary: summary,
		Report:  rep,
		Static:  static,
		DCATime: time.Since(start),
		Stages:  stages,
	}, nil
}

// Features assembles the predictor vector of this CNN on the given GPU,
// in FeatureNames order.
func (a *ModelAnalysis) Features(spec gpu.Spec) []float64 {
	out := make([]float64, 0, len(FeatureNames))
	out = append(out, float64(a.Report.Executed), float64(a.Summary.TrainableParams))
	out = append(out, spec.Features()...)
	return out
}

// ExtendedFeatures is Features plus the FLOP and MAC predictors, in
// ExtendedFeatureNames order.
func (a *ModelAnalysis) ExtendedFeatures(spec gpu.Spec) []float64 {
	out := a.Features(spec)
	return append(out, float64(a.Summary.FLOPs), float64(a.Summary.MACs))
}

// staticVec returns the ptxanalysis predictor block (zeros when the
// analysis is absent, e.g. deserialised legacy results).
func (a *ModelAnalysis) staticVec() []float64 {
	if a.Static == nil {
		return make([]float64, len(ptxanalysis.FeatureNames))
	}
	return a.Static.Features()
}

// StaticFeatures is Features plus the static-analysis predictors, in
// StaticFeatureNames order.
func (a *ModelAnalysis) StaticFeatures(spec gpu.Spec) []float64 {
	return append(a.Features(spec), a.staticVec()...)
}

// bbVec aggregates the per-basic-block static features of every kernel
// into the BBFeatureNames vector, weighting each block by its total
// execution count from the DCA (dca.KernelReport.BlockVisits). A launch
// without a visit profile — the control slice did not compile to
// bytecode — falls back to weight 1 per block; a missing analysis
// yields zeros (deserialised legacy results).
func (a *ModelAnalysis) bbVec() []float64 {
	out := make([]float64, len(BBFeatureNames))
	if a.Static == nil || a.Report == nil {
		return out
	}
	byKernel := make(map[string]*ptxanalysis.KernelAnalysis, len(a.Static.Kernels))
	var blockCount float64
	for _, ka := range a.Static.Kernels {
		byKernel[ka.Kernel] = ka
		blockCount += float64(len(ka.Blocks))
	}
	var wTotal, wDiv, wUni float64
	var wGlobal, wCoal, wStrided, wKnown, wStrideSum, wLive float64
	for i := range a.Report.Kernels {
		kr := &a.Report.Kernels[i]
		ka := byKernel[kr.Kernel]
		if ka == nil || len(ka.Blocks) == 0 {
			continue
		}
		for bi := range ka.Blocks {
			bf := &ka.Blocks[bi]
			w := 1.0
			if len(kr.BlockVisits) == len(ka.Blocks) {
				w = float64(kr.BlockVisits[bi])
			}
			wTotal += w
			switch bf.Branch {
			case absint.BranchDivergent:
				wDiv += w
			case absint.BranchUniform:
				wUni += w
			}
			wGlobal += w * float64(bf.GlobalAccesses)
			wCoal += w * float64(bf.CoalescedGlobal)
			wStrided += w * float64(bf.StridedGlobal)
			wKnown += w * float64(bf.KnownStrideGlobal)
			wStrideSum += w * float64(bf.SumAbsStrideBytes)
			wLive += w * float64(bf.LiveIn)
		}
	}
	out[0] = blockCount
	if wTotal > 0 {
		out[1] = wDiv / wTotal
		out[2] = wUni / wTotal
		out[6] = wLive / wTotal
	}
	if wGlobal > 0 {
		out[3] = wCoal / wGlobal
		out[4] = wStrided / wGlobal
	}
	if wKnown > 0 {
		out[5] = wStrideSum / wKnown
	}
	return out
}

// featuresFor picks the vector variant matching a schema width. The
// four base schemas have pairwise-distinct lengths, and appending the
// BB block keeps all eight combinations pairwise distinct, so the width
// identifies the variant.
func (a *ModelAnalysis) featuresFor(spec gpu.Spec, schemaLen int) []float64 {
	nBB := len(BBFeatureNames)
	switch schemaLen {
	case len(FullFeatureNames) + nBB:
		return append(append(a.ExtendedFeatures(spec), a.staticVec()...), a.bbVec()...)
	case len(FullFeatureNames):
		return append(a.ExtendedFeatures(spec), a.staticVec()...)
	case len(StaticFeatureNames) + nBB:
		return append(a.StaticFeatures(spec), a.bbVec()...)
	case len(StaticFeatureNames):
		return a.StaticFeatures(spec)
	case len(ExtendedFeatureNames) + nBB:
		return append(a.ExtendedFeatures(spec), a.bbVec()...)
	case len(ExtendedFeatureNames):
		return a.ExtendedFeatures(spec)
	case len(FeatureNames) + nBB:
		return append(a.Features(spec), a.bbVec()...)
	default:
		return a.Features(spec)
	}
}

// BuildDataset runs Phase 1 over the given CNNs and GPUs: each (CNN, GPU)
// pair becomes one observation whose response is the simulated-profiler
// IPC measurement. Analyses are cached per CNN and returned for reuse.
func BuildDataset(models []string, gpus []string, cfg Config) (*dataset.Dataset, map[string]*ModelAnalysis, error) {
	return BuildDatasetContext(context.Background(), models, gpus, cfg)
}

// BuildDatasetContext is BuildDataset with cancellation: cancelling the
// context aborts the in-flight analyses promptly.
func BuildDatasetContext(ctx context.Context, models []string, gpus []string, cfg Config) (*dataset.Dataset, map[string]*ModelAnalysis, error) {
	if len(models) == 0 {
		return nil, nil, fmt.Errorf("core: need at least one model")
	}
	graphs := make([]*cnn.Model, 0, len(models))
	for _, name := range models {
		m, err := zoo.Build(name)
		if err != nil {
			return nil, nil, fmt.Errorf("core: %w", err)
		}
		graphs = append(graphs, m)
	}
	return BuildDatasetFromModelsContext(ctx, graphs, gpus, cfg)
}

// BuildDatasetFromModels is BuildDataset over already-constructed graphs
// — zoo variants or user-defined CNNs — so the training dataset can grow
// beyond the fixed Table I inventory, as the paper's future work plans.
func BuildDatasetFromModels(models []*cnn.Model, gpus []string, cfg Config) (*dataset.Dataset, map[string]*ModelAnalysis, error) {
	return BuildDatasetFromModelsContext(context.Background(), models, gpus, cfg)
}

// BuildDatasetFromModelsContext fans the per-model analyses out over a
// bounded worker pool of cfg.Workers goroutines. The first failing model
// cancels the pool and its error is returned; on success the rows are
// assembled in input order, so the dataset bytes are identical for every
// worker count.
func BuildDatasetFromModelsContext(ctx context.Context, models []*cnn.Model, gpus []string, cfg Config) (*dataset.Dataset, map[string]*ModelAnalysis, error) {
	if len(models) == 0 || len(gpus) == 0 {
		return nil, nil, fmt.Errorf("core: need at least one model and one GPU")
	}
	schema := FeatureNames
	switch {
	case cfg.ExtendedFeatures && cfg.StaticFeatures:
		schema = FullFeatureNames
	case cfg.ExtendedFeatures:
		schema = ExtendedFeatureNames
	case cfg.StaticFeatures:
		schema = StaticFeatureNames
	}
	if cfg.BBFeatures {
		schema = append(append([]string(nil), schema...), BBFeatureNames...)
	}
	// Resolve every GPU and reject duplicate models before spawning any
	// work, so these errors are deterministic and cheap.
	specs := make([]gpu.Spec, len(gpus))
	for i, gid := range gpus {
		spec, err := gpu.Lookup(gid)
		if err != nil {
			return nil, nil, fmt.Errorf("core: %w", err)
		}
		specs[i] = spec
	}
	names := make(map[string]bool, len(models))
	for _, m := range models {
		if names[m.Name] {
			return nil, nil, fmt.Errorf("core: duplicate model %q in dataset", m.Name)
		}
		names[m.Name] = true
	}

	type modelResult struct {
		analysis *ModelAnalysis
		rows     []dataset.Row
	}
	results := make([]modelResult, len(models))
	pcfg := profConfig(cfg)
	ctx, span := obs.Start(ctx, "dataset.build",
		obs.Int("models", len(models)), obs.Int("gpus", len(gpus)), obs.Int("workers", cfg.workers()))
	defer span.End()
	err := parallel.ForEach(ctx, cfg.workers(), len(models), func(ctx context.Context, i int) error {
		m := models[i]
		a, err := AnalyzeModelContext(ctx, m, cfg)
		if err != nil {
			return err
		}
		_, profSpan := obs.Start(ctx, "profiler.run", obs.String("model", m.Name))
		rows := make([]dataset.Row, 0, len(gpus))
		for j, gid := range gpus {
			prof, err := profiler.RunWithReport(a.Report, specs[j], pcfg)
			if err != nil {
				profSpan.End()
				return err
			}
			rows = append(rows, dataset.Row{
				Tag: fmt.Sprintf("%s@%s", m.Name, gid),
				X:   a.featuresFor(specs[j], len(schema)),
				Y:   prof.IPC,
			})
		}
		profSpan.End()
		results[i] = modelResult{analysis: a, rows: rows}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	ds := dataset.New(schema)
	analyses := make(map[string]*ModelAnalysis, len(models))
	for i, m := range models {
		analyses[m.Name] = results[i].analysis
		for _, r := range results[i].rows {
			if err := ds.Append(r.Tag, r.X, r.Y); err != nil {
				return nil, nil, err
			}
		}
	}
	return ds, analyses, nil
}

func profConfig(cfg Config) profiler.Config {
	p := cfg.Prof
	p.Sim = cfg.Sim
	return p
}

// DefaultRegressors returns fresh instances of the paper's five
// candidates, in Table II row order.
func DefaultRegressors(seed int64) []mlearn.Regressor {
	return []mlearn.Regressor{
		mlearn.NewLinearRegression(),
		mlearn.NewKNN(3),
		mlearn.NewRandomForest(100, seed),
		mlearn.NewDecisionTree(),
		mlearn.NewXGBoost(seed),
	}
}

// Evaluation is one row of the paper's Table II.
type Evaluation struct {
	// Name is the regressor name.
	Name string
	// MAPE is the mean absolute percentage error on the eval split.
	MAPE float64
	// R2 is the coefficient of determination on the eval split.
	R2 float64
	// AdjR2 is the adjusted R².
	AdjR2 float64
}

// EvaluateRegressors trains each candidate on the training split and
// scores it on the evaluation split (Phase 2, Table II).
func EvaluateRegressors(train, eval *dataset.Dataset, candidates []mlearn.Regressor) ([]Evaluation, error) {
	return EvaluateRegressorsContext(context.Background(), train, eval, candidates, 0)
}

// EvaluateRegressorsContext fans the candidate fits out over a bounded
// worker pool (workers <= 0 selects GOMAXPROCS). Each regressor trains
// and scores independently on the shared read-only splits; the rows come
// back in candidate order, so the result is identical for every worker
// count.
func EvaluateRegressorsContext(ctx context.Context, train, eval *dataset.Dataset, candidates []mlearn.Regressor, workers int) ([]Evaluation, error) {
	if train.Len() == 0 || eval.Len() == 0 {
		return nil, fmt.Errorf("core: empty split")
	}
	trX, trY := train.XY()
	evX, evY := eval.XY()
	out := make([]Evaluation, len(candidates))
	ctx, span := obs.Start(ctx, "mlearn.evaluate",
		obs.Int("candidates", len(candidates)), obs.Int("train_rows", train.Len()), obs.Int("eval_rows", eval.Len()))
	defer span.End()
	err := parallel.ForEach(ctx, workers, len(candidates), func(ctx context.Context, i int) error {
		reg := candidates[i]
		_, fitSpan := obs.Start(ctx, "mlearn.fit", obs.String("regressor", reg.Name()))
		err := reg.Fit(trX, trY)
		fitSpan.End()
		if err != nil {
			return fmt.Errorf("core: fitting %s: %w", reg.Name(), err)
		}
		pred := mlearn.PredictAll(reg, evX)
		mape, err := metrics.MAPE(evY, pred)
		if err != nil {
			return fmt.Errorf("core: scoring %s: %w", reg.Name(), err)
		}
		r2, err := metrics.R2(evY, pred)
		if err != nil {
			return fmt.Errorf("core: scoring %s: %w", reg.Name(), err)
		}
		ev := Evaluation{Name: reg.Name(), MAPE: mape, R2: r2}
		if adj, err := metrics.AdjustedR2(r2, eval.Len(), len(train.FeatureNames)); err == nil {
			ev.AdjR2 = adj
		} else {
			ev.AdjR2 = r2 // too few eval rows to adjust; report raw
		}
		out[i] = ev
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BestByMAPE returns the evaluation row with the lowest MAPE.
func BestByMAPE(evals []Evaluation) (Evaluation, error) {
	if len(evals) == 0 {
		return Evaluation{}, fmt.Errorf("core: no evaluations")
	}
	best := evals[0]
	for _, e := range evals[1:] {
		if e.MAPE < best.MAPE {
			best = e
		}
	}
	return best, nil
}

// Estimator is the trained predictive model: it predicts IPC for a (CNN,
// GPU) pair from static features only — no hardware execution.
type Estimator struct {
	// Regressor is the fitted model.
	Regressor mlearn.Regressor
	// Schema is the feature order the model was trained with.
	Schema []string

	// predictTimeNS holds the last Predict duration in nanoseconds,
	// atomically so concurrent DSE sweeps can share one estimator.
	predictTimeNS atomic.Int64
}

// TrainEstimator fits the given regressor on the full training split.
func TrainEstimator(train *dataset.Dataset, reg mlearn.Regressor) (*Estimator, error) {
	return TrainEstimatorContext(context.Background(), train, reg)
}

// TrainEstimatorContext is TrainEstimator with the fit recorded as an
// "mlearn.train" span when ctx carries a tracer.
func TrainEstimatorContext(ctx context.Context, train *dataset.Dataset, reg mlearn.Regressor) (*Estimator, error) {
	_, span := obs.Start(ctx, "mlearn.train",
		obs.String("regressor", reg.Name()), obs.Int("rows", train.Len()))
	defer span.End()
	X, y := train.XY()
	if err := reg.Fit(X, y); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Estimator{Regressor: reg, Schema: train.FeatureNames}, nil
}

// Predict estimates the IPC of an analysed CNN on the given GPU.
func (e *Estimator) Predict(a *ModelAnalysis, spec gpu.Spec) (float64, error) {
	return e.PredictContext(context.Background(), a, spec)
}

// PredictContext is Predict with feature assembly and model inference
// recorded as "features" and "predict" spans when ctx carries a tracer.
// Tracing never changes the predicted value.
func (e *Estimator) PredictContext(ctx context.Context, a *ModelAnalysis, spec gpu.Spec) (float64, error) {
	if a == nil {
		return 0, fmt.Errorf("core: nil analysis")
	}
	if err := spec.Validate(); err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	_, fs := obs.Start(ctx, "features", obs.String("model", a.Name), obs.String("gpu", spec.Name))
	x := a.featuresFor(spec, len(e.Schema))
	fs.End()
	start := time.Now()
	_, ps := obs.Start(ctx, "predict",
		obs.String("model", a.Name), obs.String("gpu", spec.Name), obs.String("regressor", e.Regressor.Name()))
	ipc := e.Regressor.Predict(x)
	ps.End()
	e.predictTimeNS.Store(int64(time.Since(start)))
	if ipc <= 0 {
		return 0, fmt.Errorf("core: regressor %s produced non-positive IPC %f", e.Regressor.Name(), ipc)
	}
	return ipc, nil
}

// LastPredictTime reports the duration of the most recent Predict call
// (the paper's t_pm).
func (e *Estimator) LastPredictTime() time.Duration {
	return time.Duration(e.predictTimeNS.Load())
}

// FeatureImportances exposes the estimator's importance vector paired
// with feature names, sorted descending — the paper's Table III.
type FeatureImportance struct {
	// Feature is the predictor name.
	Feature string
	// Importance is the normalised impurity-decrease weight.
	Importance float64
}

// Importances returns the sorted feature importances, or an error when
// the underlying regressor cannot attribute them.
func (e *Estimator) Importances() ([]FeatureImportance, error) {
	fi, ok := e.Regressor.(mlearn.FeatureImporter)
	if !ok {
		return nil, fmt.Errorf("core: %s does not expose feature importances", e.Regressor.Name())
	}
	imp := fi.FeatureImportances()
	if len(imp) != len(e.Schema) {
		return nil, fmt.Errorf("core: importance vector length %d != schema %d", len(imp), len(e.Schema))
	}
	out := make([]FeatureImportance, len(imp))
	for i, v := range imp {
		out[i] = FeatureImportance{Feature: e.Schema[i], Importance: v}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Importance > out[j].Importance })
	return out, nil
}

// DSETime models the paper's Section V timing comparison for estimating
// one CNN on n GPUs: T_est = t_dca + n*t_pm versus T_measur = n*t_p.
type DSETime struct {
	// N is the number of candidate GPUs.
	N int
	// TDCASec is the dynamic-code-analysis time (once per CNN).
	TDCASec float64
	// TPMSec is the predictive-model time (per GPU).
	TPMSec float64
	// TPSec is the profiling time of the naive approach (per GPU).
	TPSec float64
}

// Estimated returns T_est = t_dca + n*t_pm.
func (d DSETime) Estimated() float64 { return d.TDCASec + float64(d.N)*d.TPMSec }

// Naive returns T_measur = n*t_p.
func (d DSETime) Naive() float64 { return float64(d.N) * d.TPSec }

// Speedup returns Naive/Estimated.
func (d DSETime) Speedup() float64 {
	est := d.Estimated()
	if est <= 0 {
		return 0
	}
	return d.Naive() / est
}
