package core

import (
	"context"
	"fmt"
	"time"

	"cnnperf/internal/cnn"
	"cnnperf/internal/dca"
	"cnnperf/internal/gpu"
	"cnnperf/internal/mlearn"
	"cnnperf/internal/obs"
	"cnnperf/internal/ptx"
	"cnnperf/internal/ptxanalysis"
	"cnnperf/internal/ptxgen"
	"cnnperf/internal/zoo"
)

// This file holds the single-model prediction entry points the serving
// daemon and the `cnnperf predict`/`cnnperf dse` subcommands share, so
// an IPC served over HTTP is byte-identical to one printed by the CLI:
// both sides call the same functions with the same configuration.

// AnalyzeCNNContext is AnalyzeCNN with cancellation between pipeline
// stages.
func AnalyzeCNNContext(ctx context.Context, name string, cfg Config) (*ModelAnalysis, error) {
	m, err := zoo.Build(name)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return AnalyzeModelContext(ctx, m, cfg)
}

// LeaveOneOutModels returns the Table I training inventory with exclude
// removed (in table order). Excluding the prediction target keeps a
// zoo-model prediction honest: the estimator never saw the CNN it is
// asked about. An exclude outside Table I leaves the inventory intact.
func LeaveOneOutModels(exclude string) []string {
	var out []string
	for _, n := range zoo.TableIOrder {
		if n != exclude {
			out = append(out, n)
		}
	}
	return out
}

// LeaveOneOutEstimatorContext builds the phase-1 dataset over every
// Table I model except exclude on the paper's two training GPUs and
// fits the winning Decision Tree on it — exactly the training path of
// `cnnperf predict`.
func LeaveOneOutEstimatorContext(ctx context.Context, exclude string, cfg Config) (*Estimator, error) {
	ds, _, err := BuildDatasetContext(ctx, LeaveOneOutModels(exclude), append([]string(nil), gpu.TrainingGPUs...), cfg)
	if err != nil {
		return nil, err
	}
	return TrainEstimatorContext(ctx, ds, mlearn.NewDecisionTree())
}

// Prediction is one per-GPU IPC estimate of a single-model prediction.
type Prediction struct {
	// GPU is the device id ("gtx1080ti").
	GPU string
	// GPUName is the marketing name from the catalogue.
	GPUName string
	// IPC is the predicted instructions-per-cycle.
	IPC float64
}

// PredictAnalyzedContext scores an analysed model on each named GPU
// with the given estimator.
func PredictAnalyzedContext(ctx context.Context, est *Estimator, a *ModelAnalysis, gpus []string) ([]Prediction, error) {
	if len(gpus) == 0 {
		return nil, fmt.Errorf("core: need at least one GPU")
	}
	out := make([]Prediction, 0, len(gpus))
	for _, id := range gpus {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		spec, err := gpu.Lookup(id)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		ipc, err := est.PredictContext(ctx, a, spec)
		if err != nil {
			return nil, err
		}
		out = append(out, Prediction{GPU: id, GPUName: spec.Name, IPC: ipc})
	}
	return out, nil
}

// PredictCNNContext estimates the IPC of one zoo model on each named
// GPU without executing it: leave-one-out training, analysis, and
// per-GPU prediction in one call. The returned analysis carries the
// executed-instruction count and timings for reporting.
func PredictCNNContext(ctx context.Context, model string, gpus []string, cfg Config) ([]Prediction, *ModelAnalysis, error) {
	est, err := LeaveOneOutEstimatorContext(ctx, model, cfg)
	if err != nil {
		return nil, nil, err
	}
	a, err := AnalyzeCNNContext(ctx, model, cfg)
	if err != nil {
		return nil, nil, err
	}
	preds, err := PredictAnalyzedContext(ctx, est, a, gpus)
	if err != nil {
		return nil, nil, err
	}
	return preds, a, nil
}

// PTXOptions configures AnalyzePTXContext for kernels that arrive as
// raw PTX text instead of a zoo model: the launch geometry is not in
// the assembly, so the caller supplies it (one synthetic launch per
// kernel), along with the trainable-parameter predictor the Static
// Analyzer would have extracted from a topology.
type PTXOptions struct {
	// Name labels the analysis (default "ptx").
	Name string
	// TrainableParams is the c-predictor value to use for the module.
	TrainableParams int64
	// GridX and BlockX shape the synthetic launch of every kernel
	// (defaults 2 blocks of 32 threads).
	GridX, BlockX int
	// MaxSteps bounds the abstract execution of each thread (0 selects
	// the dca default); servers lower it to cap adversarial payloads.
	MaxSteps int64
}

func (o PTXOptions) name() string {
	if o.Name == "" {
		return "ptx"
	}
	return o.Name
}

func (o PTXOptions) grid() (gridX, blockX int) {
	gridX, blockX = o.GridX, o.BlockX
	if gridX <= 0 {
		gridX = 2
	}
	if blockX <= 0 {
		blockX = 32
	}
	return gridX, blockX
}

// AnalyzePTXContext parses raw PTX assembly and runs the dynamic and
// static analyses over every kernel in it, returning a ModelAnalysis
// usable with Estimator.Predict. Each kernel gets one synthetic launch
// (opt.GridX x opt.BlockX, deterministic non-zero parameter values), so
// the executed-instruction predictor is well defined without a CNN
// graph.
func AnalyzePTXContext(ctx context.Context, src string, opt PTXOptions, cfg Config) (*ModelAnalysis, error) {
	start := time.Now()
	ctx, span := obs.Start(ctx, "model.analyze", obs.String("model", opt.name()))
	defer span.End()
	_, parseSpan := obs.Start(ctx, "ptx.parse", obs.Int("bytes", len(src)))
	m, err := ptx.Parse(src)
	parseSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if len(m.Kernels) == 0 {
		return nil, fmt.Errorf("core: PTX module has no kernels")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	gridX, blockX := opt.grid()
	launches := make([]ptxgen.Launch, 0, len(m.Kernels))
	for _, k := range m.Kernels {
		params := make(map[string]int64, len(k.Params))
		for i, p := range k.Params {
			params[p.Name] = int64(7 + 13*i) // synthetic non-zero values
		}
		threads := int64(gridX) * int64(blockX)
		launches = append(launches, ptxgen.Launch{
			Kernel:          k.Name,
			GridX:           gridX,
			BlockX:          blockX,
			Threads:         threads,
			Params:          params,
			WorkingSetBytes: threads * 8,
			Node:            k.Name,
		})
	}
	prog := &ptxgen.Program{Model: opt.name(), Module: m, Launches: launches}
	rep, err := dca.AnalyzeProgramContext(ctx, prog, dca.Options{
		Cache: cfg.Cache,
		Exec: dca.ExecOptions{
			Reference: cfg.ReferenceInterp,
			Unbatched: cfg.UnbatchedExec,
			MaxSteps:  opt.MaxSteps,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	static, err := ptxanalysis.AnalyzeModuleCached(m, cfg.Cache)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &ModelAnalysis{
		Name:    opt.name(),
		Summary: cnn.Summary{Name: opt.name(), TrainableParams: opt.TrainableParams},
		Report:  rep,
		Static:  static,
		DCATime: time.Since(start),
	}, nil
}
