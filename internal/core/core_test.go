package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"cnnperf/internal/cnn"
	"cnnperf/internal/gpu"
	"cnnperf/internal/mlearn"
	"cnnperf/internal/mlearn/dataset"
	"cnnperf/internal/zoo"
)

// fastConfig keeps unit tests quick: batch 1, default sim.
func fastConfig() Config { return Config{} }

func TestAnalyzeCNN(t *testing.T) {
	a, err := AnalyzeCNN("mobilenetv2", fastConfig())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if a.Name != "mobilenetv2" {
		t.Errorf("name = %q", a.Name)
	}
	if a.Report.Executed <= 0 {
		t.Error("no executed instructions")
	}
	want := zoo.MustBuild("mobilenetv2").TrainableParams()
	if a.Summary.TrainableParams != want {
		t.Errorf("params %d != zoo %d", a.Summary.TrainableParams, want)
	}
	if a.DCATime <= 0 {
		t.Error("DCA time not measured")
	}
	if _, err := AnalyzeCNN("nonexistent", fastConfig()); err == nil {
		t.Error("unknown model should error")
	}
}

func TestAnalyzeModelCustomGraph(t *testing.T) {
	b, x := cnn.NewBuilder("custom", cnn.Shape{H: 8, W: 8, C: 3})
	x = b.Add(cnn.Conv(4, 3, 1, cnn.Same), x)
	x = b.Add(cnn.GlobalAvgPool(), x)
	x = b.Add(cnn.FC(2), x)
	m, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeModel(m, fastConfig())
	if err != nil {
		t.Fatalf("analyze custom: %v", err)
	}
	spec := gpu.MustLookup("t4")
	f := a.Features(spec)
	if len(f) != len(FeatureNames) {
		t.Fatalf("features = %d, schema = %d", len(f), len(FeatureNames))
	}
	if f[0] != float64(a.Report.Executed) || f[1] != float64(a.Summary.TrainableParams) {
		t.Error("CNN features must lead the vector")
	}
	if f[2] != spec.Features()[0] {
		t.Error("GPU features must follow")
	}
}

func TestFeatureSchema(t *testing.T) {
	if FeatureNames[0] != "executed_instructions" || FeatureNames[1] != "trainable_params" {
		t.Errorf("schema head wrong: %v", FeatureNames[:2])
	}
	if FeatureNames[2] != "mem_bandwidth_gbs" {
		t.Errorf("first GPU feature should be bandwidth, got %s", FeatureNames[2])
	}
	if len(FeatureNames) != 2+len(gpu.FeatureNames) {
		t.Errorf("schema length %d", len(FeatureNames))
	}
}

func TestBuildDatasetSmall(t *testing.T) {
	models := []string{"alexnet", "mobilenet"}
	gpus := []string{"gtx1080ti", "v100s"}
	ds, analyses, err := BuildDataset(models, gpus, fastConfig())
	if err != nil {
		t.Fatalf("build dataset: %v", err)
	}
	if ds.Len() != 4 {
		t.Fatalf("rows = %d, want 4", ds.Len())
	}
	if len(analyses) != 2 {
		t.Errorf("analyses = %d", len(analyses))
	}
	tags := ds.Tags()
	if tags[0] != "alexnet@gtx1080ti" || tags[3] != "mobilenet@v100s" {
		t.Errorf("tags = %v", tags)
	}
	for _, r := range ds.Rows {
		if r.Y <= 0 {
			t.Errorf("%s: non-positive IPC %f", r.Tag, r.Y)
		}
		if len(r.X) != len(FeatureNames) {
			t.Errorf("%s: feature width %d", r.Tag, len(r.X))
		}
	}
	// Same model on two GPUs: identical CNN features, different GPU
	// features, different IPC.
	if ds.Rows[0].X[0] != ds.Rows[1].X[0] {
		t.Error("executed instructions must not depend on the GPU")
	}
	if ds.Rows[0].X[2] == ds.Rows[1].X[2] {
		t.Error("GPU features must differ between devices")
	}
	if ds.Rows[0].Y == ds.Rows[1].Y {
		t.Error("IPC must differ between devices")
	}
}

func TestBuildDatasetErrors(t *testing.T) {
	if _, _, err := BuildDataset(nil, []string{"t4"}, fastConfig()); err == nil {
		t.Error("no models should error")
	}
	if _, _, err := BuildDataset([]string{"alexnet"}, nil, fastConfig()); err == nil {
		t.Error("no GPUs should error")
	}
	if _, _, err := BuildDataset([]string{"nope"}, []string{"t4"}, fastConfig()); err == nil {
		t.Error("unknown model should error")
	}
	if _, _, err := BuildDataset([]string{"alexnet"}, []string{"voodoo2"}, fastConfig()); err == nil {
		t.Error("unknown GPU should error")
	}
}

// syntheticSplit builds an easy dataset for regressor plumbing tests.
func syntheticSplit(t *testing.T) (train, eval *dataset.Dataset) {
	t.Helper()
	ds := dataset.New(FeatureNames)
	for i := 0; i < 40; i++ {
		x := make([]float64, len(FeatureNames))
		for j := range x {
			x[j] = float64((i*7+j*13)%23) + 1
		}
		y := 100 + 3*x[0] + x[1]*x[1]/10
		if err := ds.Append("synth", x, y); err != nil {
			t.Fatal(err)
		}
	}
	train, eval, err := ds.Split(0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	return train, eval
}

func TestEvaluateRegressorsAndBest(t *testing.T) {
	train, eval := syntheticSplit(t)
	evals, err := EvaluateRegressors(train, eval, DefaultRegressors(1))
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	if len(evals) != 5 {
		t.Fatalf("evals = %d", len(evals))
	}
	names := map[string]bool{}
	for _, e := range evals {
		names[e.Name] = true
		if e.MAPE < 0 || math.IsNaN(e.MAPE) {
			t.Errorf("%s: MAPE %f", e.Name, e.MAPE)
		}
		if e.AdjR2 > e.R2+1e-12 {
			t.Errorf("%s: adjusted R2 %f above R2 %f", e.Name, e.AdjR2, e.R2)
		}
	}
	for _, want := range []string{"linear_regression", "knn", "random_forest", "decision_tree", "xgboost"} {
		if !names[want] {
			t.Errorf("missing regressor %s", want)
		}
	}
	best, err := BestByMAPE(evals)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evals {
		if e.MAPE < best.MAPE {
			t.Error("BestByMAPE did not return the minimum")
		}
	}
	if _, err := BestByMAPE(nil); err == nil {
		t.Error("empty evals should error")
	}
}

func TestEvaluateRegressorsEmptySplit(t *testing.T) {
	empty := dataset.New(FeatureNames)
	if _, err := EvaluateRegressors(empty, empty, DefaultRegressors(1)); err == nil {
		t.Error("empty split should error")
	}
}

func TestTrainEstimatorPredictAndTiming(t *testing.T) {
	models := []string{"alexnet", "mobilenet", "mobilenetv2", "vgg16"}
	ds, analyses, err := BuildDataset(models, gpu.TrainingGPUs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	est, err := TrainEstimator(ds, mlearn.NewDecisionTree())
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	ipc, err := est.Predict(analyses["vgg16"], gpu.MustLookup("gtx1080ti"))
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	if ipc <= 0 {
		t.Errorf("IPC = %f", ipc)
	}
	if est.LastPredictTime() <= 0 {
		t.Error("predict time not measured")
	}
	// Cross-platform: an unseen GPU must still produce a prediction.
	if _, err := est.Predict(analyses["vgg16"], gpu.MustLookup("t4")); err != nil {
		t.Errorf("cross-platform predict: %v", err)
	}
	if _, err := est.Predict(nil, gpu.MustLookup("t4")); err == nil {
		t.Error("nil analysis should error")
	}
	if _, err := est.Predict(analyses["vgg16"], gpu.Spec{}); err == nil {
		t.Error("invalid spec should error")
	}
}

func TestImportances(t *testing.T) {
	train, _ := syntheticSplit(t)
	est, err := TrainEstimator(train, mlearn.NewDecisionTree())
	if err != nil {
		t.Fatal(err)
	}
	imps, err := est.Importances()
	if err != nil {
		t.Fatalf("importances: %v", err)
	}
	if len(imps) != len(FeatureNames) {
		t.Fatalf("importances = %d", len(imps))
	}
	sum := 0.0
	for i, fi := range imps {
		sum += fi.Importance
		if i > 0 && fi.Importance > imps[i-1].Importance {
			t.Error("importances not sorted descending")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum %f", sum)
	}
	// Linear regression cannot attribute importances.
	lr, err := TrainEstimator(train, mlearn.NewLinearRegression())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lr.Importances(); err == nil {
		t.Error("linear regression importances should error")
	}
}

func TestDSETime(t *testing.T) {
	d := DSETime{N: 7, TDCASec: 24.8, TPMSec: 11, TPSec: 663}
	if got := d.Estimated(); math.Abs(got-(24.8+7*11)) > 1e-9 {
		t.Errorf("estimated = %f", got)
	}
	if got := d.Naive(); math.Abs(got-7*663) > 1e-9 {
		t.Errorf("naive = %f", got)
	}
	if s := d.Speedup(); math.Abs(s-7*663/(24.8+77)) > 1e-9 {
		t.Errorf("speedup = %f", s)
	}
	if (DSETime{}).Speedup() != 0 {
		t.Error("degenerate speedup should be 0")
	}
}

// TestPaperShape is the headline integration test: with the default
// configuration over all Table I CNNs and both training GPUs, the
// reproduction must show the paper's qualitative findings (Table II /
// Table III shape).
func TestPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline shape test skipped in -short mode")
	}
	cfg := DefaultConfig()
	ds, _, err := BuildDataset(zoo.TableIOrder, gpu.TrainingGPUs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 62 {
		t.Fatalf("dataset rows = %d, want 62 (31 CNNs x 2 GPUs)", ds.Len())
	}
	train, eval, err := ds.Split(cfg.trainFrac(), cfg.SplitSeed)
	if err != nil {
		t.Fatal(err)
	}
	evals, err := EvaluateRegressors(train, eval, DefaultRegressors(cfg.SplitSeed))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Evaluation{}
	for _, e := range evals {
		byName[e.Name] = e
	}
	dt := byName["decision_tree"]
	lr := byName["linear_regression"]
	// Paper Table II shape: the Decision Tree lands in the single-digit
	// band (5.73 % in the paper) and beats Linear Regression, which
	// shows no linear dependence (R2 about 0).
	if dt.MAPE > 10 {
		t.Errorf("decision tree MAPE %.2f%% outside the paper's band", dt.MAPE)
	}
	if lr.MAPE <= dt.MAPE {
		t.Errorf("linear regression (%.2f%%) must lose to the decision tree (%.2f%%)", lr.MAPE, dt.MAPE)
	}
	if lr.R2 > 0.3 {
		t.Errorf("linear regression R2 %.3f should be near or below zero", lr.R2)
	}
	best, _ := BestByMAPE(evals)
	if best.Name == "linear_regression" {
		t.Error("linear regression must not win")
	}
	// Table III shape: memory bandwidth dominates the decision tree's
	// importances.
	est, err := TrainEstimator(train, mlearn.NewDecisionTree())
	if err != nil {
		t.Fatal(err)
	}
	imps, err := est.Importances()
	if err != nil {
		t.Fatal(err)
	}
	if imps[0].Feature != "mem_bandwidth_gbs" {
		t.Errorf("top importance = %s, want mem_bandwidth_gbs", imps[0].Feature)
	}
	if imps[0].Importance < 0.5 {
		t.Errorf("bandwidth importance %.3f should dominate", imps[0].Importance)
	}
	// The two CNN predictors must appear among the top four, as in
	// Table III's three-predictor model.
	topFour := strings.Join([]string{imps[0].Feature, imps[1].Feature, imps[2].Feature, imps[3].Feature}, ",")
	if !strings.Contains(topFour, "trainable_params") && !strings.Contains(topFour, "executed_instructions") {
		t.Errorf("CNN predictors missing from the top importances: %s", topFour)
	}
}

func TestExtendedFeatures(t *testing.T) {
	cfg := fastConfig()
	cfg.ExtendedFeatures = true
	models := []string{"alexnet", "mobilenet", "mobilenetv2"}
	ds, analyses, err := BuildDataset(models, gpu.TrainingGPUs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.FeatureNames) != len(ExtendedFeatureNames) {
		t.Fatalf("schema width %d, want %d", len(ds.FeatureNames), len(ExtendedFeatureNames))
	}
	last := len(ds.FeatureNames)
	if ds.FeatureNames[last-2] != "flops" || ds.FeatureNames[last-1] != "macs" {
		t.Errorf("schema tail = %v", ds.FeatureNames[last-2:])
	}
	a := analyses["alexnet"]
	row := ds.Rows[0]
	if row.X[last-2] != float64(a.Summary.FLOPs) || row.X[last-1] != float64(a.Summary.MACs) {
		t.Error("extended features not populated")
	}
	// An estimator trained on the extended schema predicts with it.
	est, err := TrainEstimator(ds, mlearn.NewDecisionTree())
	if err != nil {
		t.Fatal(err)
	}
	ipc, err := est.Predict(a, gpu.MustLookup("t4"))
	if err != nil {
		t.Fatalf("extended predict: %v", err)
	}
	if ipc <= 0 {
		t.Errorf("IPC = %f", ipc)
	}
	// FLOPs must be at least twice the MACs (each MAC is 2 FLOPs).
	if a.Summary.FLOPs < 2*a.Summary.MACs {
		t.Errorf("FLOPs %d < 2*MACs %d", a.Summary.FLOPs, a.Summary.MACs)
	}
}

func TestStaticFeatures(t *testing.T) {
	// The four schema widths must stay pairwise distinct: featuresFor
	// dispatches on length.
	widths := map[int]string{}
	for _, s := range [][]string{FeatureNames, ExtendedFeatureNames, StaticFeatureNames, FullFeatureNames} {
		if prev, dup := widths[len(s)]; dup {
			t.Fatalf("schema width %d used by both %q and %q", len(s), prev, s[len(s)-1])
		}
		widths[len(s)] = s[len(s)-1]
	}

	cfg := fastConfig()
	cfg.StaticFeatures = true
	models := []string{"alexnet", "mobilenet", "mobilenetv2"}
	ds, analyses, err := BuildDataset(models, gpu.TrainingGPUs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.FeatureNames) != len(StaticFeatureNames) {
		t.Fatalf("schema width %d, want %d", len(ds.FeatureNames), len(StaticFeatureNames))
	}
	last := len(ds.FeatureNames)
	if ds.FeatureNames[last-1] != "static_coalesced_fraction" {
		t.Errorf("schema tail = %v", ds.FeatureNames[last-1])
	}
	a := analyses["alexnet"]
	if a.Static == nil {
		t.Fatal("static analysis missing from ModelAnalysis")
	}
	if a.Static.MaxRegPressure <= 0 {
		t.Error("register pressure not computed")
	}
	row := ds.Rows[0]
	if row.X[last-len(a.Static.Features())] != float64(a.Static.MaxRegPressure) {
		t.Error("static features not populated in dataset rows")
	}
	est, err := TrainEstimator(ds, mlearn.NewDecisionTree())
	if err != nil {
		t.Fatal(err)
	}
	ipc, err := est.Predict(a, gpu.MustLookup("t4"))
	if err != nil {
		t.Fatalf("static predict: %v", err)
	}
	if ipc <= 0 {
		t.Errorf("IPC = %f", ipc)
	}
	// Both flags together select the full schema.
	cfg.ExtendedFeatures = true
	ds2, _, err := BuildDataset([]string{"alexnet"}, gpu.TrainingGPUs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds2.FeatureNames) != len(FullFeatureNames) {
		t.Errorf("full schema width %d, want %d", len(ds2.FeatureNames), len(FullFeatureNames))
	}
}

func TestBBFeatures(t *testing.T) {
	// All eight schema combinations (4 bases x with/without the BB
	// block) must keep pairwise-distinct widths: featuresFor dispatches
	// on length.
	widths := map[int]bool{}
	for _, s := range [][]string{FeatureNames, ExtendedFeatureNames, StaticFeatureNames, FullFeatureNames} {
		for _, n := range []int{len(s), len(s) + len(BBFeatureNames)} {
			if widths[n] {
				t.Fatalf("duplicate schema width %d", n)
			}
			widths[n] = true
		}
	}

	cfg := fastConfig()
	cfg.BBFeatures = true
	models := []string{"alexnet", "mobilenet", "mobilenetv2"}
	ds, analyses, err := BuildDataset(models, gpu.TrainingGPUs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := len(FeatureNames) + len(BBFeatureNames)
	if len(ds.FeatureNames) != want {
		t.Fatalf("schema width %d, want %d", len(ds.FeatureNames), want)
	}
	if tail := ds.FeatureNames[len(ds.FeatureNames)-1]; tail != "bb_mean_live_regs" {
		t.Errorf("schema tail = %q", tail)
	}
	a := analyses["alexnet"]
	for i := range a.Report.Kernels {
		if a.Report.Kernels[i].BlockVisits == nil {
			t.Errorf("launch %d (%s): BlockVisits not recorded", i, a.Report.Kernels[i].Kernel)
		}
	}
	// The BB block sits at the vector tail; bb_count and the live-
	// register mean are structurally positive for any real kernel.
	row := ds.Rows[0]
	bb := row.X[len(row.X)-len(BBFeatureNames):]
	if bb[0] <= 0 {
		t.Errorf("bb_count = %f, want > 0", bb[0])
	}
	if bb[6] <= 0 {
		t.Errorf("bb_mean_live_regs = %f, want > 0", bb[6])
	}
	est, err := TrainEstimator(ds, mlearn.NewDecisionTree())
	if err != nil {
		t.Fatal(err)
	}
	ipc, err := est.Predict(a, gpu.MustLookup("t4"))
	if err != nil {
		t.Fatalf("bb predict: %v", err)
	}
	if ipc <= 0 {
		t.Errorf("IPC = %f", ipc)
	}
	// Composes with the static block: static schema + BB tail.
	cfg.StaticFeatures = true
	ds2, _, err := BuildDataset([]string{"alexnet"}, gpu.TrainingGPUs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(ds2.FeatureNames), len(StaticFeatureNames)+len(BBFeatureNames); got != want {
		t.Errorf("static+bb schema width %d, want %d", got, want)
	}
}

func TestEstimatorSaveLoad(t *testing.T) {
	models := []string{"alexnet", "mobilenet", "mobilenetv2", "squeezenet"}
	ds, analyses, err := BuildDataset(models, gpu.TrainingGPUs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	est, err := TrainEstimator(ds, mlearn.NewDecisionTree())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := est.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	back, err := LoadEstimator(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	spec := gpu.MustLookup("t4")
	for _, a := range analyses {
		want, err := est.Predict(a, spec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Predict(a, spec)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: loaded estimator predicts %f, original %f", a.Name, got, want)
		}
	}
	// Since the v2 envelope every paper regressor persists, not only
	// the tree: a linear estimator round-trips with identical output.
	lr, err := TrainEstimator(ds, mlearn.NewLinearRegression())
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := lr.Save(&buf); err != nil {
		t.Fatalf("saving a linear estimator: %v", err)
	}
	lrBack, err := LoadEstimator(&buf)
	if err != nil {
		t.Fatalf("loading a linear estimator: %v", err)
	}
	for _, a := range analyses {
		want, err := lr.Predict(a, spec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := lrBack.Predict(a, spec)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: loaded linear estimator predicts %f, original %f", a.Name, got, want)
		}
	}
}

func TestLoadEstimatorErrors(t *testing.T) {
	cases := []string{
		"",
		"{",
		`{"format":"other","schema":[],"model":{}}`,
		`{"format":"cnnperf-estimator","schema":["a","b"],"model":{}}`,
	}
	for i, src := range cases {
		if _, err := LoadEstimator(strings.NewReader(src)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}
