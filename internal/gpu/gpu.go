// Package gpu provides the architectural feature database of the GPGPUs
// the paper uses as prediction targets. All values are public datasheet
// numbers — exactly the information the paper's cross-platform predictors
// are built from (CUDA cores, clocks, memory bandwidth, L2 cache, ...).
package gpu

import (
	"fmt"
	"sort"
)

// Spec describes the architectural features of one GPGPU. The numeric
// fields double as the hardware predictors of the training dataset.
type Spec struct {
	// Name is the marketing name, e.g. "GTX 1080 Ti".
	Name string
	// Architecture is the NVIDIA microarchitecture generation.
	Architecture string
	// CUDACores is the total count of CUDA cores.
	CUDACores int
	// SMs is the number of streaming multiprocessors.
	SMs int
	// BaseClockMHz is the base core clock in MHz.
	BaseClockMHz float64
	// BoostClockMHz is the boost core clock in MHz.
	BoostClockMHz float64
	// MemClockMHz is the effective memory clock in MHz.
	MemClockMHz float64
	// MemBusBits is the memory interface width in bits.
	MemBusBits int
	// MemBandwidthGBs is the peak memory bandwidth in GB/s.
	MemBandwidthGBs float64
	// MemSizeGB is the device memory size in GB.
	MemSizeGB float64
	// L2CacheKB is the L2 cache size in KiB.
	L2CacheKB int
	// RegistersPerSM is the 32-bit register file size per SM.
	RegistersPerSM int
	// SharedMemPerSMKB is the shared-memory capacity per SM in KiB.
	SharedMemPerSMKB int
	// FP32TFLOPS is the peak single-precision throughput in TFLOP/s.
	FP32TFLOPS float64
	// TDPWatts is the board power in watts.
	TDPWatts int
}

// PeakFLOPs returns the theoretical FP32 throughput in FLOP/s computed
// from cores and boost clock (2 FLOPs per core per cycle).
func (s Spec) PeakFLOPs() float64 {
	return 2 * float64(s.CUDACores) * s.BoostClockMHz * 1e6
}

// BytesPerCycle returns the DRAM bytes deliverable per boost-clock cycle.
func (s Spec) BytesPerCycle() float64 {
	return s.MemBandwidthGBs * 1e9 / (s.BoostClockMHz * 1e6)
}

// Validate checks that the spec is internally consistent.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("gpu: spec has empty name")
	case s.CUDACores <= 0 || s.SMs <= 0:
		return fmt.Errorf("gpu: %s: cores/SMs must be positive", s.Name)
	case s.CUDACores%s.SMs != 0:
		return fmt.Errorf("gpu: %s: %d cores do not divide into %d SMs", s.Name, s.CUDACores, s.SMs)
	case s.BaseClockMHz <= 0 || s.BoostClockMHz < s.BaseClockMHz:
		return fmt.Errorf("gpu: %s: implausible clocks base=%f boost=%f", s.Name, s.BaseClockMHz, s.BoostClockMHz)
	case s.MemBandwidthGBs <= 0 || s.L2CacheKB <= 0 || s.MemSizeGB <= 0:
		return fmt.Errorf("gpu: %s: memory system fields must be positive", s.Name)
	}
	return nil
}

// CoresPerSM returns the CUDA cores per streaming multiprocessor.
func (s Spec) CoresPerSM() int { return s.CUDACores / s.SMs }

// FeatureNames lists the hardware predictor names in the order Features
// returns them. The order is part of the dataset schema. Memory bandwidth
// leads: with few training devices many architectural features separate
// the GPUs equally well, and CART resolves exact split-gain ties toward
// the earliest feature — bandwidth, which the paper's Table III likewise
// identifies as the dominant hardware predictor.
var FeatureNames = []string{
	"mem_bandwidth_gbs",
	"cuda_cores",
	"sm_count",
	"base_clock_mhz",
	"boost_clock_mhz",
	"mem_size_gb",
	"l2_cache_kb",
	"mem_bus_bits",
}

// Features returns the hardware predictor vector in FeatureNames order.
func (s Spec) Features() []float64 {
	return []float64{
		s.MemBandwidthGBs,
		float64(s.CUDACores),
		float64(s.SMs),
		s.BaseClockMHz,
		s.BoostClockMHz,
		s.MemSizeGB,
		float64(s.L2CacheKB),
		float64(s.MemBusBits),
	}
}

// catalog holds the built-in GPU database keyed by canonical id.
var catalog = map[string]Spec{
	"gtx1080ti": {
		Name: "GTX 1080 Ti", Architecture: "Pascal",
		CUDACores: 3584, SMs: 28,
		BaseClockMHz: 1480, BoostClockMHz: 1582,
		MemClockMHz: 11008, MemBusBits: 352, MemBandwidthGBs: 484,
		MemSizeGB: 11, L2CacheKB: 2816,
		RegistersPerSM: 65536, SharedMemPerSMKB: 96,
		FP32TFLOPS: 11.3, TDPWatts: 250,
	},
	"v100s": {
		Name: "V100S", Architecture: "Volta",
		CUDACores: 5120, SMs: 80,
		BaseClockMHz: 1245, BoostClockMHz: 1597,
		MemClockMHz: 1106, MemBusBits: 4096, MemBandwidthGBs: 1134,
		MemSizeGB: 32, L2CacheKB: 6144,
		RegistersPerSM: 65536, SharedMemPerSMKB: 96,
		FP32TFLOPS: 16.4, TDPWatts: 250,
	},
	"quadrop1000": {
		Name: "Quadro P1000", Architecture: "Pascal",
		CUDACores: 640, SMs: 5,
		BaseClockMHz: 1266, BoostClockMHz: 1480,
		MemClockMHz: 5000, MemBusBits: 128, MemBandwidthGBs: 80,
		MemSizeGB: 4, L2CacheKB: 1024,
		RegistersPerSM: 65536, SharedMemPerSMKB: 96,
		FP32TFLOPS: 1.9, TDPWatts: 47,
	},
	"p100": {
		Name: "Tesla P100", Architecture: "Pascal",
		CUDACores: 3584, SMs: 56,
		BaseClockMHz: 1190, BoostClockMHz: 1329,
		MemClockMHz: 715, MemBusBits: 4096, MemBandwidthGBs: 732,
		MemSizeGB: 16, L2CacheKB: 4096,
		RegistersPerSM: 65536, SharedMemPerSMKB: 64,
		FP32TFLOPS: 9.5, TDPWatts: 250,
	},
	"t4": {
		Name: "Tesla T4", Architecture: "Turing",
		CUDACores: 2560, SMs: 40,
		BaseClockMHz: 585, BoostClockMHz: 1590,
		MemClockMHz: 5001, MemBusBits: 256, MemBandwidthGBs: 320,
		MemSizeGB: 16, L2CacheKB: 4096,
		RegistersPerSM: 65536, SharedMemPerSMKB: 64,
		FP32TFLOPS: 8.1, TDPWatts: 70,
	},
	"rtx2080ti": {
		Name: "RTX 2080 Ti", Architecture: "Turing",
		CUDACores: 4352, SMs: 68,
		BaseClockMHz: 1350, BoostClockMHz: 1545,
		MemClockMHz: 14000, MemBusBits: 352, MemBandwidthGBs: 616,
		MemSizeGB: 11, L2CacheKB: 5632,
		RegistersPerSM: 65536, SharedMemPerSMKB: 64,
		FP32TFLOPS: 13.4, TDPWatts: 250,
	},
	"a100": {
		Name: "A100", Architecture: "Ampere",
		CUDACores: 6912, SMs: 108,
		BaseClockMHz: 765, BoostClockMHz: 1410,
		MemClockMHz: 1215, MemBusBits: 5120, MemBandwidthGBs: 1555,
		MemSizeGB: 40, L2CacheKB: 40960,
		RegistersPerSM: 65536, SharedMemPerSMKB: 164,
		FP32TFLOPS: 19.5, TDPWatts: 400,
	},
	"k80": {
		Name: "Tesla K80 (per GPU)", Architecture: "Kepler",
		CUDACores: 2496, SMs: 13,
		BaseClockMHz: 560, BoostClockMHz: 875,
		MemClockMHz: 2505, MemBusBits: 384, MemBandwidthGBs: 240,
		MemSizeGB: 12, L2CacheKB: 1536,
		RegistersPerSM: 131072, SharedMemPerSMKB: 112,
		FP32TFLOPS: 4.37, TDPWatts: 150,
	},
	"gtx1060": {
		Name: "GTX 1060 6GB", Architecture: "Pascal",
		CUDACores: 1280, SMs: 10,
		BaseClockMHz: 1506, BoostClockMHz: 1708,
		MemClockMHz: 8008, MemBusBits: 192, MemBandwidthGBs: 192,
		MemSizeGB: 6, L2CacheKB: 1536,
		RegistersPerSM: 65536, SharedMemPerSMKB: 96,
		FP32TFLOPS: 4.4, TDPWatts: 120,
	},
	"jetsonnano": {
		Name: "Jetson Nano", Architecture: "Maxwell",
		CUDACores: 128, SMs: 1,
		BaseClockMHz: 640, BoostClockMHz: 921,
		MemClockMHz: 1600, MemBusBits: 64, MemBandwidthGBs: 25.6,
		MemSizeGB: 4, L2CacheKB: 256,
		RegistersPerSM: 65536, SharedMemPerSMKB: 64,
		FP32TFLOPS: 0.472, TDPWatts: 10,
	},
	"xaviernx": {
		Name: "Jetson Xavier NX", Architecture: "Volta",
		CUDACores: 384, SMs: 6,
		BaseClockMHz: 854, BoostClockMHz: 1100,
		MemClockMHz: 1600, MemBusBits: 128, MemBandwidthGBs: 51.2,
		MemSizeGB: 8, L2CacheKB: 512,
		RegistersPerSM: 65536, SharedMemPerSMKB: 96,
		FP32TFLOPS: 0.845, TDPWatts: 15,
	},
	"rtx3090": {
		Name: "RTX 3090", Architecture: "Ampere",
		CUDACores: 10496, SMs: 82,
		BaseClockMHz: 1395, BoostClockMHz: 1695,
		MemClockMHz: 19500, MemBusBits: 384, MemBandwidthGBs: 936,
		MemSizeGB: 24, L2CacheKB: 6144,
		RegistersPerSM: 65536, SharedMemPerSMKB: 128,
		FP32TFLOPS: 35.6, TDPWatts: 350,
	},
}

// TrainingGPUs are the two devices the paper builds its training dataset
// on (Section IV-A).
var TrainingGPUs = []string{"gtx1080ti", "v100s"}

// TableIVGPUs are the seven devices of the paper's DSE experiment
// (Table IV mentions GTX 1080Ti, V100S and Quadro P1000 among seven).
var TableIVGPUs = []string{
	"gtx1080ti", "v100s", "quadrop1000", "p100", "t4", "rtx2080ti", "gtx1060",
}

// Lookup returns the spec for a canonical id such as "gtx1080ti".
func Lookup(id string) (Spec, error) {
	s, ok := catalog[id]
	if !ok {
		return Spec{}, fmt.Errorf("gpu: unknown device %q", id)
	}
	return s, nil
}

// MustLookup is Lookup but panics on unknown ids.
func MustLookup(id string) Spec {
	s, err := Lookup(id)
	if err != nil {
		panic(err)
	}
	return s
}

// IDs returns all known device ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(catalog))
	for id := range catalog {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
