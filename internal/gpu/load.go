package gpu

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// specJSON is the serialisable form of a Spec with its catalogue id.
type specJSON struct {
	ID string `json:"id"`
	Spec
}

// ParseSpecs reads a JSON array of device specs (each with an "id" field
// next to the Spec fields), validating every entry. It lets users extend
// the design space beyond the built-in catalogue without recompiling.
func ParseSpecs(r io.Reader) (map[string]Spec, error) {
	var raw []specJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("gpu: decoding specs: %w", err)
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("gpu: no specs in input")
	}
	out := make(map[string]Spec, len(raw))
	for i, sj := range raw {
		if sj.ID == "" {
			return nil, fmt.Errorf("gpu: spec %d has no id", i)
		}
		if _, dup := out[sj.ID]; dup {
			return nil, fmt.Errorf("gpu: duplicate id %q", sj.ID)
		}
		if err := sj.Spec.Validate(); err != nil {
			return nil, err
		}
		out[sj.ID] = sj.Spec
	}
	return out, nil
}

// Register adds a device to the catalogue (or returns an error if the id
// exists). Intended for user-supplied specs loaded with ParseSpecs.
func Register(id string, s Spec) error {
	if id == "" {
		return fmt.Errorf("gpu: empty device id")
	}
	if _, dup := catalog[id]; dup {
		return fmt.Errorf("gpu: device %q already registered", id)
	}
	if err := s.Validate(); err != nil {
		return err
	}
	catalog[id] = s
	return nil
}

// WriteSpecs serialises a set of specs in the ParseSpecs format, sorted
// by id for stable output.
func WriteSpecs(w io.Writer, specs map[string]Spec) error {
	ids := make([]string, 0, len(specs))
	for id := range specs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]specJSON, 0, len(ids))
	for _, id := range ids {
		out = append(out, specJSON{ID: id, Spec: specs[id]})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("gpu: encoding specs: %w", err)
	}
	return nil
}
