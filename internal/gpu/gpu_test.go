package gpu

import (
	"bytes"
	"strings"
	"testing"
)

func TestCatalogValid(t *testing.T) {
	for _, id := range IDs() {
		s := MustLookup(id)
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}

func TestLookup(t *testing.T) {
	s, err := Lookup("gtx1080ti")
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if s.CUDACores != 3584 || s.MemBandwidthGBs != 484 {
		t.Errorf("1080Ti datasheet wrong: %+v", s)
	}
	if _, err := Lookup("riva-tnt2"); err == nil {
		t.Error("unknown GPU should error")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLookup should panic on unknown id")
		}
	}()
	MustLookup("nope")
}

func TestTrainingAndTableIVGPUsExist(t *testing.T) {
	for _, id := range append(append([]string{}, TrainingGPUs...), TableIVGPUs...) {
		if _, err := Lookup(id); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
	if len(TrainingGPUs) != 2 {
		t.Errorf("paper trains on 2 GPUs, have %d", len(TrainingGPUs))
	}
	if len(TableIVGPUs) != 7 {
		t.Errorf("Table IV uses 7 GPUs, have %d", len(TableIVGPUs))
	}
}

func TestFeatureVector(t *testing.T) {
	s := MustLookup("v100s")
	f := s.Features()
	if len(f) != len(FeatureNames) {
		t.Fatalf("feature vector length %d != %d names", len(f), len(FeatureNames))
	}
	// Spot-check the schema order (bandwidth leads the schema).
	if f[0] != 1134 {
		t.Errorf("mem_bandwidth_gbs = %f", f[0])
	}
	if f[1] != 5120 {
		t.Errorf("cuda_cores = %f", f[1])
	}
	for i, name := range FeatureNames {
		if f[i] <= 0 {
			t.Errorf("feature %s non-positive: %f", name, f[i])
		}
	}
}

func TestDerivedQuantities(t *testing.T) {
	s := MustLookup("gtx1080ti")
	// Peak FLOPs = 2 * 3584 * 1582 MHz ~ 11.3 TFLOP/s.
	pf := s.PeakFLOPs()
	if pf < 11e12 || pf > 11.6e12 {
		t.Errorf("peak FLOPs = %g", pf)
	}
	bpc := s.BytesPerCycle()
	if bpc < 250 || bpc > 350 {
		t.Errorf("bytes/cycle = %f, expected about 306", bpc)
	}
	if s.CoresPerSM() != 128 {
		t.Errorf("cores/SM = %d, Pascal has 128", s.CoresPerSM())
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	good := MustLookup("t4")
	cases := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.CUDACores = 0 },
		func(s *Spec) { s.CUDACores = good.SMs*128 + 1 },
		func(s *Spec) { s.BoostClockMHz = s.BaseClockMHz - 1 },
		func(s *Spec) { s.MemBandwidthGBs = 0 },
		func(s *Spec) { s.L2CacheKB = -1 },
	}
	for i, mutate := range cases {
		s := good
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		} else if !strings.Contains(err.Error(), "gpu:") {
			t.Errorf("case %d: error missing package prefix: %v", i, err)
		}
	}
}

func TestIDsSortedAndStable(t *testing.T) {
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("IDs not sorted")
		}
	}
	if len(ids) < 10 {
		t.Errorf("expected at least 10 devices, have %d", len(ids))
	}
}

func TestParseAndWriteSpecs(t *testing.T) {
	// Round-trip the built-in catalogue through the JSON format.
	all := map[string]Spec{}
	for _, id := range IDs() {
		all[id] = MustLookup(id)
	}
	var buf bytes.Buffer
	if err := WriteSpecs(&buf, all); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ParseSpecs(&buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(back) != len(all) {
		t.Fatalf("round trip lost specs: %d vs %d", len(back), len(all))
	}
	for id, want := range all {
		if back[id] != want {
			t.Errorf("%s: round trip changed the spec", id)
		}
	}
}

func TestParseSpecsErrors(t *testing.T) {
	cases := []string{
		"",
		"[]",
		`[{"Name":"x"}]`, // no id
		`[{"id":"a","Name":"A","CUDACores":128,"SMs":1,"BaseClockMHz":1000,"BoostClockMHz":1100,"MemBandwidthGBs":100,"MemSizeGB":4,"L2CacheKB":512},
		  {"id":"a","Name":"A2","CUDACores":128,"SMs":1,"BaseClockMHz":1000,"BoostClockMHz":1100,"MemBandwidthGBs":100,"MemSizeGB":4,"L2CacheKB":512}]`, // dup
		`[{"id":"bad","Name":"Bad","CUDACores":0,"SMs":1}]`, // invalid spec
	}
	for i, src := range cases {
		if _, err := ParseSpecs(strings.NewReader(src)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestRegister(t *testing.T) {
	custom := MustLookup("t4")
	custom.Name = "Custom Edge GPU"
	if err := Register("customedge", custom); err != nil {
		t.Fatalf("register: %v", err)
	}
	defer delete(catalog, "customedge")
	got, err := Lookup("customedge")
	if err != nil || got.Name != "Custom Edge GPU" {
		t.Errorf("lookup after register: %+v, %v", got, err)
	}
	if err := Register("customedge", custom); err == nil {
		t.Error("duplicate registration should error")
	}
	if err := Register("", custom); err == nil {
		t.Error("empty id should error")
	}
	if err := Register("badspec", Spec{}); err == nil {
		t.Error("invalid spec should error")
	}
}
