package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cnnperf/internal/server"
)

// waitForGoroutines polls until the goroutine count drops back near the
// pre-test level or the deadline hits.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestConcurrentPredictHammer fires many goroutines of mixed valid and
// invalid payloads at /v1/predict, then checks every response was
// well-formed, nothing panicked, no goroutines leaked, and the cache
// counters obey their invariants. Run under -race this is the
// data-race gate for the whole serving path.
func TestConcurrentPredictHammer(t *testing.T) {
	before := runtime.NumGoroutine()
	s := server.New(server.Config{Workers: 4, BatchWindow: time.Millisecond, MaxBatch: 4})
	ts := httptest.NewServer(s.Handler())
	client := ts.Client()

	payloads := []struct {
		body   string
		wantOK bool
	}{
		{`{"model":"alexnet","gpus":["gtx1080ti"]}`, true},
		{`{"model":"mobilenet","gpus":["v100s"]}`, true},
		{`{"model":"squeezenet","gpus":["gtx1080ti","v100s"]}`, true},
		{`{"model":"alexnet","gpus":["gtx1080ti","v100s"]}`, true},
		{`{"ptx":` + mustQuote(testPTX) + `,"gpus":["v100s"]}`, true},
		{`{"model":"notanet","gpus":["gtx1080ti"]}`, false},
		{`{"model":"alexnet","gpus":["nope"]}`, false},
		{`{"broken json`, false},
		{`{"ptx":"garbage","gpus":["gtx1080ti"]}`, false},
		{`{"gpus":["gtx1080ti"]}`, false},
	}

	const goroutines = 8
	const perG = 10
	var ok2xx, okErr, unexpected atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				p := payloads[(g+i)%len(payloads)]
				resp, err := client.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(p.body))
				if err != nil {
					unexpected.Add(1)
					t.Errorf("g%d req%d: %v", g, i, err)
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if p.wantOK {
					if resp.StatusCode != http.StatusOK {
						unexpected.Add(1)
						t.Errorf("g%d req%d: status %d: %s", g, i, resp.StatusCode, raw)
						continue
					}
					var pr server.PredictResponse
					if err := json.Unmarshal(raw, &pr); err != nil || len(pr.Predictions) == 0 {
						unexpected.Add(1)
						t.Errorf("g%d req%d: bad success body: %v %s", g, i, err, raw)
						continue
					}
					ok2xx.Add(1)
				} else {
					if resp.StatusCode < 400 || resp.StatusCode >= 500 {
						unexpected.Add(1)
						t.Errorf("g%d req%d: invalid payload got status %d: %s", g, i, resp.StatusCode, raw)
						continue
					}
					var env server.ErrorEnvelope
					if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code == "" {
						unexpected.Add(1)
						t.Errorf("g%d req%d: bad error body: %v %s", g, i, err, raw)
						continue
					}
					okErr.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()

	if n := ok2xx.Load(); n == 0 {
		t.Fatal("no successful predictions in the hammer run")
	}
	if n := okErr.Load(); n == 0 {
		t.Fatal("no error envelopes in the hammer run")
	}

	var snap server.Snapshot
	if code := getJSON(t, ts.URL+"/metrics", &snap); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if snap.Panics != 0 {
		t.Fatalf("handlers panicked %d times", snap.Panics)
	}
	// Cache invariants: the distinct successful units were computed at
	// least once each (misses > 0), repeats were shared (hits > 0), and
	// the entry count can never exceed total misses.
	cs := s.CacheStats()
	if cs.Misses == 0 || cs.Hits == 0 {
		t.Fatalf("cache counters implausible after hammering: %+v", cs)
	}
	if uint64(cs.Entries) > cs.Misses {
		t.Fatalf("cache entries %d exceed misses %d", cs.Entries, cs.Misses)
	}
	if cs.HitRate() <= 0 || cs.HitRate() >= 1 {
		t.Fatalf("hit rate out of (0,1): %+v", cs)
	}

	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	s.Close()
	client.CloseIdleConnections()
	waitForGoroutines(t, before)
}

// TestBatchCoalescing holds a wide batch window open and releases a
// burst of concurrent requests: the batcher must coalesce them into
// fewer batches than requests, and identical payloads must share one
// analysis.
func TestBatchCoalescing(t *testing.T) {
	s := server.New(server.Config{Workers: 4, BatchWindow: 100 * time.Millisecond, MaxBatch: 32})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
		s.Close()
	}()

	const n = 6
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, raw := postJSONQuiet(ts.URL+"/v1/predict", `{"model":"alexnet","gpus":["gtx1080ti"]}`)
			if code != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", code, raw)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var snap server.Snapshot
	if code := getJSON(t, ts.URL+"/metrics", &snap); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if snap.Batches >= n {
		t.Errorf("burst of %d concurrent identical requests ran %d batches; expected coalescing", n, snap.Batches)
	}
	if snap.BatchSizes.Count == 0 || snap.BatchSizes.Mean <= 1 {
		t.Errorf("batch size histogram shows no coalescing: %+v", snap.BatchSizes)
	}
}

// TestGracefulShutdown proves the drain contract: a request in flight
// when draining begins completes with 200, while a request arriving
// after draining begins gets 503.
func TestGracefulShutdown(t *testing.T) {
	s := server.New(server.Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	// Launch a cold-cache prediction (slow enough to still be in flight
	// when we start draining).
	type result struct {
		code int
		body []byte
	}
	inflight := make(chan result, 1)
	go func() {
		code, raw := postJSONQuiet(ts.URL+"/v1/predict", `{"model":"vgg16","gpus":["gtx1080ti"]}`)
		inflight <- result{code, raw}
	}()

	// Wait until the request is actually in flight.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var snap server.Snapshot
		getJSON(t, ts.URL+"/metrics", &snap)
		if snap.InFlight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // let the gate flip

	// A late request must be refused with the draining envelope.
	code, raw := postJSONQuiet(ts.URL+"/v1/predict", `{"model":"alexnet","gpus":["gtx1080ti"]}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("late request status %d, want 503: %s", code, raw)
	}
	var env server.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != "draining" {
		t.Fatalf("late request envelope: %v %s", err, raw)
	}

	// The in-flight request completes normally.
	select {
	case res := <-inflight:
		if res.code != http.StatusOK {
			t.Fatalf("in-flight request finished with %d: %s", res.code, res.body)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("in-flight request did not complete during drain")
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("drain did not finish after in-flight completion")
	}
}

// TestRequestTimeout gives the server a deadline far too small for a
// cold prediction and requires the structured timeout envelope.
func TestRequestTimeout(t *testing.T) {
	s := server.New(server.Config{Workers: 2, Timeout: 5 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
		s.Close()
	}()
	code, raw := postJSONQuiet(ts.URL+"/v1/predict", `{"model":"resnet50","gpus":["gtx1080ti"]}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", code, raw)
	}
	var env server.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("timeout body is not an envelope: %v %s", err, raw)
	}
	if env.Error.Code != "timeout" {
		t.Fatalf("timeout envelope code %q: %s", env.Error.Code, raw)
	}
}

// postJSONQuiet is postJSON without the test helper dependency, for
// goroutines.
func postJSONQuiet(url, body string) (int, []byte) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, []byte(err.Error())
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}
