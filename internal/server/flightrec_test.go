package server_test

// Integration tests for the replica's flight recorder: a traced predict
// lands in /debug/flightrecorder with the propagated trace identity and
// the full span taxonomy, the endpoint is gated by config, and the
// recorder never perturbs response bytes.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"cnnperf/internal/gpu"
	"cnnperf/internal/obs"
	"cnnperf/internal/server"
	"cnnperf/internal/zoo"
)

func TestFlightRecorderEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{
		// A nanosecond slow threshold retains every request in the tail
		// ring, making capture deterministic.
		FlightRecorder: obs.FlightRecorderConfig{SlowThreshold: time.Nanosecond, Seed: 1},
	})
	model := zoo.Names()[0]
	body := fmt.Sprintf(`{"model":%q,"gpus":[%q]}`, model, gpu.TrainingGPUs[0])

	// Warm the analysis cache first: the cold-start trace runs the whole
	// pipeline (thousands of spans, truncated by the span limit); the
	// warm trace that follows is the small steady-state shape a p99
	// investigation actually reads.
	if code, raw := postJSON(t, ts.URL+"/v1/predict", body); code != http.StatusOK {
		t.Fatalf("warmup predict: status %d: %s", code, raw)
	}

	const wire = "00-11111111111111111111111111111111-2222222222222222-01"
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", bytes.NewReader([]byte(body)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, wire)
	req.Header.Set("X-Request-ID", "fr-test-1")
	resp, raw := doRequest(t, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d: %s", resp.StatusCode, raw)
	}

	// Both requests were retained (everything trips the 1ns threshold);
	// the traced one continues the caller's trace identity.
	traces := srv.FlightRecorder().Traces()
	if len(traces) != 2 {
		t.Fatalf("retained %d traces, want 2: %+v", len(traces), traces)
	}
	tr := traces[1]
	if tr.TraceID != "11111111111111111111111111111111" {
		t.Errorf("retained trace id %s, want the propagated one", tr.TraceID)
	}
	if tr.Reason != "slow" || tr.Endpoint != "predict" || tr.RequestID != "fr-test-1" || tr.Status != 200 {
		t.Errorf("retained trace meta %+v", tr)
	}
	if tr.Spans != 4 { // srv.predict, srv.batch, features, predict
		t.Errorf("warm trace has %d spans, want 4", tr.Spans)
	}

	// The debug endpoint serves the retained traces as one valid Chrome
	// document; filtered to the propagated ID it holds the warm-request
	// taxonomy hung off the remote root.
	dreq, _ := http.NewRequest(http.MethodGet,
		ts.URL+"/debug/flightrecorder?trace=11111111111111111111111111111111", nil)
	dresp, dump := doRequest(t, dreq)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/flightrecorder: status %d", dresp.StatusCode)
	}
	if ct := dresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q, want application/json", ct)
	}
	names, err := obs.ValidateChromeTrace(dump)
	if err != nil {
		t.Fatalf("dump invalid: %v\n%s", err, dump)
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{"srv.predict", "srv.batch", "features", "predict"} {
		if !seen[want] {
			t.Errorf("dump missing span %q (has %v)", want, names)
		}
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(dump, &doc); err != nil {
		t.Fatal(err)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "srv.predict" {
			if ev.Args["trace_id"] != "11111111111111111111111111111111" {
				t.Errorf("root trace_id arg %v", ev.Args["trace_id"])
			}
			if ev.Args["parent_span_id"] != "2222222222222222" {
				t.Errorf("root parent_span_id arg %v, want the remote caller", ev.Args["parent_span_id"])
			}
			if ev.Args["fr_reason"] != "slow" || ev.Args["fr_request_id"] != "fr-test-1" {
				t.Errorf("root fr_* args %v", ev.Args)
			}
		}
	}

	// The unfiltered dump (both traces) validates too; a foreign trace
	// ID yields a valid-but-span-free document.
	areq, _ := http.NewRequest(http.MethodGet, ts.URL+"/debug/flightrecorder", nil)
	_, all := doRequest(t, areq)
	if _, err := obs.ValidateChromeTrace(all); err != nil {
		t.Fatalf("unfiltered dump invalid: %v", err)
	}
	oreq, _ := http.NewRequest(http.MethodGet,
		ts.URL+"/debug/flightrecorder?trace=ffffffffffffffffffffffffffffffff", nil)
	_, other := doRequest(t, oreq)
	if bytes.Contains(other, []byte("srv.predict")) {
		t.Error("foreign-trace filter leaked spans")
	}

	// The fr_* metric families are live on /metrics.
	text := scrapePrometheus(t, ts.URL)
	if !bytes.Contains([]byte(text), []byte("cnnperfd_fr_requests_total")) {
		t.Error("cnnperfd_fr_requests_total missing from /metrics")
	}
	if !bytes.Contains([]byte(text), []byte("cnnperfd_fr_retained_slow_total 2")) {
		t.Error("retained-slow counter did not record both captures")
	}
}

func TestFlightRecorderDisabled(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{DisableFlightRecorder: true})
	if srv.FlightRecorder() != nil {
		t.Fatal("recorder built despite DisableFlightRecorder")
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/debug/flightrecorder", nil)
	resp, _ := doRequest(t, req)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/flightrecorder while disabled: status %d, want 404", resp.StatusCode)
	}
}

// TestFlightRecorderByteIdentity extends the determinism guard to the
// recorder: responses with the always-on recorder (plus an inbound
// traceparent) are byte-identical to a recorder-less server's.
func TestFlightRecorderByteIdentity(t *testing.T) {
	model := zoo.Names()[0]
	body := fmt.Sprintf(`{"model":%q,"gpus":[%q]}`, model, gpu.TrainingGPUs[0])

	_, off := newTestServer(t, server.Config{DisableFlightRecorder: true})
	_, on := newTestServer(t, server.Config{
		FlightRecorder: obs.FlightRecorderConfig{SlowThreshold: time.Nanosecond, Seed: 9},
	})

	codeOff, rawOff := postJSON(t, off.URL+"/v1/predict", body)
	req, _ := http.NewRequest(http.MethodPost, on.URL+"/v1/predict", bytes.NewReader([]byte(body)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, "00-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa-bbbbbbbbbbbbbbbb-01")
	resp, rawOn := doRequest(t, req)
	if codeOff != http.StatusOK || resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status: off=%d on=%d", codeOff, resp.StatusCode)
	}
	if !bytes.Equal(rawOff, rawOn) {
		t.Fatalf("flight recorder changed the prediction bytes:\noff: %s\non:  %s", rawOff, rawOn)
	}

	// Repeat traffic keeps recycling pooled tracers without disturbing
	// responses (the capture path is warm after the first request).
	for i := 0; i < 5; i++ {
		code, raw := postJSON(t, on.URL+"/v1/predict", body)
		if code != http.StatusOK || !bytes.Equal(raw, rawOff) {
			t.Fatalf("request %d: status %d, bytes changed", i, code)
		}
	}
}
